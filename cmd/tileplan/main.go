// Command tileplan builds the tiled physical layout of one benchmark
// design and prints its statistics: device, CLB usage, tile grid, per-tile
// slack, interface crossings, and the estimated critical path.
//
// Usage:
//
//	tileplan -design DES -overhead 0.2 -tilefrac 0.1
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/timing"
)

func main() {
	var (
		design   = flag.String("design", "s9234", "benchmark design name")
		overhead = flag.Float64("overhead", 0.20, "resource slack for tiling")
		tilefrac = flag.Float64("tilefrac", 0.10, "tile size as fraction of the device")
		effort   = flag.Float64("effort", 0.5, "placement effort")
		seed     = flag.Int64("seed", 1, "random seed")
		list     = flag.Bool("list", false, "list available designs")
	)
	flag.Parse()
	if *list {
		for _, d := range bench.Catalog() {
			fmt.Printf("%-12s paper: %4d CLBs, sequential: %v\n", d.Name, d.PaperCLBs, d.Sequential)
		}
		return
	}
	info, err := bench.ByName(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tileplan:", err)
		os.Exit(1)
	}
	nl := info.Build()
	fmt.Printf("design %s: %v\n", info.Name, nl.Stats())
	l, err := core.Build(nl, core.Spec{
		Overhead: *overhead, TileFrac: *tilefrac, Seed: *seed, PlaceEffort: *effort,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tileplan:", err)
		os.Exit(1)
	}
	fmt.Printf("mapped:  %v\n", l.NL.Stats())
	fmt.Printf("device:  %v\n", l.Dev)
	fmt.Printf("CLBs:    %d used, %d sites (area overhead %.3f)\n",
		l.NumCLBs(), l.Dev.NumCLBSites(),
		float64(l.Dev.NumCLBSites())/float64(l.NumCLBs())-1)
	fmt.Printf("build:   %v\n", l.BuildEffort)

	used := l.TileUsage()
	free := l.TileFree()
	fmt.Printf("tiles:   %d\n", len(l.Tiles))
	for _, t := range l.Tiles {
		fmt.Printf("  tile %2d %-14s used %3d free %3d\n", t.ID, t.Rect.String(), used[t.ID], free[t.ID])
	}

	rep, err := analyze(l)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tileplan:", err)
		os.Exit(1)
	}
	fmt.Printf("timing:  critical path %.2f ns (%d stages shown)\n", rep.Critical, len(rep.WorstPath))
	for _, n := range rep.WorstPath {
		if len(rep.WorstPath) <= 12 {
			fmt.Printf("  %-30s @ %.2f ns\n", n.Cell, n.Arrival)
		}
	}
}

func analyze(l *core.Layout) (timing.Report, error) {
	cellPos := make(map[netlist.CellID]device.XY)
	for ci := range l.NL.Cells {
		if l.NL.Cells[ci].Dead {
			continue
		}
		if clb, ok := l.Packed.CellCLB[netlist.CellID(ci)]; ok {
			cellPos[netlist.CellID(ci)] = l.CLBLoc[clb]
		}
	}
	netLen := make(map[netlist.NetID]int, len(l.Routes))
	for net, rn := range l.Routes {
		netLen[net] = rn.RouteLen()
	}
	return timing.Analyze(timing.Input{NL: l.NL, CellPos: cellPos, PadPos: l.PadLoc, NetLen: netLen},
		timing.DefaultModel())
}
