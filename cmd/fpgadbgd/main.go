// Command fpgadbgd is the debugging-campaign daemon: a long-running HTTP
// server that schedules concurrent detect → localize → correct campaigns
// over a bounded worker pool and a content-addressed artifact cache, so a
// fleet of clients debugging the same designs shares synthesis, placement
// and compiled-simulator work.
//
// Usage:
//
//	fpgadbgd -addr :8080 -workers 8 -cache-mb 256
//
// API (JSON; see internal/service):
//
//	POST /campaigns               {"design":"c880","fault_seed":3}
//	GET  /campaigns               list
//	GET  /campaigns/{id}          status + result
//	GET  /campaigns/{id}/events   NDJSON progress stream
//	GET  /campaigns/{id}/trace    finished campaign's per-stage timing
//	POST /campaigns/{id}/cancel   cancel
//	GET  /healthz                 liveness
//	GET  /metrics                 expvar globals plus service stats and the
//	                              telemetry registry under "fpgadbgd"
//
// Observability extras: -trace-log FILE appends every finished
// campaign's StageTrace as one NDJSON line; -pprof mounts the standard
// net/http/pprof profiling handlers under /debug/pprof/.
//
// Durability and sharding: -data-dir DIR journals every campaign
// lifecycle transition to an fsynced, checksummed write-ahead log and
// spills rebuildable artifacts (mapped netlists, golden traces) as
// content-addressed blobs, so a killed daemon restarted on the same
// directory restores finished campaigns and re-runs interrupted ones to
// bit-identical result digests. -replicas N (with N > 1) runs N service
// replicas behind a design-affinity sharding coordinator with
// submission-time work stealing; campaign IDs gain an "r<i>-" prefix
// and /metrics reports per-replica documents plus routing counters.
//
// Three campaign kinds are served: "debug" (the full detect → localize →
// correct loop, optionally with the fault-dictionary localizer via
// "use_dict":true), "faultscan" (exhaustive single-fault universe scan
// on the 64-lane fault-parallel mutant engine) and "repair" (one detect
// → dictionary-localize → candidate-search-repair pass where the golden
// design is only a behavioural oracle; the compiled candidate program is
// cached per injected design). Campaigns that build a layout accept
// "overlay":true to pre-reserve the debug overlay (zero-CAD probe
// switching + causal-chain localizer); -overlay turns it on for every
// such campaign by default. Submit from the shell:
//
//	curl -s -X POST localhost:8080/campaigns -d '{"design":"9sym","fault_seed":1}'
//	curl -s -X POST localhost:8080/campaigns -d '{"design":"9sym","kind":"faultscan","patterns":128}'
//	curl -s -X POST localhost:8080/campaigns -d '{"design":"9sym","kind":"repair","fault_seed":2}'
//	curl -s localhost:8080/campaigns/c000001
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // handlers on http.DefaultServeMux, mounted behind -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"fpgadbg/internal/coord"
	"fpgadbg/internal/service"
	"fpgadbg/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		workers    = flag.Int("workers", 0, "concurrent campaign workers (0 = GOMAXPROCS)")
		cacheMB    = flag.Int64("cache-mb", 256, "artifact cache byte budget in MiB")
		cacheEntry = flag.Int("cache-entries", 512, "artifact cache entry budget")
		traceLog   = flag.String("trace-log", "", "append finished campaigns' stage traces to this NDJSON file")
		pprofOn    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		dataDir    = flag.String("data-dir", "", "durable store directory (journal + blob spill); empty = in-memory only")
		replicas   = flag.Int("replicas", 1, "service replicas behind the sharding coordinator (1 = classic single service)")
		overlayOn  = flag.Bool("overlay", false, "enable the pre-reserved debug overlay (zero-CAD probe switching + causal localizer) on every debug/repair campaign by default")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:        *workers,
		CacheBytes:     *cacheMB << 20,
		CacheEntries:   *cacheEntry,
		DefaultOverlay: *overlayOn,
	}
	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpgadbgd: -trace-log:", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.TraceLog = f
	}
	// -replicas 1 keeps the classic single-service daemon (optionally
	// durable via -data-dir); beyond that the coordinator shards the
	// same REST surface across N replicas.
	var (
		api     service.API
		closeFn func()
	)
	if *replicas > 1 {
		co, err := coord.New(coord.Config{Replicas: *replicas, DataDir: *dataDir, Service: cfg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpgadbgd:", err)
			os.Exit(1)
		}
		api, closeFn = co, co.Close
	} else {
		if *dataDir != "" {
			st, err := store.OpenDisk(*dataDir, store.DiskOptions{})
			if err != nil {
				fmt.Fprintln(os.Stderr, "fpgadbgd: -data-dir:", err)
				os.Exit(1)
			}
			cfg.Store = st
		}
		svc, err := service.Open(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpgadbgd:", err)
			os.Exit(1)
		}
		api, closeFn = svc, svc.Close
	}
	handler := service.NewHandler(api)
	if *pprofOn {
		// The service mux has no /debug routes, so mounting the pprof
		// default-mux handlers on an outer mux cannot shadow the API.
		outer := http.NewServeMux()
		outer.Handle("/debug/pprof/", http.DefaultServeMux)
		outer.Handle("/", handler)
		handler = outer
	}
	server := &http.Server{
		Addr:    *addr,
		Handler: logRequests(handler),
		// No write timeout: /campaigns/{id}/events streams for a
		// campaign's lifetime. Header/read timeouts stop slow-client
		// connection pinning.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("fpgadbgd: listening on %s (replicas=%d, workers=%d, cache=%dMiB, data-dir=%q)",
			*addr, *replicas, api.Stats().Workers, *cacheMB, *dataDir)
		errCh <- server.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("fpgadbgd: %v — shutting down", sig)
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "fpgadbgd:", err)
			os.Exit(1)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	server.Shutdown(ctx) //nolint:errcheck // best-effort drain
	closeFn()
	log.Printf("fpgadbgd: stopped")
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
