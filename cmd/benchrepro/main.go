// Command benchrepro regenerates every table and figure of the paper's
// evaluation section and prints them as text tables, paper values
// alongside measured ones.
//
// Usage:
//
//	benchrepro -all
//	benchrepro -table1 -fig5 -designs "s9234,MIPS R2000,DES" -effort 1.0
//	benchrepro -json              # sim micro-bench → BENCH_sim.json
//	benchrepro -json-service      # campaign-service load test → BENCH_service.json
//	benchrepro -seu               # SEU vulnerability campaign (fault-parallel)
//	benchrepro -json-faults       # fault-parallel vs serial scan → BENCH_faults.json
//	benchrepro -json-repair       # repair-candidate search campaign → BENCH_repair.json
//	benchrepro -json-stages       # per-stage telemetry + overhead → BENCH_stages.json
//	benchrepro -json-overlay      # debug-overlay probe switching → BENCH_overlay.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/experiments"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "reproduce Table 1 (tiled layout statistics)")
		fig3      = flag.Bool("fig3", false, "reproduce Figure 3 (tiles affected by logic introduction)")
		fig4      = flag.Bool("fig4", false, "reproduce Figure 4 (maximum test logic size)")
		fig5      = flag.Bool("fig5", false, "reproduce Figure 5 (place-and-route speedup)")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		faultsN   = flag.Int("faults", 0, "run a fault campaign with this many injections per design")
		jsonBench = flag.Bool("json", false, "run the simulator micro-benchmark and write BENCH_sim.json")
		jsonOut   = flag.String("json-out", "BENCH_sim.json", "output path for -json")
		simCycles = flag.Int("sim-cycles", 256, "stimulus depth of the -json micro-benchmark")
		simLanes  = flag.Int("lanes", 512, "parallel lanes of the wide -json rows (multiple of 64; 64 = width-1 only)")
		simWork   = flag.Int("sim-workers", 0, "level-parallel evaluation goroutines for the wide -json rows (0/1 = serial)")
		jsonSvc   = flag.Bool("json-service", false, "run the campaign-service load test and write BENCH_service.json")
		svcOut    = flag.String("json-service-out", "BENCH_service.json", "output path for -json-service")
		svcN      = flag.Int("service-campaigns", 64, "campaigns in the -json-service burst")
		svcW      = flag.Int("service-workers", 0, "service worker pool for -json-service (0 = GOMAXPROCS)")
		seu       = flag.Bool("seu", false, "run the SEU vulnerability campaign (64-lane fault-parallel universe scan)")
		jsonFlt   = flag.Bool("json-faults", false, "measure fault-parallel vs serial scan throughput and write BENCH_faults.json")
		fltOut    = flag.String("json-faults-out", "BENCH_faults.json", "output path for -json-faults")
		fltPat    = flag.Int("fault-patterns", 64, "broadcast test patterns per fault for -seu and -json-faults")
		fltCyc    = flag.Int("fault-cycles", 2, "clock cycles each fault pattern is held")
		serialCap = flag.Int("serial-cap", 192, "max faults the serial baseline replays per design for -json-faults")
		jsonMF    = flag.Bool("json-multifault", false, "run the multi-fault campaign (pairs, windowed SEUs, interconnect) and write BENCH_multifault.json")
		mfOut     = flag.String("json-multifault-out", "BENCH_multifault.json", "output path for -json-multifault")
		mfPairs   = flag.Int("max-pairs", 256, "sampled fault pairs per design for -json-multifault")
		mfSerCap  = flag.Int("pair-serial-cap", 96, "max pairs the serial baseline replays per design for -json-multifault")
		jsonRep   = flag.Bool("json-repair", false, "run the repair campaign (lane-parallel candidate search) and write BENCH_repair.json")
		repOut    = flag.String("json-repair-out", "BENCH_repair.json", "output path for -json-repair")
		repWords  = flag.Int("repair-words", 4, "detection stimulus blocks per repair attempt")
		repCyc    = flag.Int("repair-cycles", 2, "clock cycles each repair detection block is held")
		repMax    = flag.Int("repair-faults", 24, "max localizable faults injected and repaired per design")
		jsonStg   = flag.Bool("json-stages", false, "run the telemetry benchmark (per-stage shares + instrumentation overhead) and write BENCH_stages.json")
		stgOut    = flag.String("json-stages-out", "BENCH_stages.json", "output path for -json-stages")
		stgReps   = flag.Int("stage-repeats", 32, "warm repair campaigns per design and arm for the -json-stages overhead measurement")
		jsonStore = flag.Bool("json-store", false, "measure the durable store (journal throughput, recovery, resume, shard balance) and write BENCH_store.json")
		storeOut  = flag.String("json-store-out", "BENCH_store.json", "output path for -json-store")
		storeRecs = flag.Int("store-records", 2000, "journal records per append-throughput measurement for -json-store")
		jsonEco   = flag.Bool("json-eco", false, "measure the transactional incremental physical engine and write BENCH_eco.json")
		ecoOut    = flag.String("json-eco-out", "BENCH_eco.json", "output path for -json-eco")
		ecoRounds = flag.Int("eco-rounds", 4, "localization-style probe rounds per design for -json-eco")
		jsonOvl   = flag.Bool("json-overlay", false, "measure the pre-reserved debug overlay (zero-CAD probe switching + causal localizer) and write BENCH_overlay.json")
		ovlOut    = flag.String("json-overlay-out", "BENCH_overlay.json", "output path for -json-overlay")
		ovlRounds = flag.Int("overlay-rounds", 8, "timed probe-switch rounds per design for -json-overlay")
		all       = flag.Bool("all", false, "run every table, figure and ablation")
		effort    = flag.Float64("effort", 0.5, "placement effort (1.0 = full anneal)")
		seed      = flag.Int64("seed", 1, "random seed")
		workers   = flag.Int("workers", 0, "parallel design fan-out (0 = GOMAXPROCS)")
		designs   = flag.String("designs", "", "comma-separated design filter (default: all nine)")
	)
	flag.Parse()
	if *all {
		*table1, *fig3, *fig4, *fig5, *ablations = true, true, true, true, true
	}
	if !*table1 && !*fig3 && !*fig4 && !*fig5 && !*ablations && *faultsN == 0 && !*jsonBench && !*jsonSvc && !*seu && !*jsonFlt && !*jsonMF && !*jsonRep && !*jsonEco && !*jsonOvl && !*jsonStg && !*jsonStore {
		flag.Usage()
		os.Exit(2)
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "benchrepro:", err)
		os.Exit(1)
	}
	// Probe every selected -json-* destination before running anything:
	// the JSON benchmarks run for minutes, and discovering an unwritable
	// output path only after they finish throws the whole run away.
	for _, out := range []struct {
		on         bool
		flag, path string
	}{
		{*jsonBench, "-json-out", *jsonOut},
		{*jsonFlt, "-json-faults-out", *fltOut},
		{*jsonMF, "-json-multifault-out", *mfOut},
		{*jsonRep, "-json-repair-out", *repOut},
		{*jsonStg, "-json-stages-out", *stgOut},
		{*jsonEco, "-json-eco-out", *ecoOut},
		{*jsonOvl, "-json-overlay-out", *ovlOut},
		{*jsonSvc, "-json-service-out", *svcOut},
		{*jsonStore, "-json-store-out", *storeOut},
	} {
		if out.on {
			if err := probeOutput(out.flag, out.path); err != nil {
				die(err)
			}
		}
	}
	cfg := experiments.Config{PlaceEffort: *effort, Seed: *seed, Workers: *workers}
	if *designs != "" {
		for _, d := range strings.Split(*designs, ",") {
			name := strings.TrimSpace(d)
			// Reject unknown names up front — a silent no-match run looks
			// like success with empty tables.
			if _, err := bench.ByName(name); err != nil {
				die(err)
			}
			cfg.Designs = append(cfg.Designs, name)
		}
	}
	if *table1 {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatTable1(rows))
	}
	if *fig3 {
		series, err := experiments.Figure3(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSeries(
			"Figure 3. Number of Tiles Affected by Logic Introduction (% affected tiles)",
			"#CLBs", series))
	}
	if *fig4 {
		series, err := experiments.Figure4(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSeries(
			"Figure 4. Maximum Test Logic Size (CLBs per test point)",
			"#points", series))
	}
	if *fig5 {
		rows, err := experiments.Figure5(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatFigure5(rows))
	}
	if *ablations {
		sweep, err := experiments.OverheadSweep(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatOverheadSweep(sweep))
		clustered, err := experiments.Figure4Clustered(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSeries(
			"Ablation: Figure 4 with clustered test points (all in one tile)",
			"#points", clustered))
		bounds, err := experiments.BoundaryAblation(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatBoundaryAblation(bounds))
	}
	if *faultsN > 0 {
		rows, err := experiments.FaultCampaign(cfg, *faultsN, 8, 4)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatFaultCampaign(rows))
	}
	if *jsonBench {
		if *simLanes < 64 || *simLanes%64 != 0 {
			die(fmt.Errorf("-lanes must be a positive multiple of 64, got %d", *simLanes))
		}
		widths := []int{1}
		if w := *simLanes / 64; w > 1 {
			widths = append(widths, w)
		}
		rows, err := experiments.SimBench(cfg, *simCycles, widths, *simWork)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSimBench(rows))
		cycles := *simCycles
		if len(rows) > 0 {
			cycles = rows[0].Cycles // SimBench clamps; record what actually ran
		}
		blob, err := json.MarshalIndent(struct {
			Cycles int                       `json:"cycles"`
			Rows   []experiments.SimBenchRow `json:"rows"`
		}{cycles, rows}, "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*jsonOut, append(blob, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *seu {
		rows, err := experiments.SEUCampaign(cfg, *fltPat, *fltCyc)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSEU(rows))
	}
	if *jsonFlt {
		rows, err := experiments.FaultScanBench(cfg, *fltPat, *fltCyc, *serialCap)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatFaultBench(rows))
		blob, err := json.MarshalIndent(struct {
			Patterns int                         `json:"patterns"`
			Cycles   int                         `json:"cycles"`
			Rows     []experiments.FaultBenchRow `json:"rows"`
		}{*fltPat, *fltCyc, rows}, "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*fltOut, append(blob, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *fltOut)
	}
	if *jsonMF {
		rows, err := experiments.MultiFaultCampaign(cfg, *fltPat, *fltCyc, *mfPairs, *mfSerCap)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatMultiFault(rows))
		blob, err := json.MarshalIndent(struct {
			Patterns int                         `json:"patterns"`
			Cycles   int                         `json:"cycles"`
			MaxPairs int                         `json:"max_pairs"`
			Rows     []experiments.MultiFaultRow `json:"rows"`
		}{*fltPat, *fltCyc, *mfPairs, rows}, "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*mfOut, append(blob, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *mfOut)
	}
	if *jsonRep {
		rows, err := experiments.RepairCampaign(cfg, *repWords, *repCyc, *repMax)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatRepair(rows))
		blob, err := json.MarshalIndent(struct {
			Words     int                     `json:"words"`
			Cycles    int                     `json:"cycles"`
			MaxFaults int                     `json:"max_faults"`
			Rows      []experiments.RepairRow `json:"rows"`
		}{*repWords, *repCyc, *repMax, rows}, "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*repOut, append(blob, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *repOut)
	}
	if *jsonStg {
		rep, err := experiments.TelemetryBench(cfg, *repWords, *repCyc, *stgReps)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatStages(rep))
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*stgOut, append(blob, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *stgOut)
	}
	if *jsonEco {
		rows, err := experiments.ECOBench(cfg, *ecoRounds)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatECO(rows))
		blob, err := json.MarshalIndent(struct {
			Rounds int                  `json:"rounds"`
			Rows   []experiments.ECORow `json:"rows"`
		}{*ecoRounds, rows}, "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*ecoOut, append(blob, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *ecoOut)
	}
	if *jsonOvl {
		rows, err := experiments.OverlayBench(cfg, *ovlRounds)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatOverlay(rows))
		blob, err := json.MarshalIndent(struct {
			Rounds int                      `json:"rounds"`
			Rows   []experiments.OverlayRow `json:"rows"`
		}{*ovlRounds, rows}, "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*ovlOut, append(blob, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *ovlOut)
	}
	if *jsonStore {
		rep, err := experiments.StoreBench(cfg, *storeRecs)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatStoreBench(rep))
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*storeOut, append(blob, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *storeOut)
	}
	if *jsonSvc {
		rep, err := experiments.ServiceLoadTest(cfg, *svcN, *svcW)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatServiceLoad(rep))
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*svcOut, append(blob, '\n'), 0o644); err != nil {
			die(err)
		}
		fmt.Printf("wrote %s\n", *svcOut)
	}
}

// probeOutput reports whether path can be created or overwritten,
// without clobbering existing content: an existing file is opened for
// append and left untouched; a file the probe had to create is removed
// again so a failed run leaves no empty artifact behind.
func probeOutput(flagName, path string) error {
	if path == "" {
		return fmt.Errorf("%s: empty output path", flagName)
	}
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("%s: output path %q is not writable: %w", flagName, path, err)
	}
	f.Close()
	if statErr != nil && os.IsNotExist(statErr) {
		os.Remove(path)
	}
	return nil
}
