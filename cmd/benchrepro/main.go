// Command benchrepro regenerates every table and figure of the paper's
// evaluation section and prints them as text tables, paper values
// alongside measured ones.
//
// Usage:
//
//	benchrepro -all
//	benchrepro -table1 -fig5 -designs "s9234,MIPS R2000,DES" -effort 1.0
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpgadbg/internal/experiments"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "reproduce Table 1 (tiled layout statistics)")
		fig3      = flag.Bool("fig3", false, "reproduce Figure 3 (tiles affected by logic introduction)")
		fig4      = flag.Bool("fig4", false, "reproduce Figure 4 (maximum test logic size)")
		fig5      = flag.Bool("fig5", false, "reproduce Figure 5 (place-and-route speedup)")
		ablations = flag.Bool("ablations", false, "run the ablation studies")
		all       = flag.Bool("all", false, "run everything")
		effort    = flag.Float64("effort", 0.5, "placement effort (1.0 = full anneal)")
		seed      = flag.Int64("seed", 1, "random seed")
		designs   = flag.String("designs", "", "comma-separated design filter (default: all nine)")
	)
	flag.Parse()
	if *all {
		*table1, *fig3, *fig4, *fig5, *ablations = true, true, true, true, true
	}
	if !*table1 && !*fig3 && !*fig4 && !*fig5 && !*ablations {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{PlaceEffort: *effort, Seed: *seed}
	if *designs != "" {
		for _, d := range strings.Split(*designs, ",") {
			cfg.Designs = append(cfg.Designs, strings.TrimSpace(d))
		}
	}
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "benchrepro:", err)
		os.Exit(1)
	}
	if *table1 {
		rows, err := experiments.Table1(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatTable1(rows))
	}
	if *fig3 {
		series, err := experiments.Figure3(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSeries(
			"Figure 3. Number of Tiles Affected by Logic Introduction (% affected tiles)",
			"#CLBs", series))
	}
	if *fig4 {
		series, err := experiments.Figure4(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSeries(
			"Figure 4. Maximum Test Logic Size (CLBs per test point)",
			"#points", series))
	}
	if *fig5 {
		rows, err := experiments.Figure5(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatFigure5(rows))
	}
	if *ablations {
		sweep, err := experiments.OverheadSweep(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatOverheadSweep(sweep))
		clustered, err := experiments.Figure4Clustered(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatSeries(
			"Ablation: Figure 4 with clustered test points (all in one tile)",
			"#points", clustered))
		bounds, err := experiments.BoundaryAblation(cfg)
		if err != nil {
			die(err)
		}
		fmt.Println(experiments.FormatBoundaryAblation(bounds))
	}
}
