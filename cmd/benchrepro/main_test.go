package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProbeOutputRejectsUnwritablePaths(t *testing.T) {
	dir := t.TempDir()

	// A path inside a directory that does not exist.
	bad := filepath.Join(dir, "no-such-dir", "out.json")
	if err := probeOutput("-json-out", bad); err == nil {
		t.Fatalf("probe accepted path in missing directory %s", bad)
	}

	// A path that IS a directory.
	if err := probeOutput("-json-out", dir); err == nil {
		t.Fatal("probe accepted a directory as an output file")
	}

	// The empty path.
	if err := probeOutput("-json-out", ""); err == nil {
		t.Fatal("probe accepted an empty path")
	}
}

func TestProbeOutputLeavesNoTrace(t *testing.T) {
	dir := t.TempDir()

	// Probing a fresh path must not leave an empty artifact behind.
	fresh := filepath.Join(dir, "out.json")
	if err := probeOutput("-json-out", fresh); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(fresh); !os.IsNotExist(err) {
		t.Fatalf("probe left %s behind", fresh)
	}

	// Probing an existing file must not truncate or modify it.
	existing := filepath.Join(dir, "keep.json")
	if err := os.WriteFile(existing, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := probeOutput("-json-out", existing); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(existing)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("probe clobbered existing file: %q", got)
	}
}
