// Command fpgadbg runs the paper's full emulation-debugging loop on a
// benchmark design: a design error is injected, the design is tiled and
// "emulated", and the detect → localize → correct cycle runs until clean,
// reporting the tile-local CAD effort of every step against the cost of
// full re-place-and-route.
//
// Usage:
//
//	fpgadbg -design c880 -fault-seed 3 -tilefrac 0.1
//
// With -remote the campaign is submitted to a running fpgadbgd daemon
// instead of executing in-process; progress events stream back as the
// daemon works and the result summary is printed when it finishes:
//
//	fpgadbg -design c880 -fault-seed 3 -remote http://localhost:8080
//
// -kind faultscan switches from the debugging loop to an exhaustive
// fault-universe scan (stuck-ats per net + LUT-bit flips, 64 mutants per
// simulator pass), locally or against the daemon; -use-dict attaches the
// fault-dictionary localizer to a debug campaign:
//
//	fpgadbg -design 9sym -kind faultscan -patterns 128
//	fpgadbg -design c880 -fault-seed 3 -use-dict -remote http://localhost:8080
//
// -repair corrects by lane-parallel repair-candidate search instead of
// copying the suspect cells from the golden netlist: candidates (bit
// flips, pin swaps, resynthesized truth tables) are validated 64 per
// trace replay against the golden model acting purely as an output
// oracle, and the winner flows through the tile-local ECO path. An
// inconclusive search falls back to the golden copy. With -remote this
// submits a "repair" campaign kind:
//
//	fpgadbg -design 9sym -fault-seed 2 -repair
//	fpgadbg -design c880 -fault-seed 3 -repair -remote http://localhost:8080
//
// -trace-out FILE appends the campaign's per-stage timing (the same
// StageTrace the daemon serves at GET /campaigns/{id}/trace) to FILE as
// one NDJSON line — locally by instrumenting the loop in-process, with
// -remote by fetching the daemon's trace after the campaign finishes:
//
//	fpgadbg -design 9sym -fault-seed 2 -repair -trace-out traces.ndjson
//
// -overlay pre-reserves a time-multiplexed debug overlay at build time
// (spare routing tracks + tap-mux trunks covering every LUT output):
// localization probe rounds become pure configuration switches with zero
// incremental place/route, and the causal-chain localizer ranks suspects
// by causal distance from the first mismatching cycle. With -remote this
// sets the campaign's overlay flag instead:
//
//	fpgadbg -design s9234 -fault-seed 2 -overlay
//
// -timing attaches the incremental timing engine to a local run: the
// critical-path delay is tracked across every tile-local physical update
// at cone cost (delta STA) and verified bit-identical against a full
// analysis at the end:
//
//	fpgadbg -design c880 -fault-seed 3 -timing
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/debug"
	"fpgadbg/internal/experiments"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/overlay"
	"fpgadbg/internal/service"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
	"fpgadbg/internal/timing"
)

func main() {
	var (
		design     = flag.String("design", "c880", "benchmark design name")
		faultSeed  = flag.Int64("fault-seed", 1, "seed selecting the injected design error")
		overhead   = flag.Float64("overhead", 0.20, "resource slack for tiling")
		tilefrac   = flag.Float64("tilefrac", 0.10, "tile size as fraction of the device")
		effort     = flag.Float64("effort", 0.5, "placement effort")
		seed       = flag.Int64("seed", 1, "layout seed")
		words      = flag.Int("words", 8, "random stimulus blocks (64 patterns each) per detection")
		cycles     = flag.Int("cycles", 4, "clock cycles per stimulus block")
		kind       = flag.String("kind", "debug", "campaign kind: debug (the full loop), faultscan (exhaustive fault-universe scan) or repair (candidate-search correction)")
		patterns   = flag.Int("patterns", 64, "broadcast test patterns for -kind faultscan")
		faultModel = flag.String("fault-model", "", "faultscan fault model: single (default), pair (lane-packed pairs + syndrome composition), seu (transient windowed upsets) or interconnect (bridges + route stuck-ats)")
		simLanes   = flag.Int("sim-lanes", 0, "simulator lanes for fault batches and candidate validation (multiple of 64; 0 = 64)")
		useDict    = flag.Bool("use-dict", false, "consult a fault dictionary before inserting probes (debug campaigns)")
		useOverlay = flag.Bool("overlay", false, "pre-reserve a debug overlay at build time: probe rounds become zero-CAD tap-mux switches and the causal-chain localizer ranks suspects (debug/repair campaigns)")
		repairSrch = flag.Bool("repair", false, "correct by repair-candidate search (golden as oracle only); shorthand for -kind repair")
		showTiming = flag.Bool("timing", false, "track the critical path across the loop with the incremental timing engine (local runs)")
		remote     = flag.String("remote", "", "submit to a fpgadbgd daemon at this base URL instead of running locally")
		priority   = flag.Int("priority", 0, "queue priority for -remote (higher runs first)")
		traceOut   = flag.String("trace-out", "", "append the campaign's per-stage trace to this file as one NDJSON line")
	)
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "fpgadbg:", err)
		os.Exit(1)
	}
	if *words < 1 || *cycles < 1 {
		die(fmt.Errorf("-words and -cycles must be >= 1 (got %d, %d)", *words, *cycles))
	}
	if *repairSrch && *kind == service.KindFaultScan {
		die(fmt.Errorf("-repair does not apply to -kind faultscan"))
	}
	if *repairSrch && *kind == service.KindDebug {
		*kind = service.KindRepair
	}
	if *kind != service.KindDebug && *kind != service.KindFaultScan && *kind != service.KindRepair {
		die(fmt.Errorf("-kind must be %q, %q or %q (got %q)",
			service.KindDebug, service.KindFaultScan, service.KindRepair, *kind))
	}
	switch *faultModel {
	case "", service.FaultModelSingle, service.FaultModelPair, service.FaultModelSEU, service.FaultModelInterconnect:
	default:
		die(fmt.Errorf("-fault-model must be %q, %q, %q or %q (got %q)",
			service.FaultModelSingle, service.FaultModelPair, service.FaultModelSEU,
			service.FaultModelInterconnect, *faultModel))
	}
	if *faultModel != "" && *faultModel != service.FaultModelSingle && *kind != service.KindFaultScan {
		die(fmt.Errorf("-fault-model %s needs -kind faultscan", *faultModel))
	}
	if *kind == service.KindRepair {
		*repairSrch = true
	}
	if *useOverlay && *kind == service.KindFaultScan {
		die(fmt.Errorf("-overlay does not apply to -kind faultscan (no layout is built)"))
	}
	info, err := bench.ByName(*design)
	if err != nil {
		die(err)
	}
	if *remote != "" {
		if err := runRemote(*remote, *traceOut, service.Spec{
			Design: info.Name, Kind: *kind, FaultSeed: *faultSeed, Seed: *seed,
			Overhead: *overhead, TileFrac: *tilefrac, PlaceEffort: *effort,
			Words: *words, Cycles: *cycles, Patterns: *patterns, FaultModel: *faultModel,
			UseDict: *useDict, Overlay: *useOverlay, Priority: *priority, SimLanes: *simLanes,
		}); err != nil {
			die(err)
		}
		return
	}
	if *kind == service.KindFaultScan {
		// Local faultscan: the SEU campaign restricted to one design. It
		// runs outside the span-instrumented loop, so -trace-out would be
		// empty — refuse rather than write a bogus trace.
		if *traceOut != "" {
			die(fmt.Errorf("-trace-out with -kind faultscan needs -remote (local scans are untraced)"))
		}
		if *faultModel != "" && *faultModel != service.FaultModelSingle {
			// Multi-fault models run the full three-model campaign locally
			// restricted to this design; the service splits them per model
			// for -remote.
			rows, err := experiments.MultiFaultCampaign(experiments.Config{
				Designs: []string{info.Name}, Seed: *seed, Workers: 1,
			}, *patterns, *cycles, 0, 0)
			if err != nil {
				die(err)
			}
			fmt.Print(experiments.FormatMultiFault(rows))
			return
		}
		rows, err := experiments.SEUCampaign(experiments.Config{
			Designs: []string{info.Name}, Seed: *seed, Workers: 1,
		}, *patterns, *cycles)
		if err != nil {
			die(err)
		}
		fmt.Print(experiments.FormatSEU(rows))
		return
	}

	// Local telemetry: one trace spanning build + debug loop, flushed as
	// NDJSON on every exit path that completes a campaign.
	var trace *obs.Trace
	if *traceOut != "" {
		trace = obs.NewTrace("local", info.Name, *kind, nil)
	}
	flushTrace := func() {
		if trace == nil {
			return
		}
		if err := writeTraceOut(*traceOut, trace.Finish()); err != nil {
			die(err)
		}
	}
	fmt.Printf("== %s: synthesize + map ==\n", info.Name)
	golden, err := synth.TechMap(info.Build())
	if err != nil {
		die(err)
	}
	fmt.Printf("golden: %v\n", golden.Stats())

	impl := golden.Clone()
	inj, err := faults.InjectRandom(impl, *faultSeed)
	if err != nil {
		die(err)
	}
	fmt.Printf("injected design error: %v\n", inj)

	fmt.Printf("== place-and-route with %.0f%% slack, draw tiles, lock interfaces ==\n", *overhead*100)
	cs := core.Spec{
		Overhead: *overhead, TileFrac: *tilefrac, Seed: *seed, PlaceEffort: *effort,
		Obs: trace,
	}
	if *useOverlay {
		cs.OverlayReserve = overlay.DefaultReserve
	}
	lay, err := core.BuildMapped(impl, cs)
	if err != nil {
		die(err)
	}
	lay.SetObs(trace) // BuildMapped detaches after the initial build
	fmt.Printf("device %v, %d tiles, build effort: %v\n", lay.Dev, len(lay.Tiles), lay.BuildEffort)
	var plan *overlay.Plan
	if *useOverlay {
		plan, err = overlay.Build(lay, overlay.DefaultChannels)
		if err != nil {
			die(err)
		}
		fmt.Printf("overlay:  %d channels over %d taps, trunk wirelength %d (routed once, locked)\n",
			plan.Channels, plan.Taps, plan.TrunkLen)
	}

	// Delta timing: every physical update from here on resynchronizes
	// arrival times through the touched cones only.
	reportTiming := func(stage string) {}
	if *showTiming {
		if err := lay.EnableTiming(timing.DefaultModel()); err != nil {
			die(err)
		}
		crit, _ := lay.CriticalDelay()
		fmt.Printf("timing:   critical path %.2f ns (full analysis)\n", crit)
		reportTiming = func(stage string) {
			crit, _ := lay.CriticalDelay()
			eng := lay.TimingEngine()
			fmt.Printf("timing:   after %s: critical path %.2f ns (delta STA recomputed %d of %d cells over %d update(s))\n",
				stage, crit, eng.LastCone, eng.LiveCells, eng.Updates)
		}
	}

	sess, err := debug.NewSession(golden, lay, *seed)
	if err != nil {
		die(err)
	}
	sess.Obs = trace
	if plan != nil {
		sess.Overlay = plan.NewSelector(lay)
		sess.Causal = true
	}
	if *simLanes > 0 {
		if *simLanes%64 != 0 || *simLanes > 64*sim.MaxWidth {
			die(fmt.Errorf("-sim-lanes must be a multiple of 64 in [64, %d] (got %d)", 64*sim.MaxWidth, *simLanes))
		}
		sess.SimWidth = *simLanes / 64
	}
	if *repairSrch {
		// The repair pipeline always consults the dictionary first, like
		// the daemon's repair campaign kind.
		*useDict = true
	}
	if *useDict {
		prog, err := sim.Compile(golden)
		if err != nil {
			die(err)
		}
		dict, err := debug.BuildFaultDict(prog, *words, *cycles, *seed)
		if err != nil {
			die(err)
		}
		sess.Dict = dict
		sess.SetGoldenMachine(prog.Fork())
		fmt.Printf("fault dictionary: %d/%d faults detectable, %d signatures\n",
			dict.Detected, dict.Faults, dict.Signatures())
	}
	fmt.Println("== debugging loop ==")
	det, err := sess.Detect(*words, *cycles)
	if err != nil {
		die(err)
	}
	if !det.Failed {
		fmt.Println("detection: design passes — the injected error was not excited; try -fault-seed")
		flushTrace()
		return
	}
	fmt.Printf("detect:   FAILED outputs %v (replayed %d cycles × 64 patterns over %d inputs)\n",
		det.FailingOutputs, len(det.Stimulus), len(det.PIs))

	diag, err := sess.LocalizeDict(det, 4, 4)
	if err != nil {
		die(err)
	}
	if diag.Dict {
		fmt.Printf("localize: fault dictionary hit — suspects %v in tiles %v, zero probes\n",
			diag.Suspects, diag.Tiles)
	} else {
		fmt.Printf("localize: %d rounds, %d observation stages inserted, suspects %v in tiles %v\n",
			diag.Rounds, diag.Probes, diag.Suspects, diag.Tiles)
	}
	fmt.Printf("          tile-local effort: %v\n", diag.Effort)
	if plan != nil {
		fmt.Printf("overlay:  %d zero-CAD tap switch(es), %d CAD fallback round(s)\n",
			sess.OverlaySwitches, sess.OverlayFallbacks)
	}
	reportTiming("localization")

	var cor *debug.Correction
	if *repairSrch {
		var fellBack bool
		cor, fellBack, err = sess.CorrectAuto(diag, det, nil)
		if fellBack {
			fmt.Println("repair:   candidate search inconclusive — golden-copy fallback")
		}
	} else {
		cor, err = sess.CorrectFromGolden(diag, det)
	}
	if err != nil {
		die(err)
	}
	if cor.Repaired {
		fmt.Printf("repair:   %s repaired %v — %d candidate(s), %d survivor(s), %d lane batch(es), eco-verified=%v\n",
			cor.RepairKind, cor.Fixed, cor.Candidates, cor.Survivors, cor.Batches, cor.ECOVerified)
	}
	fmt.Printf("correct:  fixed %v, affected tiles %v, verified=%v\n",
		cor.Fixed, cor.Report.AffectedTiles, cor.Verified)
	fmt.Printf("          tile-local effort: %v\n", cor.Report.Effort)
	reportTiming("correction")
	if *showTiming {
		if err := lay.TimingEngine().SelfCheck(); err != nil {
			die(fmt.Errorf("delta STA diverged from full analysis: %w", err))
		}
		fmt.Println("timing:   delta STA verified bit-identical against a full analysis")
	}

	full, err := lay.FullRePlaceRoute(*seed + 99)
	if err != nil {
		die(err)
	}
	iters := diag.Rounds + 1 // observation inserts plus the correction
	fmt.Println("== effort summary ==")
	fmt.Printf("tiling (%d physical updates): %v\n", iters, sess.TileEffort)
	fmt.Printf("one full re-P&R:              %v\n", full)
	perIter := sess.TileEffort.Work() / float64(iters)
	fmt.Printf("speedup vs non-tiled per debugging iteration: %.1fx (work)\n", full.Work()/perIter)
	flushTrace()
}

// writeTraceOut appends one StageTrace as an NDJSON line and prints a
// one-line summary of what was written.
func writeTraceOut(path string, st *obs.StageTrace) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("-trace-out: %w", err)
	}
	defer f.Close()
	if err := obs.NewTraceLog(f).Write(st); err != nil {
		return fmt.Errorf("-trace-out: %w", err)
	}
	fmt.Printf("trace:    %d stage(s), wall %.1fms -> %s\n",
		len(st.Stages), float64(st.WallUs)/1000, path)
	return nil
}

// runRemote submits the campaign to a daemon, streams its progress and
// prints the result summary.
func runRemote(base, traceOut string, spec service.Spec) error {
	ctx := context.Background()
	cl := &service.Client{Base: base}
	if err := cl.Healthz(ctx); err != nil {
		return fmt.Errorf("daemon unreachable: %w", err)
	}
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("== campaign %s submitted to %s ==\n", st.ID, base)
	if err := cl.Events(ctx, st.ID, func(ev service.Event) {
		if ev.Round > 0 {
			fmt.Printf("[%s #%d] %s\n", ev.Stage, ev.Round, ev.Msg)
		} else {
			fmt.Printf("[%s] %s\n", ev.Stage, ev.Msg)
		}
	}); err != nil {
		return err
	}
	res, err := cl.Wait(ctx, st.ID, 0)
	if err != nil {
		return err
	}
	fmt.Println("== result ==")
	if res.FaultsTotal > 0 {
		fmt.Printf("fault universe: %d faults in %d batches\n", res.FaultsTotal, res.FaultBatches)
		fmt.Printf("detected %d (%.1f%% coverage), mean latency %.1f cycles, %.0f faults/sec\n",
			res.FaultsDetected, 100*res.FaultCoverage, res.MeanLatencyCycles, res.FaultsPerSec)
		fmt.Printf("artifact cache: %d hit(s), %d miss(es); wall %.1fms; digest %s\n",
			res.CacheHits, res.CacheMisses, res.WallMs, res.Digest)
		return fetchRemoteTrace(ctx, cl, st.ID, traceOut)
	}
	fmt.Printf("injected error: %s\n", res.Injected)
	fmt.Printf("detected=%v clean=%v iterations=%d rounds=%d probes=%d dict=%d fixed=%v\n",
		res.Detected, res.Clean, res.Iterations, res.Rounds, res.ProbesInserted, res.DictResolved, res.Fixed)
	if res.Repaired > 0 || res.RepairFallback {
		fmt.Printf("repair: %d candidate-search fix(es) (%s), %d candidate(s), %d survivor(s), %d lane batch(es), eco-verified=%v, fallback=%v\n",
			res.Repaired, res.RepairKind, res.Candidates, res.Survivors, res.CandidateBatches,
			res.ECOVerified, res.RepairFallback)
	}
	fmt.Printf("tile-local work %.0f vs full re-P&R %.0f — %.1fx per physical update\n",
		res.TileWork, res.FullWork, res.SpeedupPerIter)
	fmt.Printf("artifact cache: %d hit(s), %d miss(es); wall %.1fms; digest %s\n",
		res.CacheHits, res.CacheMisses, res.WallMs, res.Digest)
	return fetchRemoteTrace(ctx, cl, st.ID, traceOut)
}

// fetchRemoteTrace pulls a finished remote campaign's StageTrace and
// appends it to traceOut (no-op when -trace-out was not given).
func fetchRemoteTrace(ctx context.Context, cl *service.Client, id, traceOut string) error {
	if traceOut == "" {
		return nil
	}
	tr, err := cl.Trace(ctx, id)
	if err != nil {
		return fmt.Errorf("-trace-out: %w", err)
	}
	return writeTraceOut(traceOut, tr)
}
