// Command blifstat runs an external BLIF netlist through the front end —
// parse, technology-map to 4-LUTs, pack into CLBs — and reports the
// statistics Table 1 is built from. Users with the original MCNC
// distribution files can feed them straight in; the generated stand-ins
// can be exported with -emit for comparison.
//
// Usage:
//
//	blifstat design.blif
//	blifstat -emit 9sym > 9sym.blif     # export a generated benchmark
package main

import (
	"flag"
	"fmt"
	"os"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/blif"
	"fpgadbg/internal/pack"
	"fpgadbg/internal/synth"
)

func main() {
	emit := flag.String("emit", "", "write the named generated benchmark as BLIF to stdout and exit")
	flag.Parse()
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "blifstat:", err)
		os.Exit(1)
	}
	if *emit != "" {
		info, err := bench.ByName(*emit)
		if err != nil {
			die(err)
		}
		if err := blif.Write(os.Stdout, info.Build()); err != nil {
			die(err)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		die(err)
	}
	defer f.Close()
	nl, err := blif.Parse(f)
	if err != nil {
		die(err)
	}
	fmt.Printf("parsed:  %s: %v\n", nl.Name, nl.Stats())
	mapped, err := synth.TechMap(nl)
	if err != nil {
		die(err)
	}
	fmt.Printf("mapped:  %v\n", mapped.Stats())
	p, err := pack.Pack(mapped)
	if err != nil {
		die(err)
	}
	st := p.Stats()
	fmt.Printf("packed:  %d CLBs (LUT fill %.0f%%, %d/%d FFs beside their driver)\n",
		st.CLBs, st.AvgLUTFill*100, st.FFWithDriver, st.FFs)
}
