module fpgadbg

go 1.24
