// Quickstart: build a small design, technology-map it, create a tiled
// layout with resource slack, and apply one debugging change — watching
// how little of the design the change touches.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fpgadbg/internal/core"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

func main() {
	// 1. Describe a design: an 8-bit accumulator with a parity flag.
	nl := netlist.New("accumulator")
	var data []netlist.NetID
	for i := 0; i < 8; i++ {
		data = append(data, nl.AddPI(fmt.Sprintf("d%d", i)))
	}
	en := nl.AddPI("en")

	acc := make([]netlist.NetID, 8)
	for i := range acc {
		acc[i] = nl.AddNet(fmt.Sprintf("acc%d", i))
	}
	carry := en // gate the increment with enable
	for i := 0; i < 8; i++ {
		sum := nl.AddNet("")
		nl.MustAddLUT(fmt.Sprintf("add/s%d", i), logic.XorN(3), []netlist.NetID{data[i], acc[i], carry}, sum)
		c := nl.AddNet("")
		nl.MustAddLUT(fmt.Sprintf("add/c%d", i), logic.Maj3(), []netlist.NetID{data[i], acc[i], carry}, c)
		nl.MustAddDFF(fmt.Sprintf("add/ff%d", i), sum, acc[i], 0)
		nl.MarkPO(acc[i])
		carry = c
	}
	parity := nl.AddNet("parity")
	nl.MustAddLUT("flag/parity", logic.XorN(4), []netlist.NetID{acc[0], acc[2], acc[4], acc[6]}, parity)
	nl.MarkPO(parity)
	if err := nl.CheckDriven(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("design: ", nl.Stats())

	// 2. Emulate it: compile to the allocation-free execution core, bind
	// the inputs to slots once, and replay a clocked random stimulus — 64
	// test patterns per word, every cycle's outputs recorded in one Trace.
	mach, err := sim.Compile(nl)
	if err != nil {
		log.Fatal(err)
	}
	pis := nl.SortedPINames()
	if err := mach.BindNames(pis); err != nil {
		log.Fatal(err)
	}
	stim := testgen.RandomBlocks(len(pis), 32, 1)
	tr := mach.RunTrace(stim)
	cols, err := mach.POCols([]string{"parity"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("emulated %d cycles × 64 patterns; final parity word %#016x\n",
		tr.Cycles, tr.Out(tr.Cycles-1, cols[0]))

	// 3. Build the tiled physical design: map to 4-LUTs, pack into CLBs,
	// place-and-route with 20% slack, draw tile boundaries, lock
	// interfaces.
	lay, err := core.Build(nl, core.Spec{Overhead: 0.20, TileFrac: 0.25, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("device: ", lay.Dev)
	fmt.Printf("layout:  %d CLBs on %d sites across %d tiles\n",
		lay.NumCLBs(), lay.Dev.NumCLBSites(), len(lay.Tiles))
	free := lay.TileFree()
	for _, t := range lay.Tiles {
		fmt.Printf("  tile %d %v: %d free CLBs for future test logic\n", t.ID, t.Rect, free[t.ID])
	}

	// 4. A debugging change arrives: tap the parity net with an
	// observation stage (buffer + capture flip-flop).
	pNet, _ := lay.NL.NetByName("m_parity")
	if pNet == netlist.NilNet {
		// mapped netlists keep original net names for named nets
		pNet, _ = lay.NL.NetByName("parity")
	}
	d := lay.NL.AddNet("obs_d")
	q := lay.NL.AddNet("obs_q")
	lut, err := lay.NL.AddLUT("obs/buf", logic.BufN(), []netlist.NetID{pNet}, d)
	if err != nil {
		log.Fatal(err)
	}
	ff, err := lay.NL.AddDFF("obs/ff", d, q, 0)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := lay.ApplyDelta(core.Delta{Added: []netlist.CellID{lut, ff}})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Only the affected tiles were re-placed-and-routed.
	fmt.Printf("\nchange:  observation stage inserted\n")
	fmt.Printf("affected tiles: %v of %d\n", rep.AffectedTiles, len(lay.Tiles))
	fmt.Printf("tile-local effort: %v\n", rep.Effort)
	full, err := lay.FullRePlaceRoute(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full re-P&R:       %v\n", full)
	fmt.Printf("=> the tiled update did %.1fx less work\n", full.Work()/rep.Effort.Work())
	if err := lay.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout invariants hold ✓")
}
