// Ecoflow: an engineering change arrives after the design is already
// placed and routed. The flow diffs the revised netlist against the
// current one (package eco), traces the change through the hierarchy to
// the affected tiles, applies it as a tile-local update, and regenerates
// only the partial bitstream frames of those tiles (package bitstream) —
// Section 5 of the paper end to end.
//
//	go run ./examples/ecoflow
package main

import (
	"fmt"
	"log"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/bitstream"
	"fpgadbg/internal/core"
	"fpgadbg/internal/eco"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/synth"
)

func main() {
	info, err := bench.ByName("c880")
	if err != nil {
		log.Fatal(err)
	}
	mapped, err := synth.TechMap(info.Build())
	if err != nil {
		log.Fatal(err)
	}
	lay, err := core.BuildMapped(mapped, core.Spec{Overhead: 0.2, TileFrac: 0.15, Seed: 1, PlaceEffort: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %s: %v, %d tiles\n", info.Name, lay.Dev, len(lay.Tiles))

	base, err := bitstream.Full(lay)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline bitstream: %d frames, %d bytes, digest %s\n",
		len(base.Frames), base.Size(), base.Digest())

	// The "revised HDL": the designer changes one ALU gate's function.
	// We model it as the revised netlist; eco.Diff recovers the change.
	revised := lay.NL.Clone()
	var target netlist.CellID = netlist.NilCell
	for ci := range revised.Cells {
		c := &revised.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) == 2 {
			target = netlist.CellID(ci)
			break
		}
	}
	revised.Cells[target].Func = logic.XnorN(2)

	changes := eco.Diff(lay.NL, revised)
	fmt.Printf("\nengineering change: %d cell(s) differ\n", len(changes.Cells))
	tree := eco.BuildTree(lay.NL)
	fmt.Printf("traced to modules: %v\n", tree.TraceToModules(changes.Names()))

	// Apply the change in place and push it through the tiling engine.
	var modified []netlist.CellID
	for _, ch := range changes.Cells {
		id, ok := lay.NL.CellByName(ch.Name)
		if !ok {
			log.Fatalf("cell %q missing", ch.Name)
		}
		rid, _ := revised.CellByName(ch.Name)
		lay.NL.Cells[id].Func = revised.Cells[rid].Func.Clone()
		modified = append(modified, id)
	}
	rep, err := lay.ApplyDelta(core.Delta{Modified: modified})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("affected tiles: %v (of %d)\n", rep.AffectedTiles, len(lay.Tiles))
	fmt.Printf("tile-local effort: %v\n", rep.Effort)

	// ECO sign-off: the updated netlist must now behave exactly like the
	// revised one (replayed through the compiled simulator).
	mm, err := eco.Verify(revised, lay.NL, 8, 4, 5)
	if err != nil {
		log.Fatal(err)
	}
	if mm != nil {
		log.Fatalf("applied change diverges from revision: %v", mm)
	}
	fmt.Println("sign-off: applied change matches the revised netlist ✓")

	// Partial reconfiguration: regenerate only the affected frames.
	partial, err := bitstream.Partial(lay, rep.AffectedTiles)
	if err != nil {
		log.Fatal(err)
	}
	after, err := bitstream.Full(lay)
	if err != nil {
		log.Fatal(err)
	}
	stitched := bitstream.Stitch(base, partial)
	fmt.Printf("\npartial bitstream: %d bytes (%.1f%% of full)\n",
		partial.Size(), 100*float64(partial.Size())/float64(after.Size()))
	if stitched.Equal(after) {
		fmt.Println("stitching the partial frames onto the old image reproduces the new image ✓")
	} else {
		log.Fatal("partial reconfiguration mismatch")
	}
}
