// Debugloop: the paper's full scenario on the DES benchmark — a design
// error hides in a key-specific DES datapath; emulation-based debugging
// detects it, localizes it by inserting observation logic (each insertion
// a tile-local physical change), corrects it, and verifies — all without
// ever re-placing-and-routing the untouched 90% of the design.
//
//	go run ./examples/debugloop
package main

import (
	"fmt"
	"log"
	"time"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/debug"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
	"fpgadbg/internal/testgen"
)

func main() {
	// The DES design is the paper's largest benchmark (1050 CLBs); use
	// s9234 (235 CLBs) to keep this example fast. Swap freely.
	info, err := bench.ByName("s9234")
	if err != nil {
		log.Fatal(err)
	}
	golden, err := synth.TechMap(info.Build())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden %s: %v\n", info.Name, golden.Stats())

	// Every detect/localize round below replays stimulus through the
	// compiled execution core; measure its raw throughput first.
	mach, err := sim.Compile(golden)
	if err != nil {
		log.Fatal(err)
	}
	pis := golden.SortedPINames()
	if err := mach.BindNames(pis); err != nil {
		log.Fatal(err)
	}
	stim := testgen.RandomBlocks(len(pis), 512, 1)
	start := time.Now()
	tr := mach.RunTrace(stim)
	el := time.Since(start)
	fmt.Printf("emulation: %d pattern-cycles in %v (%.0f Mpat-cyc/s)\n",
		tr.Cycles*64, el.Round(time.Microsecond), float64(tr.Cycles*64)/el.Seconds()/1e6)

	// Inject a design error the emulator has to find.
	impl := golden.Clone()
	var inj *faults.Injection
	for seed := int64(1); ; seed++ {
		inj, err = faults.Inject(impl, faults.WrongNet, seed)
		if err == nil {
			break
		}
	}
	fmt.Printf("hidden error: %v\n", inj)

	lay, err := core.BuildMapped(impl, core.Spec{Overhead: 0.2, TileFrac: 0.1, Seed: 1, PlaceEffort: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiled layout: %v, %d tiles\n", lay.Dev, len(lay.Tiles))

	sess, err := debug.NewSession(golden, lay, 7)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sess.RunLoop(4, 8, 6, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Clean {
		fmt.Println("loop did not converge (error not excited by this stimulus)")
		return
	}
	fmt.Printf("\ndebugging converged in %d iteration(s)\n", rep.Iterations)
	for i, d := range rep.Diagnoses {
		fmt.Printf("  iteration %d: %d rounds, %d probes, suspects narrowed to %d cells in tiles %v\n",
			i+1, d.Rounds, d.Probes, len(d.Suspects), d.Tiles)
	}
	for i, c := range rep.Corrections {
		fmt.Printf("  correction %d: fixed %v (affected tiles %v) verified=%v\n",
			i+1, c.Fixed, c.Report.AffectedTiles, c.Verified)
	}
	fmt.Printf("\ntotal tile-local CAD effort: %v\n", rep.TileEffort)
	fmt.Printf("one full re-place-and-route: %v\n", rep.FullEffort)
	fmt.Printf("=> per-iteration speedup %.1fx\n",
		rep.FullEffort.Work()/(rep.TileEffort.Work()/float64(rep.Iterations+len(rep.Diagnoses))))
	if err := lay.Check(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout invariants hold ✓")
}
