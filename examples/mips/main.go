// MIPS test-point study: tile the MIPS R2000 stand-in core and explore
// the paper's Figures 3 and 4 on it interactively — how many tiles does
// introducing N CLBs of test logic touch, and how much logic can each of
// k test points take without recruiting neighbor tiles?
//
//	go run ./examples/mips
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/eco"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

func main() {
	info, err := bench.ByName("MIPS R2000")
	if err != nil {
		log.Fatal(err)
	}
	nl := info.Build()
	fmt.Printf("MIPS core: %v\n", nl.Stats())

	// Emulate the core through the compiled trace API — the substrate all
	// debugging experiments below run on.
	mach, err := sim.Compile(nl)
	if err != nil {
		log.Fatal(err)
	}
	pis := nl.SortedPINames()
	if err := mach.BindNames(pis); err != nil {
		log.Fatal(err)
	}
	stim := testgen.RandomBlocks(len(pis), 256, 1)
	start := time.Now()
	tr := mach.RunTrace(stim)
	el := time.Since(start)
	fmt.Printf("emulation: %d cycles × 64 patterns in %v (%.0f Mpat-cyc/s)\n",
		tr.Cycles, el.Round(time.Microsecond), float64(tr.Cycles*64)/el.Seconds()/1e6)

	// The hierarchy tree recovered from cell names is the paper's §5.1
	// back-annotation structure.
	tree := eco.BuildTree(nl)
	fmt.Println("design hierarchy (top two levels):")
	for _, m := range tree.Modules() {
		depth := 0
		for _, ch := range m {
			if ch == '/' {
				depth++
			}
		}
		if depth <= 1 {
			cells, _ := tree.CellsUnder(m)
			fmt.Printf("  %-16s %5d cells\n", m, len(cells))
		}
	}

	lay, err := core.Build(nl, core.Spec{Overhead: 0.2, TileFrac: 0.1, Seed: 1, PlaceEffort: 0.35})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntiled: %v, %d tiles, %d CLBs\n", lay.Dev, len(lay.Tiles), lay.NumCLBs())

	fmt.Println("\nFigure-3 view — tiles affected by introducing N CLBs of test logic:")
	seed := 0
	for _, n := range []int{1, 10, 25, 50, 100} {
		tiles, err := lay.AffectedTiles(seed, n)
		if err != nil {
			fmt.Printf("  %3d CLBs: exceeds total slack (all tiles affected)\n", n)
			continue
		}
		fmt.Printf("  %3d CLBs: %2d of %d tiles (%.0f%%)\n",
			n, len(tiles), len(lay.Tiles), 100*float64(len(tiles))/float64(len(lay.Tiles)))
	}

	fmt.Println("\nFigure-4 view — max test logic per point for k spread points:")
	for _, k := range []int{1, 4, 10, 25, 50, 100} {
		fmt.Printf("  %3d points: up to %2d CLBs each (clustered: %d)\n",
			k, lay.MaxTestLogic(k), lay.MaxTestLogicClustered(k))
	}

	// Where would a change to the ALU land physically? Mapped cells carry
	// the module path in their names (back annotation through mapping), so
	// tracing "mips/alu" to tiles is a name scan plus the placement.
	fmt.Println("\nwhere would a change to the ALU land?")
	tiles := map[int]int{}
	for ci := range lay.NL.Cells {
		c := &lay.NL.Cells[ci]
		if c.Dead || !strings.Contains(c.Name, "mips/alu") {
			continue
		}
		if clb, ok := lay.Packed.CellCLB[netlist.CellID(ci)]; ok {
			tiles[lay.TileOf(lay.CLBLoc[clb])]++
		}
	}
	fmt.Printf("  ALU logic spreads over %d tiles (tile -> #cells): %v\n", len(tiles), tiles)
}
