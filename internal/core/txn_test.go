package core

import (
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/timing"
)

// modifyOneCell rewrites the function of one multi-input LUT in place,
// the shape of a correction delta.
func modifyOneCell(t *testing.T, l *Layout) Delta {
	t.Helper()
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if c.Dead || c.Kind != netlist.KindLUT || len(c.Fanin) != 2 {
			continue
		}
		if err := l.NL.SetFunc(netlist.CellID(ci), logic.XorN(2)); err != nil {
			t.Fatal(err)
		}
		return Delta{Modified: []netlist.CellID{netlist.CellID(ci)}}
	}
	t.Fatal("no 2-input LUT found")
	return Delta{}
}

func TestCheckpointRollbackRestoresLayout(t *testing.T) {
	l := buildTest(t, 120, Spec{Seed: 21, TileFrac: 0.1})
	pristine := l.StateDigest()

	cp := l.Checkpoint()
	d := insertObservers(t, l, 3)
	if _, err := l.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if l.StateDigest() == pristine {
		t.Fatal("delta did not change the state digest")
	}
	if err := l.Rollback(cp); err != nil {
		t.Fatal(err)
	}
	if got := l.StateDigest(); got != pristine {
		t.Fatalf("rollback digest %s != pristine %s", got, pristine)
	}
	if err := VerifyLayout(l); err != nil {
		t.Fatal(err)
	}

	// The rolled-back layout must remain fully usable.
	if _, err := l.ApplyDelta(insertObservers(t, l, 2)); err != nil {
		t.Fatal(err)
	}
	if err := VerifyLayout(l); err != nil {
		t.Fatal(err)
	}
}

func TestNestedCheckpoints(t *testing.T) {
	l := buildTest(t, 120, Spec{Seed: 22, TileFrac: 0.1})
	pristine := l.StateDigest()

	outer := l.Checkpoint()
	if _, err := l.ApplyDelta(insertObservers(t, l, 2)); err != nil {
		t.Fatal(err)
	}
	afterOuter := l.StateDigest()

	inner := l.Checkpoint()
	if _, err := l.ApplyDelta(modifyOneCell(t, l)); err != nil {
		t.Fatal(err)
	}
	if err := l.Rollback(inner); err != nil {
		t.Fatal(err)
	}
	if got := l.StateDigest(); got != afterOuter {
		t.Fatalf("inner rollback digest %s != %s", got, afterOuter)
	}

	// Inner commit keeps the change but the outer rollback undoes both.
	inner2 := l.Checkpoint()
	if _, err := l.ApplyDelta(modifyOneCell(t, l)); err != nil {
		t.Fatal(err)
	}
	l.Commit(inner2)
	if err := l.Rollback(outer); err != nil {
		t.Fatal(err)
	}
	if got := l.StateDigest(); got != pristine {
		t.Fatalf("outer rollback digest %s != pristine %s", got, pristine)
	}
	if err := VerifyLayout(l); err != nil {
		t.Fatal(err)
	}
}

// TestApplyDeltaFailureRollsBack pins the transactional contract: a
// failed physical update — here a re-route that exhausts channel
// capacity — must leave the layout bit-identical to its pre-call state,
// with VerifyLayout clean after the automatic rollback.
func TestApplyDeltaFailureRollsBack(t *testing.T) {
	// Strangle the channels: the layout's existing wiring already exceeds
	// capacity 1, so the region re-route can never converge. The netlist
	// edit preceding the delta sits inside an outer checkpoint, as in the
	// debug loop.
	l2 := buildTest(t, 120, Spec{Seed: 23, TileFrac: 0.1})
	oldCap := l2.Grid.Cap
	want := l2.StateDigest()
	cp := l2.Checkpoint()
	l2.Grid.Cap = 1
	d2 := modifyOneCell(t, l2)
	if _, err := l2.ApplyDelta(d2); err == nil {
		t.Fatal("ApplyDelta succeeded with capacity 1")
	}
	l2.Grid.Cap = oldCap
	if err := l2.Rollback(cp); err != nil {
		t.Fatal(err)
	}
	if got := l2.StateDigest(); got != want {
		t.Fatalf("failure rollback digest %s != pristine %s", got, want)
	}
	if err := VerifyLayout(l2); err != nil {
		t.Fatal(err)
	}

	// An unpackable delta (more new logic than the device can absorb)
	// must also roll back cleanly.
	l3 := buildTest(t, 120, Spec{Seed: 24, TileFrac: 0.1, Overhead: 0.12})
	want3 := l3.StateDigest()
	free := 0
	for _, f := range l3.TileFree() {
		free += f
	}
	cp3 := l3.Checkpoint()
	big := insertObservers(t, l3, 2*free+4)
	if _, err := l3.ApplyDelta(big); err == nil {
		t.Fatal("oversized insertion succeeded")
	}
	if err := l3.Rollback(cp3); err != nil {
		t.Fatal(err)
	}
	if got := l3.StateDigest(); got != want3 {
		t.Fatalf("oversized-delta rollback digest %s != pristine %s", got, want3)
	}
	if err := VerifyLayout(l3); err != nil {
		t.Fatal(err)
	}
}

// TestPersistentRouterMatchesScratch is the router differential oracle
// at the layout level: the persistent engine (scratch reused across
// updates) must leave the layout bit-identical to fresh-router routing
// of the same deltas.
func TestPersistentRouterMatchesScratch(t *testing.T) {
	warm := buildTest(t, 150, Spec{Seed: 25, TileFrac: 0.1})
	cold := warm.Clone()
	if warm.StateDigest() != cold.StateDigest() {
		t.Fatal("clone digest differs")
	}
	for round := 0; round < 3; round++ {
		dw := insertObservers(t, warm, 2)
		dc := insertObservers(t, cold, 2)
		if _, err := warm.ApplyDelta(dw); err != nil {
			t.Fatal(err)
		}
		cold.InvalidateRouter()
		if _, err := cold.ApplyDelta(dc); err != nil {
			t.Fatal(err)
		}
		if w, c := warm.StateDigest(), cold.StateDigest(); w != c {
			t.Fatalf("round %d: persistent router digest %s != scratch %s", round, w, c)
		}
	}
}

// TestTimingEngineTracksDeltas pins the incremental STA: after every
// ApplyDelta and rollback the engine must agree bit-identically with a
// from-scratch analysis of the same state.
func TestTimingEngineTracksDeltas(t *testing.T) {
	l := buildTest(t, 150, Spec{Seed: 26, TileFrac: 0.1})
	if err := l.EnableTiming(timing.DefaultModel()); err != nil {
		t.Fatal(err)
	}
	base, _ := l.CriticalDelay()
	if base <= 0 {
		t.Fatal("no critical path")
	}
	if err := l.TimingEngine().SelfCheck(); err != nil {
		t.Fatal(err)
	}

	cp := l.Checkpoint()
	if _, err := l.ApplyDelta(insertObservers(t, l, 3)); err != nil {
		t.Fatal(err)
	}
	if err := l.TimingEngine().SelfCheck(); err != nil {
		t.Fatalf("after insert: %v", err)
	}
	if eng := l.TimingEngine(); eng.LastCone >= eng.LiveCells {
		t.Logf("cone %d of %d cells (no savings on this design size)", eng.LastCone, eng.LiveCells)
	}
	if _, err := l.ApplyDelta(modifyOneCell(t, l)); err != nil {
		t.Fatal(err)
	}
	if err := l.TimingEngine().SelfCheck(); err != nil {
		t.Fatalf("after modify: %v", err)
	}

	if err := l.Rollback(cp); err != nil {
		t.Fatal(err)
	}
	if err := l.TimingEngine().SelfCheck(); err != nil {
		t.Fatalf("after rollback: %v", err)
	}
	got, _ := l.CriticalDelay()
	if got != base {
		t.Fatalf("critical after rollback %v != %v", got, base)
	}
	// Against the standalone analyzer too.
	rep, err := timing.Analyze(l.TimingInput(), timing.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Critical != got {
		t.Fatalf("engine %v != Analyze %v", got, rep.Critical)
	}
}
