package core

import (
	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/pack"
	"fpgadbg/internal/route"
)

// Clone returns a deep copy of the layout: an independent netlist,
// packing, placement and routing that can be mutated (ApplyDelta,
// debugging campaigns) without disturbing the original. The campaign
// service caches one pristine layout per design fingerprint and hands
// each campaign a clone, so concurrent campaigns on the same design pay
// the initial place-and-route once.
func (l *Layout) Clone() *Layout {
	nl := l.NL.Clone()
	out := &Layout{
		Spec:        l.Spec,
		Dev:         l.Dev,
		NL:          nl,
		Grid:        l.Grid, // immutable after NewGrid: dimensions and capacity only
		CLBLoc:      append([]device.XY(nil), l.CLBLoc...),
		PadLoc:      make(map[netlist.NetID]device.XY, len(l.PadLoc)),
		Routes:      make(map[netlist.NetID]*route.Net, len(l.Routes)),
		Tiles:       append([]Tile(nil), l.Tiles...),
		rowCuts:     append([]int(nil), l.rowCuts...),
		colCuts:     append([]int(nil), l.colCuts...),
		BuildEffort: l.BuildEffort,
		fixedWiring: append([]route.EdgeID(nil), l.fixedWiring...),
		seq:         l.seq,
	}
	out.Packed = &pack.Packed{
		NL:      nl,
		CLBs:    make([]pack.CLB, len(l.Packed.CLBs)),
		CellCLB: make(map[netlist.CellID]int, len(l.Packed.CellCLB)),
	}
	for i, clb := range l.Packed.CLBs {
		out.Packed.CLBs[i] = pack.CLB{
			LUTs: append([]netlist.CellID(nil), clb.LUTs...),
			FFs:  append([]netlist.CellID(nil), clb.FFs...),
		}
	}
	for cell, clb := range l.Packed.CellCLB {
		out.Packed.CellCLB[cell] = clb
	}
	for k, v := range l.PadLoc {
		out.PadLoc[k] = v
	}
	for id, rn := range l.Routes {
		out.Routes[id] = &route.Net{
			ID:     rn.ID,
			Pins:   append([]device.XY(nil), rn.Pins...),
			Weight: rn.Weight,
			Route:  append([]route.EdgeID(nil), rn.Route...),
			Locked: rn.Locked,
		}
	}
	return out
}
