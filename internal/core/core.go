package core

import (
	"fmt"
	"sort"
	"time"

	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/pack"
	"fpgadbg/internal/route"
)

// Spec configures tiling.
type Spec struct {
	// Overhead is the resource slack left for future logic introduction
	// (the paper's Table 1 uses ≈0.20; below 0.10 there is no room to
	// maneuver).
	Overhead float64
	// TileCLBs is the target tile size in CLB sites. When zero, TileFrac
	// is used instead.
	TileCLBs int
	// TileFrac is the target tile size as a fraction of the device's CLB
	// sites (Figure 5 sweeps 0.025, 0.05, 0.15, 0.25). Defaults to 0.10.
	TileFrac float64
	// ChannelWidth overrides the device routing capacity (0 = default).
	ChannelWidth int
	// Seed drives every randomized phase deterministically.
	Seed int64
	// PlaceEffort scales annealing work (1.0 = full quality).
	PlaceEffort float64
	// UniformBoundaries disables the min-crossing boundary adjustment
	// sweep (ablation knob; the default draws boundaries minimizing
	// inter-tile interconnect, per the paper's §3.2).
	UniformBoundaries bool
	// OverlayReserve withholds this many tracks per channel segment from
	// the initial user routing, leaving headroom for debug-overlay trunk
	// wiring routed afterwards at full capacity (RouteReserved). Zero
	// disables the reservation; incremental reroutes never re-apply it —
	// once routed, the trunks physically occupy the reserved tracks.
	OverlayReserve int
	// Obs, when set, receives place/route spans for the initial build
	// (BuildMapped clears it from the stored Layout.Spec afterwards, so
	// a cached pristine layout never retains a campaign's trace; attach
	// per-campaign traces with Layout.SetObs instead). Never part of any
	// layout digest or cache key.
	Obs *obs.Trace
}

func (s Spec) withDefaults() Spec {
	if s.Overhead == 0 {
		s.Overhead = 0.20
	}
	if s.TileCLBs == 0 && s.TileFrac == 0 {
		s.TileFrac = 0.10
	}
	if s.PlaceEffort == 0 {
		s.PlaceEffort = 1.0
	}
	return s
}

// Tile is one independent physical partition.
type Tile struct {
	ID   int
	Rect device.Rect
	// Row/Col locate the tile in the tile grid (adjacency).
	Row, Col int
}

// Effort accumulates back-end CAD work. PlaceMoves and RouteExpansions are
// deterministic counters; Wall is host time.
type Effort struct {
	PlaceMoves      int64
	RouteExpansions int64
	CellsPlaced     int
	NetsRouted      int
	Wall            time.Duration
}

// Work is the combined deterministic effort metric used for Figure 5
// speedups.
func (e Effort) Work() float64 { return float64(e.PlaceMoves + e.RouteExpansions) }

// Add accumulates another effort sample.
func (e *Effort) Add(o Effort) {
	e.PlaceMoves += o.PlaceMoves
	e.RouteExpansions += o.RouteExpansions
	e.CellsPlaced += o.CellsPlaced
	e.NetsRouted += o.NetsRouted
	e.Wall += o.Wall
}

func (e Effort) String() string {
	return fmt.Sprintf("moves=%d expansions=%d cells=%d nets=%d wall=%s",
		e.PlaceMoves, e.RouteExpansions, e.CellsPlaced, e.NetsRouted, e.Wall)
}

// Layout is a tiled, placed-and-routed design. NL is the live logical
// netlist (already technology mapped); debugging changes mutate it through
// ApplyDelta.
type Layout struct {
	Spec   Spec
	Dev    device.Device
	NL     *netlist.Netlist
	Packed *pack.Packed
	Grid   *route.Grid

	// CLBLoc is the placement of every CLB (indexed like Packed.CLBs).
	CLBLoc []device.XY
	// PadLoc places one IOB pad per PI and PO net.
	PadLoc map[netlist.NetID]device.XY
	// Routes holds the routed tree of every net spanning 2+ blocks.
	Routes map[netlist.NetID]*route.Net

	Tiles []Tile
	// tileRows/tileCols are the boundary cut positions used to map sites
	// to tiles.
	rowCuts, colCuts []int

	// BuildEffort is the cost of the initial place-and-route.
	BuildEffort Effort

	// fixedWiring is permanently locked non-netlist wiring (debug-overlay
	// trunks placed by RouteReserved). It is charged into every routing
	// pass so user nets route around it, counted against channel capacity
	// by Check, and copied by Clone; ApplyDelta never rips it up.
	fixedWiring []route.EdgeID

	seq int // fresh-name counter for inserted logic

	// router is the persistent routing engine, created lazily and reused
	// across every incremental update; clones start without one. See
	// txn.go.
	router *route.Router
	// journal and txnDepth implement layout transactions (txn.go).
	journal  []physOp
	txnDepth int
	// sta is the optional incremental timing engine state (sta.go).
	sta *staState
	// obs is the attached per-campaign trace; place/route/sta spans land
	// on it. Clones start detached (nil) and a nil trace is a no-op, so
	// untraced layouts pay one pointer test per phase. See SetObs.
	obs *obs.Trace
}

// SetObs attaches a per-campaign trace: subsequent placement anneals,
// router passes and timing resyncs open place/route/sta spans on it.
// Pass nil to detach — the service's layout pool does this at check-in
// so a pooled layout never writes to a finished campaign's trace.
func (l *Layout) SetObs(t *obs.Trace) {
	l.obs = t
	if l.router != nil {
		l.router.Obs = t
	}
}

// NumCLBs returns the number of occupied CLB sites (the paper's "design
// size" unit).
func (l *Layout) NumCLBs() int {
	n := 0
	for i := range l.Packed.CLBs {
		if !l.Packed.Empty(i) {
			n++
		}
	}
	return n
}

// TileOf returns the tile index containing a CLB site.
func (l *Layout) TileOf(p device.XY) int {
	col := cutIndex(l.colCuts, p.X)
	row := cutIndex(l.rowCuts, p.Y)
	return row*len(l.colCuts) + col
}

// cutIndex returns the index of the interval of cuts containing v, where
// cuts[i] is the inclusive upper bound of interval i.
func cutIndex(cuts []int, v int) int {
	for i, hi := range cuts {
		if v <= hi {
			return i
		}
	}
	return len(cuts) - 1
}

// TileUsage returns, per tile, the number of occupied CLB sites.
func (l *Layout) TileUsage() []int {
	used := make([]int, len(l.Tiles))
	for i := range l.Packed.CLBs {
		if l.Packed.Empty(i) {
			continue
		}
		used[l.TileOf(l.CLBLoc[i])]++
	}
	return used
}

// TileFree returns, per tile, the number of free CLB sites — the slack
// available for test-logic introduction.
func (l *Layout) TileFree() []int {
	used := l.TileUsage()
	free := make([]int, len(l.Tiles))
	for i, t := range l.Tiles {
		free[i] = t.Rect.Area() - used[i]
	}
	return free
}

// Neighbors returns tile IDs adjacent (edge-sharing) to t in the tile
// grid.
func (l *Layout) Neighbors(t int) []int {
	rows, cols := len(l.rowCuts), len(l.colCuts)
	r, c := t/cols, t%cols
	var out []int
	if r > 0 {
		out = append(out, t-cols)
	}
	if r < rows-1 {
		out = append(out, t+cols)
	}
	if c > 0 {
		out = append(out, t-1)
	}
	if c < cols-1 {
		out = append(out, t+1)
	}
	return out
}

// AffectedTiles expands from a seed tile over neighbors until the visited
// tiles hold at least needCLBs free sites — the paper's neighbor-
// recruitment rule behind Figure 3. The seed tile is always affected.
func (l *Layout) AffectedTiles(seed, needCLBs int) ([]int, error) {
	if seed < 0 || seed >= len(l.Tiles) {
		return nil, fmt.Errorf("core: no tile %d", seed)
	}
	free := l.TileFree()
	visited := []int{seed}
	inSet := map[int]bool{seed: true}
	capacity := free[seed]
	for i := 0; capacity < needCLBs; i++ {
		if i >= len(visited) {
			return nil, fmt.Errorf("core: design cannot absorb %d new CLBs (only %d free sites)", needCLBs, capacity)
		}
		for _, nb := range l.Neighbors(visited[i]) {
			if inSet[nb] {
				continue
			}
			inSet[nb] = true
			visited = append(visited, nb)
			capacity += free[nb]
			if capacity >= needCLBs {
				break
			}
		}
	}
	return visited, nil
}

// MaxTestLogic returns the largest per-point test-logic size (in CLBs)
// that k test points can each absorb without recruiting neighbor tiles.
// Points spread round-robin over the tiles with the most slack (the
// debugging engineer places probes where room exists), the paper's
// Figure 4 setup. Clustered distributions divide single-tile slack
// instead; see MaxTestLogicClustered.
func (l *Layout) MaxTestLogic(points int) int {
	if points <= 0 {
		return 0
	}
	free := l.TileFree()
	order := make([]int, len(l.Tiles))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if free[order[i]] != free[order[j]] {
			return free[order[i]] > free[order[j]]
		}
		return order[i] < order[j]
	})
	useTiles := points
	if useTiles > len(order) {
		useTiles = len(order)
	}
	perTile := make([]int, useTiles)
	for p := 0; p < points; p++ {
		perTile[p%useTiles]++
	}
	best := -1
	for i, cnt := range perTile {
		m := free[order[i]] / cnt
		if best == -1 || m < best {
			best = m
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// MaxTestLogicClustered is the clustered-distribution variant: all k
// points land in the tile with the most slack.
func (l *Layout) MaxTestLogicClustered(points int) int {
	if points <= 0 {
		return 0
	}
	free := l.TileFree()
	best := 0
	for _, f := range free {
		if f > best {
			best = f
		}
	}
	return best / points
}

// RegionOf returns the rectangle set covered by the given tiles.
func (l *Layout) RegionOf(tiles []int) device.RectSet {
	rs := make(device.RectSet, 0, len(tiles))
	for _, t := range tiles {
		rs = append(rs, l.Tiles[t].Rect)
	}
	return rs
}

// freshName returns a unique suffix for inserted logic.
func (l *Layout) freshName(base string) string {
	l.setSeq(l.seq + 1)
	return fmt.Sprintf("%s@%d", base, l.seq)
}
