// Package core implements the paper's contribution: physical-design tiling
// for FPGA emulation debugging. A Layout is a placed-and-routed design
// whose device area is partitioned into independent rectangular tiles with
// locked interfaces. Debugging steps (test-logic insertion, error
// correction) are applied as netlist deltas; the engine identifies the
// affected tiles, recruits neighbors when free resources run short, clears
// and re-places-and-routes only those tiles, and re-locks the interfaces —
// so back-end CAD effort scales with the change, not the design.
//
// The three baselines of Figure 5 are provided alongside: full
// re-place-and-route (functional-block granularity, the Quick_ECO model —
// the paper treats each benchmark as a single functional block) and an
// incremental place-and-route model (ripple re-placement without locked
// interfaces).
//
// The physical state is transactional (DESIGN.md §11): Checkpoint opens
// an undo journal spanning the netlist, packing, placement, pads and
// routes; Rollback restores the layout bit-identically in O(changes)
// and Commit nests. ApplyDelta runs inside its own transaction, so a
// failed update can never leave a half-mutated layout. A persistent
// route.Router and an optional incremental timing.Engine (EnableTiming)
// ride along, giving the debug loop tile-local routing and delta STA
// without per-update setup cost; StateDigest and VerifyLayout are the
// bit-identity and invariant oracles over all of it.
package core
