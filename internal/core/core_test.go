package core

import (
	"math/rand"
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// testDesign builds a deterministic random sequential design with roughly
// the requested number of 4-LUT-sized nodes.
func testDesign(t testing.TB, nodes int, seed int64) *netlist.Netlist {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	nl := netlist.New("tdesign")
	var nets []netlist.NetID
	for i := 0; i < 8; i++ {
		nets = append(nets, nl.AddPI(""))
	}
	for i := 0; i < nodes; i++ {
		k := 2 + r.Intn(3)
		fanin := make([]netlist.NetID, k)
		for j := range fanin {
			fanin[j] = nets[r.Intn(len(nets))]
		}
		out := nl.AddNet("")
		if r.Intn(7) == 0 {
			nl.MustAddDFF("", fanin[0], out, 0)
		} else {
			cov := logic.Cover{N: k}
			for c := 0; c < 1+r.Intn(3); c++ {
				var cu logic.Cube
				for v := 0; v < k; v++ {
					switch r.Intn(3) {
					case 0:
						cu = cu.WithLit(v, false)
					case 1:
						cu = cu.WithLit(v, true)
					}
				}
				cov.Cubes = append(cov.Cubes, cu)
			}
			nl.MustAddLUT("", cov, fanin, out)
		}
		nets = append(nets, out)
	}
	for i := 0; i < 6; i++ {
		nl.MarkPO(nets[len(nets)-1-i*3])
	}
	if err := nl.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func buildTest(t testing.TB, nodes int, spec Spec) *Layout {
	t.Helper()
	if spec.PlaceEffort == 0 {
		spec.PlaceEffort = 0.25 // keep unit tests quick
	}
	l, err := Build(testDesign(t, nodes, 12345), spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBuildSmallDesign(t *testing.T) {
	l := buildTest(t, 120, Spec{Seed: 1})
	if l.NumCLBs() == 0 {
		t.Fatal("no CLBs")
	}
	// Slack: device must offer at least 20% free sites.
	if l.Dev.NumCLBSites() < int(float64(l.NumCLBs())*1.2) {
		t.Fatalf("device %v lacks 20%% slack over %d CLBs", l.Dev, l.NumCLBs())
	}
	if len(l.Tiles) < 4 {
		t.Fatalf("expected several tiles, got %d", len(l.Tiles))
	}
	if l.BuildEffort.Work() == 0 {
		t.Fatal("no build effort recorded")
	}
}

func TestAreaOverheadMatchesSpec(t *testing.T) {
	for _, ov := range []float64{0.10, 0.20, 0.30} {
		l := buildTest(t, 80, Spec{Seed: 2, Overhead: ov})
		got := float64(l.Dev.NumCLBSites())/float64(l.NumCLBs()) - 1
		if got < ov-0.001 {
			t.Fatalf("overhead %.2f requested, layout has %.3f", ov, got)
		}
		// Must not wildly exceed the request (square-sizing granularity +
		// one row at most).
		if got > ov+0.45 {
			t.Fatalf("overhead %.2f requested, layout has %.3f (oversized)", ov, got)
		}
	}
}

func TestTilePartitionAndAdjacency(t *testing.T) {
	l := buildTest(t, 120, Spec{Seed: 3, TileFrac: 0.1})
	// Every site maps to exactly one tile (Check covers this); adjacency
	// is symmetric.
	for ti := range l.Tiles {
		for _, nb := range l.Neighbors(ti) {
			found := false
			for _, back := range l.Neighbors(nb) {
				if back == ti {
					found = true
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d -> %d", ti, nb)
			}
		}
	}
}

func TestAffectedTilesMonotonic(t *testing.T) {
	l := buildTest(t, 400, Spec{Seed: 4, TileFrac: 0.1})
	totalFree := 0
	for _, f := range l.TileFree() {
		totalFree += f
	}
	if totalFree < 4 {
		t.Fatalf("design has almost no slack (%d free sites)", totalFree)
	}
	prev := 0
	for _, size := range []int{1, totalFree / 4, totalFree / 2, totalFree} {
		if size < 1 {
			continue
		}
		tiles, err := l.AffectedTiles(0, size)
		if err != nil {
			t.Fatalf("size %d (of %d free): %v", size, totalFree, err)
		}
		if len(tiles) < prev {
			t.Fatalf("affected tiles shrank: %d CLBs -> %d tiles (prev %d)", size, len(tiles), prev)
		}
		prev = len(tiles)
	}
	// Asking for more than the device's total free space must fail.
	if _, err := l.AffectedTiles(0, totalFree+1); err == nil {
		t.Fatal("impossible request accepted")
	}
	if _, err := l.AffectedTiles(999, 1); err == nil {
		t.Fatal("bad seed tile accepted")
	}
}

func TestMaxTestLogicDecreasing(t *testing.T) {
	l := buildTest(t, 120, Spec{Seed: 5, TileFrac: 0.1})
	prev := 1 << 30
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		m := l.MaxTestLogic(k)
		if m > prev {
			t.Fatalf("max test logic grew with more points: k=%d m=%d prev=%d", k, m, prev)
		}
		prev = m
	}
	if l.MaxTestLogic(0) != 0 {
		t.Fatal("k=0 should be 0")
	}
	if c1, c2 := l.MaxTestLogicClustered(1), l.MaxTestLogicClustered(4); c2 > c1 {
		t.Fatal("clustered variant must also decrease")
	}
}

// insertObservers taps n internal nets with buffer LUTs feeding a new
// exported flag net each, mimicking observation-logic insertion.
func insertObservers(t *testing.T, l *Layout, n int) Delta {
	t.Helper()
	var added []netlist.CellID
	count := 0
	for ni := range l.NL.Nets {
		if count >= n {
			break
		}
		net := netlist.NetID(ni)
		if l.NL.Nets[ni].Dead || l.NL.Nets[ni].Driver == netlist.NilCell {
			continue
		}
		flag := l.NL.AddNet(l.freshName("obs"))
		id, err := l.NL.AddLUT(l.freshName("obslut"), logic.BufN(), []netlist.NetID{net}, flag)
		if err != nil {
			t.Fatal(err)
		}
		l.NL.MarkPO(flag)
		added = append(added, id)
		count++
	}
	if count < n {
		t.Fatalf("only found %d observable nets", count)
	}
	return Delta{Added: added}
}

func TestApplyDeltaInsertObservationLogic(t *testing.T) {
	l := buildTest(t, 120, Spec{Seed: 6, TileFrac: 0.1})
	preOut := outputsSnapshot(t, l, 7)
	d := insertObservers(t, l, 3)
	rep, err := l.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Check(); err != nil {
		t.Fatalf("layout invalid after delta: %v", err)
	}
	if len(rep.AffectedTiles) == 0 || len(rep.NewCLBs) == 0 {
		t.Fatalf("report %+v lacks affected tiles or new CLBs", rep)
	}
	if rep.Effort.Work() == 0 {
		t.Fatal("no effort recorded")
	}
	// Function of the original outputs is untouched by observation logic.
	postOut := outputsSnapshot(t, l, 7)
	for name, w := range preOut {
		if postOut[name] != w {
			t.Fatalf("output %q changed after observation insert", name)
		}
	}
}

// outputsSnapshot simulates the layout's netlist on a fixed stimulus.
func outputsSnapshot(t *testing.T, l *Layout, seed int64) map[string]uint64 {
	t.Helper()
	m, err := sim.Compile(l.NL)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	out := make(map[string]uint64)
	for cyc := 0; cyc < 4; cyc++ {
		in := make(map[string]uint64)
		for _, name := range l.NL.SortedPINames() {
			in[name] = r.Uint64()
		}
		o, err := m.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range o {
			out[k] ^= v + uint64(cyc)
		}
	}
	return out
}

func TestApplyDeltaLeavesOutsideUntouched(t *testing.T) {
	l := buildTest(t, 150, Spec{Seed: 8, TileFrac: 0.08})
	// Modify one LUT's function in place (a small debugging change).
	var target netlist.CellID = netlist.NilCell
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) == 2 {
			target = netlist.CellID(ci)
			break
		}
	}
	if target == netlist.NilCell {
		t.Skip("no 2-input LUT found")
	}
	l.NL.Cells[target].Func = logic.XorN(2)

	// Predict the affected region before the change to snapshot outside.
	seedTile := l.TileOf(l.CLBLoc[l.Packed.CellCLB[target]])
	affected, err := l.AffectedTiles(seedTile, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The change may grow tiles on congestion; snapshot against the
	// reported region after the fact instead.
	_ = affected
	rep, err := l.ApplyDelta(Delta{Modified: []netlist.CellID{target}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
	if len(rep.AffectedTiles) == 0 {
		t.Fatal("no affected tiles reported")
	}
	// All cells outside the affected region kept their exact location.
	region := l.RegionOf(rep.AffectedTiles)
	for i := range l.Packed.CLBs {
		if l.Packed.Empty(i) {
			continue
		}
		if !region.Contains(l.CLBLoc[i]) {
			// Can't compare to "before" directly (we mutated in place), but
			// Check plus the region constraint in ApplyDelta guarantee it;
			// here we assert the reported region contains the seed.
			continue
		}
	}
	if !containsTile(rep.AffectedTiles, seedTile) {
		t.Fatalf("seed tile %d not in affected set %v", seedTile, rep.AffectedTiles)
	}
}

func TestFrozenOutsideInvariant(t *testing.T) {
	l := buildTest(t, 150, Spec{Seed: 9, TileFrac: 0.08})
	// Pick a modification target and predict its region generously (the
	// worst case ApplyDelta can use: seed + 2 rings).
	var target netlist.CellID = netlist.NilCell
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) >= 2 {
			target = netlist.CellID(ci)
			break
		}
	}
	seedTile := l.TileOf(l.CLBLoc[l.Packed.CellCLB[target]])
	generous := []int{seedTile}
	for i := 0; i < 2; i++ {
		generous = l.growAffected(generous)
	}
	region := l.RegionOf(generous)
	before := l.FrozenOutside(region)

	l.NL.Cells[target].Func = logic.NandN(len(l.NL.Cells[target].Fanin))
	rep, err := l.ApplyDelta(Delta{Modified: []netlist.CellID{target}})
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range rep.AffectedTiles {
		if !containsTile(generous, at) {
			t.Skipf("change spread beyond the generous region (%v vs %v)", rep.AffectedTiles, generous)
		}
	}
	after := l.FrozenOutside(region)
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("outside state %q changed: %q -> %q", k, v, after[k])
		}
	}
}

func TestTileEffortBelowFullEffort(t *testing.T) {
	l := buildTest(t, 150, Spec{Seed: 10, TileFrac: 0.05})
	d := insertObservers(t, l, 1)
	rep, err := l.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	full, err := l.FullRePlaceRoute(99)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Effort.Work() >= full.Work() {
		t.Fatalf("tile-local change (%v) not cheaper than full re-P&R (%v)", rep.Effort, full)
	}
	if err := l.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalBaselineBetweenTileAndFull(t *testing.T) {
	l := buildTest(t, 150, Spec{Seed: 11, TileFrac: 0.05})
	d := insertObservers(t, l, 1)
	rep, err := l.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := l.IncrementalChange(rep.AffectedTiles, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	full, err := l.FullRePlaceRoute(100)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Work() >= full.Work() {
		t.Fatalf("incremental (%v) should beat full (%v)", inc, full)
	}
	if inc.CellsPlaced < rep.Effort.CellsPlaced {
		t.Fatalf("incremental should touch at least as many cells: %d vs %d", inc.CellsPlaced, rep.Effort.CellsPlaced)
	}
}

func TestBuildDeterminism(t *testing.T) {
	l1 := buildTest(t, 100, Spec{Seed: 12})
	l2 := buildTest(t, 100, Spec{Seed: 12})
	if l1.BuildEffort.PlaceMoves != l2.BuildEffort.PlaceMoves ||
		l1.BuildEffort.RouteExpansions != l2.BuildEffort.RouteExpansions {
		t.Fatalf("builds differ: %v vs %v", l1.BuildEffort, l2.BuildEffort)
	}
	for i := range l1.CLBLoc {
		if l1.CLBLoc[i] != l2.CLBLoc[i] {
			t.Fatalf("CLB %d placed differently", i)
		}
	}
}

func TestTileSizeSweep(t *testing.T) {
	for _, frac := range []float64{0.025, 0.05, 0.15, 0.25} {
		l := buildTest(t, 150, Spec{Seed: 13, TileFrac: frac})
		want := int(1/frac + 0.5)
		got := len(l.Tiles)
		if got < want/2 || got > want*2 {
			t.Fatalf("frac %.3f: %d tiles, want near %d", frac, got, want)
		}
	}
}

// interTileCrossings counts routed edges whose interior endpoints lie in
// different tiles — the inter-tile interconnect the boundary sweep
// minimizes.
func interTileCrossings(l *Layout) int {
	total := 0
	for _, rn := range l.Routes {
		for _, e := range rn.Route {
			a, b := l.Grid.EdgeEnds(e)
			if !l.Dev.IsCLB(a) || !l.Dev.IsCLB(b) {
				continue
			}
			if l.TileOf(a) != l.TileOf(b) {
				total++
			}
		}
	}
	return total
}

func TestUniformVsMinCutBoundaries(t *testing.T) {
	// The min-crossing sweep must keep the partition valid (buildTest runs
	// Check) and not increase boundary crossings vs uniform cuts.
	lUni := buildTest(t, 120, Spec{Seed: 14, UniformBoundaries: true})
	lOpt := buildTest(t, 120, Spec{Seed: 14})
	if cu, co := interTileCrossings(lUni), interTileCrossings(lOpt); co > cu {
		t.Fatalf("min-cut boundaries crossed more nets than uniform: %d vs %d", co, cu)
	}
}

func BenchmarkBuild150(b *testing.B) {
	nl := testDesign(b, 150, 777)
	for i := 0; i < b.N; i++ {
		l, err := Build(nl.Clone(), Spec{Seed: 1, PlaceEffort: 0.25})
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Check(); err != nil {
			b.Fatal(err)
		}
	}
}
