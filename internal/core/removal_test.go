package core

import (
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// TestApplyDeltaRemovesCells exercises the Removed path: debugging
// removes a redundant observer that was inserted earlier, freeing its CLB
// as slack.
func TestApplyDeltaRemovesCells(t *testing.T) {
	l := buildTest(t, 150, Spec{Seed: 21, TileFrac: 0.1})

	// Insert an observer pair first.
	var target netlist.NetID = netlist.NilNet
	for ni := range l.NL.Nets {
		if !l.NL.Nets[ni].Dead && l.NL.Nets[ni].Driver != netlist.NilCell {
			target = netlist.NetID(ni)
			break
		}
	}
	d := l.NL.AddNet("obs_d")
	q := l.NL.AddNet("obs_q")
	lut, err := l.NL.AddLUT("obs_buf", logic.BufN(), []netlist.NetID{target}, d)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := l.NL.AddDFF("obs_ff", d, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ApplyDelta(Delta{Added: []netlist.CellID{lut, ff}}); err != nil {
		t.Fatal(err)
	}
	clbsWithObs := l.NumCLBs()

	// Now remove it again: tombstone the cells, then apply the delta.
	if err := l.NL.RemoveCell(ff); err != nil {
		t.Fatal(err)
	}
	if err := l.NL.RemoveCell(lut); err != nil {
		t.Fatal(err)
	}
	rep, err := l.ApplyDelta(Delta{Removed: []netlist.CellID{lut, ff}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AffectedTiles) == 0 {
		t.Fatal("removal affected no tiles")
	}
	if err := l.Check(); err != nil {
		t.Fatalf("layout invalid after removal: %v", err)
	}
	if l.NumCLBs() >= clbsWithObs {
		t.Fatalf("removal did not free the observer CLB: %d -> %d", clbsWithObs, l.NumCLBs())
	}
}

// TestApplyDeltaMixed applies an add, a modify and a remove in one delta —
// the shape of a real correction (replace a cone).
func TestApplyDeltaMixed(t *testing.T) {
	l := buildTest(t, 150, Spec{Seed: 22, TileFrac: 0.1})

	// Pick a victim LUT to remove; rewire its single sink... simpler:
	// pick a LUT and replace it with a freshly added equivalent.
	var victim netlist.CellID = netlist.NilCell
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) >= 1 {
			victim = netlist.CellID(ci)
			break
		}
	}
	vc := l.NL.Cells[victim]
	oldOut := vc.Out
	fanin := append([]netlist.NetID(nil), vc.Fanin...)
	fn := vc.Func.Clone()

	// Remove the victim; its output net keeps its sinks, now driven by a
	// replacement cell.
	if err := l.NL.RemoveCell(victim); err != nil {
		t.Fatal(err)
	}
	repl, err := l.NL.AddLUT("replacement", fn, fanin, oldOut)
	if err != nil {
		t.Fatal(err)
	}
	// And modify some other cell's function benignly (same cover).
	var other netlist.CellID = netlist.NilCell
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && netlist.CellID(ci) != repl {
			other = netlist.CellID(ci)
			break
		}
	}
	rep, err := l.ApplyDelta(Delta{
		Added:    []netlist.CellID{repl},
		Modified: []netlist.CellID{other},
		Removed:  []netlist.CellID{victim},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Check(); err != nil {
		t.Fatalf("layout invalid after mixed delta: %v", err)
	}
	if len(rep.NewCLBs) == 0 {
		t.Fatal("replacement cell got no CLB")
	}
}
