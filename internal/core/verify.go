package core

import (
	"fmt"

	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/route"
)

// Check validates the layout's physical invariants:
//
//   - every non-empty CLB sits on a unique CLB site, every pad on a unique
//     IOB site;
//   - every multi-block net has a route whose edges connect all its pins
//     (stitched crossing nets may contain redundant loops, so connectivity
//     — not strict tree-ness — is enforced);
//   - total channel usage respects capacity;
//   - the tiles exactly partition the CLB area.
func (l *Layout) Check() error {
	// Placement legality.
	occupied := make(map[device.XY]string)
	for i := range l.Packed.CLBs {
		if l.Packed.Empty(i) {
			continue
		}
		p := l.CLBLoc[i]
		if !l.Dev.IsCLB(p) {
			return fmt.Errorf("core: CLB %d at non-CLB site %v", i, p)
		}
		if prev, dup := occupied[p]; dup {
			return fmt.Errorf("core: site %v holds both %s and clb%d", p, prev, i)
		}
		occupied[p] = fmt.Sprintf("clb%d", i)
	}
	padCount := make(map[device.XY]int)
	for net, p := range l.PadLoc {
		if !l.Dev.IsIOB(p) {
			return fmt.Errorf("core: pad %q at non-IOB site %v", l.NL.NetName(net), p)
		}
		padCount[p]++
		if padCount[p] > device.IOBsPerSite {
			return fmt.Errorf("core: IOB position %v holds %d pads (capacity %d)", p, padCount[p], device.IOBsPerSite)
		}
		if prev, dup := occupied[p]; dup {
			return fmt.Errorf("core: site %v holds both %s and pad %q", p, prev, l.NL.NetName(net))
		}
	}

	// Routing validity. Overlay trunk wiring counts against capacity too.
	use := make([]int16, l.Grid.NumEdges())
	for _, e := range l.fixedWiring {
		use[e]++
	}
	for ni := range l.NL.Nets {
		if l.NL.Nets[ni].Dead {
			continue
		}
		net := netlist.NetID(ni)
		pins := l.netPins(net)
		if len(pins) < 2 {
			continue
		}
		rn, ok := l.Routes[net]
		if !ok {
			return fmt.Errorf("core: net %q (%d pins) has no route", l.NL.NetName(net), len(pins))
		}
		if err := routeConnects(l.Grid, rn.Route, pins); err != nil {
			return fmt.Errorf("core: net %q: %w", l.NL.NetName(net), err)
		}
		for _, e := range rn.Route {
			use[e]++
		}
	}
	for e := range use {
		if int(use[e]) > l.Grid.Cap {
			a, b := l.Grid.EdgeEnds(route.EdgeID(e))
			return fmt.Errorf("core: channel %v-%v used %d > capacity %d", a, b, use[e], l.Grid.Cap)
		}
	}

	// Tile partition.
	area := 0
	for _, t := range l.Tiles {
		area += t.Rect.Area()
	}
	if area != l.Dev.NumCLBSites() {
		return fmt.Errorf("core: tiles cover %d sites, device has %d", area, l.Dev.NumCLBSites())
	}
	for i, a := range l.Tiles {
		for _, b := range l.Tiles[i+1:] {
			if a.Rect.Intersects(b.Rect) {
				return fmt.Errorf("core: tiles %d and %d overlap", a.ID, b.ID)
			}
		}
		for y := a.Rect.Y0; y <= a.Rect.Y1; y++ {
			for x := a.Rect.X0; x <= a.Rect.X1; x++ {
				if l.TileOf(device.XY{X: x, Y: y}) != a.ID {
					return fmt.Errorf("core: TileOf(%d,%d) != %d", x, y, a.ID)
				}
			}
		}
	}
	return nil
}

// routeConnects verifies that the route's edges place all pins in one
// connected component (loops permitted — stitched nets can contain them).
func routeConnects(g *route.Grid, edges []route.EdgeID, pins []device.XY) error {
	if len(pins) < 2 {
		return nil
	}
	parent := make(map[int32]int32)
	var find func(x int32) int32
	find = func(x int32) int32 {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	add := func(x int32) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	for _, e := range edges {
		a, b := g.EdgeEnds(e)
		ai, bi := g.NodeIdx(a), g.NodeIdx(b)
		add(ai)
		add(bi)
		parent[find(ai)] = find(bi)
	}
	for _, p := range pins {
		add(g.NodeIdx(p))
	}
	root := find(g.NodeIdx(pins[0]))
	for _, p := range pins[1:] {
		if find(g.NodeIdx(p)) != root {
			return fmt.Errorf("pin %v disconnected from route", p)
		}
	}
	return nil
}

// VerifyLayout is the full post-transaction assertion: the layout's
// physical invariants (Check) plus the transaction machinery's — no
// checkpoint may be left open, the journals must be drained, and the
// netlist itself must validate. Tests call it after every rollback to
// prove the journal restored a consistent state.
func VerifyLayout(l *Layout) error {
	if l.txnDepth != 0 {
		return fmt.Errorf("core: %d transaction(s) still open", l.txnDepth)
	}
	if len(l.journal) != 0 {
		return fmt.Errorf("core: physical journal holds %d orphaned ops", len(l.journal))
	}
	if l.NL.JournalActive() || l.NL.JournalLen() != 0 {
		return fmt.Errorf("core: netlist journal not drained (active=%v, len=%d)", l.NL.JournalActive(), l.NL.JournalLen())
	}
	if l.Packed.JournalLen() != 0 {
		return fmt.Errorf("core: packing journal holds %d orphaned ops", l.Packed.JournalLen())
	}
	if err := l.NL.Check(); err != nil {
		return err
	}
	if err := l.Packed.Check(); err != nil {
		return err
	}
	return l.Check()
}

// FrozenOutside snapshots the placement and routing outside the given
// region; comparing snapshots before and after a change proves the paper's
// central claim that unaffected tiles are untouched.
func (l *Layout) FrozenOutside(region device.RectSet) map[string]string {
	snap := make(map[string]string)
	for i := range l.Packed.CLBs {
		if l.Packed.Empty(i) {
			continue
		}
		if !region.Contains(l.CLBLoc[i]) {
			snap[fmt.Sprintf("clb%d", i)] = l.CLBLoc[i].String()
		}
	}
	for net, rn := range l.Routes {
		_, outside, _ := route.SplitRoute(l.Grid, rn.Route, region)
		if len(outside) > 0 && len(outside) == len(rn.Route) {
			snap["net:"+l.NL.NetName(net)] = fmt.Sprint(outside)
		}
	}
	return snap
}
