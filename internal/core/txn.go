package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/route"
)

// The layout transaction journal. A Checkpoint opens a transaction:
// from then on every physical mutation (placement, pads, routes, the
// fresh-name counter) appends its inverse to an undo log, and the
// netlist and packing journals (netlist/journal.go, pack/journal.go)
// record their layers' mutations too. Rollback replays all three logs in
// reverse, restoring the layout bit-identically in O(changes) — the
// whole-layout Clone the debug loop used to pay per speculative change
// becomes a pair of integer marks. Checkpoints nest (stack discipline):
// ApplyDelta opens one internally so a mid-apply failure can never leave
// a half-mutated layout, and debug rounds wrap netlist edits plus the
// physical update in an outer one.

type physOpKind uint8

const (
	// opCLBLoc records an overwritten CLB location.
	opCLBLoc physOpKind = iota
	// opCLBLocGrow records the CLBLoc length before an extension.
	opCLBLocGrow
	// opPad records an overwritten or newly created pad location.
	opPad
	// opRoute records an overwritten, created or deleted route entry.
	opRoute
	// opSeq records the fresh-name counter.
	opSeq
	// opConfig records an external configuration mutation (overlay tap
	// selection) as an opaque undo closure.
	opConfig
)

type physOp struct {
	kind    physOpKind
	idx     int
	net     netlist.NetID
	xy      device.XY
	existed bool
	route   *route.Net
	undo    func()
}

// Checkpoint marks a consistent layout state that Rollback can restore.
// Checkpoints obey stack discipline: the most recently opened one must be
// rolled back or committed first.
type Checkpoint struct {
	phys, nl, pack int
	depth          int
}

// Checkpoint opens a transaction and returns its restore point. Every
// mutation of the layout — including netlist edits made directly on
// l.NL through its journaled methods — is recorded until the checkpoint
// is committed or rolled back.
func (l *Layout) Checkpoint() Checkpoint {
	l.txnDepth++
	if l.txnDepth == 1 {
		l.NL.SetJournaling(true)
		l.Packed.SetJournaling(true)
	}
	return Checkpoint{
		phys:  len(l.journal),
		nl:    l.NL.JournalLen(),
		pack:  l.Packed.JournalLen(),
		depth: l.txnDepth,
	}
}

// Commit closes the checkpoint keeping all changes. Outer checkpoints
// remain able to roll the changes back; when the outermost commits, the
// journals are discarded.
func (l *Layout) Commit(cp Checkpoint) {
	if l.txnDepth != cp.depth {
		panic(fmt.Sprintf("core: Commit out of order: depth %d, checkpoint %d", l.txnDepth, cp.depth))
	}
	l.txnDepth--
	if l.txnDepth == 0 {
		l.journal = l.journal[:0]
		l.NL.TruncateJournal(0)
		l.NL.SetJournaling(false)
		l.Packed.TruncateJournal(0)
		l.Packed.SetJournaling(false)
	}
}

// Rollback restores the layout to the checkpointed state in O(changes)
// and closes the checkpoint. The incremental timing engine, when
// enabled, is resynchronized over exactly the rolled-back cells and
// nets.
func (l *Layout) Rollback(cp Checkpoint) error {
	if l.txnDepth != cp.depth {
		return fmt.Errorf("core: Rollback out of order: depth %d, checkpoint depth %d", l.txnDepth, cp.depth)
	}
	var cells []netlist.CellID
	var nets []netlist.NetID
	for i := len(l.journal) - 1; i >= cp.phys; i-- {
		op := &l.journal[i]
		switch op.kind {
		case opCLBLoc:
			l.CLBLoc[op.idx] = op.xy
			if op.idx < len(l.Packed.CLBs) {
				cells = append(cells, l.Packed.CLBs[op.idx].Cells()...)
			}
		case opCLBLocGrow:
			l.CLBLoc = l.CLBLoc[:op.idx]
		case opPad:
			if op.existed {
				l.PadLoc[op.net] = op.xy
			} else {
				delete(l.PadLoc, op.net)
			}
			nets = append(nets, op.net)
		case opRoute:
			if op.existed {
				l.Routes[op.net] = op.route
			} else {
				delete(l.Routes, op.net)
			}
			nets = append(nets, op.net)
		case opSeq:
			l.seq = op.idx
		case opConfig:
			op.undo()
		}
	}
	l.journal = l.journal[:cp.phys]
	pc := l.Packed.RollbackJournal(cp.pack)
	nc, nn := l.NL.RollbackJournal(cp.nl)
	cells = append(cells, pc...)
	cells = append(cells, nc...)
	nets = append(nets, nn...)
	l.txnDepth--
	if l.txnDepth == 0 {
		l.NL.SetJournaling(false)
		l.Packed.SetJournaling(false)
	}
	l.timingResync(cells, nets)
	return nil
}

// InTransaction reports whether a checkpoint is currently open.
func (l *Layout) InTransaction() bool { return l.txnDepth > 0 }

// ---------------------------------------------------------------- helpers
//
// All physical mutations inside transactions must go through these so
// the journal stays complete. No-op writes are skipped.

func (l *Layout) setCLBLoc(idx int, p device.XY) {
	if l.CLBLoc[idx] == p {
		return
	}
	if l.txnDepth > 0 {
		l.journal = append(l.journal, physOp{kind: opCLBLoc, idx: idx, xy: l.CLBLoc[idx]})
	}
	l.CLBLoc[idx] = p
}

func (l *Layout) growCLBLoc(n int) {
	if n <= len(l.CLBLoc) {
		return
	}
	if l.txnDepth > 0 {
		l.journal = append(l.journal, physOp{kind: opCLBLocGrow, idx: len(l.CLBLoc)})
	}
	for len(l.CLBLoc) < n {
		l.CLBLoc = append(l.CLBLoc, device.XY{})
	}
}

func (l *Layout) setPad(net netlist.NetID, p device.XY) {
	old, existed := l.PadLoc[net]
	if existed && old == p {
		return
	}
	if l.txnDepth > 0 {
		l.journal = append(l.journal, physOp{kind: opPad, net: net, xy: old, existed: existed})
	}
	l.PadLoc[net] = p
}

func (l *Layout) setRoute(net netlist.NetID, rn *route.Net) {
	if l.txnDepth > 0 {
		old, existed := l.Routes[net]
		l.journal = append(l.journal, physOp{kind: opRoute, net: net, route: old, existed: existed})
	}
	l.Routes[net] = rn
}

func (l *Layout) deleteRoute(net netlist.NetID) {
	old, existed := l.Routes[net]
	if !existed {
		return
	}
	if l.txnDepth > 0 {
		l.journal = append(l.journal, physOp{kind: opRoute, net: net, route: old, existed: true})
	}
	delete(l.Routes, net)
}

// RecordUndo journals an external configuration mutation (an overlay tap
// selection, which lives outside the layout's own state) so Rollback
// restores it along with the physical state. The caller invokes
// RecordUndo after applying the mutation, passing its inverse; outside a
// transaction nothing is recorded — the mutation is simply permanent.
func (l *Layout) RecordUndo(fn func()) {
	if l.txnDepth > 0 {
		l.journal = append(l.journal, physOp{kind: opConfig, undo: fn})
	}
}

func (l *Layout) setSeq(v int) {
	if l.seq == v {
		return
	}
	if l.txnDepth > 0 {
		l.journal = append(l.journal, physOp{kind: opSeq, idx: l.seq})
	}
	l.seq = v
}

// ---------------------------------------------------------------- router

// ensureRouter returns the layout's persistent routing engine, creating
// it on first use. The router owns the congestion arrays, heap and
// Dijkstra scratch across every incremental update — the routing analog
// of the compiled simulator program.
func (l *Layout) ensureRouter() *route.Router {
	if l.router == nil || l.router.Grid() != l.Grid {
		l.router = route.NewRouter(l.Grid)
	}
	l.router.Obs = l.obs
	return l.router
}

// InvalidateRouter drops the persistent routing engine; the next update
// rebuilds it from scratch. Differential tests use this to compare the
// persistent path against fresh-router routing.
func (l *Layout) InvalidateRouter() { l.router = nil }

// ---------------------------------------------------------------- digest

// StateDigest fingerprints the complete mutable layout state — netlist,
// packing, placement, pads, routes and the fresh-name counter — for
// bit-identity assertions around checkpoints, rollbacks and differential
// routing oracles.
func (l *Layout) StateDigest() string {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	h.Write([]byte(l.NL.Fingerprint()))
	w(uint64(len(l.Packed.CLBs)))
	for i := range l.Packed.CLBs {
		clb := &l.Packed.CLBs[i]
		w(uint64(len(clb.LUTs))<<32 | uint64(len(clb.FFs)))
		for _, id := range clb.LUTs {
			w(uint64(id))
		}
		for _, id := range clb.FFs {
			w(uint64(id))
		}
	}
	w(uint64(len(l.CLBLoc)))
	for _, p := range l.CLBLoc {
		w(uint64(uint32(p.X))<<32 | uint64(uint32(p.Y)))
	}
	pads := make([]int, 0, len(l.PadLoc))
	for net := range l.PadLoc {
		pads = append(pads, int(net))
	}
	sort.Ints(pads)
	w(uint64(len(pads)))
	for _, net := range pads {
		p := l.PadLoc[netlist.NetID(net)]
		w(uint64(uint32(net)))
		w(uint64(uint32(p.X))<<32 | uint64(uint32(p.Y)))
	}
	routes := make([]int, 0, len(l.Routes))
	for net := range l.Routes {
		routes = append(routes, int(net))
	}
	sort.Ints(routes)
	w(uint64(len(routes)))
	for _, net := range routes {
		rn := l.Routes[netlist.NetID(net)]
		w(uint64(uint32(net)))
		w(uint64(len(rn.Route)))
		for _, e := range rn.Route {
			w(uint64(uint32(e)))
		}
	}
	w(uint64(len(l.fixedWiring)))
	for _, e := range l.fixedWiring {
		w(uint64(uint32(e)))
	}
	w(uint64(l.seq))
	return fmt.Sprintf("%016x", h.Sum64())
}
