package core

import (
	"fmt"
	"time"

	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/place"
	"fpgadbg/internal/route"
)

// FullRePlaceRoute measures the cost of re-placing-and-routing the entire
// design from scratch — the functional-block-granularity baseline
// (Quick_ECO stops tracing at the netlist level, so with each benchmark
// being one functional block it must reprocess the whole design). The
// layout itself is left untouched; only effort is reported.
func (l *Layout) FullRePlaceRoute(seed int64) (Effort, error) {
	start := time.Now()
	var eff Effort
	// Scratch copy of placement state.
	scratch := &Layout{
		Spec: l.Spec, Dev: l.Dev, NL: l.NL, Packed: l.Packed, Grid: l.Grid,
		CLBLoc: append([]device.XY(nil), l.CLBLoc...),
		PadLoc: make(map[netlist.NetID]device.XY, len(l.PadLoc)),
		Routes: make(map[netlist.NetID]*route.Net),
	}
	for k, v := range l.PadLoc {
		scratch.PadLoc[k] = v
	}
	e, err := scratch.placeAll(seed)
	if err != nil {
		return eff, fmt.Errorf("core: full re-place: %w", err)
	}
	eff.Add(e)
	e, err = scratch.routeAllNets()
	if err != nil {
		return eff, fmt.Errorf("core: full re-route: %w", err)
	}
	eff.Add(e)
	eff.Wall = time.Since(start)
	return eff, nil
}

// IncrementalChange models a conventional incremental place-and-route tool
// applied to the same change: there are no locked interfaces, so the tool
// re-places every cell within an expanded window around the change (it
// must make room, and placements ripple) and fully re-routes every net
// touching a moved cell. The window is the affected-tile region inflated
// by the given growth factor in each dimension (incremental tools
// "re-place-and-route a much larger portion of the design", §5.2).
func (l *Layout) IncrementalChange(affected []int, growth float64) (Effort, error) {
	start := time.Now()
	var eff Effort
	if growth < 1 {
		growth = 1
	}
	// Inflate the affected region's bounding box.
	if len(affected) == 0 {
		return eff, fmt.Errorf("core: no affected tiles")
	}
	bb := l.Tiles[affected[0]].Rect
	for _, t := range affected[1:] {
		bb = bb.Union(l.Tiles[t].Rect)
	}
	wGrow := int(float64(bb.X1-bb.X0+1) * (growth - 1) / 2)
	hGrow := int(float64(bb.Y1-bb.Y0+1) * (growth - 1) / 2)
	window := device.Rect{
		X0: max(1, bb.X0-wGrow), Y0: max(1, bb.Y0-hGrow),
		X1: min(l.Dev.W, bb.X1+wGrow), Y1: min(l.Dev.H, bb.Y1+hGrow),
	}
	region := device.RectSet{window}

	// Scratch state.
	scratch := &Layout{
		Spec: l.Spec, Dev: l.Dev, NL: l.NL, Packed: l.Packed, Grid: l.Grid,
		CLBLoc: append([]device.XY(nil), l.CLBLoc...),
		PadLoc: l.PadLoc,
		Routes: make(map[netlist.NetID]*route.Net, len(l.Routes)),
	}
	for k, v := range l.Routes {
		scratch.Routes[k] = v
	}
	movable := make(map[int]bool)
	for i := range l.Packed.CLBs {
		if !l.Packed.Empty(i) && region.Contains(l.CLBLoc[i]) {
			movable[i] = true
		}
	}
	prob, clbOfBlock, padOfBlock := scratch.buildPlaceProblem(movable, region)
	// Incremental tools keep the old placement as the starting point.
	for bi := range prob.Blocks {
		if !prob.Blocks[bi].Fixed {
			prob.Blocks[bi].Loc = l.CLBLoc[clbOfBlock[bi]]
			prob.Blocks[bi].HasLoc = true
		}
	}
	res, err := place.Anneal(prob, place.Options{Seed: l.Spec.Seed + 7, Effort: l.Spec.PlaceEffort, WarmStart: true})
	if err != nil {
		return eff, fmt.Errorf("core: incremental place: %w", err)
	}
	scratch.adoptPlacement(res, clbOfBlock, padOfBlock)
	eff.PlaceMoves += res.Moves
	eff.CellsPlaced += len(movable)

	// Full re-route of every net touching the window (no locked
	// interfaces: the whole net is ripped) — the consolidated
	// rerouteTouched in its window mode.
	reff, _, err := scratch.rerouteTouched(region, false)
	if err != nil {
		return eff, fmt.Errorf("core: incremental route: %w", err)
	}
	eff.Add(reff)
	eff.Wall = time.Since(start)
	return eff, nil
}
