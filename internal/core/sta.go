package core

import (
	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/timing"
)

// Delta timing across the debug loop. EnableTiming attaches an
// incremental STA engine (timing.Engine) to the layout; from then on
// every successful ApplyDelta and every transaction Rollback
// resynchronizes arrival times through exactly the cells and nets the
// change touched, so the critical path is always current at cone cost
// instead of a full re-analysis per physical update. The engine's
// results are bit-identical to timing.Analyze over the same state
// (Engine.SelfCheck, plus the cross-catalog differential test).

// staState owns the engine plus the live physical annotation maps it
// reads (positions per cell, routed length per net).
type staState struct {
	eng     *timing.Engine
	cellPos map[netlist.CellID]device.XY
	netLen  map[netlist.NetID]int
}

// TimingInput assembles the current physical annotations of the layout
// for STA: every packed cell's position, pad positions, and routed net
// lengths.
func (l *Layout) TimingInput() timing.Input {
	cellPos := make(map[netlist.CellID]device.XY)
	for ci := range l.NL.Cells {
		if l.NL.Cells[ci].Dead {
			continue
		}
		if clb, ok := l.Packed.CellCLB[netlist.CellID(ci)]; ok {
			cellPos[netlist.CellID(ci)] = l.CLBLoc[clb]
		}
	}
	netLen := make(map[netlist.NetID]int, len(l.Routes))
	for net, rn := range l.Routes {
		netLen[net] = rn.RouteLen()
	}
	return timing.Input{NL: l.NL, CellPos: cellPos, PadPos: l.PadLoc, NetLen: netLen}
}

// EnableTiming attaches the incremental timing engine (one full analysis
// now, cone-sized updates afterwards). Re-enabling replaces the engine.
func (l *Layout) EnableTiming(m timing.Model) error {
	sp := l.obs.Start(obs.StageSTA)
	defer sp.End()
	in := l.TimingInput()
	eng, err := timing.NewEngine(in, m)
	if err != nil {
		return err
	}
	sp.Add("sta-cells", int64(len(in.CellPos)))
	l.sta = &staState{eng: eng, cellPos: in.CellPos, netLen: in.NetLen}
	return nil
}

// TimingEnabled reports whether an incremental timing engine is
// attached.
func (l *Layout) TimingEnabled() bool { return l.sta != nil }

// CriticalDelay returns the current critical-path delay; ok is false
// when timing is not enabled.
func (l *Layout) CriticalDelay() (float64, bool) {
	if l.sta == nil {
		return 0, false
	}
	return l.sta.eng.Critical(), true
}

// TimingEngine exposes the attached engine (nil when disabled) for
// statistics and oracle checks.
func (l *Layout) TimingEngine() *timing.Engine {
	if l.sta == nil {
		return nil
	}
	return l.sta.eng
}

// refreshTimingCell reconciles one cell's annotation with the layout.
func (l *Layout) refreshTimingCell(id netlist.CellID) {
	if int(id) < 0 || int(id) >= len(l.NL.Cells) {
		delete(l.sta.cellPos, id)
		return
	}
	if l.NL.Cells[id].Dead {
		delete(l.sta.cellPos, id)
		return
	}
	if clb, ok := l.Packed.CellCLB[id]; ok && clb < len(l.CLBLoc) {
		l.sta.cellPos[id] = l.CLBLoc[clb]
	} else {
		delete(l.sta.cellPos, id)
	}
}

// refreshTimingNet reconciles one net's routed length with the layout.
func (l *Layout) refreshTimingNet(net netlist.NetID) {
	if rn, ok := l.Routes[net]; ok {
		l.sta.netLen[net] = rn.RouteLen()
	} else {
		delete(l.sta.netLen, net)
	}
}

// timingApply resynchronizes the engine after a successful ApplyDelta:
// the delta's cells, everything placed inside the affected region, and
// the re-routed nets seed the cone recomputation.
func (l *Layout) timingApply(d Delta, rep *ChangeReport) {
	if l.sta == nil {
		return
	}
	sp := l.obs.Start(obs.StageSTA)
	defer sp.End()
	var cells []netlist.CellID
	cells = append(cells, d.Added...)
	cells = append(cells, d.Modified...)
	cells = append(cells, d.Removed...)
	region := l.RegionOf(rep.AffectedTiles)
	for i := range l.Packed.CLBs {
		if l.Packed.Empty(i) {
			continue
		}
		if region.Contains(l.CLBLoc[i]) {
			cells = append(cells, l.Packed.CLBs[i].Cells()...)
		}
	}
	for _, id := range cells {
		l.refreshTimingCell(id)
	}
	// Routed lengths: the re-routed nets changed; entries for nets whose
	// route vanished (now below two pins) must fall back to estimates.
	nets := append([]netlist.NetID(nil), rep.ReroutedNetIDs...)
	for _, net := range nets {
		l.refreshTimingNet(net)
	}
	for net := range l.sta.netLen {
		if _, ok := l.Routes[net]; !ok {
			delete(l.sta.netLen, net)
			nets = append(nets, net)
		}
	}
	// The topology caches only need a rebuild when the delta edited the
	// netlist; a pure re-place/re-route keeps them.
	structural := len(d.Added)+len(d.Modified)+len(d.Removed) > 0
	sp.Add("sta-cells", int64(len(cells)))
	sp.Add("sta-nets", int64(len(nets)))
	// Ignore the resync error: the engine only fails on a cyclic
	// netlist, which Check would reject long before routing.
	_ = l.sta.eng.Update(cells, nets, structural)
}

// timingResync re-anchors the engine after a transaction rollback using
// the journal-derived touched sets.
func (l *Layout) timingResync(cells []netlist.CellID, nets []netlist.NetID) {
	if l.sta == nil {
		return
	}
	for _, id := range cells {
		l.refreshTimingCell(id)
	}
	for _, net := range nets {
		if int(net) >= 0 && int(net) < len(l.NL.Nets) {
			l.refreshTimingNet(net)
		} else {
			delete(l.sta.netLen, net)
		}
	}
	_ = l.sta.eng.Update(cells, nets, true)
}
