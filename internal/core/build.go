package core

import (
	"fmt"
	"math"
	"time"

	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/pack"
	"fpgadbg/internal/place"
	"fpgadbg/internal/route"
	"fpgadbg/internal/synth"
)

// Build technology-maps, packs, places and routes a design with the spec's
// resource slack, then draws tile boundaries and locks the layout — the
// paper's pseudo-code steps 4–8 ("re-place-and-route with resource slack;
// draw tile boundaries; lock tile interfaces").
func Build(nl *netlist.Netlist, spec Spec) (*Layout, error) {
	spec = spec.withDefaults()
	mapped, err := synth.TechMap(nl)
	if err != nil {
		return nil, err
	}
	return BuildMapped(mapped, spec)
}

// BuildMapped is Build for a netlist that is already 4-LUT mapped. If the
// device proves unroutable at the requested channel width, the width is
// widened (twice, by 4 tracks) and the flow retried — the real-world
// "move to a bigger part" fallback.
func BuildMapped(mapped *netlist.Netlist, spec Spec) (*Layout, error) {
	spec = spec.withDefaults()
	l, err := buildMappedOnce(mapped, spec)
	for retry := 0; err != nil && retry < 2; retry++ {
		wider := spec
		if wider.ChannelWidth == 0 {
			wider.ChannelWidth = device.DefaultChannelWidth
		}
		wider.ChannelWidth += 4 * (retry + 1)
		var err2 error
		l, err2 = buildMappedOnce(mapped, wider)
		if err2 == nil {
			return l, nil
		}
	}
	return l, err
}

func buildMappedOnce(mapped *netlist.Netlist, spec Spec) (*Layout, error) {
	packed, err := pack.Pack(mapped)
	if err != nil {
		return nil, err
	}
	dev := device.Size(packed.NumCLBs(), spec.Overhead, spec.ChannelWidth)
	// Grow the device minimally until the IOB ring fits all pads
	// (pad-limited parts are a real FPGA phenomenon; grow one edge at a
	// time to keep the area overhead near the requested slack).
	for dev.IOBCapacity() < len(mapped.PIs)+len(mapped.POs) {
		if dev.W <= dev.H {
			dev.W++
		} else {
			dev.H++
		}
	}
	l := &Layout{
		Spec:   spec,
		Dev:    dev,
		NL:     mapped,
		Packed: packed,
		Grid:   route.NewGrid(dev),
		CLBLoc: make([]device.XY, len(packed.CLBs)),
		PadLoc: make(map[netlist.NetID]device.XY),
		Routes: make(map[netlist.NetID]*route.Net),
	}
	l.obs = spec.Obs
	start := time.Now()
	eff, err := l.placeAll(spec.Seed)
	if err != nil {
		return nil, err
	}
	l.BuildEffort.Add(eff)
	eff, err = l.routeAllNets()
	if err != nil {
		return nil, err
	}
	l.BuildEffort.Add(eff)
	l.BuildEffort.Wall = time.Since(start)
	if err := l.drawBoundaries(); err != nil {
		return nil, err
	}
	// Build spans are recorded; detach the trace so a cached pristine
	// layout never writes to the building campaign's finished trace.
	l.SetObs(nil)
	l.Spec.Obs = nil
	return l, nil
}

// netBlockPins returns the distinct block pin coordinates of a net (driver
// block first) under the current placement, and whether each pin lies on a
// CLB (vs pad).
func (l *Layout) netPins(net netlist.NetID) []device.XY {
	nl := l.NL
	var pins []device.XY
	seen := make(map[device.XY]bool)
	add := func(p device.XY) {
		if !seen[p] {
			seen[p] = true
			pins = append(pins, p)
		}
	}
	if d := nl.Nets[net].Driver; d != netlist.NilCell && !nl.Cells[d].Dead {
		add(l.CLBLoc[l.Packed.CellCLB[d]])
	} else if p, ok := l.PadLoc[net]; ok && nl.IsPI(net) {
		add(p)
	}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead {
			continue
		}
		for _, f := range c.Fanin {
			if f == net {
				add(l.CLBLoc[l.Packed.CellCLB[netlist.CellID(ci)]])
				break
			}
		}
	}
	if nl.IsPO(net) {
		if p, ok := l.PadLoc[net]; ok {
			add(p)
		}
	}
	return pins
}

// placeAll performs the initial full placement: every non-empty CLB and
// every pad is movable.
func (l *Layout) placeAll(seed int64) (Effort, error) {
	sp := l.obs.Start(obs.StagePlace)
	defer sp.End()
	prob, clbOfBlock, padOfBlock := l.buildPlaceProblem(nil, nil)
	res, err := place.Anneal(prob, place.Options{Seed: seed, Effort: l.Spec.PlaceEffort})
	if err != nil {
		return Effort{}, err
	}
	l.adoptPlacement(res, clbOfBlock, padOfBlock)
	sp.Add("place-moves", res.Moves)
	sp.Add("cells-placed", int64(len(prob.Blocks)))
	return Effort{PlaceMoves: res.Moves, CellsPlaced: len(prob.Blocks)}, nil
}

// buildPlaceProblem constructs a placement problem from the current state.
// movableCLBs, when non-nil, limits movement to those CLB indices confined
// to region (all other blocks are fixed at their current location); pads
// are movable only in the initial full placement (movableCLBs == nil).
func (l *Layout) buildPlaceProblem(movableCLBs map[int]bool, region device.RectSet) (*place.Problem, []int, []netlist.NetID) {
	nl := l.NL
	prob := &place.Problem{Dev: l.Dev}
	blockOfCLB := make(map[int]place.BlockID)
	var clbOfBlock []int
	var padOfBlock []netlist.NetID

	for i := range l.Packed.CLBs {
		if l.Packed.Empty(i) {
			continue
		}
		b := place.Block{Name: fmt.Sprintf("clb%d", i), Class: place.ClassCLB}
		switch {
		case movableCLBs == nil:
			// initial placement: free
		case movableCLBs[i]:
			b.Region = region
		default:
			b.Fixed = true
			b.Loc = l.CLBLoc[i]
			b.HasLoc = true
		}
		blockOfCLB[i] = place.BlockID(len(prob.Blocks))
		prob.Blocks = append(prob.Blocks, b)
		clbOfBlock = append(clbOfBlock, i)
		padOfBlock = append(padOfBlock, netlist.NilNet)
	}
	padBlock := make(map[netlist.NetID]place.BlockID)
	addPad := func(net netlist.NetID) {
		if _, ok := padBlock[net]; ok {
			return
		}
		b := place.Block{Name: "pad_" + nl.NetName(net), Class: place.ClassIOB}
		if movableCLBs != nil {
			b.Fixed = true
			b.Loc = l.PadLoc[net]
			b.HasLoc = true
		}
		padBlock[net] = place.BlockID(len(prob.Blocks))
		prob.Blocks = append(prob.Blocks, b)
		clbOfBlock = append(clbOfBlock, -1)
		padOfBlock = append(padOfBlock, net)
	}
	for _, pi := range nl.PIs {
		addPad(pi)
	}
	for _, po := range nl.POs {
		addPad(po)
	}

	// Placement nets: one per logical net spanning 2+ blocks.
	for ni := range nl.Nets {
		if nl.Nets[ni].Dead {
			continue
		}
		net := netlist.NetID(ni)
		blocks := l.netBlockIDs(net, blockOfCLB, padBlock)
		if len(blocks) >= 2 {
			prob.Nets = append(prob.Nets, place.Net{Blocks: blocks})
		}
	}
	return prob, clbOfBlock, padOfBlock
}

// netBlockIDs lists the distinct placement blocks on a net.
func (l *Layout) netBlockIDs(net netlist.NetID, blockOfCLB map[int]place.BlockID, padBlock map[netlist.NetID]place.BlockID) []place.BlockID {
	nl := l.NL
	seen := make(map[place.BlockID]bool)
	var blocks []place.BlockID
	add := func(b place.BlockID, ok bool) {
		if ok && !seen[b] {
			seen[b] = true
			blocks = append(blocks, b)
		}
	}
	if d := nl.Nets[net].Driver; d != netlist.NilCell && !nl.Cells[d].Dead {
		b, ok := blockOfCLB[l.Packed.CellCLB[d]]
		add(b, ok)
	}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead {
			continue
		}
		for _, f := range c.Fanin {
			if f == net {
				b, ok := blockOfCLB[l.Packed.CellCLB[netlist.CellID(ci)]]
				add(b, ok)
				break
			}
		}
	}
	if nl.IsPI(net) || nl.IsPO(net) {
		b, ok := padBlock[net]
		add(b, ok)
	}
	return blocks
}

// adoptPlacement writes an annealing result back into the layout
// (journaled when a transaction is open; unchanged locations are
// skipped).
func (l *Layout) adoptPlacement(res *place.Result, clbOfBlock []int, padOfBlock []netlist.NetID) {
	for bi, clb := range clbOfBlock {
		if clb >= 0 {
			l.setCLBLoc(clb, res.Loc[bi])
		} else if padOfBlock[bi] != netlist.NilNet {
			l.setPad(padOfBlock[bi], res.Loc[bi])
		}
	}
}

// routeAllNets routes every multi-block net from scratch through the
// layout's persistent router.
func (l *Layout) routeAllNets() (Effort, error) {
	nl := l.NL
	var nets []*route.Net
	byID := make(map[int]netlist.NetID)
	for ni := range nl.Nets {
		if nl.Nets[ni].Dead {
			continue
		}
		pins := l.netPins(netlist.NetID(ni))
		if len(pins) < 2 {
			delete(l.Routes, netlist.NetID(ni))
			continue
		}
		rn := &route.Net{ID: ni, Pins: pins}
		nets = append(nets, rn)
		byID[ni] = netlist.NetID(ni)
	}
	router := l.ensureRouter()
	router.BeginPass()
	router.Charge(l.fixedWiring)
	res, err := router.Route(nets, route.Options{CapReserve: l.Spec.OverlayReserve})
	if err != nil {
		return Effort{}, err
	}
	l.Routes = make(map[netlist.NetID]*route.Net, len(nets))
	for _, rn := range nets {
		l.Routes[byID[rn.ID]] = rn
	}
	return Effort{RouteExpansions: res.Expansions, NetsRouted: len(nets)}, nil
}

// RouteReserved routes extra non-netlist nets (debug-overlay trunks) on
// top of the finished user routing, at full channel capacity, and locks
// the resulting wiring permanently into the layout (FixedWiring). Every
// existing route is charged as fixed usage, so user wiring is never
// ripped up; subsequent incremental passes charge the trunk wiring the
// same way. The caller keeps the routed nets for its own bookkeeping.
func (l *Layout) RouteReserved(nets []*route.Net) (Effort, error) {
	router := l.ensureRouter()
	router.BeginPass()
	router.Charge(l.fixedWiring)
	for _, rn := range l.Routes {
		router.Charge(rn.Route)
	}
	res, err := router.Route(nets, route.Options{})
	if err != nil {
		return Effort{}, err
	}
	for _, rn := range nets {
		l.fixedWiring = append(l.fixedWiring, rn.Route...)
	}
	return Effort{RouteExpansions: res.Expansions, NetsRouted: len(nets)}, nil
}

// FixedWiring exposes the permanently locked overlay trunk wiring
// (read-only; indexed growth only via RouteReserved).
func (l *Layout) FixedWiring() []route.EdgeID { return l.fixedWiring }

// drawBoundaries partitions the CLB area into a near-square grid of tiles
// targeting the spec's tile size and, unless disabled, nudges each cut
// line to the position crossing the fewest routed nets (the paper's
// "inter-tile interconnect is minimized").
func (l *Layout) drawBoundaries() error {
	sites := l.Dev.NumCLBSites()
	target := l.Spec.TileCLBs
	if target <= 0 {
		target = int(math.Round(l.Spec.TileFrac * float64(sites)))
	}
	if target < 1 {
		target = 1
	}
	nT := int(math.Round(float64(sites) / float64(target)))
	if nT < 1 {
		nT = 1
	}
	cols := int(math.Round(math.Sqrt(float64(nT) * float64(l.Dev.W) / float64(l.Dev.H))))
	if cols < 1 {
		cols = 1
	}
	if cols > l.Dev.W {
		cols = l.Dev.W
	}
	rows := (nT + cols - 1) / cols
	if rows < 1 {
		rows = 1
	}
	if rows > l.Dev.H {
		rows = l.Dev.H
	}

	l.colCuts = uniformCuts(l.Dev.W, cols)
	l.rowCuts = uniformCuts(l.Dev.H, rows)
	if !l.Spec.UniformBoundaries {
		hHist, vHist := l.crossingHistograms()
		l.colCuts = adjustCuts(l.colCuts, l.Dev.W, hHist)
		l.rowCuts = adjustCuts(l.rowCuts, l.Dev.H, vHist)
	}

	l.Tiles = l.Tiles[:0]
	prevY := 0
	for r, yc := range l.rowCuts {
		prevX := 0
		for c, xc := range l.colCuts {
			l.Tiles = append(l.Tiles, Tile{
				ID:   len(l.Tiles),
				Rect: device.Rect{X0: prevX + 1, Y0: prevY + 1, X1: xc, Y1: yc},
				Row:  r, Col: c,
			})
			prevX = xc
		}
		prevY = yc
	}
	for _, t := range l.Tiles {
		if t.Rect.Area() < 1 {
			return fmt.Errorf("core: degenerate tile %v (device %v, %dx%d tiles)", t.Rect, l.Dev, rows, cols)
		}
	}
	return nil
}

// uniformCuts returns k inclusive upper bounds evenly dividing 1..extent.
func uniformCuts(extent, k int) []int {
	cuts := make([]int, k)
	for i := 0; i < k; i++ {
		cuts[i] = (i + 1) * extent / k
	}
	cuts[k-1] = extent
	return cuts
}

// crossingHistograms counts routed edges crossing each vertical line
// (hHist[x] = horizontal edges from x to x+1) and each horizontal line.
func (l *Layout) crossingHistograms() (hHist, vHist []int) {
	hHist = make([]int, l.Dev.W+1)
	vHist = make([]int, l.Dev.H+1)
	for _, rn := range l.Routes {
		for _, e := range rn.Route {
			a, b := l.Grid.EdgeEnds(e)
			if a.Y == b.Y { // horizontal edge crosses vertical line at min(x)
				x := a.X
				if b.X < x {
					x = b.X
				}
				if x >= 0 && x < len(hHist) {
					hHist[x]++
				}
			} else {
				y := a.Y
				if b.Y < y {
					y = b.Y
				}
				if y >= 0 && y < len(vHist) {
					vHist[y]++
				}
			}
		}
	}
	return hHist, vHist
}

// adjustCuts shifts each internal cut to the locally minimal crossing
// count, preserving strict monotonicity. The shift window is a quarter of
// the nominal tile span so tiles keep comparable capacities; tiny spans
// are left uniform.
func adjustCuts(cuts []int, extent int, hist []int) []int {
	span := extent / len(cuts)
	dev := span / 4
	if dev < 1 {
		return cuts
	}
	out := append([]int(nil), cuts...)
	for i := 0; i < len(out)-1; i++ {
		lo := 1
		if i > 0 {
			lo = out[i-1] + 1
		}
		hi := extent - 1
		if i < len(out)-1 {
			hi = out[i+1] - 1
		}
		best, bestCross := out[i], math.MaxInt
		for cand := out[i] - dev; cand <= out[i]+dev; cand++ {
			if cand < lo || cand > hi || cand >= len(hist) {
				continue
			}
			if hist[cand] < bestCross {
				best, bestCross = cand, hist[cand]
			}
		}
		out[i] = best
	}
	return out
}
