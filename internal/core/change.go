package core

import (
	"fmt"
	"sort"
	"time"

	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/place"
	"fpgadbg/internal/route"
)

// Delta describes a debugging change already applied to the layout's
// logical netlist: inserted test logic, a corrected cone, or both. Added
// cells must exist (live) in l.NL but not yet be packed; Removed cells
// must already be tombstoned in l.NL but still packed; Modified cells had
// their function or fanin rewired in place.
type Delta struct {
	Added    []netlist.CellID
	Modified []netlist.CellID
	Removed  []netlist.CellID
}

// ChangeReport describes what a delta touched and what it cost.
type ChangeReport struct {
	AffectedTiles []int
	NewCLBs       []int
	Effort        Effort
	// ReroutedNets counts nets whose wiring changed.
	ReroutedNets int
}

// ApplyDelta implements the paper's per-iteration physical update
// (pseudo-code steps 17–20): identify and clear the affected tiles,
// re-place their logic together with the newly introduced cells, and
// re-route locally against locked tile interfaces. Cells, wiring and pads
// outside the affected tiles are never disturbed.
func (l *Layout) ApplyDelta(d Delta) (*ChangeReport, error) {
	start := time.Now()
	rep := &ChangeReport{}

	// 1. Seed tiles: where modified and removed logic currently sits.
	seedSet := make(map[int]bool)
	for _, id := range d.Modified {
		clb, ok := l.Packed.CellCLB[id]
		if !ok {
			return nil, fmt.Errorf("core: modified cell %q is not packed", l.NL.CellName(id))
		}
		seedSet[l.TileOf(l.CLBLoc[clb])] = true
	}
	for _, id := range d.Removed {
		clb, ok := l.Packed.CellCLB[id]
		if !ok {
			return nil, fmt.Errorf("core: removed cell %q is not packed", l.NL.CellName(id))
		}
		seedSet[l.TileOf(l.CLBLoc[clb])] = true
	}

	// 2. Unpack removed cells (their sites become slack).
	for _, id := range d.Removed {
		if err := l.Packed.Unassign(id); err != nil {
			return nil, err
		}
	}

	// 3. Pack added cells into fresh CLBs.
	newCLBs, err := l.Packed.PackInto(d.Added)
	if err != nil {
		return nil, err
	}
	rep.NewCLBs = newCLBs
	for len(l.CLBLoc) < len(l.Packed.CLBs) {
		l.CLBLoc = append(l.CLBLoc, device.XY{})
	}
	if err := l.placeNewPads(); err != nil {
		return nil, err
	}
	if len(seedSet) == 0 {
		// Pure insertion: seed at the tile with the most slack.
		free := l.TileFree()
		best, bestFree := 0, -1
		for t, f := range free {
			if f > bestFree {
				best, bestFree = t, f
			}
		}
		seedSet[best] = true
	}

	// 4. Expand over neighbors until the affected tiles can hold the new
	// logic (Figure 3's recruitment rule, multi-seeded).
	affected, err := l.expandAffected(seedSet, len(newCLBs))
	if err != nil {
		return nil, err
	}

	// 5-7. Clear, re-place and re-route the affected tiles. If the region
	// turns out too congested to route, recruit one more ring of neighbor
	// tiles and retry — the paper's fallback when a tile "cannot support
	// the introduction of a large amount of logic".
	for attempt := 0; ; attempt++ {
		region := l.RegionOf(affected)
		movable := make(map[int]bool)
		for i := range l.Packed.CLBs {
			if l.Packed.Empty(i) {
				continue
			}
			if region.Contains(l.CLBLoc[i]) {
				movable[i] = true
			}
		}
		for _, clb := range newCLBs {
			movable[clb] = true
		}

		prob, clbOfBlock, padOfBlock := l.buildPlaceProblem(movable, region)
		res, err := place.Anneal(prob, place.Options{Seed: l.Spec.Seed + 1, Effort: l.Spec.PlaceEffort})
		if err != nil {
			return nil, fmt.Errorf("core: tile re-place: %w", err)
		}
		l.adoptPlacement(res, clbOfBlock, padOfBlock)
		rep.Effort.PlaceMoves += res.Moves
		rep.Effort.CellsPlaced += len(movable)

		routeEff, rerouted, err := l.rerouteRegion(region)
		rep.Effort.Add(routeEff)
		if err != nil {
			grown := l.growAffected(affected)
			if attempt < 3 && len(grown) > len(affected) {
				affected = grown
				continue
			}
			return nil, err
		}
		rep.AffectedTiles = affected
		rep.ReroutedNets = rerouted
		break
	}
	rep.Effort.Wall = time.Since(start)
	return rep, nil
}

// placeNewPads assigns free IOB sites to PI/PO nets that gained pad status
// after the initial build (e.g. a newly exported observation flag). Each
// pad takes the free ring site nearest to the net's existing pins.
func (l *Layout) placeNewPads() error {
	used := make(map[device.XY]int, len(l.PadLoc))
	for _, p := range l.PadLoc {
		used[p]++
	}
	assign := func(net netlist.NetID) error {
		if _, ok := l.PadLoc[net]; ok {
			return nil
		}
		pins := l.netPins(net)
		best := device.XY{X: -1}
		bestDist := 1 << 30
		for _, s := range l.Dev.IOBSites() {
			if used[s] >= device.IOBsPerSite {
				continue
			}
			d := 0
			for _, p := range pins {
				d += device.ManhattanDist(s, p)
			}
			if d < bestDist {
				best, bestDist = s, d
			}
		}
		if best.X < 0 {
			return fmt.Errorf("core: no free IOB site for new pad %q", l.NL.NetName(net))
		}
		used[best]++
		l.PadLoc[net] = best
		return nil
	}
	for _, pi := range l.NL.PIs {
		if err := assign(pi); err != nil {
			return err
		}
	}
	for _, po := range l.NL.POs {
		if err := assign(po); err != nil {
			return err
		}
	}
	return nil
}

// growAffected adds every neighbor of the current affected set.
func (l *Layout) growAffected(affected []int) []int {
	inSet := make(map[int]bool, len(affected))
	for _, t := range affected {
		inSet[t] = true
	}
	out := append([]int(nil), affected...)
	for _, t := range affected {
		for _, nb := range l.Neighbors(t) {
			if !inSet[nb] {
				inSet[nb] = true
				out = append(out, nb)
			}
		}
	}
	sort.Ints(out)
	return out
}

func containsTile(tiles []int, t int) bool {
	for _, x := range tiles {
		if x == t {
			return true
		}
	}
	return false
}

// expandAffected is AffectedTiles generalized to multiple seeds.
func (l *Layout) expandAffected(seeds map[int]bool, needCLBs int) ([]int, error) {
	free := l.TileFree()
	var queue []int
	inSet := make(map[int]bool)
	for t := range seeds {
		inSet[t] = true
	}
	for t := range inSet {
		queue = append(queue, t)
	}
	sort.Ints(queue)
	capacity := 0
	for _, t := range queue {
		capacity += free[t]
	}
	for i := 0; capacity < needCLBs; i++ {
		if i >= len(queue) {
			return nil, fmt.Errorf("core: cannot absorb %d new CLBs: only %d free sites reachable", needCLBs, capacity)
		}
		for _, nb := range l.Neighbors(queue[i]) {
			if inSet[nb] {
				continue
			}
			inSet[nb] = true
			queue = append(queue, nb)
			capacity += free[nb]
			if capacity >= needCLBs {
				break
			}
		}
	}
	sort.Ints(queue)
	return queue, nil
}

// rerouteRegion re-routes all wiring that touches the cleared region:
// nets fully inside are re-routed within it; nets crossing the boundary
// keep their outside wiring and locked crossing points (the tile
// interfaces) and only their inside portions are rebuilt; brand-new nets
// that must reach outside the region are routed over whatever spare
// channel capacity exists, without disturbing any locked wiring.
func (l *Layout) rerouteRegion(region device.RectSet) (Effort, int, error) {
	nl := l.NL
	var eff Effort

	type stitched struct {
		net     netlist.NetID
		outside []route.EdgeID
		inner   *route.Net
	}
	var innerNets []*route.Net  // nets to route within the region
	var stitchedNets []stitched // region portion of crossing nets
	var globalNets []*route.Net // new/expanded nets needing fresh crossings

	// Classify every live net.
	fixedUse := make([]int16, l.Grid.NumEdges())
	chargeEdges := func(edges []route.EdgeID) {
		for _, e := range edges {
			fixedUse[e]++
		}
	}
	for ni := range nl.Nets {
		if nl.Nets[ni].Dead {
			continue
		}
		net := netlist.NetID(ni)
		pins := l.netPins(net)
		if len(pins) < 2 {
			delete(l.Routes, net)
			continue
		}
		inCnt := 0
		for _, p := range pins {
			if region.Contains(p) {
				inCnt++
			}
		}
		old := l.Routes[net]
		touches := inCnt > 0
		if old != nil && !touches {
			for _, e := range old.Route {
				a, b := l.Grid.EdgeEnds(e)
				if region.Contains(a) || region.Contains(b) {
					touches = true
					break
				}
			}
		}
		if !touches {
			if old == nil {
				// Untouched net that was never routed (should not happen
				// after Build) — route it globally.
				rn := &route.Net{ID: ni, Pins: pins}
				globalNets = append(globalNets, rn)
				continue
			}
			chargeEdges(old.Route)
			continue
		}
		switch {
		case inCnt == len(pins):
			// Fully inside: rebuild from scratch within the region.
			innerNets = append(innerNets, &route.Net{ID: ni, Pins: pins})
		case old == nil:
			// New net spanning the boundary: no locked interface exists
			// yet; route globally over spare capacity.
			rn := &route.Net{ID: ni, Pins: pins}
			globalNets = append(globalNets, rn)
		default:
			_, outside, crossings := route.SplitRoute(l.Grid, old.Route, region)
			insidePins := make([]device.XY, 0, inCnt)
			for _, p := range pins {
				if region.Contains(p) {
					insidePins = append(insidePins, p)
				}
			}
			if len(crossings) == 0 {
				// The outside tree never reached the region: treat as a
				// global extension from the existing tree.
				rn := &route.Net{ID: ni, Pins: pins}
				globalNets = append(globalNets, rn)
				continue
			}
			chargeEdges(outside)
			// The inner portion must connect the locked crossing points
			// with the (re-placed) inside pins.
			innerPins := append(append([]device.XY(nil), crossings...), insidePins...)
			st := stitched{net: net, outside: outside,
				inner: &route.Net{ID: ni, Pins: innerPins}}
			stitchedNets = append(stitchedNets, st)
		}
	}

	// Route the region-confined work first (inner + stitched inner
	// portions negotiate congestion together).
	regionWork := make([]*route.Net, 0, len(innerNets)+len(stitchedNets))
	regionWork = append(regionWork, innerNets...)
	for _, st := range stitchedNets {
		regionWork = append(regionWork, st.inner)
	}
	allowed := func(p device.XY) bool { return region.Contains(p) }
	res, err := route.RouteAll(l.Grid, regionWork, route.Options{Allowed: allowed, FixedUse: fixedUse})
	if err != nil {
		return eff, 0, fmt.Errorf("core: region re-route: %w", err)
	}
	eff.RouteExpansions += res.Expansions
	for _, rn := range regionWork {
		chargeEdges(rn.Route)
	}

	// Then global nets over remaining spare capacity anywhere.
	if len(globalNets) > 0 {
		gres, err := route.RouteAll(l.Grid, globalNets, route.Options{FixedUse: fixedUse})
		if err != nil {
			return eff, 0, fmt.Errorf("core: global net route: %w", err)
		}
		eff.RouteExpansions += gres.Expansions
	}

	// Commit results.
	rerouted := 0
	for _, rn := range innerNets {
		l.Routes[netlist.NetID(rn.ID)] = rn
		rerouted++
	}
	for _, st := range stitchedNets {
		full := append(append([]route.EdgeID(nil), st.outside...), st.inner.Route...)
		l.Routes[st.net] = &route.Net{ID: st.inner.ID, Pins: l.netPins(st.net), Route: full}
		rerouted++
	}
	for _, rn := range globalNets {
		l.Routes[netlist.NetID(rn.ID)] = rn
		rerouted++
	}
	eff.NetsRouted = rerouted
	return eff, rerouted, nil
}
