package core

import (
	"fmt"
	"sort"
	"time"

	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/place"
	"fpgadbg/internal/route"
)

// Delta describes a debugging change already applied to the layout's
// logical netlist: inserted test logic, a corrected cone, or both. Added
// cells must exist (live) in l.NL but not yet be packed; Removed cells
// must already be tombstoned in l.NL but still packed; Modified cells had
// their function or fanin rewired in place.
type Delta struct {
	Added    []netlist.CellID
	Modified []netlist.CellID
	Removed  []netlist.CellID
}

// ChangeReport describes what a delta touched and what it cost.
type ChangeReport struct {
	AffectedTiles []int
	NewCLBs       []int
	Effort        Effort
	// ReroutedNets counts nets whose wiring changed.
	ReroutedNets int
	// ReroutedNetIDs lists them (the incremental timing engine's seed
	// set).
	ReroutedNetIDs []netlist.NetID
}

// ApplyDelta implements the paper's per-iteration physical update
// (pseudo-code steps 17–20): identify and clear the affected tiles,
// re-place their logic together with the newly introduced cells, and
// re-route locally against locked tile interfaces. Cells, wiring and pads
// outside the affected tiles are never disturbed.
//
// ApplyDelta is transactional: it opens an internal checkpoint and rolls
// back to it on any failure, so an error (unpackable delta, unplaceable
// region, exhausted channel capacity) leaves the layout bit-identical to
// its pre-call state — the physical mutations made before the failure
// are undone through the journal. Netlist edits made by the caller
// before the call are outside this transaction; wrap the whole change in
// an outer Checkpoint to revert those too.
func (l *Layout) ApplyDelta(d Delta) (*ChangeReport, error) {
	cp := l.Checkpoint()
	rep, err := l.applyDelta(d)
	if err != nil {
		if rerr := l.Rollback(cp); rerr != nil {
			return nil, fmt.Errorf("%w (rollback also failed: %v)", err, rerr)
		}
		return nil, err
	}
	l.Commit(cp)
	l.timingApply(d, rep)
	return rep, nil
}

func (l *Layout) applyDelta(d Delta) (*ChangeReport, error) {
	start := time.Now()
	rep := &ChangeReport{}

	// 1. Seed tiles: where modified and removed logic currently sits.
	seedSet := make(map[int]bool)
	for _, id := range d.Modified {
		clb, ok := l.Packed.CellCLB[id]
		if !ok {
			return nil, fmt.Errorf("core: modified cell %q is not packed", l.NL.CellName(id))
		}
		seedSet[l.TileOf(l.CLBLoc[clb])] = true
	}
	for _, id := range d.Removed {
		clb, ok := l.Packed.CellCLB[id]
		if !ok {
			return nil, fmt.Errorf("core: removed cell %q is not packed", l.NL.CellName(id))
		}
		seedSet[l.TileOf(l.CLBLoc[clb])] = true
	}

	// 2. Unpack removed cells (their sites become slack).
	for _, id := range d.Removed {
		if err := l.Packed.Unassign(id); err != nil {
			return nil, err
		}
	}

	// 3. Pack added cells into fresh CLBs.
	newCLBs, err := l.Packed.PackInto(d.Added)
	if err != nil {
		return nil, err
	}
	rep.NewCLBs = newCLBs
	l.growCLBLoc(len(l.Packed.CLBs))
	if err := l.placeNewPads(); err != nil {
		return nil, err
	}
	if len(seedSet) == 0 {
		// Pure insertion: seed at the tile with the most slack.
		free := l.TileFree()
		best, bestFree := 0, -1
		for t, f := range free {
			if f > bestFree {
				best, bestFree = t, f
			}
		}
		seedSet[best] = true
	}

	// 4. Expand over neighbors until the affected tiles can hold the new
	// logic (Figure 3's recruitment rule, multi-seeded).
	affected, err := l.expandAffected(seedSet, len(newCLBs))
	if err != nil {
		return nil, err
	}

	// 5-7. Clear, re-place and re-route the affected tiles. If the region
	// turns out too congested to route, recruit one more ring of neighbor
	// tiles and retry — the paper's fallback when a tile "cannot support
	// the introduction of a large amount of logic".
	for attempt := 0; ; attempt++ {
		region := l.RegionOf(affected)
		movable := make(map[int]bool)
		for i := range l.Packed.CLBs {
			if l.Packed.Empty(i) {
				continue
			}
			if region.Contains(l.CLBLoc[i]) {
				movable[i] = true
			}
		}
		for _, clb := range newCLBs {
			movable[clb] = true
		}

		sp := l.obs.Start(obs.StagePlace)
		prob, clbOfBlock, padOfBlock := l.buildPlaceProblem(movable, region)
		res, err := place.Anneal(prob, place.Options{Seed: l.Spec.Seed + 1, Effort: l.Spec.PlaceEffort})
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: tile re-place: %w", err)
		}
		l.adoptPlacement(res, clbOfBlock, padOfBlock)
		rep.Effort.PlaceMoves += res.Moves
		rep.Effort.CellsPlaced += len(movable)
		sp.Add("place-moves", res.Moves)
		sp.Add("cells-placed", int64(len(movable)))
		sp.End()

		routeEff, rerouted, err := l.rerouteTouched(region, true)
		rep.Effort.Add(routeEff)
		if err != nil {
			grown := l.growAffected(affected)
			if attempt < 3 && len(grown) > len(affected) {
				affected = grown
				continue
			}
			return nil, err
		}
		rep.AffectedTiles = affected
		rep.ReroutedNets = len(rerouted)
		rep.ReroutedNetIDs = rerouted
		break
	}
	rep.Effort.Wall = time.Since(start)
	return rep, nil
}

// placeNewPads assigns free IOB sites to PI/PO nets that gained pad status
// after the initial build (e.g. a newly exported observation flag). Each
// pad takes the free ring site nearest to the net's existing pins.
func (l *Layout) placeNewPads() error {
	used := make(map[device.XY]int, len(l.PadLoc))
	for _, p := range l.PadLoc {
		used[p]++
	}
	assign := func(net netlist.NetID) error {
		if _, ok := l.PadLoc[net]; ok {
			return nil
		}
		pins := l.netPins(net)
		best := device.XY{X: -1}
		bestDist := 1 << 30
		for _, s := range l.Dev.IOBSites() {
			if used[s] >= device.IOBsPerSite {
				continue
			}
			d := 0
			for _, p := range pins {
				d += device.ManhattanDist(s, p)
			}
			if d < bestDist {
				best, bestDist = s, d
			}
		}
		if best.X < 0 {
			return fmt.Errorf("core: no free IOB site for new pad %q", l.NL.NetName(net))
		}
		used[best]++
		l.setPad(net, best)
		return nil
	}
	for _, pi := range l.NL.PIs {
		if err := assign(pi); err != nil {
			return err
		}
	}
	for _, po := range l.NL.POs {
		if err := assign(po); err != nil {
			return err
		}
	}
	return nil
}

// growAffected adds every neighbor of the current affected set.
func (l *Layout) growAffected(affected []int) []int {
	inSet := make(map[int]bool, len(affected))
	for _, t := range affected {
		inSet[t] = true
	}
	out := append([]int(nil), affected...)
	for _, t := range affected {
		for _, nb := range l.Neighbors(t) {
			if !inSet[nb] {
				inSet[nb] = true
				out = append(out, nb)
			}
		}
	}
	sort.Ints(out)
	return out
}

func containsTile(tiles []int, t int) bool {
	for _, x := range tiles {
		if x == t {
			return true
		}
	}
	return false
}

// expandAffected is AffectedTiles generalized to multiple seeds.
func (l *Layout) expandAffected(seeds map[int]bool, needCLBs int) ([]int, error) {
	free := l.TileFree()
	var queue []int
	inSet := make(map[int]bool)
	for t := range seeds {
		inSet[t] = true
	}
	for t := range inSet {
		queue = append(queue, t)
	}
	sort.Ints(queue)
	capacity := 0
	for _, t := range queue {
		capacity += free[t]
	}
	for i := 0; capacity < needCLBs; i++ {
		if i >= len(queue) {
			return nil, fmt.Errorf("core: cannot absorb %d new CLBs: only %d free sites reachable", needCLBs, capacity)
		}
		for _, nb := range l.Neighbors(queue[i]) {
			if inSet[nb] {
				continue
			}
			inSet[nb] = true
			queue = append(queue, nb)
			capacity += free[nb]
			if capacity >= needCLBs {
				break
			}
		}
	}
	sort.Ints(queue)
	return queue, nil
}

// rerouteTouched re-routes all wiring that touches the given region,
// through the layout's persistent Router. The two modes consolidate the
// former rerouteRegion/rerouteWindow near-duplicates:
//
//   - lockInterfaces (the paper's tile-local update): nets fully inside
//     are rebuilt within the region; nets crossing the boundary keep
//     their outside wiring and locked crossing points (the tile
//     interfaces) and only their inside portions are rebuilt; brand-new
//     nets that must reach outside are routed over spare capacity
//     anywhere without disturbing locked wiring.
//
//   - !lockInterfaces (the conventional incremental-tool model used by
//     the baselines): every net with a pin or an edge in the region is
//     ripped entirely and re-routed over the whole device.
//
// It returns the re-routed net IDs.
func (l *Layout) rerouteTouched(region device.RectSet, lockInterfaces bool) (Effort, []netlist.NetID, error) {
	nl := l.NL
	var eff Effort

	type stitched struct {
		net     netlist.NetID
		outside []route.EdgeID
		inner   *route.Net
	}
	var innerNets []*route.Net  // nets to route within the region
	var stitchedNets []stitched // region portion of crossing nets
	var globalNets []*route.Net // new/expanded/window nets routed anywhere

	// Classify every live net, charging untouched wiring as locked. The
	// overlay trunk wiring, when present, is permanently locked too.
	router := l.ensureRouter()
	router.BeginPass()
	router.Charge(l.fixedWiring)
	for ni := range nl.Nets {
		if nl.Nets[ni].Dead {
			continue
		}
		net := netlist.NetID(ni)
		pins := l.netPins(net)
		if len(pins) < 2 {
			l.deleteRoute(net)
			continue
		}
		inCnt := 0
		for _, p := range pins {
			if region.Contains(p) {
				inCnt++
			}
		}
		old := l.Routes[net]
		touches := inCnt > 0
		if old != nil && !touches {
			for _, e := range old.Route {
				a, b := l.Grid.EdgeEnds(e)
				if region.Contains(a) || region.Contains(b) {
					touches = true
					break
				}
			}
		}
		if !touches {
			if old == nil {
				// Untouched net that was never routed (should not happen
				// after Build) — route it globally.
				globalNets = append(globalNets, &route.Net{ID: ni, Pins: pins})
				continue
			}
			router.Charge(old.Route)
			continue
		}
		switch {
		case !lockInterfaces:
			// Incremental-tool model: rip the whole net.
			globalNets = append(globalNets, &route.Net{ID: ni, Pins: pins})
		case inCnt == len(pins):
			// Fully inside: rebuild from scratch within the region.
			innerNets = append(innerNets, &route.Net{ID: ni, Pins: pins})
		case old == nil:
			// New net spanning the boundary: no locked interface exists
			// yet; route globally over spare capacity.
			globalNets = append(globalNets, &route.Net{ID: ni, Pins: pins})
		default:
			_, outside, crossings := route.SplitRoute(l.Grid, old.Route, region)
			insidePins := make([]device.XY, 0, inCnt)
			for _, p := range pins {
				if region.Contains(p) {
					insidePins = append(insidePins, p)
				}
			}
			if len(crossings) == 0 {
				// The outside tree never reached the region: treat as a
				// global extension from the existing tree.
				globalNets = append(globalNets, &route.Net{ID: ni, Pins: pins})
				continue
			}
			router.Charge(outside)
			// The inner portion must connect the locked crossing points
			// with the (re-placed) inside pins.
			innerPins := append(append([]device.XY(nil), crossings...), insidePins...)
			st := stitched{net: net, outside: outside,
				inner: &route.Net{ID: ni, Pins: innerPins}}
			stitchedNets = append(stitchedNets, st)
		}
	}

	// Route the region-confined work first (inner + stitched inner
	// portions negotiate congestion together).
	if len(innerNets)+len(stitchedNets) > 0 {
		regionWork := make([]*route.Net, 0, len(innerNets)+len(stitchedNets))
		regionWork = append(regionWork, innerNets...)
		for _, st := range stitchedNets {
			regionWork = append(regionWork, st.inner)
		}
		allowed := func(p device.XY) bool { return region.Contains(p) }
		res, err := router.Route(regionWork, route.Options{Allowed: allowed})
		if err != nil {
			return eff, nil, fmt.Errorf("core: region re-route: %w", err)
		}
		eff.RouteExpansions += res.Expansions
		for _, rn := range regionWork {
			router.Charge(rn.Route)
		}
	}

	// Then global nets over remaining spare capacity anywhere.
	if len(globalNets) > 0 {
		gres, err := router.Route(globalNets, route.Options{})
		if err != nil {
			mode := "global net"
			if !lockInterfaces {
				mode = "window"
			}
			return eff, nil, fmt.Errorf("core: %s re-route: %w", mode, err)
		}
		eff.RouteExpansions += gres.Expansions
	}

	// Commit results (journaled when a transaction is open).
	var rerouted []netlist.NetID
	for _, rn := range innerNets {
		l.setRoute(netlist.NetID(rn.ID), rn)
		rerouted = append(rerouted, netlist.NetID(rn.ID))
	}
	for _, st := range stitchedNets {
		full := append(append([]route.EdgeID(nil), st.outside...), st.inner.Route...)
		l.setRoute(st.net, &route.Net{ID: st.inner.ID, Pins: l.netPins(st.net), Route: full})
		rerouted = append(rerouted, st.net)
	}
	for _, rn := range globalNets {
		l.setRoute(netlist.NetID(rn.ID), rn)
		rerouted = append(rerouted, netlist.NetID(rn.ID))
	}
	eff.NetsRouted = len(rerouted)
	return eff, rerouted, nil
}
