package core

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/synth"
)

func cloneTestLayout(t *testing.T) *Layout {
	t.Helper()
	info, err := bench.ByName("9sym")
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := synth.TechMap(info.Build())
	if err != nil {
		t.Fatal(err)
	}
	l, err := BuildMapped(mapped, Spec{Overhead: 0.25, TileFrac: 0.25, Seed: 1, PlaceEffort: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCloneIndependence(t *testing.T) {
	orig := cloneTestLayout(t)
	origCLBs := orig.NumCLBs()
	origCells := orig.NL.NumLiveCells()
	origRoutes := len(orig.Routes)

	cl := orig.Clone()
	if err := cl.Check(); err != nil {
		t.Fatalf("clone violates layout invariants: %v", err)
	}
	if cl.NumCLBs() != origCLBs || len(cl.Routes) != origRoutes {
		t.Fatalf("clone shape differs: %d/%d CLBs, %d/%d routes",
			cl.NumCLBs(), origCLBs, len(cl.Routes), origRoutes)
	}

	// Mutate the clone: insert an observation stage through the tiling
	// engine, exactly like a debugging campaign would.
	var target netlist.NetID = netlist.NilNet
	for ni := range cl.NL.Nets {
		if !cl.NL.Nets[ni].Dead && cl.NL.Nets[ni].Driver != netlist.NilCell {
			target = netlist.NetID(ni)
			break
		}
	}
	d := cl.NL.AddNet("clone_obs_d")
	q := cl.NL.AddNet("clone_obs_q")
	lut, err := cl.NL.AddLUT("clone_obs/buf", logic.BufN(), []netlist.NetID{target}, d)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := cl.NL.AddDFF("clone_obs/ff", d, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ApplyDelta(Delta{Added: []netlist.CellID{lut, ff}}); err != nil {
		t.Fatal(err)
	}

	// The original must be completely untouched.
	if orig.NL.NumLiveCells() != origCells {
		t.Fatalf("clone mutation leaked into original netlist: %d cells, want %d",
			orig.NL.NumLiveCells(), origCells)
	}
	if _, ok := orig.NL.CellByName("clone_obs/buf"); ok {
		t.Fatal("inserted cell visible in original")
	}
	if orig.NumCLBs() != origCLBs {
		t.Fatalf("original CLB count changed: %d, want %d", orig.NumCLBs(), origCLBs)
	}
	if err := orig.Check(); err != nil {
		t.Fatalf("original invariants broken after clone mutation: %v", err)
	}
	if err := cl.Check(); err != nil {
		t.Fatalf("clone invariants broken after delta: %v", err)
	}
}
