package coord

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"fpgadbg/internal/service"
)

func fastSpec(design string, faultSeed int64) service.Spec {
	return service.Spec{
		Design: design, FaultSeed: faultSeed,
		PlaceEffort: 0.3, TileFrac: 0.25, Words: 4, Cycles: 2,
	}
}

func TestShardStableAndInRange(t *testing.T) {
	designs := []string{"9sym", "styr", "sand", "c499", "planet1", "c880"}
	for _, d := range designs {
		a, b := Shard(d, 4), Shard(d, 4)
		if a != b {
			t.Fatalf("shard of %s not stable: %d vs %d", d, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("shard of %s out of range: %d", d, a)
		}
	}
	if Shard("anything", 1) != 0 {
		t.Fatal("single replica must shard to 0")
	}
}

func TestCoordinatorRoutesByDesign(t *testing.T) {
	co, err := New(Config{Replicas: 2, StealMargin: -1, // no stealing: pure affinity
		Service: service.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	id1, err := co.Submit(fastSpec("9sym", 1))
	if err != nil {
		t.Fatal(err)
	}
	id2, err := co.Submit(fastSpec("9sym", 2))
	if err != nil {
		t.Fatal(err)
	}
	home := Shard("9sym", 2)
	for _, id := range []string{id1, id2} {
		if !strings.HasPrefix(id, "r"+string(rune('0'+home))+"-") {
			t.Fatalf("campaign %s not routed to home replica %d", id, home)
		}
		if _, err := co.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	rs := co.RouteStats()
	if rs.Routed[home] != 2 || rs.Steals != 0 {
		t.Fatalf("routing = %+v, want both on replica %d with no steals", rs, home)
	}
}

func TestCoordinatorStealsOnImbalance(t *testing.T) {
	// No workers: queues only grow, so depth imbalance is deterministic.
	co, err := New(Config{Replicas: 2, StealMargin: 1,
		Service: service.Config{Workers: -1}})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	// Everything targets one design → one home replica; once its queue
	// is 2 deeper than the idle one, submissions spill over.
	for i := 0; i < 6; i++ {
		if _, err := co.Submit(fastSpec("9sym", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	rs := co.RouteStats()
	if rs.Steals == 0 {
		t.Fatalf("no steals despite one-sided load: %+v", rs)
	}
	if rs.Routed[0] == 0 || rs.Routed[1] == 0 {
		t.Fatalf("steals did not spread load: %+v", rs)
	}
}

func TestCoordinatorPublicIDsRoundTrip(t *testing.T) {
	co, err := New(Config{Replicas: 3, Service: service.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	id, err := co.Submit(fastSpec("styr", 3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := co.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	st, err := co.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != id || st.State != service.StateDone {
		t.Fatalf("status = %+v, want done under public ID %s", st, id)
	}
	tr, err := co.Trace(id)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Campaign != id {
		t.Fatalf("trace campaign = %s, want public ID %s", tr.Campaign, id)
	}
	if res.Digest == "" {
		t.Fatal("missing digest")
	}
	found := false
	for _, s := range co.List() {
		if s.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("List() lost campaign %s", id)
	}
	// Unknown and malformed IDs fail cleanly.
	if _, err := co.Status("r9-c000001"); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
	if _, err := co.Status("bogus"); err == nil {
		t.Fatal("malformed ID accepted")
	}
}

// TestCoordinatorDurableRestart is the sharded version of the service
// resume test: kill two durable replicas with queued work, reopen the
// coordinator on the same data dir, and the campaigns must finish with
// digests identical to uninterrupted runs.
func TestCoordinatorDurableRestart(t *testing.T) {
	specs := []service.Spec{fastSpec("9sym", 11), fastSpec("styr", 12)}
	want := make(map[string]string) // design → digest
	for _, sp := range specs {
		svc := service.New(service.Config{Workers: 1})
		id, err := svc.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		res, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		want[sp.Design] = res.Digest
		svc.Close()
	}

	dir := t.TempDir()
	co, err := New(Config{Replicas: 2, DataDir: dir,
		Service: service.Config{Workers: -1}}) // queue only: simulate dying mid-queue
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i], err = co.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
	}
	co.Close() // graceful close leaves queued campaigns journaled as queued

	co2, err := New(Config{Replicas: 2, DataDir: dir,
		Service: service.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()
	for i, sp := range specs {
		res, err := co2.Wait(context.Background(), ids[i])
		if err != nil {
			t.Fatalf("restarted campaign %s: %v", ids[i], err)
		}
		if res.Digest != want[sp.Design] {
			t.Fatalf("campaign %s digest %s, want %s", ids[i], res.Digest, want[sp.Design])
		}
	}
	if rec := co2.Stats().Recovered; rec != int64(len(specs)) {
		t.Fatalf("recovered = %d, want %d", rec, len(specs))
	}
}

// TestCoordinatorHTTPAndMetrics mounts the shared REST handler over the
// coordinator and checks the routed surface end to end, including the
// /metrics document's per-replica section.
func TestCoordinatorHTTPAndMetrics(t *testing.T) {
	co, err := New(Config{Replicas: 2, Service: service.Config{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	srv := httptest.NewServer(service.NewHandler(co))
	defer srv.Close()

	resp, err := srv.Client().Post(srv.URL+"/campaigns", "application/json",
		strings.NewReader(`{"design":"9sym","fault_seed":1,"place_effort":0.3,"tile_frac":0.25,"words":4,"cycles":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 201 || !strings.HasPrefix(st.ID, "r") {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}
	if _, err := co.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}

	resp, err = srv.Client().Get(srv.URL + "/campaigns/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got service.Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != service.StateDone || got.Result == nil {
		t.Fatalf("status over HTTP = %+v", got)
	}

	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var own struct {
		Routing  RouteStats        `json:"routing"`
		Replicas []json.RawMessage `json:"replicas"`
	}
	if err := json.Unmarshal(doc["fpgadbgd"], &own); err != nil {
		t.Fatal(err)
	}
	if len(own.Replicas) != 2 || len(own.Routing.Routed) != 2 {
		t.Fatalf("metrics doc = %s", doc["fpgadbgd"])
	}
}
