// Package coord shards campaign submission across N service replicas.
//
// Each replica is a full service.Service — its own worker pool, artifact
// cache, metrics registry and (when a data directory is configured) its
// own durable store under <dir>/r<i>. The coordinator in front of them
// does three small things and nothing else:
//
//   - Routing. A campaign's home replica is a stable hash of its design
//     name (FNV-1a mod N), so repeat campaigns on one design land where
//     that design's golden netlist, layouts and traces are already warm
//     — cache affinity is the whole point of sharding by design rather
//     than round-robin.
//   - Work stealing. At submission time the coordinator compares queue
//     depths; when the home replica is more than StealMargin campaigns
//     deeper than the shallowest one, the submission is stolen by the
//     shallow replica. A cold cache costs less than a deep queue.
//   - Identity. Public campaign IDs are "r<i>-<inner>" — the replica
//     index is parsed back out of the ID, so routing status, trace,
//     events and cancel needs no lookup table and survives restarts
//     for free (the inner IDs are restored from each replica's journal).
//
// The coordinator implements service.API, so service.NewHandler mounts
// the identical REST surface the single-service daemon serves; fpgadbgd
// switches between them on -replicas.
package coord
