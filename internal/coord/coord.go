package coord

import (
	"context"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"fpgadbg/internal/obs"
	"fpgadbg/internal/service"
	"fpgadbg/internal/store"
)

// Config tunes a Coordinator.
type Config struct {
	// Replicas is the service replica count (minimum 1).
	Replicas int
	// DataDir, when set, gives every replica a durable store under
	// <DataDir>/r<i>; empty keeps all replicas in-memory.
	DataDir string
	// StealMargin is the queue-depth imbalance (home minus shallowest)
	// beyond which a submission is stolen by the shallowest replica.
	// Default 2; negative disables stealing.
	StealMargin int
	// Service is the per-replica configuration; its Store field is
	// overridden per replica when DataDir is set.
	Service service.Config
}

// Coordinator routes campaigns across service replicas. It implements
// service.API.
type Coordinator struct {
	cfg  Config
	reps []*service.Service

	mu     sync.Mutex
	routed []int64 // submissions landed per replica (home or stolen)
	steals int64   // submissions diverted off their home replica
}

// New opens every replica (replaying its journal when durable) and
// returns the coordinator. On any replica failure the already-opened
// ones are closed.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.StealMargin == 0 {
		cfg.StealMargin = 2
	}
	co := &Coordinator{cfg: cfg, routed: make([]int64, cfg.Replicas)}
	for i := 0; i < cfg.Replicas; i++ {
		scfg := cfg.Service
		var owned store.Store // store opened here, unowned until service.Open succeeds
		if cfg.DataDir != "" {
			st, err := store.OpenDisk(filepath.Join(cfg.DataDir, fmt.Sprintf("r%d", i)), store.DiskOptions{})
			if err != nil {
				co.Close()
				return nil, fmt.Errorf("coord: replica %d store: %w", i, err)
			}
			scfg.Store = st
			owned = st
		}
		svc, err := service.Open(scfg)
		if err != nil {
			// The failed replica's store has no service to close it.
			if owned != nil {
				owned.Close() //nolint:errcheck // already failing; nothing to do with it
			}
			co.Close()
			return nil, fmt.Errorf("coord: replica %d: %w", i, err)
		}
		co.reps = append(co.reps, svc)
	}
	return co, nil
}

// Close shuts every replica down (closing its store).
func (co *Coordinator) Close() {
	for _, r := range co.reps {
		r.Close()
	}
}

// Replica exposes one replica for tests and benchmarks.
func (co *Coordinator) Replica(i int) *service.Service { return co.reps[i] }

// Replicas is the replica count.
func (co *Coordinator) Replicas() int { return len(co.reps) }

// Shard is the home replica of a design name: FNV-1a mod N. Stable
// across processes and restarts, so a design's artifacts keep landing on
// the replica that already holds them.
func Shard(design string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(design)) //nolint:errcheck // fnv never fails
	return int(h.Sum32() % uint32(n))
}

// publicID prefixes an inner campaign ID with its replica.
func publicID(rep int, inner string) string { return fmt.Sprintf("r%d-%s", rep, inner) }

// route parses a public ID back into (replica, inner ID).
func (co *Coordinator) route(id string) (*service.Service, string, error) {
	rest, ok := strings.CutPrefix(id, "r")
	if !ok {
		return nil, "", fmt.Errorf("coord: malformed campaign ID %q", id)
	}
	idx, inner, ok := strings.Cut(rest, "-")
	if !ok {
		return nil, "", fmt.Errorf("coord: malformed campaign ID %q", id)
	}
	rep, err := strconv.Atoi(idx)
	if err != nil || rep < 0 || rep >= len(co.reps) {
		return nil, "", fmt.Errorf("coord: no replica for campaign ID %q", id)
	}
	return co.reps[rep], inner, nil
}

// Submit routes a campaign to its design's home replica, unless the home
// queue is more than StealMargin deeper than the shallowest replica — a
// work steal then trades cache affinity for latency.
func (co *Coordinator) Submit(spec service.Spec) (string, error) {
	pick := Shard(spec.Design, len(co.reps))
	stolen := false
	if co.cfg.StealMargin >= 0 && len(co.reps) > 1 {
		depths := make([]int, len(co.reps))
		minRep := 0
		for i, r := range co.reps {
			depths[i] = r.QueueDepth()
			if depths[i] < depths[minRep] {
				minRep = i
			}
		}
		if depths[pick]-depths[minRep] > co.cfg.StealMargin {
			pick = minRep
			stolen = true
		}
	}
	inner, err := co.reps[pick].Submit(spec)
	if err != nil {
		return "", err
	}
	co.mu.Lock()
	co.routed[pick]++
	if stolen {
		co.steals++
	}
	co.mu.Unlock()
	return publicID(pick, inner), nil
}

// Status implements service.API, rewriting the inner ID to the public one.
func (co *Coordinator) Status(id string) (service.Status, error) {
	rep, inner, err := co.route(id)
	if err != nil {
		return service.Status{}, err
	}
	st, err := rep.Status(inner)
	if err != nil {
		return service.Status{}, err
	}
	st.ID = id
	return st, nil
}

// List concatenates every replica's campaigns, public IDs restored.
func (co *Coordinator) List() []service.Status {
	var out []service.Status
	for i, r := range co.reps {
		for _, st := range r.List() {
			st.ID = publicID(i, st.ID)
			out = append(out, st)
		}
	}
	return out
}

// Events implements service.API.
func (co *Coordinator) Events(id string) ([]service.Event, <-chan service.Event, func(), error) {
	rep, inner, err := co.route(id)
	if err != nil {
		return nil, nil, nil, err
	}
	return rep.Events(inner)
}

// Trace implements service.API, rewriting the campaign name so trace
// exports stay keyed by the IDs clients actually hold.
func (co *Coordinator) Trace(id string) (*obs.StageTrace, error) {
	rep, inner, err := co.route(id)
	if err != nil {
		return nil, err
	}
	tr, err := rep.Trace(inner)
	if err != nil {
		return nil, err
	}
	pub := *tr
	pub.Campaign = id
	return &pub, nil
}

// Cancel implements service.API.
func (co *Coordinator) Cancel(id string) error {
	rep, inner, err := co.route(id)
	if err != nil {
		return err
	}
	return rep.Cancel(inner)
}

// Wait blocks until the campaign finishes and returns its result.
func (co *Coordinator) Wait(ctx context.Context, id string) (*service.Result, error) {
	rep, inner, err := co.route(id)
	if err != nil {
		return nil, err
	}
	return rep.Wait(ctx, inner)
}

// Stats aggregates replica counters into one service.Stats — the same
// shape /healthz and clients already read from a single service.
func (co *Coordinator) Stats() service.Stats {
	var agg service.Stats
	byKind := make(map[string]int64)
	for _, r := range co.reps {
		st := r.Stats()
		agg.Workers += st.Workers
		agg.Submitted += st.Submitted
		agg.Queued += st.Queued
		agg.Running += st.Running
		agg.Done += st.Done
		agg.Failed += st.Failed
		agg.Canceled += st.Canceled
		agg.QueueDepth += st.QueueDepth
		if st.RunningAge > agg.RunningAge {
			agg.RunningAge = st.RunningAge
		}
		for k, n := range st.ByKind {
			byKind[k] += n
		}
		agg.Cache.Entries += st.Cache.Entries
		agg.Cache.Bytes += st.Cache.Bytes
		agg.Cache.Hits += st.Cache.Hits
		agg.Cache.Misses += st.Cache.Misses
		agg.Cache.Evictions += st.Cache.Evictions
		agg.Cache.Dedups += st.Cache.Dedups
		agg.Recovered += st.Recovered
		agg.SpillHits += st.SpillHits
		agg.SpillMisses += st.SpillMisses
		agg.JournalErrors += st.JournalErrors
	}
	if len(byKind) > 0 {
		agg.ByKind = byKind
	}
	return agg
}

// RouteStats snapshots the coordinator's own routing counters.
type RouteStats struct {
	// Routed is submissions landed per replica, home picks and steals
	// both — the shard-balance series BENCH_store.json reports.
	Routed []int64 `json:"routed"`
	// Steals counts submissions diverted off their home replica.
	Steals int64 `json:"steals"`
}

// RouteStats returns a copy of the routing counters.
func (co *Coordinator) RouteStats() RouteStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return RouteStats{Routed: append([]int64(nil), co.routed...), Steals: co.steals}
}

// MetricsDoc implements service.API: the aggregate stats, the routing
// counters, and every replica's full metrics document (stats plus
// telemetry snapshot) under "replicas".
func (co *Coordinator) MetricsDoc() any {
	reps := make([]any, len(co.reps))
	for i, r := range co.reps {
		reps[i] = r.MetricsDoc()
	}
	return struct {
		service.Stats
		Routing  RouteStats `json:"routing"`
		Replicas []any      `json:"replicas"`
	}{co.Stats(), co.RouteStats(), reps}
}
