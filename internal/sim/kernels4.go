package sim

// Width-4 block kernels: one call evaluates all four lane words of a
// node. The scalar kernels (kernels.go) are below the inliner's budget
// only for k <= 2, so calling them per lane word re-loads the whole pair
// table from memory on every word. These variants hoist the table into
// locals once — the compiler keeps the hot words in registers — and
// stream the four lane words through the same Shannon-mux arithmetic, so
// the per-node cost approaches four times the pure word math instead of
// four dispatches plus four table re-reads.

// evalTab1x4 evaluates a 1-input LUT on four lane words.
func evalTab1x4(t []uint64, a, o *vec4) {
	t0, t1 := t[0], t[1]
	o[0] = t0 ^ (a[0] & t1)
	o[1] = t0 ^ (a[1] & t1)
	o[2] = t0 ^ (a[2] & t1)
	o[3] = t0 ^ (a[3] & t1)
}

// evalTab2x4 evaluates a 2-input LUT on four lane words.
func evalTab2x4(t []uint64, a, b, o *vec4) {
	t0, t1, t2, t3 := t[0], t[1], t[2], t[3]
	for w := 0; w < 4; w++ {
		r0 := t0 ^ (a[w] & t1)
		r1 := t2 ^ (a[w] & t3)
		o[w] = r0 ^ (b[w] & (r0 ^ r1))
	}
}

// evalTab3x4 evaluates a 3-input LUT on four lane words.
func evalTab3x4(t []uint64, a, b, c, o *vec4) {
	t0, t1, t2, t3 := t[0], t[1], t[2], t[3]
	t4, t5, t6, t7 := t[4], t[5], t[6], t[7]
	for w := 0; w < 4; w++ {
		av, bv := a[w], b[w]
		r0 := t0 ^ (av & t1)
		r1 := t2 ^ (av & t3)
		r2 := t4 ^ (av & t5)
		r3 := t6 ^ (av & t7)
		s0 := r0 ^ (bv & (r0 ^ r1))
		s1 := r2 ^ (bv & (r2 ^ r3))
		o[w] = s0 ^ (c[w] & (s0 ^ s1))
	}
}

// Register-table block kernels. Every pair-table word is a broadcast (0
// or all-ones), so the compiler stores the whole table as one bit per
// word in the node's msk field (pairBits) and these variants rebuild it
// with shift/mask/negate arithmetic. The Shannon-mux math is identical
// to the evalTab*x4 kernels above; the difference is purely where the
// table comes from — registers instead of a many-hundred-KB pair-table
// array streamed from memory on every evaluation pass.

// evalTab1r evaluates a 1-input LUT from its 2 pair bits.
func evalTab1r(pb uint16, a, o *vec4) {
	m := uint64(pb)
	t0 := -(m & 1)
	t1 := -(m >> 1 & 1)
	o[0] = t0 ^ (a[0] & t1)
	o[1] = t0 ^ (a[1] & t1)
	o[2] = t0 ^ (a[2] & t1)
	o[3] = t0 ^ (a[3] & t1)
}

// evalTab2r evaluates a 2-input LUT from its 4 pair bits.
func evalTab2r(pb uint16, a, b, o *vec4) {
	m := uint64(pb)
	t0 := -(m & 1)
	t1 := -(m >> 1 & 1)
	t2 := -(m >> 2 & 1)
	t3 := -(m >> 3 & 1)
	for w := 0; w < 4; w++ {
		r0 := t0 ^ (a[w] & t1)
		r1 := t2 ^ (a[w] & t3)
		o[w] = r0 ^ (b[w] & (r0 ^ r1))
	}
}

// evalTab3r evaluates a 3-input LUT from its 8 pair bits.
func evalTab3r(pb uint16, a, b, c, o *vec4) {
	m := uint64(pb)
	t0 := -(m & 1)
	t1 := -(m >> 1 & 1)
	t2 := -(m >> 2 & 1)
	t3 := -(m >> 3 & 1)
	t4 := -(m >> 4 & 1)
	t5 := -(m >> 5 & 1)
	t6 := -(m >> 6 & 1)
	t7 := -(m >> 7 & 1)
	for w := 0; w < 4; w++ {
		av, bv := a[w], b[w]
		r0 := t0 ^ (av & t1)
		r1 := t2 ^ (av & t3)
		r2 := t4 ^ (av & t5)
		r3 := t6 ^ (av & t7)
		s0 := r0 ^ (bv & (r0 ^ r1))
		s1 := r2 ^ (bv & (r2 ^ r3))
		o[w] = s0 ^ (c[w] & (s0 ^ s1))
	}
}

// evalTab4r evaluates a 4-input LUT from its 16 pair bits.
func evalTab4r(pb uint16, a, b, c, d, o *vec4) {
	m := uint64(pb)
	t0 := -(m & 1)
	t1 := -(m >> 1 & 1)
	t2 := -(m >> 2 & 1)
	t3 := -(m >> 3 & 1)
	t4 := -(m >> 4 & 1)
	t5 := -(m >> 5 & 1)
	t6 := -(m >> 6 & 1)
	t7 := -(m >> 7 & 1)
	t8 := -(m >> 8 & 1)
	t9 := -(m >> 9 & 1)
	t10 := -(m >> 10 & 1)
	t11 := -(m >> 11 & 1)
	t12 := -(m >> 12 & 1)
	t13 := -(m >> 13 & 1)
	t14 := -(m >> 14 & 1)
	t15 := -(m >> 15 & 1)
	for w := 0; w < 4; w++ {
		av, bv, cv := a[w], b[w], c[w]
		r0 := t0 ^ (av & t1)
		r1 := t2 ^ (av & t3)
		r2 := t4 ^ (av & t5)
		r3 := t6 ^ (av & t7)
		r4 := t8 ^ (av & t9)
		r5 := t10 ^ (av & t11)
		r6 := t12 ^ (av & t13)
		r7 := t14 ^ (av & t15)
		s0 := r0 ^ (bv & (r0 ^ r1))
		s1 := r2 ^ (bv & (r2 ^ r3))
		s2 := r4 ^ (bv & (r4 ^ r5))
		s3 := r6 ^ (bv & (r6 ^ r7))
		u0 := s0 ^ (cv & (s0 ^ s1))
		u1 := s2 ^ (cv & (s2 ^ s3))
		o[w] = u0 ^ (d[w] & (u0 ^ u1))
	}
}

// Classified block kernels. The compile-time classifier (classify.go)
// lowers most mapped LUTs to table-free forms; these kernels decode the
// 16-bit descriptor into broadcast masks — a handful of register ops per
// call — and then run 4-15 word ops per lane word, versus ~37 plus table
// loads for the generic four-input mux tree. Input pointers arrive
// already permuted by the caller (descriptor bits 10..14), so position j
// here is formula position j.

// chainEdge applies one chain connective branchlessly: opM selects the
// connective (all-ones = XOR, zero = AND) and eM is the edge complement.
func chainEdge(acc, in, opM, eM uint64) uint64 {
	and := acc & in
	return and ^ (opM & (and ^ (acc ^ in))) ^ eM
}

// evalXor2x4 evaluates 2-input parity (descriptor bit 0: complement).
func evalXor2x4(msk uint16, a, b, o *vec4) {
	inv := -uint64(msk & 1)
	o[0] = a[0] ^ b[0] ^ inv
	o[1] = a[1] ^ b[1] ^ inv
	o[2] = a[2] ^ b[2] ^ inv
	o[3] = a[3] ^ b[3] ^ inv
}

// evalXor3x4 evaluates 3-input parity.
func evalXor3x4(msk uint16, a, b, c, o *vec4) {
	inv := -uint64(msk & 1)
	o[0] = a[0] ^ b[0] ^ c[0] ^ inv
	o[1] = a[1] ^ b[1] ^ c[1] ^ inv
	o[2] = a[2] ^ b[2] ^ c[2] ^ inv
	o[3] = a[3] ^ b[3] ^ c[3] ^ inv
}

// evalXor4x4 evaluates 4-input parity.
func evalXor4x4(msk uint16, a, b, c, d, o *vec4) {
	inv := -uint64(msk & 1)
	o[0] = a[0] ^ b[0] ^ c[0] ^ d[0] ^ inv
	o[1] = a[1] ^ b[1] ^ c[1] ^ d[1] ^ inv
	o[2] = a[2] ^ b[2] ^ c[2] ^ d[2] ^ inv
	o[3] = a[3] ^ b[3] ^ c[3] ^ d[3] ^ inv
}

// evalChain2x4 evaluates a 2-input read-once chain:
// f = (a^x0 op1 b^x1) ^ e1.
func evalChain2x4(msk uint16, a, b, o *vec4) {
	x0 := -uint64(msk & 1)
	x1 := -uint64(msk >> 1 & 1)
	e1 := -uint64(msk >> 4 & 1)
	op1 := -uint64(msk >> 7 & 1)
	for w := 0; w < 4; w++ {
		o[w] = chainEdge(a[w]^x0, b[w]^x1, op1, e1)
	}
}

// evalChain3x4 evaluates a 3-input read-once chain:
// f = ((a^x0 op1 b^x1)^e1 op2 c^x2) ^ e2.
func evalChain3x4(msk uint16, a, b, c, o *vec4) {
	x0 := -uint64(msk & 1)
	x1 := -uint64(msk >> 1 & 1)
	x2 := -uint64(msk >> 2 & 1)
	e1 := -uint64(msk >> 4 & 1)
	e2 := -uint64(msk >> 5 & 1)
	op1 := -uint64(msk >> 7 & 1)
	op2 := -uint64(msk >> 8 & 1)
	for w := 0; w < 4; w++ {
		acc := chainEdge(a[w]^x0, b[w]^x1, op1, e1)
		o[w] = chainEdge(acc, c[w]^x2, op2, e2)
	}
}

// evalChain4x4 evaluates a 4-input read-once chain:
// f = (((a^x0 op1 b^x1)^e1 op2 c^x2)^e2 op3 d^x3) ^ e3.
func evalChain4x4(msk uint16, a, b, c, d, o *vec4) {
	x0 := -uint64(msk & 1)
	x1 := -uint64(msk >> 1 & 1)
	x2 := -uint64(msk >> 2 & 1)
	x3 := -uint64(msk >> 3 & 1)
	e1 := -uint64(msk >> 4 & 1)
	e2 := -uint64(msk >> 5 & 1)
	e3 := -uint64(msk >> 6 & 1)
	op1 := -uint64(msk >> 7 & 1)
	op2 := -uint64(msk >> 8 & 1)
	op3 := -uint64(msk >> 9 & 1)
	for w := 0; w < 4; w++ {
		acc := chainEdge(a[w]^x0, b[w]^x1, op1, e1)
		acc = chainEdge(acc, c[w]^x2, op2, e2)
		o[w] = chainEdge(acc, d[w]^x3, op3, e3)
	}
}

// evalTree4x4 evaluates a balanced read-once tree:
// f = (((a^x0 opL b^x1)^eL) opTop ((c^x2 opR d^x3)^eR)) ^ eTop.
func evalTree4x4(msk uint16, a, b, c, d, o *vec4) {
	x0 := -uint64(msk & 1)
	x1 := -uint64(msk >> 1 & 1)
	x2 := -uint64(msk >> 2 & 1)
	x3 := -uint64(msk >> 3 & 1)
	eL := -uint64(msk >> 4 & 1)
	eR := -uint64(msk >> 5 & 1)
	eTop := -uint64(msk >> 6 & 1)
	opL := -uint64(msk >> 7 & 1)
	opR := -uint64(msk >> 8 & 1)
	opTop := -uint64(msk >> 9 & 1)
	for w := 0; w < 4; w++ {
		l := chainEdge(a[w]^x0, b[w]^x1, opL, eL)
		r := chainEdge(c[w]^x2, d[w]^x3, opR, eR)
		o[w] = chainEdge(l, r, opTop, eTop)
	}
}

// evalMaj3x4 evaluates a 3-input majority:
// f = maj(a^x0, b^x1, c^x2) ^ inv.
func evalMaj3x4(msk uint16, a, b, c, o *vec4) {
	x0 := -uint64(msk & 1)
	x1 := -uint64(msk >> 1 & 1)
	x2 := -uint64(msk >> 2 & 1)
	inv := -uint64(msk >> 3 & 1)
	for w := 0; w < 4; w++ {
		av := a[w] ^ x0
		bv := b[w] ^ x1
		cv := c[w] ^ x2
		o[w] = (av&bv | (av|bv)&cv) ^ inv
	}
}

// evalSplit4x4 evaluates a 4-input split kernel: the arbitrary 3-input
// residual g (pair bits 0..7, rebuilt in registers) with the fourth pin
// chained on top: f = (g(a,b,c) op p^xw) ^ e.
func evalSplit4x4(msk uint16, a, b, c, p, o *vec4) {
	m := uint64(msk)
	t0 := -(m & 1)
	t1 := -(m >> 1 & 1)
	t2 := -(m >> 2 & 1)
	t3 := -(m >> 3 & 1)
	t4 := -(m >> 4 & 1)
	t5 := -(m >> 5 & 1)
	t6 := -(m >> 6 & 1)
	t7 := -(m >> 7 & 1)
	xw := -(m >> 8 & 1)
	opM := -(m >> 9 & 1)
	eM := -(m >> 15 & 1)
	for w := 0; w < 4; w++ {
		av, bv := a[w], b[w]
		r0 := t0 ^ (av & t1)
		r1 := t2 ^ (av & t3)
		r2 := t4 ^ (av & t5)
		r3 := t6 ^ (av & t7)
		s0 := r0 ^ (bv & (r0 ^ r1))
		s1 := r2 ^ (bv & (r2 ^ r3))
		g := s0 ^ (c[w] & (s0 ^ s1))
		o[w] = chainEdge(g, p[w]^xw, opM, eM)
	}
}

// evalMux3x4 evaluates a 2:1 mux: f = (s ? a^xa : b^xb) ^ inv.
func evalMux3x4(msk uint16, s, a, b, o *vec4) {
	xa := -uint64(msk & 1)
	xb := -uint64(msk >> 1 & 1)
	inv := -uint64(msk >> 2 & 1)
	for w := 0; w < 4; w++ {
		av := a[w] ^ xa
		bv := b[w] ^ xb
		o[w] = bv ^ (s[w] & (av ^ bv)) ^ inv
	}
}

// evalTab4x4 evaluates a 4-input LUT on four lane words.
func evalTab4x4(t []uint64, a, b, c, d, o *vec4) {
	t0, t1, t2, t3 := t[0], t[1], t[2], t[3]
	t4, t5, t6, t7 := t[4], t[5], t[6], t[7]
	t8, t9, t10, t11 := t[8], t[9], t[10], t[11]
	t12, t13, t14, t15 := t[12], t[13], t[14], t[15]
	for w := 0; w < 4; w++ {
		av, bv, cv := a[w], b[w], c[w]
		r0 := t0 ^ (av & t1)
		r1 := t2 ^ (av & t3)
		r2 := t4 ^ (av & t5)
		r3 := t6 ^ (av & t7)
		r4 := t8 ^ (av & t9)
		r5 := t10 ^ (av & t11)
		r6 := t12 ^ (av & t13)
		r7 := t14 ^ (av & t15)
		s0 := r0 ^ (bv & (r0 ^ r1))
		s1 := r2 ^ (bv & (r2 ^ r3))
		s2 := r4 ^ (bv & (r4 ^ r5))
		s3 := r6 ^ (bv & (r6 ^ r7))
		u0 := s0 ^ (cv & (s0 ^ s1))
		u1 := s2 ^ (cv & (s2 ^ s3))
		o[w] = u0 ^ (d[w] & (u0 ^ u1))
	}
}
