package sim

import (
	"math/rand"
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/testgen"
)

// TestLanePatchMatchesRecompiledNetlist arms one truth-table substitution
// per lane and checks every lane against an explicitly mutated and
// recompiled design, with clean lanes pinned to the unpatched stream.
func TestLanePatchMatchesRecompiledNetlist(t *testing.T) {
	nl := laneTestNetlist(t)
	prog, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.Repeat(testgen.ScalarBlocks(2, 24, 11), 2)
	golden := prog.Fork().RunTrace(stim)

	type patch struct {
		lane int
		cell string
		tt   uint16
	}
	r := rand.New(rand.NewSource(5))
	var patches []patch
	cells := []string{"g_and", "g_xor", "g_inv"}
	for lane := 0; lane < 24; lane++ {
		patches = append(patches, patch{lane: lane, cell: cells[lane%len(cells)], tt: uint16(r.Intn(1 << 4))})
	}

	mu := prog.Fork()
	var cleanMask uint64 = ^uint64(0)
	for _, p := range patches {
		id, _ := nl.CellByName(p.cell)
		if err := mu.SetLanePatch(p.lane, id, p.tt); err != nil {
			t.Fatal(err)
		}
		cleanMask &^= uint64(1) << uint(p.lane)
	}
	got := mu.RunTrace(stim)

	for _, p := range patches {
		mutant := nl.Clone()
		id, _ := mutant.CellByName(p.cell)
		k := len(mutant.Cells[id].Fanin)
		tt := logic.NewTT(k)
		for m := uint64(0); m < 1<<uint(k); m++ {
			tt.SetBit(m, p.tt&(1<<m) != 0)
		}
		mutant.Cells[id].Func = tt.ToCover()
		m2, err := Compile(mutant)
		if err != nil {
			t.Fatal(err)
		}
		ref := m2.RunTrace(stim)
		for c := 0; c < got.Cycles; c++ {
			for po := 0; po < got.NumPOs; po++ {
				want := ref.Out(c, po) >> uint(p.lane) & 1
				if got.Out(c, po)>>uint(p.lane)&1 != want {
					t.Fatalf("cycle %d PO %d lane %d (%s tt=%04x): got %d want %d",
						c, po, p.lane, p.cell, p.tt, got.Out(c, po)>>uint(p.lane)&1, want)
				}
			}
		}
	}
	for c := 0; c < got.Cycles; c++ {
		for po := 0; po < got.NumPOs; po++ {
			if (got.Out(c, po)^golden.Out(c, po))&cleanMask != 0 {
				t.Fatalf("cycle %d PO %d: patch leaked into clean lanes", c, po)
			}
		}
	}

	// ClearLaneFaults drops patches along with faults.
	mu.ClearLaneFaults()
	if mu.LaneFaultsArmed() {
		t.Fatal("patches still armed after ClearLaneFaults")
	}
	again := mu.RunTrace(stim)
	for c := 0; c < again.Cycles; c++ {
		for po := 0; po < again.NumPOs; po++ {
			if again.Out(c, po) != golden.Out(c, po) {
				t.Fatalf("cycle %d PO %d: cleared machine differs from golden", c, po)
			}
		}
	}
}

// TestLanePatchComposesWithLaneFaults arms a fault and a patch on
// disjoint lanes of one fork and checks neither disturbs the other.
func TestLanePatchComposesWithLaneFaults(t *testing.T) {
	nl := laneTestNetlist(t)
	prog, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.Repeat(testgen.ScalarBlocks(2, 12, 3), 2)
	andID, _ := nl.CellByName("g_and")
	dID, _ := nl.NetByName("d")

	mu := prog.Fork()
	if err := mu.SetLaneFault(2, LaneFault{Kind: LaneStuckAt1, Net: dID}); err != nil {
		t.Fatal(err)
	}
	if err := mu.SetLanePatch(5, andID, 0b1000); err != nil { // AND again: identity patch
		t.Fatal(err)
	}
	got := mu.RunTrace(stim)

	refStuck := prog.Fork()
	if err := refStuck.SetOverride(dID, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	rs := refStuck.RunTrace(stim)
	golden := prog.Fork().RunTrace(stim)
	for c := 0; c < got.Cycles; c++ {
		for po := 0; po < got.NumPOs; po++ {
			if got.Out(c, po)>>2&1 != rs.Out(c, po)>>2&1 {
				t.Fatalf("cycle %d PO %d: fault lane diverged from stuck reference", c, po)
			}
			// The identity patch must leave lane 5 on the golden stream.
			if got.Out(c, po)>>5&1 != golden.Out(c, po)>>5&1 {
				t.Fatalf("cycle %d PO %d: identity patch perturbed lane 5", c, po)
			}
		}
	}
}

// TestLanePatchValidation exercises the error paths.
func TestLanePatchValidation(t *testing.T) {
	nl := laneTestNetlist(t)
	m, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	andID, _ := nl.CellByName("g_and")
	ffID, _ := nl.CellByName("ff")
	if err := m.SetLanePatch(64, andID, 0); err == nil {
		t.Error("lane 64 accepted")
	}
	if err := m.SetLanePatch(0, netlist.CellID(999), 0); err == nil {
		t.Error("invalid cell accepted")
	}
	if err := m.SetLanePatch(0, ffID, 0); err == nil {
		t.Error("patch on a DFF accepted")
	}
	if m.LaneFaultsArmed() {
		t.Error("failed arms left state behind")
	}
}
