package sim

// The ID-based batch API. Names are resolved to PISlot / column indices
// once, outside the loop; RunTrace then replays an entire clocked stimulus
// sequence with zero per-cycle allocations. This is the calling convention
// every hot path in the repository uses (detection, localization,
// equivalence checking, fault campaigns, the benchmarks).

import (
	"fmt"

	"fpgadbg/internal/netlist"
)

// PISlot identifies one primary input of a compiled Machine: an index into
// PIOrder. Slots are resolved from names once and reused for every trace.
type PISlot int32

// PIOrder returns the machine's primary inputs in slot order (sorted by
// name at compile time). Slot i drives PIOrder()[i].
func (m *Machine) PIOrder() []string { return m.piNames }

// PONames returns the primary output names in Trace column order.
func (m *Machine) PONames() []string { return m.poNames }

// Slot resolves a primary input name to its slot.
func (m *Machine) Slot(name string) (PISlot, error) {
	for i, n := range m.piNames {
		if n == name {
			return PISlot(i), nil
		}
	}
	return -1, fmt.Errorf("sim: no primary input %q", name)
}

// Slots resolves several primary input names at once.
func (m *Machine) Slots(names []string) ([]PISlot, error) {
	out := make([]PISlot, len(names))
	for i, n := range names {
		s, err := m.Slot(n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// Bind fixes the stimulus column order for RunTrace: column j of every
// stimulus row drives the primary input of slots[j]. Primary inputs not
// bound (and not overridden) are held at zero — the convention used for
// implementation-only control inputs. Compile binds all PIs in PIOrder by
// default.
func (m *Machine) Bind(slots []PISlot) error {
	bound := make([]int32, len(slots))
	for j, s := range slots {
		if int(s) < 0 || int(s) >= len(m.pis) {
			return fmt.Errorf("sim: bind of invalid slot %d", s)
		}
		bound[j] = m.pis[s]
	}
	m.bound = bound
	return nil
}

// BindNames is Bind for a list of primary input names.
func (m *Machine) BindNames(names []string) error {
	slots, err := m.Slots(names)
	if err != nil {
		return err
	}
	return m.Bind(slots)
}

// Probe configures the set of nets sampled into Trace.ProbeVals each cycle
// — the software analogue of attached observation logic. It replaces any
// previous probe set.
func (m *Machine) Probe(nets ...netlist.NetID) error {
	probes := make([]int32, len(nets))
	for i, id := range nets {
		if int(id) < 0 || int(id) >= len(m.val) {
			return fmt.Errorf("sim: probe of invalid net %d", id)
		}
		probes[i] = int32(id)
	}
	m.probes = probes
	return nil
}

// ClearProbes removes every probe.
func (m *Machine) ClearProbes() { m.probes = nil }

// CaptureState toggles recording of the flip-flop state stream into
// Trace.States (one word per DFF per cycle, sampled after the clock edge,
// matching StateWords after Step).
func (m *Machine) CaptureState(on bool) { m.captureState = on }

// POCols resolves primary output names to Trace column indices.
func (m *Machine) POCols(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, name := range names {
		col := -1
		for j, n := range m.poNames {
			if n == name {
				col = j
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("sim: no primary output %q", name)
		}
		out[i] = col
	}
	return out, nil
}

// Trace is the recorded result of one RunTrace: per cycle, every primary
// output word, every probed net word and (optionally) the flip-flop state.
// All streams are stored row-major in flat slices so a Trace can be reused
// across runs without reallocation.
type Trace struct {
	Cycles    int
	NumPOs    int
	NumProbes int
	NumState  int
	// Outs[c*NumPOs+i] is PO column i (machine PONames order) at cycle c,
	// sampled after Eval and before the clock edge.
	Outs []uint64
	// ProbeVals[c*NumProbes+i] is probed net i at cycle c.
	ProbeVals []uint64
	// States[c*NumState+i] is DFF i's state after cycle c's clock edge.
	States []uint64
}

// Out returns PO column po at the given cycle.
func (t *Trace) Out(cycle, po int) uint64 { return t.Outs[cycle*t.NumPOs+po] }

// ProbeVal returns probed net p at the given cycle.
func (t *Trace) ProbeVal(cycle, p int) uint64 { return t.ProbeVals[cycle*t.NumProbes+p] }

// State returns DFF i's post-edge state at the given cycle.
func (t *Trace) State(cycle, i int) uint64 { return t.States[cycle*t.NumState+i] }

// grow returns s with length n, reusing capacity when possible.
func grow(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

// RunTrace resets the machine and replays the whole clocked stimulus
// sequence: for each cycle, stimulus[c][j] drives the j-th bound input
// (see Bind), the logic is evaluated, primary outputs and probed nets are
// recorded, and the clock advances. Rows shorter than the binding leave
// the remaining bound inputs at zero.
func (m *Machine) RunTrace(stimulus [][]uint64) *Trace {
	return m.RunTraceInto(new(Trace), stimulus)
}

// RunTraceInto is RunTrace reusing the given Trace's buffers; in steady
// state the replay loop performs zero allocations.
func (m *Machine) RunTraceInto(tr *Trace, stimulus [][]uint64) *Trace {
	m.Reset()
	return m.ResumeTraceInto(tr, stimulus)
}

// ResumeTraceInto is RunTraceInto without the leading reset: the replay
// continues from the machine's current flip-flop state. Callers use it to
// trace a long sequence in windows — scanning each window before paying
// for the next — while keeping cycle semantics identical to one long
// RunTrace.
func (m *Machine) ResumeTraceInto(tr *Trace, stimulus [][]uint64) *Trace {
	tr.Cycles = len(stimulus)
	tr.NumPOs = len(m.pos)
	tr.NumProbes = len(m.probes)
	tr.Outs = grow(tr.Outs, tr.Cycles*tr.NumPOs)
	tr.ProbeVals = grow(tr.ProbeVals, tr.Cycles*tr.NumProbes)
	if m.captureState {
		tr.NumState = len(m.dffQ)
		tr.States = grow(tr.States, tr.Cycles*tr.NumState)
	} else {
		tr.NumState = 0
		tr.States = tr.States[:0]
	}
	for c, row := range stimulus {
		k := len(row)
		if k > len(m.bound) {
			k = len(m.bound)
		}
		for j := 0; j < k; j++ {
			m.val[m.bound[j]] = row[j]
		}
		for j := k; j < len(m.bound); j++ {
			m.val[m.bound[j]] = 0
		}
		m.Eval()
		o := c * tr.NumPOs
		for i, po := range m.pos {
			tr.Outs[o+i] = m.val[po]
		}
		p := c * tr.NumProbes
		for i, pr := range m.probes {
			tr.ProbeVals[p+i] = m.val[pr]
		}
		m.Clock()
		if m.captureState {
			copy(tr.States[c*tr.NumState:(c+1)*tr.NumState], m.state)
		}
	}
	return tr
}
