package sim

// The ID-based batch API. Names are resolved to PISlot / column indices
// once, outside the loop; RunTrace then replays an entire clocked stimulus
// sequence with zero per-cycle allocations. This is the calling convention
// every hot path in the repository uses (detection, localization,
// equivalence checking, fault campaigns, the benchmarks).

import (
	"fmt"

	"fpgadbg/internal/netlist"
)

// PISlot identifies one primary input of a compiled Machine: an index into
// PIOrder. Slots are resolved from names once and reused for every trace.
type PISlot int32

// PIOrder returns the machine's primary inputs in slot order (sorted by
// name at compile time). Slot i drives PIOrder()[i].
func (m *Machine) PIOrder() []string { return m.piNames }

// PONames returns the primary output names in Trace column order.
func (m *Machine) PONames() []string { return m.poNames }

// Slot resolves a primary input name to its slot.
func (m *Machine) Slot(name string) (PISlot, error) {
	for i, n := range m.piNames {
		if n == name {
			return PISlot(i), nil
		}
	}
	return -1, fmt.Errorf("sim: no primary input %q", name)
}

// Slots resolves several primary input names at once.
func (m *Machine) Slots(names []string) ([]PISlot, error) {
	out := make([]PISlot, len(names))
	for i, n := range names {
		s, err := m.Slot(n)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// Bind fixes the stimulus column order for RunTrace: column j of every
// stimulus row drives the primary input of slots[j]. Primary inputs not
// bound (and not overridden) are held at zero — the convention used for
// implementation-only control inputs. Compile binds all PIs in PIOrder by
// default.
func (m *Machine) Bind(slots []PISlot) error {
	bound := make([]int32, len(slots))
	for j, s := range slots {
		if int(s) < 0 || int(s) >= len(m.pis) {
			return fmt.Errorf("sim: bind of invalid slot %d", s)
		}
		bound[j] = m.pis[s]
	}
	m.bound = bound
	return nil
}

// BindNames is Bind for a list of primary input names.
func (m *Machine) BindNames(names []string) error {
	slots, err := m.Slots(names)
	if err != nil {
		return err
	}
	return m.Bind(slots)
}

// Probe configures the set of nets sampled into Trace.ProbeVals each cycle
// — the software analogue of attached observation logic. It replaces any
// previous probe set.
func (m *Machine) Probe(nets ...netlist.NetID) error {
	probes := make([]int32, len(nets))
	for i, id := range nets {
		if int(id) < 0 || int(id) >= len(m.nl.Nets) {
			return fmt.Errorf("sim: probe of invalid net %d", id)
		}
		probes[i] = int32(id)
	}
	m.probes = probes
	return nil
}

// ClearProbes removes every probe.
func (m *Machine) ClearProbes() { m.probes = nil }

// CaptureState toggles recording of the flip-flop state stream into
// Trace.States (one word per DFF per cycle, sampled after the clock edge,
// matching StateWords after Step).
func (m *Machine) CaptureState(on bool) { m.captureState = on }

// POCols resolves primary output names to Trace column indices.
func (m *Machine) POCols(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, name := range names {
		col := -1
		for j, n := range m.poNames {
			if n == name {
				col = j
				break
			}
		}
		if col < 0 {
			return nil, fmt.Errorf("sim: no primary output %q", name)
		}
		out[i] = col
	}
	return out, nil
}

// Trace is the recorded result of one RunTrace: per cycle, every primary
// output lane vector, every probed net lane vector and (optionally) the
// flip-flop state. All streams are stored row-major in flat slices so a
// Trace can be reused across runs without reallocation. On a widened
// machine every recorded quantity is Width words; the word-indexed
// accessors (OutW and friends) address individual lane words, while the
// classic accessors return lane word 0 — on width-1 machines the two
// coincide and the layout is exactly the pre-vector one.
type Trace struct {
	Cycles    int
	NumPOs    int
	NumProbes int
	NumState  int
	Width     int // lane-vector words per recorded value (machine Width)
	// Outs[(c*NumPOs+i)*Width+w] is lane word w of PO column i (machine
	// PONames order) at cycle c, sampled after Eval and before the edge.
	Outs []uint64
	// ProbeVals[(c*NumProbes+i)*Width+w] is probed net i at cycle c.
	ProbeVals []uint64
	// States[(c*NumState+i)*Width+w] is DFF i after cycle c's clock edge.
	States []uint64
}

// Out returns lane word 0 of PO column po at the given cycle.
func (t *Trace) Out(cycle, po int) uint64 { return t.Outs[(cycle*t.NumPOs+po)*t.Width] }

// OutW returns lane word w of PO column po at the given cycle.
func (t *Trace) OutW(cycle, po, w int) uint64 { return t.Outs[(cycle*t.NumPOs+po)*t.Width+w] }

// ProbeVal returns lane word 0 of probed net p at the given cycle.
func (t *Trace) ProbeVal(cycle, p int) uint64 { return t.ProbeVals[(cycle*t.NumProbes+p)*t.Width] }

// ProbeValW returns lane word w of probed net p at the given cycle.
func (t *Trace) ProbeValW(cycle, p, w int) uint64 {
	return t.ProbeVals[(cycle*t.NumProbes+p)*t.Width+w]
}

// State returns lane word 0 of DFF i's post-edge state at the given cycle.
func (t *Trace) State(cycle, i int) uint64 { return t.States[(cycle*t.NumState+i)*t.Width] }

// StateW returns lane word w of DFF i's post-edge state.
func (t *Trace) StateW(cycle, i, w int) uint64 { return t.States[(cycle*t.NumState+i)*t.Width+w] }

// grow returns s with length n, reusing capacity when possible.
func grow(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

// RunTrace resets the machine and replays the whole clocked stimulus
// sequence: for each cycle, the row drives the bound inputs (see Bind),
// the logic is evaluated, primary outputs and probed nets are recorded,
// and the clock advances.
//
// Row layout: a row of at most len(bound) words is "narrow" —
// stimulus[c][j] drives the j-th bound input, broadcast across all lane
// words of a widened machine, and rows shorter than the binding leave
// the remaining bound inputs at zero. A longer row is "wide": column j's
// Width words are row[j*Width:(j+1)*Width] (missing tail words zero).
// On width-1 machines the two layouts coincide with the classic
// semantics. Narrow-row broadcast is what lets pattern sources and
// serial oracles built for the 64-lane model drive widened machines
// unchanged — exactly the stimulus shape fault- and repair-parallel
// campaigns need, where every lane must see the same patterns.
func (m *Machine) RunTrace(stimulus [][]uint64) *Trace {
	return m.RunTraceInto(new(Trace), stimulus)
}

// RunTraceInto is RunTrace reusing the given Trace's buffers; in steady
// state the replay loop performs zero allocations.
func (m *Machine) RunTraceInto(tr *Trace, stimulus [][]uint64) *Trace {
	m.Reset()
	return m.ResumeTraceInto(tr, stimulus)
}

// ResumeTraceInto is RunTraceInto without the leading reset: the replay
// continues from the machine's current flip-flop state. Callers use it to
// trace a long sequence in windows — scanning each window before paying
// for the next — while keeping cycle semantics identical to one long
// RunTrace.
func (m *Machine) ResumeTraceInto(tr *Trace, stimulus [][]uint64) *Trace {
	W := m.width
	tr.Cycles = len(stimulus)
	tr.NumPOs = len(m.pos)
	tr.NumProbes = len(m.probes)
	tr.Width = W
	tr.Outs = grow(tr.Outs, tr.Cycles*tr.NumPOs*W)
	tr.ProbeVals = grow(tr.ProbeVals, tr.Cycles*tr.NumProbes*W)
	if m.captureState {
		tr.NumState = len(m.dffQ)
		tr.States = grow(tr.States, tr.Cycles*tr.NumState*W)
	} else {
		tr.NumState = 0
		tr.States = tr.States[:0]
	}
	if W == 1 {
		m.resumeTrace1(tr, stimulus)
		return tr
	}
	B := len(m.bound)
	for c, row := range stimulus {
		if len(row) > B {
			// Wide layout: column j's words at row[j*W:(j+1)*W].
			for j := 0; j < B; j++ {
				o := int(m.bound[j]) * W
				for w := 0; w < W; w++ {
					var x uint64
					if j*W+w < len(row) {
						x = row[j*W+w]
					}
					m.val[o+w] = x
				}
			}
		} else {
			// Narrow layout: broadcast each word across the lane vector.
			for j := 0; j < B; j++ {
				var x uint64
				if j < len(row) {
					x = row[j]
				}
				o := int(m.bound[j]) * W
				for w := 0; w < W; w++ {
					m.val[o+w] = x
				}
			}
		}
		m.Eval()
		o := c * tr.NumPOs * W
		for i, po := range m.pos {
			copy(tr.Outs[o+i*W:o+(i+1)*W], m.val[int(po)*W:int(po)*W+W])
		}
		p := c * tr.NumProbes * W
		for i, pr := range m.probes {
			copy(tr.ProbeVals[p+i*W:p+(i+1)*W], m.val[int(pr)*W:int(pr)*W+W])
		}
		m.Clock()
		if m.captureState {
			copy(tr.States[c*tr.NumState*W:(c+1)*tr.NumState*W], m.state)
		}
	}
	return tr
}

// resumeTrace1 is the width-1 replay loop, kept scalar so the classic
// 64-lane path pays nothing for the vector generalization.
func (m *Machine) resumeTrace1(tr *Trace, stimulus [][]uint64) {
	for c, row := range stimulus {
		k := len(row)
		if k > len(m.bound) {
			k = len(m.bound)
		}
		for j := 0; j < k; j++ {
			m.val[m.bound[j]] = row[j]
		}
		for j := k; j < len(m.bound); j++ {
			m.val[m.bound[j]] = 0
		}
		m.Eval()
		o := c * tr.NumPOs
		for i, po := range m.pos {
			tr.Outs[o+i] = m.val[po]
		}
		p := c * tr.NumProbes
		for i, pr := range m.probes {
			tr.ProbeVals[p+i] = m.val[pr]
		}
		m.Clock()
		if m.captureState {
			copy(tr.States[c*tr.NumState:(c+1)*tr.NumState], m.state)
		}
	}
}
