package sim

// LUT-chain fusion. The dominant cost of a compiled evaluation is not
// logic — each pair-table kernel is a handful of word ops — but the
// per-node overhead around it: opcode dispatch, fanin index loads and the
// store/reload of single-fanout intermediate values through the value
// plane. Netlists out of tech mapping are full of such chains: a 1- or
// 2-input LUT feeding exactly one other small LUT.
//
// The fusion pass collapses each such producer/consumer pair into one
// kernel at compile time. For a head LUT h (the producer, whose output H
// has exactly one reader in the compiled fanin CSR) feeding a tail LUT t,
// both functions are re-expressed over the union of their input nets
// (head inputs first, tail's remaining inputs after, deduplicated). When
// that combined support is at most four nets, two truth tables over the
// combined inputs are composed bit by bit:
//
//	headX(mm) = h(mm restricted to h's inputs)
//	tailX(mm) = t(mm with headX(mm) substituted at H's pin positions)
//
// and the pair becomes one opFused kernel: a single fanin gather feeds
// two independent pair-table evaluations (good ILP — they share inputs
// but not results), writing both H and t's output. H is still written so
// primary outputs, DFF D-inputs and probes that read it stay exact; its
// single LUT reader, however, is now inside the same kernel, so H's
// value never round-trips through the value plane on the critical path.
//
// Fusion is a schedule transform, not a semantic one: results are
// bit-identical to the plain program (SetFusion toggles between them),
// and the perturbed pass — overrides, lane faults, lane patches — always
// runs the plain program so every node stays individually addressable.
//
//	      a   b                a   b   c
//	       \ /                  \  |  /
//	      [h=TT2]       ==>   [fused kernel]──► H (= headX(a,b))
//	         │ H                    │
//	   c ─[t=TT2]                   └─────────► T (= tailX(a,b,c))
//	         │ T
//
// One level-major xnode schedule results: fused kernels sit at their
// tail's level, everything else mirrors the plain program.

// xnode is one kernel of the fused fast-path schedule. Plain mirrors
// reference m.fanin like nodes do; opFused kernels reference the
// combined-input CSR m.xfan and carry a second output and second pair
// table for the fused-away head.
type xnode struct {
	out   int32 // output net (the tail's, for fused kernels)
	out2  int32 // fused head's output net, or -1
	start int32 // opFused*: into m.xfan; otherwise into m.fanin
	nin   int32 // combined input count for fused kernels
	aux   int32 // tail pair table in m.ttab (or cover index)
	aux2  int32 // head pair table in m.ttab, or -1
	op    uint8
	tt    uint16 // composed tail table for fused kernels
	msk   uint16 // classified-kernel descriptor, mirrored from the node
}

// fusionRec carries one accepted pair from the pairing pass to emission.
type fusionRec struct {
	comb   [4]int32 // combined input nets
	k      int32
	tailTT uint16
	headTT uint16
}

// buildFused computes the fused schedule from the freshly emitted plain
// program: greedy pairwise fusion of single-fanout TT heads into TT
// tails, then emission of the xnode list in the same level-major order.
func (m *Machine) buildFused(netLevel []int32, maxLevel int32) {
	nNodes := len(m.nodes)
	reads := make([]int32, len(m.nl.Nets))
	for _, f := range m.fanin {
		reads[f]++
	}
	drv := make([]int32, len(m.nl.Nets))
	for i := range drv {
		drv[i] = -1
	}
	for i := range m.nodes {
		drv[m.nodes[i].out] = int32(i)
	}

	fusedAway := make([]bool, nNodes) // head folded into its reader's kernel
	pair := make([]int32, nNodes)     // tail node -> head node, or -1
	for i := range pair {
		pair[i] = -1
	}
	recs := make(map[int32]fusionRec)

	isTT := func(op uint8) bool { return op >= opTT1 && op <= opTT4 }

	for i := 0; i < nNodes; i++ {
		t := &m.nodes[i]
		if !isTT(t.op) {
			continue
		}
		for j := int32(0); j < t.nin; j++ {
			H := m.fanin[t.start+j]
			hn := drv[H]
			if hn < 0 || hn == int32(i) || fusedAway[hn] || pair[hn] >= 0 || fusedAway[i] {
				continue
			}
			h := &m.nodes[hn]
			if !isTT(h.op) || reads[H] != 1 {
				continue
			}
			// Combined support: head inputs first, then the tail's
			// non-H inputs, deduplicated; at most four nets.
			var comb [4]int32
			k := int32(0)
			ok := true
			add := func(net int32) {
				for x := int32(0); x < k; x++ {
					if comb[x] == net {
						return
					}
				}
				if k == 4 {
					ok = false
					return
				}
				comb[k] = net
				k++
			}
			for jj := int32(0); jj < h.nin && ok; jj++ {
				add(m.fanin[h.start+jj])
			}
			for jj := int32(0); jj < t.nin && ok; jj++ {
				if net := m.fanin[t.start+jj]; net != H {
					add(net)
				}
			}
			if !ok {
				continue
			}
			recs[int32(i)] = m.composePair(int32(i), hn, H, comb, k)
			pair[i] = hn
			fusedAway[hn] = true
			break
		}
	}

	// Emit: node order is level-major, so the xnode list is too.
	m.xnodes = make([]xnode, 0, nNodes-len(recs))
	for i := 0; i < nNodes; i++ {
		if fusedAway[i] {
			continue
		}
		n := m.nodes[i]
		x := xnode{out: n.out, out2: -1, start: n.start, nin: n.nin, aux: n.aux, aux2: -1, op: n.op, tt: n.tt, msk: n.msk}
		if hn := pair[i]; hn >= 0 {
			r := recs[int32(i)]
			x.op = opFused1 + uint8(r.k-1)
			x.nin = r.k
			x.start = int32(len(m.xfan))
			m.xfan = append(m.xfan, r.comb[:r.k]...)
			x.aux = int32(len(m.ttab))
			m.ttab = append(m.ttab, expandTT(r.tailTT, int(r.k))...)
			x.aux2 = int32(len(m.ttab))
			m.ttab = append(m.ttab, expandTT(r.headTT, int(r.k))...)
			x.tt = r.tailTT
			x.out2 = m.nodes[hn].out
			m.fusedPairs++
		}
		m.xnodes = append(m.xnodes, x)
	}

	xi := 0
	for l := int32(1); l <= maxLevel; l++ {
		for xi < len(m.xnodes) && netLevel[m.xnodes[xi].out] == l {
			xi++
		}
		m.levelOffX = append(m.levelOffX, int32(xi))
	}
}

// composePair builds the two combined truth tables of one accepted
// (tail, head) pair over the combined input list comb[:k].
func (m *Machine) composePair(ti, hn, H int32, comb [4]int32, k int32) fusionRec {
	t := &m.nodes[ti]
	h := &m.nodes[hn]
	pos := func(net int32) int32 {
		for x := int32(0); x < k; x++ {
			if comb[x] == net {
				return x
			}
		}
		return -1 // unreachable: comb was built from these fanins
	}
	var headPos [4]int32
	for jj := int32(0); jj < h.nin; jj++ {
		headPos[jj] = pos(m.fanin[h.start+jj])
	}
	var tailPos [4]int32 // -1 at pins reading H
	for jj := int32(0); jj < t.nin; jj++ {
		net := m.fanin[t.start+jj]
		if net == H {
			tailPos[jj] = -1
		} else {
			tailPos[jj] = pos(net)
		}
	}
	r := fusionRec{comb: comb, k: k}
	for mm := 0; mm < 1<<uint(k); mm++ {
		hm := 0
		for jj := int32(0); jj < h.nin; jj++ {
			hm |= mm >> uint(headPos[jj]) & 1 << uint(jj)
		}
		hb := int(h.tt) >> uint(hm) & 1
		tm := 0
		for jj := int32(0); jj < t.nin; jj++ {
			bit := hb
			if tailPos[jj] >= 0 {
				bit = mm >> uint(tailPos[jj]) & 1
			}
			tm |= bit << uint(jj)
		}
		if int(t.tt)>>uint(tm)&1 == 1 {
			r.tailTT |= 1 << uint(mm)
		}
		if hb == 1 {
			r.headTT |= 1 << uint(mm)
		}
	}
	return r
}
