package sim

// Per-lane truth-table substitution — the repair-candidate analogue of
// SetLaneFault. A lane *fault* perturbs a correct design into a mutant; a
// lane *patch* perturbs a (presumed faulty) design into a repair
// candidate: in the patched lanes the cell computes a replacement truth
// table over its existing fanins instead of its compiled one. Arm up to
// 64 candidate repairs (one per lane), replay a broadcast stimulus once,
// and every lane's primary-output stream is the stream of its privately
// repaired design — candidate validation at one trace per 64 candidates,
// with no netlist clone and no recompile (internal/repair batches
// candidate searches on top of this; see DESIGN.md §10).
//
// A patch subsumes every function-shaped repair: a single bit flip, a
// pin swap (the permuted table), a resynthesized table, or a constant.
// Patches share the mutation dispatch with lane faults — ClearLaneFaults
// removes both — and, like them, are configuration, not state: they
// survive Reset and RunTrace.

import (
	"fmt"

	"fpgadbg/internal/netlist"
)

// lanePatch is one compiled truth-table substitution attached to a node:
// in the lanes of mask (within lane word `word` of the node's lane
// vector), the node's output is recomputed from the pair table at tab
// instead of the compiled program's table.
type lanePatch struct {
	mask uint64
	tab  int32 // start of the 2^nin-word pair table in m.patchTabs
	nin  int32 // fanin count of the patched node
	word int32
	tt   uint16
}

// SetLanePatch arms a replacement truth table for one LUT cell on one
// mutant lane, 0..Lanes()-1 (a width-W compile validates 64·W candidates
// per replay). The cell must be a compiled LUT of at most four inputs
// (wider cells keep their cover kernel and cannot be patched). tt's low
// 2^k bits are the replacement table over the cell's k fanins in pin
// order; higher bits are ignored. Patches accumulate until
// ClearLaneFaults; arming several patches on the same (lane, cell) is an
// error in the caller's logic and the last one wins.
func (m *Machine) SetLanePatch(lane int, cell netlist.CellID, tt uint16) error {
	if lane < 0 || lane >= 64*m.width {
		return fmt.Errorf("sim: lane %d out of [0,%d]", lane, 64*m.width-1)
	}
	if int(cell) < 0 || int(cell) >= len(m.nodeOfCell) {
		return fmt.Errorf("sim: lane patch on invalid cell %d", cell)
	}
	node := m.nodeOfCell[cell]
	if node < 0 {
		return fmt.Errorf("sim: lane patch on cell %q, which is not a compiled LUT", m.nl.CellName(cell))
	}
	n := &m.nodes[node]
	if n.op == opCover {
		return fmt.Errorf("sim: lane patch on %d-input cell %q (max 4)", n.nin, m.nl.CellName(cell))
	}
	if n.nin < 4 {
		tt &= 1<<(1<<uint(n.nin)) - 1
	}
	p := lanePatch{mask: uint64(1) << uint(lane%64), word: int32(lane / 64), nin: n.nin, tt: tt, tab: -1}
	if n.nin > 0 {
		p.tab = int32(len(m.patchTabs))
		m.patchTabs = append(m.patchTabs, expandTT(tt, int(n.nin))...)
	}
	m.addNodePatch(node, p)
	return nil
}

// addNodePatch attaches one truth-table substitution to a compiled node,
// mirroring addNodeMut's table recycling.
func (m *Machine) addNodePatch(node int32, p lanePatch) {
	if m.patchOf == nil {
		m.patchOf = make([]int32, len(m.nodes))
		for i := range m.patchOf {
			m.patchOf[i] = -1
		}
	}
	if pi := m.patchOf[node]; pi >= 0 {
		m.patchLists[pi] = append(m.patchLists[pi], p)
		return
	}
	m.patchOf[node] = int32(len(m.patchLists))
	m.patchNodes = append(m.patchNodes, node)
	if len(m.patchLists) < cap(m.patchLists) {
		m.patchLists = m.patchLists[:len(m.patchLists)+1]
		last := len(m.patchLists) - 1
		m.patchLists[last] = append(m.patchLists[last][:0], p)
		return
	}
	m.patchLists = append(m.patchLists, []lanePatch{p})
}

// clearLanePatches removes every armed truth-table substitution; called
// from ClearLaneFaults so one call returns the machine to unperturbed
// evaluation.
func (m *Machine) clearLanePatches() {
	for _, node := range m.patchNodes {
		m.patchOf[node] = -1
	}
	m.patchNodes = m.patchNodes[:0]
	m.patchLists = m.patchLists[:0]
	m.patchTabs = m.patchTabs[:0]
}

// applyNodePatch substitutes one lane word of a node's freshly computed
// lane vector in the patched lanes: the replacement table is evaluated
// from the already-computed fanin words (at the word index the patch
// addresses) through the same pair-table kernels the compiled program
// uses, then blended in under the lane mask.
func (m *Machine) applyNodePatch(w uint64, n *node, p lanePatch) uint64 {
	v := m.val
	W := m.width
	fan := m.fanin
	s := n.start
	fv := func(j int32) uint64 { return v[int(fan[s+j])*W+int(p.word)] }
	var pw uint64
	switch p.nin {
	case 0:
		pw = -uint64(p.tt & 1)
	case 1:
		pw = evalTab1(m.patchTabs[p.tab:p.tab+2:p.tab+2], fv(0))
	case 2:
		pw = evalTab2(m.patchTabs[p.tab:p.tab+4:p.tab+4], fv(0), fv(1))
	case 3:
		pw = evalTab3(m.patchTabs[p.tab:p.tab+8:p.tab+8], fv(0), fv(1), fv(2))
	default:
		pw = evalTab4(m.patchTabs[p.tab:p.tab+16:p.tab+16], fv(0), fv(1), fv(2), fv(3))
	}
	return w&^p.mask | pw&p.mask
}
