package sim

import (
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/testgen"
)

func TestRunTraceMatchesStepOnFullAdder(t *testing.T) {
	n := fullAdder(t)
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	pis := n.SortedPINames()
	if err := m.BindNames(pis); err != nil {
		t.Fatal(err)
	}
	stim := testgen.RandomBlocks(len(pis), 8, 3)
	tr := m.RunTrace(stim)
	if tr.Cycles != 8 || tr.NumPOs != 2 {
		t.Fatalf("trace shape %d×%d", tr.Cycles, tr.NumPOs)
	}
	cols, err := m.POCols([]string{"sum", "cout"})
	if err != nil {
		t.Fatal(err)
	}
	// Replay through the map shim and compare.
	m2, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	for c, row := range stim {
		in := make(map[string]uint64, len(pis))
		for j, name := range pis {
			in[name] = row[j]
		}
		out, err := m2.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Out(c, cols[0]) != out["sum"] || tr.Out(c, cols[1]) != out["cout"] {
			t.Fatalf("cycle %d: trace and Step disagree", c)
		}
	}
}

func TestBindSubsetHoldsUnboundAtZero(t *testing.T) {
	n := fullAdder(t)
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	// Bind only a and b; cin stays 0 → cout is simply a AND b.
	if err := m.BindNames([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	cols, err := m.POCols([]string{"cout"})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.RunTrace([][]uint64{{0xff00, 0x0ff0}})
	if got := tr.Out(0, cols[0]); got != 0xff00&0x0ff0 {
		t.Fatalf("cout = %#x, want %#x", got, 0xff00&0x0ff0)
	}
}

func TestSlotErrors(t *testing.T) {
	m, err := Compile(fullAdder(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Slot("sum"); err == nil {
		t.Fatal("Slot on a non-PI should fail")
	}
	if err := m.Bind([]PISlot{99}); err == nil {
		t.Fatal("Bind of out-of-range slot should fail")
	}
	if _, err := m.POCols([]string{"a"}); err == nil {
		t.Fatal("POCols on a non-PO should fail")
	}
}

func TestProbeStreams(t *testing.T) {
	n := fullAdder(t)
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	sum, _ := n.NetByName("sum")
	if err := m.Probe(sum); err != nil {
		t.Fatal(err)
	}
	pis := n.SortedPINames()
	if err := m.BindNames(pis); err != nil {
		t.Fatal(err)
	}
	stim := testgen.RandomBlocks(len(pis), 4, 11)
	tr := m.RunTrace(stim)
	cols, _ := m.POCols([]string{"sum"})
	for c := 0; c < tr.Cycles; c++ {
		if tr.ProbeVal(c, 0) != tr.Out(c, cols[0]) {
			t.Fatalf("cycle %d: probe of PO net disagrees with PO stream", c)
		}
	}
}

func TestStateCaptureMatchesStateWords(t *testing.T) {
	// 2-bit counter from sim_test.go.
	n := netlist.New("cnt")
	q0 := n.AddNet("q0")
	q1 := n.AddNet("q1")
	d0 := n.AddNet("d0")
	d1 := n.AddNet("d1")
	n.MustAddLUT("inv", logic.NotN(), []netlist.NetID{q0}, d0)
	n.MustAddLUT("xor", logic.XorN(2), []netlist.NetID{q1, q0}, d1)
	n.MustAddDFF("ff0", d0, q0, 0)
	n.MustAddDFF("ff1", d1, q1, 0)
	n.MarkPO(q0)
	n.MarkPO(q1)
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	m.CaptureState(true)
	tr := m.RunTrace(make([][]uint64, 6))
	if tr.NumState != 2 {
		t.Fatalf("NumState = %d", tr.NumState)
	}
	m2, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 6; c++ {
		if _, err := m2.Step(nil); err != nil {
			t.Fatal(err)
		}
		sw := m2.StateWords()
		for i := range sw {
			if tr.State(c, i) != sw[i] {
				t.Fatalf("cycle %d dff %d: trace state %#x != StateWords %#x", c, i, tr.State(c, i), sw[i])
			}
		}
	}
}

func TestRunTraceIntoReusesBuffers(t *testing.T) {
	n := fullAdder(t)
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.RandomBlocks(3, 16, 5)
	var tr Trace
	m.RunTraceInto(&tr, stim)
	first := &tr.Outs[0]
	m.RunTraceInto(&tr, stim)
	if first != &tr.Outs[0] {
		t.Fatal("RunTraceInto reallocated an output buffer of unchanged size")
	}
	allocs := testing.AllocsPerRun(20, func() {
		m.RunTraceInto(&tr, stim)
	})
	if allocs != 0 {
		t.Fatalf("RunTraceInto allocates %.1f times per run, want 0", allocs)
	}
}

func TestOverrideHonoredByExecutionCore(t *testing.T) {
	// Chain: x = a AND b ; y = NOT x. Overriding x must be visible on y
	// (downstream logic reads the forced value) and must survive Eval.
	n := netlist.New("ov")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddNet("x")
	y := n.AddNet("y")
	n.MustAddLUT("and", logic.AndN(2), []netlist.NetID{a, b}, x)
	n.MustAddLUT("not", logic.NotN(), []netlist.NetID{x}, y)
	n.MarkPO(y)
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetOverride(x, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	out, err := m.Step(map[string]uint64{"a": 0, "b": 0})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != 0 {
		t.Fatalf("override not observed downstream: y = %#x, want 0", out["y"])
	}
	if got := m.NetByID(x); got != ^uint64(0) {
		t.Fatalf("overridden net reads %#x", got)
	}
	if w, ok := m.Overridden(x); !ok || w != ^uint64(0) {
		t.Fatal("Overridden does not report the pinned word")
	}
	// ForceNet, by contrast, is clobbered by the next Eval.
	m.ClearOverrides()
	m.ForceNet(x, ^uint64(0))
	m.Eval() // a=b=0 → x recomputes to 0
	if got := m.NetByID(x); got != 0 {
		t.Fatalf("ForceNet survived Eval: x = %#x", got)
	}
	// Overrides also pin primary inputs, beating bound stimulus.
	if err := m.SetOverride(a, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if err := m.BindNames([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	cols, _ := m.POCols([]string{"y"})
	tr := m.RunTrace([][]uint64{{0, ^uint64(0)}}) // stimulus says a=0, override says a=1
	if got := tr.Out(0, cols[0]); got != 0 {
		t.Fatalf("PI override lost: y = %#x, want 0", got)
	}
	// ClearOverride restores normal evaluation.
	m.ClearOverride(a)
	tr = m.RunTrace([][]uint64{{0, ^uint64(0)}})
	if got := tr.Out(0, cols[0]); got != ^uint64(0) {
		t.Fatalf("cleared override still active: y = %#x", got)
	}
}

func TestOverrideListMaintenance(t *testing.T) {
	n := fullAdder(t)
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.NetByName("a")
	b, _ := n.NetByName("b")
	cin, _ := n.NetByName("cin")
	for _, id := range []netlist.NetID{a, b, cin} {
		if err := m.SetOverride(id, uint64(id)+1); err != nil {
			t.Fatal(err)
		}
	}
	m.ClearOverride(a) // swap-delete must keep the other entries intact
	if _, ok := m.Overridden(a); ok {
		t.Fatal("cleared override still present")
	}
	for _, id := range []netlist.NetID{b, cin} {
		if w, ok := m.Overridden(id); !ok || w != uint64(id)+1 {
			t.Fatalf("override of net %d corrupted after unrelated clear", id)
		}
	}
	if err := m.SetOverride(b, 7); err != nil {
		t.Fatal(err)
	}
	if w, _ := m.Overridden(b); w != 7 {
		t.Fatal("re-SetOverride did not update the word")
	}
	if err := m.SetOverride(netlist.NetID(-1), 0); err == nil {
		t.Fatal("override of invalid net should fail")
	}
	m.ClearOverrides()
	if _, ok := m.Overridden(b); ok {
		t.Fatal("ClearOverrides left an entry")
	}
}
