package sim

// Wide-lane regression: the width-W vector engine against the width-1
// engine (itself pinned bit-identical to the ReferenceMachine oracle by
// regress_test.go). Lane word w of a wide replay must reproduce, bit for
// bit, a narrow replay of that word's stimulus — with fusion on or off,
// serial or level-parallel, and with faults, patches and overrides on
// lanes beyond the first word.

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/testgen"
)

// narrowWord extracts lane word w of a wide stimulus as narrow rows.
func narrowWord(wide [][]uint64, cols, W, w int) [][]uint64 {
	out := make([][]uint64, len(wide))
	for c, row := range wide {
		nr := make([]uint64, cols)
		for j := 0; j < cols; j++ {
			nr[j] = row[j*W+w]
		}
		out[c] = nr
	}
	return out
}

// TestWideIdentityOnCatalog replays every catalog design at W ∈ {1, 2, 4}
// on wide stimulus and checks each lane word against an independent
// width-1 replay of that word's patterns — PO and DFF-state streams both.
// The W=1 leg pins the vector engine to the classic single-word layout.
func TestWideIdentityOnCatalog(t *testing.T) {
	const cycles = 10
	for _, d := range bench.Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			nl := d.Build()
			pis := nl.SortedPINames()
			narrow, err := Compile(nl)
			if err != nil {
				t.Fatal(err)
			}
			narrow.CaptureState(true)
			for _, W := range []int{1, 2, 4} {
				wideStim := testgen.RandomBlocks(len(pis)*W, cycles, int64(0xBEEF+W))
				m, err := CompileWidth(nl, W)
				if err != nil {
					t.Fatal(err)
				}
				if m.Width() != W || m.Lanes() != 64*W {
					t.Fatalf("W=%d: Width()=%d Lanes()=%d", W, m.Width(), m.Lanes())
				}
				m.CaptureState(true)
				tw := m.RunTrace(wideStim)
				if tw.Width != W {
					t.Fatalf("trace width %d, want %d", tw.Width, W)
				}
				for w := 0; w < W; w++ {
					tn := narrow.RunTrace(narrowWord(wideStim, len(pis), W, w))
					for c := 0; c < cycles; c++ {
						for po := 0; po < tw.NumPOs; po++ {
							if tw.OutW(c, po, w) != tn.Out(c, po) {
								t.Fatalf("W=%d word %d cycle %d PO %d: wide %#x narrow %#x",
									W, w, c, po, tw.OutW(c, po, w), tn.Out(c, po))
							}
						}
						for i := 0; i < tw.NumState; i++ {
							if tw.StateW(c, i, w) != tn.State(c, i) {
								t.Fatalf("W=%d word %d cycle %d DFF %d: wide %#x narrow %#x",
									W, w, c, i, tw.StateW(c, i, w), tn.State(c, i))
							}
						}
					}
				}
				// Fusion ablated: bit-identical to the fused schedule.
				m.SetFusion(false)
				tp := m.RunTrace(wideStim)
				m.SetFusion(true)
				for i := range tw.Outs {
					if tw.Outs[i] != tp.Outs[i] {
						t.Fatalf("W=%d: fused and plain schedules diverge at out word %d", W, i)
					}
				}
			}
		})
	}
}

// TestWideNarrowRowBroadcast checks the narrow-row convention on a wide
// machine: rows of at most len(bound) words drive every lane word with
// the same stimulus, so all W words of every output are equal — the
// shape serial oracles and broadcast fault campaigns rely on.
func TestWideNarrowRowBroadcast(t *testing.T) {
	nl := bench.Catalog()[0].Build()
	pis := nl.SortedPINames()
	const W = 4
	m, err := CompileWidth(nl, W)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.RandomBlocks(len(pis), 6, 99)
	tr := m.RunTrace(stim)
	for c := 0; c < tr.Cycles; c++ {
		for po := 0; po < tr.NumPOs; po++ {
			w0 := tr.OutW(c, po, 0)
			if tr.Out(c, po) != w0 {
				t.Fatalf("Out != OutW(...,0)")
			}
			for w := 1; w < W; w++ {
				if tr.OutW(c, po, w) != w0 {
					t.Fatalf("cycle %d PO %d word %d: %#x != broadcast %#x",
						c, po, w, tr.OutW(c, po, w), w0)
				}
			}
		}
	}
}

// TestWideLaneFaultsBeyondWord0 arms the fault set of the classic
// lane-fault test on lanes ≥ 64 of a width-4 machine and checks each
// against a width-1 machine carrying the same fault on the corresponding
// in-word lane, under broadcast stimulus.
func TestWideLaneFaultsBeyondWord0(t *testing.T) {
	nl := laneTestNetlist(t)
	const W = 4
	wide, err := CompileWidth(nl, W)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.Repeat(testgen.ScalarBlocks(2, 16, 7), 2)

	andID, _ := nl.CellByName("g_and")
	dID, _ := nl.NetByName("d")
	bID, _ := nl.NetByName("b")
	faults := []struct {
		lane int
		f    LaneFault
	}{
		{64 + 3, LaneFault{Kind: LaneLUTFlip, Cell: andID, Minterm: 3}},
		{128 + 9, LaneFault{Kind: LaneStuckAt1, Net: dID}},
		{192 + 17, LaneFault{Kind: LaneStuckAt0, Net: bID}},
	}
	for _, lf := range faults {
		if err := wide.SetLaneFault(lf.lane, lf.f); err != nil {
			t.Fatal(err)
		}
	}
	if err := wide.SetLaneFault(256, LaneFault{Kind: LaneStuckAt0, Net: dID}); err == nil {
		t.Fatal("lane 256 accepted on a 256-lane machine")
	}
	got := wide.RunTrace(stim)
	golden := narrow.Fork().RunTrace(stim)

	for _, lf := range faults {
		mu := narrow.Fork()
		if err := mu.SetLaneFault(lf.lane%64, lf.f); err != nil {
			t.Fatal(err)
		}
		ref := mu.RunTrace(stim)
		word, bit := lf.lane/64, uint(lf.lane%64)
		for c := 0; c < got.Cycles; c++ {
			for po := 0; po < got.NumPOs; po++ {
				if got.OutW(c, po, word)>>bit&1 != ref.Out(c, po)>>bit&1 {
					t.Fatalf("lane %d cycle %d PO %d: wide fault diverges from narrow reference",
						lf.lane, c, po)
				}
				// Lanes of word 0 carry no fault: must match golden.
				if got.OutW(c, po, 0) != golden.Out(c, po) {
					t.Fatalf("cycle %d PO %d: fault on lane %d leaked into word 0", c, po, lf.lane)
				}
			}
		}
	}
	wide.ClearLaneFaults()
	clean := wide.RunTrace(stim)
	for c := 0; c < clean.Cycles; c++ {
		for po := 0; po < clean.NumPOs; po++ {
			for w := 0; w < W; w++ {
				if clean.OutW(c, po, w) != golden.Out(c, po) {
					t.Fatalf("cleared wide machine differs from golden at word %d", w)
				}
			}
		}
	}
}

// TestWideLanePatchesBeyondWord0 arms a repair patch on a lane ≥ 64 and
// checks it against the width-1 engine patched on the corresponding
// in-word lane.
func TestWideLanePatchesBeyondWord0(t *testing.T) {
	nl := laneTestNetlist(t)
	const W = 2
	wide, err := CompileWidth(nl, W)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.Repeat(testgen.ScalarBlocks(2, 12, 5), 2)
	xorID, _ := nl.CellByName("g_xor")
	const lane = 64 + 11
	const tt = 0x8 // AND instead of XOR
	if err := wide.SetLanePatch(lane, xorID, tt); err != nil {
		t.Fatal(err)
	}
	if err := wide.SetLanePatch(128, xorID, tt); err == nil {
		t.Fatal("lane 128 accepted on a 128-lane machine")
	}
	got := wide.RunTrace(stim)

	mu := narrow.Fork()
	if err := mu.SetLanePatch(lane%64, xorID, tt); err != nil {
		t.Fatal(err)
	}
	ref := mu.RunTrace(stim)
	golden := narrow.Fork().RunTrace(stim)
	for c := 0; c < got.Cycles; c++ {
		for po := 0; po < got.NumPOs; po++ {
			if got.OutW(c, po, 1)>>11&1 != ref.Out(c, po)>>11&1 {
				t.Fatalf("cycle %d PO %d: wide patch diverges from narrow reference", c, po)
			}
			if got.OutW(c, po, 0) != golden.Out(c, po) {
				t.Fatalf("cycle %d PO %d: patch on lane %d leaked into word 0", c, po, lane)
			}
		}
	}
}

// TestWideOverrideBroadcast checks that SetOverride pins all lane words
// of a widened machine and that downstream logic observes it everywhere.
func TestWideOverrideBroadcast(t *testing.T) {
	nl := laneTestNetlist(t)
	const W = 4
	wide, err := CompileWidth(nl, W)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	dID, _ := nl.NetByName("d")
	if err := wide.SetOverride(dID, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if err := narrow.SetOverride(dID, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if v, ok := wide.Overridden(dID); !ok || v != ^uint64(0) {
		t.Fatalf("Overridden: %#x %v", v, ok)
	}
	stim := testgen.ScalarBlocks(2, 12, 3)
	tw := wide.RunTrace(stim)
	tn := narrow.RunTrace(stim)
	for c := 0; c < tw.Cycles; c++ {
		for po := 0; po < tw.NumPOs; po++ {
			for w := 0; w < W; w++ {
				if tw.OutW(c, po, w) != tn.Out(c, po) {
					t.Fatalf("cycle %d PO %d word %d: override not broadcast", c, po, w)
				}
			}
		}
	}
}

// TestForkPreservesWidth checks that forks of a widened machine share the
// compiled wide program and reproduce its results independently.
func TestForkPreservesWidth(t *testing.T) {
	nl := bench.Catalog()[0].Build()
	pis := nl.SortedPINames()
	const W = 4
	m, err := CompileWidth(nl, W)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Fork()
	if f.Width() != W || f.Lanes() != 64*W {
		t.Fatalf("fork width %d lanes %d", f.Width(), f.Lanes())
	}
	if f.FusedKernels() != m.FusedKernels() {
		t.Fatalf("fork fused kernels %d != %d", f.FusedKernels(), m.FusedKernels())
	}
	stim := testgen.RandomBlocks(len(pis)*W, 6, 21)
	ta := m.RunTrace(stim)
	tb := f.RunTrace(stim)
	for i := range ta.Outs {
		if ta.Outs[i] != tb.Outs[i] {
			t.Fatalf("fork trace diverges at out word %d", i)
		}
	}
}

// unclassifiableTT finds a truth table of arity k that depends on every
// input yet is rejected by the truth-table classifier. Fusion only pairs
// unclassified table nodes (classified kernels are already cheaper than a
// composed pair table), so these are exactly the functions that keep the
// fusion pass alive.
func unclassifiableTT(t *testing.T, k int) uint16 {
	t.Helper()
	n := 1 << uint(k)
	mask := uint32(1)<<uint(n) - 1
	for v := uint32(0); v <= mask; v++ {
		if _, _, ok := classifyTT(uint16(v), k); ok {
			continue
		}
		full := true
		for j := 0; j < k && full; j++ {
			// Some minterm pair differing only in pin j must disagree.
			dep := false
			for m := 0; m < n; m++ {
				if m>>uint(j)&1 == 0 && v>>uint(m)&1 != v>>uint(m|1<<uint(j))&1 {
					dep = true
					break
				}
			}
			full = dep
		}
		if full {
			return uint16(v)
		}
	}
	t.Fatalf("no unclassifiable full-support table of arity %d", k)
	return 0
}

// coverFromTT builds a minterm cover for an explicit truth table, bit m
// giving the output for the assignment where pin j carries bit j of m.
func coverFromTT(tt uint16, k int) logic.Cover {
	cov := logic.Cover{N: k}
	for m := 0; m < 1<<uint(k); m++ {
		if tt>>uint(m)&1 == 0 {
			continue
		}
		var cu logic.Cube
		for v := 0; v < k; v++ {
			cu = cu.WithLit(v, m>>uint(v)&1 == 1)
		}
		cov.Cubes = append(cov.Cubes, cu)
	}
	return cov
}

// TestFusionProducesKernelsAndPreservesProbes checks that fusion still
// fires on single-fanout chains of unclassifiable LUTs — its remaining
// role now that classified kernels absorb the common small functions —
// and that a fused-away head net is still written: probing it gives the
// same stream with fusion on and off. Catalog designs, whose small LUTs
// are all classified, additionally pin FusedKernels()==0 so fusion and
// classification never fight over the same node.
func TestFusionProducesKernelsAndPreservesProbes(t *testing.T) {
	tt4 := unclassifiableTT(t, 4)
	tt3 := unclassifiableTT(t, 3)

	nl := netlist.New("fusion-chains")
	a, b := nl.AddPI("a"), nl.AddPI("b")
	c, d := nl.AddPI("c"), nl.AddPI("d")
	// Chain 1: unclassifiable 4-input head feeding a single inverter.
	h1 := nl.AddNet("h1")
	o1 := nl.AddNet("o1")
	nl.MustAddLUT("head4", coverFromTT(tt4, 4), []netlist.NetID{a, b, c, d}, h1)
	nl.MustAddLUT("tail1", logic.NotN(), []netlist.NetID{h1}, o1)
	nl.MarkPO(o1)
	// Chain 2: unclassifiable 3-input head whose tail shares its support,
	// so the combined function still fits four inputs.
	h2 := nl.AddNet("h2")
	o2 := nl.AddNet("o2")
	nl.MustAddLUT("head3", coverFromTT(tt3, 3), []netlist.NetID{a, b, c}, h2)
	nl.MustAddLUT("tail3", coverFromTT(tt3, 3), []netlist.NetID{h2, a, b}, o2)
	nl.MarkPO(o2)

	m, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if m.FusedKernels() < 2 {
		t.Fatalf("FusedKernels() = %d, want both synthetic chains fused", m.FusedKernels())
	}
	// Probe every fused-away head net.
	var heads []netlist.NetID
	for _, x := range m.xnodes {
		if x.out2 >= 0 {
			heads = append(heads, netlist.NetID(x.out2))
		}
	}
	if len(heads) != 2 {
		t.Fatalf("fused head nets = %d, want 2", len(heads))
	}
	if err := m.Probe(heads...); err != nil {
		t.Fatal(err)
	}
	stim := testgen.RandomBlocks(4, 8, 11)
	tf := m.RunTrace(stim)
	fused := append([]uint64(nil), tf.ProbeVals...)
	fusedOuts := append([]uint64(nil), tf.Outs...)
	m.SetFusion(false)
	tp := m.RunTrace(stim)
	for i := range fused {
		if fused[i] != tp.ProbeVals[i] {
			t.Fatalf("fused head-net probe %d diverges from plain schedule", i)
		}
	}
	for i := range fusedOuts {
		if fusedOuts[i] != tp.Outs[i] {
			t.Fatalf("fused PO word %d diverges from plain schedule", i)
		}
	}

	// Classified compiles leave nothing for the fusion pass on the real
	// catalog: every fusable small LUT is a chain, parity, mux or
	// majority and runs as a table-free kernel instead.
	for _, cd := range bench.Catalog() {
		cm, err := Compile(cd.Build())
		if err != nil {
			t.Fatal(err)
		}
		if cm.FusedKernels() != 0 {
			t.Fatalf("%s: %d fused kernels on a classified compile", cd.Name, cm.FusedKernels())
		}
	}
}

// TestLevelParallelMatchesSerial runs the largest catalog designs with a
// worker pool on every pass shape — fused, plain, and hooked (a lane
// fault arms the perturbed pass) — and demands bit-identical results.
func TestLevelParallelMatchesSerial(t *testing.T) {
	for _, d := range bench.Catalog() {
		nl := d.Build()
		if len(nl.Cells) < 300 {
			continue // pool declines tiny designs; covered by Workers() check below
		}
		for _, W := range []int{1, 2} {
			m, err := CompileWidth(nl, W)
			if err != nil {
				t.Fatal(err)
			}
			pis := nl.SortedPINames()
			stim := testgen.RandomBlocks(len(pis)*W, 8, 17)
			m.CaptureState(true)
			serial := m.RunTrace(stim)
			serialOuts := append([]uint64(nil), serial.Outs...)
			serialStates := append([]uint64(nil), serial.States...)

			m.SetWorkers(4)
			if m.Workers() == 1 {
				continue // no level wide enough on this design
			}
			check := func(pass string) {
				tr := m.RunTrace(stim)
				for i := range serialOuts {
					if tr.Outs[i] != serialOuts[i] {
						t.Fatalf("%s W=%d %s: parallel out %d diverges", d.Name, W, pass, i)
					}
				}
				if pass == "fused" {
					for i := range serialStates {
						if tr.States[i] != serialStates[i] {
							t.Fatalf("%s W=%d: parallel state %d diverges", d.Name, W, i)
						}
					}
				}
			}
			check("fused")
			m.SetFusion(false)
			check("plain")
			m.SetFusion(true)
			// Hooked pass: harmless patch-free fault on one lane.
			var lutNet netlist.NetID
			for id := range nl.Nets {
				if d := nl.Nets[id].Driver; d != netlist.NilCell && nl.Cells[d].Kind == netlist.KindLUT {
					lutNet = netlist.NetID(id)
					break
				}
			}
			if err := m.SetLaneFault(m.Lanes()-1, LaneFault{Kind: LaneStuckAt1, Net: lutNet}); err != nil {
				t.Fatal(err)
			}
			par := m.RunTrace(stim)
			parOuts := append([]uint64(nil), par.Outs...)
			m.SetWorkers(0)
			ser := m.RunTrace(stim)
			for i := range parOuts {
				if parOuts[i] != ser.Outs[i] {
					t.Fatalf("%s W=%d hooked: parallel out %d diverges", d.Name, W, i)
				}
			}
			m.ClearLaneFaults()
		}
	}
}

// TestOutputsInto checks the allocation-free output snapshot against the
// map shim at width 1 and against per-word trace reads at width 4.
func TestOutputsInto(t *testing.T) {
	nl := laneTestNetlist(t)
	m, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPI("a", 0xF0); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPI("b", 0xCC); err != nil {
		t.Fatal(err)
	}
	m.Eval()
	byName := m.Outputs()
	flat := m.OutputsInto(nil)
	if len(flat) != len(m.PONames()) {
		t.Fatalf("OutputsInto length %d, want %d", len(flat), len(m.PONames()))
	}
	for i, name := range m.PONames() {
		if flat[i] != byName[name] {
			t.Fatalf("PO %q: OutputsInto %#x != Outputs %#x", name, flat[i], byName[name])
		}
	}
	// Reuse: same backing array, no growth.
	again := m.OutputsInto(flat)
	if &again[0] != &flat[0] {
		t.Fatal("OutputsInto reallocated despite sufficient capacity")
	}

	const W = 4
	wm, err := CompileWidth(nl, W)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.RandomBlocks(2*W, 1, 13)
	tr := wm.RunTrace(stim)
	wide := wm.OutputsInto(nil)
	if len(wide) != len(wm.PONames())*W {
		t.Fatalf("wide OutputsInto length %d", len(wide))
	}
	for po := 0; po < tr.NumPOs; po++ {
		for w := 0; w < W; w++ {
			if wide[po*W+w] != tr.OutW(0, po, w) {
				t.Fatalf("wide OutputsInto PO %d word %d != trace", po, w)
			}
		}
	}
}
