package sim

// Truth-table kernels: a k-input LUT over 64-pattern words evaluated by
// unrolled Shannon muxing. The 16-bit configuration word is expanded at
// compile time into a flat pair table of broadcast words — for every pair
// of adjacent minterms (2m, 2m+1) the table stores
//
//	t[2m]   = B(2m)            (all-ones iff the function is 1 on 2m)
//	t[2m+1] = B(2m) ^ B(2m+1)
//
// so the first mux level over variable a collapses to two ops,
// r_m = t[2m] ^ (a & t[2m+1]), with all 2^(k-1) first-level muxes
// independent (good ILP). The remaining levels are the standard
// mux(s,x,y) = x ^ (s & (x^y)). Everything below is straight-line word
// arithmetic — no branches, no per-cycle allocation — and inlines into
// the eval loop.

// expandTT builds the pair table of a k-input LUT (k in 1..4) from its
// 16-bit truth table: 2^(k-1) pairs, 2^k words.
func expandTT(tt uint16, k int) []uint64 {
	bc := func(m int) uint64 { return -uint64(tt >> m & 1) }
	out := make([]uint64, 1<<k)
	for m := 0; m < 1<<(k-1); m++ {
		out[2*m] = bc(2 * m)
		out[2*m+1] = bc(2*m) ^ bc(2*m+1)
	}
	return out
}

// pairBits compresses a pair table to one bit per word. Every expanded
// word is a broadcast — 0 or all-ones — so the whole table of a k-input
// LUT is 2^k bits, which fits the node's 16-bit msk field even at k = 4.
// The block evaluators rebuild the table with register arithmetic
// (kernels4.go) instead of streaming it from memory, which removes the
// pair-table array from the hot path's cache footprint entirely.
func pairBits(tt uint16, k int) uint16 {
	var pb uint16
	for i, w := range expandTT(tt, k) {
		if w != 0 {
			pb |= 1 << uint(i)
		}
	}
	return pb
}

// evalTab1 evaluates a 1-input LUT from its 2-word pair table.
func evalTab1(t []uint64, a uint64) uint64 {
	return t[0] ^ (a & t[1])
}

// evalTab2 evaluates a 2-input LUT from its 4-word pair table; variable b
// muxes the two first-level results.
func evalTab2(t []uint64, a, b uint64) uint64 {
	r0 := t[0] ^ (a & t[1])
	r1 := t[2] ^ (a & t[3])
	return r0 ^ (b & (r0 ^ r1))
}

// evalTab3 evaluates a 3-input LUT from its 8-word pair table.
func evalTab3(t []uint64, a, b, c uint64) uint64 {
	r0 := t[0] ^ (a & t[1])
	r1 := t[2] ^ (a & t[3])
	r2 := t[4] ^ (a & t[5])
	r3 := t[6] ^ (a & t[7])
	s0 := r0 ^ (b & (r0 ^ r1))
	s1 := r2 ^ (b & (r2 ^ r3))
	return s0 ^ (c & (s0 ^ s1))
}

// evalTab4 evaluates a 4-input LUT from its 16-word pair table; variable d
// muxes the two 3-input halves.
func evalTab4(t []uint64, a, b, c, d uint64) uint64 {
	r0 := t[0] ^ (a & t[1])
	r1 := t[2] ^ (a & t[3])
	r2 := t[4] ^ (a & t[5])
	r3 := t[6] ^ (a & t[7])
	r4 := t[8] ^ (a & t[9])
	r5 := t[10] ^ (a & t[11])
	r6 := t[12] ^ (a & t[13])
	r7 := t[14] ^ (a & t[15])
	s0 := r0 ^ (b & (r0 ^ r1))
	s1 := r2 ^ (b & (r2 ^ r3))
	s2 := r4 ^ (b & (r4 ^ r5))
	s3 := r6 ^ (b & (r6 ^ r7))
	u0 := s0 ^ (c & (s0 ^ s1))
	u1 := s2 ^ (c & (s2 ^ s3))
	return u0 ^ (d & (u0 ^ u1))
}
