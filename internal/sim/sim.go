package sim

import (
	"fmt"
	"sort"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// Kernel opcodes. LUTs with at most four inputs are compiled to their
// 16-bit truth table and evaluated by unrolled Shannon muxing; wider LUTs
// keep their sum-of-products cover.
const (
	opConst uint8 = iota // zero-input LUT; tt bit 0 is the constant
	opTT1                // 1-input truth-table kernel
	opTT2                // 2-input truth-table kernel
	opTT3                // 3-input truth-table kernel
	opTT4                // 4-input truth-table kernel
	opCover              // generic cover evaluation (k > 4)
)

// node is one compiled LUT in topological order.
type node struct {
	out   int32  // output net index
	start int32  // first fanin in the CSR array
	nin   int32  // fanin count
	aux   int32  // opTT*: start in ttab; opCover: index into covers
	op    uint8  // kernel opcode
	tt    uint16 // raw truth table (opConst: bit 0 is the constant)
}

// Machine is a compiled simulator instance for one netlist. It is not safe
// for concurrent use; compile one Machine per worker.
type Machine struct {
	nl *netlist.Netlist

	// Compiled program.
	nodes  []node
	fanin  []int32       // CSR-packed fanin net indices for all nodes
	ttab   []uint64      // broadcast pair tables of all opTT* nodes
	covers []logic.Cover // functions of opCover nodes
	buf    []uint64      // scratch fanin gather for opCover kernels

	// Flip-flop tables (compile order, stable across the Machine's life).
	dffD    []int32  // D input net per DFF
	dffQ    []int32  // Q output net per DFF
	dffInit []uint64 // power-on word per DFF (0 or all-ones)

	// Primary input/output tables.
	pis     []int32  // PI net indices, sorted by name
	piNames []string // names parallel to pis
	pos     []int32  // PO net indices in netlist declaration order
	poNames []string // names parallel to pos

	val   []uint64 // per net, 64 patterns wide
	state []uint64 // per DFF: current Q value

	// Trace configuration (see trace.go).
	bound        []int32 // net index per stimulus column
	probes       []int32 // net indices sampled into Trace.ProbeVals
	captureState bool

	// Override list: nets pinned to a fixed word during evaluation.
	ovIdx  []int32 // per net: index into ovVal, or -1 (nil until first use)
	ovNets []int32
	ovVal  []uint64

	// Fault-parallel lane mutations (see lanefault.go). nodeOfCell is part
	// of the compiled program (shared by forks); the rest is per-instance
	// configuration like the override list.
	nodeOfCell []int32 // per cell: compiled node index, or -1
	mutOf      []int32 // per node: index into mutLists, or -1 (nil until first use)
	mutNodes   []int32 // nodes carrying mutations, for clearing
	mutLists   [][]laneMut
	preMuts    []preMut // stuck-ats on PIs, DFF outputs and undriven nets

	// Per-lane truth-table substitutions (see lanepatch.go), configured
	// like lane faults and cleared with them.
	patchOf    []int32 // per node: index into patchLists, or -1 (nil until first use)
	patchNodes []int32
	patchLists [][]lanePatch
	patchTabs  []uint64 // pair tables of all armed patches
}

// Compile levelizes the netlist and lowers it into a ready-to-run machine
// in the reset state. The netlist must be combinationally acyclic.
func Compile(nl *netlist.Netlist) (*Machine, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := &Machine{
		nl:         nl,
		val:        make([]uint64, len(nl.Nets)),
		nodeOfCell: make([]int32, len(nl.Cells)),
	}
	for i := range m.nodeOfCell {
		m.nodeOfCell[i] = -1
	}
	maxFanin := 0
	for _, id := range order {
		c := &nl.Cells[id]
		switch c.Kind {
		case netlist.KindLUT:
			m.nodeOfCell[id] = int32(len(m.nodes))
			n := node{
				out:   int32(c.Out),
				start: int32(len(m.fanin)),
				nin:   int32(len(c.Fanin)),
				aux:   -1,
			}
			for _, f := range c.Fanin {
				m.fanin = append(m.fanin, int32(f))
			}
			switch {
			case len(c.Fanin) == 0:
				n.op = opConst
				if c.Func.Eval(0) {
					n.tt = 1
				}
			case len(c.Fanin) <= 4:
				tt, err := c.Func.TT()
				if err != nil {
					return nil, fmt.Errorf("sim: cell %q: %w", c.Name, err)
				}
				w4, err := tt.Word4()
				if err != nil {
					return nil, fmt.Errorf("sim: cell %q: %w", c.Name, err)
				}
				n.op = opConst + uint8(len(c.Fanin)) // opTT1..opTT4
				n.tt = w4
				n.aux = int32(len(m.ttab))
				m.ttab = append(m.ttab, expandTT(w4, len(c.Fanin))...)
			default:
				n.op = opCover
				n.aux = int32(len(m.covers))
				m.covers = append(m.covers, c.Func)
				if len(c.Fanin) > maxFanin {
					maxFanin = len(c.Fanin)
				}
			}
			m.nodes = append(m.nodes, n)
		case netlist.KindDFF:
			m.dffD = append(m.dffD, int32(c.Fanin[0]))
			m.dffQ = append(m.dffQ, int32(c.Out))
			if c.Init == 1 {
				m.dffInit = append(m.dffInit, ^uint64(0))
			} else {
				m.dffInit = append(m.dffInit, 0)
			}
		}
	}
	m.buf = make([]uint64, maxFanin)
	m.state = make([]uint64, len(m.dffQ))
	for _, pi := range nl.PIs {
		m.pis = append(m.pis, int32(pi))
	}
	sort.Slice(m.pis, func(i, j int) bool {
		return nl.Nets[m.pis[i]].Name < nl.Nets[m.pis[j]].Name
	})
	m.piNames = make([]string, len(m.pis))
	for i, pi := range m.pis {
		m.piNames[i] = nl.Nets[pi].Name
	}
	for _, po := range nl.POs {
		m.pos = append(m.pos, int32(po))
		m.poNames = append(m.poNames, nl.Nets[po].Name)
	}
	// Default binding: every PI, in sorted-name order.
	m.bound = append([]int32(nil), m.pis...)
	m.Reset()
	return m, nil
}

// Netlist returns the compiled design.
func (m *Machine) Netlist() *netlist.Netlist { return m.nl }

// NumDFFs returns the number of compiled flip-flops.
func (m *Machine) NumDFFs() int { return len(m.dffQ) }

// Reset restores every DFF to its power-on value and clears all nets.
// Trace bindings, probes and overrides are configuration, not state, and
// survive a reset.
func (m *Machine) Reset() {
	for i := range m.val {
		m.val[i] = 0
	}
	copy(m.state, m.dffInit)
}

// Eval propagates the current primary inputs and flip-flop state through
// the combinational logic. It does not advance the clock. Nets on the
// override list read their pinned word instead of their computed value.
func (m *Machine) Eval() {
	for i, q := range m.dffQ {
		m.val[q] = m.state[i]
	}
	if len(m.ovNets) != 0 {
		// Pre-apply overrides so source nets (PIs, DFF outputs) read
		// forced; driven nets are re-forced as their node executes.
		for _, net := range m.ovNets {
			m.val[net] = m.ovVal[m.ovIdx[net]]
		}
	}
	if len(m.preMuts) != 0 {
		// Source-net stuck-ats: PIs, DFF outputs and undriven nets are
		// never written by the node pass, so forcing them up front is
		// final for this evaluation.
		for _, pm := range m.preMuts {
			m.val[pm.net] = applyStuck(m.val[pm.net], laneMut{mask: pm.mask, kind: pm.kind})
		}
	}
	switch {
	case len(m.mutNodes) != 0 || len(m.patchNodes) != 0:
		m.evalNodesFaulty()
	case len(m.ovNets) != 0:
		m.evalNodesOverridden()
	default:
		m.evalNodes()
	}
}

// evalNodes is the hot loop: one pass over the compiled program.
func (m *Machine) evalNodes() {
	v := m.val
	fan := m.fanin
	ttab := m.ttab
	nodes := m.nodes
	for i := range nodes {
		n := nodes[i]
		s := n.start
		var w uint64
		switch n.op {
		case opTT2:
			f := fan[s : s+2 : s+2]
			t := ttab[n.aux : n.aux+4 : n.aux+4]
			w = evalTab2(t, v[f[0]], v[f[1]])
		case opTT3:
			f := fan[s : s+3 : s+3]
			t := ttab[n.aux : n.aux+8 : n.aux+8]
			w = evalTab3(t, v[f[0]], v[f[1]], v[f[2]])
		case opTT4:
			f := fan[s : s+4 : s+4]
			t := ttab[n.aux : n.aux+16 : n.aux+16]
			w = evalTab4(t, v[f[0]], v[f[1]], v[f[2]], v[f[3]])
		case opTT1:
			w = evalTab1(ttab[n.aux:n.aux+2:n.aux+2], v[fan[s]])
		case opConst:
			w = -uint64(n.tt & 1)
		default: // opCover
			buf := m.buf[:n.nin]
			for j := int32(0); j < n.nin; j++ {
				buf[j] = v[fan[s+j]]
			}
			w = m.covers[n.aux].EvalWords(buf)
		}
		v[n.out] = w
	}
}

// evalNodesOverridden is evalNodes plus the per-net override check; split
// out so the common no-override path stays branch-light.
func (m *Machine) evalNodesOverridden() {
	v := m.val
	fan := m.fanin
	ttab := m.ttab
	nodes := m.nodes
	for i := range nodes {
		n := nodes[i]
		s := n.start
		var w uint64
		switch n.op {
		case opTT2:
			w = evalTab2(ttab[n.aux:n.aux+4:n.aux+4], v[fan[s]], v[fan[s+1]])
		case opTT3:
			w = evalTab3(ttab[n.aux:n.aux+8:n.aux+8], v[fan[s]], v[fan[s+1]], v[fan[s+2]])
		case opTT4:
			w = evalTab4(ttab[n.aux:n.aux+16:n.aux+16], v[fan[s]], v[fan[s+1]], v[fan[s+2]], v[fan[s+3]])
		case opTT1:
			w = evalTab1(ttab[n.aux:n.aux+2:n.aux+2], v[fan[s]])
		case opConst:
			w = -uint64(n.tt & 1)
		default: // opCover
			buf := m.buf[:n.nin]
			for j := int32(0); j < n.nin; j++ {
				buf[j] = v[fan[s+j]]
			}
			w = m.covers[n.aux].EvalWords(buf)
		}
		if o := m.ovIdx[n.out]; o >= 0 {
			w = m.ovVal[o]
		}
		v[n.out] = w
	}
}

// Clock latches every DFF's D input into its state. Callers should have
// called Eval first; the usual cycle is SetPIs → Eval → read outputs →
// Clock.
func (m *Machine) Clock() {
	for i, d := range m.dffD {
		m.state[i] = m.val[d]
	}
}

// SetOverride pins a net to a fixed 64-pattern word for every subsequent
// Eval (and hence RunTrace cycle) until cleared — the software analogue of
// a control point holding a signal. Unlike ForceNet, the override is
// honored by the execution core itself: downstream logic evaluated in the
// same pass reads the forced value, and re-evaluation does not clobber it.
func (m *Machine) SetOverride(id netlist.NetID, w uint64) error {
	if int(id) < 0 || int(id) >= len(m.val) {
		return fmt.Errorf("sim: override of invalid net %d", id)
	}
	if m.ovIdx == nil {
		m.ovIdx = make([]int32, len(m.val))
		for i := range m.ovIdx {
			m.ovIdx[i] = -1
		}
	}
	if o := m.ovIdx[id]; o >= 0 {
		m.ovVal[o] = w
		return nil
	}
	m.ovIdx[id] = int32(len(m.ovNets))
	m.ovNets = append(m.ovNets, int32(id))
	m.ovVal = append(m.ovVal, w)
	return nil
}

// ClearOverride removes one net from the override list.
func (m *Machine) ClearOverride(id netlist.NetID) {
	if m.ovIdx == nil || int(id) < 0 || int(id) >= len(m.ovIdx) {
		return
	}
	o := m.ovIdx[id]
	if o < 0 {
		return
	}
	last := int32(len(m.ovNets) - 1)
	m.ovNets[o] = m.ovNets[last]
	m.ovVal[o] = m.ovVal[last]
	m.ovIdx[m.ovNets[o]] = o
	m.ovNets = m.ovNets[:last]
	m.ovVal = m.ovVal[:last]
	m.ovIdx[id] = -1
}

// ClearOverrides removes every override.
func (m *Machine) ClearOverrides() {
	for _, net := range m.ovNets {
		m.ovIdx[net] = -1
	}
	m.ovNets = m.ovNets[:0]
	m.ovVal = m.ovVal[:0]
}

// Overridden reports whether a net is on the override list, and its word.
func (m *Machine) Overridden(id netlist.NetID) (uint64, bool) {
	if m.ovIdx == nil || int(id) < 0 || int(id) >= len(m.ovIdx) || m.ovIdx[id] < 0 {
		return 0, false
	}
	return m.ovVal[m.ovIdx[id]], true
}

// ---------------------------------------------------------------- shim
//
// The name/map API below predates the trace API. It is kept as a
// compatibility layer: correct, convenient for one-off probing and tests,
// and deliberately unoptimized (per-cycle map allocation and string
// hashing). Hot paths should use Slots/Bind/RunTrace instead.

// SetPI drives a primary input net with a 64-pattern word.
func (m *Machine) SetPI(name string, w uint64) error {
	id, ok := m.nl.NetByName(name)
	if !ok {
		return fmt.Errorf("sim: no net %q", name)
	}
	if !m.nl.IsPI(id) {
		return fmt.Errorf("sim: net %q is not a primary input", name)
	}
	m.val[id] = w
	return nil
}

// SetPIs drives several primary inputs at once.
func (m *Machine) SetPIs(in map[string]uint64) error {
	for name, w := range in {
		if err := m.SetPI(name, w); err != nil {
			return err
		}
	}
	return nil
}

// Step is the common SetPIs → Eval → Clock cycle, returning the primary
// output words observed before the clock edge.
func (m *Machine) Step(in map[string]uint64) (map[string]uint64, error) {
	if err := m.SetPIs(in); err != nil {
		return nil, err
	}
	m.Eval()
	out := m.Outputs()
	m.Clock()
	return out, nil
}

// Net probes any net by name — the software analogue of attaching
// observation logic.
func (m *Machine) Net(name string) (uint64, error) {
	id, ok := m.nl.NetByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no net %q", name)
	}
	return m.val[id], nil
}

// NetByID probes a net by ID.
func (m *Machine) NetByID(id netlist.NetID) uint64 { return m.val[id] }

// ForceNet overwrites a net's current value in place. The write is
// one-shot: the next Eval recomputes driven nets and clobbers it, so it is
// only useful for combinational what-if probing on undriven nets or in the
// window between Eval and Clock. For a forcing that persists across
// evaluations — and that downstream logic observes — use SetOverride.
func (m *Machine) ForceNet(id netlist.NetID, w uint64) { m.val[id] = w }

// Out returns a primary output word by name.
func (m *Machine) Out(name string) (uint64, error) {
	id, ok := m.nl.NetByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no net %q", name)
	}
	if !m.nl.IsPO(id) {
		return 0, fmt.Errorf("sim: net %q is not a primary output", name)
	}
	return m.val[id], nil
}

// Outputs returns all primary output words keyed by name.
func (m *Machine) Outputs() map[string]uint64 {
	out := make(map[string]uint64, len(m.pos))
	for i, po := range m.pos {
		out[m.poNames[i]] = m.val[po]
	}
	return out
}

// StateWords exposes the current flip-flop state (one word per DFF in
// compile order); used by tests and by checkpointing.
func (m *Machine) StateWords() []uint64 {
	return append([]uint64(nil), m.state...)
}
