package sim

import (
	"fmt"
	"sort"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// Kernel opcodes. LUTs with at most four inputs are compiled to their
// 16-bit truth table and evaluated by unrolled Shannon muxing; wider LUTs
// keep their sum-of-products cover. The opFused* opcodes exist only in the
// fused fast-path schedule (see fused.go): one kernel evaluates a
// single-fanout producer LUT and its consumer from one shared input
// gather, writing both output nets.
const (
	opConst  uint8 = iota // zero-input LUT; tt bit 0 is the constant
	opTT1                 // 1-input truth-table kernel
	opTT2                 // 2-input truth-table kernel
	opTT3                 // 3-input truth-table kernel
	opTT4                 // 4-input truth-table kernel
	opCover               // generic cover evaluation (k > 4)
	opFused1              // fused pair kernel over 1 combined input
	opFused2              // fused pair kernel over 2 combined inputs
	opFused3              // fused pair kernel over 3 combined inputs
	opFused4              // fused pair kernel over 4 combined inputs

	// Classified table-free kernels (see classify.go): the compile-time
	// truth-table classifier lowers parity functions, read-once AND/XOR
	// chains and trees, and 2:1 muxes to register-only arithmetic decoded
	// from node.msk. Classified nodes keep their pair table (aux/tt), so
	// the hooked pass and lane patches treat them like opTT* nodes.
	opXor2   // 2-input parity, optional complement
	opXor3   // 3-input parity
	opXor4   // 4-input parity
	opChain2 // 2-input read-once AND/XOR chain with complements
	opChain3 // 3-input chain
	opChain4 // 4-input chain
	opTree4  // 4-input balanced read-once tree
	opMux3   // 2:1 mux (s ? a : b) with complements
	opMaj3   // 3-input majority with complements
	opSplit4 // 4-input: one pin AND/XOR-chained onto a 3-input register table
)

// MaxWidth bounds the lane-vector width: up to MaxWidth 64-pattern words
// per net, i.e. 64*MaxWidth parallel lanes per replay.
const MaxWidth = 16

// node is one compiled LUT in level-major topological order.
type node struct {
	out   int32  // output net index
	start int32  // first fanin in the CSR array
	nin   int32  // fanin count
	aux   int32  // opTT*: start in ttab; opCover: index into covers
	op    uint8  // kernel opcode
	tt    uint16 // raw truth table (opConst: bit 0 is the constant)
	msk   uint16 // classified-kernel descriptor (see classify.go)
}

// Machine is a compiled simulator instance for one netlist. Every net
// carries a lane vector of Width() 64-pattern words — 64·Width parallel
// lanes per evaluation — stored stride-Width in one flat value plane.
// A Machine is not safe for concurrent use by callers; compile one
// Machine per worker (SetWorkers parallelism is internal to Eval).
type Machine struct {
	nl    *netlist.Netlist
	width int // words per net lane vector (W); lanes = 64*W

	// Compiled program.
	nodes  []node
	fanin  []int32       // CSR-packed fanin net indices for all nodes
	ttab   []uint64      // broadcast pair tables of all opTT*/opFused* kernels
	covers []logic.Cover // functions of opCover nodes
	buf    []uint64      // scratch fanin gather for opCover kernels

	// Fused fast-path schedule (see fused.go). xnodes is the plain node
	// list with every fused producer folded into its consumer's kernel;
	// the hooked evaluation paths (overrides, lane faults/patches) walk
	// the unfused nodes instead.
	xnodes     []xnode
	xfan       []int32 // combined fanin lists of fused kernels
	fusedPairs int
	fuse       bool // fast path uses the fused schedule (default on)

	// Premultiplied block-path offsets (widths divisible by four only):
	// copies of the fanin/xfan CSRs and the node output nets with the *W
	// already baked in, so the block evaluators' dispatch loop loads a
	// ready word offset instead of paying a multiply per operand.
	fanB   []int32
	xfanB  []int32
	outB   []int32 // per node
	xoutB  []int32 // per xnode
	xout2B []int32 // per xnode; -1 where out2 is -1

	// Level structure: levelOffN/levelOffX are the level boundaries of
	// nodes/xnodes (both emitted level-major), driving the optional
	// level-parallel evaluation pool (see parallel.go).
	levelOffN []int32
	levelOffX []int32
	pool      *evalPool

	// Flip-flop tables (compile order, stable across the Machine's life).
	dffD    []int32  // D input net per DFF
	dffQ    []int32  // Q output net per DFF
	dffInit []uint64 // power-on word per DFF (0 or all-ones, broadcast to all lane words)

	// Primary input/output tables.
	pis     []int32  // PI net indices, sorted by name
	piNames []string // names parallel to pis
	pos     []int32  // PO net indices in netlist declaration order
	poNames []string // names parallel to pos

	val   []uint64 // per net: width words (net i at val[i*width:(i+1)*width])
	state []uint64 // per DFF: width words of current Q value
	cycle int32    // trace cycle counter: 0 after Reset, +1 per Clock (arms windowed lane faults)

	// Trace configuration (see trace.go).
	bound        []int32 // net index per stimulus column
	probes       []int32 // net indices sampled into Trace.ProbeVals
	captureState bool

	// Override list: nets pinned to a fixed lane vector during evaluation
	// (width words per entry in ovVal).
	ovIdx  []int32 // per net: index into ovNets, or -1 (nil until first use)
	ovNets []int32
	ovVal  []uint64

	// Fault-parallel lane mutations (see lanefault.go). nodeOfCell is part
	// of the compiled program (shared by forks); the rest is per-instance
	// configuration like the override list.
	nodeOfCell []int32 // per cell: compiled node index, or -1
	mutOf      []int32 // per node: index into mutLists, or -1 (nil until first use)
	mutNodes   []int32 // nodes carrying mutations, for clearing
	mutLists   [][]laneMut
	preMuts    []preMut // stuck-ats on PIs, DFF outputs and undriven nets

	// Per-lane truth-table substitutions (see lanepatch.go), configured
	// like lane faults and cleared with them.
	patchOf    []int32 // per node: index into patchLists, or -1 (nil until first use)
	patchNodes []int32
	patchLists [][]lanePatch
	patchTabs  []uint64 // pair tables of all armed patches
}

// Compile levelizes the netlist and lowers it into a ready-to-run machine
// in the reset state, with the classic single-word lane model (64 lanes).
// The netlist must be combinationally acyclic.
func Compile(nl *netlist.Netlist) (*Machine, error) {
	return CompileWidth(nl, 1)
}

// CompileWidth is Compile with a configurable lane-vector width: every
// net carries width 64-pattern words, so one replay evaluates 64·width
// parallel patterns (or mutants — see SetLaneFault). width 1 yields a
// machine bit-identical to Compile's; width must be in [1, MaxWidth].
func CompileWidth(nl *netlist.Netlist, width int) (*Machine, error) {
	if width < 1 || width > MaxWidth {
		return nil, fmt.Errorf("sim: lane width %d out of [1,%d]", width, MaxWidth)
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := &Machine{
		nl:         nl,
		width:      width,
		fuse:       true,
		val:        make([]uint64, len(nl.Nets)*width),
		nodeOfCell: make([]int32, len(nl.Cells)),
	}
	for i := range m.nodeOfCell {
		m.nodeOfCell[i] = -1
	}

	// Levelize: level 0 is sources (PIs, DFF outputs, undriven nets);
	// a LUT's level is one past its deepest fanin. Nodes are emitted
	// level-major (stable within a level by topo order) so independent
	// levels are contiguous — the schedule shape level-parallel
	// evaluation partitions. Any level-major order is a topological
	// order, so serial results are unchanged.
	netLevel := make([]int32, len(nl.Nets))
	var luts []netlist.CellID
	maxLevel := int32(0)
	// Per-cell lowering decision: opcode, classified-kernel descriptor and
	// 16-bit truth table, computed once here so the schedule sort below can
	// key on the final opcode.
	type lowered struct {
		op  uint8
		msk uint16
		w4  uint16
	}
	low := make([]lowered, len(nl.Cells))
	for _, id := range order {
		c := &nl.Cells[id]
		if c.Kind != netlist.KindLUT {
			continue
		}
		lvl := int32(0)
		for _, f := range c.Fanin {
			if netLevel[f] >= lvl {
				lvl = netLevel[f] + 1
			}
		}
		if len(c.Fanin) == 0 {
			lvl = 1
		}
		netLevel[c.Out] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
		luts = append(luts, id)

		k := len(c.Fanin)
		switch {
		case k == 0:
			low[id].op = opConst
			if c.Func.Eval(0) {
				low[id].w4 = 1
			}
		case k <= 4:
			tt, err := c.Func.TT()
			if err != nil {
				return nil, fmt.Errorf("sim: cell %q: %w", c.Name, err)
			}
			w4, err := tt.Word4()
			if err != nil {
				return nil, fmt.Errorf("sim: cell %q: %w", c.Name, err)
			}
			low[id].op = opConst + uint8(k) // opTT1..opTT4
			low[id].w4 = w4
			if op, msk, ok := classifyTT(w4, k); ok {
				low[id].op = op
				low[id].msk = msk
			} else {
				// Unclassified table kernels carry the compressed pair table
				// so the block evaluators can rebuild it in registers.
				low[id].msk = pairBits(w4, k)
			}
		default:
			low[id].op = opCover
		}
	}
	// Within a level nodes are mutually independent, so their order is
	// free; grouping them by opcode turns the evaluator's per-node opcode
	// switch into long runs of one branch target, which the predictor
	// learns instead of guessing per node.
	sort.SliceStable(luts, func(i, j int) bool {
		li, lj := netLevel[nl.Cells[luts[i]].Out], netLevel[nl.Cells[luts[j]].Out]
		if li != lj {
			return li < lj
		}
		return low[luts[i]].op < low[luts[j]].op
	})

	maxFanin := 0
	for _, id := range luts {
		c := &nl.Cells[id]
		m.nodeOfCell[id] = int32(len(m.nodes))
		n := node{
			out:   int32(c.Out),
			start: int32(len(m.fanin)),
			nin:   int32(len(c.Fanin)),
			aux:   -1,
			op:    low[id].op,
			msk:   low[id].msk,
			tt:    low[id].w4,
		}
		for _, f := range c.Fanin {
			m.fanin = append(m.fanin, int32(f))
		}
		switch n.op {
		case opConst:
		case opCover:
			n.aux = int32(len(m.covers))
			m.covers = append(m.covers, c.Func)
			if len(c.Fanin) > maxFanin {
				maxFanin = len(c.Fanin)
			}
		default:
			// Table kernels and classified kernels alike carry the expanded
			// pair table: the hooked pass, lane patches and fused-pair
			// composition all read it regardless of the fast-path opcode.
			n.aux = int32(len(m.ttab))
			m.ttab = append(m.ttab, expandTT(n.tt, len(c.Fanin))...)
		}
		m.nodes = append(m.nodes, n)
	}
	// levelOffN[i] is one past the last node of level i+1, so level l's
	// node range is [levelOffN[l-2], levelOffN[l-1]) with an implicit 0
	// at the front.
	idx := 0
	for l := int32(1); l <= maxLevel; l++ {
		for idx < len(luts) && netLevel[nl.Cells[luts[idx]].Out] == l {
			idx++
		}
		m.levelOffN = append(m.levelOffN, int32(idx))
	}

	for _, id := range order {
		c := &nl.Cells[id]
		if c.Kind != netlist.KindDFF {
			continue
		}
		m.dffD = append(m.dffD, int32(c.Fanin[0]))
		m.dffQ = append(m.dffQ, int32(c.Out))
		if c.Init == 1 {
			m.dffInit = append(m.dffInit, ^uint64(0))
		} else {
			m.dffInit = append(m.dffInit, 0)
		}
	}
	m.buf = make([]uint64, maxFanin)
	m.state = make([]uint64, len(m.dffQ)*width)
	for _, pi := range nl.PIs {
		m.pis = append(m.pis, int32(pi))
	}
	sort.Slice(m.pis, func(i, j int) bool {
		return nl.Nets[m.pis[i]].Name < nl.Nets[m.pis[j]].Name
	})
	m.piNames = make([]string, len(m.pis))
	for i, pi := range m.pis {
		m.piNames[i] = nl.Nets[pi].Name
	}
	for _, po := range nl.POs {
		m.pos = append(m.pos, int32(po))
		m.poNames = append(m.poNames, nl.Nets[po].Name)
	}
	m.buildFused(netLevel, maxLevel)
	m.buildBlockOffsets()
	// Default binding: every PI, in sorted-name order.
	m.bound = append([]int32(nil), m.pis...)
	m.Reset()
	return m, nil
}

// buildBlockOffsets bakes the value-plane stride into per-pin copies of
// the fanin CSRs and per-node output offsets for the block evaluators:
// net i's lane vector lives at val[i*W : (i+1)*W], and widths divisible
// by four dispatch through exec.go's block paths, which address blocks
// as val[fanB[pin]+x] with no multiply in the hot loop. Other widths
// never consult these arrays.
func (m *Machine) buildBlockOffsets() {
	if m.width%4 != 0 {
		return
	}
	W := int32(m.width)
	m.fanB = make([]int32, len(m.fanin))
	for i, f := range m.fanin {
		m.fanB[i] = f * W
	}
	m.xfanB = make([]int32, len(m.xfan))
	for i, f := range m.xfan {
		m.xfanB[i] = f * W
	}
	m.outB = make([]int32, len(m.nodes))
	for i := range m.nodes {
		m.outB[i] = m.nodes[i].out * W
	}
	m.xoutB = make([]int32, len(m.xnodes))
	m.xout2B = make([]int32, len(m.xnodes))
	for i := range m.xnodes {
		m.xoutB[i] = m.xnodes[i].out * W
		m.xout2B[i] = -1
		if m.xnodes[i].out2 >= 0 {
			m.xout2B[i] = m.xnodes[i].out2 * W
		}
	}
}

// Netlist returns the compiled design.
func (m *Machine) Netlist() *netlist.Netlist { return m.nl }

// NumDFFs returns the number of compiled flip-flops.
func (m *Machine) NumDFFs() int { return len(m.dffQ) }

// Width returns the lane-vector width: 64-pattern words per net.
func (m *Machine) Width() int { return m.width }

// Lanes returns the number of parallel lanes one evaluation carries
// (64·Width) — the batch size of fault- and patch-parallel campaigns.
func (m *Machine) Lanes() int { return 64 * m.width }

// FusedKernels returns how many single-fanout LUT pairs the compiler
// fused into combined pair-table kernels (see fused.go).
func (m *Machine) FusedKernels() int { return m.fusedPairs }

// KernelCounts reports how the compiler lowered the plain program's
// kernels: classified table-free kernels (classify.go), generic
// truth-table kernels, and sum-of-products cover kernels (constants
// excluded). The split is a compile-time property — useful for judging
// how much of a design runs on the fast classified arms.
func (m *Machine) KernelCounts() (classified, table, cover int) {
	for i := range m.nodes {
		switch op := m.nodes[i].op; {
		case op >= opXor2:
			classified++
		case op == opCover:
			cover++
		case op >= opTT1 && op <= opTT4:
			table++
		}
	}
	return classified, table, cover
}

// SetFusion toggles the fused fast-path schedule; with fusion off the
// unperturbed evaluation walks the plain one-LUT-per-kernel program.
// Results are bit-identical either way — the switch exists for the
// fusion ablation benchmark.
func (m *Machine) SetFusion(on bool) { m.fuse = on }

// Reset restores every DFF to its power-on value and clears all nets.
// Trace bindings, probes and overrides are configuration, not state, and
// survive a reset.
func (m *Machine) Reset() {
	m.cycle = 0
	for i := range m.val {
		m.val[i] = 0
	}
	W := m.width
	for i, init := range m.dffInit {
		for w := 0; w < W; w++ {
			m.state[i*W+w] = init
		}
	}
}

// Eval propagates the current primary inputs and flip-flop state through
// the combinational logic. It does not advance the clock. Nets on the
// override list read their pinned lane vector instead of their computed
// value.
func (m *Machine) Eval() {
	W := m.width
	if W == 1 {
		for i, q := range m.dffQ {
			m.val[q] = m.state[i]
		}
	} else {
		for i, q := range m.dffQ {
			copy(m.val[int(q)*W:int(q)*W+W], m.state[i*W:i*W+W])
		}
	}
	if len(m.ovNets) != 0 {
		// Pre-apply overrides so source nets (PIs, DFF outputs) read
		// forced; driven nets are re-forced as their node executes.
		for _, net := range m.ovNets {
			o := int(m.ovIdx[net]) * W
			copy(m.val[int(net)*W:int(net)*W+W], m.ovVal[o:o+W])
		}
	}
	if len(m.preMuts) != 0 {
		// Source-net perturbations: PIs, DFF outputs and undriven nets are
		// never written by the node pass, so forcing them up front is
		// final for this evaluation. Applied in arming order, gated on
		// each mutation's cycle window.
		for _, pm := range m.preMuts {
			m.applyPreMut(pm)
		}
	}
	switch {
	case len(m.mutNodes) != 0 || len(m.patchNodes) != 0 || len(m.ovNets) != 0:
		// Hooked pass: plain (unfused) nodes with the per-node override,
		// lane-fault and lane-patch hooks. Fused-away producers must stay
		// individually addressable here, so fusion never applies.
		if m.pool != nil && m.pool.parN {
			m.pool.run(passHooked)
		} else {
			m.evalHookedRange(0, int32(len(m.nodes)), m.buf)
		}
	case m.fuse:
		if m.pool != nil && m.pool.parX {
			m.pool.run(passFused)
		} else {
			m.evalXRange(0, int32(len(m.xnodes)), m.buf)
		}
	default:
		if m.pool != nil && m.pool.parN {
			m.pool.run(passPlain)
		} else {
			m.evalPlainRange(0, int32(len(m.nodes)), m.buf)
		}
	}
}

// Clock latches every DFF's D input into its state. Callers should have
// called Eval first; the usual cycle is SetPIs → Eval → read outputs →
// Clock.
func (m *Machine) Clock() {
	m.cycle++
	W := m.width
	if W == 1 {
		for i, d := range m.dffD {
			m.state[i] = m.val[d]
		}
		return
	}
	for i, d := range m.dffD {
		copy(m.state[i*W:i*W+W], m.val[int(d)*W:int(d)*W+W])
	}
}

// CycleIndex returns the trace cycle the next Eval will evaluate: 0
// after Reset, incremented by every Clock. Windowed lane faults (see
// LaneFault.From/To) arm against this counter, so ResumeTraceInto
// continues a window where the previous segment left off.
func (m *Machine) CycleIndex() int { return int(m.cycle) }

// SetOverride pins a net to a fixed 64-pattern word — broadcast across
// all lane words of a widened machine — for every subsequent Eval (and
// hence RunTrace cycle) until cleared: the software analogue of a control
// point holding a signal. Unlike ForceNet, the override is honored by the
// execution core itself: downstream logic evaluated in the same pass
// reads the forced value, and re-evaluation does not clobber it.
func (m *Machine) SetOverride(id netlist.NetID, w uint64) error {
	if int(id) < 0 || int(id) >= len(m.nl.Nets) {
		return fmt.Errorf("sim: override of invalid net %d", id)
	}
	W := m.width
	if m.ovIdx == nil {
		m.ovIdx = make([]int32, len(m.nl.Nets))
		for i := range m.ovIdx {
			m.ovIdx[i] = -1
		}
	}
	if o := m.ovIdx[id]; o >= 0 {
		for i := int(o) * W; i < int(o)*W+W; i++ {
			m.ovVal[i] = w
		}
		return nil
	}
	m.ovIdx[id] = int32(len(m.ovNets))
	m.ovNets = append(m.ovNets, int32(id))
	for i := 0; i < W; i++ {
		m.ovVal = append(m.ovVal, w)
	}
	return nil
}

// ClearOverride removes one net from the override list.
func (m *Machine) ClearOverride(id netlist.NetID) {
	if m.ovIdx == nil || int(id) < 0 || int(id) >= len(m.ovIdx) {
		return
	}
	o := m.ovIdx[id]
	if o < 0 {
		return
	}
	W := m.width
	last := int32(len(m.ovNets) - 1)
	m.ovNets[o] = m.ovNets[last]
	copy(m.ovVal[int(o)*W:int(o)*W+W], m.ovVal[int(last)*W:int(last)*W+W])
	m.ovIdx[m.ovNets[o]] = o
	m.ovNets = m.ovNets[:last]
	m.ovVal = m.ovVal[:int(last)*W]
	m.ovIdx[id] = -1
}

// ClearOverrides removes every override.
func (m *Machine) ClearOverrides() {
	for _, net := range m.ovNets {
		m.ovIdx[net] = -1
	}
	m.ovNets = m.ovNets[:0]
	m.ovVal = m.ovVal[:0]
}

// Overridden reports whether a net is on the override list, and its
// (lane word 0) pinned word.
func (m *Machine) Overridden(id netlist.NetID) (uint64, bool) {
	if m.ovIdx == nil || int(id) < 0 || int(id) >= len(m.ovIdx) || m.ovIdx[id] < 0 {
		return 0, false
	}
	return m.ovVal[int(m.ovIdx[id])*m.width], true
}

// ---------------------------------------------------------------- shim
//
// The name/map API below predates the trace API. It is kept as a
// compatibility layer: correct, convenient for one-off probing and tests,
// and deliberately unoptimized (per-cycle map allocation and string
// hashing). Hot paths should use Slots/Bind/RunTrace — and OutputsInto
// instead of Outputs when a per-cycle output snapshot is needed without
// the map allocation. On widened machines the scalar shim addresses lane
// word 0; SetPI/ForceNet broadcast their word across the lane vector.

// SetPI drives a primary input net with a 64-pattern word (broadcast
// across all lane words of a widened machine).
func (m *Machine) SetPI(name string, w uint64) error {
	id, ok := m.nl.NetByName(name)
	if !ok {
		return fmt.Errorf("sim: no net %q", name)
	}
	if !m.nl.IsPI(id) {
		return fmt.Errorf("sim: net %q is not a primary input", name)
	}
	for i := int(id) * m.width; i < int(id)*m.width+m.width; i++ {
		m.val[i] = w
	}
	return nil
}

// SetPIs drives several primary inputs at once.
func (m *Machine) SetPIs(in map[string]uint64) error {
	for name, w := range in {
		if err := m.SetPI(name, w); err != nil {
			return err
		}
	}
	return nil
}

// Step is the common SetPIs → Eval → Clock cycle, returning the primary
// output words observed before the clock edge.
func (m *Machine) Step(in map[string]uint64) (map[string]uint64, error) {
	if err := m.SetPIs(in); err != nil {
		return nil, err
	}
	m.Eval()
	out := m.Outputs()
	m.Clock()
	return out, nil
}

// Net probes any net by name — the software analogue of attaching
// observation logic. Wide machines report lane word 0.
func (m *Machine) Net(name string) (uint64, error) {
	id, ok := m.nl.NetByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no net %q", name)
	}
	return m.val[int(id)*m.width], nil
}

// NetByID probes a net by ID (lane word 0 on wide machines).
func (m *Machine) NetByID(id netlist.NetID) uint64 { return m.val[int(id)*m.width] }

// ForceNet overwrites a net's current value in place (broadcast across
// the lane vector). The write is one-shot: the next Eval recomputes
// driven nets and clobbers it, so it is only useful for combinational
// what-if probing on undriven nets or in the window between Eval and
// Clock. For a forcing that persists across evaluations — and that
// downstream logic observes — use SetOverride.
func (m *Machine) ForceNet(id netlist.NetID, w uint64) {
	for i := int(id) * m.width; i < int(id)*m.width+m.width; i++ {
		m.val[i] = w
	}
}

// Out returns a primary output word by name (lane word 0).
func (m *Machine) Out(name string) (uint64, error) {
	id, ok := m.nl.NetByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no net %q", name)
	}
	if !m.nl.IsPO(id) {
		return 0, fmt.Errorf("sim: net %q is not a primary output", name)
	}
	return m.val[int(id)*m.width], nil
}

// Outputs returns all primary output words keyed by name (lane word 0 on
// wide machines). It allocates a map per call; hot paths use OutputsInto.
func (m *Machine) Outputs() map[string]uint64 {
	out := make(map[string]uint64, len(m.pos))
	for i, po := range m.pos {
		out[m.poNames[i]] = m.val[int(po)*m.width]
	}
	return out
}

// OutputsInto writes every primary output lane vector into dst — PO i's
// Width() words at dst[i*Width():(i+1)*Width()], in PONames order — and
// returns it, reusing dst's capacity when it suffices. In steady state
// the call performs zero allocations; it is the allocation-free
// replacement for the Outputs map in per-cycle loops.
func (m *Machine) OutputsInto(dst []uint64) []uint64 {
	W := m.width
	need := len(m.pos) * W
	if cap(dst) < need {
		dst = make([]uint64, need)
	}
	dst = dst[:need]
	if W == 1 {
		for i, po := range m.pos {
			dst[i] = m.val[po]
		}
		return dst
	}
	for i, po := range m.pos {
		copy(dst[i*W:(i+1)*W], m.val[int(po)*W:int(po)*W+W])
	}
	return dst
}

// StateWords exposes the current flip-flop state — Width() words per DFF
// in compile order (one word per DFF on width-1 machines); used by tests
// and by checkpointing.
func (m *Machine) StateWords() []uint64 {
	return append([]uint64(nil), m.state...)
}

// SetStateWords loads a flip-flop state snapshot previously captured with
// StateWords (or produced by a machine compiled from a topologically
// identical netlist, whose DFF compile order matches). It overwrites the
// current state without touching net values, the cycle counter or any
// configuration — the state-handoff primitive the serial windowed-SEU
// oracle uses to splice a healthy machine's registers into a mutant at a
// window boundary.
func (m *Machine) SetStateWords(ws []uint64) error {
	if len(ws) != len(m.state) {
		return fmt.Errorf("sim: state snapshot has %d words, machine has %d", len(ws), len(m.state))
	}
	copy(m.state, ws)
	return nil
}
