// Package sim is the emulation substrate: a compiled, 64-way bit-parallel
// functional simulator for netlist designs. Each net carries a 64-bit word
// whose bit p is the net's value under input pattern p, so one pass over
// the levelized network evaluates 64 test patterns.
//
// The paper runs designs on FPGA emulation hardware; this simulator plays
// that role (see DESIGN.md §3). Detection compares outputs against a golden
// model, and localization probes internal nets — both map directly onto
// Machine.Out and Machine.Net.
package sim

import (
	"fmt"

	"fpgadbg/internal/netlist"
)

// Machine is a compiled simulator instance for one netlist. It is not safe
// for concurrent use.
type Machine struct {
	nl    *netlist.Netlist
	order []netlist.CellID // LUTs in topo order
	dffs  []netlist.CellID
	val   []uint64 // per net, 64 patterns wide
	state []uint64 // per entry of dffs: current Q value
	// scratch fanin buffer reused across evaluations
	buf []uint64
}

// Compile levelizes the netlist and returns a ready-to-run machine in the
// reset state. The netlist must be combinationally acyclic.
func Compile(nl *netlist.Netlist) (*Machine, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := &Machine{
		nl:  nl,
		val: make([]uint64, len(nl.Nets)),
	}
	maxFanin := 0
	for _, id := range order {
		c := &nl.Cells[id]
		switch c.Kind {
		case netlist.KindLUT:
			m.order = append(m.order, id)
			if len(c.Fanin) > maxFanin {
				maxFanin = len(c.Fanin)
			}
		case netlist.KindDFF:
			m.dffs = append(m.dffs, id)
		}
	}
	m.state = make([]uint64, len(m.dffs))
	m.buf = make([]uint64, maxFanin)
	m.Reset()
	return m, nil
}

// Netlist returns the compiled design.
func (m *Machine) Netlist() *netlist.Netlist { return m.nl }

// Reset restores every DFF to its power-on value and clears all nets.
func (m *Machine) Reset() {
	for i := range m.val {
		m.val[i] = 0
	}
	for i, id := range m.dffs {
		if m.nl.Cells[id].Init == 1 {
			m.state[i] = ^uint64(0)
		} else {
			m.state[i] = 0
		}
	}
}

// SetPI drives a primary input net with a 64-pattern word.
func (m *Machine) SetPI(name string, w uint64) error {
	id, ok := m.nl.NetByName(name)
	if !ok {
		return fmt.Errorf("sim: no net %q", name)
	}
	if !m.nl.IsPI(id) {
		return fmt.Errorf("sim: net %q is not a primary input", name)
	}
	m.val[id] = w
	return nil
}

// SetPIs drives several primary inputs at once.
func (m *Machine) SetPIs(in map[string]uint64) error {
	for name, w := range in {
		if err := m.SetPI(name, w); err != nil {
			return err
		}
	}
	return nil
}

// Eval propagates the current primary inputs and flip-flop state through
// the combinational logic. It does not advance the clock.
func (m *Machine) Eval() {
	for i, id := range m.dffs {
		m.val[m.nl.Cells[id].Out] = m.state[i]
	}
	for _, id := range m.order {
		c := &m.nl.Cells[id]
		buf := m.buf[:len(c.Fanin)]
		for j, f := range c.Fanin {
			buf[j] = m.val[f]
		}
		m.val[c.Out] = c.Func.EvalWords(buf)
	}
}

// Clock latches every DFF's D input into its state. Callers should have
// called Eval first; the usual cycle is SetPIs → Eval → read outputs →
// Clock.
func (m *Machine) Clock() {
	for i, id := range m.dffs {
		m.state[i] = m.val[m.nl.Cells[id].Fanin[0]]
	}
}

// Step is the common SetPIs → Eval → Clock cycle, returning the primary
// output words observed before the clock edge.
func (m *Machine) Step(in map[string]uint64) (map[string]uint64, error) {
	if err := m.SetPIs(in); err != nil {
		return nil, err
	}
	m.Eval()
	out := m.Outputs()
	m.Clock()
	return out, nil
}

// Net probes any net by name — the software analogue of attaching
// observation logic.
func (m *Machine) Net(name string) (uint64, error) {
	id, ok := m.nl.NetByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no net %q", name)
	}
	return m.val[id], nil
}

// NetByID probes a net by ID.
func (m *Machine) NetByID(id netlist.NetID) uint64 { return m.val[id] }

// ForceNet overrides a net's current value (the software analogue of
// control logic); the override lasts until the next Eval recomputes it, so
// it is useful for combinational what-if probing only on undriven nets or
// between Eval and Clock.
func (m *Machine) ForceNet(id netlist.NetID, w uint64) { m.val[id] = w }

// Out returns a primary output word by name.
func (m *Machine) Out(name string) (uint64, error) {
	id, ok := m.nl.NetByName(name)
	if !ok {
		return 0, fmt.Errorf("sim: no net %q", name)
	}
	if !m.nl.IsPO(id) {
		return 0, fmt.Errorf("sim: net %q is not a primary output", name)
	}
	return m.val[id], nil
}

// Outputs returns all primary output words keyed by name.
func (m *Machine) Outputs() map[string]uint64 {
	out := make(map[string]uint64, len(m.nl.POs))
	for _, po := range m.nl.POs {
		out[m.nl.Nets[po].Name] = m.val[po]
	}
	return out
}

// StateWords exposes the current flip-flop state (one word per DFF in
// compile order); used by tests and by checkpointing.
func (m *Machine) StateWords() []uint64 {
	return append([]uint64(nil), m.state...)
}
