package sim

import (
	"fmt"

	"fpgadbg/internal/netlist"
)

// ReferenceMachine is the pre-compilation simulator: a map-driven
// interpreter that walks the levelized cell list and evaluates every LUT
// through its sum-of-products cover, allocating a fanin gather and an
// output map per cycle. It is retained verbatim as (a) the differential
// oracle the compiled execution core is regression-tested against, and
// (b) the baseline the BenchmarkSimTrace/BenchmarkSimStep pair measures
// the compiled core's speedup over. New code should use Machine.
type ReferenceMachine struct {
	nl    *netlist.Netlist
	order []netlist.CellID // LUTs in topo order
	dffs  []netlist.CellID
	val   []uint64 // per net, 64 patterns wide
	state []uint64 // per entry of dffs: current Q value
	// scratch fanin buffer reused across evaluations
	buf []uint64
}

// CompileReference levelizes the netlist and returns a ready-to-run
// interpreter in the reset state.
func CompileReference(nl *netlist.Netlist) (*ReferenceMachine, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	m := &ReferenceMachine{
		nl:  nl,
		val: make([]uint64, len(nl.Nets)),
	}
	maxFanin := 0
	for _, id := range order {
		c := &nl.Cells[id]
		switch c.Kind {
		case netlist.KindLUT:
			m.order = append(m.order, id)
			if len(c.Fanin) > maxFanin {
				maxFanin = len(c.Fanin)
			}
		case netlist.KindDFF:
			m.dffs = append(m.dffs, id)
		}
	}
	m.state = make([]uint64, len(m.dffs))
	m.buf = make([]uint64, maxFanin)
	m.Reset()
	return m, nil
}

// Reset restores every DFF to its power-on value and clears all nets.
func (m *ReferenceMachine) Reset() {
	for i := range m.val {
		m.val[i] = 0
	}
	for i, id := range m.dffs {
		if m.nl.Cells[id].Init == 1 {
			m.state[i] = ^uint64(0)
		} else {
			m.state[i] = 0
		}
	}
}

// Eval propagates the current primary inputs and flip-flop state through
// the combinational logic, cover by cover.
func (m *ReferenceMachine) Eval() {
	for i, id := range m.dffs {
		m.val[m.nl.Cells[id].Out] = m.state[i]
	}
	for _, id := range m.order {
		c := &m.nl.Cells[id]
		buf := m.buf[:len(c.Fanin)]
		for j, f := range c.Fanin {
			buf[j] = m.val[f]
		}
		m.val[c.Out] = c.Func.EvalWords(buf)
	}
}

// Clock latches every DFF's D input into its state.
func (m *ReferenceMachine) Clock() {
	for i, id := range m.dffs {
		m.state[i] = m.val[m.nl.Cells[id].Fanin[0]]
	}
}

// Step is the map-based SetPIs → Eval → Clock cycle.
func (m *ReferenceMachine) Step(in map[string]uint64) (map[string]uint64, error) {
	for name, w := range in {
		id, ok := m.nl.NetByName(name)
		if !ok {
			return nil, fmt.Errorf("sim: no net %q", name)
		}
		if !m.nl.IsPI(id) {
			return nil, fmt.Errorf("sim: net %q is not a primary input", name)
		}
		m.val[id] = w
	}
	m.Eval()
	out := make(map[string]uint64, len(m.nl.POs))
	for _, po := range m.nl.POs {
		out[m.nl.Nets[po].Name] = m.val[po]
	}
	m.Clock()
	return out, nil
}

// StateWords exposes the current flip-flop state (one word per DFF in
// compile order).
func (m *ReferenceMachine) StateWords() []uint64 {
	return append([]uint64(nil), m.state...)
}
