package sim

// Level-parallel evaluation. The level-major node schedule (sim.go) makes
// every topological level a contiguous node range whose members depend
// only on earlier levels, so one level's nodes can be evaluated in any
// order — including concurrently. SetWorkers splits each sufficiently
// wide level across a bounded pool of persistent goroutines with a
// barrier per level; narrow levels (where a barrier would cost more than
// it buys) are merged into serial runs executed by the calling goroutine
// alone.
//
//	level 1  [████████████████████]  wide  → chunked across all workers
//	                ─ barrier ─
//	level 2  [██████████████]        wide  → chunked across all workers
//	                ─ barrier ─
//	levels 3..5 [██][█][██]          narrow → one serial run, main only
//	                (no barrier: workers wait at the next wide level)
//
// The pool is configuration of one Machine instance (forks do not
// inherit it) and is internal to Eval: the machine remains externally
// single-threaded, and results are bit-identical to serial evaluation
// regardless of worker count. Workers park on a channel between
// evaluations; the per-level rendezvous is a sense-reversing barrier
// spinning on an atomic generation counter (with Gosched), which keeps
// the happens-before chain visible to the race detector and the latency
// far below a channel round-trip.

import (
	"runtime"
	"sync/atomic"
)

// evalPass selects the node schedule a pool run executes.
type evalPass uint8

const (
	passFused  evalPass = iota // xnodes, fused fast path
	passPlain                  // plain nodes, fusion ablated
	passHooked                 // plain nodes + override/fault/patch hooks
)

// parCutNodes is the minimum level width worth splitting: below this,
// barrier latency outweighs the shared work and the level runs serially.
const parCutNodes = 64

// seg is one schedule segment: a contiguous node range that is either a
// single wide level (par), chunked across all participants between
// barriers, or a run of narrow levels executed by participant 0 alone.
type seg struct {
	lo, hi int32
	par    bool
	entry  bool // par seg preceded by serial work: barrier before starting
}

// barrier is a reusable sense-reversing spin barrier for n participants.
type barrier struct {
	arrived atomic.Int32
	gen     atomic.Uint32
	n       int32
}

func (b *barrier) wait() {
	g := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		b.arrived.Store(0)
		b.gen.Add(1)
		return
	}
	for b.gen.Load() == g {
		runtime.Gosched()
	}
}

// evalPool runs one Machine's node passes across n goroutines (the
// caller plus n-1 spawned workers).
type evalPool struct {
	m          *Machine
	n          int32
	segsX      []seg // fused schedule (xnode indices)
	segsN      []seg // plain schedule (node indices)
	parX, parN bool  // whether each schedule has any parallel segment
	wake       []chan evalPass
	quit       chan struct{}
	bufs       [][]uint64 // per-worker cover scratch
	bar        barrier
}

// SetWorkers configures level-parallel evaluation: Eval partitions every
// topological level of at least parCutNodes nodes across n goroutines
// (n-1 spawned workers plus the calling one) with a barrier between
// levels. n <= 1 — or a design with no level wide enough to split —
// reverts to serial evaluation; either way any previously spawned
// workers are stopped. Worker count is configuration of this machine
// instance: forks never inherit it. The machine itself remains
// single-threaded: Eval, RunTrace and friends must not be called
// concurrently.
func (m *Machine) SetWorkers(n int) {
	if m.pool != nil {
		m.pool.stop()
		m.pool = nil
	}
	if n <= 1 {
		return
	}
	segsX, parX := buildSegs(m.levelOffX, parCutNodes)
	segsN, parN := buildSegs(m.levelOffN, parCutNodes)
	if !parX && !parN {
		return
	}
	p := &evalPool{
		m:     m,
		n:     int32(n),
		segsX: segsX,
		segsN: segsN,
		parX:  parX,
		parN:  parN,
		quit:  make(chan struct{}),
	}
	p.bar.n = int32(n)
	for i := 1; i < n; i++ {
		ch := make(chan evalPass, 1)
		buf := make([]uint64, len(m.buf))
		p.wake = append(p.wake, ch)
		p.bufs = append(p.bufs, buf)
		go p.worker(int32(i), ch, buf)
	}
	m.pool = p
}

// Workers returns the configured evaluation parallelism (1 = serial).
func (m *Machine) Workers() int {
	if m.pool == nil {
		return 1
	}
	return int(m.pool.n)
}

// buildSegs turns level boundaries into a segment schedule: each level
// of at least cut nodes becomes a parallel segment, consecutive narrower
// levels merge into one serial segment.
func buildSegs(levelOff []int32, cut int32) ([]seg, bool) {
	var segs []seg
	hasPar := false
	prev := int32(0)
	seqStart := int32(-1)
	for _, end := range levelOff {
		span := end - prev
		if span >= cut {
			if seqStart >= 0 {
				segs = append(segs, seg{lo: seqStart, hi: prev})
				seqStart = -1
			}
			entry := len(segs) > 0 && !segs[len(segs)-1].par
			segs = append(segs, seg{lo: prev, hi: end, par: true, entry: entry})
			hasPar = true
		} else if span > 0 && seqStart < 0 {
			seqStart = prev
		}
		prev = end
	}
	if seqStart >= 0 {
		segs = append(segs, seg{lo: seqStart, hi: prev})
	}
	return segs, hasPar
}

func (p *evalPool) segsFor(pass evalPass) []seg {
	if pass == passFused {
		return p.segsX
	}
	return p.segsN
}

// run executes one full pass with the pool: the caller is participant 0,
// every worker is woken with the pass tag and walks the same segment
// schedule, meeting at the per-level barriers. On return all nodes have
// been evaluated and every write is visible to the caller.
func (p *evalPool) run(pass evalPass) {
	for _, ch := range p.wake {
		ch <- pass
	}
	p.work(p.segsFor(pass), pass, 0, p.m.buf)
}

func (p *evalPool) worker(id int32, wake <-chan evalPass, buf []uint64) {
	for {
		select {
		case <-p.quit:
			return
		case pass := <-wake:
			p.work(p.segsFor(pass), pass, id, buf)
		}
	}
}

// work walks the segment schedule as participant id. Serial segments are
// executed by participant 0 while the others proceed to the next
// barrier; parallel segments are chunked contiguously so each
// participant touches a disjoint node range. The barrier discipline —
// entry barrier after serial work, exit barrier after every parallel
// segment — is identical for all participants, which is what makes the
// rendezvous counts line up.
func (p *evalPool) work(segs []seg, pass evalPass, id int32, buf []uint64) {
	m := p.m
	for _, sg := range segs {
		if !sg.par {
			if id == 0 {
				m.evalSeg(pass, sg.lo, sg.hi, buf)
			}
			continue
		}
		if sg.entry {
			p.bar.wait()
		}
		span := sg.hi - sg.lo
		chunk := (span + p.n - 1) / p.n
		lo := sg.lo + id*chunk
		hi := lo + chunk
		if hi > sg.hi {
			hi = sg.hi
		}
		if lo < hi {
			m.evalSeg(pass, lo, hi, buf)
		}
		p.bar.wait()
	}
}

func (m *Machine) evalSeg(pass evalPass, lo, hi int32, buf []uint64) {
	switch pass {
	case passFused:
		m.evalXRange(lo, hi, buf)
	case passPlain:
		m.evalPlainRange(lo, hi, buf)
	default:
		m.evalHookedRange(lo, hi, buf)
	}
}

// stop terminates the pool's workers; no evaluation may be in flight.
func (p *evalPool) stop() {
	close(p.quit)
}
