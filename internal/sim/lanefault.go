package sim

// Fault-parallel execution: one mutant per bit lane. In normal operation
// the 64 bits of a net word are 64 independent test patterns; in
// fault-parallel mode they are 64 independent *mutants* evaluated under a
// broadcast stimulus (every primary input word is 0 or all-ones, so each
// lane sees the same scalar pattern). A lane mutation perturbs the value
// one compiled node produces — or one source net carries — in exactly the
// lanes its mask selects, and the perturbation is applied *during* the
// evaluation pass, so downstream logic in the same combinational wave and
// the flip-flops clocked afterwards all observe the faulty value, exactly
// as if the netlist itself had been mutated and recompiled.
//
// Four perturbation shapes cover the classic fault models:
//
//   - stuck-at: the net reads 0 (or 1) in the faulty lanes regardless of
//     its computed value — an SEU or defect on a wire;
//   - LUT-bit flip: the cell's output is inverted in the faulty lanes
//     whenever its fanin minterm equals the flipped truth-table entry —
//     an SEU in a configuration-memory bit;
//   - bridge: the victim net reads the wired-AND (or wired-OR) of its own
//     computed value and an aggressor net's value — a resistive short
//     between two routing wires. The aggressor keeps its own value (the
//     classic aggressor/victim model), and must be computed no later than
//     the victim: its driver's topological level must be strictly below
//     the victim driver's (source nets are always safe);
//   - pin stuck-at: one fanin pin of a LUT reads a constant while the net
//     feeding it stays healthy for every other consumer — a broken or
//     shorted route segment on the last hop into the cell. The output is
//     recomputed from the cell's pair table with that pin forced.
//
// Every lane fault can also carry an arming window [From, To): outside
// the window the perturbation is inert and the lane evaluates the healthy
// function — the transient/intermittent SEU model. Effects captured into
// flip-flops during the window persist after it closes, exactly as a real
// upset would, because only the combinational perturbation is gated.
//
// Arm up to Lanes() faults (one per lane) with SetLaneFault, replay a
// broadcast stimulus once, and every lane's primary-output stream is the
// stream of its private mutant: a Lanes()-way fault-simulation batch for
// the cost of one trace, with no netlist clone and no recompilation.
// Arming several faults on the same lane composes them into one
// multi-fault mutant — internal/faults packs fault pairs this way
// (internal/faults batches fault lists on top of this; see DESIGN.md §9
// and §15).

import (
	"fmt"
	"math"
	"sort"

	"fpgadbg/internal/netlist"
)

// LaneFaultKind enumerates the per-lane perturbations the execution core
// applies natively.
type LaneFaultKind uint8

const (
	// LaneStuckAt0 forces a net to 0 in the faulty lanes.
	LaneStuckAt0 LaneFaultKind = iota
	// LaneStuckAt1 forces a net to 1 in the faulty lanes.
	LaneStuckAt1
	// LaneLUTFlip inverts one truth-table entry of a LUT cell in the
	// faulty lanes: the output is complemented whenever the cell's inputs
	// select the flipped minterm.
	LaneLUTFlip
	// LaneBridgeAND wires the victim net (Net) to an aggressor net (Net2):
	// in the faulty lanes the victim reads victim AND aggressor. The
	// aggressor is unperturbed.
	LaneBridgeAND
	// LaneBridgeOR is the wired-OR bridge.
	LaneBridgeOR
	// LanePinStuck0 forces fanin pin Pin of LUT cell Cell to read 0 in the
	// faulty lanes; the driving net itself stays healthy.
	LanePinStuck0
	// LanePinStuck1 forces the pin to read 1.
	LanePinStuck1
)

func (k LaneFaultKind) String() string {
	switch k {
	case LaneStuckAt0:
		return "stuck-at-0"
	case LaneStuckAt1:
		return "stuck-at-1"
	case LaneLUTFlip:
		return "lut-flip"
	case LaneBridgeAND:
		return "bridge-and"
	case LaneBridgeOR:
		return "bridge-or"
	case LanePinStuck0:
		return "pin-stuck-0"
	case LanePinStuck1:
		return "pin-stuck-1"
	default:
		return fmt.Sprintf("LaneFaultKind(%d)", int(k))
	}
}

// LaneFault is one per-lane perturbation. Net addresses stuck-at faults
// and the bridge victim; Net2 the bridge aggressor; Cell and Minterm
// address LUT-bit flips; Cell and Pin address pin stuck-ats. From/To is
// the optional arming window in trace cycles, [From, To): the
// perturbation applies only in cycles c with From ≤ c < To. To == 0
// means no window — the fault is permanent (From is ignored).
type LaneFault struct {
	Kind    LaneFaultKind
	Net     netlist.NetID  // LaneStuckAt0/1, LaneBridge*: the faulty (victim) net
	Net2    netlist.NetID  // LaneBridge*: the aggressor net
	Cell    netlist.CellID // LaneLUTFlip, LanePinStuck*: the faulty LUT
	Minterm uint32         // LaneLUTFlip: the flipped truth-table entry
	Pin     int32          // LanePinStuck*: the forced fanin pin
	From    int32          // arming window start cycle (inclusive)
	To      int32          // arming window end cycle (exclusive); 0 = permanent
}

// laneMut is one compiled perturbation attached to a node (or, for
// sources, a net): apply to the lanes in mask, within lane word `word`
// of the net's lane vector, in trace cycles [from, to).
type laneMut struct {
	mask    uint64
	minterm uint32
	word    int32
	net2    int32 // LaneBridge*: aggressor net
	pin     int32 // LanePinStuck*: forced fanin pin
	from    int32 // arming window (normalized: permanent = [0, MaxInt32))
	to      int32
	kind    LaneFaultKind
}

// active reports whether the mutation is armed at the given trace cycle.
func (mut *laneMut) active(cycle int32) bool { return cycle >= mut.from && cycle < mut.to }

// preMut is a perturbation on a source net — a primary input, a
// flip-flop output or an undriven net — applied before the node pass,
// after inputs and state have been loaded.
type preMut struct {
	net  int32
	net2 int32 // LaneBridge*: aggressor net (must also be a source)
	mask uint64
	word int32
	from int32
	to   int32
	kind LaneFaultKind
}

// normalizeWindow validates a LaneFault's arming window and returns its
// internal [from, to) form (permanent = [0, MaxInt32)).
func normalizeWindow(f LaneFault) (from, to int32, err error) {
	if f.To == 0 {
		return 0, math.MaxInt32, nil
	}
	if f.To < 0 || f.From < 0 || f.To <= f.From {
		return 0, 0, fmt.Errorf("sim: lane-fault window [%d,%d) is empty or negative", f.From, f.To)
	}
	return f.From, f.To, nil
}

// nodeLevel returns the 1-based topological level of a compiled node.
func (m *Machine) nodeLevel(node int32) int {
	// levelOffN[l] is one past the last node of level l+1.
	return sort.Search(len(m.levelOffN), func(l int) bool { return m.levelOffN[l] > node }) + 1
}

// sourceNet reports whether a net is never written by the node pass: a
// primary input, a flip-flop output or an undriven net.
func (m *Machine) sourceNet(id netlist.NetID) bool {
	d := m.nl.Nets[id].Driver
	return d == netlist.NilCell || m.nl.Cells[d].Kind != netlist.KindLUT
}

// SetLaneFault arms one fault on one mutant lane, 0..Lanes()-1: widened
// machines carry 64 mutants per lane word, so a width-W compile batches
// 64·W mutants per replay. Faults accumulate until ClearLaneFaults;
// arming several faults on the same lane models a multi-fault mutant
// (when two perturbations on one lane interact — e.g. a bridge whose
// aggressor is itself stuck — they apply in arming order). Like
// overrides, lane faults are configuration, not state: they survive
// Reset (and hence RunTrace). Bridge faults require the aggressor to be
// computed no later than the victim: its driver's level must be strictly
// below the victim driver's, or the aggressor must be a source net; a
// bridge whose victim is a source net requires a source aggressor.
func (m *Machine) SetLaneFault(lane int, f LaneFault) error {
	if lane < 0 || lane >= 64*m.width {
		return fmt.Errorf("sim: lane %d out of [0,%d]", lane, 64*m.width-1)
	}
	from, to, err := normalizeWindow(f)
	if err != nil {
		return err
	}
	word := int32(lane / 64)
	mask := uint64(1) << uint(lane%64)
	switch f.Kind {
	case LaneStuckAt0, LaneStuckAt1:
		if int(f.Net) < 0 || int(f.Net) >= len(m.nl.Nets) {
			return fmt.Errorf("sim: lane fault on invalid net %d", f.Net)
		}
		d := m.nl.Nets[f.Net].Driver
		if d != netlist.NilCell && m.nl.Cells[d].Kind == netlist.KindLUT {
			node := m.nodeOfCell[d]
			if node < 0 {
				return fmt.Errorf("sim: lane fault on net %q driven by uncompiled cell", m.nl.NetName(f.Net))
			}
			m.addNodeMut(node, laneMut{mask: mask, word: word, from: from, to: to, kind: f.Kind})
		} else {
			// PI, DFF output or undriven: force before the node pass.
			m.preMuts = append(m.preMuts, preMut{net: int32(f.Net), mask: mask, word: word, from: from, to: to, kind: f.Kind})
		}
	case LaneBridgeAND, LaneBridgeOR:
		if int(f.Net) < 0 || int(f.Net) >= len(m.nl.Nets) {
			return fmt.Errorf("sim: bridge victim net %d invalid", f.Net)
		}
		if int(f.Net2) < 0 || int(f.Net2) >= len(m.nl.Nets) {
			return fmt.Errorf("sim: bridge aggressor net %d invalid", f.Net2)
		}
		if f.Net == f.Net2 {
			return fmt.Errorf("sim: bridge of net %q with itself", m.nl.NetName(f.Net))
		}
		if m.sourceNet(f.Net) {
			if !m.sourceNet(f.Net2) {
				return fmt.Errorf("sim: bridge victim %q is a source net but aggressor %q is LUT-driven",
					m.nl.NetName(f.Net), m.nl.NetName(f.Net2))
			}
			m.preMuts = append(m.preMuts, preMut{net: int32(f.Net), net2: int32(f.Net2),
				mask: mask, word: word, from: from, to: to, kind: f.Kind})
			return nil
		}
		node := m.nodeOfCell[m.nl.Nets[f.Net].Driver]
		if node < 0 {
			return fmt.Errorf("sim: bridge victim %q driven by uncompiled cell", m.nl.NetName(f.Net))
		}
		if !m.sourceNet(f.Net2) {
			anode := m.nodeOfCell[m.nl.Nets[f.Net2].Driver]
			if anode < 0 {
				return fmt.Errorf("sim: bridge aggressor %q driven by uncompiled cell", m.nl.NetName(f.Net2))
			}
			if m.nodeLevel(anode) >= m.nodeLevel(node) {
				return fmt.Errorf("sim: bridge aggressor %q (level %d) not strictly below victim %q (level %d)",
					m.nl.NetName(f.Net2), m.nodeLevel(anode), m.nl.NetName(f.Net), m.nodeLevel(node))
			}
		}
		m.addNodeMut(node, laneMut{mask: mask, word: word, net2: int32(f.Net2), from: from, to: to, kind: f.Kind})
	case LanePinStuck0, LanePinStuck1:
		if int(f.Cell) < 0 || int(f.Cell) >= len(m.nodeOfCell) {
			return fmt.Errorf("sim: pin-stuck on invalid cell %d", f.Cell)
		}
		node := m.nodeOfCell[f.Cell]
		if node < 0 {
			return fmt.Errorf("sim: pin-stuck on cell %q, which is not a compiled LUT", m.nl.CellName(f.Cell))
		}
		n := &m.nodes[node]
		if n.op == opCover {
			return fmt.Errorf("sim: pin-stuck on %d-input cell %q (max 4)", n.nin, m.nl.CellName(f.Cell))
		}
		if f.Pin < 0 || f.Pin >= n.nin {
			return fmt.Errorf("sim: pin %d out of range for %d-input cell %q", f.Pin, n.nin, m.nl.CellName(f.Cell))
		}
		m.addNodeMut(node, laneMut{mask: mask, word: word, pin: f.Pin, from: from, to: to, kind: f.Kind})
	case LaneLUTFlip:
		if int(f.Cell) < 0 || int(f.Cell) >= len(m.nodeOfCell) {
			return fmt.Errorf("sim: lane fault on invalid cell %d", f.Cell)
		}
		node := m.nodeOfCell[f.Cell]
		if node < 0 {
			return fmt.Errorf("sim: lut-flip on cell %q, which is not a compiled LUT", m.nl.CellName(f.Cell))
		}
		if n := m.nodes[node].nin; uint32(1)<<n <= f.Minterm {
			return fmt.Errorf("sim: lut-flip minterm %d out of range for %d-input cell %q",
				f.Minterm, n, m.nl.CellName(f.Cell))
		}
		m.addNodeMut(node, laneMut{mask: mask, minterm: f.Minterm, word: word, from: from, to: to, kind: LaneLUTFlip})
	default:
		return fmt.Errorf("sim: unknown lane-fault kind %d", f.Kind)
	}
	return nil
}

// addNodeMut attaches one perturbation to a compiled node.
func (m *Machine) addNodeMut(node int32, mut laneMut) {
	if m.mutOf == nil {
		m.mutOf = make([]int32, len(m.nodes))
		for i := range m.mutOf {
			m.mutOf[i] = -1
		}
	}
	if mi := m.mutOf[node]; mi >= 0 {
		m.mutLists[mi] = append(m.mutLists[mi], mut)
		return
	}
	m.mutOf[node] = int32(len(m.mutLists))
	m.mutNodes = append(m.mutNodes, node)
	// Recycle the inner slice truncated by ClearLaneFaults so arming the
	// next batch reuses its capacity instead of allocating per fault.
	if len(m.mutLists) < cap(m.mutLists) {
		m.mutLists = m.mutLists[:len(m.mutLists)+1]
		last := len(m.mutLists) - 1
		m.mutLists[last] = append(m.mutLists[last][:0], mut)
		return
	}
	m.mutLists = append(m.mutLists, []laneMut{mut})
}

// ClearLaneFaults removes every armed lane fault and lane patch,
// returning the machine to unperturbed evaluation. The mutation tables
// are retained for reuse, so arming the next 64-fault batch allocates
// (almost) nothing.
func (m *Machine) ClearLaneFaults() {
	for _, node := range m.mutNodes {
		m.mutOf[node] = -1
	}
	m.mutNodes = m.mutNodes[:0]
	m.mutLists = m.mutLists[:0]
	m.preMuts = m.preMuts[:0]
	m.clearLanePatches()
}

// LaneFaultsArmed reports whether any lane fault or lane patch is
// configured.
func (m *Machine) LaneFaultsArmed() bool {
	return len(m.mutNodes) > 0 || len(m.preMuts) > 0 || len(m.patchNodes) > 0
}

// applyStuck applies a stuck-at mutation to a word.
func applyStuck(w uint64, mut laneMut) uint64 {
	if mut.kind == LaneStuckAt1 {
		return w | mut.mask
	}
	return w &^ mut.mask
}

// applyNodeMut perturbs one lane word of a node's freshly computed lane
// vector (the word the mutation addresses), honoring the mutation's
// arming window. For LUT flips the select word — all-ones in lanes whose
// fanin assignment equals the flipped minterm — is recomputed from the
// already-evaluated fanin words at the same word index, so the flip
// tracks the inputs cycle by cycle just like a mutated truth table
// would. Bridges read the aggressor's value word (final by the level
// ordering SetLaneFault enforces); pin stuck-ats re-evaluate the node's
// pair table with the pin forced.
func (m *Machine) applyNodeMut(w uint64, n *node, mut laneMut) uint64 {
	if !mut.active(m.cycle) {
		return w
	}
	W := m.width
	switch mut.kind {
	case LaneStuckAt0, LaneStuckAt1:
		return applyStuck(w, mut)
	case LaneBridgeAND:
		av := m.val[int(mut.net2)*W+int(mut.word)]
		return w&^mut.mask | (w&av)&mut.mask
	case LaneBridgeOR:
		av := m.val[int(mut.net2)*W+int(mut.word)]
		return w&^mut.mask | (w|av)&mut.mask
	case LanePinStuck0, LanePinStuck1:
		return w&^mut.mask | m.evalPinStuck(n, mut)&mut.mask
	default: // LaneLUTFlip
		sel := ^uint64(0)
		s := n.start
		for j := int32(0); j < n.nin; j++ {
			fv := m.val[int(m.fanin[s+j])*W+int(mut.word)]
			if mut.minterm&(1<<uint(j)) != 0 {
				sel &= fv
			} else {
				sel &= ^fv
			}
		}
		return w ^ sel&mut.mask
	}
}

// evalPinStuck recomputes a node's output word from its pair table with
// one fanin pin forced to a constant — the healthy fanin words for every
// other pin, the forced word for the stuck one.
func (m *Machine) evalPinStuck(n *node, mut laneMut) uint64 {
	W := m.width
	forced := uint64(0)
	if mut.kind == LanePinStuck1 {
		forced = ^uint64(0)
	}
	fv := func(j int32) uint64 {
		if j == mut.pin {
			return forced
		}
		return m.val[int(m.fanin[n.start+j])*W+int(mut.word)]
	}
	switch n.nin {
	case 1:
		return evalTab1(m.ttab[n.aux:n.aux+2:n.aux+2], fv(0))
	case 2:
		return evalTab2(m.ttab[n.aux:n.aux+4:n.aux+4], fv(0), fv(1))
	case 3:
		return evalTab3(m.ttab[n.aux:n.aux+8:n.aux+8], fv(0), fv(1), fv(2))
	default:
		return evalTab4(m.ttab[n.aux:n.aux+16:n.aux+16], fv(0), fv(1), fv(2), fv(3))
	}
}

// applyPreMut perturbs one source-net lane word before the node pass,
// honoring the arming window. Bridge pre-mutations read the aggressor's
// loaded source value.
func (m *Machine) applyPreMut(pm preMut) {
	if m.cycle < pm.from || m.cycle >= pm.to {
		return
	}
	W := m.width
	i := int(pm.net)*W + int(pm.word)
	switch pm.kind {
	case LaneBridgeAND:
		av := m.val[int(pm.net2)*W+int(pm.word)]
		m.val[i] = m.val[i]&^pm.mask | (m.val[i]&av)&pm.mask
	case LaneBridgeOR:
		av := m.val[int(pm.net2)*W+int(pm.word)]
		m.val[i] = m.val[i]&^pm.mask | (m.val[i]|av)&pm.mask
	default:
		m.val[i] = applyStuck(m.val[i], laneMut{mask: pm.mask, kind: pm.kind})
	}
}
