package sim

// Fault-parallel execution: one mutant per bit lane. In normal operation
// the 64 bits of a net word are 64 independent test patterns; in
// fault-parallel mode they are 64 independent *mutants* evaluated under a
// broadcast stimulus (every primary input word is 0 or all-ones, so each
// lane sees the same scalar pattern). A lane mutation perturbs the value
// one compiled node produces — or one source net carries — in exactly the
// lanes its mask selects, and the perturbation is applied *during* the
// evaluation pass, so downstream logic in the same combinational wave and
// the flip-flops clocked afterwards all observe the faulty value, exactly
// as if the netlist itself had been mutated and recompiled.
//
// Two perturbation shapes cover the classic fault models:
//
//   - stuck-at: the net reads 0 (or 1) in the faulty lanes regardless of
//     its computed value — an SEU or bridging defect on a wire;
//   - LUT-bit flip: the cell's output is inverted in the faulty lanes
//     whenever its fanin minterm equals the flipped truth-table entry —
//     an SEU in a configuration-memory bit.
//
// Arm up to 64 faults (one per lane) with SetLaneFault, replay a
// broadcast stimulus once, and every lane's primary-output stream is the
// stream of its private mutant: a 64-way fault-simulation batch for the
// cost of one trace, with no netlist clone and no recompilation
// (internal/faults batches exhaustive fault lists on top of this; see
// DESIGN.md §9).

import (
	"fmt"

	"fpgadbg/internal/netlist"
)

// LaneFaultKind enumerates the per-lane perturbations the execution core
// applies natively.
type LaneFaultKind uint8

const (
	// LaneStuckAt0 forces a net to 0 in the faulty lanes.
	LaneStuckAt0 LaneFaultKind = iota
	// LaneStuckAt1 forces a net to 1 in the faulty lanes.
	LaneStuckAt1
	// LaneLUTFlip inverts one truth-table entry of a LUT cell in the
	// faulty lanes: the output is complemented whenever the cell's inputs
	// select the flipped minterm.
	LaneLUTFlip
)

func (k LaneFaultKind) String() string {
	switch k {
	case LaneStuckAt0:
		return "stuck-at-0"
	case LaneStuckAt1:
		return "stuck-at-1"
	case LaneLUTFlip:
		return "lut-flip"
	default:
		return fmt.Sprintf("LaneFaultKind(%d)", int(k))
	}
}

// LaneFault is one per-lane perturbation. Net addresses stuck-at faults;
// Cell and Minterm address LUT-bit flips.
type LaneFault struct {
	Kind    LaneFaultKind
	Net     netlist.NetID  // LaneStuckAt0/1: the faulty net
	Cell    netlist.CellID // LaneLUTFlip: the faulty LUT
	Minterm uint32         // LaneLUTFlip: the flipped truth-table entry
}

// laneMut is one compiled perturbation attached to a node (or, for
// sources, a net): apply to the lanes in mask, within lane word `word`
// of the net's lane vector.
type laneMut struct {
	mask    uint64
	minterm uint32
	word    int32
	kind    LaneFaultKind
}

// preMut is a stuck-at on a source net — a primary input, a flip-flop
// output or an undriven net — applied before the node pass, after inputs
// and state have been loaded.
type preMut struct {
	net  int32
	mask uint64
	word int32
	kind LaneFaultKind
}

// SetLaneFault arms one fault on one mutant lane, 0..Lanes()-1: widened
// machines carry 64 mutants per lane word, so a width-W compile batches
// 64·W mutants per replay. Faults accumulate until ClearLaneFaults;
// arming several faults on the same lane models a multi-fault mutant.
// Like overrides, lane faults are configuration, not state: they survive
// Reset (and hence RunTrace).
func (m *Machine) SetLaneFault(lane int, f LaneFault) error {
	if lane < 0 || lane >= 64*m.width {
		return fmt.Errorf("sim: lane %d out of [0,%d]", lane, 64*m.width-1)
	}
	word := int32(lane / 64)
	mask := uint64(1) << uint(lane%64)
	switch f.Kind {
	case LaneStuckAt0, LaneStuckAt1:
		if int(f.Net) < 0 || int(f.Net) >= len(m.nl.Nets) {
			return fmt.Errorf("sim: lane fault on invalid net %d", f.Net)
		}
		d := m.nl.Nets[f.Net].Driver
		if d != netlist.NilCell && m.nl.Cells[d].Kind == netlist.KindLUT {
			node := m.nodeOfCell[d]
			if node < 0 {
				return fmt.Errorf("sim: lane fault on net %q driven by uncompiled cell", m.nl.NetName(f.Net))
			}
			m.addNodeMut(node, laneMut{mask: mask, word: word, kind: f.Kind})
		} else {
			// PI, DFF output or undriven: force before the node pass.
			m.preMuts = append(m.preMuts, preMut{net: int32(f.Net), mask: mask, word: word, kind: f.Kind})
		}
	case LaneLUTFlip:
		if int(f.Cell) < 0 || int(f.Cell) >= len(m.nodeOfCell) {
			return fmt.Errorf("sim: lane fault on invalid cell %d", f.Cell)
		}
		node := m.nodeOfCell[f.Cell]
		if node < 0 {
			return fmt.Errorf("sim: lut-flip on cell %q, which is not a compiled LUT", m.nl.CellName(f.Cell))
		}
		if n := m.nodes[node].nin; uint32(1)<<n <= f.Minterm {
			return fmt.Errorf("sim: lut-flip minterm %d out of range for %d-input cell %q",
				f.Minterm, n, m.nl.CellName(f.Cell))
		}
		m.addNodeMut(node, laneMut{mask: mask, minterm: f.Minterm, word: word, kind: LaneLUTFlip})
	default:
		return fmt.Errorf("sim: unknown lane-fault kind %d", f.Kind)
	}
	return nil
}

// addNodeMut attaches one perturbation to a compiled node.
func (m *Machine) addNodeMut(node int32, mut laneMut) {
	if m.mutOf == nil {
		m.mutOf = make([]int32, len(m.nodes))
		for i := range m.mutOf {
			m.mutOf[i] = -1
		}
	}
	if mi := m.mutOf[node]; mi >= 0 {
		m.mutLists[mi] = append(m.mutLists[mi], mut)
		return
	}
	m.mutOf[node] = int32(len(m.mutLists))
	m.mutNodes = append(m.mutNodes, node)
	// Recycle the inner slice truncated by ClearLaneFaults so arming the
	// next batch reuses its capacity instead of allocating per fault.
	if len(m.mutLists) < cap(m.mutLists) {
		m.mutLists = m.mutLists[:len(m.mutLists)+1]
		last := len(m.mutLists) - 1
		m.mutLists[last] = append(m.mutLists[last][:0], mut)
		return
	}
	m.mutLists = append(m.mutLists, []laneMut{mut})
}

// ClearLaneFaults removes every armed lane fault and lane patch,
// returning the machine to unperturbed evaluation. The mutation tables
// are retained for reuse, so arming the next 64-fault batch allocates
// (almost) nothing.
func (m *Machine) ClearLaneFaults() {
	for _, node := range m.mutNodes {
		m.mutOf[node] = -1
	}
	m.mutNodes = m.mutNodes[:0]
	m.mutLists = m.mutLists[:0]
	m.preMuts = m.preMuts[:0]
	m.clearLanePatches()
}

// LaneFaultsArmed reports whether any lane fault or lane patch is
// configured.
func (m *Machine) LaneFaultsArmed() bool {
	return len(m.mutNodes) > 0 || len(m.preMuts) > 0 || len(m.patchNodes) > 0
}

// applyStuck applies a stuck-at mutation to a word.
func applyStuck(w uint64, mut laneMut) uint64 {
	if mut.kind == LaneStuckAt1 {
		return w | mut.mask
	}
	return w &^ mut.mask
}

// applyNodeMut perturbs one lane word of a node's freshly computed lane
// vector (the word the mutation addresses). For LUT flips the select
// word — all-ones in lanes whose fanin assignment equals the flipped
// minterm — is recomputed from the already-evaluated fanin words at the
// same word index, so the flip tracks the inputs cycle by cycle just
// like a mutated truth table would.
func (m *Machine) applyNodeMut(w uint64, n *node, mut laneMut) uint64 {
	if mut.kind != LaneLUTFlip {
		return applyStuck(w, mut)
	}
	W := m.width
	sel := ^uint64(0)
	s := n.start
	for j := int32(0); j < n.nin; j++ {
		fv := m.val[int(m.fanin[s+j])*W+int(mut.word)]
		if mut.minterm&(1<<uint(j)) != 0 {
			sel &= fv
		} else {
			sel &= ^fv
		}
	}
	return w ^ sel&mut.mask
}
