package sim

import (
	"math/rand"
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

func fullAdder(t testing.TB) *netlist.Netlist {
	t.Helper()
	n := netlist.New("fa")
	a := n.AddPI("a")
	b := n.AddPI("b")
	cin := n.AddPI("cin")
	sum := n.AddNet("sum")
	cout := n.AddNet("cout")
	n.MustAddLUT("xor3", logic.XorN(3), []netlist.NetID{a, b, cin}, sum)
	n.MustAddLUT("maj3", logic.Maj3(), []netlist.NetID{a, b, cin}, cout)
	n.MarkPO(sum)
	n.MarkPO(cout)
	return n
}

func TestCombinationalFullAdder(t *testing.T) {
	m, err := Compile(fullAdder(t))
	if err != nil {
		t.Fatal(err)
	}
	// Drive all 8 input combinations in one word.
	var aw, bw, cw uint64
	for p := uint64(0); p < 8; p++ {
		if p&1 != 0 {
			aw |= 1 << p
		}
		if p&2 != 0 {
			bw |= 1 << p
		}
		if p&4 != 0 {
			cw |= 1 << p
		}
	}
	out, err := m.Step(map[string]uint64{"a": aw, "b": bw, "cin": cw})
	if err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 8; p++ {
		abits := int(p&1) + int(p>>1&1) + int(p>>2&1)
		wantSum := abits%2 == 1
		wantCout := abits >= 2
		if (out["sum"]&(1<<p) != 0) != wantSum {
			t.Fatalf("sum wrong at pattern %d", p)
		}
		if (out["cout"]&(1<<p) != 0) != wantCout {
			t.Fatalf("cout wrong at pattern %d", p)
		}
	}
}

func TestSequentialCounter(t *testing.T) {
	// 2-bit counter: q0' = ~q0 ; q1' = q1 ^ q0.
	n := netlist.New("cnt")
	q0 := n.AddNet("q0")
	q1 := n.AddNet("q1")
	d0 := n.AddNet("d0")
	d1 := n.AddNet("d1")
	n.MustAddLUT("inv", logic.NotN(), []netlist.NetID{q0}, d0)
	n.MustAddLUT("xor", logic.XorN(2), []netlist.NetID{q1, q0}, d1)
	n.MustAddDFF("ff0", d0, q0, 0)
	n.MustAddDFF("ff1", d1, q1, 0)
	n.MarkPO(q0)
	n.MarkPO(q1)
	if err := n.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 2, 3, 0, 1, 2, 3}
	for cyc, w := range want {
		out, err := m.Step(nil)
		if err != nil {
			t.Fatal(err)
		}
		got := uint64(0)
		if out["q0"]&1 != 0 {
			got |= 1
		}
		if out["q1"]&1 != 0 {
			got |= 2
		}
		if got != w {
			t.Fatalf("cycle %d: got %d want %d", cyc, got, w)
		}
	}
}

func TestDFFInitValue(t *testing.T) {
	n := netlist.New("init")
	q := n.AddNet("q")
	d := n.AddNet("d")
	n.MustAddLUT("keep", logic.BufN(), []netlist.NetID{q}, d)
	n.MustAddDFF("ff", d, q, 1)
	n.MarkPO(q)
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := m.Step(nil)
	if out["q"] != ^uint64(0) {
		t.Fatalf("init-1 DFF reads %x", out["q"])
	}
	m.Reset()
	out, _ = m.Step(nil)
	if out["q"] != ^uint64(0) {
		t.Fatalf("after reset reads %x", out["q"])
	}
}

func TestNetProbe(t *testing.T) {
	m, err := Compile(fullAdder(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(map[string]uint64{"a": 1, "b": 1, "cin": 0}); err != nil {
		t.Fatal(err)
	}
	w, err := m.Net("sum")
	if err != nil {
		t.Fatal(err)
	}
	if w&1 != 0 {
		t.Fatal("1+1 sum bit should be 0")
	}
	if _, err := m.Net("nosuch"); err == nil {
		t.Fatal("probe of missing net should fail")
	}
	if _, err := m.Out("a"); err == nil {
		t.Fatal("Out on a non-PO should fail")
	}
}

func TestSetPIErrors(t *testing.T) {
	m, err := Compile(fullAdder(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPI("sum", 1); err == nil {
		t.Fatal("driving a non-PI should fail")
	}
	if err := m.SetPI("missing", 1); err == nil {
		t.Fatal("driving a missing net should fail")
	}
}

func TestEquivalentDetectsDifference(t *testing.T) {
	a := fullAdder(t)
	b := fullAdder(t)
	// Same structure: must be equivalent.
	mm, err := Equivalent(a, b, 8, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("identical designs reported different: %v", mm)
	}
	// Corrupt one LUT bit in b.
	id, _ := b.CellByName("maj3")
	b.Cells[id].Func = logic.OrN(3) // wrong carry
	mm, err = Equivalent(a, b, 8, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if mm == nil {
		t.Fatal("corrupted design reported equivalent")
	}
	if mm.Output != "cout" {
		t.Fatalf("mismatch on %q, want cout", mm.Output)
	}
}

func TestEquivalentNameMismatch(t *testing.T) {
	a := fullAdder(t)
	n := netlist.New("other")
	n.AddPI("x")
	o := n.AddNet("o")
	pi, _ := n.NetByName("x")
	n.MustAddLUT("b", logic.BufN(), []netlist.NetID{pi}, o)
	n.MarkPO(o)
	if _, err := Equivalent(a, n, 2, 1, 1); err == nil {
		t.Fatal("PI name mismatch not reported")
	}
}

func TestExhaustiveEquivalent(t *testing.T) {
	a := fullAdder(t)
	b := fullAdder(t)
	mm, err := ExhaustiveEquivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("unexpected mismatch: %v", mm)
	}
	id, _ := b.CellByName("xor3")
	b.Cells[id].Func = logic.XnorN(3)
	mm, err = ExhaustiveEquivalent(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if mm == nil {
		t.Fatal("exhaustive comparison missed a mutation")
	}
}

func TestSequentialEquivalentCatchesStateBug(t *testing.T) {
	mk := func(init uint8) *netlist.Netlist {
		n := netlist.New("toggler")
		en := n.AddPI("en")
		q := n.AddNet("q")
		d := n.AddNet("d")
		n.MustAddLUT("t", logic.XorN(2), []netlist.NetID{en, q}, d)
		n.MustAddDFF("ff", d, q, init)
		n.MarkPO(q)
		return n
	}
	a, b := mk(0), mk(0)
	mm, err := Equivalent(a, b, 4, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("unexpected mismatch: %v", mm)
	}
	c := mk(1) // wrong reset state
	mm, err = Equivalent(a, c, 4, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if mm == nil {
		t.Fatal("init-value bug not caught")
	}
}

func TestBitParallelMatchesScalar(t *testing.T) {
	// Cross-check: random 64-pattern word vs 64 scalar evaluations.
	n := fullAdder(t)
	m, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	aw, bw, cw := r.Uint64(), r.Uint64(), r.Uint64()
	out, err := m.Step(map[string]uint64{"a": aw, "b": bw, "cin": cw})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 64; p++ {
		bitsSet := 0
		if aw&(1<<p) != 0 {
			bitsSet++
		}
		if bw&(1<<p) != 0 {
			bitsSet++
		}
		if cw&(1<<p) != 0 {
			bitsSet++
		}
		if (out["sum"]&(1<<p) != 0) != (bitsSet%2 == 1) {
			t.Fatalf("scalar cross-check failed at pattern %d", p)
		}
		if (out["cout"]&(1<<p) != 0) != (bitsSet >= 2) {
			t.Fatalf("cout cross-check failed at pattern %d", p)
		}
	}
}

func BenchmarkSimFullAdderChain(b *testing.B) {
	// A 256-bit ripple-carry adder exercises deep combinational logic.
	n := netlist.New("rca")
	carry := n.AddPI("cin")
	var pos []netlist.NetID
	for i := 0; i < 256; i++ {
		a := n.AddPI("")
		bb := n.AddPI("")
		sum := n.AddNet("")
		cout := n.AddNet("")
		n.MustAddLUT("", logic.XorN(3), []netlist.NetID{a, bb, carry}, sum)
		n.MustAddLUT("", logic.Maj3(), []netlist.NetID{a, bb, carry}, cout)
		pos = append(pos, sum)
		carry = cout
	}
	n.MarkPO(carry)
	for _, p := range pos {
		n.MarkPO(p)
	}
	m, err := Compile(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Eval()
	}
}
