package sim

// Fork returns an independent Machine sharing this machine's compiled
// program. Compilation (levelization, truth-table expansion, CSR packing)
// is paid once; each fork carries only its own mutable state — net values,
// flip-flop state, bindings, probes and overrides — so N concurrent
// campaigns over the same design can each run a private machine off one
// cached compile. The program tables (nodes, fanin, truth tables, covers,
// PI/PO/DFF index tables) and the source netlist are shared read-only;
// neither the parent nor any fork may mutate the netlist afterwards.
//
// The fork starts in the reset state with the default all-PIs binding and
// no probes, overrides or lane faults, regardless of the parent's current
// state. It inherits the parent's lane width and fused schedule but not
// its worker pool: evaluation parallelism is per-instance configuration
// (forks usually ARE the parallelism — one per campaign goroutine).
func (m *Machine) Fork() *Machine {
	f := &Machine{
		nl:         m.nl,
		width:      m.width,
		nodes:      m.nodes,
		fanin:      m.fanin,
		ttab:       m.ttab,
		covers:     m.covers,
		buf:        make([]uint64, len(m.buf)),
		xnodes:     m.xnodes,
		xfan:       m.xfan,
		fanB:       m.fanB,
		xfanB:      m.xfanB,
		outB:       m.outB,
		xoutB:      m.xoutB,
		xout2B:     m.xout2B,
		fusedPairs: m.fusedPairs,
		fuse:       m.fuse,
		levelOffN:  m.levelOffN,
		levelOffX:  m.levelOffX,
		dffD:       m.dffD,
		dffQ:       m.dffQ,
		dffInit:    m.dffInit,
		pis:        m.pis,
		piNames:    m.piNames,
		pos:        m.pos,
		poNames:    m.poNames,
		nodeOfCell: m.nodeOfCell,
		val:        make([]uint64, len(m.val)),
		state:      make([]uint64, len(m.state)),
		bound:      append([]int32(nil), m.pis...),
	}
	f.Reset()
	return f
}

// MemoryFootprint estimates the machine's resident bytes (compiled
// program plus per-instance state); the campaign service's artifact cache
// charges cached programs against its byte budget with it.
func (m *Machine) MemoryFootprint() int64 {
	b := int64(256)
	b += int64(len(m.nodes))*24 + int64(len(m.xnodes))*32
	b += int64(len(m.fanin)+len(m.xfan)) * 4
	b += int64(len(m.fanB)+len(m.xfanB)+len(m.outB)+len(m.xoutB)+len(m.xout2B)) * 4
	b += int64(len(m.ttab)) * 8
	for i := range m.covers {
		b += 32 + int64(len(m.covers[i].Cubes))*16
	}
	b += int64(len(m.buf)+len(m.val)+len(m.state)+len(m.dffInit)) * 8
	b += int64(len(m.dffD)+len(m.dffQ)+len(m.pis)+len(m.pos)+len(m.bound)) * 4
	b += int64(len(m.levelOffN)+len(m.levelOffX)) * 4
	for _, s := range m.piNames {
		b += 16 + int64(len(s))
	}
	for _, s := range m.poNames {
		b += 16 + int64(len(s))
	}
	return b
}
