package sim

// Old-vs-new equivalence regression: every catalog design is replayed on
// identical stimulus through the legacy map-driven Step interpreter
// (ReferenceMachine — the seed's cover-evaluating simulator, kept as the
// differential oracle) and through the compiled RunTrace path, asserting
// bit-identical primary-output and DFF-state streams. The raw
// (pre-mapping) designs exercise the generic cover kernel alongside the
// specialized small-k truth-table kernels.

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/testgen"
)

func TestRunTraceMatchesStepOnCatalog(t *testing.T) {
	const cycles = 12
	for _, d := range bench.Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			nl := d.Build()
			pis := nl.SortedPINames()
			pos := nl.SortedPONames()
			stim := testgen.RandomBlocks(len(pis), cycles, 0xC0FFEE)

			// New path: compiled trace.
			mt, err := Compile(nl)
			if err != nil {
				t.Fatal(err)
			}
			if err := mt.BindNames(pis); err != nil {
				t.Fatal(err)
			}
			cols, err := mt.POCols(pos)
			if err != nil {
				t.Fatal(err)
			}
			mt.CaptureState(true)
			tr := mt.RunTrace(stim)

			// Legacy path: per-cycle maps through the cover interpreter.
			ms, err := CompileReference(nl)
			if err != nil {
				t.Fatal(err)
			}
			for c, row := range stim {
				in := make(map[string]uint64, len(pis))
				for j, name := range pis {
					in[name] = row[j]
				}
				out, err := ms.Step(in)
				if err != nil {
					t.Fatal(err)
				}
				for i, name := range pos {
					if tr.Out(c, cols[i]) != out[name] {
						t.Fatalf("cycle %d output %q: trace %#x != step %#x",
							c, name, tr.Out(c, cols[i]), out[name])
					}
				}
				sw := ms.StateWords()
				if len(sw) != tr.NumState {
					t.Fatalf("DFF count mismatch: %d vs %d", len(sw), tr.NumState)
				}
				for i := range sw {
					if tr.State(c, i) != sw[i] {
						t.Fatalf("cycle %d dff %d: trace state %#x != step state %#x",
							c, i, tr.State(c, i), sw[i])
					}
				}
			}
		})
	}
}
