package sim

import (
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/testgen"
)

// laneTestNetlist builds a small sequential design with an AND, an XOR, a
// DFF and an inverter so every fault shape has a target.
func laneTestNetlist(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("lanes")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	ab := nl.AddNet("ab")
	d := nl.AddNet("d")
	q := nl.AddNet("q")
	y := nl.AddNet("y")
	nl.MustAddLUT("g_and", logic.AndN(2), []netlist.NetID{a, b}, ab)
	nl.MustAddLUT("g_xor", logic.XorN(2), []netlist.NetID{ab, q}, d)
	nl.MustAddDFF("ff", d, q, 0)
	nl.MustAddLUT("g_inv", logic.NotN(), []netlist.NetID{d}, y)
	nl.MarkPO(y)
	nl.MarkPO(d)
	return nl
}

// TestLaneFaultMatchesMutatedNetlist checks that each lane-fault shape
// reproduces, lane for lane, the behaviour of an explicitly mutated (or
// overridden) design, and that fault-free lanes stay untouched.
func TestLaneFaultMatchesMutatedNetlist(t *testing.T) {
	nl := laneTestNetlist(t)
	prog, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.Repeat(testgen.ScalarBlocks(2, 16, 7), 2)

	golden := prog.Fork().RunTrace(stim)

	// Lane 3: flip minterm 3 of g_and (output inverted when a=b=1).
	// Lane 9: stuck-at-1 on net d (driven by a LUT).
	// Lane 17: stuck-at-0 on PI b (source net).
	mu := prog.Fork()
	andID, _ := nl.CellByName("g_and")
	dID, _ := nl.NetByName("d")
	bID, _ := nl.NetByName("b")
	if err := mu.SetLaneFault(3, LaneFault{Kind: LaneLUTFlip, Cell: andID, Minterm: 3}); err != nil {
		t.Fatal(err)
	}
	if err := mu.SetLaneFault(9, LaneFault{Kind: LaneStuckAt1, Net: dID}); err != nil {
		t.Fatal(err)
	}
	if err := mu.SetLaneFault(17, LaneFault{Kind: LaneStuckAt0, Net: bID}); err != nil {
		t.Fatal(err)
	}
	got := mu.RunTrace(stim)

	// Reference mutants, one serial run each.
	flip := nl.Clone()
	fc, _ := flip.CellByName("g_and")
	tt := flip.Cells[fc].Func.MustTT()
	tt.SetBit(3, !tt.Bit(3))
	flip.Cells[fc].Func = tt.ToCover()
	mFlip, err := Compile(flip)
	if err != nil {
		t.Fatal(err)
	}
	refFlip := mFlip.RunTrace(stim)

	mStuck := prog.Fork()
	if err := mStuck.SetOverride(dID, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	refStuck := mStuck.RunTrace(stim)

	mPI := prog.Fork()
	if err := mPI.SetOverride(bID, 0); err != nil {
		t.Fatal(err)
	}
	refPI := mPI.RunTrace(stim)

	lanes := []struct {
		lane int
		ref  *Trace
		name string
	}{
		{3, refFlip, "lut-flip"},
		{9, refStuck, "stuck-at-1 d"},
		{17, refPI, "stuck-at-0 b"},
	}
	for c := 0; c < got.Cycles; c++ {
		for po := 0; po < got.NumPOs; po++ {
			g := got.Out(c, po)
			// Untouched lanes must match the golden stream exactly.
			clean := ^(uint64(1)<<3 | uint64(1)<<9 | uint64(1)<<17)
			if (g^golden.Out(c, po))&clean != 0 {
				t.Fatalf("cycle %d PO %d: fault leaked into clean lanes: got %x golden %x",
					c, po, g, golden.Out(c, po))
			}
			for _, l := range lanes {
				want := l.ref.Out(c, po) >> uint(l.lane) & 1
				if g>>uint(l.lane)&1 != want {
					t.Fatalf("cycle %d PO %d lane %d (%s): got %d want %d",
						c, po, l.lane, l.name, g>>uint(l.lane)&1, want)
				}
			}
		}
	}

	// Clearing the faults restores golden behaviour and keeps the fork
	// reusable for the next batch.
	mu.ClearLaneFaults()
	if mu.LaneFaultsArmed() {
		t.Fatal("faults still armed after ClearLaneFaults")
	}
	again := mu.RunTrace(stim)
	for c := 0; c < again.Cycles; c++ {
		for po := 0; po < again.NumPOs; po++ {
			if again.Out(c, po) != golden.Out(c, po) {
				t.Fatalf("cycle %d PO %d: cleared machine differs from golden", c, po)
			}
		}
	}
}

// TestLaneFaultValidation exercises the error paths.
func TestLaneFaultValidation(t *testing.T) {
	nl := laneTestNetlist(t)
	m, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	andID, _ := nl.CellByName("g_and")
	ffID, _ := nl.CellByName("ff")
	if err := m.SetLaneFault(64, LaneFault{Kind: LaneStuckAt0, Net: 0}); err == nil {
		t.Error("lane 64 accepted")
	}
	if err := m.SetLaneFault(0, LaneFault{Kind: LaneStuckAt0, Net: 999}); err == nil {
		t.Error("invalid net accepted")
	}
	if err := m.SetLaneFault(0, LaneFault{Kind: LaneLUTFlip, Cell: andID, Minterm: 4}); err == nil {
		t.Error("out-of-range minterm accepted")
	}
	if err := m.SetLaneFault(0, LaneFault{Kind: LaneLUTFlip, Cell: ffID}); err == nil {
		t.Error("lut-flip on a DFF accepted")
	}
	if m.LaneFaultsArmed() {
		t.Error("failed arms left state behind")
	}
}

// TestLaneFaultForkIsolation checks that forks do not share fault state.
func TestLaneFaultForkIsolation(t *testing.T) {
	nl := laneTestNetlist(t)
	prog, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	dID, _ := nl.NetByName("d")
	a := prog.Fork()
	if err := a.SetLaneFault(0, LaneFault{Kind: LaneStuckAt1, Net: dID}); err != nil {
		t.Fatal(err)
	}
	b := a.Fork()
	if b.LaneFaultsArmed() {
		t.Fatal("fork inherited armed lane faults")
	}
	stim := testgen.Repeat(testgen.ScalarBlocks(2, 4, 1), 1)
	ta := a.RunTrace(stim)
	tb := b.RunTrace(stim)
	diff := false
	for c := 0; c < ta.Cycles; c++ {
		for po := 0; po < ta.NumPOs; po++ {
			if ta.Out(c, po)&1 != tb.Out(c, po)&1 {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("armed fault had no effect on lane 0")
	}
}
