// Package sim is the emulation substrate: a compiled, 64-way bit-parallel
// functional simulator for netlist designs. Each net carries a 64-bit word
// whose bit p is the net's value under input pattern p, so one pass over
// the levelized network evaluates 64 test patterns.
//
// Compile lowers a netlist into a flat, allocation-free program: fanins
// are packed into one CSR array, LUTs of four or fewer inputs run as
// specialized truth-table kernels (straight-line word ops, no cube
// iteration), and wider LUTs fall back to the generic cover evaluator
// over a preallocated scratch buffer. Primary inputs, primary outputs and
// flip-flops are resolved to dense index tables once at compile time.
//
// Two calling conventions are offered:
//
//   - The ID-based batch API — Slots/Bind, Probe, RunTrace — drives a
//     whole clocked stimulus sequence with zero per-cycle allocations and
//     is what every hot path in this repository uses (see DESIGN.md §3).
//   - The name/map API — SetPI, Step, Outputs, Net — is a thin
//     compatibility shim kept for external callers and tests; it pays a
//     map allocation and string hashing per cycle.
//
// The paper runs designs on FPGA emulation hardware; this simulator plays
// that role (see DESIGN.md §3). Detection compares outputs against a
// golden model, and localization probes internal nets — both map directly
// onto the trace API (and, in shim form, Machine.Out and Machine.Net).
//
// The lanes also serve as independent mutants under a broadcast
// stimulus: SetLaneFault arms per-lane fault perturbations (stuck-ats,
// LUT-bit flips — fault simulation, DESIGN.md §9) and SetLanePatch arms
// per-lane truth-table substitutions (repair-candidate validation,
// DESIGN.md §10), so one trace replay evaluates Lanes() mutants or
// candidate repairs with no netlist clone and no recompilation.
// CompileWidth widens the machine to W words per net (64·W lanes,
// W ≤ MaxWidth); Compile is CompileWidth with W = 1.
package sim
