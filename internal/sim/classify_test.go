package sim

import "testing"

// evalClassBlock evaluates a classified opcode the way the block
// evaluators do: permute the position inputs via the descriptor, then run
// the table-free kernel.
func evalClassBlock(op uint8, msk uint16, in *[4]vec4) vec4 {
	var o vec4
	p := &permTab[msk>>10&31] // opSplit4 keeps its edge complement in bit 15
	switch op {
	case opXor2:
		evalXor2x4(msk, &in[0], &in[1], &o)
	case opXor3:
		evalXor3x4(msk, &in[0], &in[1], &in[2], &o)
	case opXor4:
		evalXor4x4(msk, &in[0], &in[1], &in[2], &in[3], &o)
	case opChain2:
		evalChain2x4(msk, &in[p[0]], &in[p[1]], &o)
	case opChain3:
		evalChain3x4(msk, &in[p[0]], &in[p[1]], &in[p[2]], &o)
	case opChain4:
		evalChain4x4(msk, &in[p[0]], &in[p[1]], &in[p[2]], &in[p[3]], &o)
	case opTree4:
		evalTree4x4(msk, &in[p[0]], &in[p[1]], &in[p[2]], &in[p[3]], &o)
	case opMux3:
		evalMux3x4(msk, &in[p[0]], &in[p[1]], &in[p[2]], &o)
	case opMaj3:
		evalMaj3x4(msk, &in[0], &in[1], &in[2], &o)
	case opSplit4:
		evalSplit4x4(msk, &in[p[0]], &in[p[1]], &in[p[2]], &in[p[3]], &o)
	}
	return o
}

// TestClassifyExhaustive classifies every truth table of every supported
// arity and, for each one the classifier accepts, checks the table-free
// kernel against the table on every minterm (broadcast to full words, so
// the block kernels run exactly as in the stride-W evaluators).
func TestClassifyExhaustive(t *testing.T) {
	for k := 2; k <= 4; k++ {
		n := 1 << uint(k)
		mask := uint16(1)<<uint(n) - 1
		classified := 0
		for v := 0; v <= int(mask); v++ {
			op, msk, ok := classifyTT(uint16(v), k)
			if !ok {
				continue
			}
			classified++
			for m := 0; m < n; m++ {
				var in [4]vec4
				for j := 0; j < k; j++ {
					w := -uint64(m >> uint(j) & 1)
					in[j] = vec4{w, w, w, w}
				}
				got := evalClassBlock(op, msk, &in)
				want := -uint64(v >> uint(m) & 1)
				for w := 0; w < 4; w++ {
					if got[w] != want {
						t.Fatalf("k=%d tt=%#04x op=%d msk=%#04x minterm=%d word %d: got %#x want %#x",
							k, v, op, msk, m, w, got[w], want)
					}
				}
			}
		}
		t.Logf("k=%d: %d/%d tables classified", k, classified, int(mask)+1)
	}
}

// TestClassifyRejectsArity pins the arity guard: the classifier only
// handles 2..4 inputs.
func TestClassifyRejectsArity(t *testing.T) {
	for _, k := range []int{0, 1, 5} {
		if _, _, ok := classifyTT(0x6, k); ok {
			t.Fatalf("classifyTT accepted arity %d", k)
		}
	}
}
