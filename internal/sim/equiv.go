package sim

import (
	"fmt"
	"math/rand"

	"fpgadbg/internal/netlist"
)

// Mismatch describes the first detected difference between two designs.
type Mismatch struct {
	Cycle   int
	Output  string
	Pattern int // which of the 64 parallel patterns diverged
	WantBit bool
	GotBit  bool
	Inputs  map[string]uint64 // the input words applied that cycle
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("cycle %d output %q pattern %d: want %v got %v",
		m.Cycle, m.Output, m.Pattern, m.WantBit, m.GotBit)
}

// Equivalent runs both designs on the same random stimulus and compares
// primary outputs. Designs are matched by PI/PO names, which must be
// identical sets. words blocks of 64 random patterns are applied; for
// sequential designs each block is held for cycles clock cycles. It returns
// nil when no difference was observed, or a Mismatch describing the first
// divergence.
func Equivalent(a, b *netlist.Netlist, words, cycles int, seed int64) (*Mismatch, error) {
	if err := sameNames(a.SortedPINames(), b.SortedPINames()); err != nil {
		return nil, fmt.Errorf("sim: PI mismatch: %w", err)
	}
	if err := sameNames(a.SortedPONames(), b.SortedPONames()); err != nil {
		return nil, fmt.Errorf("sim: PO mismatch: %w", err)
	}
	ma, err := Compile(a)
	if err != nil {
		return nil, err
	}
	mb, err := Compile(b)
	if err != nil {
		return nil, err
	}
	if cycles < 1 {
		cycles = 1
	}
	r := rand.New(rand.NewSource(seed))
	pis := a.SortedPINames()
	pos := a.SortedPONames()
	cycle := 0
	for w := 0; w < words; w++ {
		in := make(map[string]uint64, len(pis))
		for _, name := range pis {
			in[name] = r.Uint64()
		}
		for c := 0; c < cycles; c++ {
			oa, err := ma.Step(in)
			if err != nil {
				return nil, err
			}
			ob, err := mb.Step(in)
			if err != nil {
				return nil, err
			}
			for _, name := range pos {
				if oa[name] != ob[name] {
					diff := oa[name] ^ ob[name]
					p := firstBit(diff)
					return &Mismatch{
						Cycle:   cycle,
						Output:  name,
						Pattern: p,
						WantBit: oa[name]&(1<<p) != 0,
						GotBit:  ob[name]&(1<<p) != 0,
						Inputs:  in,
					}, nil
				}
			}
			cycle++
		}
	}
	return nil, nil
}

func firstBit(w uint64) int {
	for i := 0; i < 64; i++ {
		if w&(1<<i) != 0 {
			return i
		}
	}
	return 0
}

func sameNames(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%q vs %q", a[i], b[i])
		}
	}
	return nil
}

// ExhaustiveEquivalent compares two purely combinational designs on every
// input assignment; the common PI count must be at most 20.
func ExhaustiveEquivalent(a, b *netlist.Netlist) (*Mismatch, error) {
	pis := a.SortedPINames()
	if err := sameNames(pis, b.SortedPINames()); err != nil {
		return nil, fmt.Errorf("sim: PI mismatch: %w", err)
	}
	if err := sameNames(a.SortedPONames(), b.SortedPONames()); err != nil {
		return nil, fmt.Errorf("sim: PO mismatch: %w", err)
	}
	if len(pis) > 20 {
		return nil, fmt.Errorf("sim: %d PIs too many for exhaustive comparison", len(pis))
	}
	ma, err := Compile(a)
	if err != nil {
		return nil, err
	}
	mb, err := Compile(b)
	if err != nil {
		return nil, err
	}
	pos := a.SortedPONames()
	total := uint64(1) << len(pis)
	for base := uint64(0); base < total; base += 64 {
		in := make(map[string]uint64, len(pis))
		for i, name := range pis {
			var w uint64
			for p := 0; p < 64 && base+uint64(p) < total; p++ {
				if (base+uint64(p))&(1<<i) != 0 {
					w |= 1 << p
				}
			}
			in[name] = w
		}
		oa, err := ma.Step(in)
		if err != nil {
			return nil, err
		}
		ob, err := mb.Step(in)
		if err != nil {
			return nil, err
		}
		valid := uint64(1)<<min64(64, total-base) - 1
		if total-base >= 64 {
			valid = ^uint64(0)
		}
		for _, name := range pos {
			if d := (oa[name] ^ ob[name]) & valid; d != 0 {
				p := firstBit(d)
				return &Mismatch{
					Output:  name,
					Pattern: p,
					WantBit: oa[name]&(1<<p) != 0,
					GotBit:  ob[name]&(1<<p) != 0,
					Inputs:  in,
				}, nil
			}
		}
		ma.Reset()
		mb.Reset()
	}
	return nil, nil
}

func min64(a int, b uint64) uint64 {
	if uint64(a) < b {
		return uint64(a)
	}
	return b
}
