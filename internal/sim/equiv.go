package sim

import (
	"fmt"

	"fpgadbg/internal/netlist"
	"fpgadbg/internal/testgen"
)

// Mismatch describes the first detected difference between two designs.
type Mismatch struct {
	Cycle   int
	Output  string
	Pattern int // which of the 64 parallel patterns diverged
	WantBit bool
	GotBit  bool
	Inputs  map[string]uint64 // the input words applied that cycle
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("cycle %d output %q pattern %d: want %v got %v",
		m.Cycle, m.Output, m.Pattern, m.WantBit, m.GotBit)
}

// Equivalent runs both designs on the same random stimulus and compares
// primary outputs. Designs are matched by PI/PO names, which must be
// identical sets. words blocks of 64 random patterns are applied; for
// sequential designs each block is held for cycles clock cycles. It returns
// nil when no difference was observed, or a Mismatch describing the first
// divergence.
//
// Both designs are replayed through the compiled trace API: names are
// bound to slots once and the whole sequence runs allocation-free.
func Equivalent(a, b *netlist.Netlist, words, cycles int, seed int64) (*Mismatch, error) {
	ma, err := Compile(a)
	if err != nil {
		return nil, err
	}
	return EquivalentCompiled(ma, b, words, cycles, seed)
}

// EquivalentCompiled is Equivalent with the first design precompiled —
// for fault campaigns comparing one golden machine against many mutants
// without recompiling the golden side per comparison.
func EquivalentCompiled(ma *Machine, b *netlist.Netlist, words, cycles int, seed int64) (*Mismatch, error) {
	a := ma.Netlist()
	pis := a.SortedPINames()
	pos := a.SortedPONames()
	if err := sameNames(pis, b.SortedPINames()); err != nil {
		return nil, fmt.Errorf("sim: PI mismatch: %w", err)
	}
	if err := sameNames(pos, b.SortedPONames()); err != nil {
		return nil, fmt.Errorf("sim: PO mismatch: %w", err)
	}
	if cycles < 1 {
		cycles = 1
	}
	blocks := testgen.RandomBlocks(len(pis), words, seed)
	stim := testgen.Repeat(blocks, cycles)
	return compareTraces(ma, b, pis, pos, stim, false)
}

// ExhaustiveEquivalent compares two purely combinational designs on every
// input assignment; the common PI count must be at most 20.
func ExhaustiveEquivalent(a, b *netlist.Netlist) (*Mismatch, error) {
	pis := a.SortedPINames()
	pos := a.SortedPONames()
	if err := sameNames(pis, b.SortedPINames()); err != nil {
		return nil, fmt.Errorf("sim: PI mismatch: %w", err)
	}
	if err := sameNames(pos, b.SortedPONames()); err != nil {
		return nil, fmt.Errorf("sim: PO mismatch: %w", err)
	}
	if len(pis) > 20 {
		return nil, fmt.Errorf("sim: %d PIs too many for exhaustive comparison", len(pis))
	}
	stim, err := testgen.ExhaustiveBlocks(len(pis))
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	ma, err := Compile(a)
	if err != nil {
		return nil, err
	}
	return compareTraces(ma, b, pis, pos, stim, true)
}

// compareWindow bounds how many cycles compareTraces replays before
// scanning for a divergence, so a mismatch on an early cycle does not pay
// for the whole sequence.
const compareWindow = 64

// compareTraces replays stim on both designs in windows and reports the
// first differing PO bit. When maskTail is set, invalid pattern bits of a
// final partial exhaustive word are ignored.
func compareTraces(ma *Machine, b *netlist.Netlist, pis, pos []string, stim [][]uint64, maskTail bool) (*Mismatch, error) {
	mb, err := Compile(b)
	if err != nil {
		return nil, err
	}
	if err := ma.BindNames(pis); err != nil {
		return nil, err
	}
	if err := mb.BindNames(pis); err != nil {
		return nil, err
	}
	aCols, err := ma.POCols(pos)
	if err != nil {
		return nil, err
	}
	bCols, err := mb.POCols(pos)
	if err != nil {
		return nil, err
	}
	ma.Reset()
	mb.Reset()
	var ta, tb Trace
	for base := 0; base < len(stim); base += compareWindow {
		end := base + compareWindow
		if end > len(stim) {
			end = len(stim)
		}
		window := stim[base:end]
		ma.ResumeTraceInto(&ta, window)
		mb.ResumeTraceInto(&tb, window)
		for c := 0; c < len(window); c++ {
			mask := ^uint64(0)
			if maskTail {
				total := uint64(1) << len(pis)
				off := uint64(base+c) * 64
				if total-off < 64 {
					mask = uint64(1)<<(total-off) - 1
				}
			}
			for i, name := range pos {
				av := ta.Out(c, aCols[i])
				bv := tb.Out(c, bCols[i])
				if d := (av ^ bv) & mask; d != 0 {
					p := firstBit(d)
					mm := &Mismatch{
						Cycle:   base + c,
						Output:  name,
						Pattern: p,
						WantBit: av&(1<<p) != 0,
						GotBit:  bv&(1<<p) != 0,
						Inputs:  make(map[string]uint64, len(pis)),
					}
					for j, pi := range pis {
						if j < len(stim[base+c]) {
							mm.Inputs[pi] = stim[base+c][j]
						}
					}
					return mm, nil
				}
			}
		}
	}
	return nil, nil
}

func firstBit(w uint64) int {
	for i := 0; i < 64; i++ {
		if w&(1<<i) != 0 {
			return i
		}
	}
	return 0
}

func sameNames(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%q vs %q", a[i], b[i])
		}
	}
	return nil
}
