package sim

// Compile-time truth-table classification. Most mapped LUTs are not
// arbitrary functions: technology mapping packs fanout-free cones of
// AND/OR/NOT and XOR gates, so the bulk of any catalog design is parity
// functions, read-once AND/OR/XOR formulas (chains and balanced trees
// with complements pushed onto edges by De Morgan) and 2:1 muxes. The
// generic pair-table kernel spends ~37 word ops plus 2^k table loads per
// node regardless; the classified forms need 4-15 register-only ops. The
// classifier runs once per cell at compile time and encodes the detected
// shape — an input permutation, per-input complements, per-edge
// connectives and complements — into a 16-bit descriptor (node.msk) that
// the execution core's fast arms decode into broadcast masks.
//
// Classification is purely an execution-plan choice: the node keeps its
// truth table and expanded pair table, its fanin CSR stays in cell pin
// order, and the perturbed (hooked) pass still evaluates classified nodes
// through the generic table kernels, so lane faults, lane patches and
// fused-pair composition are untouched.
//
// Descriptor layout (bit positions in node.msk):
//
//	opXor2..4:  bit 0: output complement. Inputs are symmetric — no
//	            permutation, no per-input complements.
//	opChain2..4: bits 0..3: per-position input complements,
//	            bits 4..6: per-edge output complements,
//	            bits 7..9: per-edge connective (0 = AND, 1 = XOR),
//	            bits 10..14: permutation index (position -> CSR pin).
//	            f = (((p0^x0 op1 p1^x1)^e1 op2 p2^x2)^e2 op3 p3^x3)^e3
//	opTree4:    bits 0..3: input complements (tree positions l0,l1,r0,r1),
//	            bit 4: eL, bit 5: eR, bit 6: eTop,
//	            bit 7: opL, bit 8: opR, bit 9: opTop (0 = AND, 1 = XOR),
//	            bits 10..14: permutation index.
//	            f = (((l0^x0 opL l1^x1)^eL) opTop ((r0^x2 opR r1^x3)^eR))^eTop
//	opMux3:     bit 0: complement on a, bit 1: complement on b,
//	            bit 2: output complement, bits 10..14: permutation index
//	            with roles (select, a, b).
//	            f = (s ? a^xa : b^xb) ^ inv
//	opMaj3:     bits 0..2: input complements, bit 3: output complement.
//	            Majority is symmetric — no permutation.
//	            f = maj(a^x0, b^x1, c^x2) ^ inv
//	opSplit4:   bits 0..7: pair bits (pairBits) of the 3-input residual
//	            function g, bit 8: chained-pin complement, bit 9: top
//	            connective (0 = AND, 1 = XOR), bits 10..14: permutation
//	            index with roles (g0, g1, g2, chained pin), bit 15: edge
//	            complement.
//	            f = (g(g0,g1,g2) op p^xw) ^ e

// permTab enumerates the 24 permutations of four pin positions; the
// 5-bit permutation index in a class descriptor selects one. Generated
// deterministically at init so encoder and decoder agree.
var permTab [24][4]uint8

func init() {
	p := [4]uint8{0, 1, 2, 3}
	idx := 0
	var gen func(i int)
	gen = func(i int) {
		if i == 4 {
			permTab[idx] = p
			idx++
			return
		}
		for j := i; j < 4; j++ {
			p[i], p[j] = p[j], p[i]
			gen(i + 1)
			p[i], p[j] = p[j], p[i]
		}
	}
	gen(0)
}

// permIndex returns the descriptor index of a permutation (unused tail
// positions must be identity).
func permIndex(p [4]uint8) uint16 {
	for i := range permTab {
		if permTab[i] == p {
			return uint16(i)
		}
	}
	panic("sim: permutation not in table")
}

// classifyTT tries to classify the k-input truth table (low 2^k bits of
// w4) into one of the fast-opcode forms. Returns the opcode and its msk
// descriptor, or ok=false when only the generic table kernel applies.
func classifyTT(w4 uint16, k int) (op uint8, msk uint16, ok bool) {
	if k < 2 || k > 4 {
		return 0, 0, false
	}
	n := 1 << uint(k)
	mask := uint16(1)<<uint(n) - 1
	v := w4 & mask

	par := uint16(0)
	for m := 0; m < n; m++ {
		if popcnt4(m)&1 == 1 {
			par |= 1 << uint(m)
		}
	}
	if v == par {
		return opXor2 + uint8(k-2), 0, true
	}
	if v == par^mask {
		return opXor2 + uint8(k-2), 1, true
	}

	pins := [4]uint8{0, 1, 2, 3}
	if perm, x, e, ops, found := detectChain(v, pins[:k]); found {
		for j := k; j < 4; j++ { // identity at unused tail positions
			perm[j] = uint8(j)
		}
		return opChain2 + uint8(k-2), x | e<<4 | ops<<7 | permIndex(perm)<<10, true
	}
	if k == 4 {
		if m, found := detectTree(v); found {
			return opTree4, m, true
		}
		if m, found := detectSplit4(v); found {
			return opSplit4, m, true
		}
	}
	if k == 3 {
		if m, found := detectMux(v); found {
			return opMux3, m, true
		}
		if m, found := detectMaj(v); found {
			return opMaj3, m, true
		}
	}
	return 0, 0, false
}

func popcnt4(m int) int {
	m = m&5 + m>>1&5
	return m&3 + m>>2&3
}

// detectChain decides whether v (a truth table over len(pins) pins, with
// minterm bit j addressed by pins[j]) is a read-once AND/XOR chain with
// complements, by peeling the outermost connective: an XOR edge on pin p
// means the two cofactors are complementary; an AND edge means one
// cofactor is constant (the constant is the edge complement). The
// surviving cofactor is the sub-chain, recursively. OR edges need no
// separate case — De Morgan turns them into AND edges with complements,
// which the x and e bits absorb.
func detectChain(v uint16, pins []uint8) (perm [4]uint8, x, e, ops uint16, ok bool) {
	k := len(pins)
	if k == 1 {
		switch v & 3 {
		case 2: // f = a
			perm[0] = pins[0]
			return perm, 0, 0, 0, true
		case 1: // f = ~a
			perm[0] = pins[0]
			return perm, 1, 0, 0, true
		}
		return perm, 0, 0, 0, false
	}
	rn := 1 << uint(k-1)
	rmask := uint16(1)<<uint(rn) - 1
	for j := 0; j < k; j++ {
		var cof [2]uint16
		for mm := 0; mm < rn; mm++ {
			low := mm & (1<<uint(j) - 1)
			high := mm >> uint(j) << uint(j+1)
			for b := 0; b < 2; b++ {
				m := high | b<<uint(j) | low
				cof[b] |= v >> uint(m) & 1 << uint(mm)
			}
		}
		var sub [4]uint8
		copy(sub[:], pins[:j])
		copy(sub[j:], pins[j+1:])
		try := func(g uint16, eBit, xBit, opBit uint16) bool {
			sp, sx, se, sops, sok := detectChain(g, sub[:k-1])
			if !sok {
				return false
			}
			perm = sp
			perm[k-1] = pins[j]
			x = sx | xBit<<uint(k-1)
			e = se | eBit<<uint(k-2)
			ops = sops | opBit<<uint(k-2)
			return true
		}
		if cof[0] == cof[1]^rmask && try(cof[0], 0, 0, 1) {
			return perm, x, e, ops, true
		}
		// AND edge, pin uncomplemented: f|pin=0 is the edge constant.
		if cof[0] == 0 && try(cof[1], 0, 0, 0) {
			return perm, x, e, ops, true
		}
		if cof[0] == rmask && try(cof[1]^rmask, 1, 0, 0) {
			return perm, x, e, ops, true
		}
		// AND edge, pin complemented: f|pin=1 is the edge constant.
		if cof[1] == 0 && try(cof[0], 0, 1, 0) {
			return perm, x, e, ops, true
		}
		if cof[1] == rmask && try(cof[0]^rmask, 1, 1, 0) {
			return perm, x, e, ops, true
		}
	}
	return perm, 0, 0, 0, false
}

// detectTree decides whether a 4-input table is a balanced two-level
// read-once formula (g1(p0,p1) opTop g2(p2,p3))^eTop. Viewing the table
// as a 4x4 matrix M[left minterm][right minterm]: under an XOR top every
// row is B or ~B; under an AND top every row is 0 or B. The row pattern
// determines g1, the common row determines g2, and each factor must
// itself be a 2-pin chain.
func detectTree(v uint16) (uint16, bool) {
	parts := [3][4]uint8{{0, 1, 2, 3}, {0, 2, 1, 3}, {0, 3, 1, 2}}
	for _, p := range parts {
		var rows [4]uint16
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				m := i&1<<p[0] | i>>1<<p[1] | j&1<<p[2] | j>>1<<p[3]
				rows[i] |= v >> uint(m) & 1 << uint(j)
			}
		}
		// XOR top: rows[i] = B ^ (A_i ? 15 : 0); eTop folds into B.
		{
			B := rows[0]
			A := uint16(0)
			good := true
			for i := 1; i < 4; i++ {
				switch rows[i] {
				case B:
				case B ^ 15:
					A |= 1 << uint(i)
				default:
					good = false
				}
			}
			if good {
				if m, ok := encodeTree(A, B, 1, 0, p); ok {
					return m, true
				}
			}
		}
		// AND top: rows of v (eTop=0) or ~v (eTop=1) are 0 or B.
		for eTop := uint16(0); eTop < 2; eTop++ {
			var A, B uint16
			good := true
			for i := 0; i < 4; i++ {
				r := rows[i]
				if eTop == 1 {
					r ^= 15
				}
				if r == 0 {
					continue
				}
				if B == 0 {
					B = r
				}
				if r != B {
					good = false
				}
				A |= 1 << uint(i)
			}
			if good && B != 0 {
				if m, ok := encodeTree(A, B, 0, eTop, p); ok {
					return m, true
				}
			}
		}
	}
	return 0, false
}

// encodeTree packs a verified tree decomposition, factoring each 2-pin
// side through detectChain (which supplies the side's connective,
// complements and pin order).
func encodeTree(A, B uint16, opTop, eTop uint16, p [4]uint8) (uint16, bool) {
	lperm, lx, le, lops, lok := detectChain(A, []uint8{p[0], p[1]})
	if !lok {
		return 0, false
	}
	rperm, rx, re, rops, rok := detectChain(B, []uint8{p[2], p[3]})
	if !rok {
		return 0, false
	}
	perm := [4]uint8{lperm[0], lperm[1], rperm[0], rperm[1]}
	msk := lx&3 | rx&3<<2 | le&1<<4 | re&1<<5 | eTop<<6 |
		lops&1<<7 | rops&1<<8 | opTop<<9 | permIndex(perm)<<10
	return msk, true
}

// detectMaj decides whether a 3-input table is a majority function with
// complements on inputs and output. Majority is the one common mapped
// 3-input shape that no read-once decomposition covers (every input is
// read twice); carry chains are full of it.
func detectMaj(v uint16) (uint16, bool) {
	for params := 0; params < 16; params++ {
		good := true
		for m := 0; m < 8 && good; m++ {
			a := m&1 ^ params&1
			b := m>>1&1 ^ params>>1&1
			c := m>>2&1 ^ params>>2&1
			maj := (a&b | (a|b)&c) ^ params>>3&1
			if maj != int(v>>uint(m)&1) {
				good = false
			}
		}
		if good {
			return uint16(params), true
		}
	}
	return 0, false
}

// detectSplit4 decides whether one pin of a 4-input table enters through
// a top-level AND or XOR connective — the residual 3-input function g is
// arbitrary (its 8 pair bits ride in the descriptor and the kernel
// rebuilds its table in registers). The cofactor tests mirror
// detectChain: an XOR pin means complementary cofactors (the edge
// complement folds into g), an AND pin means one constant cofactor.
// Mapped netlists are full of this shape — a mux or sum term gated by an
// enable, or a parity tap off an arbitrary cone.
func detectSplit4(v uint16) (uint16, bool) {
	enc := func(g uint16, j int, xw, op, e uint16) uint16 {
		var perm [4]uint8
		qi := 0
		for p := 0; p < 4; p++ {
			if p != j {
				perm[qi] = uint8(p)
				qi++
			}
		}
		perm[3] = uint8(j)
		return pairBits(g, 3) | xw<<8 | op<<9 | permIndex(perm)<<10 | e<<15
	}
	for j := 0; j < 4; j++ {
		var cof [2]uint16
		for mm := 0; mm < 8; mm++ {
			low := mm & (1<<uint(j) - 1)
			high := mm >> uint(j) << uint(j+1)
			for b := 0; b < 2; b++ {
				m := high | b<<uint(j) | low
				cof[b] |= v >> uint(m) & 1 << uint(mm)
			}
		}
		switch {
		case cof[0] == cof[1]^0xff: // f = g ^ p
			return enc(cof[0], j, 0, 1, 0), true
		case cof[0] == 0: // f = g & p
			return enc(cof[1], j, 0, 0, 0), true
		case cof[0] == 0xff: // f = g | ~p = ~(~g & ~p)
			return enc(cof[1]^0xff, j, 0, 0, 1), true
		case cof[1] == 0: // f = g & ~p
			return enc(cof[0], j, 1, 0, 0), true
		case cof[1] == 0xff: // f = g | p = ~(~g & p)
			return enc(cof[0]^0xff, j, 1, 0, 1), true
		}
	}
	return 0, false
}

// detectMux decides whether a 3-input table is a 2:1 mux
// (s ? a^xa : b^xb)^inv under some assignment of pins to roles.
func detectMux(v uint16) (uint16, bool) {
	for si := 0; si < 3; si++ {
		for ai := 0; ai < 3; ai++ {
			if ai == si {
				continue
			}
			bi := 3 - si - ai
			for params := 0; params < 8; params++ {
				xa, xb, inv := params&1, params>>1&1, params>>2&1
				good := true
				for m := 0; m < 8 && good; m++ {
					sv := m >> uint(si) & 1
					av := m>>uint(ai)&1 ^ xa
					bv := m>>uint(bi)&1 ^ xb
					r := bv
					if sv == 1 {
						r = av
					}
					if r^inv != int(v>>uint(m)&1) {
						good = false
					}
				}
				if good {
					perm := [4]uint8{uint8(si), uint8(ai), uint8(bi), 3}
					return uint16(xa) | uint16(xb)<<1 | uint16(inv)<<2 | permIndex(perm)<<10, true
				}
			}
		}
	}
	return 0, false
}
