package sim

// Evaluation passes of the execution core. Every pass is expressed as a
// half-open range [lo, hi) over its node schedule so the level-parallel
// pool (parallel.go) can hand contiguous chunks of one topological level
// to different goroutines; serial evaluation is the full-range call.
//
// Three passes exist:
//
//   - evalXRange: the fused fast path over xnodes — pairs of
//     single-fanout LUT chains collapsed into one two-table kernel
//     (fused.go), everything else mirroring the plain program;
//   - evalPlainRange: the plain one-LUT-per-kernel program, used with
//     fusion ablated (SetFusion(false)) and as the fallback schedule;
//   - evalHookedRange: the plain program plus the per-node override,
//     lane-fault and lane-patch hooks — the fault- and repair-parallel
//     pass. Kept separate so the unperturbed paths pay nothing for the
//     hooks.
//
// Each pass comes in a width-1 specialization (one uint64 per net,
// bit-identical to the pre-vector engine) and a stride-W loop that
// amortizes kernel dispatch over the whole lane vector: the opcode
// switch, table slicing and fanin index arithmetic are paid once per
// node, then W words stream through straight-line word arithmetic.

import "unsafe"

// vec4 is the unit the block kernels work in: four words of one net's
// lane vector, addressed as a fixed-size array so the kernel bodies are
// straight-line word arithmetic with constant indices and no per-element
// bounds checks — the difference between a ~1.3x and a >2x vector win.
type vec4 = [4]uint64

func (m *Machine) evalPlainRange(lo, hi int32, buf []uint64) {
	switch {
	case m.width == 1:
		m.evalPlainRange1(lo, hi, buf)
	case m.width%4 == 0:
		m.evalPlainRangeB(lo, hi, buf)
	default:
		m.evalPlainRangeW(lo, hi, buf)
	}
}

func (m *Machine) evalPlainRange1(lo, hi int32, buf []uint64) {
	v := m.val
	fan := m.fanin
	ttab := m.ttab
	nodes := m.nodes
	for i := lo; i < hi; i++ {
		n := nodes[i]
		s := n.start
		switch n.op {
		case opTT2, opXor2, opChain2:
			v[n.out] = evalTab2(ttab[n.aux:n.aux+4:n.aux+4], v[fan[s]], v[fan[s+1]])
		case opTT3, opXor3, opChain3, opMux3, opMaj3:
			v[n.out] = evalTab3(ttab[n.aux:n.aux+8:n.aux+8], v[fan[s]], v[fan[s+1]], v[fan[s+2]])
		case opTT4, opXor4, opChain4, opTree4, opSplit4:
			v[n.out] = evalTab4(ttab[n.aux:n.aux+16:n.aux+16], v[fan[s]], v[fan[s+1]], v[fan[s+2]], v[fan[s+3]])
		case opTT1:
			v[n.out] = evalTab1(ttab[n.aux:n.aux+2:n.aux+2], v[fan[s]])
		case opConst:
			v[n.out] = -uint64(n.tt & 1)
		default: // opCover
			b := buf[:n.nin]
			for j := int32(0); j < n.nin; j++ {
				b[j] = v[fan[s+j]]
			}
			v[n.out] = m.covers[n.aux].EvalWords(b)
		}
	}
}

func (m *Machine) evalPlainRangeW(lo, hi int32, buf []uint64) {
	W := m.width
	v := m.val
	fan := m.fanin
	ttab := m.ttab
	nodes := m.nodes
	for i := lo; i < hi; i++ {
		n := nodes[i]
		s := n.start
		o := int(n.out) * W
		switch n.op {
		case opTT2, opXor2, opChain2:
			t := ttab[n.aux : n.aux+4 : n.aux+4]
			a := int(fan[s]) * W
			b := int(fan[s+1]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab2(t, v[a+w], v[b+w])
			}
		case opTT3, opXor3, opChain3, opMux3, opMaj3:
			t := ttab[n.aux : n.aux+8 : n.aux+8]
			a := int(fan[s]) * W
			b := int(fan[s+1]) * W
			c := int(fan[s+2]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab3(t, v[a+w], v[b+w], v[c+w])
			}
		case opTT4, opXor4, opChain4, opTree4, opSplit4:
			t := ttab[n.aux : n.aux+16 : n.aux+16]
			a := int(fan[s]) * W
			b := int(fan[s+1]) * W
			c := int(fan[s+2]) * W
			d := int(fan[s+3]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab4(t, v[a+w], v[b+w], v[c+w], v[d+w])
			}
		case opTT1:
			t := ttab[n.aux : n.aux+2 : n.aux+2]
			a := int(fan[s]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab1(t, v[a+w])
			}
		case opConst:
			cw := -uint64(n.tt & 1)
			for w := 0; w < W; w++ {
				v[o+w] = cw
			}
		default: // opCover
			cv := &m.covers[n.aux]
			b := buf[:n.nin]
			for w := 0; w < W; w++ {
				for j := int32(0); j < n.nin; j++ {
					b[j] = v[int(fan[s+j])*W+w]
				}
				v[o+w] = cv.EvalWords(b)
			}
		}
	}
}

func (m *Machine) evalXRange(lo, hi int32, buf []uint64) {
	switch {
	case m.width == 1:
		m.evalXRange1(lo, hi, buf)
	case m.width%4 == 0:
		m.evalXRangeB(lo, hi, buf)
	default:
		m.evalXRangeW(lo, hi, buf)
	}
}

func (m *Machine) evalXRange1(lo, hi int32, buf []uint64) {
	v := m.val
	fan := m.fanin
	xf := m.xfan
	ttab := m.ttab
	nodes := m.xnodes
	for i := lo; i < hi; i++ {
		n := nodes[i]
		s := n.start
		switch n.op {
		case opTT2, opXor2, opChain2:
			v[n.out] = evalTab2(ttab[n.aux:n.aux+4:n.aux+4], v[fan[s]], v[fan[s+1]])
		case opFused2:
			a, b := v[xf[s]], v[xf[s+1]]
			v[n.out2] = evalTab2(ttab[n.aux2:n.aux2+4:n.aux2+4], a, b)
			v[n.out] = evalTab2(ttab[n.aux:n.aux+4:n.aux+4], a, b)
		case opTT3, opXor3, opChain3, opMux3, opMaj3:
			v[n.out] = evalTab3(ttab[n.aux:n.aux+8:n.aux+8], v[fan[s]], v[fan[s+1]], v[fan[s+2]])
		case opFused3:
			a, b, c := v[xf[s]], v[xf[s+1]], v[xf[s+2]]
			v[n.out2] = evalTab3(ttab[n.aux2:n.aux2+8:n.aux2+8], a, b, c)
			v[n.out] = evalTab3(ttab[n.aux:n.aux+8:n.aux+8], a, b, c)
		case opTT4, opXor4, opChain4, opTree4, opSplit4:
			v[n.out] = evalTab4(ttab[n.aux:n.aux+16:n.aux+16], v[fan[s]], v[fan[s+1]], v[fan[s+2]], v[fan[s+3]])
		case opFused4:
			a, b, c, d := v[xf[s]], v[xf[s+1]], v[xf[s+2]], v[xf[s+3]]
			v[n.out2] = evalTab4(ttab[n.aux2:n.aux2+16:n.aux2+16], a, b, c, d)
			v[n.out] = evalTab4(ttab[n.aux:n.aux+16:n.aux+16], a, b, c, d)
		case opTT1:
			v[n.out] = evalTab1(ttab[n.aux:n.aux+2:n.aux+2], v[fan[s]])
		case opFused1:
			a := v[xf[s]]
			v[n.out2] = evalTab1(ttab[n.aux2:n.aux2+2:n.aux2+2], a)
			v[n.out] = evalTab1(ttab[n.aux:n.aux+2:n.aux+2], a)
		case opConst:
			v[n.out] = -uint64(n.tt & 1)
		default: // opCover
			b := buf[:n.nin]
			for j := int32(0); j < n.nin; j++ {
				b[j] = v[fan[s+j]]
			}
			v[n.out] = m.covers[n.aux].EvalWords(b)
		}
	}
}

func (m *Machine) evalXRangeW(lo, hi int32, buf []uint64) {
	W := m.width
	v := m.val
	fan := m.fanin
	xf := m.xfan
	ttab := m.ttab
	nodes := m.xnodes
	for i := lo; i < hi; i++ {
		n := nodes[i]
		s := n.start
		o := int(n.out) * W
		switch n.op {
		case opTT2, opXor2, opChain2:
			t := ttab[n.aux : n.aux+4 : n.aux+4]
			a := int(fan[s]) * W
			b := int(fan[s+1]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab2(t, v[a+w], v[b+w])
			}
		case opFused2:
			t := ttab[n.aux : n.aux+4 : n.aux+4]
			t2 := ttab[n.aux2 : n.aux2+4 : n.aux2+4]
			a := int(xf[s]) * W
			b := int(xf[s+1]) * W
			o2 := int(n.out2) * W
			for w := 0; w < W; w++ {
				av, bv := v[a+w], v[b+w]
				v[o2+w] = evalTab2(t2, av, bv)
				v[o+w] = evalTab2(t, av, bv)
			}
		case opTT3, opXor3, opChain3, opMux3, opMaj3:
			t := ttab[n.aux : n.aux+8 : n.aux+8]
			a := int(fan[s]) * W
			b := int(fan[s+1]) * W
			c := int(fan[s+2]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab3(t, v[a+w], v[b+w], v[c+w])
			}
		case opFused3:
			t := ttab[n.aux : n.aux+8 : n.aux+8]
			t2 := ttab[n.aux2 : n.aux2+8 : n.aux2+8]
			a := int(xf[s]) * W
			b := int(xf[s+1]) * W
			c := int(xf[s+2]) * W
			o2 := int(n.out2) * W
			for w := 0; w < W; w++ {
				av, bv, cv := v[a+w], v[b+w], v[c+w]
				v[o2+w] = evalTab3(t2, av, bv, cv)
				v[o+w] = evalTab3(t, av, bv, cv)
			}
		case opTT4, opXor4, opChain4, opTree4, opSplit4:
			t := ttab[n.aux : n.aux+16 : n.aux+16]
			a := int(fan[s]) * W
			b := int(fan[s+1]) * W
			c := int(fan[s+2]) * W
			d := int(fan[s+3]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab4(t, v[a+w], v[b+w], v[c+w], v[d+w])
			}
		case opFused4:
			t := ttab[n.aux : n.aux+16 : n.aux+16]
			t2 := ttab[n.aux2 : n.aux2+16 : n.aux2+16]
			a := int(xf[s]) * W
			b := int(xf[s+1]) * W
			c := int(xf[s+2]) * W
			d := int(xf[s+3]) * W
			o2 := int(n.out2) * W
			for w := 0; w < W; w++ {
				av, bv, cv, dv := v[a+w], v[b+w], v[c+w], v[d+w]
				v[o2+w] = evalTab4(t2, av, bv, cv, dv)
				v[o+w] = evalTab4(t, av, bv, cv, dv)
			}
		case opTT1:
			t := ttab[n.aux : n.aux+2 : n.aux+2]
			a := int(fan[s]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab1(t, v[a+w])
			}
		case opFused1:
			t := ttab[n.aux : n.aux+2 : n.aux+2]
			t2 := ttab[n.aux2 : n.aux2+2 : n.aux2+2]
			a := int(xf[s]) * W
			o2 := int(n.out2) * W
			for w := 0; w < W; w++ {
				av := v[a+w]
				v[o2+w] = evalTab1(t2, av)
				v[o+w] = evalTab1(t, av)
			}
		case opConst:
			cw := -uint64(n.tt & 1)
			for w := 0; w < W; w++ {
				v[o+w] = cw
			}
		default: // opCover
			cv := &m.covers[n.aux]
			b := buf[:n.nin]
			for w := 0; w < W; w++ {
				for j := int32(0); j < n.nin; j++ {
					b[j] = v[int(fan[s+j])*W+w]
				}
				v[o+w] = cv.EvalWords(b)
			}
		}
	}
}

// evalHookedRange is the perturbed pass: the plain program with the
// per-node override, lane-mutation and lane-patch hooks. The opcode
// dispatch is shared across the lane vector like the other stride-W
// loops; the hooks then touch only the specific lane words their masks
// address.
func (m *Machine) evalHookedRange(lo, hi int32, buf []uint64) {
	W := m.width
	v := m.val
	fan := m.fanin
	ttab := m.ttab
	nodes := m.nodes
	for i := lo; i < hi; i++ {
		n := nodes[i]
		s := n.start
		o := int(n.out) * W
		switch n.op {
		case opTT2, opXor2, opChain2:
			t := ttab[n.aux : n.aux+4 : n.aux+4]
			a := int(fan[s]) * W
			b := int(fan[s+1]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab2(t, v[a+w], v[b+w])
			}
		case opTT3, opXor3, opChain3, opMux3, opMaj3:
			t := ttab[n.aux : n.aux+8 : n.aux+8]
			a := int(fan[s]) * W
			b := int(fan[s+1]) * W
			c := int(fan[s+2]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab3(t, v[a+w], v[b+w], v[c+w])
			}
		case opTT4, opXor4, opChain4, opTree4, opSplit4:
			t := ttab[n.aux : n.aux+16 : n.aux+16]
			a := int(fan[s]) * W
			b := int(fan[s+1]) * W
			c := int(fan[s+2]) * W
			d := int(fan[s+3]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab4(t, v[a+w], v[b+w], v[c+w], v[d+w])
			}
		case opTT1:
			t := ttab[n.aux : n.aux+2 : n.aux+2]
			a := int(fan[s]) * W
			for w := 0; w < W; w++ {
				v[o+w] = evalTab1(t, v[a+w])
			}
		case opConst:
			cw := -uint64(n.tt & 1)
			for w := 0; w < W; w++ {
				v[o+w] = cw
			}
		default: // opCover
			cv := &m.covers[n.aux]
			b := buf[:n.nin]
			for w := 0; w < W; w++ {
				for j := int32(0); j < n.nin; j++ {
					b[j] = v[int(fan[s+j])*W+w]
				}
				v[o+w] = cv.EvalWords(b)
			}
		}
		if m.ovIdx != nil {
			if ov := m.ovIdx[n.out]; ov >= 0 {
				copy(v[o:o+W], m.ovVal[int(ov)*W:int(ov)*W+W])
			}
		}
		if m.mutOf != nil {
			if mi := m.mutOf[i]; mi >= 0 {
				for _, mut := range m.mutLists[mi] {
					w := o + int(mut.word)
					v[w] = m.applyNodeMut(v[w], &nodes[i], mut)
				}
			}
		}
		if m.patchOf != nil {
			if pi := m.patchOf[i]; pi >= 0 {
				for _, p := range m.patchLists[pi] {
					w := o + int(p.word)
					v[w] = m.applyNodePatch(v[w], &nodes[i], p)
				}
			}
		}
	}
}

// evalPlainRangeB is the block specialization of the plain pass for any
// width divisible by four: each node pays its opcode dispatch and table
// slicing once, then streams the lane vector through the four-word block
// kernels in kernels4.go in W/4 calls. At W=4 the block loop collapses to
// a single kernel call per node; wider machines amortize the dispatch
// over more words.
func (m *Machine) evalPlainRangeB(lo, hi int32, buf []uint64) {
	W := m.width
	v := m.val
	// Every block below is addressed as base + 8·(net·W + x) with
	// net < len(nl.Nets), x ≤ W-4 and len(val) = len(nl.Nets)·W, so all
	// four words of each vec4 are in bounds by construction; unsafe.Add
	// just spares the hot loop one bounds check and one slice-to-array
	// length check per operand per block.
	base := unsafe.Pointer(&v[0])
	fanB := m.fanB
	outB := m.outB
	nodes := m.nodes
	for i := lo; i < hi; i++ {
		n := nodes[i]
		s := n.start
		o := int(outB[i])
		switch n.op {
		case opTT2:
			a := int(fanB[s])
			b := int(fanB[s+1])
			for x := 0; x < W; x += 4 {
				evalTab2r(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opTT3:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			for x := 0; x < W; x += 4 {
				evalTab3r(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opTT4:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			d := int(fanB[s+3])
			for x := 0; x < W; x += 4 {
				evalTab4r(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opTT1:
			a := int(fanB[s])
			for x := 0; x < W; x += 4 {
				evalTab1r(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opXor2:
			a := int(fanB[s])
			b := int(fanB[s+1])
			for x := 0; x < W; x += 4 {
				evalXor2x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opXor3:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			for x := 0; x < W; x += 4 {
				evalXor3x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opXor4:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			d := int(fanB[s+3])
			for x := 0; x < W; x += 4 {
				evalXor4x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opChain2:
			p := &permTab[n.msk>>10]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			for x := 0; x < W; x += 4 {
				evalChain2x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opChain3:
			p := &permTab[n.msk>>10]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			c := int(fanB[s+int32(p[2])])
			for x := 0; x < W; x += 4 {
				evalChain3x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opChain4:
			p := &permTab[n.msk>>10]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			c := int(fanB[s+int32(p[2])])
			d := int(fanB[s+int32(p[3])])
			for x := 0; x < W; x += 4 {
				evalChain4x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opTree4:
			p := &permTab[n.msk>>10]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			c := int(fanB[s+int32(p[2])])
			d := int(fanB[s+int32(p[3])])
			for x := 0; x < W; x += 4 {
				evalTree4x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opMux3:
			p := &permTab[n.msk>>10]
			sn := int(fanB[s+int32(p[0])])
			a := int(fanB[s+int32(p[1])])
			b := int(fanB[s+int32(p[2])])
			for x := 0; x < W; x += 4 {
				evalMux3x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(sn+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opMaj3:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			for x := 0; x < W; x += 4 {
				evalMaj3x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opSplit4:
			p := &permTab[n.msk>>10&31]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			c := int(fanB[s+int32(p[2])])
			d := int(fanB[s+int32(p[3])])
			for x := 0; x < W; x += 4 {
				evalSplit4x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opConst:
			cw := -uint64(n.tt & 1)
			for w := 0; w < W; w++ {
				v[o+w] = cw
			}
		default: // opCover
			cv := &m.covers[n.aux]
			b := buf[:n.nin]
			for w := 0; w < W; w++ {
				for j := int32(0); j < n.nin; j++ {
					b[j] = v[int(fanB[s+j])+w]
				}
				v[o+w] = cv.EvalWords(b)
			}
		}
	}
}

// evalXRangeB is the block specialization of the fused fast path for any
// width divisible by four; see evalPlainRangeB. Fused kernels write the
// head word block before the tail block so a probe or register tap on the
// head net observes exactly what the plain program would have produced.
func (m *Machine) evalXRangeB(lo, hi int32, buf []uint64) {
	W := m.width
	v := m.val
	base := unsafe.Pointer(&v[0]) // in bounds by construction; see evalPlainRangeB
	fanB := m.fanB
	xfB := m.xfanB
	xoutB := m.xoutB
	xout2B := m.xout2B
	ttab := m.ttab
	nodes := m.xnodes
	for i := lo; i < hi; i++ {
		n := nodes[i]
		s := n.start
		o := int(xoutB[i])
		switch n.op {
		case opTT2:
			a := int(fanB[s])
			b := int(fanB[s+1])
			for x := 0; x < W; x += 4 {
				evalTab2r(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opFused2:
			t := ttab[n.aux : n.aux+4 : n.aux+4]
			t2 := ttab[n.aux2 : n.aux2+4 : n.aux2+4]
			a := int(xfB[s])
			b := int(xfB[s+1])
			o2 := int(xout2B[i])
			for x := 0; x < W; x += 4 {
				av := (*vec4)(unsafe.Add(base, uintptr(a+x)<<3))
				bv := (*vec4)(unsafe.Add(base, uintptr(b+x)<<3))
				evalTab2x4(t2, av, bv, (*vec4)(unsafe.Add(base, uintptr(o2+x)<<3)))
				evalTab2x4(t, av, bv, (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opTT3:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			for x := 0; x < W; x += 4 {
				evalTab3r(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opFused3:
			t := ttab[n.aux : n.aux+8 : n.aux+8]
			t2 := ttab[n.aux2 : n.aux2+8 : n.aux2+8]
			a := int(xfB[s])
			b := int(xfB[s+1])
			c := int(xfB[s+2])
			o2 := int(xout2B[i])
			for x := 0; x < W; x += 4 {
				av := (*vec4)(unsafe.Add(base, uintptr(a+x)<<3))
				bv := (*vec4)(unsafe.Add(base, uintptr(b+x)<<3))
				cv := (*vec4)(unsafe.Add(base, uintptr(c+x)<<3))
				evalTab3x4(t2, av, bv, cv, (*vec4)(unsafe.Add(base, uintptr(o2+x)<<3)))
				evalTab3x4(t, av, bv, cv, (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opTT4:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			d := int(fanB[s+3])
			for x := 0; x < W; x += 4 {
				evalTab4r(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opFused4:
			t := ttab[n.aux : n.aux+16 : n.aux+16]
			t2 := ttab[n.aux2 : n.aux2+16 : n.aux2+16]
			a := int(xfB[s])
			b := int(xfB[s+1])
			c := int(xfB[s+2])
			d := int(xfB[s+3])
			o2 := int(xout2B[i])
			for x := 0; x < W; x += 4 {
				av := (*vec4)(unsafe.Add(base, uintptr(a+x)<<3))
				bv := (*vec4)(unsafe.Add(base, uintptr(b+x)<<3))
				cv := (*vec4)(unsafe.Add(base, uintptr(c+x)<<3))
				dv := (*vec4)(unsafe.Add(base, uintptr(d+x)<<3))
				evalTab4x4(t2, av, bv, cv, dv, (*vec4)(unsafe.Add(base, uintptr(o2+x)<<3)))
				evalTab4x4(t, av, bv, cv, dv, (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opTT1:
			a := int(fanB[s])
			for x := 0; x < W; x += 4 {
				evalTab1r(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opFused1:
			t := ttab[n.aux : n.aux+2 : n.aux+2]
			t2 := ttab[n.aux2 : n.aux2+2 : n.aux2+2]
			a := int(xfB[s])
			o2 := int(xout2B[i])
			for x := 0; x < W; x += 4 {
				av := (*vec4)(unsafe.Add(base, uintptr(a+x)<<3))
				evalTab1x4(t2, av, (*vec4)(unsafe.Add(base, uintptr(o2+x)<<3)))
				evalTab1x4(t, av, (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opXor2:
			a := int(fanB[s])
			b := int(fanB[s+1])
			for x := 0; x < W; x += 4 {
				evalXor2x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opXor3:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			for x := 0; x < W; x += 4 {
				evalXor3x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opXor4:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			d := int(fanB[s+3])
			for x := 0; x < W; x += 4 {
				evalXor4x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opChain2:
			p := &permTab[n.msk>>10]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			for x := 0; x < W; x += 4 {
				evalChain2x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opChain3:
			p := &permTab[n.msk>>10]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			c := int(fanB[s+int32(p[2])])
			for x := 0; x < W; x += 4 {
				evalChain3x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opChain4:
			p := &permTab[n.msk>>10]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			c := int(fanB[s+int32(p[2])])
			d := int(fanB[s+int32(p[3])])
			for x := 0; x < W; x += 4 {
				evalChain4x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opTree4:
			p := &permTab[n.msk>>10]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			c := int(fanB[s+int32(p[2])])
			d := int(fanB[s+int32(p[3])])
			for x := 0; x < W; x += 4 {
				evalTree4x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opMux3:
			p := &permTab[n.msk>>10]
			sn := int(fanB[s+int32(p[0])])
			a := int(fanB[s+int32(p[1])])
			b := int(fanB[s+int32(p[2])])
			for x := 0; x < W; x += 4 {
				evalMux3x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(sn+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opMaj3:
			a := int(fanB[s])
			b := int(fanB[s+1])
			c := int(fanB[s+2])
			for x := 0; x < W; x += 4 {
				evalMaj3x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opSplit4:
			p := &permTab[n.msk>>10&31]
			a := int(fanB[s+int32(p[0])])
			b := int(fanB[s+int32(p[1])])
			c := int(fanB[s+int32(p[2])])
			d := int(fanB[s+int32(p[3])])
			for x := 0; x < W; x += 4 {
				evalSplit4x4(n.msk, (*vec4)(unsafe.Add(base, uintptr(a+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(b+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(c+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(d+x)<<3)), (*vec4)(unsafe.Add(base, uintptr(o+x)<<3)))
			}
		case opConst:
			cw := -uint64(n.tt & 1)
			for w := 0; w < W; w++ {
				v[o+w] = cw
			}
		default: // opCover
			cv := &m.covers[n.aux]
			b := buf[:n.nin]
			for w := 0; w < W; w++ {
				for j := int32(0); j < n.nin; j++ {
					b[j] = v[int(fanB[s+j])+w]
				}
				v[o+w] = cv.EvalWords(b)
			}
		}
	}
}
