package sim

import (
	"sync"
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/testgen"
)

// forkDesign is a small sequential circuit: a toggling counter bit gated
// by an enable, plus a combinational output.
func forkDesign(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("fork")
	en := nl.AddPI("en")
	d := nl.AddPI("d")
	q := nl.AddNet("q")
	x := nl.AddNet("x")
	o := nl.AddNet("o")
	nl.MustAddLUT("next", logic.XorN(2), []netlist.NetID{en, q}, x)
	nl.MustAddDFF("ff", x, q, 0)
	nl.MustAddLUT("out", logic.AndN(2), []netlist.NetID{d, q}, o)
	nl.MarkPO(o)
	if err := nl.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestForkMatchesParent(t *testing.T) {
	nl := forkDesign(t)
	parent, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.RandomBlocks(2, 32, 7)
	want := parent.RunTrace(stim)

	fork := parent.Fork()
	got := fork.RunTrace(stim)
	if got.Cycles != want.Cycles || got.NumPOs != want.NumPOs {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.Cycles, got.NumPOs, want.Cycles, want.NumPOs)
	}
	for i := range want.Outs {
		if got.Outs[i] != want.Outs[i] {
			t.Fatalf("output word %d differs: %#x vs %#x", i, got.Outs[i], want.Outs[i])
		}
	}
}

func TestForkIsolation(t *testing.T) {
	nl := forkDesign(t)
	parent, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	f1 := parent.Fork()
	f2 := parent.Fork()

	// Configure f1 aggressively: probes, overrides, a partial binding.
	q, _ := nl.NetByName("q")
	if err := f1.Probe(q); err != nil {
		t.Fatal(err)
	}
	if err := f1.SetOverride(q, ^uint64(0)); err != nil {
		t.Fatal(err)
	}
	if err := f1.BindNames([]string{"d"}); err != nil {
		t.Fatal(err)
	}
	f1.RunTrace(testgen.RandomBlocks(1, 8, 1))

	// f2 must behave exactly like a fresh compile.
	fresh, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.RandomBlocks(2, 16, 3)
	want := fresh.RunTrace(stim)
	got := f2.RunTrace(stim)
	for i := range want.Outs {
		if got.Outs[i] != want.Outs[i] {
			t.Fatalf("fork polluted by sibling state at word %d", i)
		}
	}
}

func TestForkConcurrent(t *testing.T) {
	nl := forkDesign(t)
	parent, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	stim := testgen.RandomBlocks(2, 64, 11)
	want := parent.Fork().RunTrace(stim)

	const workers = 8
	var wg sync.WaitGroup
	errs := make([]bool, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := parent.Fork().RunTrace(stim)
			for i := range want.Outs {
				if tr.Outs[i] != want.Outs[i] {
					errs[w] = true
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, bad := range errs {
		if bad {
			t.Fatalf("concurrent fork %d diverged", w)
		}
	}
}
