package faults

// The transient/intermittent SEU model: a fault armed only for a cycle
// window [From, To). The lane engine needs nothing new — Fault.Lane
// carries the window and the execution core gates every lane mutation on
// its per-cycle counter — so Scan handles windowed faults natively, at
// unchanged batch cost. What this file adds is the windowed universe
// sampler and the serial differential oracle: a two-machine lockstep
// that runs the golden program outside the window and the recompiled
// permanent mutant inside it, handing the flip-flop state across each
// boundary, so corrupted state captured during the window propagates
// exactly as the lane engine's gated perturbation does.

import (
	"fmt"
	"math/rand"

	"fpgadbg/internal/sim"
)

// WindowUniverse derives a windowed-SEU fault list: maxFaults sites
// drawn deterministically from u (stride-sampled, preserving kind mix),
// each armed for a winLen-cycle window at a seeded random offset within
// a cycles-long stimulus. winLen is clamped to [1, cycles]; windows
// always fit within [0, cycles). Offsets of 0 are legal (To > 0 marks
// the fault windowed even when From == 0).
func WindowUniverse(u []Fault, cycles, winLen, maxFaults int, seed int64) []Fault {
	if len(u) == 0 || cycles < 1 || maxFaults < 1 {
		return nil
	}
	if winLen < 1 {
		winLen = 1
	}
	if winLen > cycles {
		winLen = cycles
	}
	if maxFaults > len(u) {
		maxFaults = len(u)
	}
	r := rand.New(rand.NewSource(seed))
	stride := len(u) / maxFaults
	if stride < 1 {
		stride = 1
	}
	out := make([]Fault, 0, maxFaults)
	for i := 0; i < len(u) && len(out) < maxFaults; i += stride {
		f := u[i]
		f.From = int32(r.Intn(cycles - winLen + 1))
		f.To = f.From + int32(winLen)
		out = append(out, f)
	}
	return out
}

// SerialWindowScan computes windowed-fault outcomes one mutant at a
// time — the differential oracle for Scan over windowed faults. Per
// fault it compiles the permanent mutant (clone+Apply+recompile; source
// stuck-ats run as overrides on a golden fork) and splices it into the
// golden stream: golden machine for cycles [0, From), mutant for
// [From, To), golden again for [To, end), with the flip-flop state
// handed across each boundary via StateWords/SetStateWords. Fault.Apply
// preserves the DFF population and order (no mutation adds or removes a
// flip-flop), so state snapshots transfer between the two compiles
// verbatim. Outcomes must be bit-identical to the lane engine's.
func SerialWindowScan(prog *sim.Machine, fs []Fault, cfg ScanConfig) ([]ScanResult, error) {
	cfg = cfg.withDefaults()
	stim := cfg.Stimulus(len(prog.PIOrder()))
	golden := prog.Netlist()
	gt := prog.Fork().RunTrace(stim)
	// The lockstep runs at width 1 on both sides: recompiled mutants are
	// width-1 machines, and state snapshots only transfer between
	// machines of equal width. The broadcast stimulus makes word-0
	// comparison against the wide golden trace exact.
	gm, err := sim.Compile(golden)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	out := make([]ScanResult, 0, len(fs))
	var s Signer
	var seg sim.Trace
	for fi, f := range fs {
		from, to := int(f.From), int(f.To)
		if !f.Windowed() {
			from, to = 0, len(stim)
		}
		if to > len(stim) {
			to = len(stim)
		}
		if from > to {
			from = to
		}

		// The permanent mutant machine.
		var mm *sim.Machine
		mutant := golden.Clone()
		applied, err := f.Apply(mutant)
		if err != nil {
			return nil, err
		}
		if applied {
			mm, err = sim.Compile(mutant)
			if err != nil {
				return nil, fmt.Errorf("faults: %s: %w", f.Describe(golden), err)
			}
		} else {
			mm = gm.Fork()
			w := uint64(0)
			if f.Kind == StuckAt1 {
				w = ^uint64(0)
			}
			if err := mm.SetOverride(f.Net, w); err != nil {
				return nil, fmt.Errorf("faults: %s: %w", f.Describe(golden), err)
			}
		}

		gm.Reset()
		s.Reset()
		note := func(tr *sim.Trace, base int) {
			for c := 0; c < tr.Cycles; c++ {
				for po := 0; po < tr.NumPOs; po++ {
					if tr.Out(c, po) != gt.Out(base+c, po) {
						s.Note(base+c, po)
					}
				}
			}
		}
		// Healthy prefix: [0, from) on the golden machine.
		if from > 0 {
			note(gm.ResumeTraceInto(&seg, stim[:from]), 0)
		}
		// Faulty window: [from, to) on the mutant, seeded with the
		// golden state at the window's opening edge.
		if to > from {
			mm.Reset()
			if err := mm.SetStateWords(gm.StateWords()); err != nil {
				return nil, fmt.Errorf("faults: %s: %w", f.Describe(golden), err)
			}
			note(mm.ResumeTraceInto(&seg, stim[from:to]), from)
		}
		// Healthy suffix: [to, end) on the golden machine, carrying
		// whatever corrupted state the window captured.
		if to < len(stim) {
			if err := gm.SetStateWords(mm.StateWords()); err != nil {
				return nil, fmt.Errorf("faults: %s: %w", f.Describe(golden), err)
			}
			note(gm.ResumeTraceInto(&seg, stim[to:]), to)
		}
		out = append(out, s.Result(f))
		if cfg.OnBatch != nil && ((fi+1)%64 == 0 || fi+1 == len(fs)) {
			if err := cfg.OnBatch((fi+1+63)/64, (len(fs)+63)/64); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
