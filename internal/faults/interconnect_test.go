package faults

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
)

// TestInterconnectScanMatchesSerialAcrossCatalog is the differential
// guarantee of the interconnect model: route stuck-ats (lane pin
// perturbation vs serial cofactored recompile) and bridges (lane
// wired-AND/OR vs serial bridge-cell insertion) must agree bit-for-bit
// on every design in the catalog.
func TestInterconnectScanMatchesSerialAcrossCatalog(t *testing.T) {
	for _, d := range bench.Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			mapped, err := synth.TechMap(d.Build())
			if err != nil {
				t.Fatal(err)
			}
			prog, err := sim.Compile(mapped)
			if err != nil {
				t.Fatal(err)
			}
			iu, err := InterconnectUniverse(mapped, InterconnectConfig{MaxBridges: 24, Seed: 19})
			if err != nil {
				t.Fatal(err)
			}
			if len(iu) == 0 {
				t.Fatalf("%s: empty interconnect universe", d.Name)
			}
			limit := 3 * 64
			if testing.Short() {
				limit = 64
			}
			if len(iu) > limit {
				stride := len(iu) / limit
				sampled := make([]Fault, 0, limit)
				for i := 0; i < len(iu) && len(sampled) < limit; i += stride {
					sampled = append(sampled, iu[i])
				}
				// Keep the bridge tail — stride sampling alone would
				// drown it in the route stuck-at prefix.
				for _, f := range iu {
					if (f.Kind == BridgeAND || f.Kind == BridgeOR) && len(sampled) < limit+24 {
						sampled = append(sampled, f)
					}
				}
				iu = sampled
			}
			cfg := ScanConfig{Patterns: 32, Cycles: 2, Seed: 23}
			lane, err := Scan(prog, iu, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ser, err := SerialScan(prog, iu, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(lane) != len(ser) {
				t.Fatalf("%s: result counts differ: %d vs %d", d.Name, len(lane), len(ser))
			}
			detected := 0
			for i := range lane {
				if lane[i] != ser[i] {
					t.Fatalf("%s fault %d (%s): lane %+v != serial %+v",
						d.Name, i, lane[i].Fault.Describe(mapped), lane[i], ser[i])
				}
				if lane[i].Detected {
					detected++
				}
			}
			if detected == 0 {
				t.Fatalf("%s: no interconnect fault detected", d.Name)
			}
		})
	}
}

// TestInterconnectUniverseShape pins the enumerator: exhaustive route
// stuck-at pairs on every live LUT pin, bridges capped and aggressors
// strictly below victims in net level, deterministic order.
func TestInterconnectUniverseShape(t *testing.T) {
	nl := target(t)
	u1, err := InterconnectUniverse(nl, InterconnectConfig{MaxBridges: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := InterconnectUniverse(nl, InterconnectConfig{MaxBridges: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(u1) != len(u2) {
		t.Fatalf("universe size unstable: %d vs %d", len(u1), len(u2))
	}
	pins := 0
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT {
			pins += len(c.Fanin)
		}
	}
	routes, bridges := 0, 0
	lv, err := netLevels(nl)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range u1 {
		if f != u2[i] {
			t.Fatalf("universe order unstable at %d", i)
		}
		switch f.Kind {
		case RouteStuck0, RouteStuck1:
			routes++
			c := &nl.Cells[f.Cell]
			if int(f.Pin) >= len(c.Fanin) {
				t.Fatalf("route fault %d pin %d out of range", i, f.Pin)
			}
		case BridgeAND, BridgeOR:
			bridges++
			if lv[f.Net2] >= lv[f.Net] {
				t.Fatalf("bridge %d aggressor level %d not below victim level %d",
					i, lv[f.Net2], lv[f.Net])
			}
			d := nl.Nets[f.Net].Driver
			if d == netlist.NilCell || nl.Cells[d].Kind != netlist.KindLUT {
				t.Fatalf("bridge %d victim %s not LUT-driven", i, nl.NetName(f.Net))
			}
		default:
			t.Fatalf("unexpected kind %v in interconnect universe", f.Kind)
		}
	}
	if routes != 2*pins {
		t.Fatalf("route stuck-ats %d != 2 pins (%d)", routes, 2*pins)
	}
	if bridges == 0 || bridges > 8 {
		t.Fatalf("bridge count %d outside (0, 8]", bridges)
	}
}

// TestRouteStuckIsNotNetStuck: a route stuck-at breaks one pin's last
// hop while every other consumer of the net stays healthy. On the
// target circuit net a fans out to g1 and g3: breaking only g3's pin
// leaves PO y (fed through g1) healthy, while the net stuck-at corrupts
// y too — the two signatures must differ.
func TestRouteStuckIsNotNetStuck(t *testing.T) {
	nl := target(t)
	prog, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	cID := netlist.NilCell
	for ci := range nl.Cells {
		if nl.CellName(netlist.CellID(ci)) == "g3" {
			cID = netlist.CellID(ci)
		}
	}
	if cID == netlist.NilCell {
		t.Fatal("cell g3 not found")
	}
	// g3's pin 1 reads net a; net a also feeds g1.
	pin := int32(1)
	netA, ok := nl.NetByName("a")
	if !ok {
		t.Fatal("net a not found")
	}
	if nl.Cells[cID].Fanin[pin] != netA {
		t.Fatalf("target changed: g3 pin 1 reads %s", nl.NetName(nl.Cells[cID].Fanin[pin]))
	}
	cfg := ScanConfig{Patterns: 64, Cycles: 1, Seed: 2}
	res, err := Scan(prog, []Fault{
		{Kind: RouteStuck0, Cell: cID, Pin: pin},
		{Kind: StuckAt0, Net: netA},
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Detected || !res[1].Detected {
		t.Fatalf("expected both faults detected: %+v", res)
	}
	if res[0].Signature == res[1].Signature {
		t.Fatal("route stuck-at indistinguishable from net stuck-at despite shared fanout")
	}
}
