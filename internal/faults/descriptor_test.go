package faults

import (
	"testing"

	"fpgadbg/internal/netlist"
)

// TestDescriptorRoundTrip pins the canonical text form of every fault
// kind, windowed and permanent, plus pairs: Descriptor and
// ParseDescriptor must be exact inverses.
func TestDescriptorRoundTrip(t *testing.T) {
	cases := []struct {
		f    Fault
		want string
	}{
		{Fault{Kind: StuckAt0, Net: 7}, "sa0@n7"},
		{Fault{Kind: StuckAt1, Net: 0}, "sa1@n0"},
		{Fault{Kind: LUTBitFlip, Cell: 3, Bit: 5}, "flip@c3#5"},
		{Fault{Kind: LUTBitFlip, Cell: 3, Bit: 0}, "flip@c3#0"},
		{Fault{Kind: RouteStuck0, Cell: 3, Pin: 2}, "rs0@c3.2"},
		{Fault{Kind: RouteStuck1, Cell: 12, Pin: 0}, "rs1@c12.0"},
		{Fault{Kind: BridgeAND, Net: 7, Net2: 4}, "br&@n7+n4"},
		{Fault{Kind: BridgeOR, Net: 7, Net2: 4}, "br|@n7+n4"},
		{Fault{Kind: StuckAt0, Net: 7, From: 2, To: 5}, "sa0@n7[2,5)"},
		{Fault{Kind: BridgeOR, Net: 1, Net2: 9, From: 0, To: 3}, "br|@n1+n9[0,3)"},
		{Fault{Kind: RouteStuck1, Cell: 2147483647, Pin: 3}, "rs1@c2147483647.3"},
	}
	for _, c := range cases {
		got := c.f.Descriptor()
		if got != c.want {
			t.Errorf("Descriptor(%+v) = %q, want %q", c.f, got, c.want)
		}
		back, err := ParseDescriptor(got)
		if err != nil {
			t.Errorf("ParseDescriptor(%q): %v", got, err)
			continue
		}
		if back != c.f {
			t.Errorf("round trip %q: %+v != %+v", got, back, c.f)
		}
	}
	p := Pair{
		A: Fault{Kind: StuckAt0, Net: 7, From: 2, To: 5},
		B: Fault{Kind: LUTBitFlip, Cell: 3, Bit: 5},
	}
	pd := p.Descriptor()
	if pd != "pair(sa0@n7[2,5),flip@c3#5)" {
		t.Errorf("pair descriptor %q", pd)
	}
	back, err := ParsePairDescriptor(pd)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Errorf("pair round trip: %+v != %+v", back, p)
	}
}

// TestParseDescriptorRejects pins the error surface: malformed shapes,
// non-canonical numbers, self-bridges and empty windows never parse.
func TestParseDescriptorRejects(t *testing.T) {
	bad := []string{
		"", "sa0", "sa0@", "sa0@c3", "sa0@n", "sa0@n07", "sa0@n-1",
		"sa2@n3", "flip@c3", "flip@n3#5", "rs0@c3", "rs0@c3.",
		"br&@n7", "br&@n7+n7", "br&@n7+c4", "kind9@n1",
		"sa0@n7[2,2)", "sa0@n7[5,2)", "sa0@n7[2,5", "sa0@n7[2,5)x",
		"sa0@n7[2)", "sa0@n7[,5)", "pair(sa0@n1,sa0@n2)",
	}
	for _, s := range bad {
		if f, err := ParseDescriptor(s); err == nil {
			t.Errorf("ParseDescriptor(%q) accepted: %+v", s, f)
		}
	}
	badPair := []string{
		"", "pair()", "pair(sa0@n1)", "pair(sa0@n1,sa0@n2,sa0@n3)",
		"pair(sa0@n1,sa0@n2", "sa0@n1,sa0@n2", "pair(sa0@n1,bogus)",
	}
	for _, s := range badPair {
		if p, err := ParsePairDescriptor(s); err == nil {
			t.Errorf("ParsePairDescriptor(%q) accepted: %+v", s, p)
		}
	}
}

// FuzzFaultDescriptor fuzzes both parsers with arbitrary strings. Any
// accepted input must be canonical (re-rendering reproduces the input
// byte-for-byte) and idempotent under a second parse — together these
// make descriptors safe as cache-key and journal tokens.
func FuzzFaultDescriptor(f *testing.F) {
	seeds := []string{
		"sa0@n7", "sa1@n0", "flip@c3#5", "rs0@c3.2", "rs1@c12.0",
		"br&@n7+n4", "br|@n7+n4", "sa0@n7[2,5)", "br|@n1+n9[0,3)",
		"pair(sa0@n7[2,5),flip@c3#5)", "pair(br&@n2+n1,rs0@c9.1)",
		"sa0@n07", "sa0@n7[5,2)", "pair(sa0@n1,sa0@n2,sa0@n3)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		if fa, err := ParseDescriptor(s); err == nil {
			out := fa.Descriptor()
			if out != s {
				t.Fatalf("accepted non-canonical fault descriptor %q (canonical %q)", s, out)
			}
			again, err := ParseDescriptor(out)
			if err != nil {
				t.Fatalf("re-parse of %q failed: %v", out, err)
			}
			if again != fa {
				t.Fatalf("re-parse of %q diverged: %+v != %+v", out, again, fa)
			}
			if fa.Windowed() && fa.To <= fa.From {
				t.Fatalf("accepted inverted window: %+v", fa)
			}
			if (fa.Kind == BridgeAND || fa.Kind == BridgeOR) && fa.Net == fa.Net2 {
				t.Fatalf("accepted self-bridge: %+v", fa)
			}
			if fa.Net < 0 || fa.Net2 < 0 || fa.Cell < netlist.CellID(0) || fa.Pin < 0 {
				t.Fatalf("accepted negative ID: %+v", fa)
			}
		}
		if p, err := ParsePairDescriptor(s); err == nil {
			out := p.Descriptor()
			if out != s {
				t.Fatalf("accepted non-canonical pair descriptor %q (canonical %q)", s, out)
			}
			again, err := ParsePairDescriptor(out)
			if err != nil {
				t.Fatalf("re-parse of %q failed: %v", out, err)
			}
			if again != p {
				t.Fatalf("re-parse of %q diverged: %+v != %+v", out, again, p)
			}
		}
	})
}
