package faults

// The fault-pair model: two simultaneous faults in one design. A pair is
// ONE mutant and consumes ONE simulator lane — PairScan stacks two
// SetLaneFault calls on the same lane, so a width-W machine still
// retires 64·W pair mutants per trace replay. The quadratic full pair
// set is never enumerated: PairUniverse draws a deterministic sample,
// suspect-ranked when single-fault scan results are available (detected
// faults with rich syndromes pair first — the pairs a real double-defect
// diagnosis will actually confront). SerialPairScan is the clone+apply-
// both+recompile differential oracle PairScan is pinned against.

import (
	"fmt"
	"math/rand"
	"sort"

	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// Pair is an unordered pair of simultaneous faults — one two-fault
// mutant. A and B are kept in a canonical order by PairUniverse; both
// engines arm/apply A before B so composition on shared structure is
// identical.
type Pair struct {
	A, B Fault
}

// Describe renders the pair with design names resolved.
func (p Pair) Describe(nl *netlist.Netlist) string {
	return fmt.Sprintf("{%s; %s}", p.A.Describe(nl), p.B.Describe(nl))
}

// PairBatchesN splits a pair list into groups of at most n mutants — one
// group per replay of an n-lane machine. Lane accounting is per mutant:
// a pair consumes one lane, not two.
func PairBatchesN(ps []Pair, n int) [][]Pair { return batchesOf(ps, n) }

// PairConfig shapes PairUniverse's sampling.
type PairConfig struct {
	// MaxPairs caps the sampled universe (default 256).
	MaxPairs int
	Seed     int64
	// Singles, when set, are single-fault scan outcomes over (a superset
	// of) the candidate faults; detected faults are ranked to the front —
	// by descending mismatch count — and the sampler is biased toward the
	// front of the ranking, so the universe concentrates on pairs whose
	// components are individually observable (the ones syndrome
	// composition can decode).
	Singles []ScanResult
}

func (c PairConfig) withDefaults() PairConfig {
	if c.MaxPairs < 1 {
		c.MaxPairs = 256
	}
	return c
}

// SameSite reports whether two faults perturb the same net site — pairs
// of such faults are excluded from universes and candidate lists because
// their composition is engine- and arming-order-dependent.
func SameSite(nl *netlist.Netlist, a, b Fault) bool {
	return siteNet(nl, a) == siteNet(nl, b)
}

// siteNet is the net a fault's perturbation lands on — the collision key
// PairUniverse uses: two faults on the same site compose engine-
// dependently (arming order on one node vs. netlist rewrite order), so
// such pairs are excluded from the universe.
func siteNet(nl *netlist.Netlist, f Fault) netlist.NetID {
	switch f.Kind {
	case StuckAt0, StuckAt1, BridgeAND, BridgeOR:
		return f.Net
	case LUTBitFlip, RouteStuck0, RouteStuck1:
		return nl.Cells[f.Cell].Out
	default:
		return netlist.NilNet
	}
}

// PairUniverse draws a deterministic sample of fault pairs from the
// candidate list u (typically Universe(nl), optionally extended with
// InterconnectUniverse faults). Pairs whose two faults perturb the same
// net are excluded, as are pairs bridging a net that the partner fault
// perturbs (see siteNet). With cfg.Singles the candidates are
// suspect-ranked first and sampling is front-biased; the top of the
// ranking is also paired exhaustively (capped), so the most diagnosable
// pairs are always present. Order is deterministic for a given seed.
func PairUniverse(nl *netlist.Netlist, u []Fault, cfg PairConfig) []Pair {
	cfg = cfg.withDefaults()
	if len(u) < 2 {
		return nil
	}
	cand := append([]Fault(nil), u...)
	if len(cfg.Singles) > 0 {
		rank := make(map[Fault]int, len(cfg.Singles))
		for _, r := range cfg.Singles {
			if r.Detected {
				rank[r.Fault] = r.Mismatches
			}
		}
		sort.SliceStable(cand, func(i, j int) bool { return rank[cand[i]] > rank[cand[j]] })
	}

	seen := make(map[Pair]bool, cfg.MaxPairs)
	out := make([]Pair, 0, cfg.MaxPairs)
	admit := func(a, b Fault) {
		if len(out) >= cfg.MaxPairs || a == b {
			return
		}
		if siteNet(nl, a) == siteNet(nl, b) {
			return
		}
		p := Pair{A: a, B: b}
		if seen[p] || seen[Pair{A: b, B: a}] {
			return
		}
		seen[p] = true
		out = append(out, p)
	}

	// Exhaustive head: all pairs among the top-ranked candidates (only
	// meaningful when a ranking was supplied; bounded well below MaxPairs
	// so sampling keeps breadth).
	if len(cfg.Singles) > 0 {
		head := 12
		if head > len(cand) {
			head = len(cand)
		}
		for i := 0; i < head; i++ {
			for j := i + 1; j < head; j++ {
				admit(cand[i], cand[j])
			}
		}
	}

	// Front-biased random fill: each index is the min of two uniforms —
	// a triangular distribution favoring the (suspect-ranked) front.
	r := rand.New(rand.NewSource(cfg.Seed))
	pick := func() int {
		i, j := r.Intn(len(cand)), r.Intn(len(cand))
		if j < i {
			i = j
		}
		return i
	}
	for tries := 0; len(out) < cfg.MaxPairs && tries < cfg.MaxPairs*32; tries++ {
		admit(cand[pick()], cand[pick()])
	}
	return out
}

// PairScanResult is one pair mutant's simulated outcome.
type PairScanResult struct {
	Pair Pair
	Syndrome
}

// PairScan fault-simulates every pair in Lanes()-sized batches of
// two-fault mutants: per lane, both faults of one pair are armed with
// stacked SetLaneFault calls, so the batch cost is identical to a
// single-fault scan. Results are in input order.
func PairScan(prog *sim.Machine, ps []Pair, cfg ScanConfig) ([]PairScanResult, error) {
	cfg = cfg.withDefaults()
	return PairScanStim(prog, ps, cfg.Stimulus(len(prog.PIOrder())), cfg.OnBatch)
}

// PairScanStim is PairScan over an explicit broadcast stimulus sequence.
func PairScanStim(prog *sim.Machine, ps []Pair, stim [][]uint64, onBatch func(done, total int) error) ([]PairScanResult, error) {
	gt := prog.Fork().RunTrace(stim)
	mu := prog.Fork()
	batches := PairBatchesN(ps, prog.Lanes())
	out := make([]PairScanResult, 0, len(ps))
	var tr sim.Trace
	signers := make([]Signer, prog.Lanes())
	for bi, batch := range batches {
		mu.ClearLaneFaults()
		for lane, p := range batch {
			for _, f := range [2]Fault{p.A, p.B} {
				lf, err := f.Lane()
				if err != nil {
					return nil, err
				}
				if err := mu.SetLaneFault(lane, lf); err != nil {
					return nil, fmt.Errorf("faults: arming %s: %w", p.Describe(prog.Netlist()), err)
				}
			}
			signers[lane].Reset()
		}
		mu.RunTraceInto(&tr, stim)
		diffTraceInto(signers, batch, &tr, gt)
		for lane, p := range batch {
			out = append(out, PairScanResult{Pair: p, Syndrome: signers[lane].Syndrome()})
		}
		if onBatch != nil {
			if err := onBatch(bi+1, len(batches)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// SerialPairScan computes the same per-pair outcomes one mutant at a
// time — clone the golden netlist, apply both faults (A first, matching
// PairScan's arming order), recompile and replay; faults with no netlist
// form (source-net stuck-ats) run as overrides on the compiled mutant.
// It is the differential oracle for PairScan: outcomes must be
// bit-identical.
func SerialPairScan(prog *sim.Machine, ps []Pair, cfg ScanConfig) ([]PairScanResult, error) {
	cfg = cfg.withDefaults()
	stim := cfg.Stimulus(len(prog.PIOrder()))
	golden := prog.Netlist()
	gt := prog.Fork().RunTrace(stim)
	out := make([]PairScanResult, 0, len(ps))
	var s Signer
	for pi, p := range ps {
		mutant := golden.Clone()
		var pending []Fault
		for _, f := range [2]Fault{p.A, p.B} {
			applied, err := f.Apply(mutant)
			if err != nil {
				return nil, err
			}
			if !applied {
				pending = append(pending, f)
			}
		}
		m2, err := sim.Compile(mutant)
		if err != nil {
			return nil, fmt.Errorf("faults: %s: %w", p.Describe(golden), err)
		}
		for _, f := range pending {
			w := uint64(0)
			if f.Kind == StuckAt1 {
				w = ^uint64(0)
			}
			if err := m2.SetOverride(f.Net, w); err != nil {
				return nil, fmt.Errorf("faults: %s: %w", f.Describe(golden), err)
			}
		}
		tr := m2.RunTrace(stim)
		s.Reset()
		for c := 0; c < tr.Cycles; c++ {
			for po := 0; po < tr.NumPOs; po++ {
				if tr.Out(c, po) != gt.Out(c, po) {
					s.Note(c, po)
				}
			}
		}
		out = append(out, PairScanResult{Pair: p, Syndrome: s.Syndrome()})
		if cfg.OnBatch != nil && ((pi+1)%64 == 0 || pi+1 == len(ps)) {
			if err := cfg.OnBatch((pi+1+63)/64, (len(ps)+63)/64); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
