package faults

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
)

// assertPairScanEqual requires bit-identical per-pair outcomes between
// the lane-packed and serial pair engines.
func assertPairScanEqual(t *testing.T, design string, par, ser []PairScanResult, nl *netlist.Netlist) {
	t.Helper()
	if len(par) != len(ser) {
		t.Fatalf("%s: result counts differ: %d vs %d", design, len(par), len(ser))
	}
	for i := range par {
		if par[i] != ser[i] {
			t.Fatalf("%s pair %d (%s): lane %+v != serial %+v",
				design, i, par[i].Pair.Describe(nl), par[i], ser[i])
		}
	}
}

// TestPairScanMatchesSerialAcrossCatalog is the differential guarantee
// of the pair engine: one lane carrying two stacked SetLaneFault
// perturbations must produce outcomes bit-identical to the serial path —
// netlist clone, both mutations applied in the same order, recompile —
// for every design in the catalog.
func TestPairScanMatchesSerialAcrossCatalog(t *testing.T) {
	for _, d := range bench.Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			mapped, err := synth.TechMap(d.Build())
			if err != nil {
				t.Fatal(err)
			}
			prog, err := sim.Compile(mapped)
			if err != nil {
				t.Fatal(err)
			}
			limit := 3 * 64
			if testing.Short() {
				limit = 64
			}
			pu := PairUniverse(mapped, Universe(mapped), PairConfig{MaxPairs: limit, Seed: 5})
			if len(pu) == 0 {
				t.Fatalf("%s: empty pair universe", d.Name)
			}
			cfg := ScanConfig{Patterns: 32, Cycles: 2, Seed: 11}
			par, err := PairScan(prog, pu, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ser, err := SerialPairScan(prog, pu, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertPairScanEqual(t, d.Name, par, ser, mapped)
			detected := 0
			for _, r := range par {
				if r.Detected {
					detected++
				}
			}
			if detected == 0 {
				t.Fatalf("%s: no pair detected at all — pair scan is blind", d.Name)
			}
		})
	}
}

// TestPairUniverseDeterministicAndDistinctSites pins the sampler: the
// same inputs produce the same pair list, pairs never collide on one
// site (composition there is arming-order-dependent), and the cap holds.
func TestPairUniverseDeterministicAndDistinctSites(t *testing.T) {
	nl := target(t)
	u := Universe(nl)
	cfg := PairConfig{MaxPairs: 32, Seed: 3}
	p1 := PairUniverse(nl, u, cfg)
	p2 := PairUniverse(nl, u, cfg)
	if len(p1) != len(p2) {
		t.Fatalf("pair universe size unstable: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pair universe order unstable at %d", i)
		}
	}
	if len(p1) > 32 {
		t.Fatalf("cap ignored: %d pairs", len(p1))
	}
	for _, p := range p1 {
		if siteNet(nl, p.A) == siteNet(nl, p.B) {
			t.Fatalf("same-site pair sampled: %s", p.Describe(nl))
		}
	}
}

// TestPairConsumesOneLane is the batch-accounting regression: one pair
// is one mutant is one lane, so 130 pairs split into 64+64+2 — the same
// shape as 130 single faults — even though 130 pairs carry 260 faults.
func TestPairConsumesOneLane(t *testing.T) {
	ps := make([]Pair, 130)
	bs := PairBatchesN(ps, 64)
	if len(bs) != 3 || len(bs[0]) != 64 || len(bs[1]) != 64 || len(bs[2]) != 2 {
		t.Fatalf("pair batching miscounts lanes: %d batches", len(bs))
	}
	if PairBatchesN(nil, 64) != nil {
		t.Fatal("empty pair list should batch to nil")
	}
	// The Fault batcher must agree — both ride the same generic.
	fs := make([]Fault, 130)
	fb := BatchesN(fs, 64)
	if len(fb) != len(bs) || len(fb[0]) != len(bs[0]) || len(fb[2]) != len(bs[2]) {
		t.Fatalf("fault and pair batch accounting diverged: %d vs %d batches", len(fb), len(bs))
	}
}

// influenceCells returns the cells that can either shape or feel the
// fault: the transitive fanout of its site net, plus the cell whose
// inputs condition the fault's activation (the site net's driver, and
// the aggressor net's driver for bridges). The conditioning cell
// matters even when the output cones are disjoint — a LUT-bit-flip
// sitting inside the partner's fanout cone fires under different
// minterms once the partner is armed, so the pair no longer superposes.
func influenceCells(nl *netlist.Netlist, f Fault) map[netlist.CellID]bool {
	site := siteNet(nl, f)
	cone := nl.TransitiveFanout([]netlist.NetID{site}, true)
	if d := nl.Nets[site].Driver; d != netlist.NilCell {
		cone[d] = true
	}
	if f.Kind == BridgeAND || f.Kind == BridgeOR {
		if d := nl.Nets[f.Net2].Driver; d != netlist.NilCell {
			cone[d] = true
		}
	}
	return cone
}

// disjointConePairs returns sampled pairs whose two faults have
// disjoint influence sets — pairs whose effects can neither collide on
// one (cycle, PO) observation nor modulate each other's activation.
func disjointConePairs(nl *netlist.Netlist, ps []Pair) []Pair {
	var out []Pair
	for _, p := range ps {
		ca := influenceCells(nl, p.A)
		cb := influenceCells(nl, p.B)
		overlap := false
		for c := range ca {
			if cb[c] {
				overlap = true
				break
			}
		}
		if !overlap {
			out = append(out, p)
		}
	}
	return out
}

// TestPairXorSigComposesForDisjointCones is the metamorphic
// superposition property: for a pair whose faults influence disjoint
// output cones, the pair mutant's order-invariant XorSig equals the XOR
// of its components' XorSigs, and its mismatch count their sum.
func TestPairXorSigComposesForDisjointCones(t *testing.T) {
	info, err := bench.ByName("c880")
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := synth.TechMap(info.Build())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sim.Compile(mapped)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScanConfig{Patterns: 32, Cycles: 2, Seed: 9}
	pu := PairUniverse(mapped, Universe(mapped), PairConfig{MaxPairs: 256, Seed: 7})
	dis := disjointConePairs(mapped, pu)
	if len(dis) == 0 {
		t.Skip("no disjoint-cone pair sampled")
	}
	checked := 0
	for _, p := range dis {
		singles, err := Scan(prog, []Fault{p.A, p.B}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		prs, err := PairScan(prog, []Pair{p}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		a, b, pr := singles[0], singles[1], prs[0]
		if !a.Detected || !b.Detected {
			continue
		}
		// Disjoint cell cones rule out interaction; disjoint observed PO
		// columns rule out the residual collision case of a site net that
		// is itself a primary output.
		if a.POMask&b.POMask != 0 {
			continue
		}
		checked++
		if want := a.XorSig ^ b.XorSig; pr.XorSig != want {
			t.Fatalf("%s: XorSig %x != composition %x", p.Describe(mapped), pr.XorSig, want)
		}
		if want := a.Mismatches + b.Mismatches; pr.Mismatches != want {
			t.Fatalf("%s: mismatches %d != sum %d", p.Describe(mapped), pr.Mismatches, want)
		}
	}
	if checked == 0 {
		t.Skip("no disjoint-cone pair with both faults detected")
	}
}

// TestPairSignatureOrderInvariant checks that swapping a pair's fault
// order changes nothing observable: arming (A, B) and (B, A) on a lane
// must yield identical syndromes, since the faults occupy distinct sites.
func TestPairSignatureOrderInvariant(t *testing.T) {
	nl := target(t)
	prog, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScanConfig{Patterns: 16, Cycles: 2, Seed: 4}
	pu := PairUniverse(nl, Universe(nl), PairConfig{MaxPairs: 64, Seed: 2})
	swapped := make([]Pair, len(pu))
	for i, p := range pu {
		swapped[i] = Pair{A: p.B, B: p.A}
	}
	fwd, err := PairScan(prog, pu, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := PairScan(prog, swapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fwd {
		if fwd[i].Syndrome != rev[i].Syndrome {
			t.Fatalf("pair %d: order-dependent syndrome: %+v vs %+v",
				i, fwd[i].Syndrome, rev[i].Syndrome)
		}
	}
}

// BenchmarkPairScan measures lane-packed pair throughput (pairs/sec in
// b.N units of one 256-pair universe scan on c880).
func BenchmarkPairScan(b *testing.B) {
	info, err := bench.ByName("c880")
	if err != nil {
		b.Fatal(err)
	}
	mapped, err := synth.TechMap(info.Build())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := sim.Compile(mapped)
	if err != nil {
		b.Fatal(err)
	}
	pu := PairUniverse(mapped, Universe(mapped), PairConfig{MaxPairs: 256, Seed: 1})
	cfg := ScanConfig{Patterns: 32, Cycles: 2, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PairScan(prog, pu, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pu)*b.N)/b.Elapsed().Seconds(), "pairs/sec")
}
