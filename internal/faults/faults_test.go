package faults

import (
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

func target(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("tgt")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	c := nl.AddPI("c")
	x := nl.AddNet("x")
	y := nl.AddNet("y")
	z := nl.AddNet("z")
	nl.MustAddLUT("g1", logic.MustFromStrings("10-", "-11"), []netlist.NetID{a, b, c}, x)
	nl.MustAddLUT("g2", logic.AndN(2), []netlist.NetID{x, c}, y)
	nl.MustAddLUT("g3", logic.OrN(2), []netlist.NetID{y, a}, z)
	nl.MarkPO(z)
	nl.MarkPO(y)
	return nl
}

func TestEachKindChangesBehaviour(t *testing.T) {
	for kind := Kind(0); kind < numKinds; kind++ {
		golden := target(t)
		mutant := golden.Clone()
		inj, err := Inject(mutant, kind, 7)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := mutant.CheckDriven(); err != nil {
			t.Fatalf("%v left invalid netlist: %v", kind, err)
		}
		if inj.CellName == "" {
			t.Fatalf("%v: empty cell name", kind)
		}
		mm, err := sim.ExhaustiveEquivalent(golden, mutant)
		if err != nil {
			t.Fatal(err)
		}
		if mm == nil {
			t.Fatalf("%v (%v) did not change behaviour", kind, inj)
		}
	}
}

func TestInjectDeterministic(t *testing.T) {
	a := target(t)
	b := target(t)
	ia, err := Inject(a, LUTBitFlip, 42)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := Inject(b, LUTBitFlip, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ia.CellName != ib.CellName || ia.Detail != ib.Detail {
		t.Fatalf("same seed differs: %v vs %v", ia, ib)
	}
}

func TestInjectRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		golden := target(t)
		mutant := golden.Clone()
		inj, err := InjectRandom(mutant, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := mutant.CheckDriven(); err != nil {
			t.Fatalf("seed %d (%v): %v", seed, inj, err)
		}
		if _, ok := mutant.CellByName(inj.CellName); !ok {
			t.Fatalf("injection names unknown cell %q", inj.CellName)
		}
	}
}

func TestWrongNetNeverCreatesCycle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		mutant := target(t)
		if _, err := Inject(mutant, WrongNet, seed); err != nil {
			continue // no applicable site for this seed is fine
		}
		if _, err := mutant.TopoOrder(); err != nil {
			t.Fatalf("seed %d: cycle created: %v", seed, err)
		}
	}
}

func TestInputSwapSkipsSymmetricFunctions(t *testing.T) {
	// A netlist with only symmetric gates cannot take an input swap.
	nl := netlist.New("sym")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	o := nl.AddNet("o")
	nl.MustAddLUT("and", logic.AndN(2), []netlist.NetID{a, b}, o)
	nl.MarkPO(o)
	if _, err := Inject(nl, InputSwap, 1); err == nil {
		t.Fatal("swap on symmetric-only netlist should fail")
	}
}

func TestNoLUTs(t *testing.T) {
	nl := netlist.New("empty")
	d := nl.AddPI("d")
	q := nl.AddNet("q")
	nl.MustAddDFF("ff", d, q, 0)
	nl.MarkPO(q)
	if _, err := Inject(nl, Polarity, 1); err == nil {
		t.Fatal("injection into LUT-less netlist should fail")
	}
}
