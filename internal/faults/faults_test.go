package faults

import (
	"errors"
	"strings"
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

func target(t testing.TB) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("tgt")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	c := nl.AddPI("c")
	x := nl.AddNet("x")
	y := nl.AddNet("y")
	z := nl.AddNet("z")
	nl.MustAddLUT("g1", logic.MustFromStrings("10-", "-11"), []netlist.NetID{a, b, c}, x)
	nl.MustAddLUT("g2", logic.AndN(2), []netlist.NetID{x, c}, y)
	nl.MustAddLUT("g3", logic.OrN(2), []netlist.NetID{y, a}, z)
	nl.MarkPO(z)
	nl.MarkPO(y)
	return nl
}

func TestEachKindChangesBehaviour(t *testing.T) {
	for kind := Kind(0); kind < numInjectKinds; kind++ {
		golden := target(t)
		mutant := golden.Clone()
		inj, err := Inject(mutant, kind, 7)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := mutant.CheckDriven(); err != nil {
			t.Fatalf("%v left invalid netlist: %v", kind, err)
		}
		if inj.CellName == "" {
			t.Fatalf("%v: empty cell name", kind)
		}
		mm, err := sim.ExhaustiveEquivalent(golden, mutant)
		if err != nil {
			t.Fatal(err)
		}
		if mm == nil {
			t.Fatalf("%v (%v) did not change behaviour", kind, inj)
		}
	}
}

func TestInjectDeterministic(t *testing.T) {
	a := target(t)
	b := target(t)
	ia, err := Inject(a, LUTBitFlip, 42)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := Inject(b, LUTBitFlip, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ia.CellName != ib.CellName || ia.Detail != ib.Detail {
		t.Fatalf("same seed differs: %v vs %v", ia, ib)
	}
}

func TestInjectRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		golden := target(t)
		mutant := golden.Clone()
		inj, err := InjectRandom(mutant, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := mutant.CheckDriven(); err != nil {
			t.Fatalf("seed %d (%v): %v", seed, inj, err)
		}
		if _, ok := mutant.CellByName(inj.CellName); !ok {
			t.Fatalf("injection names unknown cell %q", inj.CellName)
		}
	}
}

func TestWrongNetNeverCreatesCycle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		mutant := target(t)
		if _, err := Inject(mutant, WrongNet, seed); err != nil {
			continue // no applicable site for this seed is fine
		}
		if _, err := mutant.TopoOrder(); err != nil {
			t.Fatalf("seed %d: cycle created: %v", seed, err)
		}
	}
}

func TestInputSwapSkipsSymmetricFunctions(t *testing.T) {
	// A netlist with only symmetric gates cannot take an input swap; the
	// failure is RNG exhaustion, not a missing site (a 2-input LUT exists).
	nl := netlist.New("sym")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	o := nl.AddNet("o")
	nl.MustAddLUT("and", logic.AndN(2), []netlist.NetID{a, b}, o)
	nl.MarkPO(o)
	_, err := Inject(nl, InputSwap, 1)
	if err == nil {
		t.Fatal("swap on symmetric-only netlist should fail")
	}
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if errors.Is(err, ErrNoSite) {
		t.Fatalf("ErrNoSite misreported: %v", err)
	}
}

func TestNoLUTs(t *testing.T) {
	nl := netlist.New("empty")
	d := nl.AddPI("d")
	q := nl.AddNet("q")
	nl.MustAddDFF("ff", d, q, 0)
	nl.MarkPO(q)
	_, err := Inject(nl, Polarity, 1)
	if err == nil {
		t.Fatal("injection into LUT-less netlist should fail")
	}
	if !errors.Is(err, ErrNoSite) {
		t.Fatalf("want ErrNoSite, got %v", err)
	}
	if _, err := InjectRandom(nl, 3); !errors.Is(err, ErrNoSite) {
		t.Fatalf("InjectRandom on LUT-less netlist: want ErrNoSite, got %v", err)
	}
}

func TestSingleLUTOnlySwapExhausts(t *testing.T) {
	// One asymmetric multi-input LUT exists, but every swap candidate the
	// RNG draws is the identity or symmetric — here we force exhaustion by
	// offering only a 1-input LUT for the swap kind.
	nl := netlist.New("one")
	a := nl.AddPI("a")
	o := nl.AddNet("o")
	nl.MustAddLUT("inv", logic.NotN(), []netlist.NetID{a}, o)
	nl.MarkPO(o)
	if _, err := Inject(nl, InputSwap, 1); !errors.Is(err, ErrNoSite) {
		t.Fatalf("swap with no multi-input LUT: want ErrNoSite, got %v", err)
	}
}

func TestInjectionStringNamesKind(t *testing.T) {
	mutant := target(t)
	inj, err := Inject(mutant, Polarity, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.String(); !strings.Contains(got, Polarity.String()) {
		t.Fatalf("Injection.String() %q does not name the fault kind %q", got, Polarity)
	}
}
