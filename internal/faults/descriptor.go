package faults

// Compact, canonical fault descriptors — the stable text form used in
// dictionary cache keys, campaign events and journal records. The
// encoding is ID-based (net/cell IDs are deterministic for a given
// netlist fingerprint, and names may contain arbitrary BLIF characters):
//
//	sa0@n7          stuck-at-0 on net 7
//	sa1@n7          stuck-at-1 on net 7
//	flip@c3#5       LUT-bit flip, cell 3, minterm 5
//	rs0@c3.2        route stuck-at-0 on pin 2 of cell 3
//	rs1@c3.2        route stuck-at-1
//	br&@n7+n4       wired-AND bridge, victim net 7, aggressor net 4
//	br|@n7+n4       wired-OR bridge
//
// A transient arming window appends `[from,to)`, e.g. `sa0@n7[2,5)`.
// Pairs wrap two descriptors: `pair(sa0@n7,flip@c3#5)`. ParseDescriptor
// and ParsePairDescriptor are exact inverses of Descriptor on valid
// faults — the round-trip property FuzzFaultDescriptor exercises.

import (
	"fmt"
	"strconv"
	"strings"

	"fpgadbg/internal/netlist"
)

// Descriptor renders the fault in its canonical text form.
func (f Fault) Descriptor() string {
	var b strings.Builder
	switch f.Kind {
	case StuckAt0:
		fmt.Fprintf(&b, "sa0@n%d", f.Net)
	case StuckAt1:
		fmt.Fprintf(&b, "sa1@n%d", f.Net)
	case LUTBitFlip:
		fmt.Fprintf(&b, "flip@c%d#%d", f.Cell, f.Bit)
	case RouteStuck0:
		fmt.Fprintf(&b, "rs0@c%d.%d", f.Cell, f.Pin)
	case RouteStuck1:
		fmt.Fprintf(&b, "rs1@c%d.%d", f.Cell, f.Pin)
	case BridgeAND:
		fmt.Fprintf(&b, "br&@n%d+n%d", f.Net, f.Net2)
	case BridgeOR:
		fmt.Fprintf(&b, "br|@n%d+n%d", f.Net, f.Net2)
	default:
		fmt.Fprintf(&b, "kind%d", int(f.Kind))
	}
	if f.Windowed() {
		fmt.Fprintf(&b, "[%d,%d)", f.From, f.To)
	}
	return b.String()
}

// Descriptor renders the pair in its canonical text form.
func (p Pair) Descriptor() string {
	return "pair(" + p.A.Descriptor() + "," + p.B.Descriptor() + ")"
}

// parseInt32 parses a canonical non-negative decimal int32: no signs, no
// leading zeros (except "0" itself), no overflow.
func parseInt32(s string) (int32, error) {
	if s == "" {
		return 0, fmt.Errorf("faults: empty number")
	}
	if len(s) > 1 && s[0] == '0' {
		return 0, fmt.Errorf("faults: non-canonical number %q", s)
	}
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("faults: bad number %q", s)
	}
	return int32(v), nil
}

// splitPrefixed strips a one-letter ID prefix ('n' or 'c') and parses
// the rest.
func splitPrefixed(s string, prefix byte) (int32, error) {
	if len(s) < 2 || s[0] != prefix {
		return 0, fmt.Errorf("faults: expected %c-prefixed ID in %q", prefix, s)
	}
	return parseInt32(s[1:])
}

// ParseDescriptor parses a canonical fault descriptor, the inverse of
// Fault.Descriptor. IDs are not validated against any netlist — the
// caller resolves them (descriptors are only meaningful alongside the
// netlist fingerprint they were minted for).
func ParseDescriptor(s string) (Fault, error) {
	var f Fault
	// Split off the arming window, if any.
	if i := strings.IndexByte(s, '['); i >= 0 {
		w := s[i:]
		s = s[:i]
		if !strings.HasSuffix(w, ")") {
			return f, fmt.Errorf("faults: window %q not [from,to)", w)
		}
		body := w[1 : len(w)-1]
		c := strings.IndexByte(body, ',')
		if c < 0 {
			return f, fmt.Errorf("faults: window %q not [from,to)", w)
		}
		from, err := parseInt32(body[:c])
		if err != nil {
			return f, err
		}
		to, err := parseInt32(body[c+1:])
		if err != nil {
			return f, err
		}
		if to <= from {
			return f, fmt.Errorf("faults: empty window [%d,%d)", from, to)
		}
		f.From, f.To = from, to
	}
	at := strings.IndexByte(s, '@')
	if at < 0 {
		return f, fmt.Errorf("faults: descriptor %q has no @", s)
	}
	op, site := s[:at], s[at+1:]
	switch op {
	case "sa0", "sa1":
		n, err := splitPrefixed(site, 'n')
		if err != nil {
			return f, err
		}
		f.Kind = StuckAt0
		if op == "sa1" {
			f.Kind = StuckAt1
		}
		f.Net = netlist.NetID(n)
	case "flip":
		h := strings.IndexByte(site, '#')
		if h < 0 {
			return f, fmt.Errorf("faults: flip descriptor %q has no #bit", s)
		}
		c, err := splitPrefixed(site[:h], 'c')
		if err != nil {
			return f, err
		}
		bit, err := parseInt32(site[h+1:])
		if err != nil {
			return f, err
		}
		f.Kind = LUTBitFlip
		f.Cell = netlist.CellID(c)
		f.Bit = uint32(bit)
	case "rs0", "rs1":
		d := strings.IndexByte(site, '.')
		if d < 0 {
			return f, fmt.Errorf("faults: route descriptor %q has no .pin", s)
		}
		c, err := splitPrefixed(site[:d], 'c')
		if err != nil {
			return f, err
		}
		pin, err := parseInt32(site[d+1:])
		if err != nil {
			return f, err
		}
		f.Kind = RouteStuck0
		if op == "rs1" {
			f.Kind = RouteStuck1
		}
		f.Cell = netlist.CellID(c)
		f.Pin = pin
	case "br&", "br|":
		p := strings.IndexByte(site, '+')
		if p < 0 {
			return f, fmt.Errorf("faults: bridge descriptor %q has no +aggressor", s)
		}
		v, err := splitPrefixed(site[:p], 'n')
		if err != nil {
			return f, err
		}
		a, err := splitPrefixed(site[p+1:], 'n')
		if err != nil {
			return f, err
		}
		if v == a {
			return f, fmt.Errorf("faults: bridge %q of a net with itself", s)
		}
		f.Kind = BridgeAND
		if op == "br|" {
			f.Kind = BridgeOR
		}
		f.Net = netlist.NetID(v)
		f.Net2 = netlist.NetID(a)
	default:
		return f, fmt.Errorf("faults: unknown descriptor op %q", op)
	}
	return f, nil
}

// ParsePairDescriptor parses `pair(a,b)`, the inverse of
// Pair.Descriptor. The comma separator is unambiguous: no single-fault
// descriptor contains one outside a window, and windows are delimited.
func ParsePairDescriptor(s string) (Pair, error) {
	var p Pair
	body, ok := strings.CutPrefix(s, "pair(")
	if !ok || !strings.HasSuffix(body, ")") {
		return p, fmt.Errorf("faults: pair descriptor %q not pair(a,b)", s)
	}
	body = body[:len(body)-1]
	// The split comma is the one between two descriptors: scan for a
	// comma not inside a [from,to) window.
	depth := 0
	cut := -1
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '[':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				if cut >= 0 {
					return p, fmt.Errorf("faults: pair descriptor %q has extra commas", s)
				}
				cut = i
			}
		}
	}
	if cut < 0 {
		return p, fmt.Errorf("faults: pair descriptor %q has no separator", s)
	}
	a, err := ParseDescriptor(body[:cut])
	if err != nil {
		return p, err
	}
	b, err := ParseDescriptor(body[cut+1:])
	if err != nil {
		return p, err
	}
	return Pair{A: a, B: b}, nil
}
