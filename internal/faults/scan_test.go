package faults

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
)

func TestUniverseDeterministicAndComplete(t *testing.T) {
	nl := target(t)
	u1 := Universe(nl)
	u2 := Universe(nl)
	if len(u1) != len(u2) {
		t.Fatalf("universe size unstable: %d vs %d", len(u1), len(u2))
	}
	for i := range u1 {
		if u1[i] != u2[i] {
			t.Fatalf("universe order unstable at %d: %v vs %v", i, u1[i], u2[i])
		}
	}
	// 6 live nets × 2 stuck-ats + LUT bits: g1 (3 in, 8) + g2 (2 in, 4) +
	// g3 (2 in, 4).
	liveNets := 0
	for ni := range nl.Nets {
		if !nl.Nets[ni].Dead {
			liveNets++
		}
	}
	want := 2*liveNets + 8 + 4 + 4
	if len(u1) != want {
		t.Fatalf("universe size %d, want %d", len(u1), want)
	}
}

func TestBatches(t *testing.T) {
	fs := make([]Fault, 130)
	bs := Batches(fs)
	if len(bs) != 3 || len(bs[0]) != 64 || len(bs[1]) != 64 || len(bs[2]) != 2 {
		t.Fatalf("bad batching: %d batches", len(bs))
	}
	if Batches(nil) != nil {
		t.Fatal("empty fault list should batch to nil")
	}
}

// assertScanEqual requires bit-identical per-fault outcomes.
func assertScanEqual(t *testing.T, design string, par, ser []ScanResult, nl *netlist.Netlist) {
	t.Helper()
	if len(par) != len(ser) {
		t.Fatalf("%s: result counts differ: %d vs %d", design, len(par), len(ser))
	}
	for i := range par {
		if par[i] != ser[i] {
			t.Fatalf("%s fault %d (%s): parallel %+v != serial %+v",
				design, i, par[i].Fault.Describe(nl), par[i], ser[i])
		}
	}
}

// TestScanMatchesSerialAcrossCatalog is the differential guarantee of the
// fault-parallel engine: every 64-lane batch must produce bit-identical
// per-fault outcomes (detection, latency, signature) to serial
// single-fault runs — which go through an entirely different path: netlist
// clone + mutation + recompile (or overrides). Small designs run their
// whole universe; large ones a deterministic sample.
func TestScanMatchesSerialAcrossCatalog(t *testing.T) {
	for _, d := range bench.Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			mapped, err := synth.TechMap(d.Build())
			if err != nil {
				t.Fatal(err)
			}
			prog, err := sim.Compile(mapped)
			if err != nil {
				t.Fatal(err)
			}
			u := Universe(mapped)
			// Bound the serial (clone+recompile per fault) side: full
			// universe for small designs, a stride sample — still spanning
			// several whole batches and every fault kind — for large ones.
			limit := 3 * 64
			if testing.Short() {
				limit = 64
			}
			if len(u) > limit {
				stride := len(u) / limit
				sampled := make([]Fault, 0, limit)
				for i := 0; i < len(u) && len(sampled) < limit; i += stride {
					sampled = append(sampled, u[i])
				}
				u = sampled
			}
			cfg := ScanConfig{Patterns: 32, Cycles: 2, Seed: 11}
			par, err := Scan(prog, u, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ser, err := SerialScan(prog, u, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertScanEqual(t, d.Name, par, ser, mapped)
			detected := 0
			for _, r := range par {
				if r.Detected {
					detected++
				}
			}
			if detected == 0 {
				t.Fatalf("%s: no fault detected at all — scan is blind", d.Name)
			}
		})
	}
}

// TestScanBatchCallbackAborts checks the cancellation hook.
func TestScanBatchCallbackAborts(t *testing.T) {
	nl := target(t)
	prog, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	u := Universe(nl)
	calls := 0
	_, err = Scan(prog, u, ScanConfig{Patterns: 8, Cycles: 1, OnBatch: func(done, total int) error {
		calls++
		return errTestAbort
	}})
	if err != errTestAbort || calls != 1 {
		t.Fatalf("abort not honored: err=%v calls=%d", err, calls)
	}
}

var errTestAbort = errorString("abort")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestWideScanMatchesNarrow runs the same universe scan on the seed
// 64-lane program and on a width-4 (256-lane) lane-vector program
// (sim.CompileWidth). Per-fault outcomes — detection, first-failure
// cycle, signature — must be bit-identical, while the wide engine packs
// four times the faults into each batch.
func TestWideScanMatchesNarrow(t *testing.T) {
	for _, name := range []string{"9sym", "c880"} {
		t.Run(name, func(t *testing.T) {
			info, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			mapped, err := synth.TechMap(info.Build())
			if err != nil {
				t.Fatal(err)
			}
			narrow, err := sim.Compile(mapped)
			if err != nil {
				t.Fatal(err)
			}
			wide, err := sim.CompileWidth(mapped, 4)
			if err != nil {
				t.Fatal(err)
			}
			u := Universe(mapped)
			if len(u) > 6*64 {
				u = u[:6*64] // several wide batches is plenty
			}
			cfg := ScanConfig{Patterns: 16, Cycles: 2, Seed: 7}
			var nb, wb int
			ncfg := cfg
			ncfg.OnBatch = func(done, total int) error { nb = total; return nil }
			wcfg := cfg
			wcfg.OnBatch = func(done, total int) error { wb = total; return nil }
			nres, err := Scan(narrow, u, ncfg)
			if err != nil {
				t.Fatal(err)
			}
			wres, err := Scan(wide, u, wcfg)
			if err != nil {
				t.Fatal(err)
			}
			assertScanEqual(t, name, wres, nres, mapped)
			if want := (len(u) + 255) / 256; wb != want {
				t.Fatalf("wide batches = %d, want %d", wb, want)
			}
			if wb >= nb {
				t.Fatalf("wide scan did not shrink batches: %d vs %d", wb, nb)
			}
		})
	}
}
