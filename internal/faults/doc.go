// Package faults models, enumerates and simulates design errors — the
// bugs the paper's detect → localize → correct loop exists to remove.
//
// Two complementary fault surfaces are offered:
//
// # Injection (the debugging workload)
//
// Inject and InjectRandom mutate a netlist in place with one
// functional-design-error from the literature: a wrong LUT function
// (LUTBitFlip), swapped fanin connections (InputSwap), inverted output
// polarity (Polarity) or a mis-wired fanin (WrongNet). Injections are
// deterministic under a seed and return an Injection record naming the
// mutated cell, which the test suite uses to verify that localization
// finds the right site. Failures are typed: errors.Is(err, ErrNoSite)
// means the design has no cell the kind could ever apply to, while
// ErrExhausted means eligible sites exist but the seeded random search
// gave up (retry with another seed).
//
// # Enumeration and fault-parallel scanning (the campaign workload)
//
// Universe enumerates the exhaustive single-fault list of a design —
// stuck-at-0/1 on every live net plus every single LUT-bit flip of every
// LUT cell, the classic SEU model for FPGA configuration memory — and
// Batches/BatchesN group it into lane-sized batches, one fault per
// simulator bit lane. Scan replays a broadcast stimulus over each batch
// on a forked sim.Machine (sim.SetLaneFault), so Lanes() — 64·W on a
// width-W lane-vector program — mutants are simulated per trace
// with no netlist clone and no recompile, and returns each fault's
// detection outcome and PO-mismatch signature. SerialScan computes the
// same results one mutated netlist at a time; it is the differential
// oracle for Scan and the baseline the fault-parallel speedup is
// measured against (cmd/benchrepro -json-faults). The signatures feed
// the fault dictionary that internal/debug uses to localize errors
// without inserting physical probes (see DESIGN.md §9).
package faults
