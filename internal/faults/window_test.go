package faults

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
)

// TestWindowedScanMatchesSerialAcrossCatalog is the differential
// guarantee of the transient-SEU model: the lane engine's per-cycle
// arming gate must produce outcomes bit-identical to the serial
// two-machine lockstep (golden outside the window, recompiled permanent
// mutant inside it, flip-flop state handed across each boundary) for
// every design in the catalog.
func TestWindowedScanMatchesSerialAcrossCatalog(t *testing.T) {
	for _, d := range bench.Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			mapped, err := synth.TechMap(d.Build())
			if err != nil {
				t.Fatal(err)
			}
			prog, err := sim.Compile(mapped)
			if err != nil {
				t.Fatal(err)
			}
			cfg := ScanConfig{Patterns: 16, Cycles: 4, Seed: 13}
			cycles := cfg.Patterns * cfg.Cycles
			limit := 96
			if testing.Short() {
				limit = 32
			}
			wu := WindowUniverse(Universe(mapped), cycles, 2*cfg.Cycles, limit, 21)
			if len(wu) == 0 {
				t.Fatalf("%s: empty window universe", d.Name)
			}
			lane, err := Scan(prog, wu, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ser, err := SerialWindowScan(prog, wu, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(lane) != len(ser) {
				t.Fatalf("%s: result counts differ: %d vs %d", d.Name, len(lane), len(ser))
			}
			detected := 0
			for i := range lane {
				if lane[i] != ser[i] {
					t.Fatalf("%s fault %d (%s): lane %+v != serial %+v",
						d.Name, i, lane[i].Fault.Describe(mapped), lane[i], ser[i])
				}
				if lane[i].Detected {
					detected++
				}
			}
			if detected == 0 {
				t.Fatalf("%s: no windowed fault detected — SEU scan is blind", d.Name)
			}
		})
	}
}

// TestWindowUniverseBounds pins the sampler: deterministic output,
// respected fault cap, and every window inside [0, cycles) with the
// requested length (clamped).
func TestWindowUniverseBounds(t *testing.T) {
	nl := target(t)
	u := Universe(nl)
	const cycles, winLen, cap = 40, 6, 8
	w1 := WindowUniverse(u, cycles, winLen, cap, 17)
	w2 := WindowUniverse(u, cycles, winLen, cap, 17)
	if len(w1) == 0 || len(w1) > cap {
		t.Fatalf("window universe size %d outside (0, %d]", len(w1), cap)
	}
	if len(w1) != len(w2) {
		t.Fatalf("window universe size unstable: %d vs %d", len(w1), len(w2))
	}
	for i, f := range w1 {
		if f != w2[i] {
			t.Fatalf("window universe order unstable at %d", i)
		}
		if !f.Windowed() {
			t.Fatalf("fault %d not windowed: %+v", i, f)
		}
		if f.From < 0 || int(f.To) > cycles || f.To-f.From != winLen {
			t.Fatalf("fault %d window [%d, %d) violates cycles=%d winLen=%d",
				i, f.From, f.To, cycles, winLen)
		}
	}
	// winLen longer than the stimulus clamps to the full run.
	for _, f := range WindowUniverse(u, 4, 99, 4, 1) {
		if f.From != 0 || f.To != 4 {
			t.Fatalf("oversized window not clamped: [%d, %d)", f.From, f.To)
		}
	}
	if WindowUniverse(nil, cycles, winLen, cap, 1) != nil {
		t.Fatal("empty universe should sample to nil")
	}
}

// TestWindowedNeverExceedsPermanent: a windowed arming of a fault can
// only ever observe a subset of the mismatches its permanent arming
// produces at the same sites... except through state corruption echoes;
// what must hold unconditionally is that an undetected permanent fault
// is also undetected in any window.
func TestWindowedNeverExceedsPermanent(t *testing.T) {
	nl := target(t)
	prog, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScanConfig{Patterns: 16, Cycles: 2, Seed: 6}
	u := Universe(nl)
	wu := WindowUniverse(u, cfg.Patterns*cfg.Cycles, 3, 16, 9)
	perm := make([]Fault, len(wu))
	for i, f := range wu {
		f.From, f.To = 0, 0
		perm[i] = f
	}
	wres, err := Scan(prog, wu, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Scan(prog, perm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wres {
		if wres[i].Detected && !pres[i].Detected {
			t.Fatalf("windowed %s detected but permanent arming is not",
				wres[i].Fault.Describe(nl))
		}
		if wres[i].Detected && wres[i].FirstCycle < int(wu[i].From) {
			t.Fatalf("windowed %s first mismatch at cycle %d before arming edge %d",
				wres[i].Fault.Describe(nl), wres[i].FirstCycle, wu[i].From)
		}
	}
}

// BenchmarkSEUWindow measures lane-packed windowed-fault throughput
// (faults/sec) on c880.
func BenchmarkSEUWindow(b *testing.B) {
	info, err := bench.ByName("c880")
	if err != nil {
		b.Fatal(err)
	}
	mapped, err := synth.TechMap(info.Build())
	if err != nil {
		b.Fatal(err)
	}
	prog, err := sim.Compile(mapped)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ScanConfig{Patterns: 32, Cycles: 2, Seed: 1}
	wu := WindowUniverse(Universe(mapped), cfg.Patterns*cfg.Cycles, 4, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Scan(prog, wu, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(wu)*b.N)/b.Elapsed().Seconds(), "faults/sec")
}
