package faults

// The interconnect fault model: defects in the routing fabric rather
// than the logic. Route stuck-ats break the last hop into one LUT pin
// (the driving net stays healthy for every other consumer — unlike a net
// stuck-at, which every sink observes), and bridges short two routing
// wires into a wired-AND/OR. Both have exact lane forms (sim.LanePinStuck*,
// sim.LaneBridge*) and exact serial netlist forms (cofactored function,
// inserted bridge cell), so the catalog differential pins them like any
// other model. Repairing them means fixing wiring — rerouting a pin
// under the layout transaction — not rewriting truth tables; see
// internal/repair.

import (
	"math/rand"

	"fpgadbg/internal/netlist"
)

// InterconnectConfig shapes InterconnectUniverse.
type InterconnectConfig struct {
	// MaxBridges caps the sampled bridge list (default 64). Route
	// stuck-ats are enumerated exhaustively — they are linear in design
	// size.
	MaxBridges int
	Seed       int64
}

func (c InterconnectConfig) withDefaults() InterconnectConfig {
	if c.MaxBridges < 1 {
		c.MaxBridges = 64
	}
	return c
}

// netLevels computes per-net topological levels exactly as the execution
// core does: source nets (PIs, DFF outputs, undriven) are level 0, a
// LUT-driven net is one past its deepest fanin. Bridge aggressors must
// sit strictly below their victims in this order.
func netLevels(nl *netlist.Netlist) ([]int32, error) {
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	lv := make([]int32, len(nl.Nets))
	for _, id := range order {
		c := &nl.Cells[id]
		if c.Kind != netlist.KindLUT {
			continue
		}
		l := int32(0)
		for _, f := range c.Fanin {
			if lv[f] >= l {
				l = lv[f] + 1
			}
		}
		if len(c.Fanin) == 0 {
			l = 1
		}
		lv[c.Out] = l
	}
	return lv, nil
}

// InterconnectUniverse enumerates the interconnect fault list of a
// design in a deterministic order: route stuck-0 and stuck-1 on every
// fanin pin of every live ≤4-input LUT, then a seeded sample of bridges.
// Bridge victims are LUT-driven nets (so the serial bridge-cell form
// always exists) and aggressors are drawn from nets at strictly lower
// level — the ordering the lane engine requires for single-pass
// wired-AND/OR semantics; the bridge operator alternates AND/OR.
func InterconnectUniverse(nl *netlist.Netlist, cfg InterconnectConfig) ([]Fault, error) {
	cfg = cfg.withDefaults()
	var out []Fault
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead || c.Kind != netlist.KindLUT || len(c.Fanin) == 0 || len(c.Fanin) > maxFlipInputs {
			continue
		}
		for pin := range c.Fanin {
			out = append(out,
				Fault{Kind: RouteStuck0, Cell: netlist.CellID(ci), Pin: int32(pin)},
				Fault{Kind: RouteStuck1, Cell: netlist.CellID(ci), Pin: int32(pin)})
		}
	}

	lv, err := netLevels(nl)
	if err != nil {
		return nil, err
	}
	var victims, lower []netlist.NetID
	for ni := range nl.Nets {
		if nl.Nets[ni].Dead {
			continue
		}
		id := netlist.NetID(ni)
		d := nl.Nets[ni].Driver
		if d != netlist.NilCell && nl.Cells[d].Kind == netlist.KindLUT {
			victims = append(victims, id)
		}
		lower = append(lower, id)
	}
	if len(victims) == 0 || len(lower) < 2 {
		return out, nil
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	seen := make(map[[2]netlist.NetID]bool, cfg.MaxBridges)
	added := 0
	for tries := 0; added < cfg.MaxBridges && tries < cfg.MaxBridges*32; tries++ {
		v := victims[r.Intn(len(victims))]
		a := lower[r.Intn(len(lower))]
		if a == v || lv[a] >= lv[v] || seen[[2]netlist.NetID{v, a}] {
			continue
		}
		seen[[2]netlist.NetID{v, a}] = true
		k := BridgeAND
		if added%2 == 1 {
			k = BridgeOR
		}
		out = append(out, Fault{Kind: k, Net: v, Net2: a})
		added++
	}
	return out, nil
}
