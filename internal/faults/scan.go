package faults

import (
	"fmt"
	"math/bits"

	"fpgadbg/internal/obs"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

// ScanConfig shapes one fault-simulation campaign: Patterns scalar test
// vectors, each broadcast to every lane and held for Cycles clock
// cycles, drawn deterministically from Seed. The same config must be used
// to build a fault dictionary and to observe a failing design against
// it — signatures are only comparable under identical stimulus.
type ScanConfig struct {
	Patterns int // broadcast patterns (default 64)
	Cycles   int // clock cycles each pattern is held (default 2)
	Seed     int64
	// OnBatch, when set, is called after each 64-fault batch with the
	// progress so far; returning an error aborts the scan (the campaign
	// service cancels through it).
	OnBatch func(done, total int) error
	// Obs, when set, receives one "faultscan" span per Scan call with
	// fault/batch counters. Nil disables tracing at zero cost.
	Obs *obs.Trace
}

func (c ScanConfig) withDefaults() ScanConfig {
	if c.Patterns < 1 {
		c.Patterns = 64
	}
	if c.Cycles < 1 {
		c.Cycles = 2
	}
	return c
}

// Stimulus builds the broadcast stimulus sequence for a machine with npi
// primary inputs: Patterns scalar vectors × Cycles cycles each, columns
// in sim PIOrder.
func (c ScanConfig) Stimulus(npi int) [][]uint64 {
	c = c.withDefaults()
	return testgen.Repeat(testgen.ScalarBlocks(npi, c.Patterns, c.Seed), c.Cycles)
}

// Syndrome is the observable outcome of one mutant under a ScanConfig —
// the per-fault payload shared by single-fault, pair and windowed scan
// results. One lane carries one mutant (which may compose several
// simultaneous faults), so a Syndrome describes a lane, not a fault.
type Syndrome struct {
	// Detected reports whether any primary output ever diverged from the
	// golden stream.
	Detected bool
	// FirstCycle is the first diverging cycle (absolute position in the
	// stimulus sequence), or -1 when undetected — the detection latency.
	FirstCycle int
	// Mismatches counts diverging (cycle, output) pairs.
	Mismatches int
	// Signature is an order-sensitive hash of the PO-mismatch stream; two
	// mutants share it iff they produce the same mismatch pattern under
	// this stimulus. Zero when undetected.
	Signature uint64
	// XorSig is an order-invariant XOR-fold of the mismatch stream: each
	// diverging (cycle, PO) pair contributes one mixed 64-bit term, and
	// pairs appearing twice cancel. For two faults whose effects never
	// touch the same (cycle, PO) observation, the pair mutant's XorSig is
	// exactly XorSigA ^ XorSigB — the syndrome-composition identity the
	// debug layer's pair dictionary decodes. Zero when undetected.
	XorSig uint64
	// POMask records which PO columns diverged (column i sets bit i mod 64).
	POMask uint64
}

// ScanResult is one fault's simulated outcome under a ScanConfig.
type ScanResult struct {
	Fault Fault
	Syndrome
}

// Signer folds a stream of (cycle, primary-output) mismatches into a
// Syndrome. Both the fault scanner and the debug layer's
// observed-behaviour hashing use it, so dictionary keys and observations
// agree bit for bit. Mismatches must be noted in (cycle asc, PO asc)
// order — Signature is order-sensitive (XorSig is order-invariant by
// construction).
type Signer struct {
	sig    uint64
	xor    uint64
	poMask uint64
	first  int
	n      int
}

// fnv64 constants (FNV-1a).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Reset clears the accumulated signature.
func (s *Signer) Reset() {
	s.sig = fnvOffset
	s.xor = 0
	s.poMask = 0
	s.first = -1
	s.n = 0
}

// MixTerm is the 64-bit term one diverging (cycle, PO column)
// observation contributes to XorSig: a splitmix64 finalizer over the
// packed coordinates, so distinct observations XOR-combine without the
// systematic cancellation raw packed values would suffer.
func MixTerm(cycle, po int) uint64 {
	z := uint64(cycle)<<20 | uint64(po)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Note records one diverging (cycle, PO column) observation.
func (s *Signer) Note(cycle, po int) {
	if s.n == 0 {
		s.first = cycle
	}
	s.n++
	s.sig = (s.sig ^ (uint64(cycle)<<20 | uint64(po))) * fnvPrime
	s.xor ^= MixTerm(cycle, po)
	s.poMask |= 1 << (uint(po) & 63)
}

// Detected reports whether any mismatch was noted.
func (s *Signer) Detected() bool { return s.n > 0 }

// Syndrome packages the accumulated stream, independent of what mutant
// produced it — the fault-count-agnostic form Result and the pair/window
// scanners all share.
func (s *Signer) Syndrome() Syndrome {
	y := Syndrome{FirstCycle: -1}
	if s.n > 0 {
		y.Detected = true
		y.FirstCycle = s.first
		y.Mismatches = s.n
		y.Signature = s.sig
		y.XorSig = s.xor
		y.POMask = s.poMask
	}
	return y
}

// Result packages the accumulated stream as the outcome for one fault.
func (s *Signer) Result(f Fault) ScanResult {
	return ScanResult{Fault: f, Syndrome: s.Syndrome()}
}

// Scan fault-simulates every fault in Lanes()-sized batches: each batch
// arms up to 64·W faults on the lanes of one fork of prog (which must be
// compiled from the golden design — any lane width works, and a wide
// machine retires proportionally more faults per replay), replays the
// broadcast stimulus once, and reads each lane's divergence from the
// golden trace. No netlist is cloned and nothing is recompiled — per
// batch the only work beyond the trace replay is arming the lane faults.
// Results are in input order.
func Scan(prog *sim.Machine, fs []Fault, cfg ScanConfig) ([]ScanResult, error) {
	cfg = cfg.withDefaults()
	sp := cfg.Obs.Start(obs.StageFaultScan)
	defer sp.End()
	sp.Add("faults", int64(len(fs)))
	sp.Add("fault-batches", int64(len(BatchesN(fs, prog.Lanes()))))
	return ScanStim(prog, fs, cfg.Stimulus(len(prog.PIOrder())), cfg.OnBatch)
}

// ScanStim is Scan over an explicit broadcast stimulus sequence (every
// word 0 or all-ones) — the entry point for callers that derive the
// stimulus from elsewhere, e.g. the fault dictionary transposing a
// detection sequence (testgen.TransposeToScalar).
func ScanStim(prog *sim.Machine, fs []Fault, stim [][]uint64, onBatch func(done, total int) error) ([]ScanResult, error) {
	gt := prog.Fork().RunTrace(stim)
	mu := prog.Fork()
	batches := BatchesN(fs, prog.Lanes())
	out := make([]ScanResult, 0, len(fs))
	var tr sim.Trace
	signers := make([]Signer, prog.Lanes())
	for bi, batch := range batches {
		mu.ClearLaneFaults()
		for lane, f := range batch {
			lf, err := f.Lane()
			if err != nil {
				return nil, err
			}
			if err := mu.SetLaneFault(lane, lf); err != nil {
				return nil, fmt.Errorf("faults: arming %s: %w", f.Describe(prog.Netlist()), err)
			}
			signers[lane].Reset()
		}
		mu.RunTraceInto(&tr, stim)
		diffTraceInto(signers, batch, &tr, gt)
		for lane, f := range batch {
			out = append(out, signers[lane].Result(f))
		}
		if onBatch != nil {
			if err := onBatch(bi+1, len(batches)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// diffTraceInto notes every diverging (cycle, PO) observation of the
// first len(batch) lanes into their signers, comparing a perturbed wide
// trace against the golden stream. The broadcast stimulus keeps all
// golden lane words equal, so word 0 of the golden trace stands in for
// every word of the perturbed one. The batch element type is irrelevant —
// only its length (mutants armed this batch) matters, so single-fault,
// pair and windowed scans all share this loop.
func diffTraceInto[T any](signers []Signer, batch []T, tr, gt *sim.Trace) {
	for c := 0; c < tr.Cycles; c++ {
		for po := 0; po < tr.NumPOs; po++ {
			g := gt.Out(c, po)
			for w := 0; w < tr.Width; w++ {
				d := tr.OutW(c, po, w) ^ g
				for d != 0 {
					lane := w*64 + bits.TrailingZeros64(d)
					d &= d - 1
					if lane < len(batch) {
						signers[lane].Note(c, po)
					}
				}
			}
		}
	}
}

// SerialScan computes the same per-fault outcomes one mutant at a time —
// the legacy campaign shape: per fault, clone the golden netlist, apply
// the mutation, recompile and replay (stuck-ats on source nets, which
// have no netlist form, run as net overrides on a fork instead). It is
// the differential oracle for Scan — outcomes must be bit-identical —
// and the baseline the fault-parallel speedup is measured against.
func SerialScan(prog *sim.Machine, fs []Fault, cfg ScanConfig) ([]ScanResult, error) {
	cfg = cfg.withDefaults()
	return SerialScanStim(prog, fs, cfg.Stimulus(len(prog.PIOrder())), cfg.OnBatch)
}

// SerialScanStim is SerialScan over an explicit broadcast stimulus.
func SerialScanStim(prog *sim.Machine, fs []Fault, stim [][]uint64, onBatch func(done, total int) error) ([]ScanResult, error) {
	golden := prog.Netlist()
	gt := prog.Fork().RunTrace(stim)
	out := make([]ScanResult, 0, len(fs))
	var s Signer
	for fi, f := range fs {
		var tr *sim.Trace
		mutant := golden.Clone()
		applied, err := f.Apply(mutant)
		if err != nil {
			return nil, err
		}
		if applied {
			m2, err := sim.Compile(mutant)
			if err != nil {
				return nil, fmt.Errorf("faults: %s: %w", f.Describe(golden), err)
			}
			tr = m2.RunTrace(stim)
		} else {
			m2 := prog.Fork()
			w := uint64(0)
			if f.Kind == StuckAt1 {
				w = ^uint64(0)
			}
			if err := m2.SetOverride(f.Net, w); err != nil {
				return nil, fmt.Errorf("faults: %s: %w", f.Describe(golden), err)
			}
			tr = m2.RunTrace(stim)
		}
		// Broadcast stimulus and a single whole-design mutation keep all
		// lanes identical, so word-0 comparison is per-lane exact.
		s.Reset()
		for c := 0; c < tr.Cycles; c++ {
			for po := 0; po < tr.NumPOs; po++ {
				if tr.Out(c, po) != gt.Out(c, po) {
					s.Note(c, po)
				}
			}
		}
		out = append(out, s.Result(f))
		if onBatch != nil && ((fi+1)%64 == 0 || fi+1 == len(fs)) {
			if err := onBatch((fi+1+63)/64, (len(fs)+63)/64); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}
