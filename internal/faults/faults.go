package faults

import (
	"errors"
	"fmt"
	"math/rand"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// ErrNoSite reports that the netlist has no cell a requested error kind
// could ever apply to (e.g. no multi-input LUT for an input swap).
var ErrNoSite = errors.New("no injectable site")

// ErrExhausted reports RNG exhaustion: eligible cells exist, but the
// seeded random search gave up before finding an applicable, non-trivial
// mutation. Retrying with a different seed may succeed.
var ErrExhausted = errors.New("injection attempts exhausted")

// Kind enumerates the design-error models.
type Kind int

const (
	// LUTBitFlip flips one truth-table entry of a LUT (a wrong minterm).
	LUTBitFlip Kind = iota
	// InputSwap exchanges two fanin connections of one LUT.
	InputSwap
	// Polarity replaces a LUT's function with its complement.
	Polarity
	// WrongNet rewires one LUT fanin to a different (topologically safe)
	// net.
	WrongNet
	// numInjectKinds bounds the kinds Inject can apply; the enumeration
	// kinds below are deliberately outside InjectRandom's rotation so
	// existing fault seeds keep selecting the same errors.
	numInjectKinds
	// StuckAt0 pins a net to 0 — an SEU/bridging model used by Universe
	// and the fault-parallel scanner, simulated as a lane perturbation
	// (sim.SetLaneFault) rather than injected as a netlist mutation.
	StuckAt0
	// StuckAt1 pins a net to 1.
	StuckAt1
	// BridgeAND shorts a victim net (Net) to an aggressor net (Net2): the
	// victim reads the wired-AND of the two signals, the aggressor is
	// unperturbed. An interconnect fault — the serial form inserts an
	// explicit bridge cell and rewires the victim's consumers.
	BridgeAND
	// BridgeOR is the wired-OR bridge.
	BridgeOR
	// RouteStuck0 breaks the route into fanin pin Pin of LUT Cell: the pin
	// reads a constant 0 while the driving net stays healthy for every
	// other consumer. The serial form cofactors the cell function.
	RouteStuck0
	// RouteStuck1 shorts the pin to a constant 1.
	RouteStuck1
)

func (k Kind) String() string {
	switch k {
	case LUTBitFlip:
		return "lut-bit-flip"
	case InputSwap:
		return "input-swap"
	case Polarity:
		return "polarity"
	case WrongNet:
		return "wrong-net"
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case BridgeAND:
		return "bridge-and"
	case BridgeOR:
		return "bridge-or"
	case RouteStuck0:
		return "route-stuck-0"
	case RouteStuck1:
		return "route-stuck-1"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injection records one injected design error.
type Injection struct {
	Kind Kind
	// Cell is the mutated cell.
	Cell netlist.CellID
	// CellName survives netlist compaction.
	CellName string
	Detail   string
}

func (in Injection) String() string {
	return fmt.Sprintf("%s at %s (%s)", in.Kind, in.CellName, in.Detail)
}

// Inject applies one error of the given kind to a random eligible cell.
// The netlist is mutated in place; inject into a Clone to keep a golden
// copy.
func Inject(nl *netlist.Netlist, kind Kind, seed int64) (*Injection, error) {
	if kind < 0 || kind >= numInjectKinds {
		return nil, fmt.Errorf("faults: kind %s is not injectable", kind)
	}
	r := rand.New(rand.NewSource(seed))
	var luts []netlist.CellID
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) >= 1 {
			luts = append(luts, netlist.CellID(ci))
		}
	}
	if len(luts) == 0 {
		return nil, fmt.Errorf("faults: %w: no LUTs to mutate", ErrNoSite)
	}
	if kind == InputSwap {
		ok := false
		for _, id := range luts {
			if len(nl.Cells[id].Fanin) >= 2 {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("faults: %w: no multi-input LUT for %s", ErrNoSite, kind)
		}
	}
	// Try several candidates: some mutations are inapplicable (e.g. a
	// 1-input LUT cannot swap inputs) or would be no-ops.
	for attempt := 0; attempt < 64; attempt++ {
		id := luts[r.Intn(len(luts))]
		c := &nl.Cells[id]
		switch kind {
		case LUTBitFlip:
			if c.Func.N > logic.TTMaxVars {
				continue
			}
			tt, err := c.Func.TT()
			if err != nil {
				continue
			}
			bit := uint64(r.Intn(1 << c.Func.N))
			tt.SetBit(bit, !tt.Bit(bit))
			if err := nl.SetFunc(id, tt.ToCover()); err != nil {
				return nil, err
			}
			return &Injection{Kind: kind, Cell: id, CellName: c.Name,
				Detail: fmt.Sprintf("minterm %d flipped", bit)}, nil
		case InputSwap:
			if len(c.Fanin) < 2 {
				continue
			}
			i := r.Intn(len(c.Fanin))
			j := r.Intn(len(c.Fanin))
			if i == j || c.Fanin[i] == c.Fanin[j] {
				continue
			}
			// A symmetric function is unaffected by a swap; require the
			// function to distinguish the two positions.
			if c.Func.N <= logic.TTMaxVars {
				tt, err := c.Func.TT()
				if err == nil && swapInvariant(tt, i, j) {
					continue
				}
			}
			if err := nl.SwapFanin(id, i, j); err != nil {
				return nil, err
			}
			return &Injection{Kind: kind, Cell: id, CellName: c.Name,
				Detail: fmt.Sprintf("pins %d and %d swapped", i, j)}, nil
		case Polarity:
			nc, err := c.Func.Not()
			if err != nil {
				continue
			}
			if err := nl.SetFunc(id, nc); err != nil {
				return nil, err
			}
			return &Injection{Kind: kind, Cell: id, CellName: c.Name, Detail: "output inverted"}, nil
		case WrongNet:
			pin := r.Intn(len(c.Fanin))
			alt := safeAlternative(nl, id, c.Fanin[pin], r)
			if alt == netlist.NilNet {
				continue
			}
			old := c.Fanin[pin]
			if err := nl.SetFanin(id, pin, alt); err != nil {
				return nil, err
			}
			return &Injection{Kind: kind, Cell: id, CellName: c.Name,
				Detail: fmt.Sprintf("pin %d rewired %s->%s", pin, nl.NetName(old), nl.NetName(alt))}, nil
		default:
			return nil, fmt.Errorf("faults: unknown kind %d", kind)
		}
	}
	return nil, fmt.Errorf("faults: %w: no applicable site for %s after 64 attempts", ErrExhausted, kind)
}

// InjectRandom picks a random error kind and site. The returned error
// distinguishes a design with nothing to mutate (ErrNoSite) from RNG
// exhaustion across every kind (ErrExhausted, retry with another seed).
func InjectRandom(nl *netlist.Netlist, seed int64) (*Injection, error) {
	r := rand.New(rand.NewSource(seed))
	order := r.Perm(int(numInjectKinds))
	exhausted := false
	for _, k := range order {
		inj, err := Inject(nl, Kind(k), seed+int64(k)+1)
		if err == nil {
			return inj, nil
		}
		if !errors.Is(err, ErrNoSite) {
			exhausted = true
		}
	}
	if exhausted {
		return nil, fmt.Errorf("faults: %w: no error kind applied for seed %d", ErrExhausted, seed)
	}
	return nil, fmt.Errorf("faults: %w: design offers no injectable error", ErrNoSite)
}

// swapInvariant reports whether the function is symmetric in variables i
// and j.
func swapInvariant(tt logic.TT, i, j int) bool {
	for m := uint64(0); m < uint64(1)<<tt.N; m++ {
		bi := m & (1 << i)
		bj := m & (1 << j)
		swapped := m
		if (bi != 0) != (bj != 0) {
			swapped = m ^ (1 << i) ^ (1 << j)
		}
		if tt.Bit(m) != tt.Bit(swapped) {
			return false
		}
	}
	return true
}

// safeAlternative returns a net that can replace the given fanin without
// creating a combinational cycle: the drivers' levels must stay below the
// mutated cell's level.
func safeAlternative(nl *netlist.Netlist, cell netlist.CellID, current netlist.NetID, r *rand.Rand) netlist.NetID {
	levels, _, err := nl.Levels()
	if err != nil {
		return netlist.NilNet
	}
	myLevel := levels[cell]
	var cands []netlist.NetID
	for ni := range nl.Nets {
		net := netlist.NetID(ni)
		if nl.Nets[ni].Dead || net == current {
			continue
		}
		d := nl.Nets[ni].Driver
		if d == netlist.NilCell {
			if nl.IsPI(net) {
				cands = append(cands, net)
			}
			continue
		}
		if nl.Cells[d].Kind == netlist.KindDFF || levels[d] < myLevel {
			cands = append(cands, net)
		}
	}
	if len(cands) == 0 {
		return netlist.NilNet
	}
	return cands[r.Intn(len(cands))]
}
