// Package faults injects design errors — the bugs the debugging loop must
// detect, localize and correct. The error model follows the functional
// design-error literature rather than manufacturing faults: wrong LUT
// functions (a mis-specified gate), swapped input connections, inverted
// polarity, and mis-wired fanins. All injections are deterministic under a
// seed and return a record naming the mutated cell, which the test suite
// uses to verify that localization finds the right site.
package faults

import (
	"fmt"
	"math/rand"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// Kind enumerates the design-error models.
type Kind int

const (
	// LUTBitFlip flips one truth-table entry of a LUT (a wrong minterm).
	LUTBitFlip Kind = iota
	// InputSwap exchanges two fanin connections of one LUT.
	InputSwap
	// Polarity replaces a LUT's function with its complement.
	Polarity
	// WrongNet rewires one LUT fanin to a different (topologically safe)
	// net.
	WrongNet
	numKinds
)

func (k Kind) String() string {
	switch k {
	case LUTBitFlip:
		return "lut-bit-flip"
	case InputSwap:
		return "input-swap"
	case Polarity:
		return "polarity"
	case WrongNet:
		return "wrong-net"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injection records one injected design error.
type Injection struct {
	Kind Kind
	// Cell is the mutated cell.
	Cell netlist.CellID
	// CellName survives netlist compaction.
	CellName string
	Detail   string
}

func (in Injection) String() string {
	return fmt.Sprintf("%s at %s (%s)", in.Kind, in.CellName, in.Detail)
}

// Inject applies one error of the given kind to a random eligible cell.
// The netlist is mutated in place; inject into a Clone to keep a golden
// copy.
func Inject(nl *netlist.Netlist, kind Kind, seed int64) (*Injection, error) {
	r := rand.New(rand.NewSource(seed))
	var luts []netlist.CellID
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) >= 1 {
			luts = append(luts, netlist.CellID(ci))
		}
	}
	if len(luts) == 0 {
		return nil, fmt.Errorf("faults: no LUTs to mutate")
	}
	// Try several candidates: some mutations are inapplicable (e.g. a
	// 1-input LUT cannot swap inputs) or would be no-ops.
	for attempt := 0; attempt < 64; attempt++ {
		id := luts[r.Intn(len(luts))]
		c := &nl.Cells[id]
		switch kind {
		case LUTBitFlip:
			if c.Func.N > logic.TTMaxVars {
				continue
			}
			tt, err := c.Func.TT()
			if err != nil {
				continue
			}
			bit := uint64(r.Intn(1 << c.Func.N))
			tt.SetBit(bit, !tt.Bit(bit))
			c.Func = tt.ToCover()
			return &Injection{Kind: kind, Cell: id, CellName: c.Name,
				Detail: fmt.Sprintf("minterm %d flipped", bit)}, nil
		case InputSwap:
			if len(c.Fanin) < 2 {
				continue
			}
			i := r.Intn(len(c.Fanin))
			j := r.Intn(len(c.Fanin))
			if i == j || c.Fanin[i] == c.Fanin[j] {
				continue
			}
			// A symmetric function is unaffected by a swap; require the
			// function to distinguish the two positions.
			if c.Func.N <= logic.TTMaxVars {
				tt, err := c.Func.TT()
				if err == nil && swapInvariant(tt, i, j) {
					continue
				}
			}
			c.Fanin[i], c.Fanin[j] = c.Fanin[j], c.Fanin[i]
			return &Injection{Kind: kind, Cell: id, CellName: c.Name,
				Detail: fmt.Sprintf("pins %d and %d swapped", i, j)}, nil
		case Polarity:
			nc, err := c.Func.Not()
			if err != nil {
				continue
			}
			c.Func = nc
			return &Injection{Kind: kind, Cell: id, CellName: c.Name, Detail: "output inverted"}, nil
		case WrongNet:
			pin := r.Intn(len(c.Fanin))
			alt := safeAlternative(nl, id, c.Fanin[pin], r)
			if alt == netlist.NilNet {
				continue
			}
			old := c.Fanin[pin]
			c.Fanin[pin] = alt
			return &Injection{Kind: kind, Cell: id, CellName: c.Name,
				Detail: fmt.Sprintf("pin %d rewired %s->%s", pin, nl.NetName(old), nl.NetName(alt))}, nil
		default:
			return nil, fmt.Errorf("faults: unknown kind %d", kind)
		}
	}
	return nil, fmt.Errorf("faults: no applicable site for %s after 64 attempts", kind)
}

// InjectRandom picks a random error kind and site.
func InjectRandom(nl *netlist.Netlist, seed int64) (*Injection, error) {
	r := rand.New(rand.NewSource(seed))
	order := r.Perm(int(numKinds))
	for _, k := range order {
		if inj, err := Inject(nl, Kind(k), seed+int64(k)+1); err == nil {
			return inj, nil
		}
	}
	return nil, fmt.Errorf("faults: no injectable error found")
}

// swapInvariant reports whether the function is symmetric in variables i
// and j.
func swapInvariant(tt logic.TT, i, j int) bool {
	for m := uint64(0); m < uint64(1)<<tt.N; m++ {
		bi := m & (1 << i)
		bj := m & (1 << j)
		swapped := m
		if (bi != 0) != (bj != 0) {
			swapped = m ^ (1 << i) ^ (1 << j)
		}
		if tt.Bit(m) != tt.Bit(swapped) {
			return false
		}
	}
	return true
}

// safeAlternative returns a net that can replace the given fanin without
// creating a combinational cycle: the drivers' levels must stay below the
// mutated cell's level.
func safeAlternative(nl *netlist.Netlist, cell netlist.CellID, current netlist.NetID, r *rand.Rand) netlist.NetID {
	levels, _, err := nl.Levels()
	if err != nil {
		return netlist.NilNet
	}
	myLevel := levels[cell]
	var cands []netlist.NetID
	for ni := range nl.Nets {
		net := netlist.NetID(ni)
		if nl.Nets[ni].Dead || net == current {
			continue
		}
		d := nl.Nets[ni].Driver
		if d == netlist.NilCell {
			if nl.IsPI(net) {
				cands = append(cands, net)
			}
			continue
		}
		if nl.Cells[d].Kind == netlist.KindDFF || levels[d] < myLevel {
			cands = append(cands, net)
		}
	}
	if len(cands) == 0 {
		return netlist.NilNet
	}
	return cands[r.Intn(len(cands))]
}
