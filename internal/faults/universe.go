package faults

import (
	"fmt"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// Fault is one enumerable single fault: a stuck-at on a net or a single
// LUT-bit flip on a cell. Unlike Injection (a netlist mutation that
// happened), a Fault is a site — it can be armed on a simulator lane
// (Lane), applied to a netlist clone (Apply) or looked up in a fault
// dictionary.
type Fault struct {
	Kind Kind
	// Net is the faulty net for StuckAt0/StuckAt1.
	Net netlist.NetID
	// Cell is the faulty LUT for LUTBitFlip.
	Cell netlist.CellID
	// Bit is the flipped truth-table entry for LUTBitFlip.
	Bit uint32
}

// Describe renders the fault with design names resolved.
func (f Fault) Describe(nl *netlist.Netlist) string {
	switch f.Kind {
	case StuckAt0, StuckAt1:
		return fmt.Sprintf("%s on net %s", f.Kind, nl.NetName(f.Net))
	case LUTBitFlip:
		return fmt.Sprintf("%s minterm %d at %s", f.Kind, f.Bit, nl.CellName(f.Cell))
	default:
		return f.Kind.String()
	}
}

// SuspectCell names the implementation cell a confirmed fault implicates:
// the flipped LUT, or the driver of the stuck net. Stuck-ats on
// driverless nets (primary inputs) implicate no cell and return false.
func (f Fault) SuspectCell(nl *netlist.Netlist) (string, bool) {
	switch f.Kind {
	case LUTBitFlip:
		return nl.CellName(f.Cell), true
	case StuckAt0, StuckAt1:
		d := nl.Nets[f.Net].Driver
		if d == netlist.NilCell {
			return "", false
		}
		return nl.CellName(d), true
	default:
		return "", false
	}
}

// Lane lowers the fault to its per-lane simulator perturbation.
func (f Fault) Lane() (sim.LaneFault, error) {
	switch f.Kind {
	case StuckAt0:
		return sim.LaneFault{Kind: sim.LaneStuckAt0, Net: f.Net}, nil
	case StuckAt1:
		return sim.LaneFault{Kind: sim.LaneStuckAt1, Net: f.Net}, nil
	case LUTBitFlip:
		return sim.LaneFault{Kind: sim.LaneLUTFlip, Cell: f.Cell, Minterm: f.Bit}, nil
	default:
		return sim.LaneFault{}, fmt.Errorf("faults: %s has no lane form", f.Kind)
	}
}

// Apply mutates a netlist (clone!) with this fault, for the serial
// one-mutant-at-a-time reference path: LUT-bit flips rewrite the cell
// function, stuck-ats on LUT-driven nets rewrite the driver to a
// constant. Stuck-ats on source nets (PIs, DFF outputs) have no netlist
// form — Apply reports applied=false and callers model them with
// sim.SetOverride instead.
func (f Fault) Apply(nl *netlist.Netlist) (applied bool, err error) {
	switch f.Kind {
	case LUTBitFlip:
		c := &nl.Cells[f.Cell]
		tt, err := c.Func.TT()
		if err != nil {
			return false, fmt.Errorf("faults: %s: %w", f.Describe(nl), err)
		}
		tt.SetBit(uint64(f.Bit), !tt.Bit(uint64(f.Bit)))
		c.Func = tt.ToCover()
		return true, nil
	case StuckAt0, StuckAt1:
		d := nl.Nets[f.Net].Driver
		if d == netlist.NilCell || nl.Cells[d].Kind != netlist.KindLUT {
			return false, nil
		}
		c := &nl.Cells[d]
		c.Func = logic.Const(c.Func.N, f.Kind == StuckAt1)
		return true, nil
	default:
		return false, fmt.Errorf("faults: %s cannot be applied", f.Kind)
	}
}

// maxFlipInputs bounds the LUT sizes whose truth-table bits Universe
// enumerates; 4-LUT technology mapping keeps every cell within it, and
// the bound keeps the fault list linear in design size.
const maxFlipInputs = 4

// Universe enumerates the exhaustive single-fault list of a design in a
// deterministic order: stuck-at-0 and stuck-at-1 on every live net, then
// one bit flip per truth-table entry of every live LUT cell of at most
// maxFlipInputs inputs — the configuration-memory SEU model.
func Universe(nl *netlist.Netlist) []Fault {
	var out []Fault
	for ni := range nl.Nets {
		if nl.Nets[ni].Dead {
			continue
		}
		id := netlist.NetID(ni)
		out = append(out,
			Fault{Kind: StuckAt0, Net: id},
			Fault{Kind: StuckAt1, Net: id})
	}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead || c.Kind != netlist.KindLUT || len(c.Fanin) > maxFlipInputs {
			continue
		}
		for bit := uint32(0); bit < 1<<uint(len(c.Fanin)); bit++ {
			out = append(out, Fault{Kind: LUTBitFlip, Cell: netlist.CellID(ci), Bit: bit})
		}
	}
	return out
}

// Batches splits a fault list into 64-fault groups, one simulator lane
// each on a width-1 machine. The last batch may be short; order is
// preserved.
func Batches(fs []Fault) [][]Fault { return BatchesN(fs, 64) }

// BatchesN splits a fault list into groups of at most n faults — one
// group per replay of a machine with n lanes (sim.Machine.Lanes), one
// fault per lane. The last batch may be short; order is preserved.
func BatchesN(fs []Fault, n int) [][]Fault {
	if len(fs) == 0 {
		return nil
	}
	if n < 1 {
		n = 64
	}
	out := make([][]Fault, 0, (len(fs)+n-1)/n)
	for len(fs) > n {
		out = append(out, fs[:n])
		fs = fs[n:]
	}
	return append(out, fs)
}
