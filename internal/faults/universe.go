package faults

import (
	"fmt"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// Fault is one enumerable fault site. Unlike Injection (a netlist
// mutation that happened), a Fault is a site — it can be armed on a
// simulator lane (Lane), applied to a netlist clone (Apply) or looked up
// in a fault dictionary. Beyond the classic stuck-at and LUT-bit-flip
// models it covers interconnect faults (bridges between two nets, route
// stuck-ats on one fanin pin) and carries an optional arming window for
// the transient/intermittent SEU model.
type Fault struct {
	Kind Kind
	// Net is the faulty net for StuckAt0/StuckAt1 and the victim net for
	// BridgeAND/BridgeOR.
	Net netlist.NetID
	// Net2 is the aggressor net for BridgeAND/BridgeOR.
	Net2 netlist.NetID
	// Cell is the faulty LUT for LUTBitFlip and RouteStuck0/1.
	Cell netlist.CellID
	// Bit is the flipped truth-table entry for LUTBitFlip.
	Bit uint32
	// Pin is the broken fanin pin for RouteStuck0/1.
	Pin int32
	// From/To is the arming window in trace cycles, [From, To): the fault
	// perturbs only cycles c with From ≤ c < To, though corrupted state
	// captured in flip-flops persists past To. To == 0 means no window —
	// a permanent fault (From is ignored). Zero values keep permanent
	// faults byte-identical to their pre-window encodings.
	From int32
	To   int32
}

// Windowed reports whether the fault carries a transient arming window.
func (f Fault) Windowed() bool { return f.To != 0 }

// Permanent strips the arming window, returning the always-armed form of
// the same fault site.
func (f Fault) Permanent() Fault {
	f.From, f.To = 0, 0
	return f
}

// Describe renders the fault with design names resolved.
func (f Fault) Describe(nl *netlist.Netlist) string {
	var s string
	switch f.Kind {
	case StuckAt0, StuckAt1:
		s = fmt.Sprintf("%s on net %s", f.Kind, nl.NetName(f.Net))
	case LUTBitFlip:
		s = fmt.Sprintf("%s minterm %d at %s", f.Kind, f.Bit, nl.CellName(f.Cell))
	case BridgeAND, BridgeOR:
		s = fmt.Sprintf("%s of net %s with %s", f.Kind, nl.NetName(f.Net), nl.NetName(f.Net2))
	case RouteStuck0, RouteStuck1:
		s = fmt.Sprintf("%s on pin %d of %s", f.Kind, f.Pin, nl.CellName(f.Cell))
	default:
		s = f.Kind.String()
	}
	if f.Windowed() {
		s += fmt.Sprintf(" in cycles [%d,%d)", f.From, f.To)
	}
	return s
}

// SuspectCell names the implementation cell a confirmed fault implicates:
// the flipped or pin-broken LUT, or the driver of the stuck/bridged net.
// Stuck-ats on driverless nets (primary inputs) implicate no cell and
// return false.
func (f Fault) SuspectCell(nl *netlist.Netlist) (string, bool) {
	switch f.Kind {
	case LUTBitFlip, RouteStuck0, RouteStuck1:
		return nl.CellName(f.Cell), true
	case StuckAt0, StuckAt1, BridgeAND, BridgeOR:
		d := nl.Nets[f.Net].Driver
		if d == netlist.NilCell {
			return "", false
		}
		return nl.CellName(d), true
	default:
		return "", false
	}
}

// Lane lowers the fault to its per-lane simulator perturbation,
// including the arming window.
func (f Fault) Lane() (sim.LaneFault, error) {
	lf := sim.LaneFault{From: f.From, To: f.To}
	switch f.Kind {
	case StuckAt0:
		lf.Kind, lf.Net = sim.LaneStuckAt0, f.Net
	case StuckAt1:
		lf.Kind, lf.Net = sim.LaneStuckAt1, f.Net
	case LUTBitFlip:
		lf.Kind, lf.Cell, lf.Minterm = sim.LaneLUTFlip, f.Cell, f.Bit
	case BridgeAND:
		lf.Kind, lf.Net, lf.Net2 = sim.LaneBridgeAND, f.Net, f.Net2
	case BridgeOR:
		lf.Kind, lf.Net, lf.Net2 = sim.LaneBridgeOR, f.Net, f.Net2
	case RouteStuck0:
		lf.Kind, lf.Cell, lf.Pin = sim.LanePinStuck0, f.Cell, f.Pin
	case RouteStuck1:
		lf.Kind, lf.Cell, lf.Pin = sim.LanePinStuck1, f.Cell, f.Pin
	default:
		return sim.LaneFault{}, fmt.Errorf("faults: %s has no lane form", f.Kind)
	}
	return lf, nil
}

// Apply mutates a netlist (clone!) with this fault's *permanent* form,
// for the serial one-mutant-at-a-time reference path: LUT-bit flips
// rewrite the cell function, stuck-ats on LUT-driven nets rewrite the
// driver to a constant, route stuck-ats cofactor the cell function at
// the broken pin, and bridges insert an explicit bridge cell (victim OP
// aggressor) and rewire every victim consumer — including primary-output
// slots — onto it. Stuck-ats on source nets (PIs, DFF outputs) have no
// netlist form — Apply reports applied=false and callers model them with
// sim.SetOverride instead. Arming windows are ignored: a windowed fault
// has no static netlist form, and the serial windowed-SEU oracle
// (SerialWindowScan) splices the permanent mutant in and out of the
// golden stream at the window boundaries instead.
func (f Fault) Apply(nl *netlist.Netlist) (applied bool, err error) {
	switch f.Kind {
	case LUTBitFlip:
		c := &nl.Cells[f.Cell]
		tt, err := c.Func.TT()
		if err != nil {
			return false, fmt.Errorf("faults: %s: %w", f.Describe(nl), err)
		}
		tt.SetBit(uint64(f.Bit), !tt.Bit(uint64(f.Bit)))
		c.Func = tt.ToCover()
		return true, nil
	case StuckAt0, StuckAt1:
		d := nl.Nets[f.Net].Driver
		if d == netlist.NilCell || nl.Cells[d].Kind != netlist.KindLUT {
			return false, nil
		}
		c := &nl.Cells[d]
		c.Func = logic.Const(c.Func.N, f.Kind == StuckAt1)
		return true, nil
	case RouteStuck0, RouteStuck1:
		c := &nl.Cells[f.Cell]
		if int(f.Pin) < 0 || int(f.Pin) >= len(c.Fanin) {
			return false, fmt.Errorf("faults: %s: cell has no pin %d", f.Describe(nl), f.Pin)
		}
		// The pin stays connected but the function no longer depends on
		// it — semantically identical to the route carrying a constant.
		c.Func = c.Func.Cofactor(int(f.Pin), f.Kind == RouteStuck1)
		return true, nil
	case BridgeAND, BridgeOR:
		d := nl.Nets[f.Net].Driver
		if d == netlist.NilCell || nl.Cells[d].Kind != netlist.KindLUT {
			// Source-net victims have no serial netlist form (the lane
			// engine models them, but InterconnectUniverse never emits
			// them).
			return false, nil
		}
		// Capture the victim's sinks before the bridge cell adds itself
		// to them.
		sinks := nl.Fanouts()[f.Net]
		fn := logic.AndN(2)
		if f.Kind == BridgeOR {
			fn = logic.OrN(2)
		}
		vName := nl.NetName(f.Net)
		b := nl.AddNet(vName + "__bridge")
		if _, err := nl.AddLUT(vName+"__bridge$c", fn, []netlist.NetID{f.Net, f.Net2}, b); err != nil {
			return false, fmt.Errorf("faults: %s: %w", f.Describe(nl), err)
		}
		for _, s := range sinks {
			if err := nl.SetFanin(s.Cell, s.Pin, b); err != nil {
				return false, fmt.Errorf("faults: %s: %w", f.Describe(nl), err)
			}
		}
		for i, po := range nl.POs {
			if po == f.Net {
				nl.POs[i] = b
			}
		}
		return true, nil
	default:
		return false, fmt.Errorf("faults: %s cannot be applied", f.Kind)
	}
}

// maxFlipInputs bounds the LUT sizes whose truth-table bits Universe
// enumerates; 4-LUT technology mapping keeps every cell within it, and
// the bound keeps the fault list linear in design size.
const maxFlipInputs = 4

// Universe enumerates the exhaustive single-fault list of a design in a
// deterministic order: stuck-at-0 and stuck-at-1 on every live net, then
// one bit flip per truth-table entry of every live LUT cell of at most
// maxFlipInputs inputs — the configuration-memory SEU model.
func Universe(nl *netlist.Netlist) []Fault {
	var out []Fault
	for ni := range nl.Nets {
		if nl.Nets[ni].Dead {
			continue
		}
		id := netlist.NetID(ni)
		out = append(out,
			Fault{Kind: StuckAt0, Net: id},
			Fault{Kind: StuckAt1, Net: id})
	}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead || c.Kind != netlist.KindLUT || len(c.Fanin) > maxFlipInputs {
			continue
		}
		for bit := uint32(0); bit < 1<<uint(len(c.Fanin)); bit++ {
			out = append(out, Fault{Kind: LUTBitFlip, Cell: netlist.CellID(ci), Bit: bit})
		}
	}
	return out
}

// Batches splits a single-fault list into 64-mutant groups, one
// simulator lane each on a width-1 machine. The last batch may be short;
// order is preserved.
func Batches(fs []Fault) [][]Fault { return BatchesN(fs, 64) }

// BatchesN splits a fault list into groups of at most n mutants — one
// group per replay of a machine with n lanes (sim.Machine.Lanes). Batch
// accounting is per *mutant*, not per fault: each element here is a
// single-fault mutant, while PairBatchesN packs two-fault mutants at the
// same one-lane-per-mutant cost. The last batch may be short; order is
// preserved.
func BatchesN(fs []Fault, n int) [][]Fault { return batchesOf(fs, n) }

// batchesOf is the lane-accounting core shared by every mutant shape: a
// slice element is one mutant and consumes one lane, whether it carries
// one fault (BatchesN), a fault pair (PairBatchesN) or any future
// multi-fault group.
func batchesOf[T any](xs []T, n int) [][]T {
	if len(xs) == 0 {
		return nil
	}
	if n < 1 {
		n = 64
	}
	out := make([][]T, 0, (len(xs)+n-1)/n)
	for len(xs) > n {
		out = append(out, xs[:n])
		xs = xs[n:]
	}
	return append(out, xs)
}
