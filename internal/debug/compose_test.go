package debug

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
)

// composeFixture compiles one catalog design and builds its syndrome
// composition dictionary under a fixed stimulus.
func composeFixture(t *testing.T, name string) (*sim.Machine, *SyndromeDict, faults.ScanConfig) {
	t.Helper()
	info, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := synth.TechMap(info.Build())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sim.Compile(mapped)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faults.ScanConfig{Patterns: 48, Cycles: 2, Seed: 31}
	dict, err := BuildSyndromeDict(prog, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dict.Detected == 0 {
		t.Fatalf("%s: dictionary indexes no detected faults", name)
	}
	return prog, dict, cfg
}

// TestClassifySingleExact: every detected single fault's own syndrome
// must classify as ClassSingle with the fault in the suspect set — and
// carry the MaybeMasked flag, because a pair whose partner is fully
// dominated is always an equally valid explanation.
func TestClassifySingleExact(t *testing.T) {
	_, dict, _ := composeFixture(t, "9sym")
	for _, r := range dict.Singles() {
		m := dict.Classify(r.Syndrome)
		if m.Class != ClassSingle {
			t.Fatalf("single %s classified %v", r.Fault.Descriptor(), m.Class)
		}
		if !m.MaybeMasked {
			t.Fatalf("single %s missing MaybeMasked flag", r.Fault.Descriptor())
		}
		found := false
		for _, f := range m.Singles {
			if f == r.Fault {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("single %s not in its own suspect set", r.Fault.Descriptor())
		}
	}
}

// TestDiagnosePairsProbeFree is the tentpole acceptance property at
// package scope: across a sampled pair universe, most detected pairs
// whose signature is not a single's must decode through XOR composition
// and be confirmed in simulation (exact signature reproduced by a lane
// pair scan) — zero probe rounds. Pairs that collapse onto a single
// signature must be flagged MaybeMasked, never misclassified as some
// wrong pair.
func TestDiagnosePairsProbeFree(t *testing.T) {
	prog, dict, cfg := composeFixture(t, "c880")
	nl := prog.Netlist()
	pu := faults.PairUniverse(nl, faults.Universe(nl), faults.PairConfig{
		MaxPairs: 128, Seed: 41, Singles: dict.Singles(),
	})
	res, err := faults.PairScan(prog, pu, cfg)
	if err != nil {
		t.Fatal(err)
	}
	detected, confirmed, masked, unknown := 0, 0, 0, 0
	for _, r := range res {
		if !r.Detected {
			continue
		}
		detected++
		m, err := dict.Diagnose(prog, r.Syndrome)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case m.Class == ClassPair && m.Confirmed:
			confirmed++
			// The confirmed front of the ranking reproduces the exact
			// signature — the injected pair must be among the candidates
			// (it trivially reproduces its own signature), possibly as an
			// equivalent pair; what we require is a non-empty confirmed set.
			if len(m.Pairs) == 0 {
				t.Fatalf("confirmed diagnosis with empty pair list for %s", r.Pair.Descriptor())
			}
		case m.Class == ClassSingle:
			if !m.MaybeMasked {
				t.Fatalf("pair %s collapsed to a single without the masked flag", r.Pair.Descriptor())
			}
			masked++
		case m.Class == ClassUnknown:
			unknown++
		}
	}
	if detected == 0 {
		t.Fatal("no pair detected")
	}
	rate := float64(confirmed) / float64(detected)
	t.Logf("c880 pairs: detected %d, confirmed %d (%.0f%%), masked-as-single %d, unknown %d",
		detected, confirmed, 100*rate, masked, unknown)
	if rate < 0.70 {
		t.Fatalf("probe-free pair diagnosis rate %.2f below the 0.70 acceptance bar", rate)
	}
}

// TestMaskedPairFlaggedNotMisclassified constructs explicitly dominated
// pairs: fault B inside the cone that fault A's stuck-at already
// flattens. The pair's syndrome equals A's alone; the classifier must
// answer ClassSingle + MaybeMasked with A's equivalence class — never
// ClassPair with a fabricated partner.
func TestMaskedPairFlaggedNotMisclassified(t *testing.T) {
	prog, dict, cfg := composeFixture(t, "9sym")
	nl := prog.Netlist()
	singles := dict.Singles()
	checked := 0
	for _, ra := range singles {
		if checked >= 8 {
			break
		}
		a := ra.Fault
		if a.Kind != faults.StuckAt0 && a.Kind != faults.StuckAt1 {
			continue
		}
		// A LUT-bit-flip on the driver of the stuck net is fully
		// dominated: the stuck-at overrides the driver's output entirely.
		d := nl.Nets[a.Net].Driver
		if d == netlist.NilCell || nl.Cells[d].Dead || nl.Cells[d].Kind != netlist.KindLUT {
			continue
		}
		b := faults.Fault{Kind: faults.LUTBitFlip, Cell: d, Bit: 0}
		pres, err := faults.PairScan(prog, []faults.Pair{{A: a, B: b}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		pr := pres[0]
		if !pr.Detected || pr.Signature != ra.Signature {
			// Domination only holds when the flip reaches the outputs
			// nowhere else; skip pairs where it leaks.
			continue
		}
		checked++
		m := dict.Classify(pr.Syndrome)
		if m.Class != ClassSingle {
			t.Fatalf("dominated pair {%s, %s} classified %v, want single",
				a.Descriptor(), b.Descriptor(), m.Class)
		}
		if !m.MaybeMasked {
			t.Fatalf("dominated pair {%s, %s} missing MaybeMasked", a.Descriptor(), b.Descriptor())
		}
		foundA := false
		for _, f := range m.Singles {
			if f == a {
				foundA = true
			}
		}
		if !foundA {
			t.Fatalf("dominated pair {%s, %s}: dominant fault not in suspect set",
				a.Descriptor(), b.Descriptor())
		}
	}
	if checked == 0 {
		t.Skip("no fully dominated pair constructible on this design")
	}
}

// TestClassifyUnknownFallsThrough: an undetected syndrome and a
// syndrome unexplainable by any single or composition must both come
// back ClassUnknown — the caller's cue to fall back to probe rounds.
func TestClassifyUnknownFallsThrough(t *testing.T) {
	_, dict, _ := composeFixture(t, "9sym")
	if m := dict.Classify(faults.Syndrome{}); m.Class != ClassUnknown {
		t.Fatalf("undetected syndrome classified %v", m.Class)
	}
	y := faults.Syndrome{
		Detected:   true,
		FirstCycle: 1,
		Mismatches: 3,
		Signature:  0xdeadbeefcafef00d,
		XorSig:     0x1357924680531642,
		POMask:     1,
	}
	if m := dict.Classify(y); m.Class == ClassSingle {
		t.Fatalf("fabricated syndrome matched a single exactly: %+v", m)
	}
}

// TestSuspectCellsRanked: suspect flattening dedups and keeps rank
// order — singles first, then pair members.
func TestSuspectCellsRanked(t *testing.T) {
	prog, dict, _ := composeFixture(t, "9sym")
	nl := prog.Netlist()
	for _, r := range dict.Singles()[:min(8, dict.Detected)] {
		m := dict.Classify(r.Syndrome)
		cells := m.SuspectCells(nl)
		// A class made only of faults with no suspect cell (stuck-ats on
		// primary inputs have no driver) legitimately flattens to empty.
		anyCell := false
		for _, f := range m.Singles {
			if _, ok := f.SuspectCell(nl); ok {
				anyCell = true
			}
		}
		if anyCell && len(cells) == 0 {
			t.Fatalf("no suspect cells for %s", r.Fault.Descriptor())
		}
		seen := map[string]bool{}
		for _, c := range cells {
			if seen[c] {
				t.Fatalf("duplicate suspect %q", c)
			}
			seen[c] = true
		}
	}
}
