package debug

import "testing"

// BenchmarkDetect measures the macro detection step: golden and faulty
// implementation replayed on common random stimulus and compared, both
// through the compiled trace API. The extra metric is ns per
// pattern-cycle per machine (8 blocks × 4 cycles × 64 patterns × 2
// machines per op).
func BenchmarkDetect(b *testing.B) {
	s, _ := session(b, 1)
	if _, err := s.Detect(8, 4); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Detect(8, 4); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perOp/float64(8*4*64*2), "ns/pattern-cycle")
}

// BenchmarkLocalize measures one full localization campaign (observation
// insertion is physical, so each op pays tile-local re-place-and-route on
// a fresh session).
func BenchmarkLocalize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, _ := session(b, 1)
		det, err := s.Detect(8, 4)
		if err != nil {
			b.Fatal(err)
		}
		if !det.Failed {
			b.Skip("injected error not excited")
		}
		b.StartTimer()
		if _, err := s.Localize(det, 3, 4); err != nil {
			b.Fatal(err)
		}
	}
}
