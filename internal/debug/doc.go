// Package debug drives the paper's four-step emulation debugging loop on
// top of the tiling engine: test-pattern generation, error detection,
// error localization, and error correction (pseudo-code steps 9–22).
//
// A Session holds a golden (known-good) mapped netlist and a tiled layout
// of the implementation under test. Detection emulates both on common
// stimulus and compares outputs. Localization physically inserts
// observation logic (MISRs) round by round — each insertion flowing
// through the tiling engine and paying only tile-local re-place-and-route
// — and narrows the suspect cone by comparing observed streams.
// Correction searches candidate repairs of the suspect cells with the
// lane-parallel engine in internal/repair — the golden model acts only as
// a behavioural oracle — applies the winner as a tile-local engineering
// change and re-verifies; CorrectFromGolden (copying the golden cell) is
// kept as the fallback for errors the search cannot explain.
package debug
