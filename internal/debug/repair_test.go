package debug

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
)

// kindSession builds golden + buggy layout with one injected error of a
// specific kind.
func kindSession(t testing.TB, kind faults.Kind, seed int64) (*Session, *faults.Injection) {
	t.Helper()
	golden := mappedDesign(t, 300, 4242)
	impl := golden.Clone()
	inj, err := faults.Inject(impl, kind, seed)
	if err != nil {
		t.Skipf("no %s site for seed %d: %v", kind, seed, err)
	}
	lay, err := core.BuildMapped(impl, core.Spec{Seed: seed, PlaceEffort: 0.25, TileFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(golden, lay, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s, inj
}

// TestRepairFixesInjectedErrors runs the candidate-search correction on
// each repairable injection kind and checks the repair verifies without
// ever copying golden cell structure.
func TestRepairFixesInjectedErrors(t *testing.T) {
	kinds := []faults.Kind{faults.LUTBitFlip, faults.InputSwap, faults.Polarity}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				s, inj := kindSession(t, kind, seed)
				det, err := s.Detect(8, 4)
				if err != nil {
					t.Fatal(err)
				}
				if !det.Failed {
					continue
				}
				diag, err := s.Localize(det, 4, 4)
				if err != nil {
					t.Fatal(err)
				}
				cor, err := s.Repair(diag, det)
				if err != nil {
					t.Logf("seed %d: repair inconclusive (%v), trying next seed", seed, err)
					continue
				}
				if !cor.Repaired || cor.RepairKind == "" {
					t.Fatalf("repair metadata missing: %+v", cor)
				}
				if !cor.ECOVerified || !cor.Verified {
					t.Fatalf("seed %d: repair of %v applied but not verified: %+v", seed, inj, cor)
				}
				if cor.Candidates < 1 || cor.Survivors < 1 || cor.Batches < 1 {
					t.Fatalf("implausible search stats: %+v", cor)
				}
				if err := s.Layout.Check(); err != nil {
					t.Fatalf("layout invalid after repair: %v", err)
				}
				return
			}
			t.Skip("no seed produced a conclusive repair case")
		})
	}
}

// TestRepairLoopConvergesWithoutGoldenCopy pins that the full loop can
// converge purely through candidate-search repairs for a function-shaped
// error: the correction must carry repair provenance.
func TestRepairLoopConvergesWithoutGoldenCopy(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		s, _ := kindSession(t, faults.LUTBitFlip, seed)
		det, err := s.Detect(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Failed {
			continue
		}
		rep, err := s.RunLoopCore(3, 8, 4, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean {
			continue // rare: search inconclusive and golden fallback iterated out
		}
		for _, cor := range rep.Corrections {
			if cor.Repaired {
				return // at least one correction came from the search engine
			}
		}
		t.Fatalf("seed %d: loop converged but every correction was a golden copy", seed)
	}
	t.Skip("no seed excited its injected error")
}

// TestLocalizeDictMissFallsThroughAndConverges injects TWO universe
// faults, so the observed signature matches no single-fault dictionary
// entry: LocalizeDict must fall through to probe rounds (a miss), and the
// loop must still converge through the fallback correction path.
func TestLocalizeDictMissFallsThroughAndConverges(t *testing.T) {
	info, err := bench.ByName("9sym")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := synth.TechMap(info.Build())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	dict, err := BuildFaultDict(prog, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	u := faults.Universe(golden)
	for seed := 0; seed < 8; seed++ {
		impl := golden.Clone()
		applied := 0
		for i := seed; i < len(u) && applied < 2; i += len(u)/7 + 1 {
			if ok, err := u[i].Apply(impl); err == nil && ok {
				applied++
			}
		}
		if applied < 2 {
			continue
		}
		lay, err := core.BuildMapped(impl, core.Spec{
			Overhead: 0.35, TileFrac: 0.25, Seed: 1, PlaceEffort: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		sess, err := NewSession(golden, lay, 1)
		if err != nil {
			t.Fatal(err)
		}
		sess.Dict = dict
		sess.SetGoldenMachine(prog.Fork())
		det, err := sess.Detect(4, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Failed {
			continue
		}
		diag, err := sess.LocalizeDict(det, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		if diag.Dict {
			continue // double fault mimicked a modeled one; try another pair
		}
		// The miss fell through to the sound probe-based rounds.
		if len(diag.Suspects) == 0 {
			t.Fatal("fallback produced no suspects")
		}
		rep, err := sess.RunLoopCore(4, 4, 2, 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean {
			t.Fatalf("loop did not converge after dictionary miss (%d iterations)", rep.Iterations)
		}
		// Once a correction removes one of the two faults, the residual
		// single fault may legitimately dictionary-resolve — only the
		// double-fault diagnosis itself had to miss, which diag.Dict
		// above already pinned.
		return
	}
	t.Skip("no double-fault pair was excited and missed")
}

// TestLocalizeDictAmbiguousFallsThroughAndConverges finds a fault whose
// signature class spans several cells, then tightens DictMaxSuspects so
// the class counts as ambiguous: LocalizeDict must fall back to probe
// rounds and still converge.
func TestLocalizeDictAmbiguousFallsThroughAndConverges(t *testing.T) {
	info, err := bench.ByName("9sym")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := synth.TechMap(info.Build())
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	const words, cycles, seed = 4, 2, 1
	dict, err := BuildFaultDict(prog, words, cycles, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Scan the universe under the dictionary stimulus and pick an
	// applied-form fault whose signature class implicates >= 2 cells.
	u := faults.Universe(golden)
	stim := DictStimulus(len(prog.PIOrder()), words, cycles, seed)
	results, err := faults.ScanStim(prog, u, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	classCells := make(map[uint64]map[string]bool)
	for _, r := range results {
		if !r.Detected {
			continue
		}
		if classCells[r.Signature] == nil {
			classCells[r.Signature] = map[string]bool{}
		}
		if name, ok := r.Fault.SuspectCell(golden); ok {
			classCells[r.Signature][name] = true
		}
	}
	var pick *faults.ScanResult
	for i := range results {
		r := &results[i]
		if !r.Detected || len(classCells[r.Signature]) < 2 {
			continue
		}
		impl := golden.Clone()
		if ok, err := r.Fault.Apply(impl); err != nil || !ok {
			continue
		}
		pick = r
		break
	}
	if pick == nil {
		t.Skip("no multi-cell signature class with an applied form")
	}
	impl := golden.Clone()
	if _, err := pick.Fault.Apply(impl); err != nil {
		t.Fatal(err)
	}
	lay, err := core.BuildMapped(impl, core.Spec{
		Overhead: 0.35, TileFrac: 0.25, Seed: 1, PlaceEffort: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(golden, lay, seed)
	if err != nil {
		t.Fatal(err)
	}
	sess.Dict = dict
	sess.DictMaxSuspects = 1 // any multi-cell class is now ambiguous
	sess.SetGoldenMachine(prog.Fork())
	det, err := sess.Detect(words, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Failed {
		t.Skip("picked fault not excited by packed detection")
	}
	diag, err := sess.LocalizeDict(det, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Dict {
		t.Fatalf("class of %d cells accepted despite DictMaxSuspects=1",
			len(classCells[pick.Signature]))
	}
	if diag.Rounds == 0 && len(diag.Suspects) > 1 {
		t.Fatalf("ambiguous fallback did no probe work: %+v", diag)
	}
	want, _ := pick.Fault.SuspectCell(golden)
	found := false
	for _, name := range diag.Suspects {
		if name == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("probe fallback %v misses the true cell %s", diag.Suspects, want)
	}
	rep, err := sess.RunLoopCore(3, words, cycles, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean {
		t.Fatal("loop did not converge after ambiguous dictionary class")
	}
}
