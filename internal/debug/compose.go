package debug

// The syndrome-composition dictionary — the multi-fault extension of the
// single-fault dictionary in dictionary.go. A single dictionary answers
// "which fault produces exactly this signature"; the composition
// dictionary answers "which *pair* of faults composes into it". The key
// is the order-invariant XorSig accumulated alongside every signature:
// for two faults whose effects never collide on the same (cycle, PO)
// observation, the pair mutant's XorSig is exactly XorSigA ^ XorSigB —
// the classic syndrome-superposition identity (cf. Hamming/BCH syndrome
// decode, where a multi-error syndrome is the XOR of single-error
// columns). Decoding is meet-in-the-middle: for an observed x, every
// detected single a proposes partner signature x ^ XorSig(a), one O(1)
// map probe each — O(U) total, never the quadratic pair space. Candidate
// pairs are then confirmed *in simulation* by a lane-packed pair scan
// whose exact order-sensitive Signature must reproduce the observation,
// so a composable-pair diagnosis costs one trace replay and zero probes.
// A fully masked pair (one fault dominates; the partner contributes no
// observable difference) is indistinguishable from its dominant single
// by any PO observation — the classifier reports the single-fault class
// and flags the possibility instead of guessing, and anything it cannot
// explain is ClassUnknown: the caller falls back to probe-based rounds
// exactly as LocalizeDict does on a miss.

import (
	"fmt"
	"math/bits"
	"sort"

	"fpgadbg/internal/faults"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// SyndromeClass is the composition dictionary's verdict on an observed
// syndrome.
type SyndromeClass int

const (
	// ClassUnknown: neither a single signature nor any pair composition
	// explains the observation — fall back to probe rounds.
	ClassUnknown SyndromeClass = iota
	// ClassSingle: the exact signature of one single-fault equivalence
	// class. When MaybeMasked is also set, a pair whose second fault is
	// fully masked by the first is an equally valid explanation — the two
	// are indistinguishable from the primary outputs, and the suspect set
	// is sound for the dominant fault either way.
	ClassSingle
	// ClassPair: the XOR-composition of two single-fault syndromes. With
	// Confirmed set, a candidate pair reproduced the exact observed
	// signature in simulation.
	ClassPair
)

func (c SyndromeClass) String() string {
	switch c {
	case ClassSingle:
		return "single"
	case ClassPair:
		return "pair"
	default:
		return "unknown"
	}
}

// SyndromeMatch is one classification outcome: the class plus its ranked
// suspect sets.
type SyndromeMatch struct {
	Class SyndromeClass
	// Singles is the matched single-fault equivalence class (ClassSingle).
	Singles []faults.Fault
	// Pairs is the ranked candidate pair list (ClassPair): confirmed
	// pairs first, then unconfirmed composition candidates ordered by
	// mismatch-count consistency.
	Pairs []faults.Pair
	// Confirmed reports that Pairs[0] reproduced the exact observed
	// signature in a verification scan.
	Confirmed bool
	// MaybeMasked flags a ClassSingle observation that a masked pair
	// could equally produce. It is always set with ClassSingle: a pair
	// whose second fault is fully dominated leaves exactly the dominant
	// single's signature at the outputs, so no PO observation can rule
	// the pair out — the honest verdict is "this single, possibly
	// carrying a masked passenger", never a guessed wrong pair.
	MaybeMasked bool
}

// SyndromeDict is the composition dictionary for one golden design under
// one scan stimulus. It is immutable after BuildSyndromeDict and safe to
// share across campaigns (the service caches one per design+stimulus).
type SyndromeDict struct {
	// Cfg pins the scan stimulus (Patterns/Cycles/Seed); observations are
	// only comparable when produced under the identical ScanConfig.
	Cfg faults.ScanConfig
	// Faults is the universe size; Detected how many singles the stimulus
	// excites (the decodable alphabet).
	Faults   int
	Detected int

	singles []faults.ScanResult // detected single-fault outcomes
	bySig   map[uint64][]int    // exact order-sensitive signature → singles indices
	byXor   map[uint64][]int    // order-invariant XorSig → singles indices
}

// BuildSyndromeDict fault-simulates the design's exhaustive single-fault
// universe (plus any extra faults, e.g. an interconnect universe) under
// cfg and indexes every detected fault by both its exact signature and
// its composable XorSig. prog must be compiled from the golden netlist;
// it is only forked, never mutated.
func BuildSyndromeDict(prog *sim.Machine, extra []faults.Fault, cfg faults.ScanConfig) (*SyndromeDict, error) {
	u := faults.Universe(prog.Netlist())
	u = append(u, extra...)
	results, err := faults.Scan(prog, u, cfg)
	if err != nil {
		return nil, fmt.Errorf("debug: building syndrome dictionary: %w", err)
	}
	d := &SyndromeDict{
		Cfg:    cfg,
		Faults: len(u),
		bySig:  make(map[uint64][]int),
		byXor:  make(map[uint64][]int),
	}
	for _, r := range results {
		if !r.Detected {
			continue
		}
		i := len(d.singles)
		d.singles = append(d.singles, r)
		d.bySig[r.Signature] = append(d.bySig[r.Signature], i)
		d.byXor[r.XorSig] = append(d.byXor[r.XorSig], i)
	}
	d.Detected = len(d.singles)
	return d, nil
}

// Singles exposes the detected single-fault outcomes the dictionary
// indexes (suspect ranking for pair universes reuses them).
func (d *SyndromeDict) Singles() []faults.ScanResult { return d.singles }

// Signatures returns the number of distinct exact signatures indexed.
func (d *SyndromeDict) Signatures() int { return len(d.bySig) }

// MemoryFootprint estimates resident bytes for the artifact cache.
func (d *SyndromeDict) MemoryFootprint() int64 {
	return 160 + int64(len(d.singles))*96 + int64(len(d.bySig)+len(d.byXor))*48
}

// MaxPairCandidates bounds how many decoded pair candidates Classify
// returns (and Diagnose verifies): the decode is O(universe), but a
// degenerate observation could explain itself hundreds of ways, and the
// verification scan packs candidates into lanes — one replay verifies up
// to Lanes() of them.
const MaxPairCandidates = 512

// suspectPairTop bounds the anchors the second decode stage explores
// when exact XOR composition cannot explain the observation
// (interacting pairs do not superpose); suspectPartnersPerAnchor bounds
// the residual-covering partners proposed per anchor. Their product,
// clipped by MaxPairCandidates, is the stage's candidate budget.
const (
	suspectPairTop           = 48
	suspectPartnersPerAnchor = 8
)

// heavyPairTop bounds the heavy-hitter prior: the singles with the most
// mismatches have the widest fanout cones, which makes them both the
// likeliest pair components a sampler ranks to the front and the
// likeliest to interact (overlapping cones defeat XOR composition) —
// so they are paired exhaustively whenever stage 1 cannot explain the
// observation.
const heavyPairTop = 24

// Diagnose's second verification wave: when no wave-1 candidate
// reproduces the observed signature, anchor-ranked singles are paired
// with *every* detected single and lane-verified in chunks, stopping at
// the first chunk that reproduces the signature — the regime (common on
// FSM designs) where one component anchors well but its partner's
// interacted footprint is unrankable by any static heuristic, so the
// partner alphabet must stay broad. The budget is wave2AnchorDepth
// anchors deep (total pair verifications ≈ depth × alphabet, floored at
// wave2MinBudget): measured component ranks under the first-cycle-
// primary anchor ordering put the well-ranked component inside that
// depth for most decodable pairs, and a syndrome that exhausts the
// budget unresolved falls back to probe rounds — which cost far more
// than the bounded scan did.
const (
	wave2AnchorDepth = 32
	wave2MinBudget   = 16384
	wave2Chunk       = 8192
)

// Classify decodes an observed syndrome against the dictionary:
// exact-signature single match first, then meet-in-the-middle pair
// composition over the XorSig index, with a PO-mask consistency filter
// (the pair's divergence columns must be covered by its components') and
// a mismatch-count ranking (for non-colliding pairs the pair's mismatch
// count is exactly the sum of its components'). Interacting pairs do
// not superpose, so a second decode stage pairs the top
// PO-overlap-ranked suspects exhaustively — those candidates rank after
// every composition hit and only earn trust through Diagnose's
// in-simulation confirmation. No simulation happens here.
func (d *SyndromeDict) Classify(y faults.Syndrome) SyndromeMatch {
	if !y.Detected {
		return SyndromeMatch{Class: ClassUnknown}
	}
	if idx := d.bySig[y.Signature]; len(idx) > 0 {
		m := SyndromeMatch{Class: ClassSingle, MaybeMasked: true}
		for _, i := range idx {
			m.Singles = append(m.Singles, d.singles[i].Fault)
		}
		return m
	}
	type scored struct {
		pair faults.Pair
		cost int
	}
	var cands []scored
	seen := make(map[[2]int]bool)
	// Stage 1: exact XOR composition, meet-in-the-middle.
	for i := range d.singles {
		partner := y.XorSig ^ d.singles[i].XorSig
		for _, j := range d.byXor[partner] {
			if j == i {
				continue
			}
			a, b := i, j
			if b < a {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			ra, rb := &d.singles[a], &d.singles[b]
			if y.POMask&^(ra.POMask|rb.POMask) != 0 {
				continue
			}
			cost := ra.Mismatches + rb.Mismatches - y.Mismatches
			if cost < 0 {
				cost = -cost
			}
			cands = append(cands, scored{pair: faults.Pair{A: ra.Fault, B: rb.Fault}, cost: cost})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].cost < cands[j].cost })

	// Stage 2: the heavy-hitter prior. Pair the top singles by mismatch
	// count exhaustively — cone overlap between wide-fanout faults is
	// exactly what breaks superposition, so when stage 1 comes up short
	// these interacting combinations are the best unconditioned guesses.
	if len(cands) < MaxPairCandidates {
		heavy := make([]int, len(d.singles))
		for i := range heavy {
			heavy[i] = i
		}
		sort.SliceStable(heavy, func(a, b int) bool {
			return d.singles[heavy[a]].Mismatches > d.singles[heavy[b]].Mismatches
		})
		if len(heavy) > heavyPairTop {
			heavy = heavy[:heavyPairTop]
		}
		for x := 0; x < len(heavy) && len(cands) < MaxPairCandidates; x++ {
			for z := x + 1; z < len(heavy) && len(cands) < MaxPairCandidates; z++ {
				a, b := heavy[x], heavy[z]
				if b < a {
					a, b = b, a
				}
				if seen[[2]int{a, b}] {
					continue
				}
				seen[[2]int{a, b}] = true
				ra, rb := &d.singles[a], &d.singles[b]
				if y.POMask&(ra.POMask|rb.POMask) == 0 {
					continue
				}
				cost := ra.Mismatches + rb.Mismatches - y.Mismatches
				if cost < 0 {
					cost = -cost
				}
				cands = append(cands, scored{pair: faults.Pair{A: ra.Fault, B: rb.Fault}, cost: cost})
			}
		}
	}

	// Stage 3: residual-driven suspect pairing. Anchors are singles
	// ranked by agreement with the observed divergence columns, with a
	// bonus for matching the first divergence cycle (the first observed
	// mismatch usually comes from one component alone). Each anchor then
	// seeks partners that best cover the residual columns the anchor
	// leaves unexplained. Interaction can both shrink and grow a
	// component's observable footprint, so this is a recall heuristic,
	// not a proof — which is why these rank behind every stage-1 hit and
	// only earn trust through Diagnose's confirmation scan.
	if len(cands) < MaxPairCandidates {
		type ranked struct {
			i     int
			score int
		}
		anchors := d.anchorRank(y)
		if len(anchors) > suspectPairTop {
			anchors = anchors[:suspectPairTop]
		}
		var partners []ranked
		for _, ai := range anchors {
			if len(cands) >= MaxPairCandidates {
				break
			}
			ra := &d.singles[ai]
			residual := y.POMask &^ ra.POMask
			target := residual
			if target == 0 {
				// The anchor already covers every observed column: the
				// partner's contribution is hidden inside them.
				target = y.POMask
			}
			partners = partners[:0]
			for j := range d.singles {
				if j == ai {
					continue
				}
				cover := bits.OnesCount64(d.singles[j].POMask & target)
				if cover == 0 {
					continue
				}
				cost := ra.Mismatches + d.singles[j].Mismatches - y.Mismatches
				if cost < 0 {
					cost = -cost
				}
				partners = append(partners, ranked{i: j, score: 16*cover - bits.OnesCount64(d.singles[j].POMask&^y.POMask)*4 - min(cost, 3)})
			}
			sort.SliceStable(partners, func(a, b int) bool { return partners[a].score > partners[b].score })
			taken := 0
			for _, pn := range partners {
				if taken >= suspectPartnersPerAnchor || len(cands) >= MaxPairCandidates {
					break
				}
				a, b := ai, pn.i
				if b < a {
					a, b = b, a
				}
				if seen[[2]int{a, b}] {
					continue
				}
				seen[[2]int{a, b}] = true
				rb := &d.singles[pn.i]
				cost := ra.Mismatches + rb.Mismatches - y.Mismatches
				if cost < 0 {
					cost = -cost
				}
				cands = append(cands, scored{pair: faults.Pair{A: ra.Fault, B: rb.Fault}, cost: cost})
				taken++
			}
		}
	}

	if len(cands) == 0 {
		return SyndromeMatch{Class: ClassUnknown}
	}
	if len(cands) > MaxPairCandidates {
		cands = cands[:MaxPairCandidates]
	}
	m := SyndromeMatch{Class: ClassPair}
	for _, c := range cands {
		m.Pairs = append(m.Pairs, c.pair)
	}
	return m
}

// anchorRank orders the detected singles by agreement with the observed
// syndrome. The primary key is an exact first-divergence-cycle match:
// the pair's first observed mismatch is almost always one component
// acting alone, so that component's solo FirstCycle equals the pair's —
// a far sharper signal on few-output FSM designs than PO masks, which
// interaction distorts. Within each key the tiebreak is PO-column
// agreement, 2·overlap − spill. Singles with no PO overlap are omitted.
// Both the stage-3 decode and Diagnose's second verification wave
// anchor on this ordering.
func (d *SyndromeDict) anchorRank(y faults.Syndrome) []int {
	type ranked struct{ i, score int }
	var anchors []ranked
	for i := range d.singles {
		overlap := bits.OnesCount64(d.singles[i].POMask & y.POMask)
		if overlap == 0 {
			continue
		}
		s := 2*overlap - bits.OnesCount64(d.singles[i].POMask&^y.POMask)
		if d.singles[i].FirstCycle == y.FirstCycle {
			s += 1 << 20
		}
		anchors = append(anchors, ranked{i: i, score: s})
	}
	sort.SliceStable(anchors, func(a, b int) bool { return anchors[a].score > anchors[b].score })
	out := make([]int, len(anchors))
	for k, a := range anchors {
		out[k] = a.i
	}
	return out
}

// Diagnose is Classify plus in-simulation confirmation: decoded pair
// candidates are lane-packed into pair scans on a fork of prog, and any
// candidate whose exact order-sensitive Signature reproduces the
// observation is promoted to the front with Confirmed set. Verification
// runs in two waves: wave 1 scans the decoded candidate list; if nothing
// there reproduces the signature, wave 2 pairs the top anchor-ranked
// singles with every detected single (budget-capped, same-site pairs
// skipped) and scans those — catching the interacting pairs whose
// partner footprint no static ranking finds. prog must be the machine
// (or a same-program fork) the dictionary was built from.
func (d *SyndromeDict) Diagnose(prog *sim.Machine, y faults.Syndrome) (SyndromeMatch, error) {
	m := d.Classify(y)
	if m.Class != ClassPair || len(m.Pairs) == 0 {
		return m, nil
	}
	verify := func(cands []faults.Pair) (confirmed, rest []faults.Pair, err error) {
		res, err := faults.PairScan(prog, cands, d.Cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("debug: verifying pair candidates: %w", err)
		}
		for _, r := range res {
			if r.Detected && r.Signature == y.Signature {
				confirmed = append(confirmed, r.Pair)
			} else {
				rest = append(rest, r.Pair)
			}
		}
		return confirmed, rest, nil
	}
	confirmed, rest, err := verify(m.Pairs)
	if err != nil {
		return m, err
	}
	if len(confirmed) == 0 {
		confirmed, err = d.diagnoseWave2(prog, y, verify, m.Pairs)
		if err != nil {
			return m, err
		}
	}
	if len(confirmed) > 0 {
		m.Pairs = append(confirmed, rest...)
		m.Confirmed = true
	}
	return m, nil
}

// diagnoseWave2 runs Diagnose's second verification wave: anchor-ranked
// singles paired with every other detected single, generated in anchor
// order and lane-verified a chunk at a time, returning the confirmed
// pairs of the first chunk that reproduces the signature. Same-site
// pairs and candidates wave 1 already scanned are skipped. Unconfirmed
// wave-2 pairs carry no ranking signal and are discarded — only the
// confirmed ones reach the match.
func (d *SyndromeDict) diagnoseWave2(prog *sim.Machine, y faults.Syndrome,
	verify func([]faults.Pair) (confirmed, rest []faults.Pair, err error), tried []faults.Pair) ([]faults.Pair, error) {
	if d.Detected < 2 {
		return nil, nil
	}
	budget := wave2AnchorDepth * d.Detected
	if budget < wave2MinBudget {
		budget = wave2MinBudget
	}
	nl := prog.Netlist()
	seen := make(map[faults.Pair]bool, len(tried)+budget)
	for _, p := range tried {
		seen[p] = true
		seen[faults.Pair{A: p.B, B: p.A}] = true
	}
	var chunk []faults.Pair
	spent := 0
	for _, ai := range d.anchorRank(y) {
		if spent >= budget {
			break
		}
		fa := d.singles[ai].Fault
		for j := range d.singles {
			fb := d.singles[j].Fault
			if fa == fb || faults.SameSite(nl, fa, fb) {
				continue
			}
			p := faults.Pair{A: fa, B: fb}
			if seen[p] || seen[faults.Pair{A: fb, B: fa}] {
				continue
			}
			seen[p] = true
			chunk = append(chunk, p)
			spent++
			if len(chunk) >= wave2Chunk {
				confirmed, _, err := verify(chunk)
				if err != nil || len(confirmed) > 0 {
					return confirmed, err
				}
				chunk = chunk[:0]
			}
			if spent >= budget {
				break
			}
		}
	}
	if len(chunk) == 0 {
		return nil, nil
	}
	confirmed, _, err := verify(chunk)
	return confirmed, err
}

// SuspectCells flattens the match's suspect sets into implicated golden
// cell names, deduplicated in first-seen (rank) order — the ranked
// suspect list a repair campaign consumes.
func (m SyndromeMatch) SuspectCells(nl *netlist.Netlist) []string {
	var out []string
	seen := make(map[string]bool)
	add := func(f faults.Fault) {
		if name, ok := f.SuspectCell(nl); ok && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, f := range m.Singles {
		add(f)
	}
	for _, p := range m.Pairs {
		add(p.A)
		add(p.B)
	}
	return out
}
