package debug

import (
	"math/rand"
	"testing"

	"fpgadbg/internal/core"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/synth"
)

// mappedDesign builds and tech-maps a deterministic random design.
func mappedDesign(t testing.TB, nodes int, seed int64) *netlist.Netlist {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	nl := netlist.New("dut")
	var nets []netlist.NetID
	for i := 0; i < 8; i++ {
		nets = append(nets, nl.AddPI(""))
	}
	for i := 0; i < nodes; i++ {
		k := 2 + r.Intn(3)
		fanin := make([]netlist.NetID, k)
		for j := range fanin {
			fanin[j] = nets[r.Intn(len(nets))]
		}
		out := nl.AddNet("")
		if r.Intn(8) == 0 {
			nl.MustAddDFF("", fanin[0], out, 0)
		} else {
			cov := logic.Cover{N: k}
			for c := 0; c < 1+r.Intn(3); c++ {
				var cu logic.Cube
				for v := 0; v < k; v++ {
					switch r.Intn(3) {
					case 0:
						cu = cu.WithLit(v, false)
					case 1:
						cu = cu.WithLit(v, true)
					}
				}
				cov.Cubes = append(cov.Cubes, cu)
			}
			nl.MustAddLUT("", cov, fanin, out)
		}
		nets = append(nets, out)
	}
	for i := 0; i < 6; i++ {
		nl.MarkPO(nets[len(nets)-1-i*2])
	}
	mapped, err := synth.TechMap(nl)
	if err != nil {
		t.Fatal(err)
	}
	return mapped
}

// session builds golden + buggy layout with one injected error.
func session(t testing.TB, seed int64) (*Session, *faults.Injection) {
	t.Helper()
	golden := mappedDesign(t, 300, 4242)
	impl := golden.Clone()
	inj, err := faults.InjectRandom(impl, seed)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := core.BuildMapped(impl, core.Spec{Seed: seed, PlaceEffort: 0.25, TileFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(golden, lay, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s, inj
}

func TestDetectFindsInjectedError(t *testing.T) {
	s, inj := session(t, 1)
	det, err := s.Detect(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Failed {
		t.Skipf("injected error %v not excited by 512 random patterns", inj)
	}
	if len(det.FailingOutputs) == 0 || len(det.Stimulus) == 0 {
		t.Fatal("failure detected but no evidence recorded")
	}
}

func TestDetectPassesOnCleanDesign(t *testing.T) {
	golden := mappedDesign(t, 200, 99)
	impl := golden.Clone()
	lay, err := core.BuildMapped(impl, core.Spec{Seed: 3, PlaceEffort: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(golden, lay, 3)
	if err != nil {
		t.Fatal(err)
	}
	det, err := s.Detect(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if det.Failed {
		t.Fatalf("clean design failed detection: %v", det.FailingOutputs)
	}
}

func TestLocalizeSoundAndPhysical(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		s, inj := session(t, seed)
		det, err := s.Detect(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Failed {
			continue
		}
		diag, err := s.Localize(det, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		// Soundness: the injected site is always among the suspects.
		found := false
		for _, name := range diag.Suspects {
			if name == inj.CellName {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: suspect set %v misses injected %v", seed, diag.Suspects, inj)
		}
		// Localization paid real, tile-local physical effort.
		if diag.Probes == 0 || diag.Effort.Work() == 0 {
			t.Fatalf("seed %d: no observation logic physically inserted", seed)
		}
		if err := s.Layout.Check(); err != nil {
			t.Fatalf("seed %d: layout invalid after localization: %v", seed, err)
		}
		return // one full positive case is enough
	}
	t.Skip("no seed excited its injected error")
}

func TestCorrectRepairsDesign(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s, _ := session(t, seed)
		det, err := s.Detect(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Failed {
			continue
		}
		diag, err := s.Localize(det, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		cor, err := s.CorrectFromGolden(diag, det)
		if err != nil {
			t.Fatal(err)
		}
		if !cor.Verified {
			t.Fatalf("seed %d: correction did not verify (fixed %v)", seed, cor.Fixed)
		}
		if cor.Repaired {
			t.Fatal("golden-copy correction must not claim a candidate-search repair")
		}
		if len(cor.Fixed) == 0 {
			t.Fatal("nothing was fixed")
		}
		if err := s.Layout.Check(); err != nil {
			t.Fatalf("layout invalid after correction: %v", err)
		}
		return
	}
	t.Skip("no seed excited its injected error")
}

func TestRunLoopEndToEnd(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		s, _ := session(t, seed)
		det, err := s.Detect(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Failed {
			continue
		}
		rep, err := s.RunLoop(3, 8, 4, 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Clean {
			t.Fatalf("seed %d: loop did not converge", seed)
		}
		if rep.Iterations < 1 {
			t.Fatal("no iterations recorded")
		}
		// The paper's claim: per-campaign tile effort stays below a single
		// full re-place-and-route times the iteration count.
		if rep.TileEffort.Work() >= rep.FullEffort.Work()*float64(rep.Iterations+1) {
			t.Fatalf("tiling effort %v not competitive with full %v", rep.TileEffort, rep.FullEffort)
		}
		return
	}
	t.Skip("no seed excited its injected error")
}

func TestLocalizeRejectsCleanDetection(t *testing.T) {
	s, _ := session(t, 1)
	if _, err := s.Localize(&Detection{Failed: false}, 2, 2); err == nil {
		t.Fatal("clean detection accepted")
	}
}

// TestCampaignRollbackRestoresPristine drives a whole debug campaign —
// detection, localization (with physical probe insertion), correction —
// inside one layout transaction and rolls it back, proving the journal
// restores the pristine state bit-identically. This is the contract the
// campaign service's layout pool relies on to reuse one layout across
// campaigns without cloning.
func TestCampaignRollbackRestoresPristine(t *testing.T) {
	golden := mappedDesign(t, 300, 4242)
	lay, err := core.BuildMapped(golden.Clone(), core.Spec{Seed: 5, PlaceEffort: 0.25, TileFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	pristine := lay.StateDigest()

	cp := lay.Checkpoint()
	inj, err := faults.InjectRandom(lay.NL, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(golden, lay, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunLoopCore(3, 8, 4, 3, 4)
	if err != nil {
		t.Fatalf("campaign on %v: %v", inj, err)
	}
	if rep.Iterations == 0 {
		t.Skipf("injected error %v not excited", inj)
	}
	if lay.StateDigest() == pristine {
		t.Fatal("campaign did not change the layout")
	}
	if err := lay.Rollback(cp); err != nil {
		t.Fatal(err)
	}
	if got := lay.StateDigest(); got != pristine {
		t.Fatalf("rollback digest %s != pristine %s", got, pristine)
	}
	if err := core.VerifyLayout(lay); err != nil {
		t.Fatal(err)
	}

	// The rolled-back layout must support a fresh campaign.
	cp2 := lay.Checkpoint()
	if _, err := faults.InjectRandom(lay.NL, 3); err != nil {
		t.Fatal(err)
	}
	s2, err := NewSession(golden, lay, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.RunLoopCore(2, 4, 2, 2, 4); err != nil {
		t.Fatal(err)
	}
	if err := lay.Rollback(cp2); err != nil {
		t.Fatal(err)
	}
	if got := lay.StateDigest(); got != pristine {
		t.Fatalf("second rollback digest %s != pristine %s", got, pristine)
	}
}
