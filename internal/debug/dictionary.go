package debug

// The fault-dictionary localizer. Probe-based localization (debug.go)
// pays real physical work: every round inserts observation logic and
// re-places-and-routes the affected tiles. A fault dictionary trades a
// one-time, purely-software precomputation for probe-free diagnosis: the
// exhaustive single-fault universe of the golden design is fault-
// simulated in lane batches of 64·W mutants (internal/faults.Scan on a
// width-W program), each fault's
// PO-mismatch signature is indexed, and a failing implementation is then
// diagnosed by replaying the same broadcast stimulus once and looking its
// observed signature up in the dictionary. An exact hit that implicates a
// single cell localizes the error with zero observation stages and zero
// tile-local CAD effort; a miss or an ambiguous hit (equivalent faults on
// different cells, or an error outside the modeled universe) falls back
// to the sound probe-based rounds. See DESIGN.md §9.

import (
	"fmt"

	"fpgadbg/internal/faults"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

// FaultDict is a precomputed fault dictionary for one golden design under
// one scan stimulus. It is immutable after BuildFaultDict and safe to
// share across sessions (the campaign service caches one per design).
type FaultDict struct {
	// Words, Cycles and Seed pin the dictionary stimulus: the scalar
	// expansion (testgen.TransposeToScalar) of the same random blocks
	// Session.Detect replays under these parameters. Building the
	// dictionary with the session's detection parameters therefore
	// guarantees — exactly for combinational designs, empirically for
	// sequential ones — that an error detection can excite is also excited
	// during dictionary observation.
	Words  int
	Cycles int
	Seed   int64

	// Faults is the universe size; Detected how many faults the stimulus
	// excites at all (the rest are silent and undiagnosable from POs).
	Faults   int
	Detected int

	bySig map[uint64][]faults.Fault
}

// DictStimulus is the broadcast scan stimulus shared by BuildFaultDict,
// signature observation and repair-candidate validation: words random
// 64-pattern blocks transposed into 64·words scalar patterns, each held
// for cycles clock cycles. It is the one canonical recipe — anything
// classifying faults against a dictionary must use it with the
// dictionary's exact parameters, or signatures stop being comparable.
func DictStimulus(npi, words, cycles int, seed int64) [][]uint64 {
	return testgen.Repeat(testgen.TransposeToScalar(testgen.RandomBlocks(npi, words, seed)), cycles)
}

// BuildFaultDict enumerates the golden design's single-fault universe and
// fault-simulates it in Lanes()-sized batches under the dictionary
// stimulus,
// indexing every detected fault by its PO-mismatch signature. words,
// cycles and seed should match the detection parameters of the sessions
// that will consult the dictionary (see FaultDict). prog must be compiled
// from the golden netlist; it is only forked, never mutated.
func BuildFaultDict(prog *sim.Machine, words, cycles int, seed int64) (*FaultDict, error) {
	if words < 1 {
		words = 8
	}
	if cycles < 1 {
		cycles = 1
	}
	u := faults.Universe(prog.Netlist())
	stim := DictStimulus(len(prog.PIOrder()), words, cycles, seed)
	results, err := faults.ScanStim(prog, u, stim, nil)
	if err != nil {
		return nil, fmt.Errorf("debug: building fault dictionary: %w", err)
	}
	d := &FaultDict{
		Words:  words,
		Cycles: cycles,
		Seed:   seed,
		Faults: len(u),
		bySig:  make(map[uint64][]faults.Fault),
	}
	for _, r := range results {
		if !r.Detected {
			continue
		}
		d.Detected++
		d.bySig[r.Signature] = append(d.bySig[r.Signature], r.Fault)
	}
	return d, nil
}

// Match returns the faults whose mismatch signature equals the observed
// one — the dictionary's candidate set (nil when unknown).
func (d *FaultDict) Match(sig uint64) []faults.Fault { return d.bySig[sig] }

// Signatures returns the number of distinct signatures indexed.
func (d *FaultDict) Signatures() int { return len(d.bySig) }

// MemoryFootprint estimates resident bytes for the artifact cache.
func (d *FaultDict) MemoryFootprint() int64 {
	return 128 + int64(len(d.bySig))*48 + int64(d.Detected)*24
}

// DefaultDictMaxSuspects bounds how large a matched fault-equivalence
// class LocalizeDict accepts as a probe-free diagnosis.
const DefaultDictMaxSuspects = 8

// LocalizeDict diagnoses a detected failure through the session's fault
// dictionary when one is attached (Session.Dict). The observed
// PO-mismatch signature is looked up; the cells implicated by the
// matching faults become the suspect set directly — no observation logic
// is inserted, so Diagnosis.Rounds and Probes stay zero and
// Diagnosis.Dict is true. A matched class may span a few cells: faults in
// one signature class are indistinguishable from the primary outputs
// under this stimulus (typically a driver and its fanout buffer), and
// correction disambiguates them against the golden model for free. The
// probe-based Localize remains the fallback whenever the dictionary is
// not conclusive: no dictionary, the dictionary stimulus does not excite
// the error, the signature is unknown (an error outside the modeled
// universe), or the matched class is too diffuse (more than
// Session.DictMaxSuspects cells).
func (s *Session) LocalizeDict(det *Detection, maxRounds, probesPerRound int) (*Diagnosis, error) {
	if s.Dict == nil {
		return s.Localize(det, maxRounds, probesPerRound)
	}
	if !det.Failed {
		return nil, fmt.Errorf("debug: nothing to localize: detection passed")
	}
	if err := s.interrupted(); err != nil {
		return nil, err
	}
	// The dictionary consultation — observation replay plus signature
	// lookup — is one localize-dict span; a fallback to probe rounds ends
	// it before Localize opens its own localize-probe span.
	dsp := s.Obs.Start(obs.StageLocalizeDict)
	sig, excited, err := s.observeSignature()
	if err != nil {
		dsp.End()
		return nil, err
	}
	if !excited {
		dsp.Add("dict-miss", 1)
		dsp.End()
		s.emit("localize", 0, "fault dictionary: observation stimulus does not excite the error — probe rounds")
		return s.Localize(det, maxRounds, probesPerRound)
	}
	cands := s.Dict.Match(sig)
	cells := make(map[string]bool)
	for _, f := range cands {
		if name, ok := f.SuspectCell(s.Golden); ok {
			// The suspect must exist in the implementation to be repairable.
			if _, ok := s.Layout.NL.CellByName(name); ok {
				cells[name] = true
			}
		}
	}
	limit := s.DictMaxSuspects
	if limit <= 0 {
		limit = DefaultDictMaxSuspects
	}
	if len(cells) == 0 || len(cells) > limit {
		dsp.Add("dict-miss", 1)
		dsp.End()
		s.emit("localize", 0, "fault dictionary %s (%d candidate faults, %d cells) — probe rounds",
			dictMissWord(len(cands)), len(cands), len(cells))
		return s.Localize(det, maxRounds, probesPerRound)
	}
	dsp.Add("dict-hit", 1)
	dsp.Add("dict-suspects", int64(len(cells)))
	defer dsp.End()
	diag := &Diagnosis{Dict: true}
	for name := range cells {
		diag.Suspects = append(diag.Suspects, name)
	}
	s.fillTiles(diag)
	s.emit("localize", 0, "fault dictionary hit: signature %016x → %v (%d equivalent fault(s)), no probes inserted",
		sig, diag.Suspects, len(cands))
	return diag, nil
}

func dictMissWord(n int) string {
	if n == 0 {
		return "miss"
	}
	return "ambiguous"
}

// observeSignature replays the dictionary's broadcast stimulus on golden
// and implementation and hashes the PO-mismatch stream exactly as
// faults.Scan does for each lane, so the observation is directly
// comparable with dictionary entries. The golden replay is memoized in
// the session's TraceStore like every probe-free golden trace.
func (s *Session) observeSignature() (sig uint64, excited bool, err error) {
	mg, err := s.goldenMachine()
	if err != nil {
		return 0, false, err
	}
	csp := s.Obs.Start(obs.StageCompile)
	mi, err := sim.Compile(s.Layout.NL)
	csp.End()
	if err != nil {
		return 0, false, fmt.Errorf("debug: impl: %w", err)
	}
	piNames := s.Golden.SortedPINames()
	if err := mg.BindNames(piNames); err != nil {
		return 0, false, fmt.Errorf("debug: golden: %w", err)
	}
	if err := mi.BindNames(piNames); err != nil {
		return 0, false, fmt.Errorf("debug: impl: %w", err)
	}
	goldenPI := make(map[string]bool, len(piNames))
	for _, n := range piNames {
		goldenPI[n] = true
	}
	for _, n := range s.Layout.NL.SortedPINames() {
		if goldenPI[n] {
			continue
		}
		if id, ok := s.Layout.NL.NetByName(n); ok {
			if err := mi.SetOverride(id, 0); err != nil {
				return 0, false, fmt.Errorf("debug: impl: %w", err)
			}
		}
	}
	// Signature PO order is the golden machine's trace column order — the
	// same convention faults.Scan uses.
	poNames := mg.PONames()
	iCols, err := mi.POCols(poNames)
	if err != nil {
		return 0, false, fmt.Errorf("debug: impl: %w", err)
	}
	stim := DictStimulus(len(piNames), s.Dict.Words, s.Dict.Cycles, s.Dict.Seed)
	gsp := s.Obs.Start(obs.StageGoldenTrace)
	var tg *sim.Trace
	if s.Traces != nil {
		key := s.goldenTraceKey(stim)
		if hit, ok := s.Traces.GetTrace(key); ok && hit.Cycles == len(stim) && hit.NumPOs == len(poNames) {
			tg = hit
			gsp.Add("trace-cache-hit", 1)
		} else {
			tg = mg.RunTrace(stim)
			s.Traces.PutTrace(key, tg)
			gsp.Add("trace-cache-miss", 1)
		}
	} else {
		tg = mg.RunTrace(stim)
	}
	gsp.End()
	ti := mi.RunTrace(stim)
	var sg faults.Signer
	sg.Reset()
	for c := 0; c < len(stim); c++ {
		for po := range poNames {
			// Broadcast stimulus keeps all lanes identical, so word
			// inequality is per-lane divergence.
			if tg.Out(c, po) != ti.Out(c, iCols[po]) {
				sg.Note(c, po)
			}
		}
	}
	r := sg.Result(faults.Fault{})
	return r.Signature, r.Detected, nil
}
