package debug

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"

	"fpgadbg/internal/core"
	"fpgadbg/internal/eco"
	"fpgadbg/internal/instr"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/overlay"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

// Event is one progress notification emitted while a session works; the
// campaign service streams these to clients as they happen.
type Event struct {
	// Stage is "detect", "localize", "repair", "correct" or "loop".
	Stage string
	// Round is the localization round or loop iteration (1-based), 0
	// where it does not apply.
	Round int
	Msg   string
}

// TraceStore caches golden reference traces across sessions. Keys are
// content addresses (golden fingerprint + stimulus hash), so any campaign
// on the same golden design replays the same detection stimulus for free.
// Stored traces are shared — callers must treat them as read-only.
type TraceStore interface {
	GetTrace(key string) (*sim.Trace, bool)
	PutTrace(key string, tr *sim.Trace)
}

// Session is one debugging campaign.
type Session struct {
	Golden *netlist.Netlist
	Layout *core.Layout
	Seed   int64

	// Ctx, when set, cancels the campaign between replay and CAD steps;
	// long loops return Ctx.Err() wrapped. Nil means never canceled.
	Ctx context.Context
	// Progress, when set, receives an Event at each stage and round.
	// Called synchronously from the session's goroutine.
	Progress func(Event)
	// Traces, when set, memoizes probe-free golden reference traces by
	// content address, so repeated detections of the same golden design
	// (within this session or across concurrent sessions) replay once.
	Traces TraceStore
	// Dict, when set, is the golden design's fault dictionary: RunLoopCore
	// and LocalizeDict consult it before inserting any observation logic,
	// and only fall back to probe rounds when it is ambiguous (see
	// dictionary.go). Dictionaries are immutable and shareable.
	Dict *FaultDict
	// DictMaxSuspects bounds the matched-class size LocalizeDict accepts
	// without probes (0 = DefaultDictMaxSuspects).
	DictMaxSuspects int
	// SimWidth is the lane-vector width W (sim.CompileWidth) for the
	// machines this session compiles as lane-parallel hosts — today the
	// repair candidate program, whose validation retires 64·W candidates
	// per replay. Detection and observation replays read lane word 0 of
	// broadcast stimulus and always run at width 1. 0 means width 1.
	SimWidth int
	// Obs, when set, is the per-campaign trace this session's stages
	// (detect, compile, goldentrace, localize-*, repair-*, eco-verify)
	// record spans on. The campaign service also attaches it to the
	// Layout (core.Layout.SetObs) so the physical place/route/sta work
	// under each ApplyDelta lands in the same trace. Nil disables
	// telemetry at the cost of one pointer test per stage.
	Obs *obs.Trace
	// Overlay, when set, is this campaign's tap selector on the
	// layout's pre-reserved debug overlay: a probe round whose targets
	// are all within overlay reach becomes a pure configuration switch
	// (overlay.Selector.Select) with zero CAD effort; rounds with any
	// unreachable target fall back to the MISR-insertion path and are
	// counted in OverlayFallbacks.
	Overlay *overlay.Selector
	// Causal enables the causal-chain localizer: before the first probe
	// round, the failing trace is replayed with every suspect output
	// observed, and suspects are ranked by causal distance from the
	// first mismatching cycle (causalRank); pickProbes then prefers
	// low-distance suspects, cutting probe rounds on sequential
	// designs. Off by default so legacy campaigns keep their exact
	// round counts and digests.
	Causal bool
	// OverlaySwitches counts probe batches served by pure overlay
	// configuration switches; OverlayFallbacks counts rounds that had
	// to fall back to MISR insertion despite an attached Overlay.
	OverlaySwitches  int
	OverlayFallbacks int

	// TileEffort accumulates all tile-local CAD work spent by this
	// session (observation inserts + corrections).
	TileEffort core.Effort
	// Probes counts physically inserted observation stages.
	Probes int

	misrSeq int
	// golden is the compiled golden machine, reused across replays (the
	// golden netlist never mutates; the implementation does, so it is
	// recompiled per comparison).
	golden *sim.Machine
	// goldenFP caches the golden netlist's fingerprint for trace keys.
	goldenFP string
}

// NewSession pairs a golden netlist with an implementation layout. The
// implementation must have been derived from the golden netlist (same
// cell and net names), which is exactly the emulation scenario: the
// design under test is the mapped design plus injected/introduced errors.
func NewSession(golden *netlist.Netlist, layout *core.Layout, seed int64) (*Session, error) {
	if golden == nil || layout == nil {
		return nil, fmt.Errorf("debug: nil golden or layout")
	}
	return &Session{Golden: golden, Layout: layout, Seed: seed}, nil
}

// SetGoldenMachine supplies a pre-compiled machine for the golden design —
// typically a Fork of a cached compile — instead of compiling one in the
// first comparison. The machine must have been compiled from (a clone of)
// s.Golden and must be private to this session.
func (s *Session) SetGoldenMachine(m *sim.Machine) { s.golden = m }

// SetGoldenFingerprint supplies a precomputed content fingerprint of the
// golden netlist for trace-cache keys, saving the per-session hash when
// the caller (the campaign service) already has it.
func (s *Session) SetGoldenFingerprint(fp string) { s.goldenFP = fp }

// interrupted returns the context error once the session's context is
// canceled; checked between replay and CAD steps.
func (s *Session) interrupted() error {
	if s.Ctx == nil {
		return nil
	}
	if err := s.Ctx.Err(); err != nil {
		return fmt.Errorf("debug: campaign canceled: %w", err)
	}
	return nil
}

// emit delivers one progress event if a listener is attached.
func (s *Session) emit(stage string, round int, format string, args ...any) {
	if s.Progress != nil {
		s.Progress(Event{Stage: stage, Round: round, Msg: fmt.Sprintf(format, args...)})
	}
}

// goldenTraceKey content-addresses a probe-free golden replay: the golden
// design's fingerprint plus a hash of the stimulus sequence.
func (s *Session) goldenTraceKey(seq [][]uint64) string {
	if s.goldenFP == "" {
		s.goldenFP = s.Golden.Fingerprint()
	}
	h := fnv.New64a()
	var b [8]byte
	wr := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	wr(uint64(len(seq)))
	for _, row := range seq {
		wr(uint64(len(row)))
		for _, w := range row {
			wr(w)
		}
	}
	return fmt.Sprintf("trace/%s/%016x", s.goldenFP, h.Sum64())
}

// Detection is the outcome of one detect step.
type Detection struct {
	Failed         bool
	FailingOutputs []string
	// PIs is the stimulus column order: the golden design's sorted
	// primary-input names, resolved to machine slots at replay time.
	PIs []string
	// Stimulus is the clocked ID-indexed input sequence that exposed the
	// failure (Stimulus[c][j] drives PIs[j] with 64 parallel patterns),
	// replayed during localization.
	Stimulus [][]uint64
	// Words and Cycles record the detection parameters, so downstream
	// steps (dictionary observation, repair-candidate validation,
	// re-detection) can regenerate the exact stimulus family.
	Words  int
	Cycles int
}

// Detect runs words blocks of random stimulus for cycles clock cycles
// each and compares the golden outputs against the emulated
// implementation. Implementation-only inputs (inserted control points)
// are held at zero through the machine's override list;
// implementation-only outputs are ignored.
func (s *Session) Detect(words, cycles int) (*Detection, error) {
	if words < 1 || cycles < 1 {
		return nil, fmt.Errorf("debug: detection needs words and cycles >= 1 (got %d, %d)", words, cycles)
	}
	if err := s.interrupted(); err != nil {
		return nil, err
	}
	sp := s.Obs.Start(obs.StageDetect)
	defer sp.End()
	goldenPIs := s.Golden.SortedPINames()
	blocks := testgen.RandomBlocks(len(goldenPIs), words, s.Seed)
	seq := testgen.Repeat(blocks, cycles)
	det := &Detection{PIs: goldenPIs, Stimulus: seq, Words: words, Cycles: cycles}
	mismatch, _, err := s.compare(seq, nil)
	if err != nil {
		return nil, err
	}
	det.Failed = len(mismatch) > 0
	det.FailingOutputs = mismatch
	return det, nil
}

// goldenMachine compiles the golden design once per session.
func (s *Session) goldenMachine() (*sim.Machine, error) {
	if s.golden == nil {
		mg, err := sim.Compile(s.Golden)
		if err != nil {
			return nil, fmt.Errorf("debug: golden: %w", err)
		}
		s.golden = mg
	}
	return s.golden, nil
}

// compare replays an ID-indexed stimulus sequence (columns in golden
// sorted-PI order) on golden and implementation through the trace API,
// returning the golden POs whose streams differ. probeNames optionally
// lists internal nets to sample each cycle; differ[k] reports whether
// probe k's streams diverged (probes missing from either design are
// skipped and report false).
func (s *Session) compare(seq [][]uint64, probeNames []string) (badPOs []string, differ []bool, err error) {
	if err := s.interrupted(); err != nil {
		return nil, nil, err
	}
	mg, err := s.goldenMachine()
	if err != nil {
		return nil, nil, err
	}
	csp := s.Obs.Start(obs.StageCompile)
	mi, err := sim.Compile(s.Layout.NL)
	csp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("debug: impl: %w", err)
	}
	piNames := s.Golden.SortedPINames()
	if err := mg.BindNames(piNames); err != nil {
		return nil, nil, fmt.Errorf("debug: golden: %w", err)
	}
	if err := mi.BindNames(piNames); err != nil {
		return nil, nil, fmt.Errorf("debug: impl: %w", err)
	}
	// Implementation-only PIs (inserted control points) are pinned to zero
	// through the execution core's explicit override list.
	goldenPI := make(map[string]bool, len(piNames))
	for _, n := range piNames {
		goldenPI[n] = true
	}
	for _, n := range s.Layout.NL.SortedPINames() {
		if goldenPI[n] {
			continue
		}
		id, ok := s.Layout.NL.NetByName(n)
		if !ok {
			continue
		}
		if err := mi.SetOverride(id, 0); err != nil {
			return nil, nil, fmt.Errorf("debug: impl: %w", err)
		}
	}
	poNames := s.Golden.SortedPONames()
	gCols, err := mg.POCols(poNames)
	if err != nil {
		return nil, nil, fmt.Errorf("debug: golden: %w", err)
	}
	iCols, err := mi.POCols(poNames)
	if err != nil {
		return nil, nil, fmt.Errorf("debug: impl: %w", err)
	}
	// Probes present in both designs are sampled into the traces; the
	// rest (e.g. MISR state nets that exist only in the implementation)
	// are skipped, matching the paper's golden-vs-observed comparison.
	differ = make([]bool, len(probeNames))
	probeCol := make([]int, len(probeNames))
	var gProbes, iProbes []netlist.NetID
	for k, name := range probeNames {
		probeCol[k] = -1
		gid, gok := s.Golden.NetByName(name)
		iid, iok := s.Layout.NL.NetByName(name)
		if gok && iok {
			probeCol[k] = len(gProbes)
			gProbes = append(gProbes, gid)
			iProbes = append(iProbes, iid)
		}
	}
	if err := mg.Probe(gProbes...); err != nil {
		return nil, nil, err
	}
	defer mg.ClearProbes()
	if err := mi.Probe(iProbes...); err != nil {
		return nil, nil, err
	}
	// Probe-free golden replays depend only on (golden design, stimulus)
	// and are memoized by content address when a TraceStore is attached;
	// cached traces are shared and read-only.
	gsp := s.Obs.Start(obs.StageGoldenTrace)
	var tg *sim.Trace
	if s.Traces != nil && len(gProbes) == 0 {
		key := s.goldenTraceKey(seq)
		if hit, ok := s.Traces.GetTrace(key); ok && hit.Cycles == len(seq) && hit.NumPOs == len(mg.PONames()) {
			tg = hit
			gsp.Add("trace-cache-hit", 1)
		} else {
			tg = mg.RunTrace(seq)
			s.Traces.PutTrace(key, tg)
			gsp.Add("trace-cache-miss", 1)
		}
	} else {
		tg = mg.RunTrace(seq)
	}
	gsp.End()
	ti := mi.RunTrace(seq)
	bad := make(map[string]bool)
	for c := 0; c < len(seq); c++ {
		for i, name := range poNames {
			if tg.Out(c, gCols[i]) != ti.Out(c, iCols[i]) {
				bad[name] = true
			}
		}
		for k, col := range probeCol {
			if col >= 0 && tg.ProbeVal(c, col) != ti.ProbeVal(c, col) {
				differ[k] = true
			}
		}
	}
	badPOs = make([]string, 0, len(bad))
	for name := range bad {
		badPOs = append(badPOs, name)
	}
	sort.Strings(badPOs)
	return badPOs, differ, nil
}

// Diagnosis is the outcome of localization.
type Diagnosis struct {
	// Suspects are implementation cells that may host the error, sound
	// with respect to the single-error model (the true site is always
	// included).
	Suspects []string
	// Tiles lists the physical tiles holding the suspects.
	Tiles []int
	// Rounds is the number of observation-insertion iterations performed.
	Rounds int
	// ConvergeRound is the 1-based round after which the suspect set
	// last shrank — the rounds that actually contributed to the verdict.
	// 0 means the initial cone was already final.
	ConvergeRound int
	// Probes counts the observation stages inserted during this
	// diagnosis.
	Probes int
	// Effort is the tile-local CAD effort spent inserting them.
	Effort core.Effort
	// Dict reports that the fault dictionary resolved the suspect without
	// any probe round (Rounds and Probes are zero, Effort empty).
	Dict bool
}

// Localize narrows the failure of det to a set of suspect cells by
// iteratively inserting observation logic (each insertion is a real
// tile-local physical change) and comparing observed streams against the
// golden model. maxRounds bounds the insertions; probesPerRound nets are
// observed each round.
func (s *Session) Localize(det *Detection, maxRounds, probesPerRound int) (*Diagnosis, error) {
	if !det.Failed {
		return nil, fmt.Errorf("debug: nothing to localize: detection passed")
	}
	if probesPerRound < 1 {
		probesPerRound = 4
	}
	nl := s.Layout.NL
	// Initial suspect cone: everything feeding the failing outputs
	// (through registers), restricted to cells the golden design also has
	// — inserted test logic can't be the design error.
	var roots []netlist.NetID
	for _, name := range det.FailingOutputs {
		if id, ok := nl.NetByName(name); ok {
			roots = append(roots, id)
		}
	}
	cone := nl.TransitiveFanin(roots, true)
	suspects := make(map[string]bool)
	for id := range cone {
		name := nl.CellName(id)
		if _, inGolden := s.Golden.CellByName(name); inGolden {
			suspects[name] = true
		}
	}
	diag := &Diagnosis{}
	probed := make(map[string]bool)
	// Causal-chain pre-ranking: replay the failing trace once with every
	// suspect output observed and rank suspects by causal distance from
	// the first mismatching cycle, so pickProbes starts at the likely
	// origin instead of bisecting blind.
	var rank map[string]int
	if s.Causal {
		var clean map[string]bool
		var err error
		rank, clean, err = s.causalRank(det, suspects)
		if err != nil {
			return nil, err
		}
		// The observe-everything replay soundly exonerates suspects whose
		// output never diverged (see causalRank); keep at least one
		// suspect as a backstop against a degenerate all-clean replay.
		if len(clean) > 0 && len(clean) < len(suspects) {
			for name := range clean {
				delete(suspects, name)
			}
			s.emit("localize", 0, "causal replay exonerated %d cells, %d suspects remain", len(clean), len(suspects))
		}
	}
	lsp := s.Obs.Start(obs.StageLocalizeProbe)
	defer func() {
		lsp.Add("probe-rounds", int64(diag.Rounds))
		lsp.Add("probes-inserted", int64(diag.Probes))
		lsp.End()
	}()
	s.emit("localize", 0, "initial suspect cone: %d cells", len(suspects))
	for round := 0; round < maxRounds && len(suspects) > 1; round++ {
		if err := s.interrupted(); err != nil {
			return nil, err
		}
		targets := s.pickProbes(suspects, probed, probesPerRound, rank)
		if len(targets) == 0 {
			break
		}
		diag.Rounds++
		mismatched, eff, err := s.observeRound(det, targets)
		if err != nil {
			return nil, err
		}
		diag.Effort.Add(eff)
		s.TileEffort.Add(eff)
		diag.Probes += len(targets)
		s.Probes += len(targets)
		for _, net := range targets {
			probed[nl.NetName(net)] = true
		}
		// Single-error reasoning: the error site lies in the fan-in cone
		// of every mismatched observation. Intersect.
		before := len(suspects)
		for _, net := range mismatched {
			sub := nl.TransitiveFanin([]netlist.NetID{net}, true)
			keep := make(map[string]bool, len(sub))
			for id := range sub {
				name := nl.CellName(id)
				if suspects[name] {
					keep[name] = true
				}
			}
			if len(keep) > 0 {
				suspects = keep
			}
		}
		if len(suspects) < before {
			diag.ConvergeRound = diag.Rounds
		}
		s.emit("localize", diag.Rounds, "%d observation stages in, %d suspects remain", diag.Probes, len(suspects))
	}
	for name := range suspects {
		diag.Suspects = append(diag.Suspects, name)
	}
	s.fillTiles(diag)
	return diag, nil
}

// observeRound observes one round's target nets and returns those whose
// value streams diverge from the golden model — the single probe-round
// body shared by every localization path (Localize, and through it
// LocalizeDict / RunLoop / RunLoopCore), so the overlay fast path is
// wired exactly once.
//
// With an Overlay attached and every target within reach, the round is
// zero-CAD: the request is partitioned into conflict-free
// time-multiplex batches, each batch is a pure configuration switch
// (overlay.Selector.Select — journaled, rollback-safe, no place/route/
// STA) followed by a replay of the failing stimulus. Otherwise the
// round takes the CAD path: one MISR rides one ApplyDelta transaction,
// opened here so a failed insertion rolls the layout back to the round
// boundary instead of leaving it half-mutated.
func (s *Session) observeRound(det *Detection, targets []netlist.NetID) ([]netlist.NetID, core.Effort, error) {
	nl := s.Layout.NL
	if s.Overlay != nil {
		names := make([]string, len(targets))
		reachable := true
		for i, net := range targets {
			names[i] = nl.NetName(net)
			if !s.Overlay.Reach(names[i]) {
				reachable = false
			}
		}
		if reachable {
			byName := make(map[string]netlist.NetID, len(targets))
			for i, net := range targets {
				byName[names[i]] = net
			}
			batches, _ := s.Overlay.Partition(names)
			var mismatched []netlist.NetID
			for _, batch := range batches {
				sp := s.Obs.Start(obs.StageProbeSwitch)
				err := s.Overlay.Select(batch)
				sp.Add("taps-selected", int64(len(batch)))
				sp.End()
				if err != nil {
					return nil, core.Effort{}, err
				}
				s.OverlaySwitches++
				ids := make([]netlist.NetID, len(batch))
				for i, name := range batch {
					ids[i] = byName[name]
				}
				mm, err := s.compareStreams(det.Stimulus, ids)
				if err != nil {
					return nil, core.Effort{}, err
				}
				mismatched = append(mismatched, mm...)
			}
			return mismatched, core.Effort{}, nil
		}
		s.OverlayFallbacks++
	}
	cp := s.Layout.Checkpoint()
	s.misrSeq++
	misr, err := instr.InsertMISR(nl, fmt.Sprintf("misr%d", s.misrSeq), targets)
	if err != nil {
		if rerr := s.Layout.Rollback(cp); rerr != nil {
			return nil, core.Effort{}, fmt.Errorf("%w (rollback: %v)", err, rerr)
		}
		return nil, core.Effort{}, err
	}
	rep, err := s.Layout.ApplyDelta(core.Delta{Added: misr.Cells})
	if err != nil {
		if rerr := s.Layout.Rollback(cp); rerr != nil {
			return nil, core.Effort{}, fmt.Errorf("%w (rollback: %v)", err, rerr)
		}
		return nil, core.Effort{}, err
	}
	s.Layout.Commit(cp)
	mismatched, err := s.compareStreams(det.Stimulus, targets)
	if err != nil {
		return nil, core.Effort{}, err
	}
	return mismatched, rep.Effort, nil
}

// fillTiles resolves the physical tiles hosting the diagnosis suspects.
func (s *Session) fillTiles(diag *Diagnosis) {
	sort.Strings(diag.Suspects)
	tiles := make(map[int]bool)
	for _, name := range diag.Suspects {
		if id, ok := s.Layout.NL.CellByName(name); ok {
			if clb, ok := s.Layout.Packed.CellCLB[id]; ok {
				tiles[s.Layout.TileOf(s.Layout.CLBLoc[clb])] = true
			}
		}
	}
	diag.Tiles = diag.Tiles[:0]
	for t := range tiles {
		diag.Tiles = append(diag.Tiles, t)
	}
	sort.Ints(diag.Tiles)
}

// pickProbes chooses observation targets whose suspect-restricted fan-in
// cones best bisect the suspect set. rank, when non-nil, is the causal
// distance of each suspect from the first observed mismatch
// (causalRank): causally closer suspects are probed first, and the
// bisection score only breaks ties. The ordering is deterministic
// regardless of map iteration (final tie-break on net ID).
func (s *Session) pickProbes(suspects map[string]bool, probed map[string]bool, k int, rank map[string]int) []netlist.NetID {
	nl := s.Layout.NL
	const unranked = int(^uint(0) >> 1)
	type cand struct {
		net   netlist.NetID
		dist  int // causal distance (unranked sorts last)
		score int // |cone∩suspects| distance from |suspects|/2
	}
	half := len(suspects) / 2
	var cands []cand
	for name := range suspects {
		id, ok := nl.CellByName(name)
		if !ok {
			continue
		}
		out := nl.Cells[id].Out
		if probed[nl.NetName(out)] {
			continue
		}
		sub := nl.TransitiveFanin([]netlist.NetID{out}, true)
		n := 0
		for cid := range sub {
			if suspects[nl.CellName(cid)] {
				n++
			}
		}
		n++ // the driver itself is in its own observation cone
		d := n - half
		if d < 0 {
			d = -d
		}
		dist := unranked
		if rank != nil {
			if r, ok := rank[name]; ok {
				dist = r
			}
		}
		cands = append(cands, cand{net: out, dist: dist, score: d})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		if cands[i].score != cands[j].score {
			return cands[i].score < cands[j].score
		}
		return cands[i].net < cands[j].net
	})
	var out []netlist.NetID
	for _, c := range cands {
		out = append(out, c.net)
		if len(out) >= k {
			break
		}
	}
	return out
}

// compareStreams replays stimulus and returns the target nets whose value
// streams differ between golden and implementation. Golden nets are
// matched by name.
func (s *Session) compareStreams(seq [][]uint64, targets []netlist.NetID) ([]netlist.NetID, error) {
	nl := s.Layout.NL
	names := make([]string, len(targets))
	for i, net := range targets {
		names[i] = nl.NetName(net)
	}
	_, differ, err := s.compare(seq, names)
	if err != nil {
		return nil, err
	}
	var out []netlist.NetID
	for i, d := range differ {
		if d {
			out = append(out, targets[i])
		}
	}
	return out, nil
}

// Correction is the outcome of one correct step — a candidate-search
// repair (Repair) or a golden-copy restoration (CorrectFromGolden).
type Correction struct {
	// Fixed lists the repaired cell names.
	Fixed []string
	// Report is the tile-local physical update.
	Report *core.ChangeReport
	// Verified is true when detection passes after the repair (and, for
	// candidate-search repairs, the ECO sign-off replay too).
	Verified bool

	// Repaired is true when the fix came from the repair-candidate
	// search, false for a golden-copy restoration.
	Repaired bool
	// RepairKind names the winning candidate shape ("bit-flip",
	// "pin-swap", "resynth"); empty for golden-copy corrections.
	RepairKind string
	// Candidates, Survivors and Batches summarize the search: how many
	// corrections were enumerated, how many explained the whole detection
	// stimulus, and how many Lanes()-candidate lane batches were replayed.
	Candidates int
	Survivors  int
	Batches    int
	// ECOVerified reports the tile-local ECO sign-off: after the repair,
	// an independent replay against the golden model found no divergence.
	ECOVerified bool
}

// CorrectFromGolden repairs the implementation from the golden model:
// every suspect cell that differs from its golden counterpart (function
// or wiring) is restored, the delta goes through tile-local
// re-place-and-route, and detection re-runs to verify. If no suspect
// differs, the full diff is consulted. This is diagnosis by answer key —
// it reads the golden netlist's structure — and is kept as the fallback
// for errors the candidate search (Repair) cannot explain.
func (s *Session) CorrectFromGolden(diag *Diagnosis, det *Detection) (*Correction, error) {
	if err := s.interrupted(); err != nil {
		return nil, err
	}
	nl := s.Layout.NL
	changes := eco.Diff(s.Golden, nl)
	differing := make(map[string]string) // name -> kind
	for _, ch := range changes.Cells {
		if ch.Kind != "added" && ch.Kind != "removed" {
			differing[ch.Name] = ch.Kind
		}
	}
	var toFix []string
	for _, name := range diag.Suspects {
		if _, ok := differing[name]; ok {
			toFix = append(toFix, name)
		}
	}
	if len(toFix) == 0 {
		// Diagnosis narrowed to cells that match the golden model —
		// repair everything that differs instead.
		for name := range differing {
			toFix = append(toFix, name)
		}
		sort.Strings(toFix)
	}
	if len(toFix) == 0 {
		return nil, fmt.Errorf("debug: nothing differs from the golden model")
	}
	// The whole correction — netlist restoration plus the physical
	// update — is one transaction; any failure reverts to the pre-repair
	// layout.
	cp := s.Layout.Checkpoint()
	rollback := func(err error) error {
		if rerr := s.Layout.Rollback(cp); rerr != nil {
			return fmt.Errorf("%w (rollback: %v)", err, rerr)
		}
		return err
	}
	var modified []netlist.CellID
	for _, name := range toFix {
		iid, ok := nl.CellByName(name)
		if !ok {
			return nil, rollback(fmt.Errorf("debug: suspect %q vanished", name))
		}
		gid, ok := s.Golden.CellByName(name)
		if !ok {
			return nil, rollback(fmt.Errorf("debug: %q missing from golden", name))
		}
		gc := &s.Golden.Cells[gid]
		ic := &nl.Cells[iid]
		if ic.Kind == netlist.KindLUT {
			if err := nl.SetFunc(iid, gc.Func); err != nil {
				return nil, rollback(err)
			}
		}
		if ic.Kind == netlist.KindDFF {
			if err := nl.SetInit(iid, gc.Init); err != nil {
				return nil, rollback(err)
			}
		}
		for pin := range gc.Fanin {
			wantName := s.Golden.NetName(gc.Fanin[pin])
			want, ok := nl.NetByName(wantName)
			if !ok {
				return nil, rollback(fmt.Errorf("debug: net %q missing from implementation", wantName))
			}
			if ic.Fanin[pin] != want {
				if err := nl.SetFanin(iid, pin, want); err != nil {
					return nil, rollback(err)
				}
			}
		}
		modified = append(modified, iid)
	}
	s.emit("correct", 0, "repairing %d cell(s) from the golden model", len(toFix))
	rep, err := s.Layout.ApplyDelta(core.Delta{Modified: modified})
	if err != nil {
		return nil, rollback(err)
	}
	s.Layout.Commit(cp)
	s.TileEffort.Add(rep.Effort)
	cor := &Correction{Fixed: toFix, Report: rep}
	redet, err := s.redetect(det)
	if err != nil {
		return nil, err
	}
	cor.Verified = !redet.Failed
	return cor, nil
}

// redetect replays the detection that exposed the failure. Older
// Detection values (built before Words/Cycles were recorded) fall back
// to one flat replay of the captured stimulus length.
func (s *Session) redetect(det *Detection) (*Detection, error) {
	if det.Words > 0 && det.Cycles > 0 {
		return s.Detect(det.Words, det.Cycles)
	}
	return s.Detect(len(det.Stimulus), 1)
}

// LoopReport summarizes a full debugging campaign.
type LoopReport struct {
	Iterations  int
	Corrections []*Correction
	Diagnoses   []*Diagnosis
	// TileEffort is the total tile-local CAD work; FullEffort is what one
	// full re-place-and-route would have cost (the non-tiled comparison
	// point for every iteration).
	TileEffort core.Effort
	FullEffort core.Effort
	Clean      bool
}

// RunLoop executes detect→localize→correct until the design is clean or
// maxIters is exhausted — the paper's while-loop (steps 9–22) — then
// measures the full re-place-and-route baseline for comparison.
func (s *Session) RunLoop(maxIters, words, cycles, maxRounds, probesPerRound int) (*LoopReport, error) {
	rep, err := s.RunLoopCore(maxIters, words, cycles, maxRounds, probesPerRound)
	if err != nil {
		return nil, err
	}
	full, err := s.Layout.FullRePlaceRoute(s.Seed + 1000)
	if err != nil {
		return nil, err
	}
	rep.FullEffort = full
	return rep, nil
}

// RunLoopCore is RunLoop without the trailing baseline measurement
// (LoopReport.FullEffort stays zero). The campaign service uses it and
// fills the baseline from its artifact cache instead of re-measuring per
// campaign.
func (s *Session) RunLoopCore(maxIters, words, cycles, maxRounds, probesPerRound int) (*LoopReport, error) {
	rep := &LoopReport{}
	for iter := 0; iter < maxIters; iter++ {
		if err := s.interrupted(); err != nil {
			return nil, err
		}
		s.emit("detect", iter+1, "replaying %d blocks × %d cycles", words, cycles)
		det, err := s.Detect(words, cycles)
		if err != nil {
			return nil, err
		}
		if !det.Failed {
			s.emit("loop", iter+1, "detection passes — design clean")
			rep.Clean = true
			break
		}
		s.emit("detect", iter+1, "FAILED outputs %v", det.FailingOutputs)
		rep.Iterations++
		diag, err := s.LocalizeDict(det, maxRounds, probesPerRound)
		if err != nil {
			return nil, err
		}
		rep.Diagnoses = append(rep.Diagnoses, diag)
		// True correction first: search candidate repairs with the golden
		// model as a behavioural oracle only. Errors the search cannot
		// explain (no verified candidate, wiring outside the candidate
		// space, an un-excitable broadcast form) fall back to the
		// golden-copy restoration.
		cor, _, err := s.CorrectAuto(diag, det, nil)
		if err != nil {
			return nil, err
		}
		rep.Corrections = append(rep.Corrections, cor)
		s.emit("correct", iter+1, "fixed %v, verified=%v", cor.Fixed, cor.Verified)
		if cor.Verified {
			rep.Clean = true
			break
		}
	}
	rep.TileEffort = s.TileEffort
	return rep, nil
}
