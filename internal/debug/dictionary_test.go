package debug

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/core"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
)

// applyDictFault mutates the implementation netlist (matched by name, so
// it works on a layout-owned clone) with one universe fault, returning an
// undo closure. Faults with no netlist form here (stuck-ats on nets not
// driven by a LUT) report ok=false.
func applyDictFault(nl, golden *netlist.Netlist, f faults.Fault) (restore func(), ok bool) {
	switch f.Kind {
	case faults.LUTBitFlip:
		id, found := nl.CellByName(golden.CellName(f.Cell))
		if !found {
			return nil, false
		}
		c := &nl.Cells[id]
		old := c.Func
		tt, err := c.Func.TT()
		if err != nil {
			return nil, false
		}
		tt.SetBit(uint64(f.Bit), !tt.Bit(uint64(f.Bit)))
		c.Func = tt.ToCover()
		return func() { nl.Cells[id].Func = old }, true
	case faults.StuckAt0, faults.StuckAt1:
		id, found := nl.NetByName(golden.NetName(f.Net))
		if !found {
			return nil, false
		}
		d := nl.Nets[id].Driver
		if d == netlist.NilCell || nl.Cells[d].Kind != netlist.KindLUT {
			return nil, false
		}
		c := &nl.Cells[d]
		old := c.Func
		c.Func = logic.Const(c.Func.N, f.Kind == faults.StuckAt1)
		return func() { nl.Cells[d].Func = old }, true
	default:
		return nil, false
	}
}

// TestFaultDictionaryResolvesMostSingleFaults is the acceptance bar for
// the dictionary localizer: across the small designs, at least 80% of
// injected single faults that detection exposes must be localized by
// dictionary lookup alone — zero probe rounds, zero tile-local CAD
// effort — to a suspect set that contains the faulty cell (the set is the
// fault's PO-equivalence class, bounded by DefaultDictMaxSuspects).
func TestFaultDictionaryResolvesMostSingleFaults(t *testing.T) {
	for _, name := range []string{"9sym", "styr", "c880"} {
		name := name
		t.Run(name, func(t *testing.T) {
			info, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := synth.TechMap(info.Build())
			if err != nil {
				t.Fatal(err)
			}
			pristine, err := core.BuildMapped(golden.Clone(), core.Spec{
				Overhead: 0.20, TileFrac: 0.25, Seed: 1, PlaceEffort: 0.3,
			})
			if err != nil {
				t.Fatal(err)
			}
			prog, err := sim.Compile(golden)
			if err != nil {
				t.Fatal(err)
			}
			dict, err := BuildFaultDict(prog, 4, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			if dict.Detected == 0 {
				t.Fatal("dictionary detected nothing")
			}
			u := faults.Universe(golden)
			stride := len(u) / 24
			if stride < 1 {
				stride = 1
			}
			total, resolved := 0, 0
			for i := 0; i < len(u); i += stride {
				f := u[i]
				restore, ok := applyDictFault(pristine.NL, golden, f)
				if !ok {
					continue
				}
				impl := pristine.Clone()
				restore()
				sess, err := NewSession(golden, impl, 1)
				if err != nil {
					t.Fatal(err)
				}
				sess.Dict = dict
				sess.SetGoldenMachine(prog.Fork())
				det, err := sess.Detect(4, 2)
				if err != nil {
					t.Fatal(err)
				}
				if !det.Failed {
					continue // fault not excited by detection — nothing to localize
				}
				diag, err := sess.LocalizeDict(det, 4, 4)
				if err != nil {
					t.Fatal(err)
				}
				total++
				want, _ := f.SuspectCell(golden)
				if diag.Dict {
					if diag.Rounds != 0 || diag.Probes != 0 || diag.Effort.Work() != 0 {
						t.Fatalf("dictionary resolution spent physical work: %+v", diag)
					}
					if len(diag.Suspects) > DefaultDictMaxSuspects {
						t.Fatalf("dictionary suspect set too large: %v", diag.Suspects)
					}
					hit := false
					for _, sName := range diag.Suspects {
						if sName == want {
							hit = true
						}
					}
					if !hit {
						t.Fatalf("dictionary diagnosis %v misses the true cell %s for %s",
							diag.Suspects, want, f.Describe(golden))
					}
					resolved++
				}
			}
			if total < 8 {
				t.Fatalf("only %d detected faults sampled — test is vacuous", total)
			}
			ratio := float64(resolved) / float64(total)
			t.Logf("%s: dictionary resolved %d/%d (%.0f%%)", name, resolved, total, 100*ratio)
			if ratio < 0.8 {
				t.Fatalf("dictionary resolved %d/%d = %.0f%%, want >= 80%%", resolved, total, 100*ratio)
			}
		})
	}
}

// TestLocalizeDictFallsBack checks that a session without a dictionary —
// or with an error outside the dictionary's universe — still localizes
// through probe rounds.
func TestLocalizeDictFallsBack(t *testing.T) {
	info, err := bench.ByName("9sym")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := synth.TechMap(info.Build())
	if err != nil {
		t.Fatal(err)
	}
	impl := golden.Clone()
	// InputSwap is not in the dictionary universe (stuck-ats + bit flips),
	// so the dictionary should miss and fall back.
	if _, err := faults.Inject(impl, faults.InputSwap, 3); err != nil {
		t.Skip("no swap site for this seed")
	}
	lay, err := core.BuildMapped(impl, core.Spec{
		Overhead: 0.20, TileFrac: 0.25, Seed: 1, PlaceEffort: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	dict, err := BuildFaultDict(prog, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(golden, lay, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess.Dict = dict
	sess.SetGoldenMachine(prog.Fork())
	det, err := sess.Detect(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Failed {
		t.Skip("swap not excited")
	}
	diag, err := sess.LocalizeDict(det, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Dict {
		// A swap can coincide with a modeled fault's behaviour; only a
		// non-dict diagnosis must have spent real rounds.
		return
	}
	if diag.Rounds == 0 && len(diag.Suspects) > 1 {
		t.Fatalf("fallback did no work: %+v", diag)
	}
}
