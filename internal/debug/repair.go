package debug

// The correction step, paper-faithful edition: instead of copying the
// suspect cells' logic out of the golden netlist (CorrectFromGolden — an
// answer-key shortcut), Repair searches the space of candidate
// corrections with internal/repair. Candidates are validated Lanes() per
// trace replay on the lanes of the shared compiled implementation
// program, survivors are re-verified on an independent stimulus, and the
// ranked winner is applied through the same tile-local ECO path every
// other physical change takes — core.Layout.ApplyDelta plus an
// eco.Verify sign-off replay against the golden model. The golden design
// is consulted only behaviourally (its primary-output streams, and the
// same internal-net stream observation localization already performs);
// its cell structure is never read. See DESIGN.md §10.

import (
	"errors"
	"fmt"

	"fpgadbg/internal/core"
	"fpgadbg/internal/eco"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/repair"
	"fpgadbg/internal/sim"
)

// ecoVerifySeedOffset decorrelates the ECO sign-off replay from the
// detection stimulus.
const ecoVerifySeedOffset = 4242

// ErrRepairInconclusive marks repair failures after which NOTHING
// remains applied to the layout — an empty or unrepairable suspect set,
// a broadcast stimulus that cannot excite the error, a search with no
// verified winner, or a winner the ECO sign-off rejected (applied, then
// reverted in O(delta) through the layout transaction journal). Only
// these are safe to fall back from (CorrectFromGolden); any other
// Repair error must propagate.
var ErrRepairInconclusive = errors.New("repair search inconclusive")

// Repair runs the repair-candidate search for a diagnosis and applies
// the winning correction tile-locally. It compiles the current
// implementation netlist into the candidate program; RepairWith accepts
// a pre-compiled (cached) one.
func (s *Session) Repair(diag *Diagnosis, det *Detection) (*Correction, error) {
	return s.RepairWith(diag, det, nil)
}

// CorrectAuto is the one place holding the fallback rule: try the
// candidate-search repair, and only when the search was inconclusive —
// ErrRepairInconclusive, i.e. nothing reached the layout — restore from
// the golden copy. fellBack reports that the golden copy ran; any other
// repair error (the winner may already be applied) propagates untouched.
func (s *Session) CorrectAuto(diag *Diagnosis, det *Detection, prog *sim.Machine) (cor *Correction, fellBack bool, err error) {
	cor, err = s.RepairWith(diag, det, prog)
	if err == nil {
		return cor, false, nil
	}
	if !errors.Is(err, ErrRepairInconclusive) {
		return nil, false, err
	}
	s.emit("repair", 0, "candidate search inconclusive (%v) — golden-copy fallback", err)
	cor, err = s.CorrectFromGolden(diag, det)
	return cor, true, err
}

// RepairWith is Repair with an optional pre-compiled candidate program.
// prog must have been compiled from (a clone of) the session's current
// implementation netlist — the campaign service passes a fork of its
// cached program when localization left the netlist untouched — and nil
// compiles one here. The winner is applied inside a layout transaction:
// on success it is committed and the returned Correction carries the
// search statistics; when the independent ECO sign-off replay finds a
// divergence the repair is rolled back in O(delta) and the error wraps
// ErrRepairInconclusive. An error wrapping ErrRepairInconclusive always
// means nothing remains applied and the caller may fall back to
// CorrectFromGolden; any other error must not be papered over with a
// fallback.
func (s *Session) RepairWith(diag *Diagnosis, det *Detection, prog *sim.Machine) (*Correction, error) {
	if err := s.interrupted(); err != nil {
		return nil, err
	}
	if det == nil || !det.Failed {
		return nil, fmt.Errorf("debug: nothing to repair (detection passed): %w", ErrRepairInconclusive)
	}
	if len(diag.Suspects) == 0 {
		return nil, fmt.Errorf("debug: empty suspect set: %w", ErrRepairInconclusive)
	}
	mg, err := s.goldenMachine()
	if err != nil {
		return nil, err
	}
	if prog == nil {
		w := s.SimWidth
		if w < 1 {
			w = 1
		}
		csp := s.Obs.Start(obs.StageCompile)
		prog, err = sim.CompileWidth(s.Layout.NL, w)
		csp.End()
		if err != nil {
			return nil, fmt.Errorf("debug: candidate program: %w", err)
		}
	}
	eng, err := repair.NewEngine(mg, prog)
	if err != nil {
		return nil, err
	}

	// Validation stimulus: the scalar expansion of the detection blocks —
	// the same broadcast family the fault dictionary observes under, so
	// whatever detection excited, validation (largely) excites too.
	words, cycles := det.Words, det.Cycles
	if words < 1 {
		words = 8
	}
	if cycles < 1 {
		cycles = 1
	}
	detB := DictStimulus(len(det.PIs), words, cycles, s.Seed)

	s.emit("repair", 0, "searching candidate corrections for %d suspect(s)", len(diag.Suspects))
	out, err := eng.Search(diag.Suspects, detB, repair.Config{
		Seed:         s.Seed,
		VerifyCycles: cycles,
		OnBatch: func(done, total int) error {
			return s.interrupted()
		},
		Obs: s.Obs,
	})
	if err != nil {
		if errors.Is(err, repair.ErrNotExcited) {
			return nil, fmt.Errorf("%w: %w", ErrRepairInconclusive, err)
		}
		return nil, err
	}
	s.emit("repair", 0, "%d candidate(s) in %d lane batch(es): %d survive detection, %d verify",
		out.Candidates, out.Batches, out.Survivors, out.Verified)
	if out.Winner == nil {
		return nil, fmt.Errorf("debug: no verified repair among %d candidate(s): %w",
			out.Candidates, ErrRepairInconclusive)
	}

	// Apply the winner through the tile-local ECO path, inside a layout
	// transaction: an ECO sign-off failure reverts the repair in O(delta)
	// so the golden-copy fallback starts from the pre-repair state.
	cp := s.Layout.Checkpoint()
	rollback := func(err error) error {
		if rerr := s.Layout.Rollback(cp); rerr != nil {
			return fmt.Errorf("%w (rollback: %v)", err, rerr)
		}
		return err
	}
	cellID, err := out.Winner.Apply(s.Layout.NL)
	if err != nil {
		return nil, rollback(err)
	}
	rep, err := s.Layout.ApplyDelta(core.Delta{Modified: []netlist.CellID{cellID}})
	if err != nil {
		return nil, rollback(err)
	}
	// The tile-local work is paid whether or not the sign-off below
	// keeps the repair; count it before the verdict.
	s.TileEffort.Add(rep.Effort)
	s.emit("repair", 0, "applied %s, tiles %v", out.Winner.Describe(), rep.AffectedTiles)

	// ECO sign-off: an independent replay against the golden model. A
	// divergence means the candidate only explained the detection
	// stimulus — revert it through the journal and report the search
	// inconclusive, so nothing of the bad repair survives.
	esp := s.Obs.Start(obs.StageEcoVerify)
	mm, err := eco.Verify(s.Golden, s.Layout.NL, words, cycles, s.Seed+ecoVerifySeedOffset)
	esp.End()
	if err != nil {
		return nil, rollback(fmt.Errorf("debug: eco verify: %w", err))
	}
	if mm != nil {
		s.emit("repair", 0, "eco sign-off failed (%v) — repair reverted", mm)
		return nil, rollback(fmt.Errorf("debug: eco sign-off rejected %s (reverted): %w",
			out.Winner.Describe(), ErrRepairInconclusive))
	}
	s.Layout.Commit(cp)

	cor := &Correction{
		Fixed:       []string{out.Winner.Cell},
		Report:      rep,
		Repaired:    true,
		RepairKind:  out.Winner.Kind.String(),
		Candidates:  out.Candidates,
		Survivors:   out.Survivors,
		Batches:     out.Batches,
		ECOVerified: true,
	}
	redet, err := s.redetect(det)
	if err != nil {
		return nil, err
	}
	cor.Verified = !redet.Failed
	s.emit("repair", 0, "eco verify true, re-detection clean=%v", !redet.Failed)
	return cor, nil
}
