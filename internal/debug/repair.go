package debug

// The correction step, paper-faithful edition: instead of copying the
// suspect cells' logic out of the golden netlist (CorrectFromGolden — an
// answer-key shortcut), Repair searches the space of candidate
// corrections with internal/repair. Candidates are validated 64 per
// trace replay on the lanes of the shared compiled implementation
// program, survivors are re-verified on an independent stimulus, and the
// ranked winner is applied through the same tile-local ECO path every
// other physical change takes — core.Layout.ApplyDelta plus an
// eco.Verify sign-off replay against the golden model. The golden design
// is consulted only behaviourally (its primary-output streams, and the
// same internal-net stream observation localization already performs);
// its cell structure is never read. See DESIGN.md §10.

import (
	"errors"
	"fmt"

	"fpgadbg/internal/core"
	"fpgadbg/internal/eco"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/repair"
	"fpgadbg/internal/sim"
)

// ecoVerifySeedOffset decorrelates the ECO sign-off replay from the
// detection stimulus.
const ecoVerifySeedOffset = 4242

// ErrRepairInconclusive marks repair failures where NOTHING was applied
// to the layout — an empty or unrepairable suspect set, a broadcast
// stimulus that cannot excite the error, or a search with no verified
// winner. Only these are safe to fall back from (CorrectFromGolden);
// any other Repair error may leave the applied winner in place and must
// propagate.
var ErrRepairInconclusive = errors.New("repair search inconclusive")

// Repair runs the repair-candidate search for a diagnosis and applies
// the winning correction tile-locally. It compiles the current
// implementation netlist into the candidate program; RepairWith accepts
// a pre-compiled (cached) one.
func (s *Session) Repair(diag *Diagnosis, det *Detection) (*Correction, error) {
	return s.RepairWith(diag, det, nil)
}

// CorrectAuto is the one place holding the fallback rule: try the
// candidate-search repair, and only when the search was inconclusive —
// ErrRepairInconclusive, i.e. nothing reached the layout — restore from
// the golden copy. fellBack reports that the golden copy ran; any other
// repair error (the winner may already be applied) propagates untouched.
func (s *Session) CorrectAuto(diag *Diagnosis, det *Detection, prog *sim.Machine) (cor *Correction, fellBack bool, err error) {
	cor, err = s.RepairWith(diag, det, prog)
	if err == nil {
		return cor, false, nil
	}
	if !errors.Is(err, ErrRepairInconclusive) {
		return nil, false, err
	}
	s.emit("repair", 0, "candidate search inconclusive (%v) — golden-copy fallback", err)
	cor, err = s.CorrectFromGolden(diag, det)
	return cor, true, err
}

// RepairWith is Repair with an optional pre-compiled candidate program.
// prog must have been compiled from (a clone of) the session's current
// implementation netlist — the campaign service passes a fork of its
// cached program when localization left the netlist untouched — and nil
// compiles one here. On success the winner has been applied to the
// layout and the returned Correction carries the search statistics. An
// error wrapping ErrRepairInconclusive means nothing was applied and
// the caller may fall back to CorrectFromGolden; any other error may
// have fired after the winner reached the layout and must not be
// papered over with a fallback.
func (s *Session) RepairWith(diag *Diagnosis, det *Detection, prog *sim.Machine) (*Correction, error) {
	if err := s.interrupted(); err != nil {
		return nil, err
	}
	if det == nil || !det.Failed {
		return nil, fmt.Errorf("debug: nothing to repair (detection passed): %w", ErrRepairInconclusive)
	}
	if len(diag.Suspects) == 0 {
		return nil, fmt.Errorf("debug: empty suspect set: %w", ErrRepairInconclusive)
	}
	mg, err := s.goldenMachine()
	if err != nil {
		return nil, err
	}
	if prog == nil {
		prog, err = sim.Compile(s.Layout.NL)
		if err != nil {
			return nil, fmt.Errorf("debug: candidate program: %w", err)
		}
	}
	eng, err := repair.NewEngine(mg, prog)
	if err != nil {
		return nil, err
	}

	// Validation stimulus: the scalar expansion of the detection blocks —
	// the same broadcast family the fault dictionary observes under, so
	// whatever detection excited, validation (largely) excites too.
	words, cycles := det.Words, det.Cycles
	if words < 1 {
		words = 8
	}
	if cycles < 1 {
		cycles = 1
	}
	detB := DictStimulus(len(det.PIs), words, cycles, s.Seed)

	s.emit("repair", 0, "searching candidate corrections for %d suspect(s)", len(diag.Suspects))
	out, err := eng.Search(diag.Suspects, detB, repair.Config{
		Seed:         s.Seed,
		VerifyCycles: cycles,
		OnBatch: func(done, total int) error {
			return s.interrupted()
		},
	})
	if err != nil {
		if errors.Is(err, repair.ErrNotExcited) {
			return nil, fmt.Errorf("%w: %w", ErrRepairInconclusive, err)
		}
		return nil, err
	}
	s.emit("repair", 0, "%d candidate(s) in %d lane batch(es): %d survive detection, %d verify",
		out.Candidates, out.Batches, out.Survivors, out.Verified)
	if out.Winner == nil {
		return nil, fmt.Errorf("debug: no verified repair among %d candidate(s): %w",
			out.Candidates, ErrRepairInconclusive)
	}

	// Apply the winner through the tile-local ECO path.
	cellID, err := out.Winner.Apply(s.Layout.NL)
	if err != nil {
		return nil, err
	}
	rep, err := s.Layout.ApplyDelta(core.Delta{Modified: []netlist.CellID{cellID}})
	if err != nil {
		return nil, err
	}
	s.TileEffort.Add(rep.Effort)
	s.emit("repair", 0, "applied %s, tiles %v", out.Winner.Describe(), rep.AffectedTiles)

	cor := &Correction{
		Fixed:      []string{out.Winner.Cell},
		Report:     rep,
		Repaired:   true,
		RepairKind: out.Winner.Kind.String(),
		Candidates: out.Candidates,
		Survivors:  out.Survivors,
		Batches:    out.Batches,
	}

	// ECO sign-off: an independent replay against the golden model, then
	// the original detection.
	mm, err := eco.Verify(s.Golden, s.Layout.NL, words, cycles, s.Seed+ecoVerifySeedOffset)
	if err != nil {
		return nil, fmt.Errorf("debug: eco verify: %w", err)
	}
	cor.ECOVerified = mm == nil
	redet, err := s.redetect(det)
	if err != nil {
		return nil, err
	}
	cor.Verified = cor.ECOVerified && !redet.Failed
	s.emit("repair", 0, "eco verify %v, re-detection clean=%v", cor.ECOVerified, !redet.Failed)
	return cor, nil
}
