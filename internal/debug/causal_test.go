package debug

import (
	"testing"

	"fpgadbg/internal/core"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/overlay"
)

// suspectSet builds the initial suspect cone the way Localize does:
// everything feeding the failing outputs, restricted to golden cells.
func suspectSet(s *Session, det *Detection) map[string]bool {
	nl := s.Layout.NL
	var roots []netlist.NetID
	for _, name := range det.FailingOutputs {
		if id, ok := nl.NetByName(name); ok {
			roots = append(roots, id)
		}
	}
	suspects := make(map[string]bool)
	for id := range nl.TransitiveFanin(roots, true) {
		name := nl.CellName(id)
		if _, ok := s.Golden.CellByName(name); ok {
			suspects[name] = true
		}
	}
	return suspects
}

func TestCausalRankReachesInjectedSite(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		s, inj := session(t, seed)
		det, err := s.Detect(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Failed {
			continue
		}
		suspects := suspectSet(s, det)
		rank, clean, err := s.causalRank(det, suspects)
		if err != nil {
			t.Fatal(err)
		}
		if len(rank) == 0 {
			t.Fatalf("seed %d: failing detection ranked no suspects", seed)
		}
		// The faulty cell's output diverges even when its inputs match,
		// so the backward walk along divergent chains must reach it.
		if _, ok := rank[inj.CellName]; !ok {
			t.Fatalf("seed %d: injected site %v not on any causal chain (ranked %d)", seed, inj, len(rank))
		}
		for name, d := range rank {
			if !suspects[name] {
				t.Fatalf("seed %d: ranked %q is not a suspect", seed, name)
			}
			if d < 0 {
				t.Fatalf("seed %d: negative causal distance %d", seed, d)
			}
		}
		// Exoneration soundness: the injected site's output must diverge
		// on the failing stimulus, so it is never in the clean set, and
		// exonerated cells are disjoint from ranked (divergent) ones.
		if clean[inj.CellName] {
			t.Fatalf("seed %d: injected site %v exonerated", seed, inj)
		}
		for name := range clean {
			if !suspects[name] {
				t.Fatalf("seed %d: exonerated %q is not a suspect", seed, name)
			}
			if _, ranked := rank[name]; ranked {
				t.Fatalf("seed %d: %q both ranked divergent and exonerated", seed, name)
			}
		}
		return
	}
	t.Skip("no seed excited its injected error")
}

func TestCausalLocalizeStaysSound(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		s, inj := session(t, seed)
		s.Causal = true
		det, err := s.Detect(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Failed {
			continue
		}
		diag, err := s.Localize(det, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, name := range diag.Suspects {
			if name == inj.CellName {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: causal suspect set %v misses injected %v", seed, diag.Suspects, inj)
		}
		return
	}
	t.Skip("no seed excited its injected error")
}

// pickSession builds a session plus a deterministic suspect set drawn
// from its implementation netlist.
func pickSession(t *testing.T, n int) (*Session, []string) {
	t.Helper()
	s, _ := session(t, 1)
	nl := s.Layout.NL
	var names []string
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead || c.Out == netlist.NilNet {
			continue
		}
		if _, ok := s.Golden.CellByName(nl.CellName(netlist.CellID(ci))); !ok {
			continue
		}
		names = append(names, nl.CellName(netlist.CellID(ci)))
		if len(names) == n {
			break
		}
	}
	if len(names) < n {
		t.Fatalf("only %d usable cells", len(names))
	}
	return s, names
}

func TestPickProbesDeterministicUnderMapIteration(t *testing.T) {
	s, names := pickSession(t, 12)
	suspects := make(map[string]bool, len(names))
	for _, n := range names {
		suspects[n] = true
	}
	want := s.pickProbes(suspects, map[string]bool{}, 4, nil)
	if len(want) != 4 {
		t.Fatalf("picked %d probes, want 4", len(want))
	}
	// Rebuild the maps every iteration so Go's randomized map iteration
	// order gets a fresh chance to reorder candidates.
	for i := 0; i < 20; i++ {
		su := make(map[string]bool, len(names))
		for _, n := range names {
			su[n] = true
		}
		got := s.pickProbes(su, map[string]bool{}, 4, nil)
		if len(got) != len(want) {
			t.Fatalf("run %d: %d probes vs %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: probe %d is %v, want %v (map-iteration nondeterminism)", i, j, got[j], want[j])
			}
		}
	}
}

func TestPickProbesRespectsCausalRank(t *testing.T) {
	s, names := pickSession(t, 8)
	nl := s.Layout.NL
	suspects := make(map[string]bool, len(names))
	for _, n := range names {
		suspects[n] = true
	}
	// Rank exactly two suspects; everything else is unranked and must
	// sort after them regardless of bisection score.
	rank := map[string]int{names[5]: 0, names[2]: 1}
	got := s.pickProbes(suspects, map[string]bool{}, 4, rank)
	if len(got) < 2 {
		t.Fatalf("picked %d probes", len(got))
	}
	outOf := func(name string) netlist.NetID {
		id, ok := nl.CellByName(name)
		if !ok {
			t.Fatalf("cell %q vanished", name)
		}
		return nl.Cells[id].Out
	}
	if got[0] != outOf(names[5]) || got[1] != outOf(names[2]) {
		t.Fatalf("causally ranked suspects not probed first: got %v, want [%v %v ...]",
			got, outOf(names[5]), outOf(names[2]))
	}
}

func TestPickProbesExcludesAlreadyProbed(t *testing.T) {
	s, names := pickSession(t, 6)
	nl := s.Layout.NL
	suspects := make(map[string]bool, len(names))
	probed := make(map[string]bool)
	for _, n := range names {
		suspects[n] = true
		id, _ := nl.CellByName(n)
		probed[nl.NetName(nl.Cells[id].Out)] = true
	}
	// Every suspect output already probed: nothing left to pick.
	if got := s.pickProbes(suspects, probed, 4, nil); len(got) != 0 {
		t.Fatalf("picked %v despite all outputs probed", got)
	}
	// Unprobe one: exactly that net must come back.
	free, _ := nl.CellByName(names[3])
	freeNet := nl.Cells[free].Out
	delete(probed, nl.NetName(freeNet))
	got := s.pickProbes(suspects, probed, 4, nil)
	if len(got) != 1 || got[0] != freeNet {
		t.Fatalf("got %v, want [%v]", got, freeNet)
	}
}

// TestOverlayCampaignRollsBackClean drives a debug campaign through the
// overlay fast path inside one transaction: probe rounds must be pure
// configuration switches (zero tile effort), the diagnosis must stay
// sound, and rollback must restore both the layout digest and a parked
// selector — the contract the service's layout pool relies on.
func TestOverlayCampaignRollsBackClean(t *testing.T) {
	golden := mappedDesign(t, 300, 4242)
	for seed := int64(1); seed <= 4; seed++ {
		impl := golden.Clone()
		inj, err := faults.InjectRandom(impl, seed)
		if err != nil {
			t.Fatal(err)
		}
		lay, err := core.BuildMapped(impl, core.Spec{
			Seed: seed, PlaceEffort: 0.25, TileFrac: 0.1,
			OverlayReserve: overlay.DefaultReserve,
		})
		if err != nil {
			t.Fatal(err)
		}
		plan, err := overlay.Build(lay, overlay.DefaultChannels)
		if err != nil {
			t.Fatal(err)
		}
		pristine := lay.StateDigest()

		cp := lay.Checkpoint()
		s, err := NewSession(golden, lay, seed)
		if err != nil {
			t.Fatal(err)
		}
		s.Overlay = plan.NewSelector(lay)
		s.Causal = true
		det, err := s.Detect(8, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Failed {
			if err := lay.Rollback(cp); err != nil {
				t.Fatal(err)
			}
			continue
		}
		diag, err := s.Localize(det, 4, 4)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, name := range diag.Suspects {
			if name == inj.CellName {
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: overlay suspect set %v misses injected %v", seed, diag.Suspects, inj)
		}
		if s.OverlaySwitches == 0 {
			t.Fatal("no probe round went through the overlay")
		}
		if s.OverlayFallbacks != 0 {
			t.Fatalf("%d rounds fell back to CAD despite full coverage", s.OverlayFallbacks)
		}
		if diag.Effort.Work() != 0 {
			t.Fatalf("overlay rounds paid CAD effort %v", diag.Effort)
		}
		if err := lay.Rollback(cp); err != nil {
			t.Fatal(err)
		}
		if got := lay.StateDigest(); got != pristine {
			t.Fatalf("rollback digest %s != pristine %s", got, pristine)
		}
		for ch, name := range s.Overlay.Selected() {
			if name != "" {
				t.Fatalf("channel %d still selects %q after rollback", ch, name)
			}
		}
		return
	}
	t.Skip("no seed excited its injected error")
}
