package debug

import (
	"fmt"
	"sort"

	"fpgadbg/internal/netlist"
	"fpgadbg/internal/obs"
	"fpgadbg/internal/sim"
)

// causalRank implements the causal-chain localizer: one replay of the
// failing stimulus with every suspect output observed, then a backward
// walk from the first mismatching (output, cycle) through the recorded
// divergence along fanin cones — combinational fanin in the same cycle,
// register fanin in the previous cycle. The result maps each reached
// suspect cell to its causal distance (BFS depth) from the failure's
// first observable symptom.
//
// The ranking is sound for ordering, not pruning: the faulty cell's
// output diverges even when its inputs match, so the true site is
// always on a divergent chain, but a suspect missing from the map (its
// output never diverged, or its name is implementation-only) is merely
// unranked — pickProbes keeps it, after the ranked ones.
//
// The clean set IS sound for pruning. The replay observes every
// suspect's output over the whole failing stimulus; a suspect whose
// stream never diverges from golden cannot be the single error site:
// were it the site, every other cell computes correctly and its own
// output — including any feedback through state — matches golden on
// every cycle, so every net in the machine would match and no output
// could have failed. When the stimulus no longer fails (firstCycle
// lost to an intervening repair), both maps come back empty and
// nothing is pruned.
func (s *Session) causalRank(det *Detection, suspects map[string]bool) (rank map[string]int, clean map[string]bool, err error) {
	if err := s.interrupted(); err != nil {
		return nil, nil, err
	}
	sp := s.Obs.Start(obs.StageLocalizeCausal)
	defer sp.End()
	nl := s.Layout.NL
	mg, err := s.goldenMachine()
	if err != nil {
		return nil, nil, err
	}
	csp := s.Obs.Start(obs.StageCompile)
	mi, err := sim.Compile(nl)
	csp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("debug: impl: %w", err)
	}
	piNames := s.Golden.SortedPINames()
	if err := mg.BindNames(piNames); err != nil {
		return nil, nil, fmt.Errorf("debug: golden: %w", err)
	}
	if err := mi.BindNames(piNames); err != nil {
		return nil, nil, fmt.Errorf("debug: impl: %w", err)
	}
	goldenPI := make(map[string]bool, len(piNames))
	for _, n := range piNames {
		goldenPI[n] = true
	}
	for _, n := range nl.SortedPINames() {
		if goldenPI[n] {
			continue
		}
		if id, ok := nl.NetByName(n); ok {
			if err := mi.SetOverride(id, 0); err != nil {
				return nil, nil, fmt.Errorf("debug: impl: %w", err)
			}
		}
	}

	// Observe every net a divergence decision needs: each suspect's
	// output plus the failing outputs themselves — restricted to names
	// both designs share (an implementation-only net has no golden
	// stream to diverge from).
	watch := make(map[string]bool, len(suspects)+len(det.FailingOutputs))
	for name := range suspects {
		if id, ok := nl.CellByName(name); ok {
			watch[nl.NetName(nl.Cells[id].Out)] = true
		}
	}
	for _, name := range det.FailingOutputs {
		watch[name] = true
	}
	names := make([]string, 0, len(watch))
	for name := range watch {
		names = append(names, name)
	}
	sort.Strings(names)
	colOf := make(map[string]int, len(names))
	var gProbes, iProbes []netlist.NetID
	for _, name := range names {
		gid, gok := s.Golden.NetByName(name)
		iid, iok := nl.NetByName(name)
		if gok && iok {
			colOf[name] = len(gProbes)
			gProbes = append(gProbes, gid)
			iProbes = append(iProbes, iid)
		}
	}
	if err := mg.Probe(gProbes...); err != nil {
		return nil, nil, err
	}
	defer mg.ClearProbes()
	if err := mi.Probe(iProbes...); err != nil {
		return nil, nil, err
	}
	poNames := s.Golden.SortedPONames()
	gCols, err := mg.POCols(poNames)
	if err != nil {
		return nil, nil, fmt.Errorf("debug: golden: %w", err)
	}
	iCols, err := mi.POCols(poNames)
	if err != nil {
		return nil, nil, fmt.Errorf("debug: impl: %w", err)
	}
	seq := det.Stimulus
	tg := mg.RunTrace(seq)
	ti := mi.RunTrace(seq)

	// First mismatching cycle and output — the failure's earliest
	// observable symptom.
	firstCycle, firstPO := -1, ""
	for c := 0; c < len(seq) && firstCycle < 0; c++ {
		for i, name := range poNames {
			if tg.Out(c, gCols[i]) != ti.Out(c, iCols[i]) {
				firstCycle, firstPO = c, name
				break
			}
		}
	}
	if firstCycle < 0 {
		// The recorded stimulus no longer fails (e.g. an intervening
		// repair); nothing to rank, nothing to exonerate.
		return map[string]int{}, map[string]bool{}, nil
	}
	diverged := func(name string, cycle int) bool {
		col, ok := colOf[name]
		if !ok || cycle < 0 || cycle >= len(seq) {
			return false
		}
		return tg.ProbeVal(cycle, col) != ti.ProbeVal(cycle, col)
	}

	// Backward BFS over (cell, cycle) states, walking only through
	// divergent fanin nets.
	type state struct {
		cell  netlist.CellID
		cycle int
	}
	rank = make(map[string]int)
	seen := make(map[state]bool)
	var queue []state
	depth := make(map[state]int)
	push := func(st state, d int) {
		if st.cycle < 0 || seen[st] {
			return
		}
		seen[st] = true
		depth[st] = d
		queue = append(queue, st)
		name := nl.CellName(st.cell)
		if cur, ok := rank[name]; !ok || d < cur {
			rank[name] = d
		}
	}
	if poID, ok := nl.NetByName(firstPO); ok {
		if d := nl.Nets[poID].Driver; d != netlist.NilCell && !nl.Cells[d].Dead {
			push(state{cell: d, cycle: firstCycle}, 0)
		}
	}
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		c := &nl.Cells[st.cell]
		for _, f := range c.Fanin {
			cy := st.cycle
			if c.Kind == netlist.KindDFF {
				cy-- // register fanin was sampled the cycle before
			}
			d := nl.Nets[f].Driver
			if d == netlist.NilCell || nl.Cells[d].Dead {
				continue
			}
			if !diverged(nl.NetName(f), cy) {
				continue
			}
			push(state{cell: d, cycle: cy}, depth[st]+1)
		}
	}
	// Exoneration: a suspect observed on every cycle of the failing
	// stimulus without a single divergence cannot be the site.
	clean = make(map[string]bool)
	for name := range suspects {
		id, ok := nl.CellByName(name)
		if !ok {
			continue
		}
		col, ok := colOf[nl.NetName(nl.Cells[id].Out)]
		if !ok {
			continue // implementation-only output: no golden stream, keep
		}
		matched := true
		for c := 0; c < len(seq); c++ {
			if tg.ProbeVal(c, col) != ti.ProbeVal(c, col) {
				matched = false
				break
			}
		}
		if matched {
			clean[name] = true
		}
	}
	sp.Add("causal-ranked", int64(len(rank)))
	sp.Add("causal-exonerated", int64(len(clean)))
	sp.Add("mismatch-cycle", int64(firstCycle))
	s.emit("localize", 0, "causal walk from cycle %d (%s): %d cells ranked, %d exonerated", firstCycle, firstPO, len(rank), len(clean))
	return rank, clean, nil
}
