package timing

import (
	"fmt"

	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
)

// Engine is the incremental static timing analyzer. It keeps the
// per-net arrival times of the last analysis and, on Update, recomputes
// only the forward cones of the cells and nets a physical change
// touched; endpoints are rescanned in full off a cached register list
// (O(outputs + registers), not O(design)). The recomputation applies
// exactly the arithmetic of
// Analyze in exactly the same order, so an Engine driven through any
// sequence of Updates reports arrival times and a critical path
// bit-identical to a from-scratch Analyze of the same Input — pinned by
// SelfCheck and the cross-catalog differential tests.
//
// The Input maps are shared, live references: the owner (core.Layout)
// mutates CellPos and NetLen in place before calling Update. An Engine
// is not safe for concurrent use.
type Engine struct {
	in Input
	m  Model

	arr []float64 // arrival at each net's driver output

	// Topology caches, rebuilt on structural updates.
	order    []netlist.CellID
	dffs     []netlist.CellID // DFF cells in topo order (endpoint scan)
	critical float64

	// Scratch dirty marks (sparse reset).
	dirtyNet    []bool
	dirtyCell   []bool
	touchedNet  []netlist.NetID
	touchedCell []netlist.CellID

	// LastCone is the number of cells recomputed by the last Update;
	// LiveCells the live cell count at the last rebuild — together the
	// delta-STA work ratio reported by the ECO benchmark.
	LastCone  int
	LiveCells int
	// Updates counts Update calls.
	Updates int
}

// NewEngine runs a full analysis and returns the incremental engine.
func NewEngine(in Input, m Model) (*Engine, error) {
	e := &Engine{in: in, m: m}
	if err := e.rebuild(); err != nil {
		return nil, err
	}
	e.recomputeAll()
	return e, nil
}

// Critical returns the current critical-path delay.
func (e *Engine) Critical() float64 { return e.critical }

// rebuild refreshes the topology caches from the live netlist.
func (e *Engine) rebuild() error {
	nl := e.in.NL
	order, err := nl.TopoOrder()
	if err != nil {
		return fmt.Errorf("timing: %w", err)
	}
	e.order = order
	e.LiveCells = len(order)
	e.dffs = e.dffs[:0]
	for _, id := range order {
		if nl.Cells[id].Kind == netlist.KindDFF {
			e.dffs = append(e.dffs, id)
		}
	}

	// Resize the arrival table; slots for newly created nets start at 0
	// exactly like a from-scratch pass (stale capacity is re-zeroed).
	if n := len(nl.Nets); n <= len(e.arr) {
		e.arr = e.arr[:n]
	} else {
		for len(e.arr) < n {
			e.arr = append(e.arr, 0)
		}
	}

	if len(e.dirtyNet) < len(nl.Nets) {
		e.dirtyNet = make([]bool, len(nl.Nets))
	}
	if len(e.dirtyCell) < len(nl.Cells) {
		e.dirtyCell = make([]bool, len(nl.Cells))
	}
	return nil
}

// wireDelay mirrors Analyze's wire model exactly.
func (e *Engine) wireDelay(net netlist.NetID, sink netlist.CellID) float64 {
	if l, ok := e.in.NetLen[net]; ok {
		return e.m.WirePerUnit * float64(l)
	}
	nl := e.in.NL
	var from device.XY
	haveFrom := false
	if d := nl.Nets[net].Driver; d != netlist.NilCell {
		from, haveFrom = e.in.CellPos[d]
	} else if p, ok := e.in.PadPos[net]; ok {
		from, haveFrom = p, true
	}
	to, haveTo := e.in.CellPos[sink]
	if !haveFrom || !haveTo {
		return 0
	}
	return e.m.WirePerUnit * float64(device.ManhattanDist(from, to))
}

// cellArrival recomputes one LUT cell's output arrival, Analyze's inner
// loop verbatim.
func (e *Engine) cellArrival(id netlist.CellID) float64 {
	c := &e.in.NL.Cells[id]
	worst := 0.0
	for _, f := range c.Fanin {
		if a := e.arr[f] + e.wireDelay(f, id); a > worst {
			worst = a
		}
	}
	return worst + e.m.LUTDelay
}

// recomputeAll is the full pass: identical to Analyze over the current
// Input.
func (e *Engine) recomputeAll() {
	nl := e.in.NL
	for i := range e.arr {
		e.arr[i] = 0
	}
	for _, pi := range nl.PIs {
		e.arr[pi] = e.m.IOPadDelay
	}
	for _, id := range e.order {
		if nl.Cells[id].Kind == netlist.KindDFF {
			e.arr[nl.Cells[id].Out] = e.m.FFClkToQ
		}
	}
	for _, id := range e.order {
		if nl.Cells[id].Kind != netlist.KindLUT {
			continue
		}
		e.arr[nl.Cells[id].Out] = e.cellArrival(id)
	}
	e.LastCone = e.LiveCells
	e.rescanEndpoints()
}

// rescanEndpoints recomputes the critical delay over all endpoints in
// Analyze's exact order (POs first, then DFF D pins in topo order).
func (e *Engine) rescanEndpoints() {
	nl := e.in.NL
	best := 0.0
	consider := func(net netlist.NetID, extra float64) {
		if a := e.arr[net] + extra; a > best {
			best = a
		}
	}
	for _, po := range nl.POs {
		consider(po, e.m.IOPadDelay)
	}
	for _, id := range e.dffs {
		c := &nl.Cells[id]
		consider(c.Fanin[0], e.wireDelay(c.Fanin[0], id)+e.m.FFSetup)
	}
	e.critical = best
}

// Update resynchronizes the engine after a change: cells whose position,
// function or wiring changed (including cells added or rolled back) and
// nets whose routed length changed seed the recomputation; arrivals are
// recomputed only through their forward cones. Structural edits
// (anything beyond pure placement moves) must pass structural=true so
// the topology caches rebuild first. Invalid or stale IDs in the seed
// sets are ignored, so rollback call sites can pass journal-derived sets
// verbatim.
func (e *Engine) Update(cells []netlist.CellID, nets []netlist.NetID, structural bool) error {
	e.Updates++
	nl := e.in.NL
	if structural {
		if err := e.rebuild(); err != nil {
			return err
		}
	}

	// Constant arrivals are cheap to refresh and cover newly created or
	// rolled-back PIs and DFFs.
	for _, pi := range nl.PIs {
		if e.arr[pi] != e.m.IOPadDelay {
			e.arr[pi] = e.m.IOPadDelay
			e.markNet(pi)
		}
	}
	for _, id := range e.dffs {
		if out := nl.Cells[id].Out; e.arr[out] != e.m.FFClkToQ {
			e.arr[out] = e.m.FFClkToQ
			e.markNet(out)
		}
	}

	for _, id := range cells {
		if int(id) < 0 || int(id) >= len(nl.Cells) {
			continue
		}
		c := &nl.Cells[id]
		if c.Dead {
			// A removed cell's output net lost its driver; restore the
			// undriven base arrival a fresh analysis would compute.
			if int(c.Out) >= 0 && int(c.Out) < len(nl.Nets) {
				e.resetUndriven(c.Out)
			}
			continue
		}
		e.markCell(id)
		// A moved cell also changes the wire delay it contributes as a
		// driver wherever the net length is estimated from positions.
		e.markNet(c.Out)
	}
	for _, net := range nets {
		if int(net) < 0 || int(net) >= len(nl.Nets) {
			continue
		}
		e.markNet(net)
		e.resetUndriven(net)
	}

	// Propagate through the cone in topological order.
	cone := 0
	for _, id := range e.order {
		c := &nl.Cells[id]
		if c.Kind != netlist.KindLUT {
			continue
		}
		need := e.dirtyCell[id]
		if !need {
			for _, f := range c.Fanin {
				if e.dirtyNet[f] {
					need = true
					break
				}
			}
		}
		if !need {
			continue
		}
		cone++
		a := e.cellArrival(id)
		if a != e.arr[c.Out] {
			e.arr[c.Out] = a
			e.markNet(c.Out)
		}
	}
	e.LastCone = cone
	e.rescanEndpoints()

	// Sparse reset of the dirty marks.
	for _, net := range e.touchedNet {
		e.dirtyNet[net] = false
	}
	e.touchedNet = e.touchedNet[:0]
	for _, id := range e.touchedCell {
		e.dirtyCell[id] = false
	}
	e.touchedCell = e.touchedCell[:0]
	return nil
}

// resetUndriven restores the base arrival of a net without a live
// driver (0, or the pad delay for primary inputs), matching what a
// from-scratch pass computes for it.
func (e *Engine) resetUndriven(net netlist.NetID) {
	nl := e.in.NL
	if d := nl.Nets[net].Driver; d != netlist.NilCell && !nl.Cells[d].Dead {
		return
	}
	base := 0.0
	if nl.IsPI(net) {
		base = e.m.IOPadDelay
	}
	if e.arr[net] != base {
		e.arr[net] = base
		e.markNet(net)
	}
}

func (e *Engine) markNet(net netlist.NetID) {
	if !e.dirtyNet[net] {
		e.dirtyNet[net] = true
		e.touchedNet = append(e.touchedNet, net)
	}
}

func (e *Engine) markCell(id netlist.CellID) {
	if !e.dirtyCell[id] {
		e.dirtyCell[id] = true
		e.touchedCell = append(e.touchedCell, id)
	}
}

// SelfCheck compares the engine's state against a from-scratch analysis
// of the same Input and reports the first divergence — the incremental
// STA's differential oracle.
func (e *Engine) SelfCheck() error {
	fresh, err := NewEngine(e.in, e.m)
	if err != nil {
		return err
	}
	if fresh.critical != e.critical {
		return fmt.Errorf("timing: incremental critical %v != full %v", e.critical, fresh.critical)
	}
	if len(fresh.arr) != len(e.arr) {
		return fmt.Errorf("timing: arrival table length %d != %d", len(e.arr), len(fresh.arr))
	}
	nl := e.in.NL
	for ni := range fresh.arr {
		if nl.Nets[ni].Dead {
			continue
		}
		if fresh.arr[ni] != e.arr[ni] {
			return fmt.Errorf("timing: net %q arrival %v != full %v", nl.NetName(netlist.NetID(ni)), e.arr[ni], fresh.arr[ni])
		}
	}
	rep, err := Analyze(e.in, e.m)
	if err != nil {
		return err
	}
	if rep.Critical != e.critical {
		return fmt.Errorf("timing: incremental critical %v != Analyze %v", e.critical, rep.Critical)
	}
	return nil
}
