// Package timing performs static timing analysis over a placed (and
// optionally routed) design. The delay model is the standard simplified
// one: a fixed delay per LUT evaluation, a clock-to-Q delay per flip-flop,
// and wire delay proportional to routed wirelength (falling back to
// Manhattan source–sink distance when a net has no recorded route).
// Table 1's timing-overhead column is the ratio of tiled to untiled
// critical path minus one.
//
// Analyze is the one-shot analyzer; Engine is its incremental twin for
// the debug loop: it keeps per-net arrival times and recomputes only
// the forward cones of the cells and nets a physical update touched,
// with results pinned bit-identical to Analyze (Engine.SelfCheck).
// core.Layout.EnableTiming drives it from every ApplyDelta and
// transaction rollback.
package timing
