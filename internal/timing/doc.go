// Package timing performs static timing analysis over a placed (and
// optionally routed) design. The delay model is the standard simplified
// one: a fixed delay per LUT evaluation, a clock-to-Q delay per flip-flop,
// and wire delay proportional to routed wirelength (falling back to
// Manhattan source–sink distance when a net has no recorded route).
// Table 1's timing-overhead column is the ratio of tiled to untiled
// critical path minus one.
package timing
