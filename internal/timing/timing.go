package timing

import (
	"fmt"

	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
)

// Model holds the delay parameters (arbitrary time units; overhead ratios
// are unit-free).
type Model struct {
	LUTDelay    float64
	FFClkToQ    float64
	FFSetup     float64
	WirePerUnit float64
	IOPadDelay  float64
}

// DefaultModel loosely follows XC4000-class datasheet magnitudes (ns).
func DefaultModel() Model {
	return Model{LUTDelay: 1.5, FFClkToQ: 1.0, FFSetup: 0.8, WirePerUnit: 0.4, IOPadDelay: 1.0}
}

// Input bundles a netlist with its physical annotations.
type Input struct {
	NL *netlist.Netlist
	// CellPos gives the grid position of every live cell (its CLB site).
	CellPos map[netlist.CellID]device.XY
	// PadPos gives pad positions for PI and PO nets.
	PadPos map[netlist.NetID]device.XY
	// NetLen, when present for a net, is its routed wirelength in channel
	// segments; absent nets use Manhattan estimates.
	NetLen map[netlist.NetID]int
}

// PathNode is one step of the critical path.
type PathNode struct {
	Cell    string
	Arrival float64
}

// Report is the analysis result.
type Report struct {
	// Critical is the worst register-to-register / input-to-output path
	// delay; the minimum clock period for sequential designs.
	Critical float64
	// WorstPath lists the cells along the critical path, source first.
	WorstPath []PathNode
}

// Analyze computes arrival times in topological order and returns the
// critical path.
func Analyze(in Input, m Model) (Report, error) {
	nl := in.NL
	order, err := nl.TopoOrder()
	if err != nil {
		return Report{}, fmt.Errorf("timing: %w", err)
	}
	// Arrival time at each net (at its driver output).
	arr := make([]float64, len(nl.Nets))
	pred := make([]netlist.CellID, len(nl.Nets))
	for i := range pred {
		pred[i] = netlist.NilCell
	}
	for _, pi := range nl.PIs {
		arr[pi] = m.IOPadDelay
	}
	// DFF outputs launch at clk-to-Q.
	for _, id := range order {
		c := &nl.Cells[id]
		if c.Kind == netlist.KindDFF {
			arr[c.Out] = m.FFClkToQ
			pred[c.Out] = id
		}
	}

	wireDelay := func(net netlist.NetID, sink netlist.CellID) float64 {
		if l, ok := in.NetLen[net]; ok {
			return m.WirePerUnit * float64(l)
		}
		// Manhattan estimate between driver (or pad) and sink positions.
		var from device.XY
		haveFrom := false
		if d := nl.Nets[net].Driver; d != netlist.NilCell {
			from, haveFrom = in.CellPos[d]
		} else if p, ok := in.PadPos[net]; ok {
			from, haveFrom = p, true
		}
		to, haveTo := in.CellPos[sink]
		if !haveFrom || !haveTo {
			return 0
		}
		return m.WirePerUnit * float64(device.ManhattanDist(from, to))
	}

	for _, id := range order {
		c := &nl.Cells[id]
		if c.Kind != netlist.KindLUT {
			continue
		}
		worst := 0.0
		for _, f := range c.Fanin {
			if a := arr[f] + wireDelay(f, id); a > worst {
				worst = a
			}
		}
		arr[c.Out] = worst + m.LUTDelay
		pred[c.Out] = id
	}

	// Endpoints: PO pads and DFF D pins.
	best := 0.0
	var bestNet netlist.NetID = netlist.NilNet
	consider := func(net netlist.NetID, extra float64) {
		if a := arr[net] + extra; a > best {
			best = a
			bestNet = net
		}
	}
	for _, po := range nl.POs {
		consider(po, m.IOPadDelay)
	}
	for _, id := range order {
		c := &nl.Cells[id]
		if c.Kind == netlist.KindDFF {
			consider(c.Fanin[0], wireDelay(c.Fanin[0], id)+m.FFSetup)
		}
	}

	rep := Report{Critical: best}
	// Trace the worst path backward through the argmax predecessors.
	for net := bestNet; net != netlist.NilNet; {
		id := pred[net]
		if id == netlist.NilCell {
			break
		}
		rep.WorstPath = append([]PathNode{{Cell: nl.CellName(id), Arrival: arr[net]}}, rep.WorstPath...)
		c := &nl.Cells[id]
		if c.Kind == netlist.KindDFF {
			break
		}
		// Find the fanin with the worst arrival+wire.
		worst, wNet := -1.0, netlist.NilNet
		for _, f := range c.Fanin {
			if a := arr[f] + wireDelay(f, id); a > worst {
				worst, wNet = a, f
			}
		}
		net = wNet
		if len(rep.WorstPath) > 10000 {
			return rep, fmt.Errorf("timing: path trace runaway")
		}
	}
	return rep, nil
}

// Overhead returns tiled/untiled - 1, the paper's timing-overhead metric.
func Overhead(untiled, tiled Report) float64 {
	if untiled.Critical == 0 {
		return 0
	}
	return tiled.Critical/untiled.Critical - 1
}
