package timing

import (
	"math"
	"testing"

	"fpgadbg/internal/device"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// chain builds a LUT chain of given depth with adjacent placement.
func chain(depth int) (*netlist.Netlist, Input) {
	nl := netlist.New("chain")
	in := nl.AddPI("in")
	cur := in
	pos := make(map[netlist.CellID]device.XY)
	for i := 0; i < depth; i++ {
		out := nl.AddNet("")
		id := nl.MustAddLUT("", logic.NotN(), []netlist.NetID{cur}, out)
		pos[id] = device.XY{X: 1 + i, Y: 1}
		cur = out
	}
	nl.MarkPO(cur)
	return nl, Input{
		NL:      nl,
		CellPos: pos,
		PadPos:  map[netlist.NetID]device.XY{in: {X: 0, Y: 1}},
		NetLen:  map[netlist.NetID]int{},
	}
}

func TestChainDelayScalesWithDepth(t *testing.T) {
	m := DefaultModel()
	_, in4 := chain(4)
	_, in8 := chain(8)
	r4, err := Analyze(in4, m)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Analyze(in8, m)
	if err != nil {
		t.Fatal(err)
	}
	if r8.Critical <= r4.Critical {
		t.Fatalf("deeper chain not slower: %f vs %f", r4.Critical, r8.Critical)
	}
	// Exact value: 2 pad delays + depth LUTs + depth unit wires.
	want := 2*m.IOPadDelay + 4*m.LUTDelay + 4*m.WirePerUnit
	if math.Abs(r4.Critical-want) > 1e-9 {
		t.Fatalf("chain4 critical %f, want %f", r4.Critical, want)
	}
	if len(r4.WorstPath) != 4 {
		t.Fatalf("worst path has %d nodes, want 4", len(r4.WorstPath))
	}
}

func TestRoutedLengthOverridesManhattan(t *testing.T) {
	nl, in := chain(2)
	m := DefaultModel()
	base, err := Analyze(in, m)
	if err != nil {
		t.Fatal(err)
	}
	// Give the internal (driven, non-PO) net a long detour.
	mid := netlist.NilNet
	for ni := range nl.Nets {
		if nl.Nets[ni].Driver != netlist.NilCell && !nl.IsPO(netlist.NetID(ni)) {
			mid = netlist.NetID(ni)
		}
	}
	if mid == netlist.NilNet {
		t.Fatal("could not find internal net")
	}
	in.NetLen[mid] = 20
	slow, err := Analyze(in, m)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Critical <= base.Critical {
		t.Fatalf("routed detour did not slow path: %f vs %f", base.Critical, slow.Critical)
	}
}

func TestSequentialPaths(t *testing.T) {
	// PI -> LUT -> DFF -> LUT -> PO; critical is the worse of the two
	// register-bounded segments.
	nl := netlist.New("seq")
	a := nl.AddPI("a")
	x := nl.AddNet("x")
	q := nl.AddNet("q")
	y := nl.AddNet("y")
	l1 := nl.MustAddLUT("l1", logic.NotN(), []netlist.NetID{a}, x)
	ff := nl.MustAddDFF("ff", x, q, 0)
	l2 := nl.MustAddLUT("l2", logic.NotN(), []netlist.NetID{q}, y)
	nl.MarkPO(y)
	in := Input{
		NL: nl,
		CellPos: map[netlist.CellID]device.XY{
			l1: {X: 1, Y: 1}, ff: {X: 2, Y: 1}, l2: {X: 3, Y: 1},
		},
		PadPos: map[netlist.NetID]device.XY{a: {X: 0, Y: 1}},
		NetLen: map[netlist.NetID]int{},
	}
	m := DefaultModel()
	r, err := Analyze(in, m)
	if err != nil {
		t.Fatal(err)
	}
	// Input segment: pad + wire + LUT + wire + setup.
	seg1 := m.IOPadDelay + m.WirePerUnit + m.LUTDelay + m.WirePerUnit + m.FFSetup
	// Output segment: clkq + wire + LUT + wire(0: PO pad unplaced) + pad.
	seg2 := m.FFClkToQ + m.WirePerUnit + m.LUTDelay + m.IOPadDelay
	want := math.Max(seg1, seg2)
	if math.Abs(r.Critical-want) > 1e-9 {
		t.Fatalf("critical %f, want %f (seg1=%f seg2=%f)", r.Critical, want, seg1, seg2)
	}
}

func TestOverheadMetric(t *testing.T) {
	u := Report{Critical: 10}
	v := Report{Critical: 12}
	if math.Abs(Overhead(u, v)-0.2) > 1e-9 {
		t.Fatalf("overhead = %f", Overhead(u, v))
	}
	w := Report{Critical: 9.5}
	if Overhead(u, w) >= 0 {
		t.Fatal("negative overhead (speedup) not reported")
	}
	if Overhead(Report{}, v) != 0 {
		t.Fatal("zero baseline must not divide")
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	nl := netlist.New("cyc")
	x := nl.AddNet("x")
	y := nl.AddNet("y")
	nl.MustAddLUT("g1", logic.NotN(), []netlist.NetID{y}, x)
	nl.MustAddLUT("g2", logic.NotN(), []netlist.NetID{x}, y)
	nl.MarkPO(y)
	_, err := Analyze(Input{NL: nl, NetLen: map[netlist.NetID]int{}}, DefaultModel())
	if err == nil {
		t.Fatal("cycle accepted")
	}
}
