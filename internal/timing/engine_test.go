package timing

import (
	"testing"

	"fpgadbg/internal/device"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// engineFixture builds a small sequential design with physical
// annotations.
func engineFixture() (Input, *netlist.Netlist) {
	nl := netlist.New("eng")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	x := nl.AddNet("x")
	y := nl.AddNet("y")
	q := nl.AddNet("q")
	g1 := nl.MustAddLUT("g1", logic.AndN(2), []netlist.NetID{a, b}, x)
	g2 := nl.MustAddLUT("g2", logic.OrN(2), []netlist.NetID{x, a}, y)
	ff := nl.MustAddDFF("ff", y, q, 0)
	g3out := nl.AddNet("po")
	g3 := nl.MustAddLUT("g3", logic.XorN(2), []netlist.NetID{q, x}, g3out)
	nl.MarkPO(g3out)
	in := Input{
		NL: nl,
		CellPos: map[netlist.CellID]device.XY{
			g1: {X: 1, Y: 1}, g2: {X: 3, Y: 1}, ff: {X: 3, Y: 2}, g3: {X: 5, Y: 4},
		},
		PadPos: map[netlist.NetID]device.XY{a: {X: 0, Y: 1}, b: {X: 0, Y: 2}, g3out: {X: 6, Y: 0}},
		NetLen: map[netlist.NetID]int{x: 3, y: 2},
	}
	return in, nl
}

func TestEngineMatchesAnalyze(t *testing.T) {
	in, _ := engineFixture()
	m := DefaultModel()
	eng, err := NewEngine(in, m)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(in, m)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Critical() != rep.Critical {
		t.Fatalf("engine %v != Analyze %v", eng.Critical(), rep.Critical)
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineIncrementalUpdates(t *testing.T) {
	in, nl := engineFixture()
	m := DefaultModel()
	eng, err := NewEngine(in, m)
	if err != nil {
		t.Fatal(err)
	}

	// 1. Pure placement move.
	g3, _ := nl.CellByName("g3")
	in.CellPos[g3] = device.XY{X: 9, Y: 9}
	if err := eng.Update([]netlist.CellID{g3}, nil, false); err != nil {
		t.Fatal(err)
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("after move: %v", err)
	}

	// 2. Routed-length change.
	x, _ := nl.NetByName("x")
	in.NetLen[x] = 11
	if err := eng.Update(nil, []netlist.NetID{x}, false); err != nil {
		t.Fatal(err)
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("after reroute: %v", err)
	}

	// 3. Structural: new observation logic.
	nl.SetJournaling(true)
	mark := nl.JournalLen()
	flag := nl.AddNet("flag")
	obs, err := nl.AddLUT("obs", logic.BufN(), []netlist.NetID{x}, flag)
	if err != nil {
		t.Fatal(err)
	}
	nl.MarkPO(flag)
	in.CellPos[obs] = device.XY{X: 2, Y: 7}
	if err := eng.Update([]netlist.CellID{obs}, nil, true); err != nil {
		t.Fatal(err)
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("after insert: %v", err)
	}

	// 4. Function rewrite.
	g1, _ := nl.CellByName("g1")
	if err := nl.SetFunc(g1, logic.NandN(2)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Update([]netlist.CellID{g1}, nil, true); err != nil {
		t.Fatal(err)
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("after rewrite: %v", err)
	}

	// 5. Rollback of the structural change: journal-derived seeds.
	cells, nets := nl.RollbackJournal(mark)
	delete(in.CellPos, obs)
	if err := eng.Update(cells, nets, true); err != nil {
		t.Fatal(err)
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("after rollback: %v", err)
	}

	// 6. Cell removal: the output net loses its driver.
	nl.SetJournaling(false)
	spareOut := nl.AddNet("spare")
	spare, err := nl.AddLUT("spare_lut", logic.BufN(), []netlist.NetID{x}, spareOut)
	if err != nil {
		t.Fatal(err)
	}
	in.CellPos[spare] = device.XY{X: 4, Y: 4}
	if err := eng.Update([]netlist.CellID{spare}, nil, true); err != nil {
		t.Fatal(err)
	}
	if err := nl.RemoveCell(spare); err != nil {
		t.Fatal(err)
	}
	delete(in.CellPos, spare)
	if err := eng.Update([]netlist.CellID{spare}, []netlist.NetID{spareOut}, true); err != nil {
		t.Fatal(err)
	}
	if err := eng.SelfCheck(); err != nil {
		t.Fatalf("after removal: %v", err)
	}
	if eng.Updates == 0 || eng.LiveCells == 0 {
		t.Fatal("engine statistics not tracked")
	}
}
