package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceFinishAggregation(t *testing.T) {
	reg := NewRegistry()
	tr := NewTrace("c000001", "9sym", "repair", reg)

	outer := tr.Start(StageDetect)
	time.Sleep(2 * time.Millisecond)
	inner := tr.Start(StageGoldenTrace)
	inner.Add("trace-cache-miss", 1)
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()

	second := tr.Start(StageGoldenTrace)
	second.Add("trace-cache-hit", 1)
	second.End()

	st := tr.Finish()
	if st == nil || st.Campaign != "c000001" || st.Design != "9sym" || st.Kind != "repair" {
		t.Fatalf("bad header: %+v", st)
	}
	det := st.Stage(StageDetect)
	gt := st.Stage(StageGoldenTrace)
	if det == nil || gt == nil {
		t.Fatalf("missing stages: %+v", st.Stages)
	}
	if det.Count != 1 || gt.Count != 2 {
		t.Fatalf("counts: detect=%d goldentrace=%d", det.Count, gt.Count)
	}
	if det.DurUs < gt.DurUs {
		t.Fatalf("detect (outer, %dµs) should include goldentrace (%dµs)", det.DurUs, gt.DurUs)
	}
	// Exclusive time partitions: detect's exclusive excludes the nested
	// goldentrace span.
	if det.ExclUs >= det.DurUs {
		t.Fatalf("detect exclusive %dµs not reduced below inclusive %dµs", det.ExclUs, det.DurUs)
	}
	if st.Counters["trace-cache-miss"] != 1 || st.Counters["trace-cache-hit"] != 1 {
		t.Fatalf("counters: %v", st.Counters)
	}
	// Stage rows come out in canonical StageOrder (goldentrace precedes
	// detect).
	if st.Stages[0].Stage != StageGoldenTrace || st.Stages[1].Stage != StageDetect {
		t.Fatalf("order: %+v", st.Stages)
	}
	// Registry histograms accumulated one detect and two goldentrace
	// observations.
	snap := reg.Snapshot()
	if snap.Histograms["stage.detect"].Count != 1 || snap.Histograms["stage.goldentrace"].Count != 2 {
		t.Fatalf("registry histograms: %+v", snap.Histograms)
	}
}

// TestSpansProperlyNested is the overlap discipline check: the pipeline
// runs on one goroutine, so any two spans of a trace must be disjoint or
// strictly nested — never partially overlapping.
func TestSpansProperlyNested(t *testing.T) {
	tr := NewTrace("c", "d", "debug", nil)
	a := tr.Start(StagePlace)
	b := tr.Start(StageRoute)
	b.End()
	a.End()
	c := tr.Start(StageDetect)
	c.End()
	AssertProperNesting(t, tr.Spans())
}

// AssertProperNesting fails the test when any pair of span records
// partially overlaps. Shared with the service-level completeness test.
func AssertProperNesting(t *testing.T, spans []SpanRecord) {
	t.Helper()
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			aEnd, bEnd := a.Start.Add(a.Dur), b.Start.Add(b.Dur)
			disjoint := !aEnd.After(b.Start) || !bEnd.After(a.Start)
			aInB := !a.Start.Before(b.Start) && !aEnd.After(bEnd)
			bInA := !b.Start.Before(a.Start) && !bEnd.After(aEnd)
			if !disjoint && !aInB && !bInA {
				t.Errorf("spans overlap without nesting: %s[%v+%v] vs %s[%v+%v]",
					a.Stage, a.Start, a.Dur, b.Stage, b.Start, b.Dur)
			}
		}
	}
}

func TestTraceLogNDJSON(t *testing.T) {
	var sb strings.Builder
	log := NewTraceLog(&sb)
	tr := NewTrace("c000001", "9sym", "repair", nil)
	tr.Start(StageDetect).End()
	if err := log.Write(tr.Finish()); err != nil {
		t.Fatal(err)
	}
	if err := log.Write(tr.Finish()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d: %q", len(lines), sb.String())
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "{") || !strings.Contains(ln, `"campaign":"c000001"`) {
			t.Fatalf("bad NDJSON line: %q", ln)
		}
	}
}
