package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceLog serializes finished StageTraces to a writer as NDJSON — one
// JSON object per line, append-only. The daemon points it at the
// -trace-log file; fpgadbg -trace-out uses it for a single campaign. A
// nil *TraceLog drops writes.
type TraceLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewTraceLog wraps a writer. Returns nil for a nil writer, so the
// disabled path is a nil-receiver no-op like the rest of the package.
func NewTraceLog(w io.Writer) *TraceLog {
	if w == nil {
		return nil
	}
	return &TraceLog{w: w}
}

// Write appends one StageTrace line. Concurrent campaign workers
// serialize on the log's mutex so lines never interleave.
func (l *TraceLog) Write(st *StageTrace) error {
	if l == nil || st == nil {
		return nil
	}
	b, err := json.Marshal(st)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.w.Write(b)
	return err
}
