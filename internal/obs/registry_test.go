package obs

import (
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentHammer drives one registry from many goroutines —
// counters, gauges and histograms by overlapping names — while a reader
// goroutine snapshots continuously. Run under -race this is the data-race
// proof for the registry; the final totals prove no increment was lost.
func TestRegistryConcurrentHammer(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const iters = 2000
	names := []string{"alpha", "beta", "gamma"}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent snapshotter
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := reg.Snapshot()
				for name, v := range snap.Counters {
					if v < 0 {
						t.Errorf("counter %s went negative: %d", name, v)
						return
					}
				}
			}
		}
	}()

	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < iters; i++ {
				name := names[(g+i)%len(names)]
				reg.Counter(name).Add(1)
				reg.Gauge("depth." + name).Set(int64(i))
				reg.Histogram("lat." + name).Observe(time.Duration(i%1000) * time.Microsecond)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	snap := reg.Snapshot()
	sum := int64(0)
	for _, n := range names {
		sum += snap.Counters[n]
	}
	if sum != goroutines*iters {
		t.Fatalf("lost increments: %d != %d", sum, goroutines*iters)
	}
	hsum := int64(0)
	for _, n := range names {
		hsum += snap.Histograms["lat."+n].Count
	}
	if hsum != goroutines*iters {
		t.Fatalf("lost observations: %d != %d", hsum, goroutines*iters)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 samples at ~1µs, 10 at ~1ms: p50 must sit in the µs decade and
	// p99 in the ms decade (quantiles are power-of-2 bucket upper bounds).
	for i := 0; i < 100; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("count %d != 110", s.Count)
	}
	if s.P50Ms <= 0 || s.P50Ms > 0.01 {
		t.Fatalf("p50 %.6fms outside the µs decade", s.P50Ms)
	}
	if s.P99Ms < 0.5 || s.P99Ms > 4 {
		t.Fatalf("p99 %.6fms outside the ms decade", s.P99Ms)
	}
	if s.MeanMs <= 0 || s.SumMs <= 0 {
		t.Fatalf("mean/sum not positive: %+v", s)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 0},                       // 1ns -> 2^0
		{2, 1},                       // exact power
		{3, 2},                       // rounds up
		{1024, 10},                   // exact
		{1025, 11},                   // rounds up
		{time.Hour, histBuckets - 1}, // clamps
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestNilSafety exercises every nil-receiver path the instrumented code
// relies on when telemetry is disabled.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("x").Add(1)
	reg.Gauge("x").Set(1)
	reg.Histogram("x").Observe(time.Second)
	if v := reg.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter read %d", v)
	}
	if s := reg.Snapshot(); s.Counters != nil || s.Histograms != nil {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}

	var tr *Trace
	sp := tr.Start(StageDetect)
	sp.Add("n", 1)
	sp.End()
	tr.Add("n", 1)
	if tr.Finish() != nil || tr.Spans() != nil {
		t.Fatal("nil trace produced output")
	}

	var tl *TraceLog
	if err := tl.Write(&StageTrace{}); err != nil {
		t.Fatalf("nil tracelog write: %v", err)
	}
	if NewTraceLog(nil) != nil {
		t.Fatal("NewTraceLog(nil) must return nil")
	}
}
