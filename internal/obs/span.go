package obs

import (
	"sort"
	"sync"
	"time"
)

// Pipeline stage names. Every span opened by the debug loop uses one of
// these, so per-stage histograms ("stage.<name>") and StageTrace rows
// line up across campaigns, the /metrics endpoint and BENCH_stages.json.
const (
	StageQueue           = "queue"
	StageRecover         = "recover"
	StageResume          = "resume"
	StageSynth           = "synth"
	StageMap             = "map"
	StagePlace           = "place"
	StageRoute           = "route"
	StageSTA             = "sta"
	StageCompile         = "compile"
	StageGoldenTrace     = "goldentrace"
	StageDetect          = "detect"
	StageLocalizeDict    = "localize-dict"
	StageLocalizeCausal  = "localize-causal"
	StageProbeSwitch     = "probe-switch"
	StageLocalizeProbe   = "localize-probe"
	StageRepairEnumerate = "repair-enumerate"
	StageRepairValidate  = "repair-validate"
	StageEcoVerify       = "eco-verify"
	StageFaultScan       = "faultscan"
)

// StageOrder is the canonical pipeline order used when flattening a
// trace; stages a campaign never entered are simply absent.
var StageOrder = []string{
	StageQueue, StageRecover, StageResume,
	StageSynth, StageMap, StagePlace, StageRoute, StageSTA,
	StageCompile, StageGoldenTrace, StageDetect, StageLocalizeDict,
	StageLocalizeCausal, StageProbeSwitch,
	StageLocalizeProbe, StageRepairEnumerate, StageRepairValidate,
	StageEcoVerify, StageFaultScan,
}

var stageRank = func() map[string]int {
	m := make(map[string]int, len(StageOrder))
	for i, s := range StageOrder {
		m[s] = i
	}
	return m
}()

// SpanRecord is one closed span as stored by its Trace: stage, absolute
// start, duration, nesting depth at open time and any child counters.
type SpanRecord struct {
	Stage    string
	Start    time.Time
	Dur      time.Duration
	Depth    int
	Counters map[string]int64
}

// Trace collects the spans of one campaign. All methods are safe from
// the single campaign goroutine plus any number of snapshot readers; a
// nil *Trace is a valid no-op collector.
type Trace struct {
	campaign string
	design   string
	kind     string
	reg      *Registry

	mu       sync.Mutex
	start    time.Time
	open     int
	spans    []SpanRecord
	counters map[string]int64
}

// NewTrace starts a trace for one campaign. reg may be nil (spans then
// feed only the trace, not service-lifetime histograms).
func NewTrace(campaign, design, kind string, reg *Registry) *Trace {
	return &Trace{
		campaign: campaign, design: design, kind: kind, reg: reg,
		start:    time.Now(),
		counters: make(map[string]int64),
	}
}

// Span is one in-flight stage measurement. Obtain with Trace.Start, close
// with End; Add attaches child counters (routed nets, probe rounds,
// cache hits…). A Span is used from one goroutine.
type Span struct {
	t        *Trace
	stage    string
	start    time.Time
	depth    int
	counters map[string]int64
	done     bool
}

// Start opens a span for a stage. Nil traces return nil spans; both are
// no-ops, so call sites never branch on telemetry being enabled.
func (t *Trace) Start(stage string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	depth := t.open
	t.open++
	t.mu.Unlock()
	return &Span{t: t, stage: stage, start: time.Now(), depth: depth}
}

// Add accumulates a named child counter on the span; it is folded into
// the trace's counter map at End.
func (s *Span) Add(name string, n int64) {
	if s == nil {
		return
	}
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[name] += n
}

// End closes the span, recording it on the trace and observing its
// duration in the registry's "stage.<name>" histogram. Double End is a
// no-op.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	d := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	t.open--
	t.spans = append(t.spans, SpanRecord{
		Stage: s.stage, Start: s.start, Dur: d, Depth: s.depth, Counters: s.counters,
	})
	for k, v := range s.counters {
		t.counters[k] += v
	}
	t.mu.Unlock()
	t.reg.Histogram("stage." + s.stage).Observe(d)
}

// Add accumulates a trace-level counter outside any span (e.g. artifact
// cache hits observed by the service).
func (t *Trace) Add(name string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += n
	t.mu.Unlock()
}

// Spans returns a copy of the closed span records (tests, debugging).
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// StageSpan is one pipeline stage's flattened timing within a campaign.
type StageSpan struct {
	Stage string `json:"stage"`
	// StartUs is the first entry into the stage, as an offset from the
	// trace start in microseconds.
	StartUs int64 `json:"start_us"`
	// DurUs sums the stage's span durations (inclusive of nested child
	// stages); ExclUs subtracts directly nested child spans, so exclusive
	// times across stages partition the instrumented wall time.
	DurUs  int64 `json:"dur_us"`
	ExclUs int64 `json:"excl_us"`
	// Count is the number of spans the stage accumulated.
	Count int `json:"count"`
}

// StageTrace is the flat, CSV-friendly per-campaign timing record: one
// row per pipeline stage actually entered, in canonical StageOrder, plus
// the campaign's child counters. It is stored in service.Result, served
// at GET /campaigns/{id}/trace and exported as NDJSON.
type StageTrace struct {
	Campaign string           `json:"campaign"`
	Design   string           `json:"design,omitempty"`
	Kind     string           `json:"kind,omitempty"`
	Start    time.Time        `json:"start"`
	WallUs   int64            `json:"wall_us"`
	Stages   []StageSpan      `json:"stages"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Stage returns the row for a stage name, or nil when the campaign never
// entered it.
func (st *StageTrace) Stage(name string) *StageSpan {
	if st == nil {
		return nil
	}
	for i := range st.Stages {
		if st.Stages[i].Stage == name {
			return &st.Stages[i]
		}
	}
	return nil
}

// Finish flattens the trace into its StageTrace. Open spans are ignored;
// the campaign goroutine calls Finish exactly once, after the pipeline
// returns.
func (t *Trace) Finish() *StageTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := &StageTrace{
		Campaign: t.campaign, Design: t.design, Kind: t.kind,
		Start:  t.start,
		WallUs: time.Since(t.start).Microseconds(),
	}
	if len(t.counters) > 0 {
		st.Counters = make(map[string]int64, len(t.counters))
		for k, v := range t.counters {
			st.Counters[k] = v
		}
	}
	// Exclusive time: subtract each span's duration from its innermost
	// enclosing span. The campaign runs its pipeline on one goroutine, so
	// spans are properly nested and "enclosing" is well-defined: the
	// latest-started open interval containing this span at a smaller
	// depth.
	excl := make([]time.Duration, len(t.spans))
	for i := range t.spans {
		excl[i] = t.spans[i].Dur
	}
	for i := range t.spans {
		child := &t.spans[i]
		best := -1
		for j := range t.spans {
			if i == j {
				continue
			}
			p := &t.spans[j]
			if p.Depth != child.Depth-1 {
				continue
			}
			if !child.Start.Before(p.Start) && !child.Start.Add(child.Dur).After(p.Start.Add(p.Dur)) {
				if best < 0 || t.spans[j].Start.After(t.spans[best].Start) {
					best = j
				}
			}
		}
		if best >= 0 {
			excl[best] -= child.Dur
		}
	}
	agg := make(map[string]*StageSpan)
	for i := range t.spans {
		rec := &t.spans[i]
		row := agg[rec.Stage]
		if row == nil {
			row = &StageSpan{Stage: rec.Stage, StartUs: rec.Start.Sub(t.start).Microseconds()}
			agg[rec.Stage] = row
		} else if off := rec.Start.Sub(t.start).Microseconds(); off < row.StartUs {
			row.StartUs = off
		}
		row.DurUs += rec.Dur.Microseconds()
		row.ExclUs += excl[i].Microseconds()
		row.Count++
	}
	for _, row := range agg {
		st.Stages = append(st.Stages, *row)
	}
	sort.Slice(st.Stages, func(i, j int) bool {
		ri, iok := stageRank[st.Stages[i].Stage]
		rj, jok := stageRank[st.Stages[j].Stage]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return st.Stages[i].Stage < st.Stages[j].Stage
		}
	})
	return st
}
