// Package obs is the dependency-free observability layer of the debug
// loop: a concurrency-safe metrics registry (monotonic counters, gauges
// and fixed-bucket power-of-2-nanosecond latency histograms with
// p50/p90/p99 snapshots) plus lightweight spans that assemble into a
// per-campaign StageTrace — one timestamp+duration pair per pipeline
// stage (queue, synth, map, place, route, sta, compile, goldentrace,
// detect, localize-dict, localize-probe, repair-enumerate,
// repair-validate, eco-verify, faultscan).
//
// Every type is nil-receiver safe: a nil *Trace hands out nil *Spans
// whose Start/Add/End are no-ops, so instrumented code threads a single
// pointer and telemetry can be disabled (service.Config.NoTelemetry)
// without a second code path. Span End() feeds both the owning Trace
// (per-campaign aggregation) and the shared Registry (service-lifetime
// "stage.<name>" histograms served at /metrics).
//
// See DESIGN.md §13 for the architecture and the span data-flow diagram.
package obs
