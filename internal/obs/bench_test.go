package obs

import (
	"testing"
	"time"
)

// BenchmarkSpanOverhead measures the cost of one instrumented stage:
// Start + one counter Add + End, feeding both the trace and a registry
// histogram. This is the per-span price every pipeline stage pays when
// telemetry is on; CI's bench smoke runs it so regressions surface.
func BenchmarkSpanOverhead(b *testing.B) {
	reg := NewRegistry()
	tr := NewTrace("bench", "9sym", "debug", reg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(StageDetect)
		sp.Add("n", 1)
		sp.End()
	}
}

// BenchmarkSpanOverheadDisabled is the nil-trace control: the price of
// the same call sites with telemetry off (service.Config.NoTelemetry).
func BenchmarkSpanOverheadDisabled(b *testing.B) {
	var tr *Trace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(StageDetect)
		sp.Add("n", 1)
		sp.End()
	}
}

// BenchmarkHistogramObserve measures the registry's hot path alone.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("stage.route")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}
