package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic counter. The zero value is ready; a nil
// *Counter ignores Add and reads zero, so disabled-telemetry paths cost
// one pointer test.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value instrument (queue depth, busy workers). Nil
// receivers are no-ops like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations in
// (2^(i-1), 2^i] nanoseconds, so the range spans 1ns to ~9 minutes
// (2^39 ns) with the last bucket catching everything longer.
const histBuckets = 40

// Histogram is a fixed-bucket latency histogram over power-of-2
// nanosecond boundaries. Observations and snapshots are lock-free; a
// snapshot taken during concurrent Observe calls is a consistent-enough
// view (each bucket is atomically read) for monitoring.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1 // floor(log2(ns))
	if ns > 1<<uint(b) {            // not an exact power of two: round up
		b++
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	h.buckets[bucketOf(d)].Add(1)
}

// HistSnapshot is a point-in-time histogram summary. Quantiles are the
// upper bound of the bucket containing the quantile rank, i.e. exact to
// within one power of two.
type HistSnapshot struct {
	Count  int64   `json:"count"`
	SumMs  float64 `json:"sum_ms"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{Count: total}
	if total == 0 {
		return s
	}
	s.SumMs = float64(h.sumNs.Load()) / 1e6
	s.MeanMs = s.SumMs / float64(total)
	q := func(frac float64) float64 {
		rank := int64(frac * float64(total-1))
		cum := int64(0)
		for i := range counts {
			cum += counts[i]
			if cum > rank {
				return float64(int64(1)<<uint(i)) / 1e6 // bucket upper bound, ms
			}
		}
		return float64(int64(1)<<uint(histBuckets-1)) / 1e6
	}
	s.P50Ms, s.P90Ms, s.P99Ms = q(0.50), q(0.90), q(0.99)
	return s
}

// Registry is a concurrency-safe name-addressed collection of counters,
// gauges and histograms. Get-or-create accessors hand out stable
// pointers, so hot paths resolve a name once and then touch atomics
// only. A nil *Registry hands out nil instruments (all no-ops).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is a point-in-time view of every instrument, sorted
// maps ready for JSON.
type RegistrySnapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() RegistrySnapshot {
	var s RegistrySnapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.hists))
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
