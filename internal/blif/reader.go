package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// Parse reads a single-model BLIF file into a netlist.
func Parse(r io.Reader) (*netlist.Netlist, error) {
	p := &parser{
		nets: make(map[string]netlist.NetID),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pending strings.Builder
	lineNo := 0
	flush := func() error {
		line := pending.String()
		pending.Reset()
		return p.handleLine(line)
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		cont := strings.HasSuffix(line, "\\")
		if cont {
			line = strings.TrimSuffix(line, "\\")
		}
		pending.WriteString(line)
		if cont {
			pending.WriteByte(' ')
			continue
		}
		if err := flush(); err != nil {
			return nil, fmt.Errorf("blif: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	if pending.Len() > 0 {
		if err := flush(); err != nil {
			return nil, fmt.Errorf("blif: line %d: %w", lineNo, err)
		}
	}
	if err := p.finishNames(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	if p.nl == nil {
		return nil, fmt.Errorf("blif: no .model found")
	}
	if err := p.nl.Check(); err != nil {
		return nil, fmt.Errorf("blif: parsed netlist invalid: %w", err)
	}
	return p.nl, nil
}

// ParseString parses BLIF text.
func ParseString(s string) (*netlist.Netlist, error) {
	return Parse(strings.NewReader(s))
}

type parser struct {
	nl   *netlist.Netlist
	nets map[string]netlist.NetID
	// current .names being accumulated
	namesSignals []string
	namesRows    []string
	inNames      bool
	ended        bool
}

func (p *parser) net(name string) netlist.NetID {
	if id, ok := p.nets[name]; ok {
		return id
	}
	id := p.nl.AddNet(name)
	if got := p.nl.Nets[id].Name; got != name {
		// AddNet disambiguated, which would corrupt lookups; this cannot
		// happen because p.nets mirrors every name we have created.
		panic(fmt.Sprintf("blif: net name collision on %q", name))
	}
	p.nets[name] = id
	return id
}

func (p *parser) handleLine(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	if p.ended {
		return nil // ignore trailing content after .end (multi-model unsupported but tolerated)
	}
	cmd := fields[0]
	if strings.HasPrefix(cmd, ".") {
		if p.inNames && cmd != ".names" {
			if err := p.finishNames(); err != nil {
				return err
			}
		}
		switch cmd {
		case ".model":
			if p.nl != nil {
				return fmt.Errorf("multiple .model declarations (only single-model files are supported)")
			}
			name := "top"
			if len(fields) > 1 {
				name = fields[1]
			}
			p.nl = netlist.New(name)
			return nil
		case ".inputs":
			if p.nl == nil {
				return fmt.Errorf(".inputs before .model")
			}
			for _, f := range fields[1:] {
				if _, dup := p.nets[f]; dup {
					return fmt.Errorf("duplicate signal %q in .inputs", f)
				}
				id := p.nl.AddPI(f)
				p.nets[f] = id
			}
			return nil
		case ".outputs":
			if p.nl == nil {
				return fmt.Errorf(".outputs before .model")
			}
			for _, f := range fields[1:] {
				p.nl.MarkPO(p.net(f))
			}
			return nil
		case ".names":
			if p.nl == nil {
				return fmt.Errorf(".names before .model")
			}
			if err := p.finishNames(); err != nil {
				return err
			}
			if len(fields) < 2 {
				return fmt.Errorf(".names needs at least an output signal")
			}
			p.inNames = true
			p.namesSignals = append([]string(nil), fields[1:]...)
			p.namesRows = nil
			return nil
		case ".latch":
			if p.nl == nil {
				return fmt.Errorf(".latch before .model")
			}
			return p.handleLatch(fields[1:])
		case ".end":
			if err := p.finishNames(); err != nil {
				return err
			}
			p.ended = true
			return nil
		case ".exdc":
			return fmt.Errorf(".exdc (external don't-cares) is not supported")
		default:
			// Unknown dot-commands (.clock, .default_input_arrival, ...) are
			// ignored, matching common BLIF reader behaviour.
			return nil
		}
	}
	if p.inNames {
		p.namesRows = append(p.namesRows, fields...)
		return nil
	}
	return fmt.Errorf("unexpected token %q outside .names", fields[0])
}

// handleLatch parses ".latch input output [type ctrl] [init]".
func (p *parser) handleLatch(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf(".latch needs input and output")
	}
	in := p.net(args[0])
	out := p.net(args[1])
	initVal := uint8(0)
	rest := args[2:]
	// Optional "type control" pair (e.g. "re clk").
	if len(rest) >= 2 && !isInitToken(rest[0]) {
		rest = rest[2:]
	}
	if len(rest) > 1 {
		return fmt.Errorf(".latch has trailing tokens %v", rest)
	}
	if len(rest) == 1 {
		switch rest[0] {
		case "0":
			initVal = 0
		case "1":
			initVal = 1
		case "2", "3":
			// don't-care / unknown initial value; pick 0 deterministically
			initVal = 0
		default:
			return fmt.Errorf(".latch has invalid init %q", rest[0])
		}
	}
	_, err := p.nl.AddDFF(fmt.Sprintf("latch_%s", args[1]), in, out, initVal)
	return err
}

func isInitToken(s string) bool {
	return s == "0" || s == "1" || s == "2" || s == "3"
}

// finishNames materializes an accumulated .names block as a LUT.
func (p *parser) finishNames() error {
	if !p.inNames {
		return nil
	}
	p.inNames = false
	sigs := p.namesSignals
	rows := p.namesRows
	p.namesSignals, p.namesRows = nil, nil

	outName := sigs[len(sigs)-1]
	inNames := sigs[:len(sigs)-1]
	nIn := len(inNames)
	if nIn > logic.MaxVars {
		return fmt.Errorf(".names %s has %d inputs (max %d)", outName, nIn, logic.MaxVars)
	}

	onRows := make([]string, 0, len(rows)/2)
	offRows := make([]string, 0)
	// rows come in (inputPlane, outputBit) pairs, except for zero-input
	// constants where each row is just the output bit.
	if nIn == 0 {
		val := false
		for _, rrow := range rows {
			switch rrow {
			case "1":
				val = true
			case "0":
				val = false
			default:
				return fmt.Errorf(".names %s: invalid constant row %q", outName, rrow)
			}
		}
		_, err := p.nl.AddConst("const_"+outName, val, p.net(outName))
		return err
	}
	if len(rows)%2 != 0 {
		return fmt.Errorf(".names %s: odd token count in cover", outName)
	}
	for i := 0; i < len(rows); i += 2 {
		plane, bit := rows[i], rows[i+1]
		if len(plane) != nIn {
			return fmt.Errorf(".names %s: row %q width %d != %d inputs", outName, plane, len(plane), nIn)
		}
		switch bit {
		case "1":
			onRows = append(onRows, plane)
		case "0":
			offRows = append(offRows, plane)
		default:
			return fmt.Errorf(".names %s: invalid output bit %q", outName, bit)
		}
	}
	if len(onRows) > 0 && len(offRows) > 0 {
		return fmt.Errorf(".names %s mixes output phases", outName)
	}

	var cover logic.Cover
	switch {
	case len(onRows) > 0:
		c, err := logic.FromStrings(onRows...)
		if err != nil {
			return fmt.Errorf(".names %s: %w", outName, err)
		}
		cover = c
	case len(offRows) > 0:
		// Off-set specification: the function is the complement of the
		// listed cover. Complementation goes through a truth table, so the
		// node must fit in TTMaxVars inputs.
		c, err := logic.FromStrings(offRows...)
		if err != nil {
			return fmt.Errorf(".names %s: %w", outName, err)
		}
		nc, err := c.Not()
		if err != nil {
			return fmt.Errorf(".names %s (off-set phase): %w", outName, err)
		}
		cover = nc
	default:
		// Empty cover: constant 0.
		cover = logic.Const(nIn, false)
	}

	fanin := make([]netlist.NetID, nIn)
	for i, name := range inNames {
		fanin[i] = p.net(name)
	}
	_, err := p.nl.AddLUT("n_"+outName, cover, fanin, p.net(outName))
	return err
}
