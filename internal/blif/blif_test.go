package blif

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

const adderBLIF = `
# 1-bit full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

func TestParseFullAdder(t *testing.T) {
	nl, err := ParseString(adderBLIF)
	if err != nil {
		t.Fatal(err)
	}
	s := nl.Stats()
	if s.LUTs != 2 || s.PIs != 3 || s.POs != 2 {
		t.Fatalf("stats %v", s)
	}
	if err := nl.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	m, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Step(map[string]uint64{"a": 1, "b": 1, "cin": 1})
	if err != nil {
		t.Fatal(err)
	}
	if out["sum"]&1 != 1 || out["cout"]&1 != 1 {
		t.Fatalf("1+1+1 gave sum=%d cout=%d", out["sum"]&1, out["cout"]&1)
	}
}

func TestParseLatchForms(t *testing.T) {
	src := `
.model seq
.inputs d
.outputs q0 q1 q2 q3
.latch d q0
.latch d q1 1
.latch d q2 re clk 0
.latch d q3 re clk
.end
`
	nl, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	s := nl.Stats()
	if s.DFFs != 4 {
		t.Fatalf("DFFs = %d", s.DFFs)
	}
	id, ok := nl.CellByName("latch_q1")
	if !ok || nl.Cells[id].Init != 1 {
		t.Fatal("latch init 1 not parsed")
	}
}

func TestParseConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs one zero viaa
.names one
1
.names zero
.names a viaa
1 1
.end
`
	nl, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Step(map[string]uint64{"a": ^uint64(0)})
	if err != nil {
		t.Fatal(err)
	}
	if out["one"] != ^uint64(0) || out["zero"] != 0 || out["viaa"] != ^uint64(0) {
		t.Fatalf("constants wrong: %v", out)
	}
}

func TestParseOffsetPhase(t *testing.T) {
	// f defined by its off-set: f=0 exactly when a=1,b=1 → f = NAND.
	src := `
.model offs
.inputs a b
.outputs f
.names a b f
11 0
.end
`
	nl, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := sim.Compile(nl)
	var aw, bw uint64
	for p := uint64(0); p < 4; p++ {
		if p&1 != 0 {
			aw |= 1 << p
		}
		if p&2 != 0 {
			bw |= 1 << p
		}
	}
	out, _ := m.Step(map[string]uint64{"a": aw, "b": bw})
	for p := uint64(0); p < 4; p++ {
		want := !(p&1 != 0 && p&2 != 0)
		if (out["f"]&(1<<p) != 0) != want {
			t.Fatalf("NAND wrong at %b", p)
		}
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	src := ".model c\n.inputs a \\\nb\n.outputs f # trailing comment\n.names a b f\n11 1\n.end\n"
	nl, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.PIs) != 2 {
		t.Fatalf("PIs = %d", len(nl.PIs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no model":        ".inputs a\n",
		"two models":      ".model a\n.model b\n",
		"phase mix":       ".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n",
		"bad row width":   ".model m\n.inputs a b\n.outputs f\n.names a b f\n111 1\n.end\n",
		"bad output bit":  ".model m\n.inputs a\n.outputs f\n.names a f\n1 x\n.end\n",
		"stray token":     ".model m\n.inputs a\n.outputs a\nfoo bar\n.end\n",
		"double drive":    ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n",
		"exdc":            ".model m\n.inputs a\n.outputs a\n.exdc\n.end\n",
		"bad latch init":  ".model m\n.inputs d\n.outputs q\n.latch d q x\n.end\n",
		"short latch":     ".model m\n.inputs d\n.outputs q\n.latch d\n.end\n",
		"names no signal": ".model m\n.inputs a\n.outputs a\n.names\n.end\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestUnknownDirectivesIgnored(t *testing.T) {
	src := ".model m\n.clock clk\n.inputs a\n.outputs f\n.default_input_arrival 0 0\n.names a f\n1 1\n.end\n"
	if _, err := ParseString(src); err != nil {
		t.Fatal(err)
	}
}

// buildRandom constructs a random netlist, writes it to BLIF, parses it
// back, and checks simulation equivalence.
func roundtrip(t *testing.T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	nl := netlist.New("rt")
	var nets []netlist.NetID
	for i := 0; i < 4+r.Intn(4); i++ {
		nets = append(nets, nl.AddPI(""))
	}
	for i := 0; i < 10+r.Intn(40); i++ {
		k := 1 + r.Intn(4)
		fanin := make([]netlist.NetID, k)
		for j := range fanin {
			fanin[j] = nets[r.Intn(len(nets))]
		}
		out := nl.AddNet("")
		if r.Intn(5) == 0 {
			nl.MustAddDFF("", fanin[0], out, uint8(r.Intn(2)))
		} else {
			cov := logic.Cover{N: k}
			for c := 0; c < 1+r.Intn(3); c++ {
				var cu logic.Cube
				for v := 0; v < k; v++ {
					switch r.Intn(3) {
					case 0:
						cu = cu.WithLit(v, false)
					case 1:
						cu = cu.WithLit(v, true)
					}
				}
				cov.Cubes = append(cov.Cubes, cu)
			}
			nl.MustAddLUT("", cov, fanin, out)
		}
		nets = append(nets, out)
	}
	for i := 0; i < 3; i++ {
		nl.MarkPO(nets[len(nets)-1-i])
	}
	if err := nl.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	text, err := ToString(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("parse-back: %v\n%s", err, text)
	}
	if err := back.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	mm, err := sim.Equivalent(nl, back, 8, 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("roundtrip not equivalent: %v\n%s", mm, text)
	}
}

func TestRoundtripEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		roundtrip(t, seed)
	}
}

// Property: writer output always re-parses with identical statistics.
func TestQuickRoundtripStats(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl := netlist.New("q")
		var nets []netlist.NetID
		for i := 0; i < 3; i++ {
			nets = append(nets, nl.AddPI(""))
		}
		for i := 0; i < 5+r.Intn(15); i++ {
			k := 1 + r.Intn(3)
			fanin := make([]netlist.NetID, k)
			for j := range fanin {
				fanin[j] = nets[r.Intn(len(nets))]
			}
			out := nl.AddNet("")
			nl.MustAddLUT("", logic.OrN(k), fanin, out)
			nets = append(nets, out)
		}
		nl.MarkPO(nets[len(nets)-1])
		text, err := ToString(nl)
		if err != nil {
			return false
		}
		back, err := ParseString(text)
		if err != nil {
			return false
		}
		a, b := nl.Stats(), back.Stats()
		return a.LUTs == b.LUTs && a.DFFs == b.DFFs && a.PIs == b.PIs && a.POs == b.POs
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSanitize(t *testing.T) {
	nl := netlist.New("s")
	weird := nl.AddPI("a b#c")
	out := nl.AddNet("ok")
	nl.MustAddLUT("", logic.BufN(), []netlist.NetID{weird}, out)
	nl.MarkPO(out)
	text, err := ToString(nl)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "a b#c") {
		t.Fatal("unsanitized name leaked into BLIF")
	}
	if _, err := ParseString(text); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParseString(adderBLIF); err != nil {
			b.Fatal(err)
		}
	}
}
