package blif

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"fpgadbg/internal/netlist"
)

// Write emits a netlist as single-model BLIF. Only live cells and nets are
// written; LUT covers are emitted in on-set phase.
func Write(w io.Writer, nl *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	name := nl.Name
	if name == "" {
		name = "top"
	}
	fmt.Fprintf(bw, ".model %s\n", sanitize(name))

	fmt.Fprintf(bw, ".inputs")
	for _, pi := range nl.PIs {
		fmt.Fprintf(bw, " %s", sanitize(nl.Nets[pi].Name))
	}
	fmt.Fprintln(bw)

	fmt.Fprintf(bw, ".outputs")
	for _, po := range nl.POs {
		fmt.Fprintf(bw, " %s", sanitize(nl.Nets[po].Name))
	}
	fmt.Fprintln(bw)

	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead {
			continue
		}
		switch c.Kind {
		case netlist.KindDFF:
			fmt.Fprintf(bw, ".latch %s %s re clk %d\n",
				sanitize(nl.Nets[c.Fanin[0]].Name), sanitize(nl.Nets[c.Out].Name), c.Init)
		case netlist.KindLUT:
			fmt.Fprintf(bw, ".names")
			for _, f := range c.Fanin {
				fmt.Fprintf(bw, " %s", sanitize(nl.Nets[f].Name))
			}
			fmt.Fprintf(bw, " %s\n", sanitize(nl.Nets[c.Out].Name))
			if len(c.Fanin) == 0 {
				// Constant: no row for 0, single "1" row for 1.
				if !c.Func.IsConstFalse() {
					fmt.Fprintln(bw, "1")
				}
				continue
			}
			for _, cu := range c.Func.Canon().Cubes {
				fmt.Fprintf(bw, "%s 1\n", cu.String(c.Func.N))
			}
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// ToString renders a netlist as BLIF text.
func ToString(nl *netlist.Netlist) (string, error) {
	var b strings.Builder
	if err := Write(&b, nl); err != nil {
		return "", err
	}
	return b.String(), nil
}

// sanitize replaces whitespace in signal names, which BLIF cannot
// represent.
func sanitize(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n', '\\', '#':
			return '_'
		}
		return r
	}, s)
}
