package blif

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/synth"
)

// FuzzParse hammers the BLIF reader — the repository's primary
// untrusted-input surface (design files arrive from users and tools the
// daemon does not control). Invariants: Parse never panics and never
// returns a netlist that fails its own consistency Check; whatever it
// accepts must survive a Write → Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add("")
	f.Add(".model top\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n")
	f.Add(".model c\n.outputs k\n.names k\n1\n.end\n")
	f.Add(".model off\n.inputs a b\n.outputs y\n.names a b y\n0- 0\n.end\n")
	f.Add(".model cont\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n")
	f.Add(".inputs a before model\n")
	f.Add(".model x\n.names a y\n2 1\n.end\n")
	f.Add("# just a comment\n.model z\n.end\n")
	// A real mapped design, so mutations explore realistic shapes.
	if info, err := bench.ByName("9sym"); err == nil {
		if mapped, err := synth.TechMap(info.Build()); err == nil {
			if text, err := ToString(mapped); err == nil {
				f.Add(text)
			}
		}
	}

	f.Fuzz(func(t *testing.T, text string) {
		nl, err := ParseString(text)
		if err != nil {
			return // rejected cleanly: fine
		}
		if cerr := nl.Check(); cerr != nil {
			t.Fatalf("accepted netlist fails Check: %v\ninput: %q", cerr, text)
		}
		// Whatever the reader accepts, the writer must be able to render.
		out1, err := ToString(nl)
		if err != nil {
			t.Fatalf("write-back failed: %v\ninput: %q", err, text)
		}
		// One write pass sanitizes names and canonicalizes covers, so the
		// first re-parse may legitimately reject (sanitization can alias
		// two hostile signal names onto one). But once a netlist survives
		// write → parse, that pass must be a fixpoint: a second trip may
		// not change the structure. This is the property the netlist
		// spill in internal/service relies on.
		nl2, err := ParseString(out1)
		if err != nil {
			return
		}
		out2, err := ToString(nl2)
		if err != nil {
			t.Fatalf("write of re-parsed netlist failed: %v\nblif: %q", err, out1)
		}
		nl3, err := ParseString(out2)
		if err != nil {
			t.Fatalf("second re-parse failed: %v\nblif: %q", err, out2)
		}
		if nl3.Fingerprint() != nl2.Fingerprint() {
			t.Fatalf("write/parse is not a fixpoint\nfirst:  %q\nsecond: %q", out1, out2)
		}
	})
}
