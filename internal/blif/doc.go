// Package blif reads and writes the Berkeley Logic Interchange Format, the
// distribution format of the MCNC benchmark suite the paper evaluates on.
// The subset implemented covers everything those netlists use:
// .model/.inputs/.outputs/.names (with both output phases)/.latch/.end,
// comments, and line continuations. Parsing is from scratch on purpose —
// the reproduction explicitly avoids external EDA libraries.
package blif
