package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// wideNode builds a single wide-LUT netlist computing cover f.
func wideNode(t testing.TB, f logic.Cover) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("wide")
	fanin := make([]netlist.NetID, f.N)
	for i := range fanin {
		fanin[i] = nl.AddPI("")
	}
	out := nl.AddNet("f")
	nl.MustAddLUT("node", f, fanin, out)
	nl.MarkPO(out)
	return nl
}

func maxFanin(nl *netlist.Netlist) int {
	max := 0
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) > max {
			max = len(c.Fanin)
		}
	}
	return max
}

func TestDecomposeWideAnd(t *testing.T) {
	nl := wideNode(t, logic.AndN(9))
	dec, err := Decompose(nl)
	if err != nil {
		t.Fatal(err)
	}
	if mf := maxFanin(dec); mf > 2 {
		t.Fatalf("max fanin after decompose = %d", mf)
	}
	if mm, err := sim.ExhaustiveEquivalent(nl, dec); err != nil || mm != nil {
		t.Fatalf("not equivalent: %v %v", err, mm)
	}
}

func TestDecompose9sym(t *testing.T) {
	f := logic.Symmetric(9, func(k int) bool { return k >= 3 && k <= 6 })
	nl := wideNode(t, f)
	dec, err := Decompose(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Shannon decomposition emits 3-input muxes; nothing wider survives.
	if mf := maxFanin(dec); mf > 3 {
		t.Fatalf("max fanin = %d", mf)
	}
	if mm, err := sim.ExhaustiveEquivalent(nl, dec); err != nil || mm != nil {
		t.Fatalf("not equivalent: %v %v", err, mm)
	}
}

func TestDecomposeConstsAndNegLits(t *testing.T) {
	cases := []logic.Cover{
		logic.Const(3, true),
		logic.Const(3, false),
		logic.NorN(5),
		logic.NandN(6),
		logic.MustFromStrings("10-1", "0-10", "--00"),
	}
	for i, f := range cases {
		nl := wideNode(t, f)
		dec, err := Decompose(nl)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if mm, err := sim.ExhaustiveEquivalent(nl, dec); err != nil || mm != nil {
			t.Fatalf("case %d not equivalent: %v %v", i, err, mm)
		}
	}
}

func TestDecomposePreservesDFFs(t *testing.T) {
	nl := netlist.New("seq")
	a := nl.AddPI("a")
	q := nl.AddNet("q")
	d := nl.AddNet("d")
	nl.MustAddLUT("wide", logic.OrN(2), []netlist.NetID{a, q}, d)
	nl.MustAddDFF("ff", d, q, 1)
	nl.MarkPO(q)
	dec, err := Decompose(nl)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Stats().DFFs != 1 {
		t.Fatalf("DFF lost: %v", dec.Stats())
	}
	if mm, err := sim.Equivalent(nl, dec, 8, 6, 3); err != nil || mm != nil {
		t.Fatalf("not equivalent: %v %v", err, mm)
	}
}

func TestMapRejectsWideInput(t *testing.T) {
	nl := wideNode(t, logic.AndN(5))
	if _, err := MapLUT4(nl, 4); err == nil {
		t.Fatal("undecomposed input accepted")
	}
	if _, err := MapLUT4(nl, 1); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestTechMapEquivalenceCombinational(t *testing.T) {
	funcs := []logic.Cover{
		logic.AndN(9),
		logic.XorN(6),
		logic.Symmetric(9, func(k int) bool { return k >= 3 && k <= 6 }),
		logic.MustFromStrings("1-0-1", "01--0", "--111", "000--"),
	}
	for i, f := range funcs {
		nl := wideNode(t, f)
		mapped, err := TechMap(nl)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if mf := maxFanin(mapped); mf > 4 {
			t.Fatalf("case %d: max fanin %d after mapping", i, mf)
		}
		if mm, err := sim.ExhaustiveEquivalent(nl, mapped); err != nil || mm != nil {
			t.Fatalf("case %d not equivalent: %v %v", i, err, mm)
		}
	}
}

func TestTechMapReducesDepthVsDecompose(t *testing.T) {
	nl := wideNode(t, logic.AndN(16))
	dec, err := Decompose(nl)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := TechMap(nl)
	if err != nil {
		t.Fatal(err)
	}
	_, dDec, _ := dec.Levels()
	_, dMap, _ := mapped.Levels()
	if dMap >= dDec {
		t.Fatalf("mapping did not reduce depth: %d -> %d", dDec, dMap)
	}
	// A 16-input AND needs exactly ceil(log4(16)) = 2 LUT levels.
	if dMap != 2 {
		t.Fatalf("16-AND depth = %d, want 2", dMap)
	}
	if got := mapped.Stats().LUTs; got != 5 {
		t.Fatalf("16-AND mapped to %d LUTs, want 5", got)
	}
}

// randWideNetlist makes a random multi-node netlist with wide LUTs and DFFs.
func randWideNetlist(r *rand.Rand) *netlist.Netlist {
	nl := netlist.New("rw")
	var nets []netlist.NetID
	for i := 0; i < 5; i++ {
		nets = append(nets, nl.AddPI(""))
	}
	for i := 0; i < 8+r.Intn(15); i++ {
		k := 1 + r.Intn(7)
		if k > len(nets) {
			k = len(nets)
		}
		fanin := make([]netlist.NetID, k)
		for j := range fanin {
			fanin[j] = nets[r.Intn(len(nets))]
		}
		out := nl.AddNet("")
		if r.Intn(6) == 0 {
			nl.MustAddDFF("", fanin[0], out, uint8(r.Intn(2)))
		} else {
			cov := logic.Cover{N: k}
			nc := 1 + r.Intn(4)
			for c := 0; c < nc; c++ {
				var cu logic.Cube
				for v := 0; v < k; v++ {
					switch r.Intn(3) {
					case 0:
						cu = cu.WithLit(v, false)
					case 1:
						cu = cu.WithLit(v, true)
					}
				}
				cov.Cubes = append(cov.Cubes, cu)
			}
			nl.MustAddLUT("", cov, fanin, out)
		}
		nets = append(nets, out)
	}
	for i := 0; i < 3 && i < len(nets); i++ {
		nl.MarkPO(nets[len(nets)-1-i])
	}
	return nl
}

// Property: TechMap preserves sequential behaviour and respects the fanin
// bound.
func TestQuickTechMapEquivalence(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(51))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl := randWideNetlist(r)
		mapped, err := TechMap(nl)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if maxFanin(mapped) > 4 {
			return false
		}
		mm, err := sim.Equivalent(nl, mapped, 6, 5, seed)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if mm != nil {
			t.Logf("seed %d mismatch: %v", seed, mm)
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMapXorChainArea(t *testing.T) {
	// 8-input XOR as a chain of XOR2s should map into few LUT4s.
	nl := netlist.New("xc")
	acc := nl.AddPI("")
	for i := 0; i < 7; i++ {
		b := nl.AddPI("")
		out := nl.AddNet("")
		nl.MustAddLUT("", logic.XorN(2), []netlist.NetID{acc, b}, out)
		acc = out
	}
	nl.MarkPO(acc)
	mapped, err := MapLUT4(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	mapped.SweepDead()
	if got := mapped.Stats().LUTs; got > 4 {
		t.Fatalf("8-XOR mapped to %d LUTs, want <= 4", got)
	}
	if mm, err := sim.ExhaustiveEquivalent(nl, mapped); err != nil || mm != nil {
		t.Fatalf("not equivalent: %v %v", err, mm)
	}
}

func BenchmarkTechMap9sym(b *testing.B) {
	f := logic.Symmetric(9, func(k int) bool { return k >= 3 && k <= 6 })
	nl := netlist.New("b")
	fanin := make([]netlist.NetID, 9)
	for i := range fanin {
		fanin[i] = nl.AddPI("")
	}
	out := nl.AddNet("f")
	nl.MustAddLUT("node", f, fanin, out)
	nl.MarkPO(out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TechMap(nl); err != nil {
			b.Fatal(err)
		}
	}
}
