// Package synth is the front-end of the flow: it turns netlists with
// arbitrary-width LUT nodes (as produced by the benchmark generators or the
// BLIF reader) into XC4000-style 4-input LUT networks. The pipeline is the
// classic two-step one: Decompose rewrites every node into a tree of
// at-most-2-input gates, and MapLUT4 covers that network with K-input LUTs
// using priority-cut enumeration (depth-oriented with area tie-breaking).
// TechMap composes both and sweeps dead logic.
package synth
