package synth

import (
	"fmt"
	"sort"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// MaxCutsPerNode bounds the priority-cut list kept at each node.
const MaxCutsPerNode = 8

// MapLUT4 covers a network whose LUT nodes have at most two inputs with
// K-input LUTs (K in 2..6, 4 for the XC4000). Cut enumeration keeps
// MaxCutsPerNode priority cuts per node ordered by mapped depth then leaf
// count; covering proceeds backward from the primary outputs and DFF data
// inputs, computing each chosen cone's function by exhaustive cone
// simulation over its at-most-K leaves.
func MapLUT4(nl *netlist.Netlist, K int) (*netlist.Netlist, error) {
	if K < 2 || K > 6 {
		return nil, fmt.Errorf("synth: MapLUT4 K=%d out of range 2..6", K)
	}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) > K {
			return nil, fmt.Errorf("synth: MapLUT4 requires decomposed input; node %q has %d fanins (K=%d)", c.Name, len(c.Fanin), K)
		}
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}

	m := &mapper{nl: nl, K: K,
		cuts:  make([][]cut, len(nl.Nets)),
		depth: make([]int, len(nl.Nets)),
	}
	// Leaves: PIs, DFF outputs, and constant-driven nets.
	for i := range m.depth {
		m.depth[i] = -1
	}
	for _, pi := range nl.PIs {
		m.setLeaf(pi)
	}
	for _, id := range order {
		c := &nl.Cells[id]
		if c.Kind == netlist.KindDFF {
			m.setLeaf(c.Out)
		}
	}
	// Forward cut enumeration over LUT nodes.
	for _, id := range order {
		c := &nl.Cells[id]
		if c.Kind != netlist.KindLUT {
			continue
		}
		if len(c.Fanin) == 0 {
			// Constants are leaves of the mapped network; they are copied
			// verbatim during covering.
			m.setLeaf(c.Out)
			continue
		}
		m.enumerate(c)
	}

	return m.cover(order)
}

// cut is a sorted set of at most K leaf nets.
type cut struct {
	leaves []netlist.NetID
	depth  int
}

type mapper struct {
	nl    *netlist.Netlist
	K     int
	cuts  [][]cut
	depth []int // best mapped depth per net; leaves are 0
}

func (m *mapper) setLeaf(id netlist.NetID) {
	m.cuts[id] = []cut{{leaves: []netlist.NetID{id}, depth: 0}}
	m.depth[id] = 0
}

// enumerate computes the priority cuts for a 1- or 2-input node.
func (m *mapper) enumerate(c *netlist.Cell) {
	out := c.Out
	// A cut's mapped depth is one LUT level above its deepest leaf.
	cutDepth := func(leaves []netlist.NetID) int {
		d := 0
		for _, l := range leaves {
			if m.depth[l] > d {
				d = m.depth[l]
			}
		}
		return d + 1
	}
	// n-ary cut merging: cross-product of the fanins' cut lists, pruning
	// merged cuts wider than K as they form.
	partial := [][]netlist.NetID{nil}
	for pin, f := range c.Fanin {
		var next [][]netlist.NetID
		for _, acc := range partial {
			for _, cf := range m.cuts[f] {
				var merged []netlist.NetID
				if pin == 0 {
					merged = cf.leaves
				} else {
					merged = mergeLeaves(acc, cf.leaves, m.K)
					if merged == nil {
						continue
					}
				}
				next = append(next, merged)
			}
		}
		partial = next
		if len(partial) > 4096 {
			partial = partial[:4096]
		}
	}
	cand := make([]cut, 0, len(partial))
	for _, leaves := range partial {
		cand = append(cand, cut{leaves: leaves, depth: cutDepth(leaves)})
	}
	// Deduplicate, sort by (depth, size), truncate, and record best depth.
	cand = dedupCuts(cand)
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].depth != cand[j].depth {
			return cand[i].depth < cand[j].depth
		}
		if len(cand[i].leaves) != len(cand[j].leaves) {
			return len(cand[i].leaves) < len(cand[j].leaves)
		}
		return lessLeaves(cand[i].leaves, cand[j].leaves)
	})
	if len(cand) > MaxCutsPerNode {
		cand = cand[:MaxCutsPerNode]
	}
	// The trivial cut allows parents to stop at this net; its depth is the
	// node's best mapped depth.
	best := 1
	if len(cand) > 0 {
		best = cand[0].depth
	}
	cand = append(cand, cut{leaves: []netlist.NetID{out}, depth: best})
	m.cuts[out] = cand
	m.depth[out] = best
}

func mergeLeaves(a, b []netlist.NetID, k int) []netlist.NetID {
	out := make([]netlist.NetID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
		if len(out) > k {
			return nil
		}
	}
	return out
}

func lessLeaves(a, b []netlist.NetID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func dedupCuts(cs []cut) []cut {
	seen := make(map[string]bool, len(cs))
	out := cs[:0]
	for _, c := range cs {
		key := fmt.Sprint(c.leaves)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, c)
	}
	return out
}

// cover walks backward from required nets, materializing one mapped LUT
// per chosen cut.
func (m *mapper) cover(order []netlist.CellID) (*netlist.Netlist, error) {
	nl := m.nl
	out := netlist.New(nl.Name)
	netMap := make([]netlist.NetID, len(nl.Nets))
	for i := range netMap {
		netMap[i] = netlist.NilNet
	}
	getNet := func(old netlist.NetID) netlist.NetID {
		if netMap[old] == netlist.NilNet {
			netMap[old] = out.AddNet(nl.Nets[old].Name)
		}
		return netMap[old]
	}
	for _, pi := range nl.PIs {
		out.PIs = append(out.PIs, getNet(pi))
	}

	// Required nets: POs plus DFF D inputs. Constants and DFFs are copied
	// directly.
	required := make([]netlist.NetID, 0, len(nl.POs))
	inQueue := make(map[netlist.NetID]bool)
	push := func(id netlist.NetID) {
		if !inQueue[id] {
			inQueue[id] = true
			required = append(required, id)
		}
	}
	for _, po := range nl.POs {
		push(po)
	}
	for _, id := range order {
		c := &nl.Cells[id]
		if c.Kind != netlist.KindDFF {
			continue
		}
		push(c.Fanin[0])
		if _, err := out.AddDFF(c.Name, getNet(c.Fanin[0]), getNet(c.Out), c.Init); err != nil {
			return nil, fmt.Errorf("synth: %w", err)
		}
	}

	emitted := make(map[netlist.NetID]bool)
	for qi := 0; qi < len(required); qi++ {
		net := required[qi]
		if emitted[net] {
			continue
		}
		emitted[net] = true
		drv := nl.Nets[net].Driver
		if drv == netlist.NilCell {
			continue // PI or floating: nothing to build
		}
		dc := &nl.Cells[drv]
		if dc.Kind == netlist.KindDFF {
			continue // Q net: DFF already copied
		}
		if len(dc.Fanin) == 0 {
			if _, err := out.AddConst(dc.Name, !dc.Func.IsConstFalse(), getNet(net)); err != nil {
				return nil, fmt.Errorf("synth: %w", err)
			}
			continue
		}
		best := m.bestNonTrivialCut(net)
		tt, err := m.coneTT(net, best.leaves)
		if err != nil {
			return nil, err
		}
		cov := tt.ToCover()
		fanin := make([]netlist.NetID, len(best.leaves))
		for i, l := range best.leaves {
			fanin[i] = getNet(l)
			push(l)
		}
		name := fmt.Sprintf("m_%s", nl.Nets[net].Name)
		if _, err := out.AddLUT(name, cov, fanin, getNet(net)); err != nil {
			return nil, fmt.Errorf("synth: %w", err)
		}
	}
	for _, po := range nl.POs {
		out.MarkPO(getNet(po))
	}
	if err := out.CheckDriven(); err != nil {
		return nil, fmt.Errorf("synth: mapping produced invalid netlist: %w", err)
	}
	return out, nil
}

// bestNonTrivialCut returns the first cut whose leaves are not just the net
// itself.
func (m *mapper) bestNonTrivialCut(net netlist.NetID) cut {
	for _, c := range m.cuts[net] {
		if len(c.leaves) == 1 && c.leaves[0] == net {
			continue
		}
		return c
	}
	// A net with only its trivial cut is a leaf; callers never ask for it.
	return m.cuts[net][0]
}

// coneTT computes the truth table of net as a function of the cut leaves by
// exhaustive evaluation of the cone.
func (m *mapper) coneTT(root netlist.NetID, leaves []netlist.NetID) (logic.TT, error) {
	k := len(leaves)
	leafPos := make(map[netlist.NetID]int, k)
	for i, l := range leaves {
		leafPos[l] = i
	}
	tt := logic.NewTT(k)
	memo := make(map[netlist.NetID]bool)
	var eval func(id netlist.NetID, assign uint64) (bool, error)
	eval = func(id netlist.NetID, assign uint64) (bool, error) {
		if p, ok := leafPos[id]; ok {
			return assign&(1<<p) != 0, nil
		}
		if v, ok := memo[id]; ok {
			return v, nil
		}
		drv := m.nl.Nets[id].Driver
		if drv == netlist.NilCell {
			return false, fmt.Errorf("synth: cone of %q reached undriven net %q", m.nl.Nets[root].Name, m.nl.Nets[id].Name)
		}
		c := &m.nl.Cells[drv]
		if c.Kind != netlist.KindLUT {
			return false, fmt.Errorf("synth: cone of %q reached sequential net %q not in leaves", m.nl.Nets[root].Name, m.nl.Nets[id].Name)
		}
		var sub uint64
		for pin, f := range c.Fanin {
			v, err := eval(f, assign)
			if err != nil {
				return false, err
			}
			if v {
				sub |= 1 << pin
			}
		}
		v := c.Func.Eval(sub)
		memo[id] = v
		return v, nil
	}
	for a := uint64(0); a < uint64(1)<<k; a++ {
		memo = make(map[netlist.NetID]bool)
		v, err := eval(root, a)
		if err != nil {
			return logic.TT{}, err
		}
		tt.SetBit(a, v)
	}
	return tt, nil
}

// TechMap is the full front end: decompose to 2-input gates, map to 4-LUTs,
// and sweep logic that no longer feeds an output.
func TechMap(nl *netlist.Netlist) (*netlist.Netlist, error) {
	dec, err := Decompose(nl)
	if err != nil {
		return nil, err
	}
	mapped, err := MapLUT4(dec, 4)
	if err != nil {
		return nil, err
	}
	mapped.SweepDead()
	compact, _, _ := mapped.Compact()
	if err := compact.CheckDriven(); err != nil {
		return nil, fmt.Errorf("synth: %w", err)
	}
	return compact, nil
}
