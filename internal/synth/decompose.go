package synth

import (
	"fmt"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// Decompose returns a functionally equivalent netlist in which every LUT
// has at most two inputs. Wide nodes are rewritten as AND trees per cube
// and an OR tree across cubes, with literal polarities folded into the leaf
// gates. DFFs and primary I/O are preserved by name.
func Decompose(nl *netlist.Netlist) (*netlist.Netlist, error) {
	out := netlist.New(nl.Name)
	netMap := make([]netlist.NetID, len(nl.Nets))
	for i := range netMap {
		netMap[i] = netlist.NilNet
	}
	getNet := func(old netlist.NetID) netlist.NetID {
		if netMap[old] == netlist.NilNet {
			netMap[old] = out.AddNet(nl.Nets[old].Name)
		}
		return netMap[old]
	}
	for _, pi := range nl.PIs {
		id := getNet(pi)
		out.PIs = append(out.PIs, id)
	}
	d := &decomposer{out: out}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead {
			continue
		}
		switch c.Kind {
		case netlist.KindDFF:
			if _, err := out.AddDFF(c.Name, getNet(c.Fanin[0]), getNet(c.Out), c.Init); err != nil {
				return nil, fmt.Errorf("synth: %w", err)
			}
		case netlist.KindLUT:
			fanin := make([]netlist.NetID, len(c.Fanin))
			for i, f := range c.Fanin {
				fanin[i] = getNet(f)
			}
			if err := d.emit(c.Name, c.Func, fanin, getNet(c.Out)); err != nil {
				return nil, fmt.Errorf("synth: node %q: %w", c.Name, err)
			}
		}
	}
	for _, po := range nl.POs {
		out.MarkPO(getNet(po))
	}
	if err := out.CheckDriven(); err != nil {
		return nil, fmt.Errorf("synth: decomposition produced invalid netlist: %w", err)
	}
	return out, nil
}

type decomposer struct {
	out *netlist.Netlist
	seq int
}

func (d *decomposer) fresh(base string) netlist.NetID {
	d.seq++
	return d.out.AddNet(fmt.Sprintf("%s~%d", base, d.seq))
}

// emit synthesizes cover f over fanin nets into the output netlist, driving
// root.
func (d *decomposer) emit(name string, f logic.Cover, fanin []netlist.NetID, root netlist.NetID) error {
	cf, vars := f.Compact()
	support := make([]netlist.NetID, len(vars))
	for j, v := range vars {
		support[j] = fanin[v]
	}
	switch {
	case cf.IsConstFalse():
		_, err := d.out.AddConst(name, false, root)
		return err
	case cf.HasTautologyCube():
		_, err := d.out.AddConst(name, true, root)
		return err
	case cf.N <= 2:
		_, err := d.out.AddLUT(name, cf, support, root)
		return err
	case cf.N > 4 && len(cf.Cubes) > shannonCubeThreshold:
		// Wide, cube-rich covers (symmetric functions, dense FSM logic)
		// explode as AND-OR trees; Shannon-decompose on the most-tested
		// variable instead: f = x·f_x + x'·f_x' as a mux of two smaller
		// nodes.
		v := cf.MostTestedVar()
		if v >= 0 {
			f1 := cf.Cofactor(v, true).Simplify()
			f0 := cf.Cofactor(v, false).Simplify()
			n0 := d.fresh(name + "_c0")
			n1 := d.fresh(name + "_c1")
			if err := d.emit(name+"_c0", f0, support, n0); err != nil {
				return err
			}
			if err := d.emit(name+"_c1", f1, support, n1); err != nil {
				return err
			}
			_, err := d.out.AddLUT(name+"_mux", logic.Mux2(),
				[]netlist.NetID{support[v], n0, n1}, root)
			return err
		}
	}
	// General case: one AND tree per cube, one OR tree across cubes.
	cubeNets := make([]netlist.NetID, 0, len(cf.Cubes))
	for _, cu := range cf.Cubes {
		cn, err := d.emitCube(name, cu, support, netlist.NilNet)
		if err != nil {
			return err
		}
		cubeNets = append(cubeNets, cn)
	}
	return d.emitTree(name, cubeNets, nil, logic.OrN(2).Cubes, root)
}

// shannonCubeThreshold is the cube count above which wide nodes are
// Shannon-decomposed rather than expanded into AND-OR trees.
const shannonCubeThreshold = 6

// lit is a net with a polarity, the working unit of tree construction.
type lit struct {
	net netlist.NetID
	pos bool
}

// emitCube builds the AND of the cube's literals; if into is NilNet a fresh
// net is allocated. Returns the driven net.
func (d *decomposer) emitCube(name string, cu logic.Cube, support []netlist.NetID, into netlist.NetID) (netlist.NetID, error) {
	var lits []lit
	for v := 0; v < len(support); v++ {
		if cu.TestsVar(v) {
			lits = append(lits, lit{net: support[v], pos: cu.LitVal(v)})
		}
	}
	if len(lits) == 0 {
		if into == netlist.NilNet {
			into = d.fresh(name)
		}
		_, err := d.out.AddConst(name, true, into)
		return into, err
	}
	return d.emitLitTree(name, lits, into)
}

// emitLitTree reduces literals pairwise with 2-input AND gates whose covers
// absorb the polarities.
func (d *decomposer) emitLitTree(name string, lits []lit, into netlist.NetID) (netlist.NetID, error) {
	for len(lits) > 1 {
		var next []lit
		for i := 0; i+1 < len(lits); i += 2 {
			a, b := lits[i], lits[i+1]
			cov := logic.FromCubes(2, logic.Cube{}.WithLit(0, a.pos).WithLit(1, b.pos))
			dst := into
			if len(lits) > 2 || into == netlist.NilNet {
				dst = d.fresh(name)
			}
			if _, err := d.out.AddLUT(name+"_and", cov, []netlist.NetID{a.net, b.net}, dst); err != nil {
				return netlist.NilNet, err
			}
			next = append(next, lit{net: dst, pos: true})
		}
		if len(lits)%2 == 1 {
			next = append(next, lits[len(lits)-1])
		}
		lits = next
	}
	l := lits[0]
	if into == netlist.NilNet && l.pos {
		return l.net, nil
	}
	if into == netlist.NilNet {
		into = d.fresh(name)
	}
	if l.net == into {
		return into, nil
	}
	var err error
	if l.pos {
		_, err = d.out.AddBuf(name+"_buf", l.net, into)
	} else {
		_, err = d.out.AddInv(name+"_inv", l.net, into)
	}
	return into, err
}

// emitTree reduces nets pairwise with the given 2-input gate cover, driving
// root at the top.
func (d *decomposer) emitTree(name string, nets []netlist.NetID, _ []lit, gate []logic.Cube, root netlist.NetID) error {
	cov := logic.FromCubes(2, gate...)
	for len(nets) > 1 {
		var next []netlist.NetID
		for i := 0; i+1 < len(nets); i += 2 {
			dst := root
			if len(nets) > 2 {
				dst = d.fresh(name)
			}
			if _, err := d.out.AddLUT(name+"_or", cov, []netlist.NetID{nets[i], nets[i+1]}, dst); err != nil {
				return err
			}
			next = append(next, dst)
		}
		if len(nets)%2 == 1 {
			next = append(next, nets[len(nets)-1])
		}
		nets = next
	}
	if nets[0] != root {
		_, err := d.out.AddBuf(name+"_buf", nets[0], root)
		return err
	}
	return nil
}
