package place

import (
	"fmt"
	"math"
	"math/rand"

	"fpgadbg/internal/device"
)

// BlockID indexes Problem.Blocks.
type BlockID int32

// Class separates CLB blocks (interior sites) from IOB blocks (perimeter
// ring sites).
type Class uint8

const (
	// ClassCLB blocks occupy interior CLB sites.
	ClassCLB Class = iota
	// ClassIOB blocks occupy perimeter IOB sites.
	ClassIOB
)

// Block is one placeable object (a packed CLB or an I/O pad).
type Block struct {
	Name  string
	Class Class
	// Fixed blocks keep Loc and are never moved.
	Fixed bool
	// Region, when non-empty, confines the block to sites inside the
	// rectangle set.
	Region device.RectSet
	// Loc is the block's position; meaningful when HasLoc (always for
	// Fixed blocks, optionally as a warm start for movable ones).
	Loc    device.XY
	HasLoc bool
}

// Net connects two or more blocks; cost is HPWL × Weight.
type Net struct {
	Blocks []BlockID
	Weight float64
}

// Problem is a placement instance.
type Problem struct {
	Dev    device.Device
	Blocks []Block
	Nets   []Net
}

// Options tune the annealer.
type Options struct {
	Seed int64
	// Effort scales the moves per temperature; 1.0 is the default
	// full-quality schedule, smaller is faster and coarser.
	Effort float64
	// WarmStart keeps provided locations and starts at a reduced
	// temperature — the "incremental place" mode.
	WarmStart bool
}

// Result reports the final placement and the work performed.
type Result struct {
	Loc      []device.XY
	Cost     float64
	Moves    int64 // attempted moves: the deterministic effort counter
	Accepted int64
	Temps    int
}

type annealer struct {
	p       *Problem
	opt     Options
	rng     *rand.Rand
	wExt    int // grid width including ring, for site indexing
	occ     []BlockID
	loc     []device.XY
	pos     []int // slot index per block (includes the IOB plane)
	movable []BlockID
	// allowed site indices per block (shared slices where possible)
	allowed   [][]int
	blockNets [][]int32
	cost      float64
	moves     int64
	accepted  int64
}

// Anneal solves the placement problem. It returns an error when the
// problem is infeasible (more blocks than sites in some class or region).
func Anneal(p *Problem, opt Options) (*Result, error) {
	if opt.Effort <= 0 {
		opt.Effort = 1.0
	}
	a := &annealer{
		p:    p,
		opt:  opt,
		rng:  rand.New(rand.NewSource(opt.Seed)),
		wExt: p.Dev.W + 2,
		loc:  make([]device.XY, len(p.Blocks)),
		pos:  make([]int, len(p.Blocks)),
	}
	if err := a.init(); err != nil {
		return nil, err
	}
	a.cost = a.totalCost()
	if len(a.movable) > 0 {
		a.run()
	}
	return &Result{
		Loc:      a.loc,
		Cost:     a.cost,
		Moves:    a.moves,
		Accepted: a.accepted,
		Temps:    0,
	}, nil
}

// Site indexing uses two planes: plane 0 holds every grid position (CLB
// sites and the first IOB slot); plane 1 holds the second IOB slot of each
// perimeter position (device.IOBsPerSite == 2). Both slots map to the same
// coordinate for wirelength and routing purposes.
func (a *annealer) planeSize() int { return a.wExt * (a.p.Dev.H + 2) }

func (a *annealer) siteIdx(p device.XY) int { return p.Y*a.wExt + p.X }

func (a *annealer) siteXY(idx int) device.XY {
	idx %= a.planeSize()
	return device.XY{X: idx % a.wExt, Y: idx / a.wExt}
}

func (a *annealer) init() error {
	dev := a.p.Dev
	a.occ = make([]BlockID, device.IOBsPerSite*(dev.W+2)*(dev.H+2))
	for i := range a.occ {
		a.occ[i] = -1
	}
	// Precompute the unconstrained site lists.
	clbSites := make([]int, 0, dev.NumCLBSites())
	for _, s := range dev.CLBSites() {
		clbSites = append(clbSites, a.siteIdx(s))
	}
	iobSites := make([]int, 0, dev.IOBCapacity())
	for plane := 0; plane < device.IOBsPerSite; plane++ {
		for _, s := range dev.IOBSites() {
			iobSites = append(iobSites, plane*a.planeSize()+a.siteIdx(s))
		}
	}
	a.allowed = make([][]int, len(a.p.Blocks))
	regionCache := make(map[string][]int)
	for bi := range a.p.Blocks {
		b := &a.p.Blocks[bi]
		base := clbSites
		if b.Class == ClassIOB {
			base = iobSites
		}
		if len(b.Region) == 0 {
			a.allowed[bi] = base
			continue
		}
		key := fmt.Sprintf("%d%v", b.Class, b.Region)
		if cached, ok := regionCache[key]; ok {
			a.allowed[bi] = cached
			continue
		}
		var filtered []int
		for _, s := range base {
			if b.Region.Contains(a.siteXY(s)) {
				filtered = append(filtered, s)
			}
		}
		regionCache[key] = filtered
		a.allowed[bi] = filtered
	}

	// Fixed blocks and warm starts first.
	for bi := range a.p.Blocks {
		b := &a.p.Blocks[bi]
		if !b.Fixed {
			continue
		}
		if !b.HasLoc {
			return fmt.Errorf("place: fixed block %q has no location", b.Name)
		}
		if err := a.claim(BlockID(bi), b.Loc); err != nil {
			return err
		}
	}
	placed := make([]bool, len(a.p.Blocks))
	for bi := range a.p.Blocks {
		b := &a.p.Blocks[bi]
		if b.Fixed {
			placed[bi] = true
			continue
		}
		a.movable = append(a.movable, BlockID(bi))
		if b.HasLoc {
			if err := a.claim(BlockID(bi), b.Loc); err != nil {
				return err
			}
			placed[bi] = true
		}
	}
	// Remaining movable blocks go to free allowed sites.
	for _, bid := range a.movable {
		if placed[bid] {
			continue
		}
		sites := a.allowed[bid]
		start := 0
		if len(sites) > 0 {
			start = a.rng.Intn(len(sites))
		}
		ok := false
		for k := 0; k < len(sites); k++ {
			s := sites[(start+k)%len(sites)]
			if a.occ[s] == -1 {
				a.occ[s] = bid
				a.pos[bid] = s
				a.loc[bid] = a.siteXY(s)
				placed[bid] = true
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("place: no free site for block %q (class %d, %d candidate sites)",
				a.p.Blocks[bid].Name, a.p.Blocks[bid].Class, len(sites))
		}
	}

	// Per-block net membership.
	a.blockNets = make([][]int32, len(a.p.Blocks))
	for ni := range a.p.Nets {
		for _, b := range a.p.Nets[ni].Blocks {
			a.blockNets[b] = append(a.blockNets[b], int32(ni))
		}
	}
	return nil
}

func (a *annealer) claim(bid BlockID, p device.XY) error {
	b := &a.p.Blocks[bid]
	wantCLB := b.Class == ClassCLB
	if wantCLB && !a.p.Dev.IsCLB(p) || !wantCLB && !a.p.Dev.IsIOB(p) {
		return fmt.Errorf("place: block %q location %v has wrong site class", b.Name, p)
	}
	if len(b.Region) > 0 && !b.Region.Contains(p) {
		return fmt.Errorf("place: block %q location %v outside its region", b.Name, p)
	}
	idx := a.siteIdx(p)
	planes := 1
	if b.Class == ClassIOB {
		planes = device.IOBsPerSite
	}
	for plane := 0; plane < planes; plane++ {
		s := plane*a.planeSize() + idx
		if a.occ[s] == -1 {
			a.occ[s] = bid
			a.pos[bid] = s
			a.loc[bid] = p
			return nil
		}
	}
	return fmt.Errorf("place: site %v full; cannot place %q", p, b.Name)
}

// netHPWL computes a net's half-perimeter wirelength.
func (a *annealer) netHPWL(ni int32) float64 {
	n := &a.p.Nets[ni]
	if len(n.Blocks) < 2 {
		return 0
	}
	first := a.loc[n.Blocks[0]]
	minX, maxX, minY, maxY := first.X, first.X, first.Y, first.Y
	for _, b := range n.Blocks[1:] {
		p := a.loc[b]
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	w := n.Weight
	if w == 0 {
		w = 1
	}
	return w * float64((maxX-minX)+(maxY-minY))
}

func (a *annealer) totalCost() float64 {
	c := 0.0
	for ni := range a.p.Nets {
		c += a.netHPWL(int32(ni))
	}
	return c
}

// affectedCost sums the HPWL of every net touching either block,
// deduplicating shared nets.
func (a *annealer) affectedCost(b1 BlockID, b2 BlockID) float64 {
	c := 0.0
	for _, ni := range a.blockNets[b1] {
		c += a.netHPWL(ni)
	}
	for _, ni := range a.blockNets[b2] {
		if b2 == b1 {
			break
		}
		shared := false
		for _, nj := range a.blockNets[b1] {
			if ni == nj {
				shared = true
				break
			}
		}
		if !shared {
			c += a.netHPWL(ni)
		}
	}
	return c
}

// run executes the annealing schedule.
func (a *annealer) run() {
	n := len(a.movable)
	movesPerT := int(a.opt.Effort * 6 * math.Pow(float64(n), 4.0/3.0))
	if movesPerT < 20 {
		movesPerT = 20
	}
	// Initial temperature from the cost deviation of a short random walk.
	t := a.initialTemp(n)
	if a.opt.WarmStart {
		t /= 20
	}
	rlim := float64(max(a.p.Dev.W, a.p.Dev.H))
	minT := 0.005 * (a.cost + 1) / float64(len(a.p.Nets)+1)
	for {
		acc := 0
		for m := 0; m < movesPerT; m++ {
			if a.tryMove(t, int(rlim)) {
				acc++
			}
		}
		rAccept := float64(acc) / float64(movesPerT)
		// VPR-style schedule adaptation.
		switch {
		case rAccept > 0.96:
			t *= 0.5
		case rAccept > 0.8:
			t *= 0.9
		case rAccept > 0.15:
			t *= 0.95
		default:
			t *= 0.8
		}
		rlim *= 1 - 0.44 + rAccept
		if rlim < 1 {
			rlim = 1
		}
		if m := float64(max(a.p.Dev.W, a.p.Dev.H)); rlim > m {
			rlim = m
		}
		if t < minT || (rAccept < 0.005 && t < minT*100) {
			break
		}
	}
	// Greedy zero-temperature cleanup pass.
	for m := 0; m < movesPerT/2; m++ {
		a.tryMove(0, 3)
	}
}

func (a *annealer) initialTemp(n int) float64 {
	probes := n
	if probes > 500 {
		probes = 500
	}
	if probes < 10 {
		probes = 10
	}
	var sum, sumSq float64
	for i := 0; i < probes; i++ {
		d := a.probeDelta()
		sum += d
		sumSq += d * d
	}
	mean := sum / float64(probes)
	variance := sumSq/float64(probes) - mean*mean
	if variance < 1e-9 {
		return 1.0
	}
	return 20 * math.Sqrt(variance)
}

// probeDelta evaluates (without applying) a random move's cost delta.
func (a *annealer) probeDelta() float64 {
	bid := a.movable[a.rng.Intn(len(a.movable))]
	sites := a.allowed[bid]
	if len(sites) == 0 {
		return 0
	}
	s := sites[a.rng.Intn(len(sites))]
	other := a.occ[s]
	if other != -1 && (a.p.Blocks[other].Fixed || other == bid) {
		return 0
	}
	return a.evalSwap(bid, s, other, true)
}

// evalSwap computes the cost delta of moving bid to slot s (swapping with
// other if present); when revert is true the move is undone afterwards.
func (a *annealer) evalSwap(bid BlockID, s int, other BlockID, revert bool) float64 {
	oldIdx := a.pos[bid]
	before := a.affectedCost(bid, otherOr(bid, other))
	a.applySwap(bid, oldIdx, s, other)
	after := a.affectedCost(bid, otherOr(bid, other))
	if revert {
		a.applySwap(bid, s, oldIdx, other)
	}
	return after - before
}

func otherOr(bid, other BlockID) BlockID {
	if other == -1 {
		return bid
	}
	return other
}

func (a *annealer) applySwap(bid BlockID, from, to int, other BlockID) {
	a.occ[from] = -1
	if other != -1 {
		a.occ[from] = other
		a.pos[other] = from
		a.loc[other] = a.siteXY(from)
	}
	a.occ[to] = bid
	a.pos[bid] = to
	a.loc[bid] = a.siteXY(to)
}

// tryMove attempts one annealing move and reports acceptance.
func (a *annealer) tryMove(t float64, rlim int) bool {
	a.moves++
	bid := a.movable[a.rng.Intn(len(a.movable))]
	sites := a.allowed[bid]
	if len(sites) == 0 {
		return false
	}
	// Sample a few candidates, preferring one inside the range window.
	cur := a.loc[bid]
	s := -1
	for k := 0; k < 8; k++ {
		cand := sites[a.rng.Intn(len(sites))]
		p := a.siteXY(cand)
		if abs(p.X-cur.X) <= rlim && abs(p.Y-cur.Y) <= rlim {
			s = cand
			break
		}
		s = cand
	}
	if s == a.pos[bid] {
		return false
	}
	other := a.occ[s]
	if other != -1 {
		ob := &a.p.Blocks[other]
		if ob.Fixed {
			return false
		}
		// The displaced block must be allowed at our current site.
		if len(ob.Region) > 0 && !ob.Region.Contains(cur) {
			return false
		}
		if ob.Class != a.p.Blocks[bid].Class {
			return false
		}
	}
	delta := a.evalSwap(bid, s, other, true)
	accept := delta <= 0
	if !accept && t > 0 {
		accept = a.rng.Float64() < math.Exp(-delta/t)
	}
	if accept {
		a.applySwap(bid, a.pos[bid], s, other)
		a.cost += delta
		a.accepted++
	}
	return accept
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
