package place

import (
	"math/rand"
	"testing"

	"fpgadbg/internal/device"
)

// chainProblem builds a linear chain of n CLB blocks with nearest-neighbor
// nets — the optimal placement is a snake with HPWL n-1.
func chainProblem(n int, dev device.Device) *Problem {
	p := &Problem{Dev: dev}
	for i := 0; i < n; i++ {
		p.Blocks = append(p.Blocks, Block{Name: "b", Class: ClassCLB})
	}
	for i := 0; i+1 < n; i++ {
		p.Nets = append(p.Nets, Net{Blocks: []BlockID{BlockID(i), BlockID(i + 1)}})
	}
	return p
}

func checkLegal(t *testing.T, p *Problem, r *Result) {
	t.Helper()
	seen := make(map[device.XY]int)
	for bi := range p.Blocks {
		loc := r.Loc[bi]
		if prev, dup := seen[loc]; dup {
			t.Fatalf("blocks %d and %d share site %v", prev, bi, loc)
		}
		seen[loc] = bi
		b := &p.Blocks[bi]
		if b.Class == ClassCLB && !p.Dev.IsCLB(loc) {
			t.Fatalf("CLB block %d on non-CLB site %v", bi, loc)
		}
		if b.Class == ClassIOB && !p.Dev.IsIOB(loc) {
			t.Fatalf("IOB block %d on non-IOB site %v", bi, loc)
		}
		if len(b.Region) > 0 && !b.Region.Contains(loc) {
			t.Fatalf("block %d at %v escaped region %v", bi, loc, b.Region)
		}
		if b.Fixed && loc != b.Loc {
			t.Fatalf("fixed block %d moved from %v to %v", bi, b.Loc, loc)
		}
	}
}

func TestAnnealChainQuality(t *testing.T) {
	dev := device.Device{W: 6, H: 6, ChannelWidth: 8}
	p := chainProblem(20, dev)
	r, err := Anneal(p, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, p, r)
	// Random placement of a 20-chain on a 6x6 grid averages ~4 per net
	// (~76 total); annealing should get well under half of that.
	if r.Cost > 40 {
		t.Fatalf("chain cost %.0f too high", r.Cost)
	}
	if r.Moves == 0 || r.Accepted == 0 {
		t.Fatal("no annealing work recorded")
	}
}

func TestFixedBlocksNeverMove(t *testing.T) {
	dev := device.Device{W: 5, H: 5, ChannelWidth: 8}
	p := chainProblem(10, dev)
	p.Blocks[0].Fixed = true
	p.Blocks[0].Loc = device.XY{X: 3, Y: 3}
	p.Blocks[0].HasLoc = true
	p.Blocks[5].Fixed = true
	p.Blocks[5].Loc = device.XY{X: 1, Y: 1}
	p.Blocks[5].HasLoc = true
	r, err := Anneal(p, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, p, r)
}

func TestRegionConstraint(t *testing.T) {
	dev := device.Device{W: 8, H: 8, ChannelWidth: 8}
	p := chainProblem(12, dev)
	region := device.RectSet{{X0: 1, Y0: 1, X1: 4, Y1: 4}}
	for i := range p.Blocks {
		p.Blocks[i].Region = region
	}
	r, err := Anneal(p, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, p, r)
}

func TestIOBlocksOnRing(t *testing.T) {
	dev := device.Device{W: 4, H: 4, ChannelWidth: 8}
	p := &Problem{Dev: dev}
	for i := 0; i < 4; i++ {
		p.Blocks = append(p.Blocks, Block{Name: "clb", Class: ClassCLB})
	}
	for i := 0; i < 6; i++ {
		p.Blocks = append(p.Blocks, Block{Name: "io", Class: ClassIOB})
	}
	for i := 0; i < 4; i++ {
		p.Nets = append(p.Nets, Net{Blocks: []BlockID{BlockID(i), BlockID(4 + i)}})
	}
	r, err := Anneal(p, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, p, r)
}

func TestInfeasibleProblems(t *testing.T) {
	dev := device.Device{W: 2, H: 2, ChannelWidth: 8}
	// 5 CLB blocks on 4 sites.
	p := chainProblem(5, dev)
	if _, err := Anneal(p, Options{Seed: 5}); err == nil {
		t.Fatal("overfull device accepted")
	}
	// Region too small.
	p2 := chainProblem(3, device.Device{W: 4, H: 4, ChannelWidth: 8})
	for i := range p2.Blocks {
		p2.Blocks[i].Region = device.RectSet{{X0: 1, Y0: 1, X1: 1, Y1: 1}}
	}
	if _, err := Anneal(p2, Options{Seed: 6}); err == nil {
		t.Fatal("overfull region accepted")
	}
	// Fixed block without a location.
	p3 := chainProblem(2, dev)
	p3.Blocks[0].Fixed = true
	if _, err := Anneal(p3, Options{Seed: 7}); err == nil {
		t.Fatal("fixed block without location accepted")
	}
	// Two fixed blocks on the same site.
	p4 := chainProblem(2, dev)
	for i := 0; i < 2; i++ {
		p4.Blocks[i].Fixed = true
		p4.Blocks[i].Loc = device.XY{X: 1, Y: 1}
		p4.Blocks[i].HasLoc = true
	}
	if _, err := Anneal(p4, Options{Seed: 8}); err == nil {
		t.Fatal("site conflict accepted")
	}
	// Fixed CLB on an IOB site.
	p5 := chainProblem(1, dev)
	p5.Blocks[0].Fixed = true
	p5.Blocks[0].Loc = device.XY{X: 0, Y: 1}
	p5.Blocks[0].HasLoc = true
	if _, err := Anneal(p5, Options{Seed: 9}); err == nil {
		t.Fatal("wrong site class accepted")
	}
}

func TestWarmStartKeepsLocations(t *testing.T) {
	dev := device.Device{W: 6, H: 6, ChannelWidth: 8}
	p := chainProblem(8, dev)
	r1, err := Anneal(p, Options{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Re-anneal from the converged placement with WarmStart: cost must not
	// regress much and effort is lower.
	p2 := chainProblem(8, dev)
	for i := range p2.Blocks {
		p2.Blocks[i].Loc = r1.Loc[i]
		p2.Blocks[i].HasLoc = true
	}
	r2, err := Anneal(p2, Options{Seed: 11, WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, p2, r2)
	if r2.Cost > r1.Cost*1.5+2 {
		t.Fatalf("warm start regressed: %.0f -> %.0f", r1.Cost, r2.Cost)
	}
}

func TestDeterminism(t *testing.T) {
	dev := device.Device{W: 6, H: 6, ChannelWidth: 8}
	r1, err := Anneal(chainProblem(15, dev), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Anneal(chainProblem(15, dev), Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost || r1.Moves != r2.Moves {
		t.Fatalf("same seed differs: cost %.1f/%.1f moves %d/%d", r1.Cost, r2.Cost, r1.Moves, r2.Moves)
	}
	for i := range r1.Loc {
		if r1.Loc[i] != r2.Loc[i] {
			t.Fatalf("location %d differs", i)
		}
	}
}

func TestEffortScalesWork(t *testing.T) {
	dev := device.Device{W: 8, H: 8, ChannelWidth: 8}
	rLow, err := Anneal(chainProblem(30, dev), Options{Seed: 1, Effort: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	rHigh, err := Anneal(chainProblem(30, dev), Options{Seed: 1, Effort: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if rHigh.Moves <= rLow.Moves {
		t.Fatalf("effort did not scale moves: %d vs %d", rLow.Moves, rHigh.Moves)
	}
}

func TestRegionLocalReplaceLeavesOutsideAlone(t *testing.T) {
	// The tiling primitive: everything outside one rect is fixed; blocks
	// inside are re-placed within it.
	dev := device.Device{W: 8, H: 8, ChannelWidth: 8}
	p := chainProblem(30, dev)
	r1, err := Anneal(p, Options{Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	tile := device.RectSet{{X0: 1, Y0: 1, X1: 4, Y1: 4}}
	p2 := chainProblem(30, dev)
	insideCount := 0
	for i := range p2.Blocks {
		p2.Blocks[i].Loc = r1.Loc[i]
		p2.Blocks[i].HasLoc = true
		if tile.Contains(r1.Loc[i]) {
			p2.Blocks[i].Region = tile
			insideCount++
		} else {
			p2.Blocks[i].Fixed = true
		}
	}
	if insideCount == 0 {
		t.Skip("no blocks landed in the tile for this seed")
	}
	r2, err := Anneal(p2, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, p2, r2)
	for i := range p2.Blocks {
		if p2.Blocks[i].Fixed && r2.Loc[i] != r1.Loc[i] {
			t.Fatalf("outside block %d moved", i)
		}
		if !p2.Blocks[i].Fixed && !tile.Contains(r2.Loc[i]) {
			t.Fatalf("inside block %d escaped the tile", i)
		}
	}
}

func TestTileEffortScalesWithRegionSize(t *testing.T) {
	// Re-placing a small tile must cost far fewer moves than re-placing
	// the whole design — the heart of Figure 5.
	dev := device.Device{W: 12, H: 12, ChannelWidth: 8}
	n := 100
	full := chainProblem(n, dev)
	rFull, err := Anneal(full, Options{Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	tile := device.RectSet{{X0: 1, Y0: 1, X1: 3, Y1: 3}}
	local := chainProblem(n, dev)
	movable := 0
	for i := range local.Blocks {
		local.Blocks[i].Loc = rFull.Loc[i]
		local.Blocks[i].HasLoc = true
		if tile.Contains(rFull.Loc[i]) {
			local.Blocks[i].Region = tile
			movable++
		} else {
			local.Blocks[i].Fixed = true
		}
	}
	if movable == 0 {
		t.Skip("empty tile for this seed")
	}
	rLocal, err := Anneal(local, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if rLocal.Moves*4 > rFull.Moves {
		t.Fatalf("tile re-place too expensive: %d vs full %d", rLocal.Moves, rFull.Moves)
	}
}

func TestRandomStress(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		dev := device.Device{W: 5 + r.Intn(5), H: 5 + r.Intn(5), ChannelWidth: 8}
		nBlocks := 1 + r.Intn(dev.NumCLBSites())
		p := &Problem{Dev: dev}
		for i := 0; i < nBlocks; i++ {
			p.Blocks = append(p.Blocks, Block{Class: ClassCLB})
		}
		for i := 0; i < nBlocks*2; i++ {
			a, b := BlockID(r.Intn(nBlocks)), BlockID(r.Intn(nBlocks))
			if a != b {
				p.Nets = append(p.Nets, Net{Blocks: []BlockID{a, b}})
			}
		}
		res, err := Anneal(p, Options{Seed: int64(trial), Effort: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		checkLegal(t, p, res)
	}
}

func BenchmarkAnneal200(b *testing.B) {
	dev := device.Device{W: 16, H: 16, ChannelWidth: 8}
	for i := 0; i < b.N; i++ {
		if _, err := Anneal(chainProblem(200, dev), Options{Seed: 1, Effort: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}
