// Package place is the back-end placer: VPR-style simulated annealing over
// the device grid, minimizing total half-perimeter wirelength. Three
// features carry the tiling technique of the paper:
//
//   - Fixed blocks: cells outside the affected tiles are locked in place
//     and are never moved or displaced.
//   - Region constraints: movable blocks can be confined to a set of
//     rectangles (the affected tiles), so a tile-local re-place never
//     perturbs the rest of the design.
//   - Deterministic effort counters: attempted moves are reported so that
//     Figure 5's speedups can be measured as work ratios independent of
//     host noise (wall-clock is measured by the benches as well).
package place
