package instr

import (
	"fmt"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/pack"
)

// MISR describes one inserted observation register.
type MISR struct {
	Name string
	// Observed lists the nets captured by each stage.
	Observed []netlist.NetID
	// State lists the DFF output nets (the signature, LSB first).
	State []netlist.NetID
	// Cells lists every inserted cell (for core.Delta.Added).
	Cells []netlist.CellID
}

// CLBCost returns the block cost of observing w nets: one XOR LUT and one
// DFF per stage, packed two per CLB.
func CLBCost(w int) int {
	if w <= 0 {
		return 0
	}
	return (w + pack.LUTsPerCLB - 1) / pack.LUTsPerCLB
}

// InsertMISR adds a w-stage MISR observing the given nets. Stage i
// computes s[i]' = obs[i] XOR s[i-1] (XOR s[w-1] on the feedback taps),
// the standard external-feedback signature register. The signature state
// nets are returned so the debugger can probe them; they are not exported
// as primary outputs (emulators read signatures back through configuration
// readback).
func InsertMISR(nl *netlist.Netlist, name string, observed []netlist.NetID) (*MISR, error) {
	if len(observed) == 0 {
		return nil, fmt.Errorf("instr: MISR needs at least one observed net")
	}
	for _, net := range observed {
		if int(net) < 0 || int(net) >= len(nl.Nets) || nl.Nets[net].Dead {
			return nil, fmt.Errorf("instr: cannot observe invalid net %d", net)
		}
	}
	m := &MISR{Name: name}
	w := len(observed)
	// Create state nets first so stages can reference them.
	state := make([]netlist.NetID, w)
	for i := range state {
		state[i] = nl.AddNet(fmt.Sprintf("%s_s%d", name, i))
	}
	feedbackTap := func(i int) bool {
		// Sparse taps (primitive-polynomial-like): stages 0 and w/2.
		return i == 0 || (w > 2 && i == w/2)
	}
	for i := 0; i < w; i++ {
		var fanin []netlist.NetID
		fanin = append(fanin, observed[i])
		if i > 0 {
			fanin = append(fanin, state[i-1])
		}
		if feedbackTap(i) && w > 1 {
			fanin = append(fanin, state[w-1])
		}
		d := nl.AddNet(fmt.Sprintf("%s_d%d", name, i))
		lut, err := nl.AddLUT(fmt.Sprintf("%s_x%d", name, i), logic.XorN(len(fanin)), fanin, d)
		if err != nil {
			return nil, fmt.Errorf("instr: %w", err)
		}
		ff, err := nl.AddDFF(fmt.Sprintf("%s_ff%d", name, i), d, state[i], 0)
		if err != nil {
			return nil, fmt.Errorf("instr: %w", err)
		}
		m.Cells = append(m.Cells, lut, ff)
	}
	m.Observed = append(m.Observed, observed...)
	m.State = state
	return m, nil
}

// ControlPoint describes one inserted force multiplexer.
type ControlPoint struct {
	Name string
	// Target is the controlled net (the original signal).
	Target netlist.NetID
	// Forced is the new net seen by the target's former sinks.
	Forced netlist.NetID
	// Select and Value are the new primary inputs steering the mux.
	Select, Value netlist.NetID
	Cells         []netlist.CellID
}

// InsertControlPoint splits a net: all existing sinks of target are
// rewired to a new mux output computing (select ? value : target). Select
// and value become primary inputs for the test harness to drive. Sinks
// belonging to cells listed in exclude (e.g. observation logic) keep the
// original net.
func InsertControlPoint(nl *netlist.Netlist, name string, target netlist.NetID, exclude map[netlist.CellID]bool) (*ControlPoint, error) {
	if int(target) < 0 || int(target) >= len(nl.Nets) || nl.Nets[target].Dead {
		return nil, fmt.Errorf("instr: cannot control invalid net %d", target)
	}
	fan := nl.Fanouts()
	sinks := fan[target]
	if len(sinks) == 0 {
		return nil, fmt.Errorf("instr: net %q has no sinks to control", nl.NetName(target))
	}
	cp := &ControlPoint{Name: name, Target: target}
	cp.Select = nl.AddPI(name + "_sel")
	cp.Value = nl.AddPI(name + "_val")
	cp.Forced = nl.AddNet(name + "_out")
	mux, err := nl.AddLUT(name+"_mux", logic.Mux2(), []netlist.NetID{cp.Select, target, cp.Value}, cp.Forced)
	if err != nil {
		return nil, fmt.Errorf("instr: %w", err)
	}
	cp.Cells = append(cp.Cells, mux)
	for _, s := range sinks {
		if exclude[s.Cell] {
			continue
		}
		if err := nl.SetFanin(s.Cell, s.Pin, cp.Forced); err != nil {
			return nil, fmt.Errorf("instr: %w", err)
		}
	}
	return cp, nil
}

// Signature computes the MISR's final signature from probed state words
// (one uint64 of parallel patterns per stage); used by the debug engine to
// compare golden and implementation signatures.
func (m *MISR) Signature(stateWords []uint64) []uint64 {
	return append([]uint64(nil), stateWords...)
}
