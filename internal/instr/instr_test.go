package instr

import (
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// smallDesign: two XOR stages producing observable internal nets.
func smallDesign(t testing.TB) (*netlist.Netlist, []netlist.NetID) {
	t.Helper()
	nl := netlist.New("d")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	c := nl.AddPI("c")
	x := nl.AddNet("x")
	y := nl.AddNet("y")
	nl.MustAddLUT("g1", logic.XorN(2), []netlist.NetID{a, b}, x)
	nl.MustAddLUT("g2", logic.AndN(2), []netlist.NetID{x, c}, y)
	nl.MarkPO(y)
	return nl, []netlist.NetID{x, y}
}

func TestCLBCost(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 2: 1, 3: 2, 8: 4}
	for w, want := range cases {
		if got := CLBCost(w); got != want {
			t.Errorf("CLBCost(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestInsertMISRSignatureDiffers(t *testing.T) {
	// Identical circuits produce identical signatures; a corrupted circuit
	// produces a different one — the detection flag.
	mkWithMISR := func(corrupt bool) []uint64 {
		nl, obs := smallDesign(t)
		if corrupt {
			id, _ := nl.CellByName("g2")
			nl.Cells[id].Func = logic.OrN(2)
		}
		m, err := InsertMISR(nl, "misr", obs)
		if err != nil {
			t.Fatal(err)
		}
		if err := nl.CheckDriven(); err != nil {
			t.Fatal(err)
		}
		mach, err := sim.Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		for cyc := 0; cyc < 8; cyc++ {
			if _, err := mach.Step(map[string]uint64{"a": 0xaaaa, "b": 0x00ff, "c": 0x0f0f}); err != nil {
				t.Fatal(err)
			}
		}
		var sig []uint64
		for _, s := range m.State {
			sig = append(sig, mach.NetByID(s))
		}
		return sig
	}
	clean1 := mkWithMISR(false)
	clean2 := mkWithMISR(false)
	bad := mkWithMISR(true)
	for i := range clean1 {
		if clean1[i] != clean2[i] {
			t.Fatal("identical designs gave different signatures")
		}
	}
	same := true
	for i := range clean1 {
		if clean1[i] != bad[i] {
			same = false
		}
	}
	if same {
		t.Fatal("corrupted design gave identical signature")
	}
}

func TestMISRDoesNotDisturbFunction(t *testing.T) {
	nl, obs := smallDesign(t)
	ref, _ := smallDesign(t)
	if _, err := InsertMISR(nl, "misr", obs); err != nil {
		t.Fatal(err)
	}
	// Original PO behaviour is unchanged.
	mm, err := sim.Equivalent(projectPOs(t, nl, ref), ref, 8, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("MISR changed functional outputs: %v", mm)
	}
}

// projectPOs returns nl unchanged; it exists to document that MISR state
// is not exported as POs, so PO sets already match.
func projectPOs(t testing.TB, nl, ref *netlist.Netlist) *netlist.Netlist {
	t.Helper()
	if len(nl.POs) != len(ref.POs) {
		t.Fatal("MISR leaked primary outputs")
	}
	return nl
}

func TestInsertMISRErrors(t *testing.T) {
	nl, _ := smallDesign(t)
	if _, err := InsertMISR(nl, "m", nil); err == nil {
		t.Fatal("empty observation set accepted")
	}
	if _, err := InsertMISR(nl, "m", []netlist.NetID{999}); err == nil {
		t.Fatal("invalid net accepted")
	}
}

func TestControlPointForcesValue(t *testing.T) {
	nl, _ := smallDesign(t)
	x, _ := nl.NetByName("x")
	cp, err := InsertControlPoint(nl, "cp", x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.CheckDriven(); err != nil {
		t.Fatal(err)
	}
	mach, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Normal mode (sel=0): y = (a^b)&c.
	out, err := mach.Step(map[string]uint64{"a": ^uint64(0), "b": 0, "c": ^uint64(0), "cp_sel": 0, "cp_val": 0})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != ^uint64(0) {
		t.Fatalf("normal mode broken: y=%x", out["y"])
	}
	// Force mode: x forced to 0 regardless of a,b.
	out, err = mach.Step(map[string]uint64{"a": ^uint64(0), "b": 0, "c": ^uint64(0), "cp_sel": ^uint64(0), "cp_val": 0})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != 0 {
		t.Fatalf("force-0 failed: y=%x", out["y"])
	}
	// Force mode: x forced to 1.
	out, err = mach.Step(map[string]uint64{"a": 0, "b": 0, "c": ^uint64(0), "cp_sel": ^uint64(0), "cp_val": ^uint64(0)})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != ^uint64(0) {
		t.Fatalf("force-1 failed: y=%x", out["y"])
	}
	if len(cp.Cells) != 1 {
		t.Fatalf("expected 1 mux cell, got %d", len(cp.Cells))
	}
}

func TestControlPointExcludes(t *testing.T) {
	nl, _ := smallDesign(t)
	x, _ := nl.NetByName("x")
	g2, _ := nl.CellByName("g2")
	_, err := InsertControlPoint(nl, "cp", x, map[netlist.CellID]bool{g2: true})
	if err != nil {
		t.Fatal(err)
	}
	// g2 still reads the raw net.
	if nl.Cells[g2].Fanin[0] != x {
		t.Fatal("excluded sink was rewired")
	}
}

func TestControlPointNoSinks(t *testing.T) {
	nl := netlist.New("n")
	a := nl.AddPI("a")
	nl.MarkPO(a)
	if _, err := InsertControlPoint(nl, "cp", a, nil); err == nil {
		t.Fatal("sink-less net accepted")
	}
}
