// Package instr builds the control and observation logic of the paper's
// Section 4 as ordinary netlist cells, so that inserting a test point has
// a real area cost (CLBs) and a real physical footprint (the tiles it
// lands in):
//
//   - Observation: a MISR (multiple-input signature register) — one
//     XOR/DFF stage per observed net plus a polynomial feedback tap,
//     inserted by InsertMISR. The signature is compared off-chip against
//     the golden model's signature, raising the paper's "flag" when an
//     erroneous state was captured. Localization (internal/debug) inserts
//     these round by round, each paying tile-local re-place-and-route.
//   - Control: a force multiplexer per controlled net
//     (InsertControlPoint) — a test-mode select and a forced value (new
//     primary inputs driven by the test harness) that override the net's
//     normal driver, letting the debugger steer the circuit into suspect
//     states.
//
// Inserted cells are ordinary LUTs and DFFs: they pack, place, route and
// simulate like design logic, and CLBCost predicts the CLB footprint a
// planned insertion will occupy before any physical work is spent.
package instr
