// Package testgen generates test stimulus — step 10 of the paper's
// debugging loop ("generate test patterns", done in software). Patterns
// are produced as 64-wide words matching the bit-parallel simulator: one
// row applies 64 scalar test vectors at once.
//
// The primary representation is the ID-indexed stimulus block: a
// [][]uint64 where row c is one clock cycle and column j drives the j-th
// bound input of a compiled sim.Machine (see sim.Bind). Blocks carry no
// names, allocate nothing per cycle during replay, and are what every hot
// path uses. The map-keyed variants (Random, Weighted, ...) are thin
// wrappers kept for the name-based compatibility API; they draw from the
// same random streams, so Random(pis, ...) and RandomBlocks(len(pis), ...)
// produce identical words column for column.
package testgen
