package testgen

import (
	"fmt"
	"math/rand"
)

// RandomBlocks returns nWords stimulus rows of uniformly random
// 64-pattern words over cols input columns.
func RandomBlocks(cols, nWords int, seed int64) [][]uint64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]uint64, nWords)
	for w := range out {
		row := make([]uint64, cols)
		for j := range row {
			row[j] = r.Uint64()
		}
		out[w] = row
	}
	return out
}

// ScalarBlocks returns nPatterns broadcast stimulus rows over cols input
// columns: every word is 0 or all-ones, so all 64 simulator lanes see the
// same scalar test vector. This is the stimulus shape of fault-parallel
// simulation (one mutant per lane, see sim.SetLaneFault), where the lanes
// carry mutants instead of patterns and therefore must share the input.
func ScalarBlocks(cols, nPatterns int, seed int64) [][]uint64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]uint64, nPatterns)
	for p := range out {
		row := make([]uint64, cols)
		for j := range row {
			if r.Int63()&1 != 0 {
				row[j] = ^uint64(0)
			}
		}
		out[p] = row
	}
	return out
}

// TransposeToScalar expands packed 64-pattern stimulus rows into their
// individual scalar patterns as broadcast rows: pattern p of packed row w
// becomes one row whose words are 0 or all-ones. The result drives the
// fault-parallel scanner with exactly the pattern set of a pattern-
// parallel replay, so (for combinational logic) whatever the packed
// stimulus excites, the scalar replay excites too.
func TransposeToScalar(blocks [][]uint64) [][]uint64 {
	out := make([][]uint64, 0, len(blocks)*64)
	for _, packed := range blocks {
		for p := 0; p < 64; p++ {
			row := make([]uint64, len(packed))
			for j, w := range packed {
				row[j] = -(w >> uint(p) & 1)
			}
			out = append(out, row)
		}
	}
	return out
}

// WeightedBlocks returns random stimulus rows with each input bit biased
// to 1 with probability p1 — useful for exciting control-dominated logic.
func WeightedBlocks(cols, nWords int, p1 float64, seed int64) [][]uint64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]uint64, nWords)
	for w := range out {
		row := make([]uint64, cols)
		for j := range row {
			var word uint64
			for b := 0; b < 64; b++ {
				if r.Float64() < p1 {
					word |= 1 << b
				}
			}
			row[j] = word
		}
		out[w] = row
	}
	return out
}

// ExhaustiveBlocks returns every assignment over cols inputs, packed 64
// patterns per row. It refuses more than 20 inputs (2^20 patterns).
func ExhaustiveBlocks(cols int) ([][]uint64, error) {
	if cols > 20 {
		return nil, fmt.Errorf("testgen: %d inputs is too many for exhaustive patterns", cols)
	}
	total := uint64(1) << cols
	words := int((total + 63) / 64)
	out := make([][]uint64, words)
	for w := 0; w < words; w++ {
		row := make([]uint64, cols)
		base := uint64(w) * 64
		for j := range row {
			var word uint64
			for p := uint64(0); p < 64 && base+p < total; p++ {
				if (base+p)&(1<<j) != 0 {
					word |= 1 << p
				}
			}
			row[j] = word
		}
		out[w] = row
	}
	return out, nil
}

// SequenceBlocks returns a clocked stimulus of length rows over cols
// inputs from an LFSR stream.
func SequenceBlocks(cols, length int, seed uint64) [][]uint64 {
	l := NewLFSR(seed)
	out := make([][]uint64, length)
	for c := range out {
		row := make([]uint64, cols)
		for j := range row {
			row[j] = l.Next()
		}
		out[c] = row
	}
	return out
}

// HoldingBlocks returns random stimulus where the columns named in hold
// are pinned to fixed words while the rest stay random — the pattern
// shape used with control points (hold the force inputs, randomize the
// functional ones).
func HoldingBlocks(cols int, hold map[int]uint64, nWords int, seed int64) [][]uint64 {
	out := RandomBlocks(cols, nWords, seed)
	for _, row := range out {
		for j, v := range hold {
			if j >= 0 && j < len(row) {
				row[j] = v
			}
		}
	}
	return out
}

// Repeat expands a block sequence into a clocked one: each row is held
// for cycles consecutive clock cycles (rows are shared, not copied).
func Repeat(blocks [][]uint64, cycles int) [][]uint64 {
	if cycles < 1 {
		cycles = 1
	}
	out := make([][]uint64, 0, len(blocks)*cycles)
	for _, row := range blocks {
		for c := 0; c < cycles; c++ {
			out = append(out, row)
		}
	}
	return out
}

// toMaps keys block columns by the given input names.
func toMaps(pis []string, blocks [][]uint64) []map[string]uint64 {
	out := make([]map[string]uint64, len(blocks))
	for i, row := range blocks {
		m := make(map[string]uint64, len(pis))
		for j, name := range pis {
			m[name] = row[j]
		}
		out[i] = m
	}
	return out
}

// Random returns nWords blocks of 64 uniformly random patterns over the
// named inputs. Compatibility wrapper over RandomBlocks.
func Random(pis []string, nWords int, seed int64) []map[string]uint64 {
	return toMaps(pis, RandomBlocks(len(pis), nWords, seed))
}

// Weighted returns random patterns with each input biased to 1 with the
// given probability. Compatibility wrapper over WeightedBlocks.
func Weighted(pis []string, nWords int, p1 float64, seed int64) []map[string]uint64 {
	return toMaps(pis, WeightedBlocks(len(pis), nWords, p1, seed))
}

// Exhaustive returns every assignment over the inputs, packed 64 per
// word. Compatibility wrapper over ExhaustiveBlocks.
func Exhaustive(pis []string) ([]map[string]uint64, error) {
	blocks, err := ExhaustiveBlocks(len(pis))
	if err != nil {
		return nil, err
	}
	return toMaps(pis, blocks), nil
}

// LFSR produces a maximal-ish pseudo-random bit sequence from a 64-bit
// Fibonacci LFSR; used to build long sequential stimulus cheaply and
// reproducibly (hardware pattern generators are LFSRs too).
type LFSR struct {
	state uint64
}

// NewLFSR seeds the generator; a zero seed is replaced to avoid lock-up.
func NewLFSR(seed uint64) *LFSR {
	if seed == 0 {
		seed = 0x1d872b41c3f0aa5
	}
	return &LFSR{state: seed}
}

// Next returns the next 64-bit word of the sequence.
func (l *LFSR) Next() uint64 {
	// Taps 64,63,61,60 (primitive over GF(2)).
	s := l.state
	for i := 0; i < 64; i++ {
		bit := ((s >> 63) ^ (s >> 62) ^ (s >> 60) ^ (s >> 59)) & 1
		s = s<<1 | bit
	}
	l.state = s
	return s
}

// Sequence returns a clocked stimulus: length cycles of patterns for the
// named inputs, from an LFSR stream. Compatibility wrapper over
// SequenceBlocks.
func Sequence(pis []string, length int, seed uint64) []map[string]uint64 {
	return toMaps(pis, SequenceBlocks(len(pis), length, seed))
}

// Holding returns stimulus where selected inputs are held at fixed values
// while the rest are random; held names outside pis are added to the
// maps. Compatibility wrapper over RandomBlocks.
func Holding(pis []string, hold map[string]uint64, nWords int, seed int64) []map[string]uint64 {
	pats := toMaps(pis, RandomBlocks(len(pis), nWords, seed))
	for _, m := range pats {
		for k, v := range hold {
			m[k] = v
		}
	}
	return pats
}
