// Package testgen generates test stimulus — step 10 of the paper's
// debugging loop ("generate test patterns", done in software). Patterns
// are produced as 64-wide words matching the bit-parallel simulator: one
// map applies 64 scalar test vectors at once.
package testgen

import (
	"fmt"
	"math/rand"
)

// Random returns nWords blocks of 64 uniformly random patterns over the
// named inputs.
func Random(pis []string, nWords int, seed int64) []map[string]uint64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]map[string]uint64, nWords)
	for w := range out {
		m := make(map[string]uint64, len(pis))
		for _, name := range pis {
			m[name] = r.Uint64()
		}
		out[w] = m
	}
	return out
}

// Weighted returns random patterns with each input biased to 1 with the
// given probability — useful for exciting control-dominated logic.
func Weighted(pis []string, nWords int, p1 float64, seed int64) []map[string]uint64 {
	r := rand.New(rand.NewSource(seed))
	out := make([]map[string]uint64, nWords)
	for w := range out {
		m := make(map[string]uint64, len(pis))
		for _, name := range pis {
			var word uint64
			for b := 0; b < 64; b++ {
				if r.Float64() < p1 {
					word |= 1 << b
				}
			}
			m[name] = word
		}
		out[w] = m
	}
	return out
}

// Exhaustive returns every assignment over the inputs, packed 64 per
// word. It refuses more than 20 inputs (2^20 patterns).
func Exhaustive(pis []string) ([]map[string]uint64, error) {
	n := len(pis)
	if n > 20 {
		return nil, fmt.Errorf("testgen: %d inputs is too many for exhaustive patterns", n)
	}
	total := uint64(1) << n
	words := int((total + 63) / 64)
	out := make([]map[string]uint64, words)
	for w := 0; w < words; w++ {
		m := make(map[string]uint64, n)
		base := uint64(w) * 64
		for i, name := range pis {
			var word uint64
			for p := uint64(0); p < 64 && base+p < total; p++ {
				if (base+p)&(1<<i) != 0 {
					word |= 1 << p
				}
			}
			m[name] = word
		}
		out[w] = m
	}
	return out, nil
}

// LFSR produces a maximal-ish pseudo-random bit sequence from a 64-bit
// Fibonacci LFSR; used to build long sequential stimulus cheaply and
// reproducibly (hardware pattern generators are LFSRs too).
type LFSR struct {
	state uint64
}

// NewLFSR seeds the generator; a zero seed is replaced to avoid lock-up.
func NewLFSR(seed uint64) *LFSR {
	if seed == 0 {
		seed = 0x1d872b41c3f0aa5
	}
	return &LFSR{state: seed}
}

// Next returns the next 64-bit word of the sequence.
func (l *LFSR) Next() uint64 {
	// Taps 64,63,61,60 (primitive over GF(2)).
	s := l.state
	for i := 0; i < 64; i++ {
		bit := ((s >> 63) ^ (s >> 62) ^ (s >> 60) ^ (s >> 59)) & 1
		s = s<<1 | bit
	}
	l.state = s
	return s
}

// Sequence returns a clocked stimulus: length cycles of patterns for the
// named inputs, from an LFSR stream.
func Sequence(pis []string, length int, seed uint64) []map[string]uint64 {
	l := NewLFSR(seed)
	out := make([]map[string]uint64, length)
	for c := range out {
		m := make(map[string]uint64, len(pis))
		for _, name := range pis {
			m[name] = l.Next()
		}
		out[c] = m
	}
	return out
}

// Holding returns stimulus where selected inputs are held at fixed values
// while the rest are random — the pattern shape used with control points
// (hold the force inputs, randomize the functional ones).
func Holding(pis []string, hold map[string]uint64, nWords int, seed int64) []map[string]uint64 {
	pats := Random(pis, nWords, seed)
	for _, m := range pats {
		for k, v := range hold {
			m[k] = v
		}
	}
	return pats
}
