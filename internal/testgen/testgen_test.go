package testgen

import (
	"testing"
)

func TestRandomDeterministic(t *testing.T) {
	pis := []string{"a", "b", "c"}
	p1 := Random(pis, 4, 9)
	p2 := Random(pis, 4, 9)
	if len(p1) != 4 {
		t.Fatalf("got %d words", len(p1))
	}
	for i := range p1 {
		for _, k := range pis {
			if p1[i][k] != p2[i][k] {
				t.Fatal("same seed differs")
			}
		}
	}
	p3 := Random(pis, 4, 10)
	same := true
	for i := range p1 {
		for _, k := range pis {
			if p1[i][k] != p3[i][k] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestWeightedBias(t *testing.T) {
	pis := []string{"x"}
	heavy := Weighted(pis, 50, 0.9, 1)
	light := Weighted(pis, 50, 0.1, 1)
	count := func(ps []map[string]uint64) int {
		n := 0
		for _, m := range ps {
			w := m["x"]
			for b := 0; b < 64; b++ {
				if w&(1<<b) != 0 {
					n++
				}
			}
		}
		return n
	}
	h, l := count(heavy), count(light)
	if h <= l*3 {
		t.Fatalf("bias not visible: p=0.9 gave %d ones, p=0.1 gave %d", h, l)
	}
}

func TestExhaustiveCoversAll(t *testing.T) {
	pis := []string{"a", "b", "c"}
	pats, err := Exhaustive(pis)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats) != 1 {
		t.Fatalf("8 patterns should fit one word, got %d", len(pats))
	}
	seen := make(map[uint64]bool)
	for p := uint64(0); p < 8; p++ {
		var v uint64
		for i := range pis {
			if pats[0][pis[i]]&(1<<p) != 0 {
				v |= 1 << i
			}
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d distinct assignments among first 8 patterns", len(seen))
	}
	// Width guard.
	wide := make([]string, 21)
	for i := range wide {
		wide[i] = string(rune('a' + i))
	}
	if _, err := Exhaustive(wide); err == nil {
		t.Fatal("21 inputs accepted")
	}
	// Multi-word case.
	seven := []string{"a", "b", "c", "d", "e", "f", "g"}
	pats7, err := Exhaustive(seven)
	if err != nil {
		t.Fatal(err)
	}
	if len(pats7) != 2 {
		t.Fatalf("128 patterns should take 2 words, got %d", len(pats7))
	}
}

func TestLFSRPeriodAndDeterminism(t *testing.T) {
	l1 := NewLFSR(5)
	l2 := NewLFSR(5)
	seen := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		a, b := l1.Next(), l2.Next()
		if a != b {
			t.Fatal("same seed differs")
		}
		seen[a] = true
	}
	if len(seen) < 190 {
		t.Fatalf("LFSR repeats too quickly: %d distinct of 200", len(seen))
	}
	z := NewLFSR(0)
	if z.Next() == 0 {
		t.Fatal("zero seed locked up")
	}
}

func TestSequenceShape(t *testing.T) {
	seq := Sequence([]string{"a", "b"}, 10, 3)
	if len(seq) != 10 {
		t.Fatalf("length %d", len(seq))
	}
	for _, m := range seq {
		if len(m) != 2 {
			t.Fatal("missing inputs")
		}
	}
}

func TestHoldingPinsValues(t *testing.T) {
	pats := Holding([]string{"a", "sel"}, map[string]uint64{"sel": 0xffff}, 5, 2)
	for _, m := range pats {
		if m["sel"] != 0xffff {
			t.Fatal("held input not held")
		}
	}
}
