package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
)

// FuzzDecodeRecord hammers the journal record decoder — the second
// untrusted-input surface of the repository (journal files may arrive
// from older versions, other machines, or a corrupting disk). The
// invariants: DecodeRecord never panics, never over-consumes, reports
// every non-decodable input as ErrTorn or ErrCorrupt, and everything it
// does decode survives a re-encode → re-decode round trip.
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range []Record{
		{Seq: 1, Kind: KindSubmit, ID: "c000001", Spec: json.RawMessage(`{"design":"9sym","fault_seed":1}`)},
		{Seq: 2, Kind: KindStart, ID: "c000001", TimeUs: 1234567},
		{Seq: 3, Kind: KindDone, ID: "c000001", Result: json.RawMessage(`{"digest":"deadbeef","clean":true}`)},
		{Seq: 4, Kind: KindFailed, ID: "c000002", Error: "synth exploded"},
		{Seq: 5, Kind: KindBlob, ID: "netlist/c880", Blob: "ab12cd34", BlobKind: "netlist"},
		{Seq: 6, Kind: KindRequeue, ID: "c000009"},
	} {
		buf, err := EncodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)/2]) // torn shape
		mut := append([]byte(nil), buf...)
		mut[9] ^= 0xff // CRC damage
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add([]byte("FJ1\n garbage that is not a framed record"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error outside the taxonomy: %v", err)
			}
			if n != 0 {
				t.Fatalf("failed decode consumed %d bytes", n)
			}
			return
		}
		if n < headerBytes || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		// Round trip: what decoded must encode and decode to the same
		// record. (Encoding canonicalizes JSON key order, so compare the
		// decoded structs, not the bytes.)
		buf, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encode of decoded record failed: %v", err)
		}
		rec2, _, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		a, _ := json.Marshal(rec)
		b, _ := json.Marshal(rec2)
		if !bytes.Equal(a, b) {
			t.Fatalf("round trip changed record:\n  in  %s\n  out %s", a, b)
		}
	})
}
