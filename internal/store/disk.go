package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DiskOptions tunes a DiskStore.
type DiskOptions struct {
	// SegmentBytes rotates the journal to a fresh segment file once the
	// current one reaches this size (default 4 MiB). Rotation bounds the
	// blast radius of a torn tail and keeps per-file scans short.
	SegmentBytes int64
	// NoSync skips the per-record fsync. Only the journal-throughput
	// benchmark's no-durability arm should set it: a crash can then lose
	// acknowledged records.
	NoSync bool
}

func (o DiskOptions) withDefaults() DiskOptions {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// DiskStore is the durable Store: an append-only checksummed journal
// under <dir>/journal (segment files, fsync on every record boundary)
// plus content-addressed blob files under <dir>/blobs. Opening scans the
// journal, truncates a torn tail left by a crash and fails loudly on
// genuine corruption, so Recover after OpenDisk always reflects a
// consistent record prefix.
type DiskStore struct {
	dir string
	opt DiskOptions

	mu       sync.Mutex
	seg      *os.File
	segIdx   int
	segBytes int64
	segments int
	nextSeq  uint64
	recs     []Record // scanned at open + appended since
	torn     int64
	tornRecs int
	stats    Stats
	closed   bool
}

const segPrefix = "seg-"

func segName(idx int) string { return fmt.Sprintf("%s%08d.wal", segPrefix, idx) }

// SegName is the on-disk name of journal segment idx (1-based). Exported
// for crash-injection harnesses that truncate or corrupt raw segments.
func SegName(idx int) string { return segName(idx) }

// RecordBoundaries walks a raw segment buffer and returns every record
// boundary offset, starting with 0. Decoding stops at the first torn or
// corrupt record, so the last element is the clean-prefix length —
// exactly the offsets a kill-at-every-record-boundary sweep wants.
func RecordBoundaries(buf []byte) []int {
	bounds := []int{0}
	off := 0
	for off < len(buf) {
		_, n, err := DecodeRecord(buf[off:])
		if err != nil {
			break
		}
		off += n
		bounds = append(bounds, off)
	}
	return bounds
}

// OpenDisk opens (creating if needed) a durable store rooted at dir. The
// journal is scanned and repaired here: a torn tail in the last segment
// is truncated away (counted in Recover and Stats), while a checksum or
// sequence break anywhere else returns an error wrapping ErrCorrupt —
// silent data invention is never an option.
func OpenDisk(dir string, opt DiskOptions) (*DiskStore, error) {
	opt = opt.withDefaults()
	jdir := filepath.Join(dir, "journal")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &DiskStore{dir: dir, opt: opt}
	if err := d.scanJournal(jdir); err != nil {
		return nil, err
	}
	return d, nil
}

// scanJournal replays every segment in order, truncating a torn tail on
// the last one and opening it for append.
func (d *DiskStore) scanJournal(jdir string) error {
	names, err := segmentNames(jdir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return d.openSegment(1)
	}
	for i, name := range names {
		last := i == len(names)-1
		path := filepath.Join(jdir, name)
		buf, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: read journal segment: %w", err)
		}
		off := 0
		for off < len(buf) {
			rec, n, derr := DecodeRecord(buf[off:])
			if derr != nil {
				if last && errors.Is(derr, ErrTorn) {
					// The residue of a crash mid-append: drop the tail.
					d.torn = int64(len(buf) - off)
					d.tornRecs = 1
					if err := os.Truncate(path, int64(off)); err != nil {
						return fmt.Errorf("store: truncate torn tail of %s: %w", name, err)
					}
					buf = buf[:off]
					break
				}
				return fmt.Errorf("store: segment %s offset %d: %w", name, off, derr)
			}
			if rec.Seq != d.nextSeq+1 {
				return fmt.Errorf("%w: segment %s offset %d: sequence %d after %d",
					ErrCorrupt, name, off, rec.Seq, d.nextSeq)
			}
			d.nextSeq = rec.Seq
			d.recs = append(d.recs, rec)
			off += n
		}
		d.segments++
		d.stats.JournalBytes += int64(len(buf))
		if last {
			idx, _ := segmentIndex(name)
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("store: open journal segment for append: %w", err)
			}
			d.seg = f
			d.segIdx = idx
			d.segBytes = int64(len(buf))
		}
	}
	return nil
}

func segmentNames(jdir string) ([]string, error) {
	ents, err := os.ReadDir(jdir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	// Segment indices must be contiguous: a missing middle segment means a
	// missing run of records, which sequence checking would report
	// confusingly late.
	for i, name := range names {
		idx, err := segmentIndex(name)
		if err != nil {
			return nil, err
		}
		first, _ := segmentIndex(names[0])
		if idx != first+i {
			return nil, fmt.Errorf("%w: journal segment %s breaks the contiguous chain", ErrCorrupt, name)
		}
	}
	return names, nil
}

func segmentIndex(name string) (int, error) {
	num := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), ".wal")
	idx, err := strconv.Atoi(num)
	if err != nil || idx <= 0 {
		return 0, fmt.Errorf("%w: malformed journal segment name %q", ErrCorrupt, name)
	}
	return idx, nil
}

// openSegment creates segment idx and makes it current.
func (d *DiskStore) openSegment(idx int) error {
	path := filepath.Join(d.dir, "journal", segName(idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: create journal segment: %w", err)
	}
	if d.seg != nil {
		d.seg.Close()
	}
	d.seg = f
	d.segIdx = idx
	d.segBytes = 0
	d.segments++
	syncDir(filepath.Join(d.dir, "journal"))
	return nil
}

// Append implements Store: encode, write, fsync, rotate.
func (d *DiskStore) Append(rec Record) (uint64, error) {
	if err := validateAppend(rec); err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, fmt.Errorf("store: append to closed store")
	}
	rec.Seq = d.nextSeq + 1
	if rec.TimeUs == 0 {
		rec.TimeUs = time.Now().UnixMicro()
	}
	buf, err := EncodeRecord(rec)
	if err != nil {
		return 0, err
	}
	if _, err := d.seg.Write(buf); err != nil {
		return 0, fmt.Errorf("store: journal append: %w", err)
	}
	if !d.opt.NoSync {
		if err := d.seg.Sync(); err != nil {
			return 0, fmt.Errorf("store: journal sync: %w", err)
		}
	}
	d.nextSeq = rec.Seq
	d.recs = append(d.recs, rec)
	d.segBytes += int64(len(buf))
	d.stats.Appends++
	d.stats.JournalBytes += int64(len(buf))
	if d.segBytes >= d.opt.SegmentBytes {
		// The record is already written, fsynced, and applied, so a
		// rotation failure must not fail the append — the caller would
		// count a journal error for a record that is durable and will
		// replay on recovery. openSegment leaves the current segment in
		// place on failure, so appends keep landing in the oversized
		// segment and rotation is retried on the next append.
		_ = d.openSegment(d.segIdx + 1)
	}
	return rec.Seq, nil
}

// Recover implements Store.
func (d *DiskStore) Recover() (*Recovery, error) {
	d.mu.Lock()
	recs := append([]Record(nil), d.recs...)
	torn, tornRecs := d.torn, d.tornRecs
	d.mu.Unlock()
	rec := Fold(recs)
	rec.TornBytes = torn
	rec.TornRecords = tornRecs
	return rec, nil
}

// Stats implements Store.
func (d *DiskStore) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := d.stats
	st.Records = len(d.recs)
	st.Segments = d.segments
	st.TornBytes = d.torn
	return st
}

// Close implements Store.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var err error
	if d.seg != nil {
		if !d.opt.NoSync {
			err = d.seg.Sync()
		}
		if cerr := d.seg.Close(); err == nil {
			err = cerr
		}
		d.seg = nil
	}
	return err
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// syncDir fsyncs a directory so file creations and renames inside it
// survive a crash. Best-effort: not every filesystem supports it.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync() //nolint:errcheck // advisory
		f.Close()
	}
}
