package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Seq: 1, Kind: KindSubmit, ID: "c000001", TimeUs: 1111, Spec: json.RawMessage(`{"design":"9sym","fault_seed":1}`)},
		{Seq: 2, Kind: KindStart, ID: "c000001", TimeUs: 2222},
		{Seq: 3, Kind: KindBlob, ID: "netlist/9sym", Blob: "ab12", BlobKind: "netlist"},
		{Seq: 4, Kind: KindDone, ID: "c000001", TimeUs: 3333, Result: json.RawMessage(`{"digest":"deadbeef"}`)},
		{Seq: 5, Kind: KindSubmit, ID: "c000002", Spec: json.RawMessage(`{"design":"styr"}`)},
		{Seq: 6, Kind: KindFailed, ID: "c000002", Error: "synth exploded"},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords() {
		buf, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", rec, err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		a, _ := json.Marshal(rec)
		b, _ := json.Marshal(got)
		if string(a) != string(b) {
			t.Fatalf("round trip changed record:\n  in  %s\n  out %s", a, b)
		}
	}
}

func TestRecordDecodeStream(t *testing.T) {
	var stream []byte
	recs := sampleRecords()
	for _, rec := range recs {
		buf, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, buf...)
	}
	off, count := 0, 0
	for off < len(stream) {
		rec, n, err := DecodeRecord(stream[off:])
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		if rec.Seq != recs[count].Seq {
			t.Fatalf("record %d: seq %d, want %d", count, rec.Seq, recs[count].Seq)
		}
		off += n
		count++
	}
	if count != len(recs) {
		t.Fatalf("decoded %d records, want %d", count, len(recs))
	}
}

func TestRecordTornPrefixes(t *testing.T) {
	buf, err := EncodeRecord(sampleRecords()[0])
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix of a record must decode as torn — that is the
	// exact shape a crash mid-append leaves at the journal tail.
	for n := 0; n < len(buf); n++ {
		if _, _, err := DecodeRecord(buf[:n]); !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrTorn", n, len(buf), err)
		}
	}
}

func TestRecordCorruptionDetected(t *testing.T) {
	base, err := EncodeRecord(sampleRecords()[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flipping any single bit of a complete record must be detected: as
	// ErrCorrupt (magic/CRC/JSON damage) or as ErrTorn when the length
	// field now claims bytes beyond the buffer. It must never decode
	// silently.
	for i := 0; i < len(base); i++ {
		for bit := 0; bit < 8; bit++ {
			buf := append([]byte(nil), base...)
			buf[i] ^= 1 << bit
			_, _, err := DecodeRecord(buf)
			switch {
			case errors.Is(err, ErrCorrupt):
			case errors.Is(err, ErrTorn):
				if i >= 8 {
					t.Fatalf("byte %d bit %d: ErrTorn outside the length field", i, bit)
				}
			case err == nil:
				t.Fatalf("byte %d bit %d: corrupted record decoded cleanly", i, bit)
			default:
				t.Fatalf("byte %d bit %d: unexpected error %v", i, bit, err)
			}
		}
	}
}

func TestRecordAbsurdLengthRejected(t *testing.T) {
	buf, err := EncodeRecord(sampleRecords()[0])
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(buf[4:8], MaxRecordBytes+1)
	if _, _, err := DecodeRecord(buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: err = %v, want ErrCorrupt", err)
	}
}

func TestFoldLifecycle(t *testing.T) {
	recs := []Record{
		{Seq: 1, Kind: KindSubmit, ID: "a", TimeUs: 10, Spec: json.RawMessage(`{"design":"9sym"}`)},
		{Seq: 2, Kind: KindSubmit, ID: "b", TimeUs: 11, Spec: json.RawMessage(`{"design":"styr"}`)},
		{Seq: 3, Kind: KindSubmit, ID: "c", TimeUs: 12, Spec: json.RawMessage(`{"design":"c880"}`)},
		{Seq: 4, Kind: KindStart, ID: "a"},
		{Seq: 5, Kind: KindStart, ID: "b"},
		{Seq: 6, Kind: KindDone, ID: "a", TimeUs: 20, Result: json.RawMessage(`{"digest":"x"}`)},
		{Seq: 7, Kind: KindBlob, ID: "netlist/9sym", Blob: "ffff", BlobKind: "netlist"},
	}
	rec := Fold(recs)
	if rec.Records != 7 || rec.MaxSeq != 7 {
		t.Fatalf("records/maxseq = %d/%d", rec.Records, rec.MaxSeq)
	}
	want := map[string]string{"a": "done", "b": "running", "c": "queued"}
	if len(rec.Campaigns) != 3 {
		t.Fatalf("campaigns = %+v", rec.Campaigns)
	}
	for _, cs := range rec.Campaigns {
		if cs.State != want[cs.ID] {
			t.Errorf("campaign %s state = %s, want %s", cs.ID, cs.State, want[cs.ID])
		}
	}
	req := rec.Requeue()
	if len(req) != 2 || req[0].ID != "b" || req[1].ID != "c" {
		t.Fatalf("requeue = %+v", req)
	}
	if ref, ok := rec.Blobs["netlist/9sym"]; !ok || ref.Digest != "ffff" || ref.Kind != "netlist" {
		t.Fatalf("blob index = %+v", rec.Blobs)
	}
	if got := rec.Campaigns[0]; got.SubmitUs != 10 || got.FinishUs != 20 || string(got.Result) != `{"digest":"x"}` {
		t.Fatalf("done campaign = %+v", got)
	}
}

func TestFoldRequeueAndOrphans(t *testing.T) {
	recs := []Record{
		// Orphan transitions (their submit was lost to a torn tail in an
		// earlier crash) must be tolerated, not folded into ghosts.
		{Seq: 1, Kind: KindStart, ID: "ghost"},
		{Seq: 2, Kind: KindDone, ID: "ghost"},
		{Seq: 3, Kind: KindSubmit, ID: "a", Spec: json.RawMessage(`{}`)},
		{Seq: 4, Kind: KindStart, ID: "a"},
		{Seq: 5, Kind: KindRequeue, ID: "a"},
	}
	rec := Fold(recs)
	if len(rec.Campaigns) != 1 || rec.Campaigns[0].ID != "a" || rec.Campaigns[0].State != "queued" {
		t.Fatalf("fold = %+v", rec.Campaigns)
	}
}
