package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendN(t *testing.T, s Store, n int) []Record {
	t.Helper()
	var out []Record
	for i := 0; i < n; i++ {
		rec := Record{
			Kind: KindSubmit,
			ID:   fmt.Sprintf("c%06d", i+1),
			Spec: json.RawMessage(fmt.Sprintf(`{"design":"9sym","fault_seed":%d}`, i)),
		}
		seq, err := s.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		rec.Seq = seq
		out = append(out, rec)
	}
	return out
}

func TestDiskAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, d, 25)
	if _, err := d.Append(Record{Kind: KindStart, ID: "c000003"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(Record{Kind: KindStart, ID: "c000004"}); err == nil {
		t.Fatal("append after close succeeded")
	}

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 26 || rec.MaxSeq != 26 || rec.TornRecords != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	if len(rec.Campaigns) != len(want) {
		t.Fatalf("campaigns = %d, want %d", len(rec.Campaigns), len(want))
	}
	for i, cs := range rec.Campaigns {
		if cs.ID != want[i].ID {
			t.Fatalf("campaign %d = %s, want %s", i, cs.ID, want[i].ID)
		}
	}
	if st := rec.Campaigns[2].State; st != "running" {
		t.Fatalf("c000003 state = %s, want running", st)
	}
	// Appends continue the sequence chain across the reopen.
	seq, err := d2.Append(Record{Kind: KindDone, ID: "c000003"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 27 {
		t.Fatalf("seq after reopen = %d, want 27", seq)
	}
}

func TestDiskSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, d, 40)
	st := d.Stats()
	if st.Segments < 3 {
		t.Fatalf("segments = %d, want rotation past 3 (stats %+v)", st.Segments, st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) < 3 {
		t.Fatalf("journal dir has %d segment files", len(ents))
	}
	d2, err := OpenDisk(dir, DiskOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 40 {
		t.Fatalf("recovered %d records across segments, want 40", rec.Records)
	}
}

func TestDiskMissingSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, d, 30)
	d.Close()
	// Deleting a middle segment breaks the chain and must fail open.
	if err := os.Remove(filepath.Join(dir, "journal", segName(2))); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir, DiskOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open with missing segment: err = %v, want ErrCorrupt", err)
	}
}

func TestMemDiskFoldEquivalence(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	m := NewMem()
	script := []Record{
		{Kind: KindSubmit, ID: "c000001", Spec: json.RawMessage(`{"design":"9sym"}`)},
		{Kind: KindSubmit, ID: "c000002", Spec: json.RawMessage(`{"design":"styr"}`)},
		{Kind: KindStart, ID: "c000001"},
		{Kind: KindDone, ID: "c000001", Result: json.RawMessage(`{"digest":"d"}`)},
		{Kind: KindStart, ID: "c000002"},
		{Kind: KindBlob, ID: "netlist/9sym", Blob: "00ff", BlobKind: "netlist"},
	}
	for _, rec := range script {
		rec.TimeUs = 42 // pin so the folds compare byte for byte
		if _, err := d.Append(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	dr, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	mr, err := m.Recover()
	if err != nil {
		t.Fatal(err)
	}
	db, _ := json.Marshal(dr)
	mb, _ := json.Marshal(mr)
	if !bytes.Equal(db, mb) {
		t.Fatalf("disk and mem folds differ:\n  disk %s\n  mem  %s", db, mb)
	}
}

func TestBlobRoundTripBothStores(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for name, s := range map[string]Store{"disk": d, "mem": NewMem()} {
		t.Run(name, func(t *testing.T) {
			data := []byte("some spilled artifact bytes")
			dig, err := s.PutBlob("netlist", data)
			if err != nil {
				t.Fatal(err)
			}
			dig2, err := s.PutBlob("netlist", data)
			if err != nil || dig2 != dig {
				t.Fatalf("re-put: %s %v, want %s", dig2, err, dig)
			}
			got, err := s.GetBlob("netlist", dig)
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("get = %q %v", got, err)
			}
			if _, err := s.GetBlob("netlist", "0000000000000000000000000000000000000000000000000000000000000000"); err == nil {
				t.Fatal("missing blob returned without error")
			}
			st := s.Stats()
			if st.BlobPuts != 2 || st.Blobs != 1 {
				t.Fatalf("blob stats = %+v", st)
			}
		})
	}
}

func TestBlobPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("durable artifact")
	dig, err := d.PutBlob("trace", data)
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err := d2.GetBlob("trace", dig)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("blob lost across reopen: %q %v", got, err)
	}
}

func TestBlobBitRotDetected(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	dig, err := d.PutBlob("netlist", []byte("pristine content"))
	if err != nil {
		t.Fatal(err)
	}
	path := d.blobPath("netlist", dig)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GetBlob("netlist", dig); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-rotted blob: err = %v, want ErrCorrupt", err)
	}
}

func TestBlobRejectsBadKindAndDigest(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.PutBlob("../escape", []byte("x")); err == nil {
		t.Fatal("path-traversal blob kind accepted")
	}
	if _, err := d.GetBlob("netlist", "../../etc/passwd"); err == nil {
		t.Fatal("path-traversal digest accepted")
	}
	if _, err := d.GetBlob("netlist", "zz"); err == nil {
		t.Fatal("malformed digest accepted")
	}
}
