package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// MemStore is the in-memory Store: the exact pre-persistence service
// behavior (nothing survives the process), behind the same interface so
// the service, the coordinator and the differential tests can swap it
// against DiskStore record for record.
type MemStore struct {
	mu      sync.Mutex
	recs    []Record
	blobs   map[string][]byte // "kind/digest" → content
	nextSeq uint64
	stats   Stats
	closed  bool
}

// NewMem builds an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

// Append implements Store.
func (m *MemStore) Append(rec Record) (uint64, error) {
	if err := validateAppend(rec); err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, fmt.Errorf("store: append to closed store")
	}
	m.nextSeq++
	rec.Seq = m.nextSeq
	if rec.TimeUs == 0 {
		rec.TimeUs = time.Now().UnixMicro()
	}
	// Size accounting mirrors the disk framing so mem/disk stats compare.
	buf, err := EncodeRecord(rec)
	if err != nil {
		m.nextSeq--
		return 0, err
	}
	m.recs = append(m.recs, rec)
	m.stats.Appends++
	m.stats.JournalBytes += int64(len(buf))
	return rec.Seq, nil
}

// Recover implements Store.
func (m *MemStore) Recover() (*Recovery, error) {
	m.mu.Lock()
	recs := append([]Record(nil), m.recs...)
	m.mu.Unlock()
	return Fold(recs), nil
}

// PutBlob implements Store.
func (m *MemStore) PutBlob(kind string, data []byte) (string, error) {
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])
	key := kind + "/" + digest
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", fmt.Errorf("store: put blob to closed store")
	}
	m.stats.BlobPuts++
	if _, ok := m.blobs[key]; !ok {
		m.blobs[key] = append([]byte(nil), data...)
		m.stats.BlobBytes += int64(len(data))
		m.stats.Blobs++
	}
	return digest, nil
}

// GetBlob implements Store.
func (m *MemStore) GetBlob(kind, digest string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.BlobGets++
	data, ok := m.blobs[kind+"/"+digest]
	if !ok {
		return nil, fmt.Errorf("store: no blob %s/%s", kind, digest)
	}
	return append([]byte(nil), data...), nil
}

// Stats implements Store.
func (m *MemStore) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.stats
	st.Records = len(m.recs)
	return st
}

// Close implements Store.
func (m *MemStore) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}
