package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeReferenceJournal fills a single-segment disk journal with n
// records and returns the raw segment bytes plus the per-record boundary
// offsets (boundaries[i] = bytes occupied by the first i records).
func writeReferenceJournal(t *testing.T, n int) (recs []Record, raw []byte, boundaries []int) {
	t.Helper()
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{SegmentBytes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	boundaries = append(boundaries, 0)
	for i := 0; i < n; i++ {
		rec := Record{Kind: KindSubmit, ID: fmt.Sprintf("c%06d", i+1),
			Spec: json.RawMessage(fmt.Sprintf(`{"design":"9sym","fault_seed":%d}`, i))}
		if i%3 == 1 {
			rec = Record{Kind: KindStart, ID: fmt.Sprintf("c%06d", i)}
		}
		if i%3 == 2 {
			rec = Record{Kind: KindDone, ID: fmt.Sprintf("c%06d", i-1),
				Result: json.RawMessage(fmt.Sprintf(`{"digest":"%08x"}`, i))}
		}
		rec.TimeUs = int64(1000 + i)
		seq, err := d.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		rec.Seq = seq
		recs = append(recs, rec)
		st := d.Stats()
		boundaries = append(boundaries, int(st.JournalBytes))
	}
	d.Close()
	raw, err = os.ReadFile(filepath.Join(dir, "journal", segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	return recs, raw, boundaries
}

// openTruncated copies a journal prefix of cut bytes into a fresh store
// dir and opens it.
func openTruncated(t *testing.T, raw []byte, cut int) (*DiskStore, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "journal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "journal", segName(1)), raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return OpenDisk(dir, DiskOptions{})
}

// TestCrashTruncateEveryByte is the exhaustive kill-point sweep at the
// store layer: a crash can cut the journal at ANY byte offset, and
// recovery must always come back with exactly the records that were fully
// appended before the cut — no error, no invented record, no lost
// complete record.
func TestCrashTruncateEveryByte(t *testing.T) {
	recs, raw, boundaries := writeReferenceJournal(t, 24)
	fullRecords := func(cut int) int {
		n := 0
		for n+1 <= len(recs) && boundaries[n+1] <= cut {
			n++
		}
		return n
	}
	for cut := 0; cut <= len(raw); cut++ {
		d, err := openTruncated(t, raw, cut)
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		rec, err := d.Recover()
		if err != nil {
			t.Fatalf("cut %d: recover failed: %v", cut, err)
		}
		want := fullRecords(cut)
		if rec.Records != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, rec.Records, want)
		}
		if want > 0 && rec.MaxSeq != recs[want-1].Seq {
			t.Fatalf("cut %d: max seq %d, want %d", cut, rec.MaxSeq, recs[want-1].Seq)
		}
		atBoundary := boundaries[want] == cut
		if atBoundary && (rec.TornBytes != 0 || rec.TornRecords != 0) {
			t.Fatalf("cut %d: clean boundary reported torn (%+v)", cut, rec)
		}
		if !atBoundary && rec.TornBytes != int64(cut-boundaries[want]) {
			t.Fatalf("cut %d: torn bytes %d, want %d", cut, rec.TornBytes, cut-boundaries[want])
		}
		// The store must be writable after repair: the next append chains
		// onto the surviving sequence.
		seq, err := d.Append(Record{Kind: KindSubmit, ID: "c999999", Spec: json.RawMessage(`{}`)})
		if err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if want > 0 && seq != recs[want-1].Seq+1 {
			t.Fatalf("cut %d: post-recovery seq %d, want %d", cut, seq, recs[want-1].Seq+1)
		}
		d.Close()
	}
}

// TestCrashDoubleRestart pins that a second crash-and-recover on an
// already-repaired journal is stable: recover, append, cut again,
// recover again.
func TestCrashDoubleRestart(t *testing.T) {
	_, raw, boundaries := writeReferenceJournal(t, 9)
	cut := boundaries[5] + 7 // mid-record tear after 5 full records
	d, err := openTruncated(t, raw, cut)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(Record{Kind: KindSubmit, ID: "c777777", Spec: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	dir := d.Dir()
	d.Close()
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec, err := d2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Records != 6 || rec.TornRecords != 0 {
		t.Fatalf("second recovery = %+v, want 6 records and a clean tail", rec)
	}
}

// TestCrashBitRotNeverInventsRecords flips every byte of the journal (one
// at a time) and checks the safety property of the checksums: recovery
// either fails loudly with ErrCorrupt, or returns an exact prefix of the
// original record stream. It must never return a full-length stream with
// silently altered content.
func TestCrashBitRotNeverInventsRecords(t *testing.T) {
	recs, raw, _ := writeReferenceJournal(t, 12)
	wantJSON := make([]string, len(recs))
	for i, r := range recs {
		b, _ := json.Marshal(r)
		wantJSON[i] = string(b)
	}
	step := 1
	if testing.Short() {
		step = 17
	}
	for i := 0; i < len(raw); i += step {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x20
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "journal"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "journal", segName(1)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("byte %d: unexpected open error %v", i, err)
			}
			continue // corruption detected and refused: the safe outcome
		}
		rec, err := d.Recover()
		if err != nil {
			t.Fatalf("byte %d: recover after clean open: %v", i, err)
		}
		// A flip in a length field can masquerade as a torn tail, so a
		// shortened prefix is acceptable; altered content is not.
		if rec.Records > len(recs) {
			t.Fatalf("byte %d: recovered %d records from a %d-record journal", i, rec.Records, len(recs))
		}
		// Verify the surviving records are bit-identical to the originals.
		d.Close()
		d2, err := OpenDisk(d.Dir(), DiskOptions{})
		if err != nil {
			t.Fatalf("byte %d: reopen: %v", i, err)
		}
		d2.mu.Lock()
		for j, r := range d2.recs {
			b, _ := json.Marshal(r)
			if string(b) != wantJSON[j] {
				t.Fatalf("byte %d: record %d content altered:\n  got  %s\n  want %s", i, j, b, wantJSON[j])
			}
		}
		d2.mu.Unlock()
		d2.Close()
	}
}
