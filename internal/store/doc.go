// Package store is the durability layer behind the campaign service: a
// campaign journal plus a content-addressed artifact blob store, behind
// one Store interface with two implementations.
//
// MemStore keeps everything in process memory and reproduces the
// pre-persistence service behavior exactly — a restart loses the world.
// DiskStore makes the service crash-safe: every campaign lifecycle
// transition (submit, start, done/failed/canceled, requeue) is one
// checksummed record appended to a segment-rotated journal and fsynced on
// the record boundary before Append returns, and large derived artifacts
// (BLIF-encoded mapped netlists, golden reference traces) spill into
// content-addressed blob files whose digests are committed to the same
// journal. Recover replays the journal, truncates a torn tail left by a
// crash mid-append (a prefix of a record at the end of the last segment),
// rejects genuine corruption (CRC or sequence breaks) loudly, and folds
// the record stream into per-campaign final states so the service can
// requeue everything that was queued or running when the process died.
// Every pipeline stage downstream of a Spec is deterministic, so a
// requeued campaign re-runs to a bit-identical result digest.
package store
