package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
)

// Content-addressed blob files: <dir>/blobs/<kind>/<digest[:2]>/<digest>.
// Writes go through a temp file + fsync + rename so a crash never leaves
// a partially written blob under its final name, and reads re-hash the
// content so bit rot is detected rather than served.

var blobKindRe = regexp.MustCompile(`^[a-z0-9_-]{1,32}$`)

func (d *DiskStore) blobPath(kind, digest string) string {
	return filepath.Join(d.dir, "blobs", kind, digest[:2], digest)
}

// PutBlob implements Store.
func (d *DiskStore) PutBlob(kind string, data []byte) (string, error) {
	if !blobKindRe.MatchString(kind) {
		return "", fmt.Errorf("store: invalid blob kind %q", kind)
	}
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])
	path := d.blobPath(kind, digest)

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return "", fmt.Errorf("store: put blob to closed store")
	}
	d.stats.BlobPuts++
	d.mu.Unlock()

	if _, err := os.Stat(path); err == nil {
		return digest, nil // content-addressed: identical bytes already stored
	}
	bdir := filepath.Dir(path)
	if err := os.MkdirAll(bdir, 0o755); err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(bdir, ".tmp-*")
	if err != nil {
		return "", fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: write blob: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("store: sync blob: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("store: close blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("store: publish blob: %w", err)
	}
	syncDir(bdir)

	d.mu.Lock()
	d.stats.BlobBytes += int64(len(data))
	d.stats.Blobs++
	d.mu.Unlock()
	return digest, nil
}

// GetBlob implements Store. The content is re-hashed before it is
// returned: a flipped bit in a spilled artifact surfaces as ErrCorrupt,
// never as a silently wrong netlist or trace.
func (d *DiskStore) GetBlob(kind, digest string) ([]byte, error) {
	if !blobKindRe.MatchString(kind) {
		return nil, fmt.Errorf("store: invalid blob kind %q", kind)
	}
	if len(digest) != 2*sha256.Size || !isHex(digest) {
		return nil, fmt.Errorf("store: invalid blob digest %q", digest)
	}
	d.mu.Lock()
	d.stats.BlobGets++
	d.mu.Unlock()
	data, err := os.ReadFile(d.blobPath(kind, digest))
	if err != nil {
		return nil, fmt.Errorf("store: no blob %s/%s: %w", kind, digest, err)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != digest {
		return nil, fmt.Errorf("%w: blob %s/%s content hashes to %s", ErrCorrupt, kind, digest, got)
	}
	return data, nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
