package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record kinds. The journal is a flat stream of campaign lifecycle
// transitions plus blob-index entries; Fold reduces it to per-campaign
// final states.
const (
	// KindSubmit records a campaign entering the queue; Spec carries the
	// validated spec JSON.
	KindSubmit = "submit"
	// KindStart records a worker picking the campaign up.
	KindStart = "start"
	// KindDone / KindFailed / KindCanceled are the terminal transitions;
	// Done carries the Result JSON, Failed and Canceled the error text.
	KindDone     = "done"
	KindFailed   = "failed"
	KindCanceled = "canceled"
	// KindRequeue records a recovery putting a non-terminal campaign back
	// in the queue after a restart.
	KindRequeue = "requeue"
	// KindBlob indexes a content-addressed artifact: ID is the logical
	// name (e.g. "netlist/c880"), Blob the content digest, BlobKind the
	// blob namespace.
	KindBlob = "blob"
)

// Record is one journal entry. Seq and TimeUs are assigned by Append.
type Record struct {
	Seq      uint64          `json:"seq"`
	Kind     string          `json:"kind"`
	ID       string          `json:"id,omitempty"`
	TimeUs   int64           `json:"time_us,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	Error    string          `json:"error,omitempty"`
	Blob     string          `json:"blob,omitempty"`
	BlobKind string          `json:"blob_kind,omitempty"`
}

// On-disk framing: a fixed 12-byte header followed by the JSON payload.
//
//	[0:4)  magic  "FJ1\n" (little-endian uint32)
//	[4:8)  payload length (little-endian uint32)
//	[8:12) CRC-32C (Castagnoli) of the payload
//
// The header CRC covers only the payload; a record is valid iff the magic
// matches, the length is sane, the full payload is present and the CRC
// agrees. A crash mid-append leaves a strict prefix of one record at the
// end of the last segment — DecodeRecord reports that as ErrTorn, which
// recovery truncates. Anything else (bad magic, absurd length, CRC
// mismatch with the full payload present) is ErrCorrupt: bit rot or an
// overwrite, never the residue of a clean crash.
const (
	recordMagic = uint32('F') | uint32('J')<<8 | uint32('1')<<16 | uint32('\n')<<24
	headerBytes = 12
	// MaxRecordBytes bounds one record's payload; a corrupt length field
	// must not drive a multi-gigabyte allocation.
	MaxRecordBytes = 16 << 20
)

var (
	// ErrTorn marks an incomplete record at the end of a buffer: the bytes
	// present are a valid prefix shape but the record does not fit. A
	// crash mid-append produces exactly this.
	ErrTorn = errors.New("store: torn journal record")
	// ErrCorrupt marks a record that is present but wrong: bad magic, an
	// out-of-range length, a CRC mismatch, or a broken sequence chain.
	ErrCorrupt = errors.New("store: corrupt journal record")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeRecord frames a record for the journal.
func EncodeRecord(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encode record: %w", err)
	}
	if len(payload) > MaxRecordBytes {
		return nil, fmt.Errorf("store: record payload %d bytes exceeds max %d", len(payload), MaxRecordBytes)
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], recordMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[8:12], crc32.Checksum(payload, castagnoli))
	copy(buf[headerBytes:], payload)
	return buf, nil
}

// DecodeRecord decodes the first record in buf, returning the record and
// the bytes consumed. ErrTorn means buf ends inside the record (more
// bytes could complete it); ErrCorrupt means the bytes present cannot be
// a valid record regardless of what follows.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < headerBytes {
		return Record{}, 0, ErrTorn
	}
	if magic := binary.LittleEndian.Uint32(buf[0:4]); magic != recordMagic {
		return Record{}, 0, fmt.Errorf("%w: bad magic %#08x", ErrCorrupt, magic)
	}
	n := binary.LittleEndian.Uint32(buf[4:8])
	if n > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: payload length %d exceeds max %d", ErrCorrupt, n, MaxRecordBytes)
	}
	if len(buf) < headerBytes+int(n) {
		return Record{}, 0, ErrTorn
	}
	payload := buf[headerBytes : headerBytes+int(n)]
	want := binary.LittleEndian.Uint32(buf[8:12])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return Record{}, 0, fmt.Errorf("%w: payload CRC %#08x != header %#08x", ErrCorrupt, got, want)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, fmt.Errorf("%w: payload JSON: %v", ErrCorrupt, err)
	}
	return rec, headerBytes + int(n), nil
}
