package store

import (
	"encoding/json"
	"fmt"
)

// Store is the persistence contract of the campaign service: an
// append-only journal of lifecycle records plus a content-addressed blob
// store for spilled artifacts. Implementations are safe for concurrent
// use.
type Store interface {
	// Append assigns the next sequence number, durably records rec and
	// returns the sequence. The record is recoverable when Append returns.
	Append(rec Record) (uint64, error)
	// Recover folds every record seen so far (including a prior process's
	// journal for durable stores) into per-campaign final states.
	Recover() (*Recovery, error)
	// PutBlob stores content-addressed bytes under a kind namespace and
	// returns the content digest (sha256 hex). Storing identical content
	// twice is a cheap no-op.
	PutBlob(kind string, data []byte) (string, error)
	// GetBlob returns the bytes for a digest, verifying content integrity;
	// a missing blob or a digest mismatch is an error.
	GetBlob(kind, digest string) ([]byte, error)
	// Stats snapshots journal and blob counters.
	Stats() Stats
	// Close releases resources; Append after Close errors.
	Close() error
}

// CampaignState is one campaign's folded journal outcome.
type CampaignState struct {
	ID   string          `json:"id"`
	Spec json.RawMessage `json:"spec"`
	// State is the last lifecycle transition: "queued" (submit/requeue
	// without start), "running" (started, never finished), or the terminal
	// "done"/"failed"/"canceled".
	State  string          `json:"state"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// SubmitUs and FinishUs are the journal timestamps of the submit and
	// terminal records (microseconds since the Unix epoch; 0 if absent).
	SubmitUs int64 `json:"submit_us,omitempty"`
	FinishUs int64 `json:"finish_us,omitempty"`
}

// Terminal reports whether the folded state is final.
func (cs *CampaignState) Terminal() bool {
	return cs.State == "done" || cs.State == "failed" || cs.State == "canceled"
}

// BlobRef names one spilled artifact in the journal's blob index.
type BlobRef struct {
	Kind   string `json:"kind"`
	Digest string `json:"digest"`
}

// Recovery is the folded journal: the inputs a restarting service needs
// to rebuild its world.
type Recovery struct {
	// Campaigns in submit order. Non-terminal entries (queued, running)
	// are the crash casualties the service must requeue.
	Campaigns []CampaignState
	// Blobs maps logical artifact names to their content-addressed blobs.
	Blobs map[string]BlobRef
	// Records is the number of valid journal records folded; MaxSeq the
	// highest sequence seen.
	Records int
	MaxSeq  uint64
	// TornBytes counts bytes dropped from a torn tail at open (disk
	// stores only); TornRecords the incomplete records discarded (0 or 1
	// per crash).
	TornBytes   int64
	TornRecords int
}

// Requeue returns the non-terminal campaigns, in submit order.
func (r *Recovery) Requeue() []CampaignState {
	var out []CampaignState
	for _, cs := range r.Campaigns {
		if !cs.Terminal() {
			out = append(out, cs)
		}
	}
	return out
}

// Stats counts store activity since open.
type Stats struct {
	Records      int   `json:"records"`
	Appends      int64 `json:"appends"`
	JournalBytes int64 `json:"journal_bytes"`
	Segments     int   `json:"segments"`
	TornBytes    int64 `json:"torn_bytes,omitempty"`
	BlobPuts     int64 `json:"blob_puts"`
	BlobGets     int64 `json:"blob_gets"`
	BlobBytes    int64 `json:"blob_bytes"`
	Blobs        int   `json:"blobs"`
}

// Fold reduces a record stream to the recovery view. Records must be in
// journal order; unknown kinds are ignored (forward compatibility), and
// transitions for never-submitted campaigns are tolerated (their submit
// may have been truncated with a torn tail — the campaign is simply
// unrecoverable and dropped).
func Fold(recs []Record) *Recovery {
	rec := &Recovery{Blobs: make(map[string]BlobRef)}
	byID := make(map[string]int)
	for i := range recs {
		r := &recs[i]
		rec.Records++
		if r.Seq > rec.MaxSeq {
			rec.MaxSeq = r.Seq
		}
		switch r.Kind {
		case KindSubmit:
			if _, dup := byID[r.ID]; dup {
				continue // duplicate submit: first wins
			}
			byID[r.ID] = len(rec.Campaigns)
			rec.Campaigns = append(rec.Campaigns, CampaignState{
				ID: r.ID, Spec: r.Spec, State: "queued", SubmitUs: r.TimeUs,
			})
		case KindStart:
			if i, ok := byID[r.ID]; ok && !rec.Campaigns[i].Terminal() {
				rec.Campaigns[i].State = "running"
			}
		case KindRequeue:
			if i, ok := byID[r.ID]; ok && !rec.Campaigns[i].Terminal() {
				rec.Campaigns[i].State = "queued"
			}
		case KindDone, KindFailed, KindCanceled:
			if i, ok := byID[r.ID]; ok {
				cs := &rec.Campaigns[i]
				cs.State = r.Kind
				cs.Result = r.Result
				cs.Error = r.Error
				cs.FinishUs = r.TimeUs
			}
		case KindBlob:
			rec.Blobs[r.ID] = BlobRef{Kind: r.BlobKind, Digest: r.Blob}
		}
	}
	return rec
}

// validateAppend rejects records no implementation should journal.
func validateAppend(rec Record) error {
	switch rec.Kind {
	case KindSubmit, KindStart, KindDone, KindFailed, KindCanceled, KindRequeue, KindBlob:
	default:
		return fmt.Errorf("store: append of unknown record kind %q", rec.Kind)
	}
	if rec.Kind != KindBlob && rec.ID == "" {
		return fmt.Errorf("store: append of %s record without campaign id", rec.Kind)
	}
	return nil
}
