package bench

import (
	"fmt"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// bus is an ordered group of nets, LSB first.
type bus []netlist.NetID

// bld wraps a netlist with structural-RTL helpers. Cell names carry
// hierarchical paths ("mips/alu/add7") that package eco's back-annotation
// tree parses.
type bld struct {
	nl  *netlist.Netlist
	seq int
}

func newBld(name string) *bld {
	return &bld{nl: netlist.New(name)}
}

func (b *bld) fresh(prefix string) netlist.NetID {
	b.seq++
	return b.nl.AddNet(fmt.Sprintf("%s.%d", prefix, b.seq))
}

// lut creates a LUT cell computing f over the inputs and returns its
// output net.
func (b *bld) lut(name string, f logic.Cover, in ...netlist.NetID) netlist.NetID {
	out := b.fresh(name)
	b.nl.MustAddLUT(name, f, in, out)
	return out
}

// dff creates a flip-flop and returns its Q net.
func (b *bld) dff(name string, d netlist.NetID, init uint8) netlist.NetID {
	q := b.fresh(name + ".q")
	b.nl.MustAddDFF(name, d, q, init)
	return q
}

func (b *bld) pi(name string) netlist.NetID { return b.nl.AddPI(name) }

func (b *bld) piBus(name string, w int) bus {
	out := make(bus, w)
	for i := range out {
		out[i] = b.pi(fmt.Sprintf("%s%d", name, i))
	}
	return out
}

func (b *bld) po(net netlist.NetID) { b.nl.MarkPO(net) }

func (b *bld) poBus(v bus) {
	for _, n := range v {
		b.po(n)
	}
}

func (b *bld) not(name string, a netlist.NetID) netlist.NetID {
	return b.lut(name, logic.NotN(), a)
}

func (b *bld) and2(name string, x, y netlist.NetID) netlist.NetID {
	return b.lut(name, logic.AndN(2), x, y)
}

func (b *bld) or2(name string, x, y netlist.NetID) netlist.NetID {
	return b.lut(name, logic.OrN(2), x, y)
}

func (b *bld) xor2(name string, x, y netlist.NetID) netlist.NetID {
	return b.lut(name, logic.XorN(2), x, y)
}

// mux returns sel ? hi : lo.
func (b *bld) mux(name string, sel, lo, hi netlist.NetID) netlist.NetID {
	return b.lut(name, logic.Mux2(), sel, lo, hi)
}

// constNet returns a constant-v net.
func (b *bld) constNet(name string, v bool) netlist.NetID {
	out := b.fresh(name)
	if _, err := b.nl.AddConst(name, v, out); err != nil {
		panic(err)
	}
	return out
}

// tree reduces nets with a binary associative gate.
func (b *bld) tree(name string, gate logic.Cover, nets []netlist.NetID) netlist.NetID {
	if len(nets) == 0 {
		panic("bench: empty tree")
	}
	for len(nets) > 1 {
		var next []netlist.NetID
		for i := 0; i+1 < len(nets); i += 2 {
			next = append(next, b.lut(name, gate, nets[i], nets[i+1]))
		}
		if len(nets)%2 == 1 {
			next = append(next, nets[len(nets)-1])
		}
		nets = next
	}
	return nets[0]
}

func (b *bld) orTree(name string, nets []netlist.NetID) netlist.NetID {
	return b.tree(name, logic.OrN(2), nets)
}

func (b *bld) andTree(name string, nets []netlist.NetID) netlist.NetID {
	return b.tree(name, logic.AndN(2), nets)
}

func (b *bld) xorTree(name string, nets []netlist.NetID) netlist.NetID {
	return b.tree(name, logic.XorN(2), nets)
}

// adder builds a ripple-carry adder; returns sum and carry-out.
func (b *bld) adder(name string, x, y bus, cin netlist.NetID) (bus, netlist.NetID) {
	if len(x) != len(y) {
		panic("bench: adder width mismatch")
	}
	sum := make(bus, len(x))
	c := cin
	for i := range x {
		sum[i] = b.lut(fmt.Sprintf("%s/s%d", name, i), logic.XorN(3), x[i], y[i], c)
		c = b.lut(fmt.Sprintf("%s/c%d", name, i), logic.Maj3(), x[i], y[i], c)
	}
	return sum, c
}

// muxBus selects between two buses bit-wise.
func (b *bld) muxBus(name string, sel netlist.NetID, lo, hi bus) bus {
	out := make(bus, len(lo))
	for i := range lo {
		out[i] = b.mux(fmt.Sprintf("%s/m%d", name, i), sel, lo[i], hi[i])
	}
	return out
}

// muxN selects one of the input buses with a binary select bus (LSB
// first); inputs length must be a power of two ≥ len.
func (b *bld) muxN(name string, sel bus, inputs []bus) bus {
	cur := inputs
	for level, s := range sel {
		var next []bus
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, b.muxBus(fmt.Sprintf("%s/l%d_%d", name, level, i/2), s, cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	return cur[0]
}

// eqConst returns a net that is true when v equals k.
func (b *bld) eqConst(name string, v bus, k uint64) netlist.NetID {
	cov := logic.EqConst(len(v), k)
	return b.lut(name, cov, v...)
}

// decode returns the one-hot decode of v, n outputs.
func (b *bld) decode(name string, v bus, n int) []netlist.NetID {
	out := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		out[i] = b.eqConst(fmt.Sprintf("%s/d%d", name, i), v, uint64(i))
	}
	return out
}

// reg registers a bus (with optional enable) and returns the Q bus.
func (b *bld) reg(name string, d bus, en netlist.NetID) bus {
	q := make(bus, len(d))
	for i := range d {
		qn := b.fresh(fmt.Sprintf("%s/q%d", name, i))
		var din netlist.NetID
		if en == netlist.NilNet {
			din = d[i]
		} else {
			din = b.mux(fmt.Sprintf("%s/en%d", name, i), en, qn, d[i])
		}
		b.nl.MustAddDFF(fmt.Sprintf("%s/ff%d", name, i), din, qn, 0)
		q[i] = qn
	}
	return q
}

// done finalizes and validates the generated netlist.
func (b *bld) done() *netlist.Netlist {
	if err := b.nl.CheckDriven(); err != nil {
		panic(fmt.Sprintf("bench: generator %q produced invalid netlist: %v", b.nl.Name, err))
	}
	return b.nl
}
