package bench

import (
	"fmt"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// S9234 stands in for ISCAS-89 s9234, a mid-size sequential circuit. The
// generator builds a register-rich datapath of the same class: several
// pipelined lanes (XOR mix, ripple add, register) cross-coupled through a
// rotating feedback network, sequenced by an LFSR-derived control word and
// observed through comparators.
func S9234() *netlist.Netlist {
	const (
		lanes = 6
		width = 20
	)
	b := newBld("s9234")
	din := b.piBus("din", width)
	mode := b.piBus("mode", 2)

	// Control LFSR: width-bit, taps at fixed positions.
	ctrl := make(bus, width)
	for i := range ctrl {
		ctrl[i] = b.fresh(fmt.Sprintf("s9234/ctl%d", i))
	}
	fb := b.xorTree("s9234/ctlfb", []netlist.NetID{ctrl[width-1], ctrl[width-3], ctrl[width-4], ctrl[0]})
	for i := 0; i < width; i++ {
		var d netlist.NetID
		if i == 0 {
			d = b.xor2("s9234/ctl_in", fb, din[0])
		} else {
			d = ctrl[i-1]
		}
		init := uint8(0)
		if i%3 == 0 {
			init = 1 // non-zero start so the control stream runs
		}
		b.nl.MustAddDFF(fmt.Sprintf("s9234/ctlff%d", i), d, ctrl[i], init)
	}

	// Lanes.
	prev := din
	var laneOuts []bus
	for ln := 0; ln < lanes; ln++ {
		name := fmt.Sprintf("s9234/lane%d", ln)
		// Stage 1: XOR mix with rotated control.
		mixed := make(bus, width)
		for i := 0; i < width; i++ {
			mixed[i] = b.lut(fmt.Sprintf("%s/mix%d", name, i), logic.XorN(3),
				prev[i], ctrl[(i+ln+1)%width], prev[(i+5)%width])
		}
		// Stage 2: add rotated previous lane.
		addend := make(bus, width)
		for i := 0; i < width; i++ {
			addend[i] = prev[(i+ln*3+1)%width]
		}
		sum, cout := b.adder(name+"/add", mixed, addend, ctrl[ln%width])
		// Stage 3: mode-selected result, registered.
		sel := b.muxBus(name+"/sel", mode[ln%2], sum, mixed)
		q := b.reg(name+"/reg", sel, netlist.NilNet)
		_ = cout
		laneOuts = append(laneOuts, q)
		prev = q
	}

	// Comparators raise flags when lanes collide, plus parity observers.
	for ln := 0; ln+1 < lanes; ln++ {
		var eqs []netlist.NetID
		for i := 0; i < width; i++ {
			eqs = append(eqs, b.lut(fmt.Sprintf("s9234/cmp%d_%d", ln, i), logic.XnorN(2),
				laneOuts[ln][i], laneOuts[ln+1][i]))
		}
		b.po(b.andTree(fmt.Sprintf("s9234/eq%d", ln), eqs))
	}
	for ln := 0; ln < lanes; ln++ {
		b.po(b.xorTree(fmt.Sprintf("s9234/par%d", ln), laneOuts[ln]))
	}
	b.poBus(laneOuts[lanes-1])
	return b.done()
}
