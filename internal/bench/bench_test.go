package bench

import (
	"math/bits"
	"testing"

	"fpgadbg/internal/pack"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
)

func TestCatalogBuildsAndMaps(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog mapping is slow")
	}
	for _, d := range Catalog() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			nl := d.Build()
			if err := nl.CheckDriven(); err != nil {
				t.Fatalf("%s: %v", d.Name, err)
			}
			mapped, err := synth.TechMap(nl)
			if err != nil {
				t.Fatalf("%s: map: %v", d.Name, err)
			}
			p, err := pack.Pack(mapped)
			if err != nil {
				t.Fatalf("%s: pack: %v", d.Name, err)
			}
			st := nl.Stats()
			if (st.DFFs > 0) != d.Sequential {
				t.Fatalf("%s: sequential flag wrong (stats %v)", d.Name, st)
			}
			clbs := p.NumCLBs()
			t.Logf("%s: %v -> %d CLBs (paper: %d)", d.Name, mapped.Stats(), clbs, d.PaperCLBs)
			// The stand-ins must land in the right size class: within 3x
			// either way of the paper's count.
			if clbs*3 < d.PaperCLBs || clbs > d.PaperCLBs*3 {
				t.Errorf("%s: %d CLBs too far from paper's %d", d.Name, clbs, d.PaperCLBs)
			}
			// Mapping must preserve behaviour on random stimulus.
			mm, err := sim.Equivalent(nl, mapped, 4, 4, 99)
			if err != nil {
				t.Fatal(err)
			}
			if mm != nil {
				t.Fatalf("%s: mapping changed behaviour: %v", d.Name, mm)
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("9sym"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestNineSymExactFunction(t *testing.T) {
	nl := NineSym()
	m, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Drive all 512 assignments in 8 words of 64.
	for base := uint64(0); base < 512; base += 64 {
		in := make(map[string]uint64)
		for i := 0; i < 9; i++ {
			var w uint64
			for p := uint64(0); p < 64; p++ {
				if (base+p)&(1<<i) != 0 {
					w |= 1 << p
				}
			}
			in[nl.Nets[nl.PIs[i]].Name] = w
		}
		out, err := m.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		po := nl.Nets[nl.POs[0]].Name
		for p := uint64(0); p < 64; p++ {
			ones := bits.OnesCount64(base + p)
			want := ones >= 3 && ones <= 6
			if (out[po]&(1<<p) != 0) != want {
				t.Fatalf("9sym wrong at assignment %d", base+p)
			}
		}
	}
}

func TestC499CorrectsSingleErrors(t *testing.T) {
	nl := C499()
	m, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Encode a word: data plus matching check bits so the syndrome is 0;
	// then flip data bit 13 and expect the output to correct it.
	data := uint64(0xdeadbeef)
	var check uint64
	for j := 0; j < 8; j++ {
		par := uint64(0)
		for i := 0; i < 32; i++ {
			if (uint(i+1)>>uint(j))&1 == 1 && (data>>uint(i))&1 == 1 {
				par ^= 1
			}
		}
		check |= par << uint(j)
	}
	run := func(d, c uint64, en bool) uint64 {
		in := make(map[string]uint64)
		for i := 0; i < 32; i++ {
			in["d"+itoa(i)] = -((d >> uint(i)) & 1) // all-ones or all-zeros word
		}
		for j := 0; j < 8; j++ {
			in["c"+itoa(j)] = -((c >> uint(j)) & 1)
		}
		if en {
			in["en"] = ^uint64(0)
		} else {
			in["en"] = 0
		}
		out, err := m.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		var v uint64
		for i := 0; i < 32; i++ {
			name := ""
			for ni := range nl.Nets {
				_ = ni
			}
			// POs are in order fix0..fix31 of creation; read via PO list.
			if out[nl.Nets[nl.POs[i]].Name]&1 != 0 {
				v |= 1 << uint(i)
			}
			_ = name
		}
		return v
	}
	if got := run(data, check, true); got != data {
		t.Fatalf("clean word corrupted: %x != %x", got, data)
	}
	corrupted := data ^ (1 << 13)
	if got := run(corrupted, check, true); got != data {
		t.Fatalf("single error not corrected: %x != %x", got, data)
	}
	if got := run(corrupted, check, false); got != corrupted {
		t.Fatalf("disabled corrector altered data: %x != %x", got, corrupted)
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestC880ALUOps(t *testing.T) {
	nl := C880()
	m, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	run := func(a, b uint64, cin bool, op uint64) uint64 {
		in := make(map[string]uint64)
		for i := 0; i < 8; i++ {
			in["a"+itoa(i)] = -((a >> uint(i)) & 1)
			in["b"+itoa(i)] = -((b >> uint(i)) & 1)
		}
		for i := 0; i < 3; i++ {
			in["op"+itoa(i)] = -((op >> uint(i)) & 1)
		}
		if cin {
			in["cin"] = ^uint64(0)
		} else {
			in["cin"] = 0
		}
		out, err := m.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		var v uint64
		for i := 0; i < 8; i++ {
			if out[nl.Nets[nl.POs[i]].Name]&1 != 0 {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	cases := []struct {
		a, b uint64
		op   uint64
		want uint64
	}{
		{0x35, 0x4a, 0, (0x35 + 0x4a) & 0xff}, // add
		{0x90, 0x0f, 1, (0x90 - 0x0f) & 0xff}, // sub
		{0xf0, 0x3c, 2, 0xf0 & 0x3c},          // and
		{0xf0, 0x3c, 3, 0xf0 | 0x3c},          // or
		{0xf0, 0x3c, 4, 0xf0 ^ 0x3c},          // xor
		{0xf0, 0x3c, 5, (^(0xf0 | 0x3c)) & 0xff},
		{0x41, 0x00, 6, 0x82}, // shl
		{0x5a, 0xff, 7, 0x5a}, // pass
	}
	for _, tc := range cases {
		if got := run(tc.a, tc.b, false, tc.op); got != tc.want {
			t.Errorf("op %d: %02x ? %02x = %02x, want %02x", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestFSMsAreDeterministicAndAlive(t *testing.T) {
	for _, d := range []Info{{Name: "styr", Build: Styr}, {Name: "sand", Build: Sand}, {Name: "planet1", Build: Planet1}} {
		a := d.Build()
		b := d.Build()
		if a.Stats() != b.Stats() {
			t.Fatalf("%s: generator not deterministic", d.Name)
		}
		// The FSM must actually move: outputs change over a random run.
		m, err := sim.Compile(a)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		in := make(map[string]uint64)
		for _, pi := range a.PIs {
			in[a.Nets[pi].Name] = 0xAAAA5555CCCC3333
		}
		for cyc := 0; cyc < 16; cyc++ {
			out, err := m.Step(in)
			if err != nil {
				t.Fatal(err)
			}
			key := ""
			for _, po := range a.POs {
				if out[a.Nets[po].Name]&1 != 0 {
					key += "1"
				} else {
					key += "0"
				}
			}
			seen[key] = true
		}
		if len(seen) < 2 {
			t.Fatalf("%s: outputs never changed over 16 cycles", d.Name)
		}
	}
}

func TestMIPSExecutesAdd(t *testing.T) {
	nl := MIPS()
	m, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	// All registers start at 0; an add producing 0 keeps outputs 0; the
	// PC must advance each cycle with run=1.
	in := make(map[string]uint64)
	for _, pi := range nl.PIs {
		in[nl.Nets[pi].Name] = 0
	}
	in["run"] = ^uint64(0)
	pcNames := []string{}
	for _, po := range nl.POs {
		name := nl.Nets[po].Name
		if len(name) >= 7 && name[:7] == "mips/pc" {
			pcNames = append(pcNames, name)
		}
	}
	if len(pcNames) == 0 {
		t.Fatal("no PC outputs found")
	}
	read := func(out map[string]uint64) uint64 {
		var v uint64
		for i, n := range pcNames {
			if out[n]&1 != 0 {
				v |= 1 << uint(i)
			}
		}
		return v
	}
	out, _ := m.Step(in)
	pc0 := read(out)
	out, _ = m.Step(in)
	pc1 := read(out)
	out, _ = m.Step(in)
	pc2 := read(out)
	if pc1 != pc0+1 || pc2 != pc1+1 {
		t.Fatalf("PC not incrementing: %d %d %d", pc0, pc1, pc2)
	}
	// With run=0 the PC freezes.
	in["run"] = 0
	out, _ = m.Step(in)
	pc3 := read(out)
	out, _ = m.Step(in)
	pc4 := read(out)
	if pc4 != pc3 {
		t.Fatalf("PC moved while halted: %d -> %d", pc3, pc4)
	}
}

func TestDESIsPermutationish(t *testing.T) {
	// A Feistel network is a bijection: two different inputs give two
	// different outputs, and every output bit depends on inputs.
	nl := DES()
	m, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed uint64) string {
		in := make(map[string]uint64)
		for _, pi := range nl.PIs {
			seed = seed*6364136223846793005 + 1442695040888963407
			in[nl.Nets[pi].Name] = seed
		}
		out, err := m.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, po := range nl.POs {
			if out[nl.Nets[po].Name]&1 != 0 {
				s += "1"
			} else {
				s += "0"
			}
		}
		return s
	}
	a, b, c := run(1), run(2), run(1)
	if a != c {
		t.Fatal("DES not deterministic")
	}
	if a == b {
		t.Fatal("different inputs gave identical outputs")
	}
}
