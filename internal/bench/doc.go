// Package bench generates the paper's nine benchmark designs. The MCNC /
// ISCAS distribution files are not available offline, so each design is
// rebuilt as a deterministic generator of the same function class and
// approximate size (see DESIGN.md §3 for the substitution argument):
//
//	9sym    – the exact MCNC function: 9-input symmetric, true for 3..6 ones
//	c499    – single-error-correcting Hamming decoder (XOR network), 41 in / 32 out
//	c880    – 8-bit ALU with flags
//	styr    – Moore FSM, 30 states / 9 in / 10 out (MCNC parameters)
//	sand    – Moore FSM, 32 states / 11 in / 9 out
//	planet1 – Moore FSM, 48 states / 7 in / 19 out
//	s9234   – synthetic sequential datapath (pipelines + LFSR control)
//	mips    – MIPS-subset register-file datapath (BYU core stand-in)
//	des     – key-specific DES round logic, unrolled (Leonard/Mangione-Smith stand-in)
//
// Every generator is deterministic; sizes are tuned so the packed CLB
// counts land near Table 1's (measured values are recorded in
// EXPERIMENTS.md).
package bench
