package bench

import (
	"testing"

	"fpgadbg/internal/blif"
	"fpgadbg/internal/sim"
)

// TestBenchmarksSurviveBLIF writes generated designs out as BLIF, parses
// them back through the from-scratch reader, and checks behavioural
// equivalence — the full exercise of the parsing path MCNC designs would
// take.
func TestBenchmarksSurviveBLIF(t *testing.T) {
	for _, name := range []string{"9sym", "c880", "styr"} {
		info, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		nl := info.Build()
		text, err := blif.ToString(nl)
		if err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		back, err := blif.ParseString(text)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := back.CheckDriven(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		mm, err := sim.Equivalent(nl, back, 6, 6, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mm != nil {
			t.Fatalf("%s: BLIF roundtrip changed behaviour: %v", name, mm)
		}
	}
}
