package bench

import (
	"fmt"
	"sort"

	"fpgadbg/internal/netlist"
)

// Info describes one benchmark design.
type Info struct {
	Name string
	// PaperCLBs is the CLB count Table 1 reports.
	PaperCLBs int
	// Sequential reports whether the design holds state.
	Sequential bool
	Build      func() *netlist.Netlist
}

// Catalog lists the paper's designs in Table 1 order.
func Catalog() []Info {
	return []Info{
		{Name: "9sym", PaperCLBs: 56, Sequential: false, Build: NineSym},
		{Name: "styr", PaperCLBs: 98, Sequential: true, Build: Styr},
		{Name: "sand", PaperCLBs: 100, Sequential: true, Build: Sand},
		{Name: "c499", PaperCLBs: 115, Sequential: false, Build: C499},
		{Name: "planet1", PaperCLBs: 115, Sequential: true, Build: Planet1},
		{Name: "c880", PaperCLBs: 135, Sequential: false, Build: C880},
		{Name: "s9234", PaperCLBs: 235, Sequential: true, Build: S9234},
		{Name: "MIPS R2000", PaperCLBs: 900, Sequential: true, Build: MIPS},
		{Name: "DES", PaperCLBs: 1050, Sequential: false, Build: DES},
	}
}

// ByName returns a design generator by (case-sensitive) name.
func ByName(name string) (Info, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	var names []string
	for _, d := range Catalog() {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return Info{}, fmt.Errorf("bench: unknown design %q (have %v)", name, names)
}
