package bench

import (
	"fmt"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// MIPS stands in for the BYU MIPS R2000 FPGA core: a register-file
// datapath executing a MIPS-flavoured subset — register file with two read
// ports and one write port, ALU (add/sub/and/or/xor/slt), immediate path
// with sign extension, program counter with increment/branch, and
// instruction decode. The instruction arrives as a primary input bus (the
// stand-in for instruction memory, which the original core also kept off
// chip).
//
// Parameters are tuned so the packed size approaches Table 1's 900 CLBs.
func MIPS() *netlist.Netlist {
	const (
		width = 16 // datapath width
		nreg  = 20 // architectural registers
		rbits = 5
	)
	b := newBld("mips")
	instr := b.piBus("instr", 16)
	run := b.pi("run")

	// Instruction fields.
	op := bus{instr[0], instr[1], instr[2]}    // 3-bit opcode
	rs := bus(instr[3 : 3+rbits])              // source 1
	rt := bus(instr[3+rbits : 3+2*rbits])      // source 2
	rd := bus{instr[13], instr[14], instr[15], // dest (5 bits, reuse)
		instr[3], instr[4]}
	imm := bus(instr[8:16]) // 8-bit immediate

	// Register file: nreg × width flip-flops with feedback nets.
	regs := make([]bus, nreg)
	for rI := 0; rI < nreg; rI++ {
		regs[rI] = make(bus, width)
		for i := 0; i < width; i++ {
			regs[rI][i] = b.fresh(fmt.Sprintf("mips/rf/r%d_%d", rI, i))
		}
	}

	// Read ports.
	srcA := b.muxN("mips/rf/rdA", rs, regs)
	srcB := b.muxN("mips/rf/rdB", rt, regs)

	// Sign-extended immediate.
	ext := make(bus, width)
	for i := 0; i < width; i++ {
		if i < len(imm) {
			ext[i] = imm[i]
		} else {
			ext[i] = imm[len(imm)-1]
		}
	}
	useImm := b.eqConst("mips/dec/useimm", op, 5) // opcode 5 = immediate op
	opB := b.muxBus("mips/alu/bsel", useImm, srcB, ext)

	// ALU.
	alu := buildALU(b, "mips/alu", srcA, opB, op)

	// PC: increment or branch to srcA when opcode 6 and equal.
	pc := make(bus, width)
	for i := range pc {
		pc[i] = b.fresh(fmt.Sprintf("mips/pc/q%d", i))
	}
	oneBus := make(bus, width)
	zero := b.constNet("mips/pc/zero", false)
	one := b.constNet("mips/pc/one", true)
	for i := range oneBus {
		if i == 0 {
			oneBus[i] = one
		} else {
			oneBus[i] = zero
		}
	}
	pcInc, _ := b.adder("mips/pc/inc", pc, oneBus, zero)
	var eqBits []netlist.NetID
	for i := 0; i < width; i++ {
		eqBits = append(eqBits, b.lut(fmt.Sprintf("mips/br/eq%d", i), logic.XnorN(2), srcA[i], srcB[i]))
	}
	beq := b.andTree("mips/br/taken", eqBits)
	isBranch := b.eqConst("mips/dec/branch", op, 6)
	takeBranch := b.and2("mips/br/do", isBranch, beq)
	pcNext := b.muxBus("mips/pc/next", takeBranch, pcInc, srcB)
	pcGated := b.muxBus("mips/pc/gate", run, pc, pcNext)
	for i := range pc {
		b.nl.MustAddDFF(fmt.Sprintf("mips/pc/ff%d", i), pcGated[i], pc[i], 0)
	}

	// Write-back: decoded destination register, gated by run and
	// non-branch opcodes; register 0 is hardwired zero (never written).
	wdec := b.decode("mips/rf/wdec", rd, nreg)
	notBranch := b.not("mips/dec/nb", isBranch)
	wen := b.and2("mips/rf/wen", run, notBranch)
	for rI := 1; rI < nreg; rI++ {
		en := b.and2(fmt.Sprintf("mips/rf/en%d", rI), wen, wdec[rI])
		for i := 0; i < width; i++ {
			d := b.mux(fmt.Sprintf("mips/rf/wb%d_%d", rI, i), en, regs[rI][i], alu[i])
			b.nl.MustAddDFF(fmt.Sprintf("mips/rf/ff%d_%d", rI, i), d, regs[rI][i], 0)
		}
	}
	// Register 0 stays zero.
	for i := 0; i < width; i++ {
		b.nl.MustAddDFF(fmt.Sprintf("mips/rf/ff0_%d", i), zero, regs[0][i], 0)
	}

	b.poBus(alu)
	b.poBus(pc)
	b.po(takeBranch)
	return b.done()
}

// buildALU returns op-selected arithmetic over two buses:
// 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 add (immediate form), 6 slt, 7 pass A.
func buildALU(b *bld, name string, x, y, op bus) bus {
	w := len(x)
	zero := b.constNet(name+"/zero", false)
	one := b.constNet(name+"/one", true)
	yInv := make(bus, w)
	for i := range y {
		yInv[i] = b.not(fmt.Sprintf("%s/yinv%d", name, i), y[i])
	}
	sum, _ := b.adder(name+"/add", x, y, zero)
	diff, bout := b.adder(name+"/sub", x, yInv, one)
	andB := make(bus, w)
	orB := make(bus, w)
	xorB := make(bus, w)
	for i := 0; i < w; i++ {
		andB[i] = b.and2(fmt.Sprintf("%s/and%d", name, i), x[i], y[i])
		orB[i] = b.or2(fmt.Sprintf("%s/or%d", name, i), x[i], y[i])
		xorB[i] = b.xor2(fmt.Sprintf("%s/xor%d", name, i), x[i], y[i])
	}
	slt := make(bus, w)
	sltBit := b.not(name+"/slt", bout) // borrow => x < y (unsigned)
	slt[0] = sltBit
	for i := 1; i < w; i++ {
		slt[i] = zero
	}
	results := []bus{sum, diff, andB, orB, xorB, sum, slt, x}
	return b.muxN(name+"/res", op, results)
}
