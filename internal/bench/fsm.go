package bench

import (
	"fmt"
	"math/rand"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// fsmSpec parameterizes the Moore-machine generator used for the MCNC FSM
// benchmarks. The transition structure is pseudo-random but deterministic
// per seed; state/input/output counts match the original benchmark's
// interface so the mapped sizes land in the right class.
type fsmSpec struct {
	name      string
	states    int
	inputs    int
	outputs   int
	branchFan int // distinct input-condition branches per state
	seed      int64
}

// Styr matches the MCNC styr interface: 30 states, 9 inputs, 10 outputs.
func Styr() *netlist.Netlist {
	return buildFSM(fsmSpec{name: "styr", states: 30, inputs: 9, outputs: 10, branchFan: 2, seed: 0x5717})
}

// Sand matches the MCNC sand interface: 32 states, 11 inputs, 9 outputs.
func Sand() *netlist.Netlist {
	return buildFSM(fsmSpec{name: "sand", states: 32, inputs: 11, outputs: 9, branchFan: 2, seed: 0x5a17d})
}

// Planet1 matches the MCNC planet1 interface: 48 states, 7 inputs, 19
// outputs.
func Planet1() *netlist.Netlist {
	return buildFSM(fsmSpec{name: "planet1", states: 48, inputs: 7, outputs: 19, branchFan: 1, seed: 0x91a7e7})
}

func buildFSM(spec fsmSpec) *netlist.Netlist {
	r := rand.New(rand.NewSource(spec.seed))
	b := newBld(spec.name)
	in := b.piBus("in", spec.inputs)

	sbits := 1
	for 1<<sbits < spec.states {
		sbits++
	}
	// State register with explicit feedback nets.
	state := make(bus, sbits)
	for i := range state {
		state[i] = b.fresh(fmt.Sprintf("%s/st%d", spec.name, i))
	}

	// One-hot current-state decoders.
	stEq := make([]netlist.NetID, spec.states)
	for s := 0; s < spec.states; s++ {
		stEq[s] = b.eqConst(fmt.Sprintf("%s/is%d", spec.name, s), state, uint64(s))
	}

	// Transition terms: each state has branchFan guarded branches plus a
	// default; guards test 2-3 random input bits.
	type term struct {
		active netlist.NetID
		next   int
	}
	var terms []term
	for s := 0; s < spec.states; s++ {
		var guards []netlist.NetID
		for br := 0; br < spec.branchFan; br++ {
			nCond := 2 + r.Intn(2)
			var cov logic.Cube
			perm := r.Perm(spec.inputs)
			for _, v := range perm[:nCond] {
				cov = cov.WithLit(v, r.Intn(2) == 1)
			}
			guard := b.lut(fmt.Sprintf("%s/g%d_%d", spec.name, s, br),
				logic.FromCubes(spec.inputs, cov), in...)
			act := b.and2(fmt.Sprintf("%s/t%d_%d", spec.name, s, br), stEq[s], guard)
			terms = append(terms, term{active: act, next: r.Intn(spec.states)})
			guards = append(guards, guard)
		}
		// Default branch: no guard taken.
		anyGuard := b.orTree(fmt.Sprintf("%s/any%d", spec.name, s), guards)
		noGuard := b.not(fmt.Sprintf("%s/none%d", spec.name, s), anyGuard)
		act := b.and2(fmt.Sprintf("%s/tdef%d", spec.name, s), stEq[s], noGuard)
		terms = append(terms, term{active: act, next: (s + 1) % spec.states})
	}

	// Next-state bits: OR of the active terms whose target has the bit.
	for bit := 0; bit < sbits; bit++ {
		var ors []netlist.NetID
		for _, t := range terms {
			if (t.next>>bit)&1 == 1 {
				ors = append(ors, t.active)
			}
		}
		var d netlist.NetID
		if len(ors) == 0 {
			d = b.constNet(fmt.Sprintf("%s/ns%d_zero", spec.name, bit), false)
		} else {
			d = b.orTree(fmt.Sprintf("%s/ns%d", spec.name, bit), ors)
		}
		b.nl.MustAddDFF(fmt.Sprintf("%s/ff%d", spec.name, bit), d, state[bit], 0)
	}

	// Moore outputs: OR over the states asserting each output.
	for o := 0; o < spec.outputs; o++ {
		var ors []netlist.NetID
		for s := 0; s < spec.states; s++ {
			if r.Intn(4) == 0 {
				ors = append(ors, stEq[s])
			}
		}
		if len(ors) == 0 {
			ors = append(ors, stEq[o%spec.states])
		}
		out := b.orTree(fmt.Sprintf("%s/out%d", spec.name, o), ors)
		b.po(out)
	}
	return b.done()
}
