package bench

import (
	"fmt"
	"math/rand"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// DES stands in for the key-specific DES design of Leonard and
// Mangione-Smith [8]: a Feistel network with DES's exact structure —
// 32-bit halves, a 32→48 expansion, per-round key mixing (folded to
// constants/inverters because the key is specialized, exactly as in the
// partially evaluated original), eight 6-in/4-out S-boxes per round and a
// 32-bit P permutation — unrolled for several rounds.
//
// The real S-box tables are distribution data we do not carry; the
// generator fabricates deterministic tables with DES's structural
// property (each of the four rows of every box is a permutation of
// 0..15), which preserves the logic size and depth the experiments
// measure. See DESIGN.md §3.
func DES() *netlist.Netlist {
	const rounds = 6
	r := rand.New(rand.NewSource(0xde5))
	b := newBld("des")

	left := b.piBus("l", 32)
	right := b.piBus("r", 32)

	expansion := desExpansion()
	pperm := desPPermutation(r)
	for round := 0; round < rounds; round++ {
		name := fmt.Sprintf("des/r%d", round)
		// Key-specific folding: the 48-bit round key is a constant, so
		// key mixing is a fixed inversion pattern on the expanded half.
		roundKey := r.Uint64() & (1<<48 - 1)

		// Expand right 32→48 and apply key (inverters where key bit = 1).
		expanded := make(bus, 48)
		for i := 0; i < 48; i++ {
			src := right[expansion[i]]
			if roundKey&(1<<uint(i)) != 0 {
				expanded[i] = b.not(fmt.Sprintf("%s/k%d", name, i), src)
			} else {
				expanded[i] = src
			}
		}

		// Eight S-boxes: 6 in, 4 out each.
		var sout bus
		for box := 0; box < 8; box++ {
			in6 := expanded[box*6 : box*6+6]
			tables := desSBox(r)
			for o := 0; o < 4; o++ {
				f := sboxCover(tables, o)
				sout = append(sout, b.lut(fmt.Sprintf("%s/s%d_%d", name, box, o), f, in6...))
			}
		}

		// P permutation then XOR with left.
		newRight := make(bus, 32)
		for i := 0; i < 32; i++ {
			newRight[i] = b.xor2(fmt.Sprintf("%s/x%d", name, i), left[i], sout[pperm[i]])
		}
		left, right = right, newRight
	}
	b.poBus(left)
	b.poBus(right)
	return b.done()
}

// desExpansion returns DES's E table shape: 48 selections from 32 bits
// where edge bits repeat (each 4-bit block borrows its neighbors' edge
// bits).
func desExpansion() []int {
	e := make([]int, 48)
	for block := 0; block < 8; block++ {
		base := block * 4
		e[block*6+0] = (base + 31) % 32
		for j := 0; j < 4; j++ {
			e[block*6+1+j] = base + j
		}
		e[block*6+5] = (base + 4) % 32
	}
	return e
}

// desPPermutation returns a deterministic 32-element permutation.
func desPPermutation(r *rand.Rand) []int {
	return r.Perm(32)
}

// desSBox fabricates one S-box: 4 rows (selected by bits 0 and 5), each a
// permutation of 0..15 (DES's defining structural property).
func desSBox(r *rand.Rand) [4][16]uint8 {
	var t [4][16]uint8
	for row := 0; row < 4; row++ {
		perm := r.Perm(16)
		for col, v := range perm {
			t[row][col] = uint8(v)
		}
	}
	return t
}

// sboxCover converts output bit o of an S-box table into a 6-variable
// cover. DES convention: row = bits {0,5}, column = bits {1..4}.
func sboxCover(t [4][16]uint8, o int) logic.Cover {
	tt := logic.TTFromFunc(6, func(m uint64) bool {
		row := int(m&1) | int((m>>5)&1)<<1
		col := int((m >> 1) & 0xf)
		return (t[row][col]>>uint(o))&1 == 1
	})
	return tt.ToCover()
}
