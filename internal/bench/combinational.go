package bench

import (
	"fmt"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// NineSym builds the MCNC benchmark 9sym exactly: a single output that is
// true when between 3 and 6 of the 9 inputs are true.
func NineSym() *netlist.Netlist {
	b := newBld("9sym")
	in := b.piBus("x", 9)
	f := logic.Symmetric(9, func(k int) bool { return k >= 3 && k <= 6 })
	out := b.lut("9sym/f", f, in...)
	b.po(out)
	return b.done()
}

// C499 stands in for ISCAS-85 c499 (a 41-input/32-output single-error
// correcting circuit): a Hamming-style SEC decoder. Syndrome bit j is the
// parity of received check bit j and the data bits whose (1-based)
// position has bit j set; data bit i is corrected when the syndrome
// equals i+1.
func C499() *netlist.Netlist {
	b := newBld("c499")
	const dataW = 32
	const checkW = 8
	data := b.piBus("d", dataW)
	check := b.piBus("c", checkW)
	enable := b.pi("en")

	syndrome := make(bus, checkW)
	for j := 0; j < checkW; j++ {
		taps := []netlist.NetID{check[j]}
		for i := 0; i < dataW; i++ {
			if (uint(i+1)>>uint(j))&1 == 1 {
				taps = append(taps, data[i])
			}
		}
		syndrome[j] = b.xorTree(fmt.Sprintf("c499/syn%d", j), taps)
	}
	for i := 0; i < dataW; i++ {
		hit := b.eqConst(fmt.Sprintf("c499/dec%d", i), syndrome, uint64(i+1))
		gated := b.and2(fmt.Sprintf("c499/gate%d", i), hit, enable)
		out := b.xor2(fmt.Sprintf("c499/fix%d", i), data[i], gated)
		b.po(out)
	}
	return b.done()
}

// C880 stands in for ISCAS-85 c880 (an 8-bit ALU): add, subtract,
// bitwise logic, shift and compare over two 8-bit operands, with carry,
// zero, negative and parity flags.
func C880() *netlist.Netlist {
	b := newBld("c880")
	const w = 8
	a := b.piBus("a", w)
	bb := b.piBus("b", w)
	cin := b.pi("cin")
	op := b.piBus("op", 3)

	// Operand B inverted for subtraction.
	bInv := make(bus, w)
	for i := range bb {
		bInv[i] = b.not(fmt.Sprintf("c880/binv%d", i), bb[i])
	}
	sum, cout := b.adder("c880/add", a, bb, cin)
	one := b.constNet("c880/one", true)
	diff, bout := b.adder("c880/sub", a, bInv, one)

	andB := make(bus, w)
	orB := make(bus, w)
	xorB := make(bus, w)
	norB := make(bus, w)
	shl := make(bus, w)
	for i := 0; i < w; i++ {
		andB[i] = b.and2(fmt.Sprintf("c880/and%d", i), a[i], bb[i])
		orB[i] = b.or2(fmt.Sprintf("c880/or%d", i), a[i], bb[i])
		xorB[i] = b.xor2(fmt.Sprintf("c880/xor%d", i), a[i], bb[i])
		norB[i] = b.lut(fmt.Sprintf("c880/nor%d", i), logic.NorN(2), a[i], bb[i])
		if i == 0 {
			shl[i] = b.and2(fmt.Sprintf("c880/shl%d", i), cin, one)
		} else {
			shl[i] = a[i-1]
		}
	}
	// Pass-through of A completes the 8 op codes.
	results := []bus{sum, diff, andB, orB, xorB, norB, shl, a}
	res := b.muxN("c880/res", op, results)
	b.poBus(res)

	// Flags.
	carry := b.mux("c880/carry", op[0], cout, bout)
	b.po(carry)
	nres := make([]netlist.NetID, w)
	for i := range res {
		nres[i] = res[i]
	}
	zero := b.lut("c880/zero", logic.NorN(4),
		b.orTree("c880/z0", nres[0:2]), b.orTree("c880/z1", nres[2:4]),
		b.orTree("c880/z2", nres[4:6]), b.orTree("c880/z3", nres[6:8]))
	b.po(zero)
	neg := b.lut("c880/neg", logic.BufN(), res[w-1]) // negative flag
	b.po(neg)
	parity := b.xorTree("c880/par", nres)
	b.po(parity)
	return b.done()
}
