package bitstream

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"fpgadbg/internal/core"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/route"
)

// GlobalFrame addresses the non-tile frame.
const GlobalFrame = -1

// Image is a frame-addressed configuration bitstream.
type Image struct {
	Frames map[int][]byte
}

// Size returns the total byte count.
func (im *Image) Size() int {
	n := 0
	for _, f := range im.Frames {
		n += len(f)
	}
	return n
}

// Equal compares two images frame by frame.
func (im *Image) Equal(other *Image) bool {
	if len(im.Frames) != len(other.Frames) {
		return false
	}
	for k, v := range im.Frames {
		if !bytes.Equal(v, other.Frames[k]) {
			return false
		}
	}
	return true
}

// Digest returns a stable hash of the image.
func (im *Image) Digest() string {
	keys := make([]int, 0, len(im.Frames))
	for k := range im.Frames {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	h := sha256.New()
	for _, k := range keys {
		binary.Write(h, binary.LittleEndian, int64(k))
		h.Write(im.Frames[k])
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// Full generates the complete configuration image of a layout.
func Full(l *core.Layout) (*Image, error) {
	im := &Image{Frames: make(map[int][]byte)}
	for t := range l.Tiles {
		frame, err := tileFrame(l, t)
		if err != nil {
			return nil, err
		}
		im.Frames[t] = frame
	}
	im.Frames[GlobalFrame] = globalFrame(l)
	return im, nil
}

// Partial generates the frames of the given tiles only.
func Partial(l *core.Layout, tiles []int) (*Image, error) {
	im := &Image{Frames: make(map[int][]byte)}
	for _, t := range tiles {
		if t < 0 || t >= len(l.Tiles) {
			return nil, fmt.Errorf("bitstream: no tile %d", t)
		}
		frame, err := tileFrame(l, t)
		if err != nil {
			return nil, err
		}
		im.Frames[t] = frame
	}
	return im, nil
}

// Stitch overlays a partial image onto a base image, returning the
// updated configuration (the partial-reconfiguration operation).
func Stitch(base, partial *Image) *Image {
	out := &Image{Frames: make(map[int][]byte, len(base.Frames))}
	for k, v := range base.Frames {
		out.Frames[k] = v
	}
	for k, v := range partial.Frames {
		out.Frames[k] = v
	}
	return out
}

// tileFrame serializes one tile: the CLB configurations placed inside it
// (sorted by site) and every routed edge whose both endpoints lie inside.
func tileFrame(l *core.Layout, t int) ([]byte, error) {
	rect := l.Tiles[t].Rect
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }

	type clbEntry struct {
		site int32
		clb  int
	}
	var clbs []clbEntry
	for i := range l.Packed.CLBs {
		if l.Packed.Empty(i) {
			continue
		}
		p := l.CLBLoc[i]
		if rect.Contains(p) {
			clbs = append(clbs, clbEntry{site: int32(p.Y)<<16 | int32(p.X), clb: i})
		}
	}
	sort.Slice(clbs, func(i, j int) bool { return clbs[i].site < clbs[j].site })
	w(int32(len(clbs)))
	for _, e := range clbs {
		w(e.site)
		if err := writeCLBConfig(&buf, l, e.clb); err != nil {
			return nil, err
		}
	}

	edges := collectEdges(l, func(a, b int32) bool {
		pa, pb := l.Grid.NodeXY(a), l.Grid.NodeXY(b)
		return rect.Contains(pa) && rect.Contains(pb)
	})
	w(int32(len(edges)))
	for _, e := range edges {
		w(e)
	}
	return buf.Bytes(), nil
}

// globalFrame serializes pad assignments and all routing not confined to a
// single tile.
func globalFrame(l *core.Layout) []byte {
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	type pad struct {
		name string
		site int32
	}
	var pads []pad
	for net, p := range l.PadLoc {
		pads = append(pads, pad{name: l.NL.NetName(net), site: int32(p.Y)<<16 | int32(p.X)})
	}
	sort.Slice(pads, func(i, j int) bool { return pads[i].name < pads[j].name })
	w(int32(len(pads)))
	for _, p := range pads {
		w(int32(len(p.name)))
		buf.WriteString(p.name)
		w(p.site)
	}
	edges := collectEdges(l, func(a, b int32) bool {
		pa, pb := l.Grid.NodeXY(a), l.Grid.NodeXY(b)
		for t := range l.Tiles {
			if l.Tiles[t].Rect.Contains(pa) && l.Tiles[t].Rect.Contains(pb) {
				return false
			}
		}
		return true
	})
	w(int32(len(edges)))
	for _, e := range edges {
		w(e)
	}
	return buf.Bytes()
}

// collectEdges gathers (net, edge) pairs passing the filter, sorted.
func collectEdges(l *core.Layout, keep func(a, b int32) bool) []int64 {
	var out []int64
	for net, rn := range l.Routes {
		for _, e := range rn.Route {
			a, b := l.Grid.EdgeEnds(e)
			ai, bi := l.Grid.NodeIdx(a), l.Grid.NodeIdx(b)
			if keep(ai, bi) {
				out = append(out, int64(net)<<32|int64(e))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// writeCLBConfig emits one CLB: LUT configuration words (via the 16-bit
// XC4000 LUT word) and flip-flop init values.
func writeCLBConfig(buf *bytes.Buffer, l *core.Layout, clb int) error {
	b := &l.Packed.CLBs[clb]
	w := func(v any) { binary.Write(buf, binary.LittleEndian, v) }
	w(int8(len(b.LUTs)))
	for _, id := range b.LUTs {
		c := &l.NL.Cells[id]
		tt, err := c.Func.TT()
		if err != nil {
			return fmt.Errorf("bitstream: LUT %q: %w", c.Name, err)
		}
		word, err := tt.Word4()
		if err != nil {
			return fmt.Errorf("bitstream: LUT %q: %w", c.Name, err)
		}
		w(word)
		// Pin connections identify the net each LUT input taps.
		w(int8(len(c.Fanin)))
		for _, f := range c.Fanin {
			w(int32(f))
		}
		w(int32(c.Out))
	}
	w(int8(len(b.FFs)))
	for _, id := range b.FFs {
		c := &l.NL.Cells[id]
		w(c.Init)
		w(int32(c.Fanin[0]))
		w(int32(c.Out))
	}
	return nil
}

// Route is re-exported for test helpers needing edge math.
type Route = route.Net

// NetID is re-exported for symmetry.
type NetID = netlist.NetID
