package bitstream

import (
	"math/rand"
	"testing"

	"fpgadbg/internal/core"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

func layout(t testing.TB, seed int64) *core.Layout {
	t.Helper()
	r := rand.New(rand.NewSource(4321))
	nl := netlist.New("bs")
	var nets []netlist.NetID
	for i := 0; i < 8; i++ {
		nets = append(nets, nl.AddPI(""))
	}
	for i := 0; i < 250; i++ {
		k := 2 + r.Intn(3)
		fanin := make([]netlist.NetID, k)
		for j := range fanin {
			fanin[j] = nets[r.Intn(len(nets))]
		}
		out := nl.AddNet("")
		if r.Intn(8) == 0 {
			nl.MustAddDFF("", fanin[0], out, uint8(r.Intn(2)))
		} else {
			cov := logic.Cover{N: k}
			for c := 0; c < 1+r.Intn(2); c++ {
				var cu logic.Cube
				for v := 0; v < k; v++ {
					if r.Intn(2) == 0 {
						cu = cu.WithLit(v, r.Intn(2) == 1)
					}
				}
				cov.Cubes = append(cov.Cubes, cu)
			}
			nl.MustAddLUT("", cov, fanin, out)
		}
		nets = append(nets, out)
	}
	for i := 0; i < 5; i++ {
		nl.MarkPO(nets[len(nets)-1-i*2])
	}
	l, err := core.Build(nl, core.Spec{Seed: seed, PlaceEffort: 0.25, TileFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestFullImageDeterministic(t *testing.T) {
	l := layout(t, 1)
	a, err := Full(l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Full(l)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || a.Digest() != b.Digest() {
		t.Fatal("same layout gave different images")
	}
	if a.Size() == 0 || len(a.Frames) != len(l.Tiles)+1 {
		t.Fatalf("image shape wrong: %d frames, %d bytes", len(a.Frames), a.Size())
	}
}

func TestPartialReconfiguration(t *testing.T) {
	l := layout(t, 2)
	before, err := Full(l)
	if err != nil {
		t.Fatal(err)
	}
	// A modify-only debugging change (LUT function fix) stays within its
	// affected tiles plus crossings, so stitching only those frames onto
	// the old image must reproduce the new full image.
	var target netlist.CellID = netlist.NilCell
	for ci := range l.NL.Cells {
		c := &l.NL.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) == 2 {
			target = netlist.CellID(ci)
			break
		}
	}
	if target == netlist.NilCell {
		t.Skip("no 2-input LUT")
	}
	l.NL.Cells[target].Func = logic.XnorN(2)
	rep, err := l.ApplyDelta(core.Delta{Modified: []netlist.CellID{target}})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Full(l)
	if err != nil {
		t.Fatal(err)
	}
	if after.Equal(before) {
		t.Fatal("change did not alter the bitstream")
	}
	partial, err := Partial(l, rep.AffectedTiles)
	if err != nil {
		t.Fatal(err)
	}
	stitched := Stitch(before, partial)
	if !stitched.Equal(after) {
		// Identify which frame diverged for the failure message.
		for k := range after.Frames {
			if string(after.Frames[k]) != string(stitched.Frames[k]) {
				t.Fatalf("stitched partial misses changes in frame %d (affected=%v)", k, rep.AffectedTiles)
			}
		}
		t.Fatal("stitched image differs in frame set")
	}
	// The partial image is a fraction of the full one.
	if partial.Size() >= before.Size() {
		t.Fatalf("partial (%d B) not smaller than full (%d B)", partial.Size(), before.Size())
	}
}

func TestPartialRejectsBadTile(t *testing.T) {
	l := layout(t, 3)
	if _, err := Partial(l, []int{999}); err == nil {
		t.Fatal("bad tile accepted")
	}
}
