// Package bitstream generates configuration images for the simulated
// device — the "revised design bitstream" of the paper's §5.2. The image
// is frame-addressed: one frame per tile (CLB configurations and the
// routing confined to that tile) plus one global frame (IOB assignments
// and inter-tile routing). Because tiling confines every debugging change
// to its affected tiles, re-configuring after a change only requires the
// frames of those tiles — Partial/Stitch make that property checkable.
package bitstream
