package repair

import (
	"testing"

	"fpgadbg/internal/faults"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// runRewireSearch builds an engine over (golden, impl) and runs the
// wiring-repair pipeline for the given suspects.
func runRewireSearch(t *testing.T, golden, impl *netlist.Netlist, suspects []string) *Outcome {
	t.Helper()
	mg, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := sim.Compile(impl)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(mg, mi)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.SearchRewires(suspects, detStim(len(golden.SortedPINames())), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSearchRewiresFixesMisroute: a plain routing error — one pin
// re-driven from the wrong net — is repaired by rewiring, not by truth
// tables: the winner restores the golden fanin and full equivalence.
func TestSearchRewiresFixesMisroute(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	id, _ := impl.CellByName("g_or")
	n2, _ := impl.NetByName("n2")
	if err := impl.SetFanin(id, 0, n2); err != nil { // should read n1
		t.Fatal(err)
	}

	out := runRewireSearch(t, golden, impl, []string{"g_or"})
	applyAndCheck(t, golden, impl, out)
	if out.Winner.Kind != Rewire || out.Winner.PinA != 0 || out.Winner.NewNet != "n1" {
		t.Fatalf("want rewire of g_or pin 0 back to n1, got %s", out.Winner.Describe())
	}
}

// TestSearchRewiresFixesBridgeFault: an injected wired-AND bridge
// reroutes the victim's sink through the bridge cell; the repair is
// wiring — re-drive the sink pin from the original victim net — leaving
// the (now dead) bridge cell disconnected. The victim must not be a PO:
// bridge insertion swaps PO columns to the bridged net, and the engine
// matches designs by PO name.
func TestSearchRewiresFixesBridgeFault(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	n2, _ := impl.NetByName("n2") // LUT-driven, single sink (g_xor pin 0), not a PO
	agg, _ := impl.NetByName("a")
	applied, err := faults.Fault{Kind: faults.BridgeAND, Net: n2, Net2: agg}.Apply(impl)
	if err != nil || !applied {
		t.Fatalf("bridge apply: applied=%v err=%v", applied, err)
	}
	if mm, err := sim.Equivalent(golden, impl, 16, 2, 77); err != nil || mm == nil {
		t.Fatalf("bridge fault not observable: mm=%v err=%v", mm, err)
	}

	out := runRewireSearch(t, golden, impl, []string{"g_xor"})
	applyAndCheck(t, golden, impl, out)
	if out.Winner.Kind != Rewire || out.Winner.Cell != "g_xor" || out.Winner.NewNet != "n2" {
		t.Fatalf("want rewire of g_xor back to n2, got %s", out.Winner.Describe())
	}
}

// TestRewireApplyIsJournaled: applying a rewire under the mutation
// journal records the fanin write, and RollbackJournal restores the
// faulty wiring bit-identically — the transaction layout.Layout relies
// on for trial repairs.
func TestRewireApplyIsJournaled(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	id, _ := impl.CellByName("g_or")
	n1, _ := impl.NetByName("n1")
	n2, _ := impl.NetByName("n2")
	if err := impl.SetFanin(id, 0, n2); err != nil {
		t.Fatal(err)
	}

	impl.SetJournaling(true)
	mark := impl.JournalLen()
	c := Candidate{Kind: Rewire, Cell: "g_or", PinA: 0, NewNet: "n1"}
	if _, err := c.Apply(impl); err != nil {
		t.Fatal(err)
	}
	if impl.Cells[id].Fanin[0] != n1 {
		t.Fatalf("rewire did not land: pin reads %s", impl.NetName(impl.Cells[id].Fanin[0]))
	}
	if impl.JournalLen() == mark {
		t.Fatal("rewire apply recorded nothing in the journal")
	}
	impl.RollbackJournal(mark)
	if impl.Cells[id].Fanin[0] != n2 {
		t.Fatalf("rollback did not restore the misroute: pin reads %s",
			impl.NetName(impl.Cells[id].Fanin[0]))
	}
}

// TestRewireVanishedNet: a rewire whose source net no longer exists must
// fail loudly, not silently no-op.
func TestRewireVanishedNet(t *testing.T) {
	impl := goldenDesign(t)
	c := Candidate{Kind: Rewire, Cell: "g_or", PinA: 0, NewNet: "no_such_net"}
	if _, err := c.Apply(impl); err == nil {
		t.Fatal("rewire from a vanished net applied without error")
	}
}

// TestEnumerateRewiresSkipsHealthy: on a fault-free implementation the
// golden-reference diff proposes nothing.
func TestEnumerateRewiresSkipsHealthy(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	mg, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := sim.Compile(impl)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(mg, mi)
	if err != nil {
		t.Fatal(err)
	}
	if cands := e.EnumerateRewires([]string{"g_and", "g_mux", "g_xor", "g_or"}); len(cands) != 0 {
		t.Fatalf("healthy design produced %d rewire candidates: %v", len(cands), cands)
	}
}
