// Package repair is the correction engine: it turns a localization
// suspect set into an applied, verified fix without ever reading the
// golden design's structure. Where debug.CorrectFromGolden copies the
// answer out of the golden netlist (diagnosis by answer key), this
// package searches the space of candidate corrections and lets the
// golden model act only as a behavioural oracle — exactly the situation
// of a real emulation debug, where "golden" is an HDL simulator or a
// reference run, not a cell-by-cell netlist to crib from.
//
// Three candidate shapes cover the function- and wiring-shaped single
// errors the fault models inject (see faults.Kind):
//
//   - BitFlip — one truth-table entry of a suspect LUT complemented
//     (repairs LUTBitFlip injections and SEU-style configuration upsets);
//   - PinSwap — two fanin pins of a suspect LUT exchanged, a tile-local
//     wiring repair (repairs InputSwap injections);
//   - Resynth — the whole truth table rebuilt from the cell's observed
//     I/O behaviour: fanin minterms observed on the implementation,
//     required outputs observed on the golden model's same-named net
//     stream, unobserved minterms kept from the current table (repairs
//     Polarity injections, stuck-driver errors and any other
//     multi-bit corruption of a k≤4 LUT).
//
// Candidates are validated 64 at a time: each one is armed as a per-lane
// truth-table substitution (sim.SetLanePatch) on a fork of the shared
// compiled implementation program, one broadcast trace replay scores the
// whole batch against the golden trace, and nothing is cloned or
// recompiled. Survivors of the detection stimulus are re-validated on an
// independent verification stimulus and ranked by minimality; the winner
// is applied to the live netlist (Candidate.Apply) and flows through the
// tile-local ECO path in internal/debug. SerialValidate replays the same
// candidates one clone+recompile at a time and is both the differential
// oracle (surviving sets must be identical) and the baseline the
// lane-parallel speedup is measured against (benchrepro -json-repair,
// BENCH_repair.json). See DESIGN.md §10.
package repair
