package repair

import (
	"errors"
	"fmt"
	"sort"

	"fpgadbg/internal/obs"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/testgen"
)

// ErrNotExcited reports that the unrepaired implementation already
// matches the golden model under the given stimulus — there is nothing
// for candidate validation to discriminate on, so the search would rank
// noise. Callers fall back to probe-based flows.
var ErrNotExcited = errors.New("repair: stimulus does not excite the error")

// Config tunes one candidate search.
type Config struct {
	// ObservePatterns extends the resynthesis observation beyond the
	// detection stimulus with this many extra broadcast patterns, so
	// rarely excited minterms still get observed (default 256, 0 keeps
	// the default; negative disables the extension).
	ObservePatterns int
	// VerifyPatterns sizes the independent verification stimulus
	// survivors are ranked by (default 128).
	VerifyPatterns int
	// VerifyCycles holds each verification pattern for this many clock
	// cycles (default 2).
	VerifyCycles int
	// RefineRounds bounds the observation-refinement loop: when no
	// survivor verifies, the failed verification stimulus — golden
	// behaviour, i.e. ground truth — is folded into the resynthesis
	// observation and the search repeats with a fresh verification
	// stream (default 2 rounds total).
	RefineRounds int
	// Seed derives the observation and verification streams; they are
	// drawn from offsets of it so neither replays the detection stimulus.
	Seed int64
	// OnBatch, when set, is called after each Lanes()-candidate
	// validation batch; returning an error aborts the search (the
	// campaign service cancels through it).
	OnBatch func(done, total int) error
	// Obs, when set, receives repair-enumerate and repair-validate spans
	// with candidate/batch counters. Nil disables tracing at zero cost.
	Obs *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.ObservePatterns == 0 {
		c.ObservePatterns = 256
	}
	if c.VerifyPatterns < 1 {
		c.VerifyPatterns = 128
	}
	if c.VerifyCycles < 1 {
		c.VerifyCycles = 2
	}
	if c.RefineRounds < 1 {
		c.RefineRounds = 2
	}
	return c
}

// Outcome is the result of one candidate search.
type Outcome struct {
	// Candidates is the enumerated candidate count; Survivors how many
	// matched the golden outputs on the whole detection stimulus;
	// Verified how many of those also matched on the independent
	// verification stimulus.
	Candidates int
	Survivors  int
	Verified   int
	// Batches counts Lanes()-candidate lane batches replayed (detection
	// + verification passes); wide machines need proportionally fewer.
	Batches int
	// Winner is the top-ranked verified candidate, nil when the search
	// found no correction that explains all observed behaviour.
	Winner *Candidate
	// Ranked lists every verified candidate, best first.
	Ranked []Candidate
}

// Validate scores candidates Lanes() per trace replay: each batch arms
// one truth-table substitution per lane (sim.SetLanePatch) on the
// engine's shared compiled implementation program and compares every
// lane's primary-output stream against the golden oracle trace — a
// wide implementation machine retires 64·W candidates per replay. stim
// must be broadcast scalar stimulus. alive[i] reports that candidate
// i's lanes never diverged from the golden stream. onBatch may be nil.
func (e *Engine) Validate(cands []Candidate, stim [][]uint64, onBatch func(done, total int) error) (alive []bool, batches int, err error) {
	gt := e.golden.RunTrace(stim)
	return e.validateAgainst(gt, cands, stim, onBatch)
}

// validateAgainst is Validate with the golden trace precomputed, so the
// detection and verification passes of one Search share the oracle
// replays per stimulus.
func (e *Engine) validateAgainst(gt *sim.Trace, cands []Candidate, stim [][]uint64, onBatch func(done, total int) error) (alive []bool, batches int, err error) {
	nl := e.impl.Netlist()
	alive = make([]bool, len(cands))
	lanes := e.impl.Lanes()
	masks := make([]uint64, lanes/64) // one alive bit per lane, word-packed
	total := (len(cands) + lanes - 1) / lanes
	for base := 0; base < len(cands); base += lanes {
		batch := cands[base:]
		if len(batch) > lanes {
			batch = batch[:lanes]
		}
		e.impl.ClearLaneFaults()
		for lane, c := range batch {
			id, ok := nl.CellByName(c.Cell)
			if !ok {
				return nil, batches, fmt.Errorf("repair: candidate cell %q vanished", c.Cell)
			}
			if err := e.impl.SetLanePatch(lane, id, c.TT); err != nil {
				return nil, batches, fmt.Errorf("repair: arming %s: %w", c.Describe(), err)
			}
		}
		e.impl.RunTraceInto(&e.tr, stim)
		batches++
		W := e.tr.Width
		for w := 0; w < W; w++ {
			switch rem := len(batch) - w*64; {
			case rem >= 64:
				masks[w] = ^uint64(0)
			case rem > 0:
				masks[w] = uint64(1)<<uint(rem) - 1
			default:
				masks[w] = 0
			}
		}
		anyLive := true
		for c := 0; c < e.tr.Cycles && anyLive; c++ {
			anyLive = false
			for po, col := range e.iCols {
				// Broadcast stimulus keeps the golden lane words equal,
				// so word 0 of the oracle covers every perturbed word.
				g := gt.Out(c, po)
				for w := 0; w < W; w++ {
					masks[w] &^= e.tr.OutW(c, col, w) ^ g
				}
			}
			for w := 0; w < W; w++ {
				anyLive = anyLive || masks[w] != 0
			}
		}
		for lane := range batch {
			alive[base+lane] = masks[lane/64]>>uint(lane&63)&1 != 0
		}
		if onBatch != nil {
			if err := onBatch(batches, total); err != nil {
				return nil, batches, err
			}
		}
	}
	e.impl.ClearLaneFaults()
	return alive, batches, nil
}

// SerialValidate computes the same per-candidate outcomes one mutant at
// a time — per candidate: clone the implementation netlist, apply the
// repair, recompile, replay. It is the differential oracle for Validate
// (surviving sets must be identical) and the baseline the lane-parallel
// candidate-validation speedup is measured against.
func (e *Engine) SerialValidate(cands []Candidate, stim [][]uint64) ([]bool, error) {
	gt := e.golden.Fork()
	if err := gt.BindNames(e.piNames); err != nil {
		return nil, err
	}
	goldenTr := gt.RunTrace(stim)
	implNL := e.impl.Netlist()
	goldenPI := make(map[string]bool, len(e.piNames))
	for _, n := range e.piNames {
		goldenPI[n] = true
	}
	alive := make([]bool, len(cands))
	for i, c := range cands {
		mutant := implNL.Clone()
		if _, err := c.Apply(mutant); err != nil {
			return nil, err
		}
		m, err := sim.Compile(mutant)
		if err != nil {
			return nil, fmt.Errorf("repair: serial %s: %w", c.Describe(), err)
		}
		if err := m.BindNames(e.piNames); err != nil {
			return nil, err
		}
		for _, n := range mutant.SortedPINames() {
			if goldenPI[n] {
				continue
			}
			if id, ok := mutant.NetByName(n); ok {
				if err := m.SetOverride(id, 0); err != nil {
					return nil, err
				}
			}
		}
		cols, err := m.POCols(e.poNames)
		if err != nil {
			return nil, err
		}
		tr := m.RunTrace(stim)
		ok := true
		for cy := 0; cy < tr.Cycles && ok; cy++ {
			for po, col := range cols {
				if tr.Out(cy, col) != goldenTr.Out(cy, po) {
					ok = false
					break
				}
			}
		}
		alive[i] = ok
	}
	return alive, nil
}

// rankLess orders verified candidates best-first: fewest truth-table
// changes, then kind (bit flip before pin swap before resynthesis), then
// cell name and candidate detail for determinism.
func rankLess(a, b Candidate) bool {
	if a.Flips != b.Flips {
		return a.Flips < b.Flips
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Cell != b.Cell {
		return a.Cell < b.Cell
	}
	if a.Bit != b.Bit {
		return a.Bit < b.Bit
	}
	if a.PinA != b.PinA {
		return a.PinA < b.PinA
	}
	return a.PinB < b.PinB
}

// Search runs the full candidate-search pipeline for a suspect set:
// enumerate candidates (resynthesis observed under detStim plus
// cfg.ObservePatterns extra broadcast patterns), validate them
// lane-parallel against the golden oracle on detStim, re-validate the
// survivors on an independent verification stimulus, and rank what
// remains by minimality. detStim must be broadcast scalar stimulus that
// excites the error — Search returns ErrNotExcited otherwise, and the
// caller falls back to its probe- or golden-based flow.
func (e *Engine) Search(suspects []string, detStim [][]uint64, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()

	// The unrepaired implementation must fail detStim, or survival means
	// nothing.
	gt := e.golden.RunTrace(detStim)
	e.impl.ClearLaneFaults()
	e.impl.RunTraceInto(&e.tr, detStim)
	excited := false
	for c := 0; c < e.tr.Cycles && !excited; c++ {
		for po, col := range e.iCols {
			if e.tr.Out(c, col) != gt.Out(c, po) {
				excited = true
				break
			}
		}
	}
	if !excited {
		return nil, ErrNotExcited
	}

	obsStim := append([][]uint64{}, detStim...)
	if cfg.ObservePatterns > 0 {
		obsStim = append(obsStim, testgenScalar(e.NumPIs(), cfg.ObservePatterns, cfg.Seed+obsSeedOffset, cfg.VerifyCycles)...)
	}
	out := &Outcome{}
	for round := 0; round < cfg.RefineRounds; round++ {
		esp := cfg.Obs.Start(obs.StageRepairEnumerate)
		cands, err := e.Enumerate(suspects, obsStim)
		esp.Add("candidates", int64(len(cands)))
		esp.End()
		if err != nil {
			return nil, err
		}
		out.Candidates = len(cands)
		if len(cands) == 0 {
			return out, nil
		}

		vsp := cfg.Obs.Start(obs.StageRepairValidate)
		alive, nb, err := e.validateAgainst(gt, cands, detStim, cfg.OnBatch)
		vsp.Add("candidates-validated", int64(len(cands)))
		vsp.Add("lane-batches", int64(nb))
		vsp.End()
		if err != nil {
			return nil, err
		}
		out.Batches += nb
		var survivors []Candidate
		for i, ok := range alive {
			if ok {
				survivors = append(survivors, cands[i])
			}
		}
		out.Survivors = len(survivors)
		if len(survivors) == 0 {
			return out, nil
		}

		verifyStim := testgenScalar(e.NumPIs(), cfg.VerifyPatterns,
			cfg.Seed+verifySeedOffset+int64(round)*verifySeedStride, cfg.VerifyCycles)
		wsp := cfg.Obs.Start(obs.StageRepairValidate)
		verified, nb, err := e.Validate(survivors, verifyStim, cfg.OnBatch)
		wsp.Add("candidates-validated", int64(len(survivors)))
		wsp.Add("lane-batches", int64(nb))
		wsp.End()
		if err != nil {
			return nil, err
		}
		out.Batches += nb
		out.Ranked = out.Ranked[:0]
		for i, ok := range verified {
			if ok {
				out.Ranked = append(out.Ranked, survivors[i])
			}
		}
		out.Verified = len(out.Ranked)
		if out.Verified > 0 {
			sort.Slice(out.Ranked, func(i, j int) bool { return rankLess(out.Ranked[i], out.Ranked[j]) })
			w := out.Ranked[0]
			out.Winner = &w
			return out, nil
		}
		// No survivor verified: the verification stream excited behaviour
		// the observation never saw. It is a golden replay — ground truth —
		// so fold it into the observation and search again.
		obsStim = append(obsStim, verifyStim...)
	}
	return out, nil
}

// Seed offsets keeping the observation and verification streams disjoint
// from each other and from the detection stimulus seed.
const (
	obsSeedOffset    = 0x0b5e7ed
	verifySeedOffset = 0x7e51f1e
	verifySeedStride = 0x1009
)

// testgenScalar builds patterns broadcast scalar vectors held cycles
// clock cycles each.
func testgenScalar(npi, patterns int, seed int64, cycles int) [][]uint64 {
	return testgen.Repeat(testgen.ScalarBlocks(npi, patterns, seed), cycles)
}
