package repair

import (
	"fmt"
	"math/bits"
	"sort"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
)

// Kind enumerates the candidate-correction shapes.
type Kind uint8

const (
	// BitFlip complements one truth-table entry of a suspect LUT.
	BitFlip Kind = iota
	// PinSwap exchanges two fanin pins of a suspect LUT — a wiring
	// repair, validated as the equivalent permuted truth table.
	PinSwap
	// Resynth replaces the whole truth table with one rebuilt from the
	// cell's observed I/O behaviour.
	Resynth
	// Rewire re-drives one fanin pin from a different net — the
	// interconnect repair for route and bridging faults, where the logic
	// is healthy and the wiring is wrong. Unlike the other kinds it is not
	// a truth-table substitution over the cell's existing fanins, so it is
	// validated serially (clone + apply + recompile) rather than as a lane
	// patch; Apply realizes it through the journaled SetFanin, so an open
	// layout transaction can revert it like any other repair.
	Rewire
)

func (k Kind) String() string {
	switch k {
	case BitFlip:
		return "bit-flip"
	case PinSwap:
		return "pin-swap"
	case Resynth:
		return "resynth"
	case Rewire:
		return "rewire"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Candidate is one proposed correction of one implementation cell. All
// kinds are behaviourally a truth-table substitution over the cell's
// existing fanins, which is how they are validated on simulator lanes;
// Apply realizes PinSwap as the actual rewire.
type Candidate struct {
	// Cell names the implementation cell the candidate repairs.
	Cell string
	Kind Kind
	// Bit is the complemented minterm (BitFlip).
	Bit uint32
	// PinA and PinB are the exchanged fanin pins (PinSwap); Rewire
	// re-drives pin PinA alone.
	PinA, PinB int
	// NewNet names the net pin PinA is rerouted to (Rewire).
	NewNet string
	// TT is the replacement truth table over the cell's k fanins (low
	// 2^k bits) — the lane-patch form of the candidate.
	TT uint16
	// Flips counts truth-table entries the candidate changes; the
	// primary minimality rank key.
	Flips int
}

// Describe renders the candidate for events and logs.
func (c Candidate) Describe() string {
	switch c.Kind {
	case BitFlip:
		return fmt.Sprintf("%s: flip minterm %d of %s", c.Kind, c.Bit, c.Cell)
	case PinSwap:
		return fmt.Sprintf("%s: swap pins %d,%d of %s", c.Kind, c.PinA, c.PinB, c.Cell)
	case Resynth:
		return fmt.Sprintf("%s: rewrite %s to tt %04x (%d bits)", c.Kind, c.Cell, c.TT, c.Flips)
	case Rewire:
		return fmt.Sprintf("%s: re-drive pin %d of %s from %s", c.Kind, c.PinA, c.Cell, c.NewNet)
	default:
		return fmt.Sprintf("%s at %s", c.Kind, c.Cell)
	}
}

// Apply realizes the candidate on a live netlist: PinSwap rewires the
// two fanin pins (the wiring repair the ECO path re-routes tile-locally);
// BitFlip and Resynth rewrite the cell function. Both go through the
// netlist's journaled mutators, so an open layout transaction can revert
// the repair. It returns the modified cell for core.Delta.Modified.
func (c Candidate) Apply(nl *netlist.Netlist) (netlist.CellID, error) {
	id, ok := nl.CellByName(c.Cell)
	if !ok {
		return netlist.NilCell, fmt.Errorf("repair: cell %q vanished from the implementation", c.Cell)
	}
	cell := &nl.Cells[id]
	if cell.Kind != netlist.KindLUT {
		return netlist.NilCell, fmt.Errorf("repair: cell %q is not a LUT", c.Cell)
	}
	if c.Kind == PinSwap {
		if c.PinA < 0 || c.PinB < 0 || c.PinA >= len(cell.Fanin) || c.PinB >= len(cell.Fanin) {
			return netlist.NilCell, fmt.Errorf("repair: cell %q has no pins %d,%d", c.Cell, c.PinA, c.PinB)
		}
		if err := nl.SwapFanin(id, c.PinA, c.PinB); err != nil {
			return netlist.NilCell, fmt.Errorf("repair: %w", err)
		}
		return id, nil
	}
	if c.Kind == Rewire {
		src, ok := nl.NetByName(c.NewNet)
		if !ok {
			return netlist.NilCell, fmt.Errorf("repair: rewire source net %q vanished from the implementation", c.NewNet)
		}
		if err := nl.SetFanin(id, c.PinA, src); err != nil {
			return netlist.NilCell, fmt.Errorf("repair: %w", err)
		}
		return id, nil
	}
	k := len(cell.Fanin)
	tt := logic.NewTT(k)
	for m := uint64(0); m < 1<<uint(k); m++ {
		tt.SetBit(m, c.TT&(1<<m) != 0)
	}
	if err := nl.SetFunc(id, tt.ToCover()); err != nil {
		return netlist.NilCell, fmt.Errorf("repair: %w", err)
	}
	return id, nil
}

// Engine searches candidate corrections for one (golden, implementation)
// pair. It holds private machine forks bound to the golden primary-input
// order — implementation-only inputs are pinned to zero, matching the
// debug layer's comparison convention — and never mutates either design.
type Engine struct {
	golden *sim.Machine // oracle fork
	impl   *sim.Machine // candidate program fork, lanes patched per batch

	piNames []string // golden sorted PI names = stimulus column order
	poNames []string // golden trace column order
	iCols   []int    // implementation trace columns of poNames
	// implOnlyPIs are pinned to zero on every implementation fork.
	implOnlyPIs []netlist.NetID

	tr sim.Trace // batch replay buffer, reused across batches
}

// NewEngine pairs a golden oracle machine with the implementation's
// compiled candidate program. Both machines are forked, so callers may
// keep using (or cache) the originals; the implementation machine's
// netlist must name-match the layout netlist candidates will be applied
// to.
func NewEngine(golden, impl *sim.Machine) (*Engine, error) {
	e := &Engine{golden: golden.Fork(), impl: impl.Fork()}
	goldenNL := golden.Netlist()
	e.piNames = goldenNL.SortedPINames()
	if err := e.golden.BindNames(e.piNames); err != nil {
		return nil, fmt.Errorf("repair: golden: %w", err)
	}
	if err := e.impl.BindNames(e.piNames); err != nil {
		return nil, fmt.Errorf("repair: impl: %w", err)
	}
	goldenPI := make(map[string]bool, len(e.piNames))
	for _, n := range e.piNames {
		goldenPI[n] = true
	}
	implNL := impl.Netlist()
	for _, n := range implNL.SortedPINames() {
		if goldenPI[n] {
			continue
		}
		id, ok := implNL.NetByName(n)
		if !ok {
			continue
		}
		e.implOnlyPIs = append(e.implOnlyPIs, id)
		if err := e.impl.SetOverride(id, 0); err != nil {
			return nil, fmt.Errorf("repair: impl: %w", err)
		}
	}
	e.poNames = e.golden.PONames()
	iCols, err := e.impl.POCols(e.poNames)
	if err != nil {
		return nil, fmt.Errorf("repair: impl: %w", err)
	}
	e.iCols = iCols
	return e, nil
}

// Netlist returns the implementation netlist candidates are enumerated
// from.
func (e *Engine) Netlist() *netlist.Netlist { return e.impl.Netlist() }

// NumPIs returns the stimulus column count (golden primary inputs).
func (e *Engine) NumPIs() int { return len(e.piNames) }

// newImplFork returns a fresh implementation machine configured like
// e.impl (binding and zero-pinned extra inputs) — used for observation
// replays so probe configuration never leaks into the batch machine.
func (e *Engine) newImplFork() (*sim.Machine, error) {
	f := e.impl.Fork()
	if err := f.BindNames(e.piNames); err != nil {
		return nil, err
	}
	for _, id := range e.implOnlyPIs {
		if err := f.SetOverride(id, 0); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ttWord returns the low 2^k-bit truth-table word of a ≤4-input LUT
// function.
func ttWord(f logic.Cover) (uint16, int, bool) {
	k := f.N
	if k > 4 {
		return 0, 0, false
	}
	tt, err := f.TT()
	if err != nil {
		return 0, 0, false
	}
	w4, err := tt.Word4()
	if err != nil {
		return 0, 0, false
	}
	if k < 4 {
		w4 &= 1<<(1<<uint(k)) - 1
	}
	return w4, k, true
}

// permuteTT exchanges variables a and b of a k-input truth-table word.
func permuteTT(tt uint16, k, a, b int) uint16 {
	var out uint16
	for m := 0; m < 1<<uint(k); m++ {
		if tt&(1<<uint(m)) == 0 {
			continue
		}
		ba := m >> uint(a) & 1
		bb := m >> uint(b) & 1
		s := m
		if ba != bb {
			s = m ^ (1 << uint(a)) ^ (1 << uint(b))
		}
		out |= 1 << uint(s)
	}
	return out
}

// Enumerate builds the candidate-correction list for a suspect set:
// every single truth-table-bit flip, every distinguishable pin swap, and
// — when obsStim is non-empty — one truth table resynthesized from the
// cell's I/O behaviour observed under obsStim (implementation fanins,
// golden same-named output stream; unobserved minterms keep their
// current value). Suspects that are not ≤4-input LUTs in the
// implementation are skipped; candidates equal to the current function
// are dropped, and candidates of one cell are deduplicated by resulting
// table (first kind wins, in BitFlip < PinSwap < Resynth order). The
// result is deterministic: suspects are processed in sorted order.
func (e *Engine) Enumerate(suspects []string, obsStim [][]uint64) ([]Candidate, error) {
	names := append([]string(nil), suspects...)
	sort.Strings(names)
	nl := e.impl.Netlist()

	var sites []site
	for _, name := range names {
		id, ok := nl.CellByName(name)
		if !ok {
			continue
		}
		c := &nl.Cells[id]
		if c.Dead || c.Kind != netlist.KindLUT {
			continue
		}
		cur, k, ok := ttWord(c.Func)
		if !ok {
			continue
		}
		sites = append(sites, site{name: name, id: id, cur: cur, k: k})
	}

	resynth := map[string]uint16{}
	if len(obsStim) > 0 && len(sites) > 0 {
		var err error
		resynth, err = e.observeTables(sites, obsStim)
		if err != nil {
			return nil, err
		}
	}

	var out []Candidate
	for _, s := range sites {
		seen := map[uint16]bool{s.cur: true}
		add := func(c Candidate) {
			if seen[c.TT] {
				return
			}
			seen[c.TT] = true
			c.Cell = s.name
			c.Flips = bits.OnesCount16(c.TT ^ s.cur)
			out = append(out, c)
		}
		for bit := uint32(0); bit < 1<<uint(s.k); bit++ {
			add(Candidate{Kind: BitFlip, Bit: bit, TT: s.cur ^ 1<<bit})
		}
		for a := 0; a < s.k; a++ {
			for b := a + 1; b < s.k; b++ {
				add(Candidate{Kind: PinSwap, PinA: a, PinB: b, TT: permuteTT(s.cur, s.k, a, b)})
			}
		}
		if tt, ok := resynth[s.name]; ok {
			add(Candidate{Kind: Resynth, TT: tt})
		}
	}
	return out, nil
}

// EnumerateRewires builds the wiring-repair candidate list for a
// suspect set by structural reference against the golden design: for
// every suspect cell whose same-named golden cell drives pin p from a
// net the implementation wires differently, propose re-driving p from
// the implementation net carrying the golden fanin's name. This is the
// ECO "restore the documented route" repair — it covers bridging faults
// (sinks rerouted onto a shorted wire) and misrouted pins, and proposes
// nothing for cells whose wiring already matches. Suspects that are not
// live LUTs on both sides, or whose golden pin count differs, are
// skipped; the result is deterministic (suspects processed in sorted
// order, pins ascending).
func (e *Engine) EnumerateRewires(suspects []string) []Candidate {
	names := append([]string(nil), suspects...)
	sort.Strings(names)
	nl := e.impl.Netlist()
	goldenNL := e.golden.Netlist()
	var out []Candidate
	for _, name := range names {
		id, ok := nl.CellByName(name)
		if !ok || nl.Cells[id].Dead || nl.Cells[id].Kind != netlist.KindLUT {
			continue
		}
		gid, ok := goldenNL.CellByName(name)
		if !ok || goldenNL.Cells[gid].Dead || goldenNL.Cells[gid].Kind != netlist.KindLUT {
			continue
		}
		c, g := &nl.Cells[id], &goldenNL.Cells[gid]
		if len(c.Fanin) != len(g.Fanin) {
			continue
		}
		for pin := range c.Fanin {
			want := goldenNL.NetName(g.Fanin[pin])
			if nl.NetName(c.Fanin[pin]) == want {
				continue
			}
			if _, ok := nl.NetByName(want); !ok {
				continue
			}
			out = append(out, Candidate{Kind: Rewire, Cell: name, PinA: pin, NewNet: want})
		}
	}
	return out
}

// SearchRewires runs the wiring-repair pipeline for a suspect set:
// enumerate golden-reference rewires, validate them serially (each
// candidate is a clone + SetFanin + recompile — rewires change the
// fanin set, so the lane-patch fast path cannot express them), confirm
// survivors on an independent verification stimulus, and rank what
// remains. Rewire candidate lists are tiny (one per misrouted pin), so
// the serial cost is a handful of replays. detStim must excite the
// error, mirroring Search.
func (e *Engine) SearchRewires(suspects []string, detStim [][]uint64, cfg Config) (*Outcome, error) {
	cfg = cfg.withDefaults()
	cands := e.EnumerateRewires(suspects)
	out := &Outcome{Candidates: len(cands)}
	if len(cands) == 0 {
		return out, nil
	}
	alive, err := e.SerialValidate(cands, detStim)
	if err != nil {
		return nil, err
	}
	var survivors []Candidate
	for i, ok := range alive {
		if ok {
			survivors = append(survivors, cands[i])
		}
	}
	out.Survivors = len(survivors)
	if len(survivors) == 0 {
		return out, nil
	}
	verifyStim := testgenScalar(e.NumPIs(), cfg.VerifyPatterns, cfg.Seed+verifySeedOffset, cfg.VerifyCycles)
	verified, err := e.SerialValidate(survivors, verifyStim)
	if err != nil {
		return nil, err
	}
	for i, ok := range verified {
		if ok {
			out.Ranked = append(out.Ranked, survivors[i])
		}
	}
	out.Verified = len(out.Ranked)
	if out.Verified > 0 {
		sort.Slice(out.Ranked, func(i, j int) bool { return rankLess(out.Ranked[i], out.Ranked[j]) })
		w := out.Ranked[0]
		out.Winner = &w
	}
	return out, nil
}

// site is one enumerable suspect: a live ≤4-input LUT of the
// implementation with its current truth-table word.
type site struct {
	name string
	id   netlist.CellID
	cur  uint16
	k    int
}

// observeTables replays obsStim once on the golden model, probing — per
// site — the same-named fanin nets and output net of the suspect cell,
// and resynthesizes the truth table the observed behaviour demands:
// minterm m of the fanin stream must produce the output stream's value.
// Observing both sides of the cell on the golden replay keeps the pairs
// consistent even when the fault has walked the implementation's
// flip-flop state away from golden (a fault in next-state logic corrupts
// every downstream stream of the implementation, but never the golden
// one). This is purely behavioural use of the golden design — net-value
// streams by name, exactly what localization's stream comparison already
// observes — not a structural read. obsStim must be broadcast scalar
// stimulus (every word 0 or all-ones); only lane 0 is read. Sites with a
// fanin or output net the golden design does not know, or whose
// observations conflict (a rewired fanin makes the output no function of
// the observed nets), produce no table; unobserved minterms keep the
// implementation's current value.
func (e *Engine) observeTables(sites []site, obsStim [][]uint64) (map[string]uint16, error) {
	nl := e.impl.Netlist()
	goldenNL := e.golden.Netlist()

	var probes []netlist.NetID
	type probed struct {
		site     int
		faninCol int // first fanin column in the golden trace
		outCol   int // output column in the golden trace
	}
	var ps []probed
	for si, s := range sites {
		cell := &nl.Cells[s.id]
		cols := make([]netlist.NetID, 0, len(cell.Fanin)+1)
		known := true
		for _, f := range cell.Fanin {
			gid, ok := goldenNL.NetByName(nl.NetName(f))
			if !ok {
				known = false
				break
			}
			cols = append(cols, gid)
		}
		gout, ok := goldenNL.NetByName(nl.NetName(cell.Out))
		if !known || !ok {
			continue
		}
		ps = append(ps, probed{site: si, faninCol: len(probes), outCol: len(probes) + len(cols)})
		probes = append(probes, cols...)
		probes = append(probes, gout)
	}
	if len(ps) == 0 {
		return map[string]uint16{}, nil
	}

	mg := e.golden.Fork()
	if err := mg.BindNames(e.piNames); err != nil {
		return nil, fmt.Errorf("repair: observe: %w", err)
	}
	if err := mg.Probe(probes...); err != nil {
		return nil, fmt.Errorf("repair: observe: %w", err)
	}
	tg := mg.RunTrace(obsStim)

	out := make(map[string]uint16, len(ps))
	for _, p := range ps {
		s := sites[p.site]
		var want, care uint16
		conflict := false
		for c := 0; c < len(obsStim) && !conflict; c++ {
			m := 0
			for j := 0; j < s.k; j++ {
				if tg.ProbeVal(c, p.faninCol+j)&1 != 0 {
					m |= 1 << uint(j)
				}
			}
			bit := uint16(0)
			if tg.ProbeVal(c, p.outCol)&1 != 0 {
				bit = 1
			}
			mask := uint16(1) << uint(m)
			if care&mask != 0 {
				if (want>>uint(m))&1 != bit {
					conflict = true
				}
				continue
			}
			care |= mask
			want |= bit << uint(m)
		}
		if conflict {
			continue
		}
		tt := s.cur&^care | want
		out[s.name] = tt
	}
	return out, nil
}
