package repair

import (
	"testing"

	"fpgadbg/internal/bench"
	"fpgadbg/internal/faults"
	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/sim"
	"fpgadbg/internal/synth"
	"fpgadbg/internal/testgen"
)

// goldenDesign builds a small sequential design with asymmetric logic so
// every candidate kind has a meaningful target.
func goldenDesign(t *testing.T) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("repairme")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	c := nl.AddPI("c")
	n1 := nl.AddNet("n1")
	n2 := nl.AddNet("n2")
	d := nl.AddNet("d")
	q := nl.AddNet("q")
	y := nl.AddNet("y")
	nl.MustAddLUT("g_and", logic.AndN(2), []netlist.NetID{a, b}, n1)
	nl.MustAddLUT("g_mux", logic.Mux2(), []netlist.NetID{c, n1, b}, n2)
	nl.MustAddLUT("g_xor", logic.XorN(2), []netlist.NetID{n2, q}, d)
	nl.MustAddDFF("ff", d, q, 0)
	nl.MustAddLUT("g_or", logic.OrN(2), []netlist.NetID{n1, d}, y)
	nl.MarkPO(y)
	nl.MarkPO(d)
	return nl
}

func detStim(npi int) [][]uint64 {
	// Odd hold count: holding a pattern an even number of cycles walks
	// the XOR-feedback register back to its pre-pattern state, hiding
	// state-dependent minterms from excitation.
	return testgen.Repeat(testgen.ScalarBlocks(npi, 48, 3), 3)
}

// runSearch builds an engine over (golden, impl) and searches the given
// suspects under the default configuration.
func runSearch(t *testing.T, golden, impl *netlist.Netlist, suspects []string) *Outcome {
	t.Helper()
	mg, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := sim.Compile(impl)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(mg, mi)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Search(suspects, detStim(len(golden.SortedPINames())), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// applyAndCheck applies the winner and asserts behavioural equivalence
// with the golden design.
func applyAndCheck(t *testing.T, golden, impl *netlist.Netlist, out *Outcome) {
	t.Helper()
	if out.Winner == nil {
		t.Fatalf("no winner: %d candidates, %d survivors, %d verified",
			out.Candidates, out.Survivors, out.Verified)
	}
	if _, err := out.Winner.Apply(impl); err != nil {
		t.Fatal(err)
	}
	mm, err := sim.Equivalent(golden, impl, 16, 2, 77)
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("repaired design still differs: %v (winner %s)", mm, out.Winner.Describe())
	}
}

func TestSearchRepairsBitFlip(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	id, _ := impl.CellByName("g_xor")
	tt := impl.Cells[id].Func.MustTT()
	tt.SetBit(2, !tt.Bit(2))
	impl.Cells[id].Func = tt.ToCover()

	out := runSearch(t, golden, impl, []string{"g_xor"})
	applyAndCheck(t, golden, impl, out)
	if out.Winner.Kind != BitFlip || out.Winner.Bit != 2 {
		t.Fatalf("want bit-flip of minterm 2, got %s", out.Winner.Describe())
	}
}

func TestSearchRepairsPinSwap(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	id, _ := impl.CellByName("g_mux")
	f := impl.Cells[id].Fanin
	f[1], f[2] = f[2], f[1] // swapped data pins of the asymmetric mux

	out := runSearch(t, golden, impl, []string{"g_mux"})
	applyAndCheck(t, golden, impl, out)
}

func TestSearchRepairsPolarityViaResynth(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	id, _ := impl.CellByName("g_mux")
	inv, err := impl.Cells[id].Func.Not()
	if err != nil {
		t.Fatal(err)
	}
	impl.Cells[id].Func = inv

	out := runSearch(t, golden, impl, []string{"g_mux"})
	applyAndCheck(t, golden, impl, out)
	if out.Winner.Kind != Resynth {
		t.Fatalf("polarity error should need resynthesis, got %s", out.Winner.Describe())
	}
}

func TestSearchRepairsStuckDriver(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	id, _ := impl.CellByName("g_and")
	impl.Cells[id].Func = logic.Const(2, true) // stuck-at-1 driver, applied form

	out := runSearch(t, golden, impl, []string{"g_and"})
	applyAndCheck(t, golden, impl, out)
}

// TestSearchAmbiguousSuspects feeds the whole suspect class and checks
// the winner still lands on the truly faulty cell's behaviour.
func TestSearchAmbiguousSuspects(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	id, _ := impl.CellByName("g_or")
	tt := impl.Cells[id].Func.MustTT()
	tt.SetBit(1, !tt.Bit(1))
	impl.Cells[id].Func = tt.ToCover()

	out := runSearch(t, golden, impl, []string{"g_or", "g_and", "g_xor"})
	applyAndCheck(t, golden, impl, out)
	if out.Winner.Cell != "g_or" {
		t.Fatalf("winner repaired %q, faulty cell is g_or", out.Winner.Cell)
	}
}

func TestSearchNotExcited(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone() // no error injected
	mg, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := sim.Compile(impl)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(mg, mi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search([]string{"g_and"}, detStim(3), Config{Seed: 1}); err != ErrNotExcited {
		t.Fatalf("want ErrNotExcited, got %v", err)
	}
}

// TestValidateMatchesSerial pins the differential guarantee on the
// handcrafted design: lane-parallel validation and the serial
// clone+recompile path must agree on the exact surviving-candidate set.
func TestValidateMatchesSerial(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	id, _ := impl.CellByName("g_mux")
	tt := impl.Cells[id].Func.MustTT()
	tt.SetBit(5, !tt.Bit(5))
	impl.Cells[id].Func = tt.ToCover()

	mg, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := sim.Compile(impl)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(mg, mi)
	if err != nil {
		t.Fatal(err)
	}
	stim := detStim(3)
	cands, err := e.Enumerate([]string{"g_mux", "g_and", "g_xor", "g_or"}, stim)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 20 {
		t.Fatalf("expected a multi-batch-worthy candidate list, got %d", len(cands))
	}
	par, _, err := e.Validate(cands, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := e.SerialValidate(cands, stim)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cands {
		if par[i] != ser[i] {
			t.Fatalf("candidate %d (%s): parallel=%v serial=%v", i, cands[i].Describe(), par[i], ser[i])
		}
	}
}

// TestValidateMatchesSerialOnCatalogDesign repeats the differential
// oracle on a real mapped benchmark with an injected design error and
// candidates spanning several 64-lane batches.
func TestValidateMatchesSerialOnCatalogDesign(t *testing.T) {
	info, err := bench.ByName("9sym")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := synth.TechMap(info.Build())
	if err != nil {
		t.Fatal(err)
	}
	impl := golden.Clone()
	inj, err := faults.Inject(impl, faults.LUTBitFlip, 5)
	if err != nil {
		t.Fatal(err)
	}
	mg, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	mi, err := sim.Compile(impl)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(mg, mi)
	if err != nil {
		t.Fatal(err)
	}
	// Suspect pool: the injected cell plus a handful of healthy ones, so
	// surviving and dying candidates both cross batch boundaries.
	suspects := []string{inj.CellName}
	for ci := range impl.Cells {
		c := &impl.Cells[ci]
		if !c.Dead && c.Kind == netlist.KindLUT && len(c.Fanin) >= 2 && len(c.Fanin) <= 4 && len(suspects) < 10 {
			suspects = append(suspects, c.Name)
		}
	}
	stim := testgen.Repeat(testgen.ScalarBlocks(len(golden.SortedPINames()), 32, 7), 2)
	cands, err := e.Enumerate(suspects, stim)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) <= 64 {
		t.Fatalf("want a multi-batch candidate list, got %d", len(cands))
	}
	par, batches, err := e.Validate(cands, stim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if batches != (len(cands)+63)/64 {
		t.Fatalf("batches=%d for %d candidates", batches, len(cands))
	}
	ser, err := e.SerialValidate(cands, stim)
	if err != nil {
		t.Fatal(err)
	}
	surviving := 0
	for i := range cands {
		if par[i] {
			surviving++
		}
		if par[i] != ser[i] {
			t.Fatalf("candidate %d (%s): parallel=%v serial=%v", i, cands[i].Describe(), par[i], ser[i])
		}
	}
	if surviving == 0 {
		t.Fatal("no surviving candidate — the reverse flip must survive")
	}
}

// TestWideValidateMatchesNarrow scores one candidate list on a width-1
// and a width-4 (256-lane) implementation program; the surviving sets
// must be identical and the wide engine must use fewer lane batches.
func TestWideValidateMatchesNarrow(t *testing.T) {
	golden := goldenDesign(t)
	impl := golden.Clone()
	id, _ := impl.CellByName("g_mux")
	tt := impl.Cells[id].Func.MustTT()
	tt.SetBit(5, !tt.Bit(5))
	impl.Cells[id].Func = tt.ToCover()

	mg, err := sim.Compile(golden)
	if err != nil {
		t.Fatal(err)
	}
	stim := detStim(3)
	run := func(width int) ([]bool, int, int) {
		mi, err := sim.CompileWidth(impl.Clone(), width)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(mg, mi)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := e.Enumerate([]string{"g_mux", "g_and", "g_xor", "g_or"}, stim)
		if err != nil {
			t.Fatal(err)
		}
		alive, batches, err := e.Validate(cands, stim, nil)
		if err != nil {
			t.Fatal(err)
		}
		return alive, batches, len(cands)
	}
	na, nb, nc := run(1)
	wa, wb, wc := run(4)
	if nc != wc {
		t.Fatalf("candidate counts differ: %d vs %d", nc, wc)
	}
	for i := range na {
		if na[i] != wa[i] {
			t.Fatalf("candidate %d: narrow=%v wide=%v", i, na[i], wa[i])
		}
	}
	if want := (nc + 255) / 256; wb != want {
		t.Fatalf("wide batches = %d, want %d", wb, want)
	}
	if nc > 64 && wb >= nb {
		t.Fatalf("wide validation did not shrink batches: %d vs %d", wb, nb)
	}
}
