package pack

import (
	"fmt"
	"testing"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
)

// packDigest renders the packing state for bit-identity comparison.
func packDigest(p *Packed) string {
	s := ""
	for i := range p.CLBs {
		s += fmt.Sprintf("clb%d:%v|%v;", i, p.CLBs[i].LUTs, p.CLBs[i].FFs)
	}
	s += fmt.Sprintf("cells=%d", len(p.CellCLB))
	return s
}

func packFixture(t *testing.T) (*Packed, *netlist.Netlist) {
	t.Helper()
	nl := netlist.New("pj")
	a := nl.AddPI("a")
	b := nl.AddPI("b")
	var outs []netlist.NetID
	for i := 0; i < 4; i++ {
		o := nl.AddNet(fmt.Sprintf("o%d", i))
		nl.MustAddLUT(fmt.Sprintf("l%d", i), logic.AndN(2), []netlist.NetID{a, b}, o)
		outs = append(outs, o)
	}
	q := nl.AddNet("q")
	nl.MustAddDFF("ff0", outs[0], q, 0)
	nl.MarkPO(q)
	p, err := Pack(nl)
	if err != nil {
		t.Fatal(err)
	}
	return p, nl
}

func TestPackJournalRollback(t *testing.T) {
	p, nl := packFixture(t)
	want := packDigest(p)
	p.SetJournaling(true)
	mark := p.JournalLen()

	// Unassign an existing LUT and FF, add a CLB, assign new cells into it.
	lut0, _ := nl.CellByName("l0")
	ff0, _ := nl.CellByName("ff0")
	if err := p.Unassign(lut0); err != nil {
		t.Fatal(err)
	}
	if err := p.Unassign(ff0); err != nil {
		t.Fatal(err)
	}
	clb := p.AddCLB()
	if err := p.Assign(lut0, clb); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(ff0, clb); err != nil {
		t.Fatal(err)
	}
	if packDigest(p) == want {
		t.Fatal("mutations did not change the packing")
	}

	cells := p.RollbackJournal(mark)
	if len(cells) == 0 {
		t.Fatal("rollback reported no touched cells")
	}
	if got := packDigest(p); got != want {
		t.Fatalf("rollback did not restore packing:\n got %s\nwant %s", got, want)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPackJournalCommitKeepsState(t *testing.T) {
	p, nl := packFixture(t)
	p.SetJournaling(true)
	mark := p.JournalLen()
	lut0, _ := nl.CellByName("l0")
	if err := p.Unassign(lut0); err != nil {
		t.Fatal(err)
	}
	p.TruncateJournal(mark)
	if p.JournalLen() != 0 {
		t.Fatal("commit left journal entries")
	}
	if _, packed := p.CellCLB[lut0]; packed {
		t.Fatal("commit reverted the mutation")
	}
}
