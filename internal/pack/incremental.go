package pack

import (
	"fmt"

	"fpgadbg/internal/netlist"
)

// AddCLB appends an empty block and returns its index. Used when debugging
// changes introduce new logic after the initial packing.
func (p *Packed) AddCLB() int {
	p.CLBs = append(p.CLBs, CLB{})
	p.record(packOp{kind: opAddCLB})
	return len(p.CLBs) - 1
}

// Assign places a cell into an existing CLB, respecting slot limits.
func (p *Packed) Assign(cell netlist.CellID, clb int) error {
	if clb < 0 || clb >= len(p.CLBs) {
		return fmt.Errorf("pack: no CLB %d", clb)
	}
	if _, already := p.CellCLB[cell]; already {
		return fmt.Errorf("pack: cell %q already packed", p.NL.CellName(cell))
	}
	c := &p.NL.Cells[cell]
	b := &p.CLBs[clb]
	switch c.Kind {
	case netlist.KindLUT:
		if len(c.Fanin) > 4 {
			return fmt.Errorf("pack: LUT %q too wide", c.Name)
		}
		if len(b.LUTs) >= LUTsPerCLB {
			return fmt.Errorf("pack: CLB %d LUT slots full", clb)
		}
		b.LUTs = append(b.LUTs, cell)
		p.record(packOp{kind: opAssign, cell: cell, clb: clb, isLUT: true})
	case netlist.KindDFF:
		if len(b.FFs) >= FFsPerCLB {
			return fmt.Errorf("pack: CLB %d FF slots full", clb)
		}
		b.FFs = append(b.FFs, cell)
		p.record(packOp{kind: opAssign, cell: cell, clb: clb, isLUT: false})
	}
	p.CellCLB[cell] = clb
	return nil
}

// Unassign removes a cell from its CLB (when the cell is deleted by an
// engineering change).
func (p *Packed) Unassign(cell netlist.CellID) error {
	clb, ok := p.CellCLB[cell]
	if !ok {
		return fmt.Errorf("pack: cell %q not packed", p.NL.CellName(cell))
	}
	b := &p.CLBs[clb]
	remove := func(s []netlist.CellID, isLUT bool) []netlist.CellID {
		for i, id := range s {
			if id == cell {
				p.record(packOp{kind: opUnassign, cell: cell, clb: clb, idx: i, isLUT: isLUT})
				return append(s[:i], s[i+1:]...)
			}
		}
		return s
	}
	b.LUTs = remove(b.LUTs, true)
	b.FFs = remove(b.FFs, false)
	delete(p.CellCLB, cell)
	return nil
}

// Empty reports whether a CLB holds no cells (its site is free capacity).
func (p *Packed) Empty(clb int) bool {
	b := &p.CLBs[clb]
	return len(b.LUTs) == 0 && len(b.FFs) == 0
}

// PackInto packs a list of new cells into fresh CLBs using the same greedy
// rules as Pack, returning the new CLB indices.
func (p *Packed) PackInto(cells []netlist.CellID) ([]int, error) {
	var newCLBs []int
	cur := -1
	for _, id := range cells {
		c := &p.NL.Cells[id]
		if c.Kind != netlist.KindLUT {
			continue
		}
		if cur == -1 || len(p.CLBs[cur].LUTs) >= LUTsPerCLB {
			cur = p.AddCLB()
			newCLBs = append(newCLBs, cur)
		}
		if err := p.Assign(id, cur); err != nil {
			return nil, err
		}
	}
	for _, id := range cells {
		c := &p.NL.Cells[id]
		if c.Kind != netlist.KindDFF {
			continue
		}
		placed := false
		// Prefer the CLB of the driving LUT among the new blocks.
		drv := p.NL.Nets[c.Fanin[0]].Driver
		if drv != netlist.NilCell {
			if clb, ok := p.CellCLB[drv]; ok && containsInt(newCLBs, clb) && len(p.CLBs[clb].FFs) < FFsPerCLB {
				if err := p.Assign(id, clb); err != nil {
					return nil, err
				}
				placed = true
			}
		}
		if !placed {
			for _, clb := range newCLBs {
				if len(p.CLBs[clb].FFs) < FFsPerCLB {
					if err := p.Assign(id, clb); err != nil {
						return nil, err
					}
					placed = true
					break
				}
			}
		}
		if !placed {
			clb := p.AddCLB()
			newCLBs = append(newCLBs, clb)
			if err := p.Assign(id, clb); err != nil {
				return nil, err
			}
		}
	}
	return newCLBs, nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
