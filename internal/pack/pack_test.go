package pack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgadbg/internal/logic"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/synth"
)

func fullAdder(t testing.TB) *netlist.Netlist {
	t.Helper()
	n := netlist.New("fa")
	a := n.AddPI("a")
	b := n.AddPI("b")
	cin := n.AddPI("cin")
	sum := n.AddNet("sum")
	cout := n.AddNet("cout")
	n.MustAddLUT("xor3", logic.XorN(3), []netlist.NetID{a, b, cin}, sum)
	n.MustAddLUT("maj3", logic.Maj3(), []netlist.NetID{a, b, cin}, cout)
	n.MarkPO(sum)
	n.MarkPO(cout)
	return n
}

func TestPackFullAdder(t *testing.T) {
	p, err := Pack(fullAdder(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCLBs() != 1 {
		t.Fatalf("full adder should pack into 1 CLB, got %d", p.NumCLBs())
	}
	s := p.Stats()
	if s.LUTs != 2 || s.FFs != 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestPackRejectsWideLUT(t *testing.T) {
	n := netlist.New("w")
	fanin := make([]netlist.NetID, 5)
	for i := range fanin {
		fanin[i] = n.AddPI("")
	}
	out := n.AddNet("o")
	n.MustAddLUT("wide", logic.AndN(5), fanin, out)
	n.MarkPO(out)
	if _, err := Pack(n); err == nil {
		t.Fatal("5-input LUT accepted")
	}
}

func TestFFColocation(t *testing.T) {
	// Register file slice: each LUT feeds a DFF; FFs should sit with their
	// drivers.
	n := netlist.New("regs")
	en := n.AddPI("en")
	for i := 0; i < 8; i++ {
		d := n.AddPI("")
		g := n.AddNet("")
		q := n.AddNet("")
		n.MustAddLUT("", logic.AndN(2), []netlist.NetID{en, d}, g)
		n.MustAddDFF("", g, q, 0)
		n.MarkPO(q)
	}
	p, err := Pack(n)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if s.FFWithDriver != 8 {
		t.Fatalf("only %d/8 FFs co-located with drivers", s.FFWithDriver)
	}
	if p.NumCLBs() != 4 {
		t.Fatalf("8 LUT + 8 FF should fill 4 CLBs, got %d", p.NumCLBs())
	}
}

func TestFFOverflowToOtherCLB(t *testing.T) {
	// One LUT feeding 3 DFFs: only 2 fit beside it.
	n := netlist.New("ffo")
	a := n.AddPI("a")
	g := n.AddNet("g")
	n.MustAddLUT("l", logic.BufN(), []netlist.NetID{a}, g)
	for i := 0; i < 3; i++ {
		q := n.AddNet("")
		n.MustAddDFF("", g, q, 0)
		n.MarkPO(q)
	}
	p, err := Pack(n)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCLBs() != 2 {
		t.Fatalf("expected overflow into 2 CLBs, got %d", p.NumCLBs())
	}
}

func TestNetCLBs(t *testing.T) {
	n := fullAdder(t)
	p, err := Pack(n)
	if err != nil {
		t.Fatal(err)
	}
	nets := p.NetCLBs()
	a, _ := n.NetByName("a")
	if len(nets[a]) != 1 {
		t.Fatalf("net a touches %v", nets[a])
	}
}

func TestPairingPrefersSharedFanins(t *testing.T) {
	// Two disjoint pairs of LUTs; each pair shares both inputs. The pairs
	// must land in separate CLBs with perfect sharing.
	n := netlist.New("pairs")
	a := n.AddPI("a")
	b := n.AddPI("b")
	c := n.AddPI("c")
	d := n.AddPI("d")
	o1 := n.AddNet("o1")
	o2 := n.AddNet("o2")
	o3 := n.AddNet("o3")
	o4 := n.AddNet("o4")
	l1 := n.MustAddLUT("l1", logic.AndN(2), []netlist.NetID{a, b}, o1)
	l3 := n.MustAddLUT("l3", logic.AndN(2), []netlist.NetID{c, d}, o3)
	l2 := n.MustAddLUT("l2", logic.OrN(2), []netlist.NetID{a, b}, o2)
	l4 := n.MustAddLUT("l4", logic.OrN(2), []netlist.NetID{c, d}, o4)
	for _, o := range []netlist.NetID{o1, o2, o3, o4} {
		n.MarkPO(o)
	}
	p, err := Pack(n)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCLBs() != 2 {
		t.Fatalf("CLBs = %d", p.NumCLBs())
	}
	if p.CellCLB[l1] != p.CellCLB[l2] || p.CellCLB[l3] != p.CellCLB[l4] {
		t.Fatal("shared-fanin pairs split across CLBs")
	}
}

// Property: packing any tech-mapped random netlist satisfies Check and
// covers all cells with ≥ half-full LUT slots on average (no pathological
// fragmentation).
func TestQuickPackInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(61))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nl := netlist.New("q")
		var nets []netlist.NetID
		for i := 0; i < 5; i++ {
			nets = append(nets, nl.AddPI(""))
		}
		for i := 0; i < 10+r.Intn(30); i++ {
			k := 1 + r.Intn(6)
			if k > len(nets) {
				k = len(nets)
			}
			fanin := make([]netlist.NetID, k)
			for j := range fanin {
				fanin[j] = nets[r.Intn(len(nets))]
			}
			out := nl.AddNet("")
			if r.Intn(5) == 0 {
				nl.MustAddDFF("", fanin[0], out, 0)
			} else {
				nl.MustAddLUT("", logic.OrN(k), fanin, out)
			}
			nets = append(nets, out)
		}
		nl.MarkPO(nets[len(nets)-1])
		mapped, err := synth.TechMap(nl)
		if err != nil {
			return false
		}
		p, err := Pack(mapped)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		st := mapped.Stats()
		if st.LUTs == 0 {
			return true
		}
		// At least ceil(LUTs/2) CLBs, at most LUTs+DFFs.
		if p.NumCLBs() < (st.LUTs+1)/2 || p.NumCLBs() > st.LUTs+st.DFFs {
			return false
		}
		return p.Check() == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPackDeterminism(t *testing.T) {
	n1 := fullAdder(t)
	n2 := fullAdder(t)
	p1, err := Pack(n1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Pack(n2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumCLBs() != p2.NumCLBs() {
		t.Fatal("packing not deterministic")
	}
}

func BenchmarkPack(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	nl := netlist.New("bench")
	var nets []netlist.NetID
	for i := 0; i < 16; i++ {
		nets = append(nets, nl.AddPI(""))
	}
	for i := 0; i < 2000; i++ {
		fanin := []netlist.NetID{nets[r.Intn(len(nets))], nets[r.Intn(len(nets))], nets[r.Intn(len(nets))]}
		out := nl.AddNet("")
		nl.MustAddLUT("", logic.Maj3(), fanin, out)
		nets = append(nets, out)
	}
	nl.MarkPO(nets[len(nets)-1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(nl); err != nil {
			b.Fatal(err)
		}
	}
}
