// Package pack groups a mapped 4-LUT/DFF netlist into XC4000-style
// configurable logic blocks. The CLB model is the one the paper counts
// overhead in: two 4-input lookup tables plus two D flip-flops per block
// (the XC4000's H-LUT and carry logic are omitted; every reported metric is
// a CLB count, which the simplification does not change — see DESIGN.md §3).
//
// Packing is a deterministic greedy pass: flip-flops prefer the CLB of the
// LUT driving their D input (saving a routed net), and LUT pairs are chosen
// to maximize shared fanin signals (reducing inter-CLB routing demand).
//
// Incremental mutations (Assign/Unassign/AddCLB) are journaled like the
// netlist's (journal.go), so a layout transaction can roll a packing
// change back in O(changes).
package pack
