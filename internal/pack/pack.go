package pack

import (
	"fmt"
	"sort"

	"fpgadbg/internal/netlist"
)

// LUTsPerCLB and FFsPerCLB define the CLB capacity.
const (
	LUTsPerCLB = 2
	FFsPerCLB  = 2
)

// CLB is one packed block.
type CLB struct {
	LUTs []netlist.CellID
	FFs  []netlist.CellID
}

// Cells returns all cells in the block.
func (b *CLB) Cells() []netlist.CellID {
	out := make([]netlist.CellID, 0, len(b.LUTs)+len(b.FFs))
	out = append(out, b.LUTs...)
	out = append(out, b.FFs...)
	return out
}

// Packed is the result of packing one netlist.
type Packed struct {
	NL   *netlist.Netlist
	CLBs []CLB
	// CellCLB maps every live cell to its CLB index.
	CellCLB map[netlist.CellID]int

	// journal is the undo log recorded while journaling is on; see
	// journal.go.
	journal    []packOp
	journaling bool
}

// NumCLBs returns the block count — the unit of every figure in the paper.
func (p *Packed) NumCLBs() int { return len(p.CLBs) }

// Pack groups the netlist's cells into CLBs. Every LUT must already be
// mapped to at most 4 inputs.
func Pack(nl *netlist.Netlist) (*Packed, error) {
	var luts, ffs []netlist.CellID
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead {
			continue
		}
		switch c.Kind {
		case netlist.KindLUT:
			if len(c.Fanin) > 4 {
				return nil, fmt.Errorf("pack: LUT %q has %d inputs; run synth.TechMap first", c.Name, len(c.Fanin))
			}
			luts = append(luts, netlist.CellID(ci))
		case netlist.KindDFF:
			ffs = append(ffs, netlist.CellID(ci))
		}
	}

	p := &Packed{NL: nl, CellCLB: make(map[netlist.CellID]int)}

	// Pair LUTs by shared-fanin affinity.
	faninSet := make(map[netlist.CellID]map[netlist.NetID]bool, len(luts))
	netLUTs := make(map[netlist.NetID][]netlist.CellID)
	for _, id := range luts {
		s := make(map[netlist.NetID]bool, 4)
		for _, f := range nl.Cells[id].Fanin {
			s[f] = true
			netLUTs[f] = append(netLUTs[f], id)
		}
		faninSet[id] = s
	}
	assigned := make(map[netlist.CellID]bool, len(luts))
	newCLB := func() int {
		p.CLBs = append(p.CLBs, CLB{})
		return len(p.CLBs) - 1
	}
	place := func(clb int, id netlist.CellID, isLUT bool) {
		b := &p.CLBs[clb]
		if isLUT {
			b.LUTs = append(b.LUTs, id)
		} else {
			b.FFs = append(b.FFs, id)
		}
		p.CellCLB[id] = clb
		assigned[id] = true
	}
	for _, u := range luts {
		if assigned[u] {
			continue
		}
		clb := newCLB()
		place(clb, u, true)
		// Best unassigned partner sharing the most fanins.
		best := netlist.NilCell
		bestScore := -1
		seen := make(map[netlist.CellID]bool)
		for f := range faninSet[u] {
			for _, v := range netLUTs[f] {
				if v == u || assigned[v] || seen[v] {
					continue
				}
				seen[v] = true
				score := 0
				for g := range faninSet[v] {
					if faninSet[u][g] {
						score++
					}
				}
				if score > bestScore || (score == bestScore && (best == netlist.NilCell || v < best)) {
					best, bestScore = v, score
				}
			}
		}
		if best == netlist.NilCell {
			// No sharing partner: take the next unassigned LUT so blocks
			// stay full (area, not wirelength, dominates tile capacity).
			for _, v := range luts {
				if v != u && !assigned[v] {
					best = v
					break
				}
			}
		}
		if best != netlist.NilCell {
			place(clb, best, true)
		}
	}

	// Flip-flops: co-locate with the LUT driving D when that CLB has a free
	// FF slot; otherwise first CLB with space; otherwise a new CLB.
	for _, id := range ffs {
		c := &nl.Cells[id]
		drv := nl.Nets[c.Fanin[0]].Driver
		placed := false
		if drv != netlist.NilCell {
			if clb, ok := p.CellCLB[drv]; ok && len(p.CLBs[clb].FFs) < FFsPerCLB {
				place(clb, id, false)
				placed = true
			}
		}
		if !placed {
			for clb := range p.CLBs {
				if len(p.CLBs[clb].FFs) < FFsPerCLB {
					place(clb, id, false)
					placed = true
					break
				}
			}
		}
		if !placed {
			place(newCLB(), id, false)
		}
	}

	if err := p.Check(); err != nil {
		return nil, err
	}
	return p, nil
}

// Check validates the packing invariants.
func (p *Packed) Check() error {
	seen := make(map[netlist.CellID]int)
	for bi := range p.CLBs {
		b := &p.CLBs[bi]
		if len(b.LUTs) > LUTsPerCLB {
			return fmt.Errorf("pack: CLB %d holds %d LUTs", bi, len(b.LUTs))
		}
		if len(b.FFs) > FFsPerCLB {
			return fmt.Errorf("pack: CLB %d holds %d FFs", bi, len(b.FFs))
		}
		for _, id := range b.Cells() {
			if prev, dup := seen[id]; dup {
				return fmt.Errorf("pack: cell %q in CLBs %d and %d", p.NL.CellName(id), prev, bi)
			}
			seen[id] = bi
			if got, ok := p.CellCLB[id]; !ok || got != bi {
				return fmt.Errorf("pack: CellCLB inconsistent for %q", p.NL.CellName(id))
			}
		}
	}
	for ci := range p.NL.Cells {
		c := &p.NL.Cells[ci]
		if c.Dead {
			continue
		}
		if _, ok := seen[netlist.CellID(ci)]; !ok {
			return fmt.Errorf("pack: cell %q not packed", c.Name)
		}
	}
	return nil
}

// NetCLBs returns, for every net, the sorted set of distinct CLBs touching
// it (driver plus sinks). Nets confined to one CLB need no inter-block
// routing.
func (p *Packed) NetCLBs() map[netlist.NetID][]int {
	nl := p.NL
	touch := make(map[netlist.NetID]map[int]bool)
	add := func(net netlist.NetID, clb int) {
		if touch[net] == nil {
			touch[net] = make(map[int]bool)
		}
		touch[net][clb] = true
	}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead {
			continue
		}
		clb := p.CellCLB[netlist.CellID(ci)]
		add(c.Out, clb)
		for _, f := range c.Fanin {
			add(f, clb)
		}
	}
	out := make(map[netlist.NetID][]int, len(touch))
	for net, set := range touch {
		list := make([]int, 0, len(set))
		for clb := range set {
			list = append(list, clb)
		}
		sort.Ints(list)
		out[net] = list
	}
	return out
}

// Stats summarizes a packing.
type Stats struct {
	CLBs, LUTs, FFs int
	// FFWithDriver counts flip-flops co-located with their D driver.
	FFWithDriver int
	// AvgLUTFill is the mean LUT occupancy per CLB in [0,1].
	AvgLUTFill float64
}

// Stats computes packing statistics.
func (p *Packed) Stats() Stats {
	var s Stats
	s.CLBs = len(p.CLBs)
	for bi := range p.CLBs {
		b := &p.CLBs[bi]
		s.LUTs += len(b.LUTs)
		s.FFs += len(b.FFs)
		for _, ff := range b.FFs {
			drv := p.NL.Nets[p.NL.Cells[ff].Fanin[0]].Driver
			if drv != netlist.NilCell && p.CellCLB[drv] == bi {
				s.FFWithDriver++
			}
		}
	}
	if s.CLBs > 0 {
		s.AvgLUTFill = float64(s.LUTs) / float64(s.CLBs*LUTsPerCLB)
	}
	return s
}
