package pack

import "fpgadbg/internal/netlist"

// The packing journal mirrors the netlist's (see netlist/journal.go): an
// append-only undo log that core.Layout transactions enable around every
// physical update, so a failed or speculative change restores the packing
// in O(delta) instead of deep-copying every CLB.

type packOpKind uint8

const (
	opAssign packOpKind = iota
	opUnassign
	opAddCLB
)

type packOp struct {
	kind  packOpKind
	cell  netlist.CellID
	clb   int
	idx   int // slot index within the CLB's LUT or FF list (opUnassign)
	isLUT bool
}

// SetJournaling enables or disables the packing journal.
func (p *Packed) SetJournaling(on bool) { p.journaling = on }

// JournalLen returns the current journal position (a nested-checkpoint
// mark).
func (p *Packed) JournalLen() int { return len(p.journal) }

// TruncateJournal discards entries at or beyond mark (commit).
func (p *Packed) TruncateJournal(mark int) {
	if mark < len(p.journal) {
		p.journal = p.journal[:mark]
	}
}

// RollbackJournal undoes every packing mutation recorded at or beyond
// mark, in reverse order, and truncates the journal. It returns the cells
// whose packing changed.
func (p *Packed) RollbackJournal(mark int) (cells []netlist.CellID) {
	for i := len(p.journal) - 1; i >= mark; i-- {
		op := &p.journal[i]
		switch op.kind {
		case opAssign:
			cells = append(cells, op.cell)
			b := &p.CLBs[op.clb]
			if op.isLUT {
				b.LUTs = b.LUTs[:len(b.LUTs)-1]
			} else {
				b.FFs = b.FFs[:len(b.FFs)-1]
			}
			delete(p.CellCLB, op.cell)
		case opUnassign:
			cells = append(cells, op.cell)
			b := &p.CLBs[op.clb]
			if op.isLUT {
				b.LUTs = insertAt(b.LUTs, op.idx, op.cell)
			} else {
				b.FFs = insertAt(b.FFs, op.idx, op.cell)
			}
			p.CellCLB[op.cell] = op.clb
		case opAddCLB:
			p.CLBs = p.CLBs[:len(p.CLBs)-1]
		}
	}
	p.journal = p.journal[:mark]
	return cells
}

func (p *Packed) record(op packOp) {
	if p.journaling {
		p.journal = append(p.journal, op)
	}
}

func insertAt(s []netlist.CellID, i int, v netlist.CellID) []netlist.CellID {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
