// Package route is the back-end router: a PathFinder-style
// negotiated-congestion maze router over the device grid. Nets are routed
// as Steiner trees by repeated multi-source Dijkstra expansion; congestion
// is resolved by iterative rip-up-and-reroute with growing present-sharing
// penalties and accumulated history costs.
//
// Tiling hooks:
//   - Options.Allowed restricts the search to the affected tiles, so a
//     tile-local re-route can never disturb wiring elsewhere.
//   - Options.FixedUse charges the capacity consumed by locked routes
//     (the tile interfaces and all wiring outside the affected tiles).
//   - Result.Expansions counts heap pops, the router's deterministic
//     effort metric used by Figure 5.
//
// The solver is a persistent Router: it owns the congestion and history
// arrays, the search heap and every Dijkstra scratch buffer across
// calls (epoch-invalidated, so nothing is cleared per search), and
// accumulates the locked wiring of an incremental pass through
// BeginPass/Charge. core.Layout keeps one Router for its lifetime, so
// every tile-local update reuses the allocations of the last; RouteAll
// is the one-shot wrapper, and TestRouterReuseMatchesRouteAll pins the
// reused path bit-identical to it.
package route
