package route

import (
	"container/heap"
	"fmt"
	"sort"

	"fpgadbg/internal/device"
)

// EdgeID identifies one channel segment of the routing grid.
type EdgeID int32

// Grid is the routing resource graph: one node per grid coordinate
// (including the IOB ring), orthogonal edges with uniform capacity.
type Grid struct {
	W, H int // CLB array size; grid coordinates span (0..W+1, 0..H+1)
	Cap  int // tracks per channel segment

	wExt, hExt int
	numH       int // horizontal edge count
}

// NewGrid builds the routing graph for a device.
func NewGrid(dev device.Device) *Grid {
	g := &Grid{
		W: dev.W, H: dev.H, Cap: dev.ChannelWidth,
		wExt: dev.W + 2, hExt: dev.H + 2,
	}
	g.numH = (g.wExt - 1) * g.hExt
	return g
}

// NumNodes returns the node count.
func (g *Grid) NumNodes() int { return g.wExt * g.hExt }

// NumEdges returns the edge count.
func (g *Grid) NumEdges() int { return g.numH + g.wExt*(g.hExt-1) }

// NodeIdx maps a coordinate to its node index.
func (g *Grid) NodeIdx(p device.XY) int32 { return int32(p.Y*g.wExt + p.X) }

// NodeXY maps a node index back to its coordinate.
func (g *Grid) NodeXY(n int32) device.XY {
	return device.XY{X: int(n) % g.wExt, Y: int(n) / g.wExt}
}

// hEdge returns the edge between (x,y) and (x+1,y).
func (g *Grid) hEdge(x, y int) EdgeID { return EdgeID(y*(g.wExt-1) + x) }

// vEdge returns the edge between (x,y) and (x,y+1).
func (g *Grid) vEdge(x, y int) EdgeID { return EdgeID(g.numH + x*(g.hExt-1) + y) }

// EdgeEnds returns an edge's two endpoint coordinates.
func (g *Grid) EdgeEnds(e EdgeID) (device.XY, device.XY) {
	if int(e) < g.numH {
		x := int(e) % (g.wExt - 1)
		y := int(e) / (g.wExt - 1)
		return device.XY{X: x, Y: y}, device.XY{X: x + 1, Y: y}
	}
	r := int(e) - g.numH
	x := r / (g.hExt - 1)
	y := r % (g.hExt - 1)
	return device.XY{X: x, Y: y}, device.XY{X: x, Y: y + 1}
}

// neighbors visits the up-to-four adjacent nodes of n with the connecting
// edge.
func (g *Grid) neighbors(n int32, visit func(edge EdgeID, to int32)) {
	x := int(n) % g.wExt
	y := int(n) / g.wExt
	if x > 0 {
		visit(g.hEdge(x-1, y), n-1)
	}
	if x < g.wExt-1 {
		visit(g.hEdge(x, y), n+1)
	}
	if y > 0 {
		visit(g.vEdge(x, y-1), n-int32(g.wExt))
	}
	if y < g.hExt-1 {
		visit(g.vEdge(x, y), n+int32(g.wExt))
	}
}

// Net is one signal to route. Pins[0] is the source; Route is the solver
// output (a set of edges forming a tree over the pins).
type Net struct {
	ID     int
	Pins   []device.XY
	Weight float64
	Route  []EdgeID
	// Locked routes are never ripped up; their usage must be passed in
	// Options.FixedUse by the caller.
	Locked bool
}

// RouteLen returns the wirelength of the net's current route.
func (n *Net) RouteLen() int { return len(n.Route) }

// Options tune the router.
type Options struct {
	// MaxIters bounds the negotiation iterations (default 40).
	MaxIters int
	// Allowed, when non-nil, restricts expansion to permitted coordinates;
	// all pins of routed nets must be permitted.
	Allowed func(device.XY) bool
	// FixedUse charges pre-existing usage per edge (locked nets, tile
	// interfaces). Indexed by EdgeID; may be nil.
	FixedUse []int16
}

// Result reports routing work and convergence.
type Result struct {
	// Expansions counts Dijkstra heap pops — the deterministic effort
	// counter.
	Expansions int64
	Iters      int
	// Overused is the number of edges still over capacity at exit (0 on
	// success).
	Overused int
	// Wirelength is the total edge count over all routed nets.
	Wirelength int
}

// RouteAll routes every non-locked net. It returns an error when pins fall
// outside the allowed region or the graph, or when congestion cannot be
// resolved within MaxIters.
func RouteAll(g *Grid, nets []*Net, opt Options) (*Result, error) {
	if opt.MaxIters <= 0 {
		opt.MaxIters = 40
	}
	use := make([]int16, g.NumEdges())
	if opt.FixedUse != nil {
		if len(opt.FixedUse) != g.NumEdges() {
			return nil, fmt.Errorf("route: FixedUse length %d != %d edges", len(opt.FixedUse), g.NumEdges())
		}
		copy(use, opt.FixedUse)
	}
	hist := make([]float64, g.NumEdges())

	// Validate and normalize pins.
	work := make([]*Net, 0, len(nets))
	for _, n := range nets {
		if n.Locked {
			continue
		}
		for _, p := range n.Pins {
			if p.X < 0 || p.X >= g.wExt || p.Y < 0 || p.Y >= g.hExt {
				return nil, fmt.Errorf("route: net %d pin %v off grid", n.ID, p)
			}
			if opt.Allowed != nil && !opt.Allowed(p) {
				return nil, fmt.Errorf("route: net %d pin %v outside allowed region", n.ID, p)
			}
		}
		if len(dedupePins(g, n.Pins)) >= 2 {
			work = append(work, n)
		} else {
			n.Route = nil
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].ID < work[j].ID })

	r := &router{
		g: g, use: use, hist: hist, allowed: opt.Allowed,
		dist: make([]float64, g.NumNodes()),
		prev: make([]EdgeID, g.NumNodes()),
		from: make([]int32, g.NumNodes()),
		mark: make([]int32, g.NumNodes()),
	}
	res := &Result{}
	presFac := 1.0
	for iter := 1; iter <= opt.MaxIters; iter++ {
		res.Iters = iter
		for _, n := range work {
			// Rip up.
			for _, e := range n.Route {
				use[e]--
			}
			route, err := r.routeNet(n, presFac)
			if err != nil {
				return nil, err
			}
			n.Route = route
			for _, e := range n.Route {
				use[e]++
			}
		}
		// Converged?
		over := 0
		for e := range use {
			if int(use[e]) > g.Cap {
				over++
				hist[e] += float64(int(use[e]) - g.Cap)
			}
		}
		res.Expansions = r.expansions
		res.Overused = over
		if over == 0 {
			break
		}
		presFac *= 1.8
	}
	if res.Overused > 0 {
		return res, fmt.Errorf("route: %d edges still overused after %d iterations", res.Overused, res.Iters)
	}
	for _, n := range nets {
		res.Wirelength += len(n.Route)
	}
	return res, nil
}

func dedupePins(g *Grid, pins []device.XY) []int32 {
	seen := make(map[int32]bool, len(pins))
	out := make([]int32, 0, len(pins))
	for _, p := range pins {
		n := g.NodeIdx(p)
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

type router struct {
	g       *Grid
	use     []int16
	hist    []float64
	allowed func(device.XY) bool

	dist       []float64
	prev       []EdgeID
	from       []int32
	mark       []int32 // search epoch per node
	epoch      int32
	expansions int64
}

type pqItem struct {
	node int32
	cost float64
}

type pq []pqItem

func (q pq) Len() int      { return len(q) }
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q pq) Less(i, j int) bool {
	if q[i].cost != q[j].cost {
		return q[i].cost < q[j].cost
	}
	return q[i].node < q[j].node
}
func (q *pq) Push(x any) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// edgeCost is the negotiated-congestion cost of adding one more use of e.
func (r *router) edgeCost(e EdgeID, presFac float64) float64 {
	c := 1.0 + r.hist[e]
	over := int(r.use[e]) + 1 - r.g.Cap
	if over > 0 {
		c += presFac * float64(over)
	}
	return c
}

// routeNet grows a Steiner tree over the net's pins with repeated
// multi-source shortest-path searches.
func (r *router) routeNet(n *Net, presFac float64) ([]EdgeID, error) {
	pins := dedupePins(r.g, n.Pins)
	inTree := make(map[int32]bool, len(pins)*2)
	remaining := make(map[int32]bool, len(pins))
	inTree[pins[0]] = true
	for _, p := range pins[1:] {
		if p != pins[0] {
			remaining[p] = true
		}
	}
	var route []EdgeID
	treeNodes := []int32{pins[0]}
	for len(remaining) > 0 {
		target, path, err := r.search(treeNodes, remaining, presFac)
		if err != nil {
			return nil, fmt.Errorf("route: net %d: %w", n.ID, err)
		}
		delete(remaining, target)
		for _, e := range path {
			route = append(route, e)
			a, b := r.g.EdgeEnds(e)
			for _, p := range []device.XY{a, b} {
				idx := r.g.NodeIdx(p)
				if !inTree[idx] {
					inTree[idx] = true
					treeNodes = append(treeNodes, idx)
				}
			}
		}
	}
	return route, nil
}

// search runs a multi-source Dijkstra from the tree nodes to the nearest
// target, returning the target and the path's edges.
func (r *router) search(sources []int32, targets map[int32]bool, presFac float64) (int32, []EdgeID, error) {
	r.epoch++
	ep := r.epoch
	q := make(pq, 0, len(sources))
	for _, s := range sources {
		r.mark[s] = ep
		r.dist[s] = 0
		r.prev[s] = -1
		r.from[s] = -1
		q = append(q, pqItem{node: s, cost: 0})
	}
	heap.Init(&q)
	settled := make(map[int32]bool)
	for q.Len() > 0 {
		it := heap.Pop(&q).(pqItem)
		if settled[it.node] {
			continue
		}
		settled[it.node] = true
		r.expansions++
		if targets[it.node] {
			// Trace back to a source.
			var path []EdgeID
			cur := it.node
			for r.prev[cur] != -1 {
				path = append(path, r.prev[cur])
				cur = r.from[cur]
			}
			return it.node, path, nil
		}
		r.g.neighbors(it.node, func(e EdgeID, to int32) {
			if r.allowed != nil && !r.allowed(r.g.NodeXY(to)) {
				return
			}
			nd := it.cost + r.edgeCost(e, presFac)
			if r.mark[to] != ep || nd < r.dist[to] {
				r.mark[to] = ep
				r.dist[to] = nd
				r.prev[to] = e
				r.from[to] = it.node
				heap.Push(&q, pqItem{node: to, cost: nd})
			}
		})
	}
	return 0, nil, fmt.Errorf("no path to any remaining sink (region too tight?)")
}
