package route

import (
	"container/heap"
	"fmt"
	"sort"

	"fpgadbg/internal/device"
	"fpgadbg/internal/obs"
)

// EdgeID identifies one channel segment of the routing grid.
type EdgeID int32

// Grid is the routing resource graph: one node per grid coordinate
// (including the IOB ring), orthogonal edges with uniform capacity.
type Grid struct {
	W, H int // CLB array size; grid coordinates span (0..W+1, 0..H+1)
	Cap  int // tracks per channel segment

	wExt, hExt int
	numH       int // horizontal edge count
}

// NewGrid builds the routing graph for a device.
func NewGrid(dev device.Device) *Grid {
	g := &Grid{
		W: dev.W, H: dev.H, Cap: dev.ChannelWidth,
		wExt: dev.W + 2, hExt: dev.H + 2,
	}
	g.numH = (g.wExt - 1) * g.hExt
	return g
}

// NumNodes returns the node count.
func (g *Grid) NumNodes() int { return g.wExt * g.hExt }

// NumEdges returns the edge count.
func (g *Grid) NumEdges() int { return g.numH + g.wExt*(g.hExt-1) }

// NodeIdx maps a coordinate to its node index.
func (g *Grid) NodeIdx(p device.XY) int32 { return int32(p.Y*g.wExt + p.X) }

// NodeXY maps a node index back to its coordinate.
func (g *Grid) NodeXY(n int32) device.XY {
	return device.XY{X: int(n) % g.wExt, Y: int(n) / g.wExt}
}

// hEdge returns the edge between (x,y) and (x+1,y).
func (g *Grid) hEdge(x, y int) EdgeID { return EdgeID(y*(g.wExt-1) + x) }

// vEdge returns the edge between (x,y) and (x,y+1).
func (g *Grid) vEdge(x, y int) EdgeID { return EdgeID(g.numH + x*(g.hExt-1) + y) }

// EdgeEnds returns an edge's two endpoint coordinates.
func (g *Grid) EdgeEnds(e EdgeID) (device.XY, device.XY) {
	if int(e) < g.numH {
		x := int(e) % (g.wExt - 1)
		y := int(e) / (g.wExt - 1)
		return device.XY{X: x, Y: y}, device.XY{X: x + 1, Y: y}
	}
	r := int(e) - g.numH
	x := r / (g.hExt - 1)
	y := r % (g.hExt - 1)
	return device.XY{X: x, Y: y}, device.XY{X: x, Y: y + 1}
}

// neighbors visits the up-to-four adjacent nodes of n with the connecting
// edge.
func (g *Grid) neighbors(n int32, visit func(edge EdgeID, to int32)) {
	x := int(n) % g.wExt
	y := int(n) / g.wExt
	if x > 0 {
		visit(g.hEdge(x-1, y), n-1)
	}
	if x < g.wExt-1 {
		visit(g.hEdge(x, y), n+1)
	}
	if y > 0 {
		visit(g.vEdge(x, y-1), n-int32(g.wExt))
	}
	if y < g.hExt-1 {
		visit(g.vEdge(x, y), n+int32(g.wExt))
	}
}

// Net is one signal to route. Pins[0] is the source; Route is the solver
// output (a set of edges forming a tree over the pins).
type Net struct {
	ID     int
	Pins   []device.XY
	Weight float64
	Route  []EdgeID
	// Locked routes are never ripped up; their usage must be passed in
	// Options.FixedUse (or charged into the Router) by the caller.
	Locked bool
}

// RouteLen returns the wirelength of the net's current route.
func (n *Net) RouteLen() int { return len(n.Route) }

// Options tune the router.
type Options struct {
	// MaxIters bounds the negotiation iterations (default 40).
	MaxIters int
	// Allowed, when non-nil, restricts expansion to permitted coordinates;
	// all pins of routed nets must be permitted.
	Allowed func(device.XY) bool
	// FixedUse charges pre-existing usage per edge (locked nets, tile
	// interfaces). Indexed by EdgeID; may be nil, in which case a
	// persistent Router falls back to the usage accumulated through
	// BeginPass/Charge.
	FixedUse []int16
	// CapReserve withholds tracks per channel segment from this pass:
	// nets route as if the grid capacity were Cap-CapReserve (clamped to
	// at least one track). The debug overlay uses it to keep headroom for
	// trunk wiring that is routed afterwards at full capacity.
	CapReserve int
}

// Result reports routing work and convergence.
type Result struct {
	// Expansions counts Dijkstra heap pops — the deterministic effort
	// counter.
	Expansions int64
	Iters      int
	// Overused is the number of edges still over capacity at exit (0 on
	// success).
	Overused int
	// Wirelength is the total edge count over all routed nets.
	Wirelength int
}

// Router is a persistent routing engine bound to one Grid. It owns the
// congestion and history arrays, the search heap and every scratch buffer
// across calls, so the incremental debug loop pays no per-call setup
// allocations — the compiled-program treatment applied to routing. A
// Router is not safe for concurrent use; callers that share one across
// goroutines must serialize access.
//
// Two usage styles:
//
//   - one-shot: RouteAll (a thin wrapper constructing a fresh Router);
//   - incremental: keep the Router, accumulate the locked wiring of the
//     current pass with BeginPass/Charge, then Route only the nets
//     incident to the affected tiles. Results are bit-identical to the
//     one-shot path for the same routing problem (the reused scratch is
//     epoch-invalidated, and congestion state resets every Route call).
type Router struct {
	g *Grid

	// Obs, when set, receives one "route" span per Route call with
	// routed-net/iteration/expansion counters. Core wires it to the
	// owning Layout's trace (core.Layout.SetObs) so both the initial
	// full route and every incremental reroute land in the same
	// per-campaign StageTrace.
	Obs *obs.Trace

	// fixed accumulates locked wiring between BeginPass and Route when
	// Options.FixedUse is nil.
	fixed []int16

	// use and hist are the negotiated-congestion state of the current
	// Route call; capEff is the effective capacity of the call
	// (Cap-CapReserve, at least 1).
	use    []int16
	hist   []float64
	capEff int

	// Dijkstra scratch, epoch-invalidated so no per-search clearing.
	dist    []float64
	prev    []EdgeID
	from    []int32
	mark    []int32 // search epoch per node
	settled []int32 // settled epoch per node
	inTree  []int32 // Steiner-tree epoch per node
	target  []int32 // remaining-sink epoch per node
	epoch   int32

	q          pq
	treeNodes  []int32
	pinScratch []int32
	pinSeen    map[int32]bool

	expansions int64
}

// NewRouter builds a persistent router for the grid.
func NewRouter(g *Grid) *Router {
	return &Router{
		g:       g,
		fixed:   make([]int16, g.NumEdges()),
		use:     make([]int16, g.NumEdges()),
		hist:    make([]float64, g.NumEdges()),
		dist:    make([]float64, g.NumNodes()),
		prev:    make([]EdgeID, g.NumNodes()),
		from:    make([]int32, g.NumNodes()),
		mark:    make([]int32, g.NumNodes()),
		settled: make([]int32, g.NumNodes()),
		inTree:  make([]int32, g.NumNodes()),
		target:  make([]int32, g.NumNodes()),
		pinSeen: make(map[int32]bool, 16),
	}
}

// Grid returns the routing graph the router is bound to.
func (r *Router) Grid() *Grid { return r.g }

// BeginPass clears the accumulated fixed usage, starting a new routing
// transaction.
func (r *Router) BeginPass() {
	for i := range r.fixed {
		r.fixed[i] = 0
	}
}

// Charge adds locked wiring (edges that must never be ripped up during
// the coming Route calls) to the pass's fixed usage.
func (r *Router) Charge(edges []EdgeID) {
	for _, e := range edges {
		r.fixed[e]++
	}
}

// FixedUse exposes the accumulated fixed usage of the current pass
// (indexed by EdgeID); callers must treat it as read-only.
func (r *Router) FixedUse() []int16 { return r.fixed }

// RouteAll routes every non-locked net with a fresh Router. It returns an
// error when pins fall outside the allowed region or the graph, or when
// congestion cannot be resolved within MaxIters.
func RouteAll(g *Grid, nets []*Net, opt Options) (*Result, error) {
	return NewRouter(g).Route(nets, opt)
}

// Route routes every non-locked net of the slice against the pass's fixed
// usage (Options.FixedUse when non-nil, the Charge accumulator
// otherwise). Congestion and history state reset on entry, so repeated
// calls on one Router are independent routing problems; only the scratch
// memory is shared.
func (r *Router) Route(nets []*Net, opt Options) (*Result, error) {
	sp := r.Obs.Start(obs.StageRoute)
	defer sp.End()
	g := r.g
	if opt.MaxIters <= 0 {
		opt.MaxIters = 40
	}
	r.capEff = g.Cap - opt.CapReserve
	if r.capEff < 1 {
		r.capEff = 1
	}
	// A long-lived Router (the service keeps one warm per pooled layout)
	// must never let the epoch counter wrap into stamps still stored in
	// the scratch arrays: reset everything while no search is in flight.
	if r.epoch > 1<<30 {
		for i := range r.mark {
			r.mark[i], r.settled[i], r.inTree[i], r.target[i] = 0, 0, 0, 0
		}
		r.epoch = 0
	}
	if opt.FixedUse != nil {
		if len(opt.FixedUse) != g.NumEdges() {
			return nil, fmt.Errorf("route: FixedUse length %d != %d edges", len(opt.FixedUse), g.NumEdges())
		}
		copy(r.use, opt.FixedUse)
	} else {
		copy(r.use, r.fixed)
	}
	for i := range r.hist {
		r.hist[i] = 0
	}

	// Validate and normalize pins.
	work := make([]*Net, 0, len(nets))
	for _, n := range nets {
		if n.Locked {
			continue
		}
		for _, p := range n.Pins {
			if p.X < 0 || p.X >= g.wExt || p.Y < 0 || p.Y >= g.hExt {
				return nil, fmt.Errorf("route: net %d pin %v off grid", n.ID, p)
			}
			if opt.Allowed != nil && !opt.Allowed(p) {
				return nil, fmt.Errorf("route: net %d pin %v outside allowed region", n.ID, p)
			}
		}
		if len(r.dedupePins(n.Pins)) >= 2 {
			work = append(work, n)
		} else {
			n.Route = nil
		}
	}
	sort.Slice(work, func(i, j int) bool { return work[i].ID < work[j].ID })

	startExp := r.expansions
	res := &Result{}
	presFac := 1.0
	for iter := 1; iter <= opt.MaxIters; iter++ {
		res.Iters = iter
		for _, n := range work {
			// Rip up.
			for _, e := range n.Route {
				r.use[e]--
			}
			route, err := r.routeNet(n, opt.Allowed, presFac)
			if err != nil {
				return nil, err
			}
			n.Route = route
			for _, e := range n.Route {
				r.use[e]++
			}
		}
		// Converged?
		over := 0
		for e := range r.use {
			if int(r.use[e]) > r.capEff {
				over++
				r.hist[e] += float64(int(r.use[e]) - r.capEff)
			}
		}
		res.Expansions = r.expansions - startExp
		res.Overused = over
		if over == 0 {
			break
		}
		presFac *= 1.8
	}
	sp.Add("routed-nets", int64(len(work)))
	sp.Add("route-iters", int64(res.Iters))
	sp.Add("route-expansions", res.Expansions)
	if res.Overused > 0 {
		return res, fmt.Errorf("route: %d edges still overused after %d iterations", res.Overused, res.Iters)
	}
	for _, n := range nets {
		res.Wirelength += len(n.Route)
	}
	return res, nil
}

// dedupePins maps pins to distinct node indices, reusing scratch.
func (r *Router) dedupePins(pins []device.XY) []int32 {
	for k := range r.pinSeen {
		delete(r.pinSeen, k)
	}
	out := r.pinScratch[:0]
	for _, p := range pins {
		n := r.g.NodeIdx(p)
		if !r.pinSeen[n] {
			r.pinSeen[n] = true
			out = append(out, n)
		}
	}
	r.pinScratch = out
	return out
}

// dedupePins is the package-level form used by verification helpers.
func dedupePins(g *Grid, pins []device.XY) []int32 {
	seen := make(map[int32]bool, len(pins))
	out := make([]int32, 0, len(pins))
	for _, p := range pins {
		n := g.NodeIdx(p)
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

type pqItem struct {
	node int32
	cost float64
}

type pq []pqItem

func (q pq) Len() int      { return len(q) }
func (q pq) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q pq) Less(i, j int) bool {
	if q[i].cost != q[j].cost {
		return q[i].cost < q[j].cost
	}
	return q[i].node < q[j].node
}
func (q *pq) Push(x any) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// edgeCost is the negotiated-congestion cost of adding one more use of e.
func (r *Router) edgeCost(e EdgeID, presFac float64) float64 {
	c := 1.0 + r.hist[e]
	over := int(r.use[e]) + 1 - r.capEff
	if over > 0 {
		c += presFac * float64(over)
	}
	return c
}

// routeNet grows a Steiner tree over the net's pins with repeated
// multi-source shortest-path searches.
func (r *Router) routeNet(n *Net, allowed func(device.XY) bool, presFac float64) ([]EdgeID, error) {
	pins := r.dedupePins(n.Pins)
	r.epoch++
	treeEp := r.epoch
	r.inTree[pins[0]] = treeEp
	remaining := 0
	for _, p := range pins[1:] {
		if p != pins[0] && r.target[p] != treeEp {
			r.target[p] = treeEp
			remaining++
		}
	}
	var route []EdgeID
	r.treeNodes = append(r.treeNodes[:0], pins[0])
	for remaining > 0 {
		target, path, err := r.search(r.treeNodes, treeEp, allowed, presFac)
		if err != nil {
			return nil, fmt.Errorf("route: net %d: %w", n.ID, err)
		}
		r.target[target] = 0
		remaining--
		for _, e := range path {
			route = append(route, e)
			a, b := r.g.EdgeEnds(e)
			for _, p := range []device.XY{a, b} {
				idx := r.g.NodeIdx(p)
				if r.inTree[idx] != treeEp {
					r.inTree[idx] = treeEp
					r.treeNodes = append(r.treeNodes, idx)
				}
			}
		}
	}
	return route, nil
}

// search runs a multi-source Dijkstra from the tree nodes to the nearest
// remaining target (nodes whose target epoch equals treeEp), returning
// the target and the path's edges.
func (r *Router) search(sources []int32, treeEp int32, allowed func(device.XY) bool, presFac float64) (int32, []EdgeID, error) {
	r.epoch++
	ep := r.epoch
	r.q = r.q[:0]
	for _, s := range sources {
		r.mark[s] = ep
		r.dist[s] = 0
		r.prev[s] = -1
		r.from[s] = -1
		r.q = append(r.q, pqItem{node: s, cost: 0})
	}
	heap.Init(&r.q)
	for r.q.Len() > 0 {
		it := heap.Pop(&r.q).(pqItem)
		if r.settled[it.node] == ep {
			continue
		}
		r.settled[it.node] = ep
		r.expansions++
		if r.target[it.node] == treeEp {
			// Trace back to a source.
			var path []EdgeID
			cur := it.node
			for r.prev[cur] != -1 {
				path = append(path, r.prev[cur])
				cur = r.from[cur]
			}
			return it.node, path, nil
		}
		r.g.neighbors(it.node, func(e EdgeID, to int32) {
			if allowed != nil && !allowed(r.g.NodeXY(to)) {
				return
			}
			nd := it.cost + r.edgeCost(e, presFac)
			if r.mark[to] != ep || nd < r.dist[to] {
				r.mark[to] = ep
				r.dist[to] = nd
				r.prev[to] = e
				r.from[to] = it.node
				heap.Push(&r.q, pqItem{node: to, cost: nd})
			}
		})
	}
	return 0, nil, fmt.Errorf("no path to any remaining sink (region too tight?)")
}
