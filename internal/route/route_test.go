package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgadbg/internal/device"
)

func grid(w, h, cap int) *Grid {
	return NewGrid(device.Device{W: w, H: h, ChannelWidth: cap})
}

func TestEdgeIndexRoundtrip(t *testing.T) {
	g := grid(5, 4, 8)
	seen := make(map[EdgeID]bool)
	for e := 0; e < g.NumEdges(); e++ {
		a, b := g.EdgeEnds(EdgeID(e))
		if device.ManhattanDist(a, b) != 1 {
			t.Fatalf("edge %d connects non-adjacent %v %v", e, a, b)
		}
		if seen[EdgeID(e)] {
			t.Fatalf("duplicate edge %d", e)
		}
		seen[EdgeID(e)] = true
	}
	// Neighbor edges must agree with EdgeEnds.
	for n := int32(0); n < int32(g.NumNodes()); n++ {
		g.neighbors(n, func(e EdgeID, to int32) {
			a, b := g.EdgeEnds(e)
			if !(g.NodeIdx(a) == n && g.NodeIdx(b) == to) && !(g.NodeIdx(b) == n && g.NodeIdx(a) == to) {
				t.Fatalf("neighbor edge %d mismatch: node %d to %d but ends %v %v", e, n, to, a, b)
			}
		})
	}
}

func TestSingleNetShortestPath(t *testing.T) {
	g := grid(8, 8, 4)
	n := &Net{ID: 0, Pins: []device.XY{{X: 1, Y: 1}, {X: 6, Y: 5}}}
	res, err := RouteAll(g, []*Net{n}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckRoutes(g, []*Net{n}, nil); err != nil {
		t.Fatal(err)
	}
	want := device.ManhattanDist(device.XY{X: 1, Y: 1}, device.XY{X: 6, Y: 5})
	if n.RouteLen() != want {
		t.Fatalf("route length %d, want manhattan %d", n.RouteLen(), want)
	}
	if res.Expansions == 0 {
		t.Fatal("no expansions recorded")
	}
}

func TestMultiTerminalSteiner(t *testing.T) {
	g := grid(8, 8, 4)
	n := &Net{ID: 0, Pins: []device.XY{{X: 4, Y: 4}, {X: 1, Y: 4}, {X: 7, Y: 4}, {X: 4, Y: 1}}}
	if _, err := RouteAll(g, []*Net{n}, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := CheckTree(g, n); err != nil {
		t.Fatal(err)
	}
	// Star from (4,4): 3+3+3 = 9 edges is optimal here.
	if n.RouteLen() != 9 {
		t.Fatalf("steiner length %d, want 9", n.RouteLen())
	}
}

func TestCongestionNegotiation(t *testing.T) {
	// Capacity 1 and two nets wanting the same straight channel: one must
	// detour, and usage must end legal.
	g := grid(6, 6, 1)
	n1 := &Net{ID: 1, Pins: []device.XY{{X: 1, Y: 3}, {X: 6, Y: 3}}}
	n2 := &Net{ID: 2, Pins: []device.XY{{X: 1, Y: 3}, {X: 6, Y: 3}}}
	if _, err := RouteAll(g, []*Net{n1, n2}, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := CheckRoutes(g, []*Net{n1, n2}, nil); err != nil {
		t.Fatal(err)
	}
	// With capacity 1 the two routes must not share any edge.
	used := make(map[EdgeID]bool)
	for _, e := range n1.Route {
		used[e] = true
	}
	for _, e := range n2.Route {
		if used[e] {
			t.Fatal("nets share an edge despite capacity 1")
		}
	}
	if n1.RouteLen() == 5 && n2.RouteLen() == 5 {
		t.Fatal("both nets kept the contested straight path")
	}
}

func TestPinsOffGridRejected(t *testing.T) {
	g := grid(4, 4, 2)
	n := &Net{ID: 0, Pins: []device.XY{{X: 1, Y: 1}, {X: 9, Y: 9}}}
	if _, err := RouteAll(g, []*Net{n}, Options{}); err == nil {
		t.Fatal("off-grid pin accepted")
	}
}

func TestSinglePinNetIsEmpty(t *testing.T) {
	g := grid(4, 4, 2)
	n := &Net{ID: 0, Pins: []device.XY{{X: 2, Y: 2}, {X: 2, Y: 2}}, Route: []EdgeID{3}}
	if _, err := RouteAll(g, []*Net{n}, Options{}); err != nil {
		t.Fatal(err)
	}
	if n.RouteLen() != 0 {
		t.Fatal("degenerate net should have empty route")
	}
}

func TestRegionRestrictedRouting(t *testing.T) {
	g := grid(8, 8, 4)
	region := device.RectSet{{X0: 1, Y0: 1, X1: 4, Y1: 4}}
	allowed := func(p device.XY) bool { return region.Contains(p) }
	n := &Net{ID: 0, Pins: []device.XY{{X: 1, Y: 1}, {X: 4, Y: 4}}}
	if _, err := RouteAll(g, []*Net{n}, Options{Allowed: allowed}); err != nil {
		t.Fatal(err)
	}
	for _, e := range n.Route {
		a, b := g.EdgeEnds(e)
		if !region.Contains(a) || !region.Contains(b) {
			t.Fatalf("edge %v-%v escapes region", a, b)
		}
	}
	// A pin outside the region must be rejected.
	bad := &Net{ID: 1, Pins: []device.XY{{X: 1, Y: 1}, {X: 7, Y: 7}}}
	if _, err := RouteAll(g, []*Net{bad}, Options{Allowed: allowed}); err == nil {
		t.Fatal("pin outside region accepted")
	}
}

func TestFixedUseBlocksChannels(t *testing.T) {
	// Saturate the direct channel with fixed usage; the net must detour.
	g := grid(6, 1, 1)
	fixed := make([]int16, g.NumEdges())
	// Block the horizontal edge between (3,1) and (4,1).
	fixed[g.hEdge(3, 1)] = 1
	n := &Net{ID: 0, Pins: []device.XY{{X: 1, Y: 1}, {X: 6, Y: 1}}}
	if _, err := RouteAll(g, []*Net{n}, Options{FixedUse: fixed}); err != nil {
		t.Fatal(err)
	}
	if err := CheckRoutes(g, []*Net{n}, fixed); err != nil {
		t.Fatal(err)
	}
	if n.RouteLen() <= 5 {
		t.Fatalf("net did not detour around fixed usage: len=%d", n.RouteLen())
	}
}

func TestLockedNetsUntouched(t *testing.T) {
	g := grid(6, 6, 2)
	locked := &Net{ID: 0, Pins: []device.XY{{X: 1, Y: 1}, {X: 3, Y: 1}}, Locked: true,
		Route: []EdgeID{g.hEdge(1, 1), g.hEdge(2, 1)}}
	moving := &Net{ID: 1, Pins: []device.XY{{X: 1, Y: 2}, {X: 5, Y: 2}}}
	before := append([]EdgeID(nil), locked.Route...)
	if _, err := RouteAll(g, []*Net{locked, moving}, Options{FixedUse: UsageOf(g, []*Net{locked})}); err != nil {
		t.Fatal(err)
	}
	if len(locked.Route) != len(before) {
		t.Fatal("locked net modified")
	}
	for i := range before {
		if locked.Route[i] != before[i] {
			t.Fatal("locked net edges changed")
		}
	}
}

func TestInfeasibleCongestionErrors(t *testing.T) {
	// 3 nets across a single-track one-row device: only 1 can use each
	// channel; with H=1 there are 3 parallel rows (y=0,1,2) so 3 nets fit,
	// 4 cannot.
	g := grid(4, 1, 1)
	var nets []*Net
	for i := 0; i < 4; i++ {
		nets = append(nets, &Net{ID: i, Pins: []device.XY{{X: 0, Y: 1}, {X: 5, Y: 1}}})
	}
	_, err := RouteAll(g, nets, Options{MaxIters: 12})
	if err == nil {
		t.Fatal("infeasible routing succeeded")
	}
}

func TestSplitRoute(t *testing.T) {
	g := grid(8, 8, 4)
	n := &Net{ID: 0, Pins: []device.XY{{X: 1, Y: 2}, {X: 8, Y: 2}}}
	if _, err := RouteAll(g, []*Net{n}, Options{}); err != nil {
		t.Fatal(err)
	}
	region := device.RectSet{{X0: 1, Y0: 1, X1: 4, Y1: 4}}
	inside, outside, crossings := SplitRoute(g, n.Route, region)
	if len(inside)+len(outside) != len(n.Route) {
		t.Fatal("split lost edges")
	}
	if len(crossings) != 1 {
		t.Fatalf("crossings = %v, want exactly 1", crossings)
	}
	if !region.Contains(crossings[0]) {
		t.Fatal("crossing point must lie inside the region")
	}
	for _, e := range inside {
		a, b := g.EdgeEnds(e)
		if !region.Contains(a) || !region.Contains(b) {
			t.Fatal("inside edge not inside")
		}
	}
}

func TestCheckTreeCatchesBadRoutes(t *testing.T) {
	g := grid(6, 6, 2)
	// Disconnected route.
	n := &Net{ID: 0, Pins: []device.XY{{X: 1, Y: 1}, {X: 4, Y: 1}},
		Route: []EdgeID{g.hEdge(1, 1)}}
	if err := CheckTree(g, n); err == nil {
		t.Fatal("disconnected route passed")
	}
	// Cyclic route.
	cyc := &Net{ID: 1, Pins: []device.XY{{X: 1, Y: 1}, {X: 2, Y: 2}},
		Route: []EdgeID{g.hEdge(1, 1), g.vEdge(2, 1), g.hEdge(1, 2), g.vEdge(1, 1)}}
	if err := CheckTree(g, cyc); err == nil {
		t.Fatal("cyclic route passed")
	}
}

func TestDeterministicRouting(t *testing.T) {
	mk := func() []*Net {
		r := rand.New(rand.NewSource(5))
		var nets []*Net
		for i := 0; i < 30; i++ {
			nets = append(nets, &Net{ID: i, Pins: []device.XY{
				{X: 1 + r.Intn(8), Y: 1 + r.Intn(8)},
				{X: 1 + r.Intn(8), Y: 1 + r.Intn(8)},
				{X: 1 + r.Intn(8), Y: 1 + r.Intn(8)},
			}})
		}
		return nets
	}
	g := grid(8, 8, 3)
	n1, n2 := mk(), mk()
	r1, err := RouteAll(g, n1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RouteAll(grid(8, 8, 3), n2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Expansions != r2.Expansions || r1.Wirelength != r2.Wirelength {
		t.Fatalf("nondeterministic: %v vs %v", r1, r2)
	}
	for i := range n1 {
		if len(n1[i].Route) != len(n2[i].Route) {
			t.Fatalf("net %d route differs", i)
		}
	}
}

// Property: random multi-pin nets on a roomy grid always route into valid
// trees within capacity.
func TestQuickRandomNets(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(71))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := grid(10, 10, 6)
		var nets []*Net
		for i := 0; i < 20; i++ {
			k := 2 + r.Intn(4)
			pins := make([]device.XY, k)
			for j := range pins {
				pins[j] = device.XY{X: 1 + r.Intn(10), Y: 1 + r.Intn(10)}
			}
			nets = append(nets, &Net{ID: i, Pins: pins})
		}
		if _, err := RouteAll(g, nets, Options{}); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return CheckRoutes(g, nets, nil) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoute100Nets(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	g := grid(20, 20, 8)
	mk := func() []*Net {
		var nets []*Net
		for i := 0; i < 100; i++ {
			nets = append(nets, &Net{ID: i, Pins: []device.XY{
				{X: 1 + r.Intn(20), Y: 1 + r.Intn(20)},
				{X: 1 + r.Intn(20), Y: 1 + r.Intn(20)},
			}})
		}
		return nets
	}
	nets := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nets {
			n.Route = nil
		}
		if _, err := RouteAll(g, nets, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// cloneNets deep-copies a net list so two routers can solve the identical
// problem independently.
func cloneNets(nets []*Net) []*Net {
	out := make([]*Net, len(nets))
	for i, n := range nets {
		cp := *n
		cp.Pins = append([]device.XY(nil), n.Pins...)
		cp.Route = append([]EdgeID(nil), n.Route...)
		out[i] = &cp
	}
	return out
}

// TestRouterReuseMatchesRouteAll is the persistent-engine differential
// oracle: a Router reused across many independent routing problems must
// produce routes, effort and wirelength bit-identical to a fresh RouteAll
// per problem.
func TestRouterReuseMatchesRouteAll(t *testing.T) {
	g := grid(10, 10, 4)
	shared := NewRouter(g)
	rng := rand.New(rand.NewSource(17))
	for pass := 0; pass < 8; pass++ {
		var nets []*Net
		for i := 0; i < 25; i++ {
			k := 2 + rng.Intn(3)
			pins := make([]device.XY, k)
			for j := range pins {
				pins[j] = device.XY{X: 1 + rng.Intn(10), Y: 1 + rng.Intn(10)}
			}
			nets = append(nets, &Net{ID: i, Pins: pins})
		}
		fresh := cloneNets(nets)
		rs, err := shared.Route(nets, Options{})
		if err != nil {
			t.Fatalf("pass %d shared: %v", pass, err)
		}
		rf, err := RouteAll(grid(10, 10, 4), fresh, Options{})
		if err != nil {
			t.Fatalf("pass %d fresh: %v", pass, err)
		}
		if rs.Expansions != rf.Expansions || rs.Wirelength != rf.Wirelength || rs.Iters != rf.Iters {
			t.Fatalf("pass %d: results diverge: shared %+v fresh %+v", pass, rs, rf)
		}
		for i := range nets {
			if len(nets[i].Route) != len(fresh[i].Route) {
				t.Fatalf("pass %d net %d: route length %d vs %d", pass, i, len(nets[i].Route), len(fresh[i].Route))
			}
			for j := range nets[i].Route {
				if nets[i].Route[j] != fresh[i].Route[j] {
					t.Fatalf("pass %d net %d: edge %d differs", pass, i, j)
				}
			}
		}
	}
}

// TestRouterChargeMatchesFixedUse pins the incremental entry point: locked
// wiring accumulated through BeginPass/Charge must route identically to
// the same usage passed as Options.FixedUse.
func TestRouterChargeMatchesFixedUse(t *testing.T) {
	g := grid(8, 8, 2)
	locked := &Net{ID: 0, Pins: []device.XY{{X: 1, Y: 3}, {X: 6, Y: 3}}}
	if _, err := RouteAll(g, []*Net{locked}, Options{}); err != nil {
		t.Fatal(err)
	}
	mk := func() []*Net {
		return []*Net{
			{ID: 1, Pins: []device.XY{{X: 1, Y: 3}, {X: 6, Y: 4}}},
			{ID: 2, Pins: []device.XY{{X: 2, Y: 2}, {X: 5, Y: 6}}},
		}
	}
	viaFixed := mk()
	if _, err := RouteAll(g, viaFixed, Options{FixedUse: UsageOf(g, []*Net{locked})}); err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g)
	r.BeginPass()
	r.Charge(locked.Route)
	viaCharge := mk()
	if _, err := r.Route(viaCharge, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range viaFixed {
		if len(viaFixed[i].Route) != len(viaCharge[i].Route) {
			t.Fatalf("net %d: lengths differ", i)
		}
		for j := range viaFixed[i].Route {
			if viaFixed[i].Route[j] != viaCharge[i].Route[j] {
				t.Fatalf("net %d edge %d differs", i, j)
			}
		}
	}
	// The pass accumulator must reset cleanly.
	r.BeginPass()
	for e, u := range r.FixedUse() {
		if u != 0 {
			t.Fatalf("edge %d still charged after BeginPass", e)
		}
	}
}

func BenchmarkRouterReuse(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	g := grid(20, 20, 8)
	var nets []*Net
	for i := 0; i < 100; i++ {
		nets = append(nets, &Net{ID: i, Pins: []device.XY{
			{X: 1 + r.Intn(20), Y: 1 + r.Intn(20)},
			{X: 1 + r.Intn(20), Y: 1 + r.Intn(20)},
		}})
	}
	router := NewRouter(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nets {
			n.Route = nil
		}
		if _, err := router.Route(nets, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
