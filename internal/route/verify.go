package route

import (
	"fmt"

	"fpgadbg/internal/device"
)

// CheckRoutes validates that every net's route is a connected tree
// spanning its pins and that total usage (including fixedUse) respects
// capacity. It is the router's externally checkable contract.
func CheckRoutes(g *Grid, nets []*Net, fixedUse []int16) error {
	use := make([]int16, g.NumEdges())
	if fixedUse != nil {
		copy(use, fixedUse)
	}
	for _, n := range nets {
		if n.Locked {
			continue
		}
		if err := CheckTree(g, n); err != nil {
			return err
		}
		for _, e := range n.Route {
			use[e]++
		}
	}
	for e := range use {
		if int(use[e]) > g.Cap {
			a, b := g.EdgeEnds(EdgeID(e))
			return fmt.Errorf("route: edge %v-%v used %d > capacity %d", a, b, use[e], g.Cap)
		}
	}
	return nil
}

// CheckTree validates a single net: the route's edges connect all pins in
// one component and contain no cycle (edge count == node count - 1).
func CheckTree(g *Grid, n *Net) error {
	pins := dedupePins(g, n.Pins)
	if len(pins) < 2 {
		if len(n.Route) != 0 {
			return fmt.Errorf("route: net %d has %d edges but fewer than 2 distinct pins", n.ID, len(n.Route))
		}
		return nil
	}
	parent := make(map[int32]int32)
	var find func(x int32) int32
	find = func(x int32) int32 {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	add := func(x int32) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	nodes := make(map[int32]bool)
	cycle := false
	for _, e := range n.Route {
		a, b := g.EdgeEnds(e)
		ai, bi := g.NodeIdx(a), g.NodeIdx(b)
		nodes[ai] = true
		nodes[bi] = true
		add(ai)
		add(bi)
		ra, rb := find(ai), find(bi)
		if ra == rb {
			cycle = true
		} else {
			parent[ra] = rb
		}
	}
	if cycle {
		return fmt.Errorf("route: net %d route contains a cycle", n.ID)
	}
	for _, p := range pins {
		add(p)
		nodes[p] = true
	}
	root := find(pins[0])
	for _, p := range pins[1:] {
		if find(p) != root {
			return fmt.Errorf("route: net %d pin %v disconnected", n.ID, g.NodeXY(p))
		}
	}
	return nil
}

// SplitRoute partitions a route against a region: edges fully inside,
// edges fully outside (including boundary-crossing edges, which stay with
// the locked outside portion), and the crossing coordinates — the nodes
// just inside the region where the route enters or leaves. Crossings are
// the locked tile-interface points of the paper: a tile-local re-route
// treats them as immovable virtual pins.
func SplitRoute(g *Grid, route []EdgeID, region device.RectSet) (inside, outside []EdgeID, crossings []device.XY) {
	seen := make(map[device.XY]bool)
	for _, e := range route {
		a, b := g.EdgeEnds(e)
		ain, bin := region.Contains(a), region.Contains(b)
		switch {
		case ain && bin:
			inside = append(inside, e)
		case !ain && !bin:
			outside = append(outside, e)
		default:
			outside = append(outside, e)
			p := a
			if bin {
				p = b
			}
			if !seen[p] {
				seen[p] = true
				crossings = append(crossings, p)
			}
		}
	}
	return inside, outside, crossings
}

// UsageOf accumulates per-edge usage of the given nets (locked or not)
// into a fresh table; used to build FixedUse for region re-routes.
func UsageOf(g *Grid, nets []*Net) []int16 {
	use := make([]int16, g.NumEdges())
	for _, n := range nets {
		for _, e := range n.Route {
			use[e]++
		}
	}
	return use
}
