// Package logic provides the Boolean-function representations used
// throughout the tiling CAD flow: product terms (Cube), two-level
// sum-of-products covers (Cover), and bit-vector truth tables (TT).
//
// Covers are the working representation for technology-independent logic:
// they cofactor cheaply, which the LUT decomposition in package synth relies
// on. Truth tables are the working representation for mapped 4-input LUTs
// and for equivalence checking in tests. Both forms evaluate 64 input
// patterns at a time (see Cover.EvalWords), which the bit-parallel simulator
// in package sim builds on.
package logic
