package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxVars is the largest number of variables a Cube or Cover may range over.
const MaxVars = 64

// Cube is a product term (a conjunction of literals) over up to MaxVars
// Boolean variables. Bit i of Mask is set when variable i appears in the
// term; the corresponding bit of Val gives the required value. Bits of Val
// outside Mask must be zero. The empty cube (Mask == 0) is the constant
// true.
type Cube struct {
	Mask uint64
	Val  uint64
}

// CubeFromString parses PLA input-plane notation: one character per
// variable, '1' for a positive literal, '0' for a negative literal and '-'
// for an absent variable. Variable 0 is the leftmost character.
func CubeFromString(s string) (Cube, error) {
	if len(s) > MaxVars {
		return Cube{}, fmt.Errorf("logic: cube %q exceeds %d variables", s, MaxVars)
	}
	var c Cube
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
			c.Mask |= 1 << i
		case '1':
			c.Mask |= 1 << i
			c.Val |= 1 << i
		case '-':
			// absent
		default:
			return Cube{}, fmt.Errorf("logic: cube %q has invalid character %q", s, s[i])
		}
	}
	return c, nil
}

// CubeOfMinterm returns the cube selecting exactly the assignment m over n
// variables.
func CubeOfMinterm(n int, m uint64) Cube {
	mask := maskN(n)
	return Cube{Mask: mask, Val: m & mask}
}

func maskN(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// Eval reports whether the cube covers the assignment. Bit i of assign is
// the value of variable i.
func (c Cube) Eval(assign uint64) bool { return assign&c.Mask == c.Val }

// NumLits returns the number of literals in the cube.
func (c Cube) NumLits() int { return bits.OnesCount64(c.Mask) }

// Contains reports whether every minterm of d is also a minterm of c, i.e.
// whether every literal of c appears in d with the same polarity.
func (c Cube) Contains(d Cube) bool {
	return c.Mask&^d.Mask == 0 && d.Val&c.Mask == c.Val
}

// Intersects reports whether the two cubes share at least one minterm.
func (c Cube) Intersects(d Cube) bool {
	m := c.Mask & d.Mask
	return c.Val&m == d.Val&m
}

// And returns the product of two cubes. ok is false when the product is
// empty (the cubes conflict on some variable).
func (c Cube) And(d Cube) (prod Cube, ok bool) {
	if !c.Intersects(d) {
		return Cube{}, false
	}
	return Cube{Mask: c.Mask | d.Mask, Val: c.Val | d.Val}, true
}

// TestsVar reports whether variable v appears as a literal.
func (c Cube) TestsVar(v int) bool { return c.Mask&(1<<v) != 0 }

// LitVal returns the polarity of variable v's literal. It must only be
// called when TestsVar(v) is true.
func (c Cube) LitVal(v int) bool { return c.Val&(1<<v) != 0 }

// WithLit returns the cube with variable v constrained to val.
func (c Cube) WithLit(v int, val bool) Cube {
	c.Mask |= 1 << v
	if val {
		c.Val |= 1 << v
	} else {
		c.Val &^= 1 << v
	}
	return c
}

// DropVar returns the cube with any literal on variable v removed.
func (c Cube) DropVar(v int) Cube {
	c.Mask &^= 1 << v
	c.Val &^= 1 << v
	return c
}

// MergeDistance1 merges two cubes that differ only in the polarity of a
// single shared literal (the classic a·x + a·x' = a identity). ok is false
// when the cubes are not mergeable this way.
func (c Cube) MergeDistance1(d Cube) (merged Cube, ok bool) {
	if c.Mask != d.Mask {
		return Cube{}, false
	}
	diff := c.Val ^ d.Val
	if bits.OnesCount64(diff) != 1 {
		return Cube{}, false
	}
	return Cube{Mask: c.Mask &^ diff, Val: c.Val &^ diff}, true
}

// String renders the cube in PLA notation over n variables.
func (c Cube) String(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		switch {
		case !c.TestsVar(i):
			b.WriteByte('-')
		case c.LitVal(i):
			b.WriteByte('1')
		default:
			b.WriteByte('0')
		}
	}
	return b.String()
}
