package logic

import (
	"fmt"
	"math/bits"
)

// AndN returns the n-input AND as a cover (a single cube of positive
// literals).
func AndN(n int) Cover {
	return Cover{N: n, Cubes: []Cube{{Mask: maskN(n), Val: maskN(n)}}}
}

// NorN returns the n-input NOR (a single cube of negative literals, by De
// Morgan).
func NorN(n int) Cover {
	return Cover{N: n, Cubes: []Cube{{Mask: maskN(n)}}}
}

// OrN returns the n-input OR (one positive literal per cube).
func OrN(n int) Cover {
	c := Cover{N: n, Cubes: make([]Cube, n)}
	for i := 0; i < n; i++ {
		c.Cubes[i] = Cube{Mask: 1 << i, Val: 1 << i}
	}
	return c
}

// NandN returns the n-input NAND (one negative literal per cube).
func NandN(n int) Cover {
	c := Cover{N: n, Cubes: make([]Cube, n)}
	for i := 0; i < n; i++ {
		c.Cubes[i] = Cube{Mask: 1 << i}
	}
	return c
}

// XorN returns n-input parity. The SOP has 2^(n-1) cubes, so n is limited
// to TTMaxVars; wide parities should be built as XOR trees instead (package
// synth does this automatically).
func XorN(n int) Cover {
	if n > TTMaxVars {
		panic(fmt.Sprintf("logic: XorN(%d) exceeds %d; build a tree instead", n, TTMaxVars))
	}
	c := Cover{N: n}
	for m := uint64(0); m < uint64(1)<<n; m++ {
		if bits.OnesCount64(m)%2 == 1 {
			c.Cubes = append(c.Cubes, CubeOfMinterm(n, m))
		}
	}
	return c
}

// XnorN returns n-input even parity, with the same width limit as XorN.
func XnorN(n int) Cover {
	if n > TTMaxVars {
		panic(fmt.Sprintf("logic: XnorN(%d) exceeds %d; build a tree instead", n, TTMaxVars))
	}
	c := Cover{N: n}
	for m := uint64(0); m < uint64(1)<<n; m++ {
		if bits.OnesCount64(m)%2 == 0 {
			c.Cubes = append(c.Cubes, CubeOfMinterm(n, m))
		}
	}
	return c
}

// NotN returns the inverter over one variable.
func NotN() Cover { return NotVarC(1, 0) }

// BufN returns the identity over one variable.
func BufN() Cover { return Var(1, 0) }

// Mux2 returns the 2:1 multiplexer over (sel, a, b) = variables (0, 1, 2):
// out = sel ? b : a.
func Mux2() Cover {
	return Cover{N: 3, Cubes: []Cube{
		{Mask: 0b011, Val: 0b010}, // ¬sel · a
		{Mask: 0b101, Val: 0b101}, // sel · b
	}}
}

// Maj3 returns the 3-input majority function (the carry of a full adder).
func Maj3() Cover {
	return Cover{N: 3, Cubes: []Cube{
		{Mask: 0b011, Val: 0b011},
		{Mask: 0b101, Val: 0b101},
		{Mask: 0b110, Val: 0b110},
	}}
}

// Symmetric returns the n-input symmetric function that is true exactly
// when the number of true inputs k satisfies want(k). This is how the
// MCNC benchmark 9sym is generated (want(k) for k in 3..6). n is limited to
// TTMaxVars.
func Symmetric(n int, want func(onesCount int) bool) Cover {
	if n > TTMaxVars {
		panic(fmt.Sprintf("logic: Symmetric(%d) exceeds %d", n, TTMaxVars))
	}
	c := Cover{N: n}
	for m := uint64(0); m < uint64(1)<<n; m++ {
		if want(bits.OnesCount64(m)) {
			c.Cubes = append(c.Cubes, CubeOfMinterm(n, m))
		}
	}
	return c.Simplify()
}

// EqConst returns the n-input function true exactly on assignment k.
func EqConst(n int, k uint64) Cover {
	return Cover{N: n, Cubes: []Cube{CubeOfMinterm(n, k)}}
}

// FullAdderSum returns the sum output of a full adder over (a, b, cin) —
// 3-input parity.
func FullAdderSum() Cover { return XorN(3) }

// TTFromWord4 builds a 4-variable truth table from its 16-bit configuration
// word, the inverse of TT.Word4.
func TTFromWord4(w uint16) TT {
	t := NewTT(4)
	t.W[0] = uint64(w)
	return t
}
