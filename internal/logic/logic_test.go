package logic

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// randCover produces a random cover for property tests.
func randCover(r *rand.Rand, n, maxCubes int) Cover {
	c := Cover{N: n}
	k := r.Intn(maxCubes + 1)
	for i := 0; i < k; i++ {
		var cu Cube
		for v := 0; v < n; v++ {
			switch r.Intn(3) {
			case 0:
				cu = cu.WithLit(v, false)
			case 1:
				cu = cu.WithLit(v, true)
			}
		}
		c.Cubes = append(c.Cubes, cu)
	}
	return c
}

func TestCubeFromString(t *testing.T) {
	c, err := CubeFromString("1-0")
	if err != nil {
		t.Fatal(err)
	}
	if c.Mask != 0b101 || c.Val != 0b001 {
		t.Fatalf("got mask=%b val=%b", c.Mask, c.Val)
	}
	if !c.Eval(0b001) || !c.Eval(0b011) || c.Eval(0b000) || c.Eval(0b101) {
		t.Fatal("cube evaluation wrong")
	}
	if c.String(3) != "1-0" {
		t.Fatalf("roundtrip got %q", c.String(3))
	}
	if _, err := CubeFromString("10x"); err == nil {
		t.Fatal("expected error on invalid character")
	}
}

func TestCubeContainsIntersects(t *testing.T) {
	a, _ := CubeFromString("1--")
	b, _ := CubeFromString("10-")
	c, _ := CubeFromString("0--")
	if !a.Contains(b) {
		t.Fatal("1-- should contain 10-")
	}
	if b.Contains(a) {
		t.Fatal("10- should not contain 1--")
	}
	if !a.Intersects(b) || a.Intersects(c) {
		t.Fatal("intersection wrong")
	}
	if _, ok := a.And(c); ok {
		t.Fatal("conflicting cubes should have empty product")
	}
	p, ok := a.And(b)
	if !ok || p != b {
		t.Fatalf("a·b should be b, got %v ok=%v", p, ok)
	}
}

func TestCubeMergeDistance1(t *testing.T) {
	a, _ := CubeFromString("10-")
	b, _ := CubeFromString("11-")
	m, ok := a.MergeDistance1(b)
	if !ok {
		t.Fatal("expected merge")
	}
	if m.String(3) != "1--" {
		t.Fatalf("merged to %q", m.String(3))
	}
	c, _ := CubeFromString("0--")
	if _, ok := a.MergeDistance1(c); ok {
		t.Fatal("different masks must not merge")
	}
}

func TestCoverEvalBasics(t *testing.T) {
	c := MustFromStrings("11-", "--1")
	cases := []struct {
		in   uint64
		want bool
	}{
		{0b000, false}, {0b011, true}, {0b100, true}, {0b111, true}, {0b010, false},
	}
	for _, tc := range cases {
		if got := c.Eval(tc.in); got != tc.want {
			t.Errorf("Eval(%03b) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestConstCovers(t *testing.T) {
	f := Const(3, false)
	tr := Const(3, true)
	if !f.IsConstFalse() || tr.IsConstFalse() {
		t.Fatal("const classification wrong")
	}
	if !tr.IsTautology() || f.IsTautology() {
		t.Fatal("tautology classification wrong")
	}
	if f.Eval(5) || !tr.Eval(5) {
		t.Fatal("const eval wrong")
	}
}

func TestIsTautologyNontrivial(t *testing.T) {
	// x + x' is a tautology without containing the empty cube.
	c := Var(2, 0).Or(NotVarC(2, 0))
	if !c.IsTautology() {
		t.Fatal("x + x' must be a tautology")
	}
	d := Var(2, 0).Or(Var(2, 1))
	if d.IsTautology() {
		t.Fatal("x + y is not a tautology")
	}
}

func TestCofactorShannon(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(6)
		c := randCover(r, n, 8)
		v := r.Intn(n)
		f1 := c.Cofactor(v, true)
		f0 := c.Cofactor(v, false)
		for m := uint64(0); m < uint64(1)<<n; m++ {
			var want bool
			if m&(1<<v) != 0 {
				want = f1.Eval(m)
			} else {
				want = f0.Eval(m)
			}
			if c.Eval(m) != want {
				t.Fatalf("Shannon violated: n=%d v=%d m=%b cover=%s", n, v, m, c)
			}
			// Cofactors must not depend on v.
			if f1.Eval(m) != f1.Eval(m^(1<<v)) || f0.Eval(m) != f0.Eval(m^(1<<v)) {
				t.Fatalf("cofactor depends on cofactored variable")
			}
		}
	}
}

func TestSimplifyPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(7)
		c := randCover(r, n, 10)
		s := c.Simplify()
		for m := uint64(0); m < uint64(1)<<n; m++ {
			if c.Eval(m) != s.Eval(m) {
				t.Fatalf("simplify changed function at %b: %s -> %s", m, c, s)
			}
		}
		if s.NumCubes() > c.NumCubes() {
			t.Fatalf("simplify grew the cover: %d -> %d", c.NumCubes(), s.NumCubes())
		}
	}
}

func TestIrredundantPreservesFunction(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(6)
		c := randCover(r, n, 8)
		// Duplicate some cubes to create redundancy.
		if len(c.Cubes) > 0 {
			c.Cubes = append(c.Cubes, c.Cubes[0])
		}
		s := c.Irredundant()
		for m := uint64(0); m < uint64(1)<<n; m++ {
			if c.Eval(m) != s.Eval(m) {
				t.Fatalf("irredundant changed function")
			}
		}
	}
}

func TestEvalWordsMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(10)
		c := randCover(r, n, 12)
		in := make([]uint64, n)
		for i := range in {
			in[i] = r.Uint64()
		}
		got := c.EvalWords(in)
		for p := 0; p < 64; p++ {
			var assign uint64
			for i := 0; i < n; i++ {
				if in[i]&(1<<p) != 0 {
					assign |= 1 << i
				}
			}
			want := c.Eval(assign)
			if (got&(1<<p) != 0) != want {
				t.Fatalf("EvalWords bit %d mismatch (n=%d cover=%s)", p, n, c)
			}
		}
	}
}

func TestAndOrSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 150; trial++ {
		n := 1 + r.Intn(5)
		a := randCover(r, n, 5)
		b := randCover(r, n, 5)
		and := a.And(b)
		or := a.Or(b)
		for m := uint64(0); m < uint64(1)<<n; m++ {
			if and.Eval(m) != (a.Eval(m) && b.Eval(m)) {
				t.Fatalf("And semantics wrong")
			}
			if or.Eval(m) != (a.Eval(m) || b.Eval(m)) {
				t.Fatalf("Or semantics wrong")
			}
		}
	}
}

func TestNotViaTT(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(6)
		a := randCover(r, n, 6)
		na, err := a.Not()
		if err != nil {
			t.Fatal(err)
		}
		for m := uint64(0); m < uint64(1)<<n; m++ {
			if na.Eval(m) == a.Eval(m) {
				t.Fatalf("Not failed at %b", m)
			}
		}
	}
}

func TestCompactAndPermute(t *testing.T) {
	// f over 6 vars but only depends on vars 1 and 4.
	c := FromCubes(6,
		Cube{}.WithLit(1, true).WithLit(4, false),
		Cube{}.WithLit(4, true),
	)
	cc, vars := c.Compact()
	if cc.N != 2 || len(vars) != 2 || vars[0] != 1 || vars[1] != 4 {
		t.Fatalf("compact: N=%d vars=%v", cc.N, vars)
	}
	for m := uint64(0); m < 64; m++ {
		var small uint64
		for j, v := range vars {
			if m&(1<<v) != 0 {
				small |= 1 << j
			}
		}
		if c.Eval(m) != cc.Eval(small) {
			t.Fatalf("compact changed function")
		}
	}
	// Permute back.
	perm := []int{1, 4}
	back := cc.Permute(6, perm)
	for m := uint64(0); m < 64; m++ {
		if back.Eval(m) != c.Eval(m) {
			t.Fatalf("permute roundtrip failed at %b", m)
		}
	}
}

func TestTTBasics(t *testing.T) {
	x := TTVar(3, 0)
	y := TTVar(3, 1)
	and := x.And(y)
	for m := uint64(0); m < 8; m++ {
		want := m&1 != 0 && m&2 != 0
		if and.Bit(m) != want {
			t.Fatalf("and.Bit(%b)", m)
		}
	}
	if c, _ := TTConst(3, true).IsConst(); !c {
		t.Fatal("const true not detected")
	}
	if and.DependsOn(2) {
		t.Fatal("x·y must not depend on var 2")
	}
	if !and.DependsOn(0) || !and.DependsOn(1) {
		t.Fatal("x·y must depend on vars 0,1")
	}
	if and.SupportSize() != 2 {
		t.Fatal("support size")
	}
}

func TestTTWideWords(t *testing.T) {
	// 8-variable parity exercises multi-word tables.
	p := TTFromFunc(8, func(m uint64) bool { return bits.OnesCount64(m)%2 == 1 })
	if len(p.W) != 4 {
		t.Fatalf("expected 4 words, got %d", len(p.W))
	}
	if p.CountOnes() != 128 {
		t.Fatalf("parity ones = %d", p.CountOnes())
	}
	np := p.Not()
	if np.CountOnes() != 128 {
		t.Fatalf("complement ones = %d", np.CountOnes())
	}
	if !p.Xor(np).Equal(TTConst(8, true)) {
		t.Fatal("p xor ~p must be const 1")
	}
}

func TestTTCofactor(t *testing.T) {
	f := TTFromFunc(4, func(m uint64) bool { return m&1 != 0 || (m&2 != 0 && m&4 != 0) })
	c1 := f.CofactorTT(0, true)
	c0 := f.CofactorTT(0, false)
	for m := uint64(0); m < 16; m++ {
		if c1.Bit(m) != f.Bit(m|1) || c0.Bit(m) != f.Bit(m&^1) {
			t.Fatalf("tt cofactor wrong at %b", m)
		}
	}
}

func TestCoverTTRoundtrip(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(8)
		c := randCover(r, n, 10)
		tt, err := c.TT()
		if err != nil {
			t.Fatal(err)
		}
		back := tt.ToCover()
		bt, err := back.TT()
		if err != nil {
			t.Fatal(err)
		}
		if !tt.Equal(bt) {
			t.Fatalf("tt->cover->tt changed function: %s", c)
		}
	}
}

func TestWord4Roundtrip(t *testing.T) {
	for _, w := range []uint16{0x0000, 0xffff, 0x8000, 0x6996, 0xcafe} {
		tt := TTFromWord4(w)
		got, err := tt.Word4()
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Fatalf("word4 roundtrip %04x -> %04x", w, got)
		}
	}
	// Narrower tables replicate across unused variables.
	x := TTVar(1, 0)
	w, err := x.Word4()
	if err != nil {
		t.Fatal(err)
	}
	if w != 0xaaaa {
		t.Fatalf("projection word = %04x", w)
	}
}

func TestBuilders(t *testing.T) {
	for n := 1; n <= 6; n++ {
		and := AndN(n)
		or := OrN(n)
		nand := NandN(n)
		nor := NorN(n)
		xor := XorN(n)
		xnor := XnorN(n)
		for m := uint64(0); m < uint64(1)<<n; m++ {
			ones := bits.OnesCount64(m & maskN(n))
			all := ones == n
			none := ones == 0
			if and.Eval(m) != all {
				t.Fatalf("AndN(%d) at %b", n, m)
			}
			if or.Eval(m) != !none {
				t.Fatalf("OrN(%d) at %b", n, m)
			}
			if nand.Eval(m) != !all {
				t.Fatalf("NandN(%d) at %b", n, m)
			}
			if nor.Eval(m) != none {
				t.Fatalf("NorN(%d) at %b", n, m)
			}
			if xor.Eval(m) != (ones%2 == 1) {
				t.Fatalf("XorN(%d) at %b", n, m)
			}
			if xnor.Eval(m) != (ones%2 == 0) {
				t.Fatalf("XnorN(%d) at %b", n, m)
			}
		}
	}
}

func TestMuxMaj(t *testing.T) {
	mux := Mux2()
	for m := uint64(0); m < 8; m++ {
		sel, a, b := m&1 != 0, m&2 != 0, m&4 != 0
		want := a
		if sel {
			want = b
		}
		if mux.Eval(m) != want {
			t.Fatalf("Mux2 at %b", m)
		}
	}
	maj := Maj3()
	for m := uint64(0); m < 8; m++ {
		want := bits.OnesCount64(m) >= 2
		if maj.Eval(m) != want {
			t.Fatalf("Maj3 at %b", m)
		}
	}
}

func TestSymmetric9sym(t *testing.T) {
	// The MCNC 9sym function: true when 3..6 of the 9 inputs are true.
	f := Symmetric(9, func(k int) bool { return k >= 3 && k <= 6 })
	for m := uint64(0); m < 512; m++ {
		k := bits.OnesCount64(m)
		if f.Eval(m) != (k >= 3 && k <= 6) {
			t.Fatalf("9sym wrong at %09b", m)
		}
	}
	if f.NumCubes() >= 512 {
		t.Fatalf("simplify did not reduce the minterm list: %d cubes", f.NumCubes())
	}
}

func TestEqConst(t *testing.T) {
	f := EqConst(5, 19)
	for m := uint64(0); m < 32; m++ {
		if f.Eval(m) != (m == 19) {
			t.Fatalf("EqConst at %b", m)
		}
	}
}

// Property: Or never loses minterms; And of a cover with itself is itself
// semantically.
func TestQuickCoverProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}
	prop := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%7)
		a := randCover(r, n, 6)
		b := randCover(r, n, 6)
		or := a.Or(b)
		andSelf := a.And(a)
		for m := uint64(0); m < uint64(1)<<n; m++ {
			if a.Eval(m) && !or.Eval(m) {
				return false
			}
			if andSelf.Eval(m) != a.Eval(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Canon is a semantic no-op and is idempotent.
func TestQuickCanon(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(37))}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		a := randCover(r, n, 8)
		c := a.Canon()
		c2 := c.Canon()
		if len(c.Cubes) != len(c2.Cubes) {
			return false
		}
		for i := range c.Cubes {
			if c.Cubes[i] != c2.Cubes[i] {
				return false
			}
		}
		for m := uint64(0); m < uint64(1)<<n; m++ {
			if a.Eval(m) != c.Eval(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: TT binary ops agree with pointwise semantics.
func TestQuickTTOps(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(41))}
	prop := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw%8)
		a := TTFromFunc(n, func(uint64) bool { return r.Intn(2) == 0 })
		b := TTFromFunc(n, func(uint64) bool { return r.Intn(2) == 0 })
		and, or, xor, not := a.And(b), a.Or(b), a.Xor(b), a.Not()
		for m := uint64(0); m < uint64(1)<<n; m++ {
			if and.Bit(m) != (a.Bit(m) && b.Bit(m)) {
				return false
			}
			if or.Bit(m) != (a.Bit(m) || b.Bit(m)) {
				return false
			}
			if xor.Bit(m) != (a.Bit(m) != b.Bit(m)) {
				return false
			}
			if not.Bit(m) == a.Bit(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCoverEvalWords(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	c := randCover(r, 12, 20)
	in := make([]uint64, 12)
	for i := range in {
		in[i] = r.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.EvalWords(in)
	}
}

func BenchmarkSymmetric9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Symmetric(9, func(k int) bool { return k >= 3 && k <= 6 })
	}
}
