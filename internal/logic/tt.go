package logic

import (
	"fmt"
	"math/bits"
	"strings"
)

// TTMaxVars bounds truth-table width; 2^16 bits = 8 KiB per table.
const TTMaxVars = 16

// TT is a truth table over N variables stored as a bit vector: bit m of the
// table (word m/64, bit m%64) is the function value on assignment m, where
// bit i of m is the value of variable i. Unused bits in the last word are
// kept zero so tables compare with ==-style word equality.
type TT struct {
	N int
	W []uint64
}

// NewTT returns the constant-false table over n variables.
func NewTT(n int) TT {
	if n < 0 || n > TTMaxVars {
		panic(fmt.Sprintf("logic: NewTT(%d) out of range [0,%d]", n, TTMaxVars))
	}
	return TT{N: n, W: make([]uint64, ttWords(n))}
}

func ttWords(n int) int {
	if n <= 6 {
		return 1
	}
	return 1 << (n - 6)
}

// size returns the number of assignments, 2^N.
func (t TT) size() uint64 { return uint64(1) << t.N }

// tailMask returns the mask of valid bits in the final word.
func (t TT) tailMask() uint64 {
	if t.N >= 6 {
		return ^uint64(0)
	}
	return (uint64(1) << t.size()) - 1
}

// TTFromFunc builds a table by evaluating f on every assignment.
func TTFromFunc(n int, f func(assign uint64) bool) TT {
	t := NewTT(n)
	for m := uint64(0); m < t.size(); m++ {
		if f(m) {
			t.W[m>>6] |= 1 << (m & 63)
		}
	}
	return t
}

// TTConst returns the constant-v table over n variables.
func TTConst(n int, v bool) TT {
	t := NewTT(n)
	if v {
		for i := range t.W {
			t.W[i] = ^uint64(0)
		}
		t.W[len(t.W)-1] &= t.tailMask()
	}
	return t
}

// TTVar returns the projection table of variable i over n variables.
func TTVar(n, i int) TT {
	return TTFromFunc(n, func(m uint64) bool { return m&(1<<i) != 0 })
}

// Bit returns the function value on assignment m.
func (t TT) Bit(m uint64) bool { return t.W[m>>6]&(1<<(m&63)) != 0 }

// SetBit sets the function value on assignment m.
func (t *TT) SetBit(m uint64, v bool) {
	if v {
		t.W[m>>6] |= 1 << (m & 63)
	} else {
		t.W[m>>6] &^= 1 << (m & 63)
	}
}

// orCube sets every minterm covered by the cube.
func (t *TT) orCube(c Cube) {
	// Fast path: full tables for narrow cubes would be slow minterm by
	// minterm only for very wide tables; enumeration over free variables is
	// bounded by table size anyway.
	for m := uint64(0); m < t.size(); m++ {
		if c.Eval(m) {
			t.W[m>>6] |= 1 << (m & 63)
		}
	}
}

func (t TT) binop(u TT, f func(a, b uint64) uint64) TT {
	if t.N != u.N {
		panic(fmt.Sprintf("logic: TT binop on mismatched widths %d and %d", t.N, u.N))
	}
	out := NewTT(t.N)
	for i := range t.W {
		out.W[i] = f(t.W[i], u.W[i])
	}
	out.W[len(out.W)-1] &= out.tailMask()
	return out
}

// And returns the conjunction of two equally wide tables.
func (t TT) And(u TT) TT { return t.binop(u, func(a, b uint64) uint64 { return a & b }) }

// Or returns the disjunction of two equally wide tables.
func (t TT) Or(u TT) TT { return t.binop(u, func(a, b uint64) uint64 { return a | b }) }

// Xor returns the exclusive or of two equally wide tables.
func (t TT) Xor(u TT) TT { return t.binop(u, func(a, b uint64) uint64 { return a ^ b }) }

// Not returns the complement.
func (t TT) Not() TT {
	out := NewTT(t.N)
	for i := range t.W {
		out.W[i] = ^t.W[i]
	}
	out.W[len(out.W)-1] &= out.tailMask()
	return out
}

// Equal reports semantic equality of two tables of the same width.
func (t TT) Equal(u TT) bool {
	if t.N != u.N {
		return false
	}
	for i := range t.W {
		if t.W[i] != u.W[i] {
			return false
		}
	}
	return true
}

// CountOnes returns the number of satisfying assignments.
func (t TT) CountOnes() int {
	n := 0
	for _, w := range t.W {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsConst reports whether the table is constant, and the constant value.
func (t TT) IsConst() (isConst, value bool) {
	ones := t.CountOnes()
	switch {
	case ones == 0:
		return true, false
	case uint64(ones) == t.size():
		return true, true
	default:
		return false, false
	}
}

// DependsOn reports whether the function actually depends on variable v.
func (t TT) DependsOn(v int) bool {
	return !t.CofactorTT(v, false).Equal(t.CofactorTT(v, true))
}

// CofactorTT returns the cofactor with variable v fixed to val; the width is
// unchanged and the result is independent of v.
func (t TT) CofactorTT(v int, val bool) TT {
	out := NewTT(t.N)
	bit := uint64(1) << v
	for m := uint64(0); m < t.size(); m++ {
		src := m &^ bit
		if val {
			src |= bit
		}
		if t.Bit(src) {
			out.W[m>>6] |= 1 << (m & 63)
		}
	}
	return out
}

// SupportSize returns the number of variables the function depends on.
func (t TT) SupportSize() int {
	n := 0
	for v := 0; v < t.N; v++ {
		if t.DependsOn(v) {
			n++
		}
	}
	return n
}

// ToCover converts the table to a cover (minterm expansion followed by
// simplification).
func (t TT) ToCover() Cover {
	c := Cover{N: t.N}
	for m := uint64(0); m < t.size(); m++ {
		if t.Bit(m) {
			c.Cubes = append(c.Cubes, CubeOfMinterm(t.N, m))
		}
	}
	return c.Simplify()
}

// Word4 returns the 16-bit truth table of a function over at most 4
// variables, the configuration word of one XC4000-style LUT.
func (t TT) Word4() (uint16, error) {
	if t.N > 4 {
		return 0, fmt.Errorf("logic: Word4 on %d-variable table", t.N)
	}
	// Replicate across the unused high variables so that the word is well
	// defined regardless of their values.
	var w uint64
	for m := uint64(0); m < 16; m++ {
		if t.Bit(m & (t.size() - 1)) {
			w |= 1 << m
		}
	}
	return uint16(w), nil
}

// String renders the table as a hex string, most significant assignment
// first.
func (t TT) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tt%d:", t.N)
	for i := len(t.W) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%016x", t.W[i])
	}
	return b.String()
}
