package logic

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Cover is a sum-of-products representation of a Boolean function over N
// variables: the disjunction of its Cubes. An empty cube list is the
// constant false; a cover containing the empty cube is the constant true.
// Because any cube covers at least one minterm, a cover is the constant
// false if and only if its cube list is empty.
type Cover struct {
	N     int
	Cubes []Cube
}

// Const returns the constant-v function over n variables.
func Const(n int, v bool) Cover {
	if v {
		return Cover{N: n, Cubes: []Cube{{}}}
	}
	return Cover{N: n}
}

// Var returns the single-literal function x_i over n variables.
func Var(n, i int) Cover {
	return Cover{N: n, Cubes: []Cube{{Mask: 1 << i, Val: 1 << i}}}
}

// NotVarC returns the single-literal function ¬x_i over n variables.
func NotVarC(n, i int) Cover {
	return Cover{N: n, Cubes: []Cube{{Mask: 1 << i}}}
}

// FromCubes assembles a cover over n variables from explicit cubes.
func FromCubes(n int, cubes ...Cube) Cover {
	return Cover{N: n, Cubes: append([]Cube(nil), cubes...)}
}

// FromStrings parses one PLA input-plane row per string; all rows must have
// equal width, which becomes N.
func FromStrings(rows ...string) (Cover, error) {
	if len(rows) == 0 {
		return Cover{}, fmt.Errorf("logic: FromStrings needs at least one row")
	}
	n := len(rows[0])
	c := Cover{N: n, Cubes: make([]Cube, 0, len(rows))}
	for _, r := range rows {
		if len(r) != n {
			return Cover{}, fmt.Errorf("logic: row %q width %d != %d", r, len(r), n)
		}
		cube, err := CubeFromString(r)
		if err != nil {
			return Cover{}, err
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c, nil
}

// MustFromStrings is FromStrings that panics on malformed input; intended
// for statically known tables such as the DES S-boxes.
func MustFromStrings(rows ...string) Cover {
	c, err := FromStrings(rows...)
	if err != nil {
		panic(err)
	}
	return c
}

// Eval evaluates the cover on a single assignment (bit i of assign is
// variable i).
func (c Cover) Eval(assign uint64) bool {
	for _, cu := range c.Cubes {
		if cu.Eval(assign) {
			return true
		}
	}
	return false
}

// EvalWords evaluates 64 assignments at once. in[i] carries the values of
// variable i across the 64 patterns; bit p of the result is the function
// value on pattern p. len(in) must be at least N.
func (c Cover) EvalWords(in []uint64) uint64 {
	var out uint64
	for _, cu := range c.Cubes {
		acc := ^uint64(0)
		m := cu.Mask
		for m != 0 {
			v := bits.TrailingZeros64(m)
			m &= m - 1
			if cu.Val&(1<<v) != 0 {
				acc &= in[v]
			} else {
				acc &= ^in[v]
			}
			if acc == 0 {
				break
			}
		}
		out |= acc
		if out == ^uint64(0) {
			break
		}
	}
	return out
}

// Or returns the disjunction of two covers over the same variable count.
func (c Cover) Or(d Cover) Cover {
	if c.N != d.N {
		panic(fmt.Sprintf("logic: Or on mismatched widths %d and %d", c.N, d.N))
	}
	out := Cover{N: c.N, Cubes: make([]Cube, 0, len(c.Cubes)+len(d.Cubes))}
	out.Cubes = append(out.Cubes, c.Cubes...)
	out.Cubes = append(out.Cubes, d.Cubes...)
	return out
}

// AndCube distributes a cube over the cover, dropping emptied products.
func (c Cover) AndCube(k Cube) Cover {
	out := Cover{N: c.N, Cubes: make([]Cube, 0, len(c.Cubes))}
	for _, cu := range c.Cubes {
		if p, ok := cu.And(k); ok {
			out.Cubes = append(out.Cubes, p)
		}
	}
	return out
}

// And returns the product of two covers (cross product of cube lists with
// single-cube containment cleanup). The result can be quadratically larger
// than the inputs; callers working with wide covers should prefer
// decomposition in package synth.
func (c Cover) And(d Cover) Cover {
	if c.N != d.N {
		panic(fmt.Sprintf("logic: And on mismatched widths %d and %d", c.N, d.N))
	}
	out := Cover{N: c.N}
	for _, cu := range c.Cubes {
		for _, du := range d.Cubes {
			if p, ok := cu.And(du); ok {
				out.Cubes = append(out.Cubes, p)
			}
		}
	}
	return out.Irredundant()
}

// Cofactor returns the Shannon cofactor of the cover with variable v fixed
// to val. The variable count is unchanged; the result no longer depends on
// v.
func (c Cover) Cofactor(v int, val bool) Cover {
	out := Cover{N: c.N, Cubes: make([]Cube, 0, len(c.Cubes))}
	for _, cu := range c.Cubes {
		if !cu.TestsVar(v) {
			out.Cubes = append(out.Cubes, cu)
			continue
		}
		if cu.LitVal(v) == val {
			out.Cubes = append(out.Cubes, cu.DropVar(v))
		}
	}
	return out
}

// SupportMask returns a bit mask of the variables appearing in some cube.
func (c Cover) SupportMask() uint64 {
	var m uint64
	for _, cu := range c.Cubes {
		m |= cu.Mask
	}
	return m
}

// Support returns the sorted list of variables the cover syntactically
// depends on.
func (c Cover) Support() []int {
	m := c.SupportMask()
	var vars []int
	for m != 0 {
		v := bits.TrailingZeros64(m)
		m &= m - 1
		vars = append(vars, v)
	}
	return vars
}

// Compact renumbers the cover onto its support. It returns the compacted
// cover (whose N is the support size) and the original indices of its
// variables: new variable j corresponds to old variable vars[j].
func (c Cover) Compact() (Cover, []int) {
	vars := c.Support()
	pos := make(map[int]int, len(vars))
	for j, v := range vars {
		pos[v] = j
	}
	out := Cover{N: len(vars), Cubes: make([]Cube, 0, len(c.Cubes))}
	for _, cu := range c.Cubes {
		var nc Cube
		m := cu.Mask
		for m != 0 {
			v := bits.TrailingZeros64(m)
			m &= m - 1
			nc = nc.WithLit(pos[v], cu.LitVal(v))
		}
		out.Cubes = append(out.Cubes, nc)
	}
	return out, vars
}

// Permute remaps variables: old variable i becomes new variable perm[i] in
// a cover over newN variables. len(perm) must be at least the largest
// support variable + 1.
func (c Cover) Permute(newN int, perm []int) Cover {
	out := Cover{N: newN, Cubes: make([]Cube, 0, len(c.Cubes))}
	for _, cu := range c.Cubes {
		var nc Cube
		m := cu.Mask
		for m != 0 {
			v := bits.TrailingZeros64(m)
			m &= m - 1
			nc = nc.WithLit(perm[v], cu.LitVal(v))
		}
		out.Cubes = append(out.Cubes, nc)
	}
	return out
}

// Irredundant removes cubes that are contained in another cube of the
// cover (single-cube containment; not a full irredundant cover
// computation).
func (c Cover) Irredundant() Cover {
	keep := make([]bool, len(c.Cubes))
	for i := range keep {
		keep[i] = true
	}
	for i, ci := range c.Cubes {
		if !keep[i] {
			continue
		}
		for j, cj := range c.Cubes {
			if i == j || !keep[j] {
				continue
			}
			if ci.Contains(cj) {
				keep[j] = false
			}
		}
	}
	out := Cover{N: c.N, Cubes: make([]Cube, 0, len(c.Cubes))}
	for i, cu := range c.Cubes {
		if keep[i] {
			out.Cubes = append(out.Cubes, cu)
		}
	}
	return out
}

// mergePass performs one sweep of distance-1 merging; changed reports
// whether any pair was merged.
func (c Cover) mergePass() (Cover, bool) {
	used := make([]bool, len(c.Cubes))
	var out []Cube
	changed := false
	for i := 0; i < len(c.Cubes); i++ {
		if used[i] {
			continue
		}
		cur := c.Cubes[i]
		for j := i + 1; j < len(c.Cubes); j++ {
			if used[j] {
				continue
			}
			if m, ok := cur.MergeDistance1(c.Cubes[j]); ok {
				cur = m
				used[j] = true
				changed = true
			}
		}
		out = append(out, cur)
	}
	return Cover{N: c.N, Cubes: out}, changed
}

// Simplify repeatedly applies distance-1 merging and containment removal
// until a fixed point. It preserves the function exactly.
func (c Cover) Simplify() Cover {
	cur := c.Irredundant()
	for {
		next, changed := cur.mergePass()
		next = next.Irredundant()
		if !changed {
			return next
		}
		cur = next
	}
}

// IsConstFalse reports whether the cover is the constant false. This is
// exact: any cube covers at least one minterm.
func (c Cover) IsConstFalse() bool { return len(c.Cubes) == 0 }

// HasTautologyCube reports whether some cube is the empty cube (constant
// true); a quick sufficient — not necessary — tautology test.
func (c Cover) HasTautologyCube() bool {
	for _, cu := range c.Cubes {
		if cu.Mask == 0 {
			return true
		}
	}
	return false
}

// IsTautology decides exactly whether the cover is the constant true, by
// recursive Shannon expansion on the most-tested variable.
func (c Cover) IsTautology() bool {
	if c.HasTautologyCube() {
		return true
	}
	if len(c.Cubes) == 0 {
		return false
	}
	v := c.mostTestedVar()
	if v < 0 {
		return false
	}
	return c.Cofactor(v, false).IsTautology() && c.Cofactor(v, true).IsTautology()
}

// MostTestedVar returns the variable appearing in the most cubes, or -1
// when no cube tests any variable — the classic Shannon splitting choice.
func (c Cover) MostTestedVar() int { return c.mostTestedVar() }

// mostTestedVar returns the variable appearing in the most cubes, or -1
// when no cube tests any variable.
func (c Cover) mostTestedVar() int {
	counts := make(map[int]int)
	for _, cu := range c.Cubes {
		m := cu.Mask
		for m != 0 {
			v := bits.TrailingZeros64(m)
			m &= m - 1
			counts[v]++
		}
	}
	best, bestN := -1, 0
	for v, n := range counts {
		if n > bestN || (n == bestN && (best == -1 || v < best)) {
			best, bestN = v, n
		}
	}
	return best
}

// TT converts the cover to a truth table. N must be at most TTMaxVars.
func (c Cover) TT() (TT, error) {
	if c.N > TTMaxVars {
		return TT{}, fmt.Errorf("logic: cover over %d variables exceeds truth-table limit %d", c.N, TTMaxVars)
	}
	t := NewTT(c.N)
	for _, cu := range c.Cubes {
		t.orCube(cu)
	}
	return t, nil
}

// MustTT is TT for statically narrow covers; it panics when N exceeds
// TTMaxVars.
func (c Cover) MustTT() TT {
	t, err := c.TT()
	if err != nil {
		panic(err)
	}
	return t
}

// Equal decides semantic equality via truth tables; both covers must be at
// most TTMaxVars wide.
func (c Cover) Equal(d Cover) (bool, error) {
	if c.N != d.N {
		return false, nil
	}
	ct, err := c.TT()
	if err != nil {
		return false, err
	}
	dt, err := d.TT()
	if err != nil {
		return false, err
	}
	return ct.Equal(dt), nil
}

// Not returns the complement, computed through a truth table; the cover
// must be at most TTMaxVars wide.
func (c Cover) Not() (Cover, error) {
	t, err := c.TT()
	if err != nil {
		return Cover{}, err
	}
	return t.Not().ToCover(), nil
}

// NumCubes returns the number of product terms.
func (c Cover) NumCubes() int { return len(c.Cubes) }

// NumLits returns the total literal count across cubes, a standard
// two-level cost metric.
func (c Cover) NumLits() int {
	n := 0
	for _, cu := range c.Cubes {
		n += cu.NumLits()
	}
	return n
}

// Clone returns a deep copy.
func (c Cover) Clone() Cover {
	return Cover{N: c.N, Cubes: append([]Cube(nil), c.Cubes...)}
}

// Canon returns a canonical ordering of cubes, useful for deterministic
// output and diffing.
func (c Cover) Canon() Cover {
	out := c.Clone()
	sort.Slice(out.Cubes, func(i, j int) bool {
		if out.Cubes[i].Mask != out.Cubes[j].Mask {
			return out.Cubes[i].Mask < out.Cubes[j].Mask
		}
		return out.Cubes[i].Val < out.Cubes[j].Val
	})
	return out
}

// String renders the cover as semicolon-separated PLA rows.
func (c Cover) String() string {
	if len(c.Cubes) == 0 {
		return fmt.Sprintf("const0/%d", c.N)
	}
	rows := make([]string, len(c.Cubes))
	for i, cu := range c.Cubes {
		rows[i] = cu.String(c.N)
	}
	return strings.Join(rows, ";")
}
