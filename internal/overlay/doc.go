// Package overlay implements the pre-reserved debug overlay: a
// time-multiplexed observation network planned into the layout at
// initial build time, so that changing which nets a debug campaign
// observes is a pure configuration switch instead of an incremental
// place-and-route.
//
// The overlay has two halves:
//
//   - Plan (Build): constructed once on the pristine layout. Every live
//     cell output net is assigned to one of C time-multiplex channels;
//     each channel is one physical trunk — a multi-pin net connecting
//     the driver sites of all its assigned nets to a readout pad on the
//     free IOB ring (the site an observation MISR/trace buffer would
//     occupy). The trunks are routed once by the layout's own
//     route.Router on top of the finished user wiring (RouteReserved),
//     over capacity headroom withheld from the user routing by
//     core.Spec.OverlayReserve, and locked permanently (FixedWiring).
//     A Plan is immutable and shared read-only across campaigns.
//
//   - Selector (per campaign): the channel configuration of one working
//     layout. Select(nets) points each affected channel's tap mux at a
//     new net — O(taps) map writes journaled through the layout's
//     transaction log (core.Layout.RecordUndo), so rollbacks restore
//     the selection along with the physical state. No call into place,
//     route or STA happens on this path. Nets sharing a channel cannot
//     be observed simultaneously; Partition splits a request into
//     conflict-free time-multiplex batches.
//
// The debug loop keeps the MISR-insertion CAD path as a fallback for
// nets outside overlay reach and as a differential oracle: overlay-
// observed value streams must be bit-identical to the streams the
// physical MISR path observes (internal/experiments.OverlayBench pins
// this across the catalog).
package overlay
