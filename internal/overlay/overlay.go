package overlay

import (
	"fmt"
	"sort"

	"fpgadbg/internal/core"
	"fpgadbg/internal/device"
	"fpgadbg/internal/netlist"
	"fpgadbg/internal/route"
)

// DefaultChannels is the number of time-multiplex observation channels
// planned when the caller does not choose one; it matches the debug
// loop's default probes-per-round, so a typical round is one batch.
const DefaultChannels = 4

// DefaultReserve is the per-segment track reservation
// (core.Spec.OverlayReserve) that leaves headroom for the trunks.
const DefaultReserve = 2

// trunkIDBase keeps trunk net IDs clear of netlist net IDs in router
// telemetry.
const trunkIDBase = 1 << 20

// Plan is the immutable overlay of one built layout: the channel
// assignment covering every live cell output net, plus the routed
// trunk statistics. Built once on the pristine layout, shared
// read-only by every campaign (clones inherit the trunk wiring through
// core.Layout.Clone; the Plan itself is position-independent).
type Plan struct {
	// Channels is the time-multiplex channel count C.
	Channels int
	// Taps is the number of covered nets (every live cell output at
	// plan time).
	Taps int
	// TrunkLen is the total routed trunk wirelength in channel edges —
	// the overlay's routing footprint.
	TrunkLen int
	// RouteExpansions is the one-time routing effort spent on the
	// trunks.
	RouteExpansions int64
	// Readout holds the IOB ring site of each channel's readout pad.
	Readout []device.XY

	chanOf map[string]int // net name -> channel
}

// Build plans and routes the overlay into a freshly built layout:
// every live cell output net is assigned round-robin (in sorted name
// order) to one of channels trunks, each trunk gets a readout site on
// the free IOB ring, and the trunk nets are routed at full channel
// capacity on top of the locked user wiring (core.Layout.RouteReserved).
// channels <= 0 selects DefaultChannels. Build mutates only the
// layout's fixed wiring; call it on the pristine layout before any
// campaign clones it.
func Build(l *core.Layout, channels int) (*Plan, error) {
	if channels <= 0 {
		channels = DefaultChannels
	}
	nl := l.NL
	var names []string
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Dead || c.Out == netlist.NilNet || nl.Nets[c.Out].Dead {
			continue
		}
		names = append(names, nl.NetName(c.Out))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("overlay: no live cell outputs to cover")
	}
	p := &Plan{Channels: channels, Taps: len(names), chanOf: make(map[string]int, len(names))}
	for i, name := range names {
		p.chanOf[name] = i % channels
	}

	readout, err := readoutSites(l, channels)
	if err != nil {
		return nil, err
	}
	p.Readout = readout

	// One multi-pin trunk per channel: the readout pad plus the driver
	// site of every assigned net. The router dedupes coincident pins.
	trunks := make([]*route.Net, channels)
	for ch := 0; ch < channels; ch++ {
		trunks[ch] = &route.Net{ID: trunkIDBase + ch, Pins: []device.XY{readout[ch]}}
	}
	for _, name := range names {
		id, ok := nl.NetByName(name)
		if !ok {
			return nil, fmt.Errorf("overlay: net %q vanished", name)
		}
		d := nl.Nets[id].Driver
		clb, ok := l.Packed.CellCLB[d]
		if !ok {
			return nil, fmt.Errorf("overlay: driver of %q is not packed", name)
		}
		ch := p.chanOf[name]
		trunks[ch].Pins = append(trunks[ch].Pins, l.CLBLoc[clb])
	}
	eff, err := l.RouteReserved(trunks)
	if err != nil {
		return nil, fmt.Errorf("overlay: trunk routing: %w", err)
	}
	p.RouteExpansions = eff.RouteExpansions
	for _, t := range trunks {
		p.TrunkLen += len(t.Route)
	}
	return p, nil
}

// readoutSites picks one free IOB ring site per channel, spread evenly
// along the ring so the trunks approach the edge from different sides.
func readoutSites(l *core.Layout, channels int) ([]device.XY, error) {
	used := make(map[device.XY]int, len(l.PadLoc))
	for _, p := range l.PadLoc {
		used[p]++
	}
	var free []device.XY
	for _, s := range l.Dev.IOBSites() {
		if used[s] < device.IOBsPerSite {
			free = append(free, s)
		}
	}
	if len(free) < channels {
		return nil, fmt.Errorf("overlay: %d free IOB sites for %d readout channels", len(free), channels)
	}
	out := make([]device.XY, channels)
	for ch := 0; ch < channels; ch++ {
		out[ch] = free[ch*len(free)/channels]
	}
	return out, nil
}

// Covers reports whether the plan's observation network reaches a net.
func (p *Plan) Covers(name string) bool {
	_, ok := p.chanOf[name]
	return ok
}

// Channel returns the time-multiplex channel a net is assigned to.
func (p *Plan) Channel(name string) (int, bool) {
	ch, ok := p.chanOf[name]
	return ch, ok
}

// Selector is the per-campaign tap configuration of the overlay on one
// working layout. It is not safe for concurrent use; each campaign
// creates its own with NewSelector.
type Selector struct {
	// Switches counts Select calls (configuration mutations).
	Switches int

	plan *Plan
	l    *core.Layout
	cur  []string // selected net per channel ("" = parked)
}

// NewSelector binds a fresh, fully parked selector to a working layout
// (a clone of the layout the plan was built on).
func (p *Plan) NewSelector(l *core.Layout) *Selector {
	return &Selector{plan: p, l: l, cur: make([]string, p.Channels)}
}

// Plan returns the immutable plan this selector configures.
func (s *Selector) Plan() *Plan { return s.plan }

// Reach reports whether a net can be observed through the overlay.
func (s *Selector) Reach(name string) bool { return s.plan.Covers(name) }

// Selected returns the currently observed net of every channel
// ("" = parked).
func (s *Selector) Selected() []string { return append([]string(nil), s.cur...) }

// Partition splits a request into conflict-free time-multiplex batches
// — at most one net per channel per batch, preserving input order —
// and returns any nets outside overlay reach separately (the caller's
// CAD fallback handles those).
func (s *Selector) Partition(names []string) (batches [][]string, unreachable []string) {
	var taken []map[int]bool
	for _, name := range names {
		ch, ok := s.plan.chanOf[name]
		if !ok {
			unreachable = append(unreachable, name)
			continue
		}
		placed := false
		for b := range batches {
			if !taken[b][ch] {
				batches[b] = append(batches[b], name)
				taken[b][ch] = true
				placed = true
				break
			}
		}
		if !placed {
			batches = append(batches, []string{name})
			taken = append(taken, map[int]bool{ch: true})
		}
	}
	return batches, unreachable
}

// Select points the tap mux of each affected channel at the requested
// net — a pure configuration mutation: O(taps) slice writes, zero
// calls into place, route or STA. The change is journaled through the
// layout's transaction log (core.Layout.RecordUndo) so an enclosing
// Rollback restores the previous selection. Two requested nets on the
// same channel conflict (use Partition first); nets outside overlay
// reach are an error (the caller's CAD fallback handles those).
func (s *Selector) Select(names []string) error {
	inCall := make(map[int]string, len(names))
	for _, name := range names {
		ch, ok := s.plan.chanOf[name]
		if !ok {
			return fmt.Errorf("overlay: net %q outside overlay reach", name)
		}
		if prev, dup := inCall[ch]; dup {
			return fmt.Errorf("overlay: nets %q and %q share channel %d (time-multiplex with Partition)", prev, name, ch)
		}
		inCall[ch] = name
	}
	for ch, name := range inCall {
		if s.cur[ch] == name {
			continue
		}
		prev := s.cur[ch]
		s.cur[ch] = name
		ch := ch
		s.l.RecordUndo(func() { s.cur[ch] = prev })
	}
	s.Switches++
	return nil
}
